//===-- runtime/lookup.h - Message lookup through parent slots --*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Message lookup: depth-first search of the receiver's map and its parent
/// objects (declaration order, first match wins, cycles tolerated). The same
/// routine serves the runtime's dynamic sends and the compiler's
/// compile-time lookup — the paper's message inlining is exactly "perform
/// the lookup at compile time", which is sound here because maps and parent
/// constants are immutable after load.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_RUNTIME_LOOKUP_H
#define MINISELF_RUNTIME_LOOKUP_H

#include "vm/map.h"

#include <string>

namespace mself {

class Object;
class World;

/// Outcome of one lookup.
struct LookupResult {
  enum class Kind : uint8_t {
    NotFound,
    Method,   ///< Constant slot holding a method: activate it.
    Constant, ///< Constant slot holding a plain value.
    Data,     ///< Data slot read.
    Assign,   ///< Data slot assignment (selector "x:").
  };

  Kind ResultKind = Kind::NotFound;
  const SlotDesc *Slot = nullptr;
  /// For Data/Assign: the object whose fields hold the slot, or nullptr when
  /// the field belongs to the receiver itself (found on the receiver's map).
  Object *Holder = nullptr;

  bool found() const { return ResultKind != Kind::NotFound; }
};

/// Looks \p Selector up starting at map \p M. \p M is the receiver's map;
/// data slots found directly on it report Holder == nullptr (i.e. "the
/// receiver"), while slots found on parent objects report that parent.
LookupResult lookupSelector(const World &W, Map *M,
                            const std::string *Selector);

} // namespace mself

#endif // MINISELF_RUNTIME_LOOKUP_H
