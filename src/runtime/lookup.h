//===-- runtime/lookup.h - Message lookup through parent slots --*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Message lookup: depth-first search of the receiver's map and its parent
/// objects (declaration order, first match wins, cycles tolerated). The same
/// routine serves the runtime's dynamic sends and the compiler's
/// compile-time lookup — the paper's message inlining is exactly "perform
/// the lookup at compile time", which is sound here because maps and parent
/// constants are immutable between world mutations (slot definitions), and
/// every mutation flushes the caches below.
///
/// On top of the raw parent walk sits a process-wide hashed *global lookup
/// cache* keyed by (receiver map, selector) — the classic backing store for
/// megamorphic send sites and cold inline-cache misses. The World owns one;
/// lookupSelectorCached() routes through it.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_RUNTIME_LOOKUP_H
#define MINISELF_RUNTIME_LOOKUP_H

#include "vm/map.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mself {

class GcVisitor;
class Object;
class World;

/// Outcome of one lookup.
struct LookupResult {
  enum class Kind : uint8_t {
    NotFound,
    Method,   ///< Constant slot holding a method: activate it.
    Constant, ///< Constant slot holding a plain value.
    Data,     ///< Data slot read.
    Assign,   ///< Data slot assignment (selector "x:").
  };

  Kind ResultKind = Kind::NotFound;
  const SlotDesc *Slot = nullptr;
  /// For Data/Assign: the object whose fields hold the slot, or nullptr when
  /// the field belongs to the receiver itself (found on the receiver's map).
  Object *Holder = nullptr;

  bool found() const { return ResultKind != Kind::NotFound; }
};

/// Looks \p Selector up starting at map \p M. \p M is the receiver's map;
/// data slots found directly on it report Holder == nullptr (i.e. "the
/// receiver"), while slots found on parent objects report that parent.
///
/// When \p VisitedOut is non-null, the maps the walk examined are appended
/// to it — exactly the set whose shapes the result depends on (a new slot
/// on any visited map could shadow or produce the result; unvisited maps
/// cannot affect it). The compiler records this set per compiled function
/// so shape mutations invalidate precisely the dependent code.
LookupResult lookupSelector(const World &W, Map *M,
                            const std::string *Selector,
                            std::vector<Map *> *VisitedOut = nullptr);

/// Process-wide direct-mapped cache of lookup results keyed by
/// (receiver map, selector).
///
/// Serves megamorphic send sites and cold inline-cache misses, and
/// accelerates the compiler's compile-time lookups. Entries store raw
/// SlotDesc pointers into maps, so any shape mutation (a map gaining a
/// slot) must flush() the cache — the World's shape-mutation hook does
/// exactly that. Negative results (NotFound) are cached too; flushing keeps
/// them sound. Cached Holder objects and constants are GC-rooted via
/// traceEntries(), called from the owning World's traceRoots().
class GlobalLookupCache {
public:
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Fills = 0;         ///< insert() calls that stored an entry.
    uint64_t Invalidations = 0; ///< flush() calls.
  };

  static constexpr size_t kDefaultEntries = 2048;

  GlobalLookupCache() { configure(kDefaultEntries, true); }

  /// Sizes the table to \p Entries (rounded up to a power of two) and
  /// enables/disables the cache. Drops all cached entries.
  void configure(size_t Entries, bool Enable);

  bool enabled() const { return Enabled; }

  /// Probes for (\p M, \p Selector). On a hit copies the cached result into
  /// \p Out and returns true. Counts a hit or a miss.
  bool find(Map *M, const std::string *Selector, LookupResult &Out);

  /// Stores \p R for (\p M, \p Selector), replacing whatever hashed there.
  void insert(Map *M, const std::string *Selector, const LookupResult &R);

  /// Drops every entry: the invalidation hook for world shape mutation.
  void flush();

  size_t capacity() const { return Table.size(); }
  size_t occupied() const { return Occupied; }
  const Stats &stats() const { return Counters; }

  /// GC-roots every Holder object a cached result points at, updating the
  /// cached pointer in place when a scavenge relocates the holder; slot
  /// constants live in immortal maps and are rooted by the heap itself.
  void traceEntries(GcVisitor &V);

private:
  struct Entry {
    Map *M = nullptr;
    const std::string *Selector = nullptr;
    LookupResult Result;
  };

  size_t indexFor(Map *M, const std::string *Selector) const;

  std::vector<Entry> Table;
  size_t Mask = 0;
  size_t Occupied = 0;
  bool Enabled = true;
  Stats Counters;
};

/// lookupSelector() through the world's global lookup cache: probes the
/// cache first and fills it from the full parent walk on a miss. Falls back
/// to the raw walk when the cache is disabled.
LookupResult lookupSelectorCached(const World &W, Map *M,
                                  const std::string *Selector);

} // namespace mself

#endif // MINISELF_RUNTIME_LOOKUP_H
