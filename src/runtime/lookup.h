//===-- runtime/lookup.h - Message lookup through parent slots --*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Message lookup: depth-first search of the receiver's map and its parent
/// objects (declaration order, first match wins, cycles tolerated). The same
/// routine serves the runtime's dynamic sends and the compiler's
/// compile-time lookup — the paper's message inlining is exactly "perform
/// the lookup at compile time", which is sound here because maps and parent
/// constants are immutable between world mutations (slot definitions), and
/// every mutation flushes the caches below.
///
/// On top of the raw parent walk sits a hashed *global lookup cache* keyed
/// by (receiver map, selector) — the classic backing store for megamorphic
/// send sites and cold inline-cache misses. Each World owns one (so in
/// multi-isolate server mode every isolate has a private cache — map
/// pointers are per-heap and must never cross isolates);
/// lookupSelectorCached() routes through it.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_RUNTIME_LOOKUP_H
#define MINISELF_RUNTIME_LOOKUP_H

#include "vm/map.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mself {

class GcVisitor;
class Object;
class World;

/// Outcome of one lookup.
struct LookupResult {
  enum class Kind : uint8_t {
    NotFound,
    Method,   ///< Constant slot holding a method: activate it.
    Constant, ///< Constant slot holding a plain value.
    Data,     ///< Data slot read.
    Assign,   ///< Data slot assignment (selector "x:").
  };

  Kind ResultKind = Kind::NotFound;
  const SlotDesc *Slot = nullptr;
  /// For Data/Assign: the object whose fields hold the slot, or nullptr when
  /// the field belongs to the receiver itself (found on the receiver's map).
  Object *Holder = nullptr;

  bool found() const { return ResultKind != Kind::NotFound; }
};

/// Looks \p Selector up starting at map \p M. \p M is the receiver's map;
/// data slots found directly on it report Holder == nullptr (i.e. "the
/// receiver"), while slots found on parent objects report that parent.
///
/// When \p VisitedOut is non-null, the maps the walk examined are appended
/// to it — exactly the set whose shapes the result depends on (a new slot
/// on any visited map could shadow or produce the result; unvisited maps
/// cannot affect it). The compiler records this set per compiled function
/// so shape mutations invalidate precisely the dependent code.
LookupResult lookupSelector(const World &W, Map *M,
                            const std::string *Selector,
                            std::vector<Map *> *VisitedOut = nullptr);

/// Per-world direct-mapped cache of lookup results keyed by
/// (receiver map, selector).
///
/// Serves megamorphic send sites and cold inline-cache misses, and
/// accelerates the compiler's compile-time lookups. Entries store raw
/// SlotDesc pointers into maps, so any shape mutation (a map gaining a
/// slot) must flush() the cache — the World's shape-mutation hook does
/// exactly that. Negative results (NotFound) are cached too; flushing keeps
/// them sound. Cached Holder objects and constants are GC-rooted via
/// traceEntries(), called from the owning World's traceRoots().
class GlobalLookupCache {
public:
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Fills = 0;         ///< insert() calls that stored an entry.
    uint64_t Invalidations = 0; ///< flush() calls.
  };

  static constexpr size_t kDefaultEntries = 2048;

  GlobalLookupCache() { configure(kDefaultEntries, true); }

  /// Sizes the table to \p Entries (rounded up to a power of two) and
  /// enables/disables the cache. Drops all cached entries.
  void configure(size_t Entries, bool Enable);

  bool enabled() const { return Enabled; }

  /// Probes for (\p M, \p Selector). On a hit copies the cached result into
  /// \p Out and returns true. Counts a hit or a miss.
  bool find(Map *M, const std::string *Selector, LookupResult &Out);

  /// Stores \p R for (\p M, \p Selector), replacing whatever hashed there.
  void insert(Map *M, const std::string *Selector, const LookupResult &R);

  /// Drops every entry: the invalidation hook for world shape mutation.
  void flush();

  size_t capacity() const { return Table.size(); }
  size_t occupied() const { return Occupied; }
  const Stats &stats() const { return Counters; }

  /// GC-roots every Holder object a cached result points at, updating the
  /// cached pointer in place when a scavenge relocates the holder; slot
  /// constants live in immortal maps and are rooted by the heap itself.
  void traceEntries(GcVisitor &V);

private:
  struct Entry {
    Map *M = nullptr;
    const std::string *Selector = nullptr;
    LookupResult Result;
  };

  size_t indexFor(Map *M, const std::string *Selector) const;

  std::vector<Entry> Table;
  size_t Mask = 0;
  size_t Occupied = 0;
  bool Enabled = true;
  Stats Counters;
};

/// lookupSelector() through the world's global lookup cache: probes the
/// cache first and fills it from the full parent walk on a miss. Falls back
/// to the raw walk when the cache is disabled.
LookupResult lookupSelectorCached(const World &W, Map *M,
                                  const std::string *Selector);

/// Mediates every access the compiler makes to mutable world state — the
/// compile-time lookup walk and string-literal allocation — so one compiler
/// serves both the synchronous tier-up path and the background compile
/// thread.
///
/// Synchronous mode reproduces the historical behaviour exactly: raw parent
/// walks that prime the global lookup cache, and nursery string allocation
/// via World::newString.
///
/// Background mode is the job's immutable snapshot of lookup state. Each
/// distinct (receiver map, selector) is walked once under the shared side of
/// the world's shape lock and memoized job-locally, so a compile observes
/// one consistent shape for its whole duration even if the walk is repeated;
/// the global lookup cache is never touched (it is not thread-safe).
/// Strings allocate directly into old space (Heap::allocStringShared) —
/// the nursery bump pointer belongs to the mutator. The maps every walk
/// visited accumulate in a job-visible set: the mutator's shape-mutation
/// hook, which runs under the exclusive side of the shape lock, consults it
/// via visitedMap() and cancels the job when a mutated map is one the
/// compile already depended on. Cancellation is a relaxed flag — the job
/// finishes fast (lookups report NotFound) and its result is discarded at
/// install time, never installed.
class CompileAccess {
public:
  CompileAccess(World &W, bool Background) : W(W), Background(Background) {}

  CompileAccess(const CompileAccess &) = delete;
  CompileAccess &operator=(const CompileAccess &) = delete;

  bool background() const { return Background; }

  /// Compile-time lookup of \p Selector starting at \p M. Appends the maps
  /// the walk examined to \p WalkedOut (the dependency set, see
  /// lookupSelector). In background mode a memoized repeat appends the maps
  /// the original walk examined.
  LookupResult lookup(Map *M, const std::string *Selector,
                      std::vector<Map *> *WalkedOut);

  /// Allocates the string object backing a literal in compiled code.
  Value stringLiteral(const std::string &S);

  /// Test hook: fires once, after the first background lookup walk
  /// completes and its locks are released. Gives race tests a
  /// deterministic "mid-compile, with recorded dependencies" point to
  /// mutate shapes against. Never fires in synchronous mode.
  void setFirstWalkHook(std::function<void()> Hook) {
    OnFirstWalk = std::move(Hook);
  }

  /// Marks the job cancelled (mutator, under the exclusive shape lock).
  void cancel() { CancelFlag.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return CancelFlag.load(std::memory_order_relaxed);
  }

  /// True when any lookup this compile performed walked \p M — i.e. the
  /// result so far depends on \p M's shape. Caller must hold the world's
  /// shape lock exclusively (the worker appends only under the shared
  /// side, so exclusive holders observe a quiescent, fully-published set).
  bool visitedMap(const Map *M) const {
    for (const Map *V : VisitedMaps)
      if (V == M)
        return true;
    return false;
  }

private:
  struct MemoEntry {
    LookupResult Result;
    std::vector<Map *> Walked;
  };
  struct KeyHash {
    size_t operator()(const std::pair<Map *, const std::string *> &K) const {
      size_t H1 = std::hash<const void *>()(K.first);
      size_t H2 = std::hash<const void *>()(K.second);
      return H1 ^ (H2 * 0x9e3779b97f4a7c15ULL);
    }
  };

  World &W;
  bool Background;
  std::atomic<bool> CancelFlag{false};
  std::function<void()> OnFirstWalk;
  bool FirstWalkFired = false;
  /// Maps visited by any walk so far, deduplicated. Appended under the
  /// shared shape lock; read by the mutator under the exclusive side.
  std::vector<Map *> VisitedMaps;
  std::unordered_map<std::pair<Map *, const std::string *>, MemoEntry,
                     KeyHash>
      Memo;
};

} // namespace mself

#endif // MINISELF_RUNTIME_LOOKUP_H
