//===-- runtime/shared_tier.h - Shared immutable code tier ------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide tier of immutable compilation artifacts shared by every
/// isolate of a SharedRuntime, and the per-isolate bridge that moves
/// compiled code in and out of it. The paper's compiler products are
/// immutable once produced; this tier makes that immutability pay at server
/// scale by sharing three of them across isolates:
///
///  1. **Interned strings** — one StringInterner (internally synchronized),
///     so selector pointers mean the same thing in every isolate.
///  2. **Parsed ASTs** — programs cached by exact source text, owned by
///     shared_ptr so worlds that loaded a program keep it alive and the
///     refcount tracks isolate teardown. One parse serves every isolate
///     that loads the same source (a server's session scripts).
///  3. **Compiled code** — CodeArtifact, a *portable* rendering of a
///     CompiledFunction keyed by (method source identity, receiver map
///     shape signature, world shape signature, policy fingerprint, tier).
///     Artifacts contain no per-isolate pointers: literal heap values
///     become locators (immediates, string contents, lobby constant-slot
///     paths), map references become shape signatures or native tags, and
///     AST/selector pointers are already shared via 1 and 2. Rehydration in
///     a consumer isolate rebinds every reference against that isolate's
///     heap and maps.
///
/// Keying is copy-on-write: a shape mutation in one isolate changes *its*
/// signatures, so its future lookups use forked keys while artifacts
/// published under the old keys keep serving every isolate still shaped
/// that way. Nothing is ever invalidated across isolates — invalidation
/// stays a per-isolate affair (CodeManager::invalidateDependents), exactly
/// as before.
///
/// The artifact cache is **single-flight**: the first prober of a missing
/// key gets a claim and compiles; concurrent probers of the same key block
/// until the claim resolves, then rehydrate the published artifact — one
/// compile and one cached artifact per key, process-wide. Functions whose
/// code cannot be rendered portably (a literal reachable only through a
/// data slot, say) publish an *unportable* marker instead, and every
/// isolate compiles those locally — always sound, never shared.
///
/// Thread model: every SharedTier method is thread-safe. The bridge is
/// per-isolate, used on that isolate's mutator thread only.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_RUNTIME_SHARED_TIER_H
#define MINISELF_RUNTIME_SHARED_TIER_H

#include "bytecode/bytecode.h"
#include "parser/ast.h"
#include "runtime/shapesig.h"
#include "support/interner.h"

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace mself {

struct CompileRequest; // interp/interp.h; the bridge consumes requests by
                       // reference so only shared_tier.cpp needs the type.

/// A point-in-time snapshot of the shared tier's counters (plain values; the
/// live counters are atomics). Aggregated into ServerTelemetry.
struct SharedTierStats {
  // Parsed-AST cache.
  uint64_t AstHits = 0;
  uint64_t AstMisses = 0; ///< Parses performed (one per distinct source).
  uint64_t AstPrograms = 0; ///< Programs currently cached.
  // Compiled-code artifact cache. Every probe is exactly one of Hits /
  // Misses (claim granted → the prober compiles and publishes) /
  // UnportableProbes (the key is marked non-portable → local compile).
  uint64_t CodeHits = 0;
  uint64_t CodeMisses = 0;
  uint64_t CodeWaits = 0; ///< Probes that blocked on another isolate's fill.
  uint64_t CodeUnportableProbes = 0;
  uint64_t CodeFills = 0;           ///< Artifacts published.
  uint64_t CodeUnportableMarks = 0; ///< Keys recorded as non-portable.
  uint64_t RehydrateFailures = 0;   ///< Ready artifacts a consumer world
                                    ///< could not rebind (fell back local).
  uint64_t Artifacts = 0;       ///< Cached artifacts (ready keys).
  uint64_t InternedStrings = 0; ///< Shared interner population.

  /// Fraction of keyed probes served by an existing artifact — the bench's
  /// cross-isolate code-cache hit rate.
  double hitRate() const {
    uint64_t Total = CodeHits + CodeMisses + CodeUnportableProbes;
    return Total ? static_cast<double>(CodeHits) / static_cast<double>(Total)
                 : 0.0;
  }
};

/// A portable compiled function: everything in CompiledFunction with the
/// per-isolate pointers replaced by locators. See the file comment.
struct CodeArtifact {
  struct LitRef {
    enum class K : uint8_t { Empty, Int, Nil, True, False, Str, ObjPath };
    K Kind = K::Empty;
    int64_t Int = 0;
    std::string Str; ///< String literal contents (owned).
    std::vector<const std::string *> Path; ///< Lobby constant-slot chain.
  };
  struct MapRef {
    enum class K : uint8_t { Receiver, Native, BySig };
    K Kind = K::Receiver;
    NativeMapTag Tag = NativeMapTag::None;
    uint64_t Sig = 0;
  };

  std::vector<int32_t> Code;
  std::vector<LitRef> Literals;
  std::vector<MapRef> MapPool;
  std::vector<const std::string *> SelectorPool; ///< Shared-interner ptrs.
  std::vector<const ast::BlockExpr *> BlockPool; ///< Shared-AST ptrs.
  size_t NumCaches = 0; ///< Consumers get fresh, empty inline caches.

  int NumRegs = 0;
  int NumArgs = 0;
  int IncomingEnvReg = -1;
  bool IsBlockUnit = false;
  const ast::Code *Source = nullptr;
  const std::string *Name = nullptr;
  CompileStats Stats; ///< Producer's compile stats (code-size metrics).
  std::vector<MapRef> DependsOn; ///< Shape dependency set, re-bound on use.
};

/// The shared tier: interner + AST cache + single-flight artifact cache.
class SharedTier {
public:
  /// Cross-isolate cache key for compiled code. Source is a shared AST
  /// node, so pointer identity *is* method source identity for every
  /// isolate that parsed through this tier.
  struct ArtifactKey {
    const ast::Code *Source = nullptr;
    uint64_t ReceiverSig = 0; ///< 0: uncustomized.
    uint64_t WorldSig = 0;
    uint64_t PolicyFp = 0;
    /// The request's CompileTier. Artifacts are tier-keyed, never
    /// tier-special-cased: baseline and optimized code of one method are
    /// distinct keys. (BBV requests never reach keying — their code is
    /// patched in place per execution, so keyFor declines them.)
    uint8_t Tier = 0;
    bool BlockUnit = false;

    bool operator==(const ArtifactKey &O) const {
      return Source == O.Source && ReceiverSig == O.ReceiverSig &&
             WorldSig == O.WorldSig && PolicyFp == O.PolicyFp &&
             Tier == O.Tier && BlockUnit == O.BlockUnit;
    }
    struct Hash {
      size_t operator()(const ArtifactKey &K) const {
        uint64_t H = std::hash<const void *>()(K.Source);
        H = H * 1099511628211ull ^ K.ReceiverSig;
        H = H * 1099511628211ull ^ K.WorldSig;
        H = H * 1099511628211ull ^ K.PolicyFp;
        H = H * 1099511628211ull ^
            (static_cast<uint64_t>(K.Tier) << 1 |
             static_cast<uint64_t>(K.BlockUnit));
        return static_cast<size_t>(H);
      }
    };
  };

  enum class Probe {
    Ready,      ///< An artifact exists; rehydrate it.
    Claimed,    ///< Caller owns the fill: compile, then publish().
    Unportable, ///< Known non-portable; compile locally, don't publish.
  };

  StringInterner &interner() { return Interner; }

  /// Parses \p Source through the cache: one parse per distinct source
  /// text, every later load returns the same immutable Program. \returns
  /// null (and sets \p ErrOut) on parse errors, which are not cached.
  std::shared_ptr<const ast::Program> parseProgram(const std::string &Source,
                                                   std::string &ErrOut);

  /// Single-flight probe. Blocks while another isolate holds the claim for
  /// \p K; on Ready, \p Out holds the artifact.
  Probe acquire(const ArtifactKey &K, std::shared_ptr<const CodeArtifact> &Out);

  /// Non-blocking probe that only reports ready artifacts (used by the
  /// promotion trigger to skip the background queue when the optimized
  /// code already exists process-wide).
  std::shared_ptr<const CodeArtifact> peekReady(const ArtifactKey &K);

  /// Resolves the claim returned by acquire(): a non-null \p A is published
  /// for every present and future prober; null records the key as
  /// unportable. Wakes blocked probers either way.
  void publish(const ArtifactKey &K, std::shared_ptr<const CodeArtifact> A);

  /// Publish-if-absent for results produced outside a claim (background
  /// promotions install first, publish after). Never disturbs an existing
  /// entry or an in-flight claim. \returns true when a (non-null) artifact
  /// was stored.
  bool tryPublish(const ArtifactKey &K, std::shared_ptr<const CodeArtifact> A);

  void noteRehydrateFailure() {
    Counters.RehydrateFailures.fetch_add(1, std::memory_order_relaxed);
  }

  SharedTierStats statsSnapshot() const;

  size_t programCount() const;
  size_t artifactCount() const;
  /// shared_ptr use count of the cached program for \p Source (0: not
  /// cached). 1 means only the tier holds it — the refcount-hygiene probe
  /// the isolate-teardown churn test asserts on.
  long programUseCount(const std::string &Source) const;

private:
  struct Entry {
    enum class S : uint8_t { InFlight, Ready, Unportable } State = S::InFlight;
    std::shared_ptr<const CodeArtifact> Art;
  };
  struct Atomic {
    std::atomic<uint64_t> AstHits{0}, AstMisses{0};
    std::atomic<uint64_t> CodeHits{0}, CodeMisses{0}, CodeWaits{0};
    std::atomic<uint64_t> CodeUnportableProbes{0};
    std::atomic<uint64_t> CodeFills{0}, CodeUnportableMarks{0};
    std::atomic<uint64_t> RehydrateFailures{0};
  };

  StringInterner Interner;

  mutable std::mutex AstMutex;
  std::unordered_map<std::string, std::shared_ptr<const ast::Program>> Asts;

  mutable std::mutex CodeMutex;
  std::condition_variable CodeCV;
  std::unordered_map<ArtifactKey, Entry, ArtifactKey::Hash> Artifacts;

  Atomic Counters;
};

/// One isolate's doorway to the shared tier, used on that isolate's mutator
/// thread only. Owns the isolate's ShapeSigCache and performs the
/// portable-artifact ⇄ CompiledFunction conversions against the isolate's
/// world. Every fallible step (signing the receiver, locating a literal,
/// rebinding a map) degrades to "compile locally" — sharing is an
/// optimization, never a soundness requirement.
class SharedCodeBridge {
public:
  SharedCodeBridge(SharedTier &T, World &W, uint64_t PolicyFp)
      : T(T), W(W), PolicyFp(PolicyFp), Sigs(W) {}

  struct Ticket {
    bool HasKey = false;  ///< False: receiver/world unsignable, stay local.
    bool Claimed = false; ///< True: caller must publish() after compiling.
    bool RehydrateFailed = false; ///< A ready artifact would not rebind.
    SharedTier::ArtifactKey Key;
  };

  /// Probes the tier for \p Req — the same CompileRequest the CodeManager
  /// and CompileQueue traffic in. May block on another isolate's in-flight
  /// fill. \returns a rehydrated function ready for adoption, or null — in
  /// which case the caller compiles locally and, when \p Out.Claimed,
  /// publishes the result.
  std::unique_ptr<CompiledFunction> acquire(const CompileRequest &Req,
                                            Ticket &Out);

  /// Non-blocking: rehydrates only an already-published artifact for
  /// \p Req. Used by the promotion trigger to bypass the compile queue
  /// entirely when some isolate already paid for the optimized code.
  std::unique_ptr<CompiledFunction> tryAcquireReady(const CompileRequest &Req);

  /// Resolves \p Tk's claim with the locally compiled \p F. \returns true
  /// when \p F rendered portably (artifact published), false when the key
  /// was recorded unportable.
  bool publish(const Ticket &Tk, const CompiledFunction &F);

  /// Publishes \p F under \p Req's key if absent (background-promotion
  /// results, produced outside any claim). \returns true when an artifact
  /// was actually published; false when unkeyable, unportable, or already
  /// present.
  bool publishIfAbsent(const CompileRequest &Req, const CompiledFunction &F);

  SharedTier &tier() { return T; }
  ShapeSigCache &sigs() { return Sigs; }

private:
  /// Builds the artifact key for \p Req. False when the request has no
  /// portable identity — an unsignable receiver/world, or a BBV request
  /// (lazily self-patching code is inherently isolate-local); the caller
  /// compiles locally.
  bool keyFor(const CompileRequest &Req, SharedTier::ArtifactKey &Out);
  /// CompiledFunction → portable artifact; null when any reference has no
  /// portable rendering.
  std::shared_ptr<const CodeArtifact> build(const CompiledFunction &F);
  /// Portable artifact → CompiledFunction bound to this world; null when a
  /// locator does not resolve here (shape drift since keying — rare, the
  /// world signature already gates gross mismatches).
  std::unique_ptr<CompiledFunction> rehydrate(const CodeArtifact &A,
                                              Map *ReceiverMap);

  SharedTier &T;
  World &W;
  uint64_t PolicyFp;
  ShapeSigCache Sigs;
};

} // namespace mself

#endif // MINISELF_RUNTIME_SHARED_TIER_H
