//===-- runtime/selector.h - Selector utilities -----------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Selector helpers: arity computation and the cache of selectors the
/// runtime and compiler treat specially (block invocation, the inlinable
/// control-structure selectors, and the type-predicted arithmetic
/// selectors from the paper's type-prediction table).
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_RUNTIME_SELECTOR_H
#define MINISELF_RUNTIME_SELECTOR_H

#include "support/interner.h"

#include <string>

namespace mself {

/// \returns the number of arguments selector \p Sel takes: keyword parts
/// for keyword selectors, 1 for binary operators, 0 for unary names.
int selectorArity(const std::string &Sel);

/// Interned selectors with special runtime/compiler meaning.
struct CommonSelectors {
  explicit CommonSelectors(StringInterner &In);

  const std::string *Value;        ///< "value"
  const std::string *Value1;       ///< "value:"
  const std::string *Value2;       ///< "value:With:"
  const std::string *Value3;       ///< "value:With:With:"
  const std::string *WhileTrue;    ///< "whileTrue:"
  const std::string *WhileFalse;   ///< "whileFalse:"
  const std::string *IfTrue;       ///< "ifTrue:"
  const std::string *IfFalse;      ///< "ifFalse:"
  const std::string *IfTrueFalse;  ///< "ifTrue:False:"
  const std::string *IfFalseTrue;  ///< "ifFalse:True:"

  /// \returns the block-invocation selector for \p Argc arguments, or null.
  const std::string *valueSelector(int Argc) const {
    switch (Argc) {
    case 0:
      return Value;
    case 1:
      return Value1;
    case 2:
      return Value2;
    case 3:
      return Value3;
    default:
      return nullptr;
    }
  }
};

/// True for the binary selectors whose receiver the compiler predicts to be
/// a small integer (the paper's type prediction: "the receiver of a +
/// message is nine times more likely to be a small integer").
bool isIntPredictedSelector(const std::string &Sel);

} // namespace mself

#endif // MINISELF_RUNTIME_SELECTOR_H
