//===-- runtime/primitives.h - Robust primitive operations ------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The primitive operations of mini-SELF. All primitives are *robust* in the
/// paper's sense (§3.2.3): argument types, overflow, zero divisors, and
/// array bounds are checked at the start, and a failing primitive transfers
/// control to the caller's IfFail: handler (or the default error routine).
/// The optimizing compiler's job is to prove these checks away.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_RUNTIME_PRIMITIVES_H
#define MINISELF_RUNTIME_PRIMITIVES_H

#include "vm/value.h"

#include <string>

namespace mself {

class World;

/// Identifies a primitive operation.
enum class PrimId : int32_t {
  IntAdd,   ///< _IntAdd:    fails on non-int operand or overflow.
  IntSub,   ///< _IntSub:
  IntMul,   ///< _IntMul:
  IntDiv,   ///< _IntDiv:    also fails on zero divisor.
  IntMod,   ///< _IntMod:
  IntLT,    ///< _IntLT:     fails on non-int operand.
  IntLE,    ///< _IntLE:
  IntGT,    ///< _IntGT:
  IntGE,    ///< _IntGE:
  IntEQ,    ///< _IntEQ:
  IntNE,    ///< _IntNE:
  Eq,       ///< _Eq:        identity; never fails.
  At,       ///< _At:        fails unless receiver array, index int in bounds.
  AtPut,    ///< _At:Put:
  Size,     ///< _Size       arrays and strings.
  VectorNew,        ///< _VectorNew:          nil-filled array.
  VectorNewFilling, ///< _VectorNew:Filling:
  Clone,    ///< _Clone      shallow copy sharing the map.
  StrCat,   ///< _StrCat:    string concatenation.
  StrEq,    ///< _StrEq:     string content equality.
  Print,    ///< _Print      writes receiver to the world's output.
  PrintLine,///< _PrintLine  same plus newline.
  ErrorOp,  ///< _Error:     always fails, recording the message.
  StrAt,    ///< _StrAt:     character code at index; fails out of bounds.
  StrFromTo,///< _StrFrom:To: substring [from, to); fails on bad range.
  Invalid,
};

/// Static facts about one primitive.
struct PrimInfo {
  PrimId Id = PrimId::Invalid;
  const char *Selector = nullptr; ///< Without any IfFail: part.
  int Argc = 0;                   ///< Arguments besides the receiver.
  bool CanFail = true;
  bool HasSideEffects = false; ///< Excludes it from constant folding.
};

/// \returns the primitive named by \p Selector, or Invalid.
PrimId primIdFor(const std::string &Selector);

/// \returns static facts about \p Id (Id must be valid).
const PrimInfo &primInfo(PrimId Id);

/// Executes primitive \p Id with receiver Window[0] and arguments
/// Window[1..Argc]. On success writes Result and returns true; on failure
/// returns false (the failure message is recorded in the World).
bool execPrimitive(World &W, PrimId Id, const Value *Window, Value &Result);

} // namespace mself

#endif // MINISELF_RUNTIME_PRIMITIVES_H
