//===-- runtime/selector.cpp - Selector utilities --------------------------===//

#include "runtime/selector.h"

#include <cctype>

using namespace mself;

int mself::selectorArity(const std::string &Sel) {
  if (Sel.empty())
    return 0;
  char C0 = Sel[0];
  if (std::isalpha(static_cast<unsigned char>(C0)) || C0 == '_') {
    int N = 0;
    for (char C : Sel)
      if (C == ':')
        ++N;
    return N;
  }
  return 1; // binary operator
}

CommonSelectors::CommonSelectors(StringInterner &In)
    : Value(In.intern("value")), Value1(In.intern("value:")),
      Value2(In.intern("value:With:")), Value3(In.intern("value:With:With:")),
      WhileTrue(In.intern("whileTrue:")), WhileFalse(In.intern("whileFalse:")),
      IfTrue(In.intern("ifTrue:")), IfFalse(In.intern("ifFalse:")),
      IfTrueFalse(In.intern("ifTrue:False:")),
      IfFalseTrue(In.intern("ifFalse:True:")) {}

bool mself::isIntPredictedSelector(const std::string &Sel) {
  return Sel == "+" || Sel == "-" || Sel == "*" || Sel == "/" || Sel == "%" ||
         Sel == "<" || Sel == "<=" || Sel == ">" || Sel == ">=" ||
         Sel == "==" || Sel == "!=";
}
