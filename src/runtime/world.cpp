//===-- runtime/world.cpp - The mini-SELF object world --------------------===//

#include "runtime/world.h"

#include "parser/parser.h"
#include "runtime/lookup.h"
#include "runtime/shared_tier.h"

#include <cassert>

using namespace mself;
using namespace mself::ast;

World::World(Heap &H, SharedTier *Tier)
    : H(H), Tier(Tier), Interner(Tier ? Tier->interner() : OwnInterner) {
  Sels = std::make_unique<CommonSelectors>(Interner);
  bootNativeMaps();
  H.addRootProvider(this);
  loadCoreLibrary();
  bindNativeTraits();
}

World::~World() { H.removeRootProvider(this); }

void World::traceRoots(GcVisitor &V) {
  V.visitObject(Lobby);
  V.visit(Nil);
  V.visit(True);
  V.visit(False);
  for (Value &R : LiteralRoots)
    V.visit(R);
  // Cached lookup results hold Object* (slot holders) and Values; root them
  // so cache entries never outlive what they point at.
  LookupCache.traceEntries(V);
}

void World::bootNativeMaps() {
  LobbyMap = H.newMap(ObjectKind::Plain, "lobby");
  NilMap = H.newMap(ObjectKind::Plain, "nil");
  SmallIntMap = H.newMap(ObjectKind::SmallInt, "smallInt");
  ArrayMap = H.newMap(ObjectKind::Array, "vector");
  StringMap = H.newMap(ObjectKind::String, "string");
  BlockMap = H.newMap(ObjectKind::Block, "block");
  MethodMap = H.newMap(ObjectKind::Method, "method");
  EnvMap = H.newMap(ObjectKind::Env, "environment");

  // Native maps get a parent slot that is late-bound to a traits object
  // defined by the core library.
  const std::string *ParentName = Interner.intern("traits");
  SmallIntParentSlot = SmallIntMap->addSlot(ParentName, SlotKind::Parent);
  ArrayParentSlot = ArrayMap->addSlot(ParentName, SlotKind::Parent);
  StringParentSlot = StringMap->addSlot(ParentName, SlotKind::Parent);
  BlockParentSlot = BlockMap->addSlot(ParentName, SlotKind::Parent);
  NilParentSlot = NilMap->addSlot(ParentName, SlotKind::Parent);

  Lobby = H.allocPlain(LobbyMap);
  Object *NilObj = H.allocPlain(NilMap);
  Nil = Value::fromObject(NilObj);

  // The lobby names itself (as in SELF) and nil.
  LobbyMap->addSlot(Interner.intern("lobby"), SlotKind::Constant,
                    Value::fromObject(Lobby));
  LobbyMap->addSlot(Interner.intern("nil"), SlotKind::Constant, Nil);
}

void World::loadCoreLibrary() {
  std::vector<const Code *> Exprs;
  std::string Err;
  bool Ok = loadSource(kCoreLibrarySource, Exprs, Err);
  if (!Ok) {
    fprintf(stderr, "core library failed to load: %s\n", Err.c_str());
    assert(false && "core library must load");
  }
  assert(Exprs.empty() && "core library must contain only definitions");
}

void World::bindNativeTraits() {
  auto bind = [&](const char *Name, Map *M, int SlotIndex) {
    const SlotDesc *S = LobbyMap->findSlot(Interner.intern(Name));
    assert(S && S->Kind == SlotKind::Constant && "missing core traits");
    M->setSlotConstant(SlotIndex, S->Constant);
  };
  bind("intTraits", SmallIntMap, SmallIntParentSlot);
  bind("vectorTraits", ArrayMap, ArrayParentSlot);
  bind("stringTraits", StringMap, StringParentSlot);
  bind("blockTraits", BlockMap, BlockParentSlot);
  // nil inherits straight from the lobby (print, ==, isNil and globals).
  NilMap->setSlotConstant(NilParentSlot, Value::fromObject(Lobby));

  auto wellKnown = [&](const char *Name) {
    const SlotDesc *S = LobbyMap->findSlot(Interner.intern(Name));
    assert(S && "missing core well-known object");
    return S->Constant;
  };
  True = wellKnown("true");
  False = wellKnown("false");
  TrueMap = True.asObject()->map();
  FalseMap = False.asObject()->map();
}

bool World::loadSource(const std::string &Source,
                       std::vector<const Code *> &ExprsOut,
                       std::string &ErrOut) {
  const Program *ProgPtr = nullptr;
  if (Tier) {
    // Shared mode: parse through the tier's cache. Every isolate loading
    // the same source gets the same immutable Program, so AST-pointer
    // identity (method bodies, block expressions) holds across isolates —
    // the foundation of cross-isolate code-artifact keys.
    std::shared_ptr<const Program> Shared = Tier->parseProgram(Source, ErrOut);
    if (!Shared)
      return false;
    SharedPrograms.push_back(Shared);
    ProgPtr = Shared.get();
  } else {
    Programs.push_back(std::make_unique<Program>());
    Parser P(*Programs.back(), Interner);
    ParseResult R = P.parseTopLevel(Source);
    if (!R.Ok) {
      ErrOut = R.Error;
      return false;
    }
    ProgPtr = Programs.back().get();
  }
  const Program &Prog = *ProgPtr;
  for (const TopLevelItem &Item : Prog.TopLevel) {
    if (Item.Slot) {
      if (!defineLobbySlot(*Item.Slot, ErrOut))
        return false;
    } else {
      ExprsOut.push_back(Item.ExprBody);
    }
  }
  return true;
}

bool World::defineLobbySlot(const SlotDef &Def, std::string &ErrOut) {
  if (LobbyMap->findSlot(Def.Name)) {
    ErrOut = "line " + std::to_string(Def.Line) + ": lobby slot '" +
             *Def.Name + "' is already defined";
    return false;
  }
  Value V;
  if (!evalSlotValue(Def, V, ErrOut))
    return false;

  // The lobby map is published: the background compile thread may be
  // walking it (under the shared side of the shape lock) right now, so the
  // mutation and its invalidation fan-out are one exclusive critical
  // section. The shape-mutation hook runs inside it too — by the time any
  // background lookup can resume, stale dependents are already invalidated
  // and dependent in-flight compiles cancelled.
  std::unique_lock<std::shared_mutex> Guard(ShapeLock);
  if (Def.Kind == SlotKind::Data) {
    const std::string *Setter = Interner.intern(*Def.Name + ":");
    LobbyMap->addSlot(Def.Name, SlotKind::Data, V, Setter);
    // The lobby is the one object whose map grows after creation; keep its
    // field storage in step. The bulk resize stores references (nil fill)
    // without per-store barriers, so re-scan the lobby afterwards.
    Lobby->fields().resize(static_cast<size_t>(LobbyMap->fieldCount()),
                           Nil);
    Lobby->setField(LobbyMap->fieldCount() - 1, V);
    H.writeBarrierAll(Lobby);
    noteShapeMutation(LobbyMap);
    return true;
  }
  LobbyMap->addSlot(Def.Name, Def.Kind, V);
  noteShapeMutation(LobbyMap);
  return true;
}

void World::noteShapeMutation(Map *Mutated) {
  // A map gained a slot: cached SlotDesc pointers may now dangle (addSlot
  // can reallocate the slot vector) and cached NotFound results may have
  // become reachable. Drop everything derived from the old shape, and tell
  // the listener which map changed so it can invalidate precisely the
  // compiled functions whose lookups walked it.
  ++ShapeVersion;
  LookupCache.flush();
  if (MutationHook)
    MutationHook(Mutated);
}

bool World::evalSlotValue(const SlotDef &Def, Value &Out,
                          std::string &ErrOut) {
  switch (Def.ValueKind) {
  case SlotValueKind::IntConst:
    if (!fitsSmallInt(Def.IntValue)) {
      ErrOut = "integer slot value out of range";
      return false;
    }
    Out = Value::fromInt(Def.IntValue);
    return true;
  case SlotValueKind::StrConst: {
    StringObj *S = newString(*Def.StrValue);
    Out = Value::fromObject(S);
    LiteralRoots.push_back(Out);
    return true;
  }
  case SlotValueKind::Method: {
    MethodObj *M = H.allocMethod(MethodMap, Def.MethodBody, Def.Name);
    Out = Value::fromObject(M);
    LiteralRoots.push_back(Out);
    return true;
  }
  case SlotValueKind::ObjectLit: {
    bool Ok = true;
    Object *O = buildObjectLiteral(*Def.Object, ErrOut, Ok);
    if (!Ok)
      return false;
    Out = Value::fromObject(O);
    LiteralRoots.push_back(Out);
    return true;
  }
  case SlotValueKind::PathExpr:
    return resolvePath(Def.PathNames, Out, ErrOut);
  }
  ErrOut = "unsupported slot value";
  return false;
}

Object *World::buildObjectLiteral(const ObjectLit &Lit, std::string &ErrOut,
                                  bool &Ok) {
  Map *M = H.newMap(ObjectKind::Plain, "objectLiteral");
  for (const SlotDef &S : Lit.Slots) {
    if (S.Kind == SlotKind::Argument) {
      ErrOut = "block arguments are not allowed in object literals";
      Ok = false;
      return nullptr;
    }
    Value V;
    if (!evalSlotValue(S, V, ErrOut)) {
      Ok = false;
      return nullptr;
    }
    if (S.Kind == SlotKind::Data) {
      const std::string *Setter = Interner.intern(*S.Name + ":");
      M->addSlot(S.Name, SlotKind::Data, V, Setter);
    } else {
      M->addSlot(S.Name, S.Kind, V);
    }
  }
  return H.allocPlain(M);
}

bool World::resolvePath(const std::vector<const std::string *> &Names,
                        Value &Out, std::string &ErrOut) {
  if (Names.empty()) {
    ErrOut = "empty constant path";
    return false;
  }
  Value Cur = Value::fromObject(Lobby);
  for (const std::string *Name : Names) {
    Map *M = mapOf(Cur);
    LookupResult R = lookupSelector(*this, M, Name);
    if (R.ResultKind != LookupResult::Kind::Constant &&
        R.ResultKind != LookupResult::Kind::Method) {
      ErrOut = "constant path name '" + *Name + "' does not resolve to a "
               "constant slot";
      return false;
    }
    Cur = R.Slot->Constant;
  }
  Out = Cur;
  return true;
}
