//===-- runtime/world.h - The mini-SELF object world ------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One mini-SELF universe: the lobby (the global namespace object), the
/// well-known objects (nil, true, false), the synthetic maps of the native
/// representations (small integers, arrays, strings, blocks), and the loader
/// that installs parsed slot definitions. The core library (runtime/
/// corelib.cpp) is loaded at construction; it defines the traits objects
/// that native maps inherit from, so that messages like `3 + 4` find
/// ordinary mini-SELF methods built on robust primitives.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_RUNTIME_WORLD_H
#define MINISELF_RUNTIME_WORLD_H

#include "parser/ast.h"
#include "runtime/lookup.h"
#include "runtime/selector.h"
#include "support/interner.h"
#include "vm/heap.h"

#include <cstdio>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace mself {

class SharedTier;

/// Source text of the embedded core library.
extern const char *kCoreLibrarySource;

class World : public RootProvider {
public:
  /// Boots a fresh universe over \p H, including the core library.
  /// Asserts on core-library load failure (it is embedded and must parse).
  /// With a shared \p Tier, the world interns through the tier's
  /// process-wide interner and loads source through its parsed-AST cache,
  /// so selector pointers and AST nodes are identical across every isolate
  /// of the same SharedRuntime; without one, the world owns both — the
  /// single-VM configuration, unchanged.
  explicit World(Heap &H, SharedTier *Tier = nullptr);
  ~World() override;

  Heap &heap() { return H; }
  StringInterner &interner() { return Interner; }
  SharedTier *sharedTier() const { return Tier; }
  const CommonSelectors &selectors() const { return *Sels; }

  Object *lobby() const { return Lobby; }
  Value lobbyValue() const { return Value::fromObject(Lobby); }
  Value nilValue() const { return Nil; }
  Value trueValue() const { return True; }
  Value falseValue() const { return False; }

  Map *smallIntMap() const { return SmallIntMap; }
  Map *arrayMap() const { return ArrayMap; }
  Map *stringMap() const { return StringMap; }
  Map *blockMap() const { return BlockMap; }
  Map *methodMap() const { return MethodMap; }
  Map *envMap() const { return EnvMap; }
  Map *nilMap() const { return NilMap; }
  Map *trueMap() const { return TrueMap; }
  Map *falseMap() const { return FalseMap; }

  /// \returns the map describing \p V (the synthetic int map for ints).
  Map *mapOf(Value V) const {
    return V.isInt() ? SmallIntMap : V.asObject()->map();
  }

  /// \returns the boolean object for \p B.
  Value boolValue(bool B) const { return B ? True : False; }

  //===------------------------------------------------------------------===//
  // Lookup caching and shape-mutation invalidation
  //===------------------------------------------------------------------===//

  /// This world's (map, selector) lookup cache — per isolate, so a flush
  /// or shape mutation here never perturbs another isolate's dispatch.
  /// Mutable because probing a cache is logically const on the world.
  GlobalLookupCache &lookupCache() const { return LookupCache; }

  /// Invalidation hook: called after any post-boot shape mutation — map
  /// \p Mutated gained a slot. Flushes the global lookup cache, bumps the
  /// shape version, and notifies the registered listener (the driver
  /// flushes the code cache's inline caches and invalidates compiled
  /// functions that depend on the mutated map's shape).
  void noteShapeMutation(Map *Mutated);

  /// Registers \p Hook to run on every shape mutation, receiving the map
  /// that gained a slot (one listener; the VirtualMachine uses it to flush
  /// inline caches and invalidate dependent compiled code).
  void setShapeMutationHook(std::function<void(Map *)> Hook) {
    MutationHook = std::move(Hook);
  }

  /// Monotonic counter of shape mutations; cached dispatch state derived
  /// before a bump is stale.
  uint64_t shapeVersion() const { return ShapeVersion; }

  /// The shape lock orders the background compiler's map reads against
  /// mutator shape mutations. The mutator holds it exclusively around every
  /// post-boot addSlot + noteShapeMutation pair (defineLobbySlot); the
  /// background compile thread holds it shared for the duration of each
  /// compile-time lookup walk. The mutator's own reads never take it —
  /// mutations happen on the mutator thread, so its reads are ordered by
  /// program order alone.
  std::shared_mutex &shapeLock() const { return ShapeLock; }

  //===------------------------------------------------------------------===//
  // Loading
  //===------------------------------------------------------------------===//

  /// Parses \p Source. Slot definitions are installed on the lobby
  /// immediately; expression statements are appended to \p ExprsOut in
  /// program order for the caller (the VM driver) to evaluate.
  /// \returns false and sets \p ErrOut on parse or load errors.
  bool loadSource(const std::string &Source,
                  std::vector<const ast::Code *> &ExprsOut,
                  std::string &ErrOut);

  /// Installs one slot definition on the lobby.
  bool defineLobbySlot(const ast::SlotDef &Def, std::string &ErrOut);

  /// Evaluates a definition-time slot value (literal, object literal, or
  /// constant path). \returns false and sets \p ErrOut on failure.
  bool evalSlotValue(const ast::SlotDef &Def, Value &Out, std::string &ErrOut);

  //===------------------------------------------------------------------===//
  // Primitive support
  //===------------------------------------------------------------------===//

  FILE *output() const { return Out; }
  void setOutput(FILE *F) { Out = F; }

  /// Records the message of the most recent hard primitive failure.
  void setPrimError(std::string Msg) { PrimError = std::move(Msg); }
  const std::string &primError() const { return PrimError; }

  /// Creates an array with \p N nil elements.
  ArrayObj *newVector(size_t N) { return H.allocArray(ArrayMap, N, Nil); }
  StringObj *newString(std::string S) {
    return H.allocString(StringMap, std::move(S));
  }

  void traceRoots(GcVisitor &V) override;

private:
  void bootNativeMaps();
  void loadCoreLibrary();
  void bindNativeTraits();
  Object *buildObjectLiteral(const ast::ObjectLit &Lit, std::string &ErrOut,
                             bool &Ok);
  bool resolvePath(const std::vector<const std::string *> &Names, Value &Out,
                   std::string &ErrOut);

  Heap &H;
  SharedTier *Tier; ///< Null: standalone world owning its own ASTs.
  StringInterner OwnInterner;
  StringInterner &Interner; ///< OwnInterner, or the shared tier's.
  std::unique_ptr<CommonSelectors> Sels;
  std::vector<std::unique_ptr<ast::Program>> Programs; ///< Standalone mode.
  /// Retained parses from the shared tier (keeps ASTs alive; the tier's
  /// use_count tracks how many isolates still hold each program).
  std::vector<std::shared_ptr<const ast::Program>> SharedPrograms;

  Object *Lobby = nullptr;
  Value Nil, True, False;
  Map *LobbyMap = nullptr;
  Map *SmallIntMap = nullptr;
  Map *ArrayMap = nullptr;
  Map *StringMap = nullptr;
  Map *BlockMap = nullptr;
  Map *MethodMap = nullptr;
  Map *EnvMap = nullptr;
  Map *NilMap = nullptr;
  Map *TrueMap = nullptr;
  Map *FalseMap = nullptr;
  /// Parent-slot indices of native maps, late-bound to core-library traits.
  int SmallIntParentSlot = -1, ArrayParentSlot = -1, StringParentSlot = -1,
      BlockParentSlot = -1, NilParentSlot = -1;

  std::vector<Value> LiteralRoots; ///< String literals, built objects.
  mutable std::shared_mutex ShapeLock;
  mutable GlobalLookupCache LookupCache;
  std::function<void(Map *)> MutationHook;
  uint64_t ShapeVersion = 0;
  FILE *Out = stdout;
  std::string PrimError;
};

} // namespace mself

#endif // MINISELF_RUNTIME_WORLD_H
