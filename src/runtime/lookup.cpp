//===-- runtime/lookup.cpp - Message lookup through parent slots ----------===//

#include "runtime/lookup.h"

#include "vm/object.h"

#include <vector>

using namespace mself;

namespace {

/// One lookup work item: a map plus the object that holds its data fields
/// (nullptr for the original receiver).
struct WorkItem {
  Map *M;
  Object *Holder;
};

LookupResult classify(const SlotDesc *Slot, Object *Holder, bool IsAssign) {
  LookupResult R;
  R.Slot = Slot;
  R.Holder = Holder;
  if (IsAssign) {
    R.ResultKind = LookupResult::Kind::Assign;
    return R;
  }
  switch (Slot->Kind) {
  case SlotKind::Data:
    R.ResultKind = LookupResult::Kind::Data;
    break;
  case SlotKind::Constant:
  case SlotKind::Parent: {
    Value V = Slot->Constant;
    bool IsMethod =
        V.isObject() && V.asObject()->kind() == ObjectKind::Method;
    R.ResultKind = IsMethod ? LookupResult::Kind::Method
                            : LookupResult::Kind::Constant;
    break;
  }
  case SlotKind::Argument:
    R.ResultKind = LookupResult::Kind::NotFound;
    break;
  }
  return R;
}

} // namespace

LookupResult mself::lookupSelector(const World &, Map *M,
                                   const std::string *Selector) {
  // Depth-first, declaration order; Visited prevents parent cycles (the
  // lobby is commonly its own ancestor) from looping.
  std::vector<WorkItem> Stack{{M, nullptr}};
  std::vector<Map *> Visited;

  while (!Stack.empty()) {
    WorkItem Item = Stack.back();
    Stack.pop_back();

    bool Seen = false;
    for (Map *V : Visited)
      if (V == Item.M) {
        Seen = true;
        break;
      }
    if (Seen)
      continue;
    Visited.push_back(Item.M);

    if (const SlotDesc *S = Item.M->findSlot(Selector))
      if (S->Kind != SlotKind::Argument)
        return classify(S, Item.Holder, /*IsAssign=*/false);
    if (const SlotDesc *S = Item.M->findAssignSlot(Selector))
      return classify(S, Item.Holder, /*IsAssign=*/true);

    // Queue parents in reverse so the first-declared parent pops first.
    const std::vector<int> &Parents = Item.M->parentSlotIndices();
    for (auto It = Parents.rbegin(); It != Parents.rend(); ++It) {
      const SlotDesc &P = Item.M->slots()[static_cast<size_t>(*It)];
      Value PV = P.Constant;
      if (!PV.isObject())
        continue; // Unbound or non-object parent: skip.
      Object *PO = PV.asObject();
      Stack.push_back({PO->map(), PO});
    }
  }
  return LookupResult();
}
