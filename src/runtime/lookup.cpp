//===-- runtime/lookup.cpp - Message lookup through parent slots ----------===//

#include "runtime/lookup.h"

#include "runtime/world.h"
#include "vm/heap.h"
#include "vm/object.h"

#include <mutex>
#include <shared_mutex>
#include <vector>

using namespace mself;

namespace {

/// One lookup work item: a map plus the object that holds its data fields
/// (nullptr for the original receiver).
struct WorkItem {
  Map *M;
  Object *Holder;
};

LookupResult classify(const SlotDesc *Slot, Object *Holder, bool IsAssign) {
  LookupResult R;
  R.Slot = Slot;
  R.Holder = Holder;
  if (IsAssign) {
    R.ResultKind = LookupResult::Kind::Assign;
    return R;
  }
  switch (Slot->Kind) {
  case SlotKind::Data:
    R.ResultKind = LookupResult::Kind::Data;
    break;
  case SlotKind::Constant:
  case SlotKind::Parent: {
    Value V = Slot->Constant;
    bool IsMethod =
        V.isObject() && V.asObject()->kind() == ObjectKind::Method;
    R.ResultKind = IsMethod ? LookupResult::Kind::Method
                            : LookupResult::Kind::Constant;
    break;
  }
  case SlotKind::Argument:
    R.ResultKind = LookupResult::Kind::NotFound;
    break;
  }
  return R;
}

} // namespace

LookupResult mself::lookupSelector(const World &, Map *M,
                                   const std::string *Selector,
                                   std::vector<Map *> *VisitedOut) {
  // Depth-first, declaration order; Visited prevents parent cycles (the
  // lobby is commonly its own ancestor) from looping. At any return it
  // holds exactly the maps whose shape the outcome depends on, which is
  // what VisitedOut reports to the compiler's dependency tracking.
  std::vector<WorkItem> Stack{{M, nullptr}};
  std::vector<Map *> Visited;
  auto Report = [&] {
    if (VisitedOut)
      VisitedOut->insert(VisitedOut->end(), Visited.begin(), Visited.end());
  };

  while (!Stack.empty()) {
    WorkItem Item = Stack.back();
    Stack.pop_back();

    bool Seen = false;
    for (Map *V : Visited)
      if (V == Item.M) {
        Seen = true;
        break;
      }
    if (Seen)
      continue;
    Visited.push_back(Item.M);

    if (const SlotDesc *S = Item.M->findSlot(Selector))
      if (S->Kind != SlotKind::Argument) {
        Report();
        return classify(S, Item.Holder, /*IsAssign=*/false);
      }
    if (const SlotDesc *S = Item.M->findAssignSlot(Selector)) {
      Report();
      return classify(S, Item.Holder, /*IsAssign=*/true);
    }

    // Queue parents in reverse so the first-declared parent pops first.
    const std::vector<int> &Parents = Item.M->parentSlotIndices();
    for (auto It = Parents.rbegin(); It != Parents.rend(); ++It) {
      const SlotDesc &P = Item.M->slots()[static_cast<size_t>(*It)];
      Value PV = P.Constant;
      if (!PV.isObject())
        continue; // Unbound or non-object parent: skip.
      Object *PO = PV.asObject();
      Stack.push_back({PO->map(), PO});
    }
  }
  // NotFound depends on every reachable map: a slot added to any of them
  // could make the selector resolvable.
  Report();
  return LookupResult();
}

//===----------------------------------------------------------------------===//
// GlobalLookupCache
//===----------------------------------------------------------------------===//

void GlobalLookupCache::configure(size_t Entries, bool Enable) {
  size_t N = 1;
  while (N < Entries)
    N <<= 1;
  Table.assign(N, Entry());
  Mask = N - 1;
  Occupied = 0;
  Enabled = Enable;
}

size_t GlobalLookupCache::indexFor(Map *M, const std::string *Selector) const {
  // Pointer-identity hash: both keys are stable addresses (maps are
  // immortal, selectors are interned). Shift off alignment zeros, then mix
  // with two odd constants so (map, selector) pairs spread independently.
  uintptr_t A = reinterpret_cast<uintptr_t>(M) >> 4;
  uintptr_t B = reinterpret_cast<uintptr_t>(Selector) >> 4;
  uint64_t H = static_cast<uint64_t>(A) * 0x9E3779B97F4A7C15ull ^
               static_cast<uint64_t>(B) * 0xC2B2AE3D27D4EB4Full;
  H ^= H >> 29;
  return static_cast<size_t>(H) & Mask;
}

bool GlobalLookupCache::find(Map *M, const std::string *Selector,
                             LookupResult &Out) {
  if (!Enabled)
    return false;
  const Entry &E = Table[indexFor(M, Selector)];
  if (E.M == M && E.Selector == Selector) {
    ++Counters.Hits;
    Out = E.Result;
    return true;
  }
  ++Counters.Misses;
  return false;
}

void GlobalLookupCache::insert(Map *M, const std::string *Selector,
                               const LookupResult &R) {
  if (!Enabled)
    return;
  Entry &E = Table[indexFor(M, Selector)];
  if (E.M == nullptr)
    ++Occupied;
  E.M = M;
  E.Selector = Selector;
  E.Result = R;
  ++Counters.Fills;
}

void GlobalLookupCache::flush() {
  for (Entry &E : Table)
    E = Entry();
  Occupied = 0;
  ++Counters.Invalidations;
}

void GlobalLookupCache::traceEntries(GcVisitor &V) {
  for (Entry &E : Table) {
    if (E.M == nullptr)
      continue;
    // The cached Holder is updated in place when a scavenge moves it. The
    // cached SlotDesc points into an immortal map whose constant slots are
    // traced (and updated) as heap roots, so it needs no visit here.
    V.visitObject(E.Result.Holder);
  }
}

LookupResult mself::lookupSelectorCached(const World &W, Map *M,
                                         const std::string *Selector) {
  GlobalLookupCache &C = W.lookupCache();
  LookupResult R;
  if (C.find(M, Selector, R))
    return R;
  R = lookupSelector(W, M, Selector);
  C.insert(M, Selector, R);
  return R;
}

//===----------------------------------------------------------------------===//
// CompileAccess
//===----------------------------------------------------------------------===//

LookupResult CompileAccess::lookup(Map *M, const std::string *Selector,
                                   std::vector<Map *> *WalkedOut) {
  if (!Background) {
    // Synchronous tier-up on the mutator thread: exactly the historical
    // compile-time lookup — a raw walk whose result primes the global
    // lookup cache for later runtime sends.
    LookupResult R = lookupSelector(W, M, Selector, WalkedOut);
    if (W.lookupCache().enabled())
      W.lookupCache().insert(M, Selector, R);
    return R;
  }

  if (cancelled())
    return LookupResult();

  auto Key = std::make_pair(M, Selector);
  auto It = Memo.find(Key);
  if (It != Memo.end()) {
    if (WalkedOut)
      WalkedOut->insert(WalkedOut->end(), It->second.Walked.begin(),
                        It->second.Walked.end());
    return It->second.Result;
  }

  MemoEntry E;
  {
    std::shared_lock<std::shared_mutex> Guard(W.shapeLock());
    // Re-check under the lock: a mutation that landed between the probe
    // above and lock acquisition has already run the cancellation hook.
    if (cancelled())
      return LookupResult();
    E.Result = lookupSelector(W, M, Selector, &E.Walked);
    for (Map *V : E.Walked) {
      bool Seen = false;
      for (Map *Have : VisitedMaps)
        if (Have == V) {
          Seen = true;
          break;
        }
      if (!Seen)
        VisitedMaps.push_back(V);
    }
  }
  if (WalkedOut)
    WalkedOut->insert(WalkedOut->end(), E.Walked.begin(), E.Walked.end());
  LookupResult R = E.Result;
  Memo.emplace(Key, std::move(E));
  if (OnFirstWalk && !FirstWalkFired) {
    FirstWalkFired = true;
    OnFirstWalk();
  }
  return R;
}

Value CompileAccess::stringLiteral(const std::string &S) {
  if (!Background)
    return Value::fromObject(W.newString(S));
  // Off-thread: the nursery bump pointer belongs to the mutator, so string
  // literals are born old. The job's CompiledFunction literals are traced
  // as roots until install, and old space never moves, so the pointer is
  // stable for the compile's whole lifetime.
  return Value::fromObject(
      W.heap().allocStringShared(W.stringMap(), S));
}
