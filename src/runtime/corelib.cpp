//===-- runtime/corelib.cpp - The embedded mini-SELF core library ----------===//
//
// The standard world, written in mini-SELF itself. Everything here is
// ordinary user-level code: booleans are two plain objects, integer
// arithmetic is methods over robust primitives with IfFail: handlers, and
// the iteration protocol (to:Do:, upTo:Do:, ...) is user-defined control
// structure built from blocks — exactly the setting the paper's compiler
// techniques are designed for. The optimizer sees nothing special about any
// of it; it must inline its way from `1 upTo: n Do: [...]` down to a loop
// over raw arithmetic.
//
//===----------------------------------------------------------------------===//

#include "runtime/world.h"

const char *mself::kCoreLibrarySource = R"SELF(

"--- lobby-level defaults, inherited by nil and by user objects that
 declare `parent* = lobby` ---"

print = ( _Print ).
printLine = ( _PrintLine ).
printString: x = ( x print. self ).
== x = ( _Eq: x ).
!= x = ( (_Eq: x) not ).
isNil = ( _Eq: nil ).
notNil = ( (_Eq: nil) not ).
clone = ( _Clone ).
error: msg = ( _Error: msg ).
primitiveFailedError = ( _Error: 'arithmetic primitive failed' ).
indexError = ( _Error: 'index out of bounds' ).
vectorOfSize: n = ( _VectorNew: n ).
vectorOfSize: n FillingWith: v = ( _VectorNew: n Filling: v ).

"--- booleans: two ordinary objects ---"

true = ( |
  parent* = lobby.
  ifTrue: b = ( b value ).
  ifFalse: b = ( nil ).
  ifTrue: tb False: fb = ( tb value ).
  ifFalse: fb True: tb = ( tb value ).
  not = ( false ).
  and: b = ( b value ).
  or: b = ( true ).
  asBit = ( 1 ).
  print = ( 'true' _Print. self ).
| ).

false = ( |
  parent* = lobby.
  ifTrue: b = ( nil ).
  ifFalse: b = ( b value ).
  ifTrue: tb False: fb = ( fb value ).
  ifFalse: fb True: tb = ( fb value ).
  not = ( true ).
  and: b = ( false ).
  or: b = ( b value ).
  asBit = ( 0 ).
  print = ( 'false' _Print. self ).
| ).

"--- integers: robust primitives plus user-defined iteration ---"

intTraits = ( |
  parent* = lobby.
  + n = ( _IntAdd: n IfFail: [ primitiveFailedError ] ).
  - n = ( _IntSub: n IfFail: [ primitiveFailedError ] ).
  * n = ( _IntMul: n IfFail: [ primitiveFailedError ] ).
  / n = ( _IntDiv: n IfFail: [ primitiveFailedError ] ).
  % n = ( _IntMod: n IfFail: [ primitiveFailedError ] ).
  < n = ( _IntLT: n IfFail: [ primitiveFailedError ] ).
  <= n = ( _IntLE: n IfFail: [ primitiveFailedError ] ).
  > n = ( _IntGT: n IfFail: [ primitiveFailedError ] ).
  >= n = ( _IntGE: n IfFail: [ primitiveFailedError ] ).
  == n = ( _IntEQ: n IfFail: [ false ] ).
  != n = ( _IntNE: n IfFail: [ true ] ).
  min: n = ( self < n ifTrue: [ self ] False: [ n ] ).
  max: n = ( self < n ifTrue: [ n ] False: [ self ] ).
  abs = ( self < 0 ifTrue: [ 0 - self ] False: [ self ] ).
  negate = ( 0 - self ).
  isZero = ( self == 0 ).
  even = ( (self % 2) == 0 ).
  odd = ( (self % 2) != 0 ).
  between: lo And: hi = ( (self >= lo) and: [ self <= hi ] ).
  to: lim Do: blk = ( | i |
    i: self.
    [ i <= lim ] whileTrue: [ blk value: i. i: i + 1 ].
    self ).
  upTo: lim Do: blk = ( | i |
    i: self.
    [ i < lim ] whileTrue: [ blk value: i. i: i + 1 ].
    self ).
  downTo: lim Do: blk = ( | i |
    i: self.
    [ i >= lim ] whileTrue: [ blk value: i. i: i - 1 ].
    self ).
  to: lim By: step Do: blk = ( | i |
    i: self.
    [ i <= lim ] whileTrue: [ blk value: i. i: i + step ].
    self ).
  timesRepeat: blk = ( 1 to: self Do: [ :each | blk value ]. self ).
| ).

"--- blocks ---"

blockTraits = ( |
  parent* = lobby.
  whileFalse: body = ( [ self value not ] whileTrue: body. nil ).
  loop = ( [ true ] whileTrue: [ self value ]. nil ).
| ).

"--- vectors (0-based indexable collections) ---"

vectorTraits = ( |
  parent* = lobby.
  at: i = ( _At: i IfFail: [ indexError ] ).
  at: i Put: v = ( _At: i Put: v IfFail: [ indexError ] ).
  size = ( _Size ).
  isEmpty = ( self size == 0 ).
  first = ( self at: 0 ).
  last = ( self at: self size - 1 ).
  do: blk = ( 0 upTo: self size Do: [ :i | blk value: (self at: i) ]. self ).
  doIndexes: blk = ( 0 upTo: self size Do: [ :i | blk value: i ]. self ).
  atAllPut: v = ( 0 upTo: self size Do: [ :i | self at: i Put: v ]. self ).
  copy = ( _Clone ).
| ).

"--- strings ---"

stringTraits = ( |
  parent* = lobby.
  size = ( _Size ).
  , s = ( _StrCat: s IfFail: [ primitiveFailedError ] ).
  sameAs: s = ( _StrEq: s IfFail: [ false ] ).
  at: i = ( _StrAt: i IfFail: [ indexError ] ).
  copyFrom: a To: b = ( _StrFrom: a To: b IfFail: [ indexError ] ).
  isEmpty = ( self size == 0 ).
| )
)SELF";
