//===-- runtime/shared_tier.cpp - Shared immutable code tier --------------===//

#include "runtime/shared_tier.h"

#include "interp/interp.h" // CompileRequest, the bridge's traffic currency.
#include "parser/parser.h"
#include "runtime/world.h"
#include "vm/object.h"

using namespace mself;

//===----------------------------------------------------------------------===//
// SharedTier: parsed-AST cache
//===----------------------------------------------------------------------===//

std::shared_ptr<const ast::Program>
SharedTier::parseProgram(const std::string &Source, std::string &ErrOut) {
  {
    std::lock_guard<std::mutex> L(AstMutex);
    auto It = Asts.find(Source);
    if (It != Asts.end()) {
      Counters.AstHits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  // Parse outside the lock: parses are long and the parser only touches the
  // (internally synchronized) interner. Concurrent loaders of the same
  // source may both parse; the insert below keeps the first and the loser's
  // copy simply dies — same immutability either way.
  auto Prog = std::make_shared<ast::Program>();
  Parser P(*Prog, Interner);
  ParseResult R = P.parseTopLevel(Source);
  if (!R.Ok) {
    ErrOut = R.Error;
    return nullptr; // Failures are not cached; the text may be fixed.
  }
  std::lock_guard<std::mutex> L(AstMutex);
  auto It = Asts.emplace(Source,
                         std::shared_ptr<const ast::Program>(std::move(Prog)));
  if (It.second)
    Counters.AstMisses.fetch_add(1, std::memory_order_relaxed);
  else
    Counters.AstHits.fetch_add(1, std::memory_order_relaxed);
  return It.first->second;
}

size_t SharedTier::programCount() const {
  std::lock_guard<std::mutex> L(AstMutex);
  return Asts.size();
}

long SharedTier::programUseCount(const std::string &Source) const {
  std::lock_guard<std::mutex> L(AstMutex);
  auto It = Asts.find(Source);
  return It == Asts.end() ? 0 : It->second.use_count();
}

//===----------------------------------------------------------------------===//
// SharedTier: single-flight artifact cache
//===----------------------------------------------------------------------===//

SharedTier::Probe SharedTier::acquire(const ArtifactKey &K,
                                      std::shared_ptr<const CodeArtifact> &Out) {
  std::unique_lock<std::mutex> L(CodeMutex);
  bool Waited = false;
  for (;;) {
    auto It = Artifacts.find(K);
    if (It == Artifacts.end()) {
      Artifacts.emplace(K, Entry{});
      Counters.CodeMisses.fetch_add(1, std::memory_order_relaxed);
      return Probe::Claimed;
    }
    switch (It->second.State) {
    case Entry::S::Ready:
      Out = It->second.Art;
      Counters.CodeHits.fetch_add(1, std::memory_order_relaxed);
      return Probe::Ready;
    case Entry::S::Unportable:
      Counters.CodeUnportableProbes.fetch_add(1, std::memory_order_relaxed);
      return Probe::Unportable;
    case Entry::S::InFlight:
      // Another isolate holds the claim. Wait for its publish; if the
      // owner instead abandoned the claim (compile error), the entry is
      // gone on wake-up and we re-race for it.
      if (!Waited) {
        Waited = true;
        Counters.CodeWaits.fetch_add(1, std::memory_order_relaxed);
      }
      CodeCV.wait(L);
      break;
    }
  }
}

std::shared_ptr<const CodeArtifact> SharedTier::peekReady(const ArtifactKey &K) {
  std::lock_guard<std::mutex> L(CodeMutex);
  auto It = Artifacts.find(K);
  if (It == Artifacts.end() || It->second.State != Entry::S::Ready)
    return nullptr;
  Counters.CodeHits.fetch_add(1, std::memory_order_relaxed);
  return It->second.Art;
}

void SharedTier::publish(const ArtifactKey &K,
                         std::shared_ptr<const CodeArtifact> A) {
  {
    std::lock_guard<std::mutex> L(CodeMutex);
    auto It = Artifacts.find(K);
    if (It == Artifacts.end())
      It = Artifacts.emplace(K, Entry{}).first;
    if (A) {
      It->second.State = Entry::S::Ready;
      It->second.Art = std::move(A);
      Counters.CodeFills.fetch_add(1, std::memory_order_relaxed);
    } else {
      It->second.State = Entry::S::Unportable;
      Counters.CodeUnportableMarks.fetch_add(1, std::memory_order_relaxed);
    }
  }
  CodeCV.notify_all();
}

bool SharedTier::tryPublish(const ArtifactKey &K,
                            std::shared_ptr<const CodeArtifact> A) {
  std::lock_guard<std::mutex> L(CodeMutex);
  auto It = Artifacts.find(K);
  if (It != Artifacts.end())
    return false; // Ready, unportable, or claimed elsewhere — never disturb.
  Entry E;
  bool Stored = A != nullptr;
  if (A) {
    E.State = Entry::S::Ready;
    E.Art = std::move(A);
    Counters.CodeFills.fetch_add(1, std::memory_order_relaxed);
  } else {
    E.State = Entry::S::Unportable;
    Counters.CodeUnportableMarks.fetch_add(1, std::memory_order_relaxed);
  }
  Artifacts.emplace(K, std::move(E));
  // No waiters possible: nobody was in-flight on an absent key.
  return Stored;
}

size_t SharedTier::artifactCount() const {
  std::lock_guard<std::mutex> L(CodeMutex);
  size_t N = 0;
  for (const auto &KV : Artifacts)
    if (KV.second.State == Entry::S::Ready)
      ++N;
  return N;
}

SharedTierStats SharedTier::statsSnapshot() const {
  SharedTierStats S;
  S.AstHits = Counters.AstHits.load(std::memory_order_relaxed);
  S.AstMisses = Counters.AstMisses.load(std::memory_order_relaxed);
  S.AstPrograms = programCount();
  S.CodeHits = Counters.CodeHits.load(std::memory_order_relaxed);
  S.CodeMisses = Counters.CodeMisses.load(std::memory_order_relaxed);
  S.CodeWaits = Counters.CodeWaits.load(std::memory_order_relaxed);
  S.CodeUnportableProbes =
      Counters.CodeUnportableProbes.load(std::memory_order_relaxed);
  S.CodeFills = Counters.CodeFills.load(std::memory_order_relaxed);
  S.CodeUnportableMarks =
      Counters.CodeUnportableMarks.load(std::memory_order_relaxed);
  S.RehydrateFailures =
      Counters.RehydrateFailures.load(std::memory_order_relaxed);
  S.Artifacts = artifactCount();
  S.InternedStrings = Interner.size();
  return S;
}

//===----------------------------------------------------------------------===//
// SharedCodeBridge
//===----------------------------------------------------------------------===//

bool SharedCodeBridge::keyFor(const CompileRequest &Req,
                              SharedTier::ArtifactKey &Out) {
  // BBV code rewrites itself during execution (stubs patch into jumps keyed
  // by the types that actually flowed through *this* isolate), so there is
  // no immutable artifact to share; every BBV request compiles locally.
  if (Req.Tier == CompileTier::Bbv)
    return false;
  Out.Source = Req.Source;
  Out.PolicyFp = PolicyFp;
  Out.Tier = static_cast<uint8_t>(Req.Tier);
  Out.BlockUnit = Req.IsBlockUnit;
  Out.WorldSig = Sigs.worldSig();
  Out.ReceiverSig = 0;
  if (Req.ReceiverMap && !Sigs.mapSig(Req.ReceiverMap, Out.ReceiverSig))
    return false; // Receiver shape has no portable identity: stay local.
  return true;
}

std::shared_ptr<const CodeArtifact>
SharedCodeBridge::build(const CompiledFunction &F) {
  auto A = std::make_shared<CodeArtifact>();
  A->Code = F.Code;
  A->SelectorPool = F.SelectorPool; // Shared-interner pointers.
  A->BlockPool = F.BlockPool;       // Shared-AST pointers.
  A->NumCaches = F.Caches.size();
  A->NumRegs = F.NumRegs;
  A->NumArgs = F.NumArgs;
  A->IncomingEnvReg = F.IncomingEnvReg;
  A->IsBlockUnit = F.IsBlockUnit;
  A->Source = F.Source;
  A->Name = F.Name;
  A->Stats = F.Stats;

  A->Literals.reserve(F.Literals.size());
  for (Value V : F.Literals) {
    CodeArtifact::LitRef L;
    if (V.isEmpty()) {
      L.Kind = CodeArtifact::LitRef::K::Empty;
    } else if (V.isInt()) {
      L.Kind = CodeArtifact::LitRef::K::Int;
      L.Int = V.asInt();
    } else if (V == W.nilValue()) {
      L.Kind = CodeArtifact::LitRef::K::Nil;
    } else if (V == W.trueValue()) {
      L.Kind = CodeArtifact::LitRef::K::True;
    } else if (V == W.falseValue()) {
      L.Kind = CodeArtifact::LitRef::K::False;
    } else {
      Object *O = V.asObject();
      if (O->kind() == ObjectKind::String) {
        L.Kind = CodeArtifact::LitRef::K::Str;
        L.Str = static_cast<StringObj *>(O)->str();
      } else if (O->kind() == ObjectKind::Plain) {
        const std::vector<const std::string *> *Path = nullptr;
        if (!Sigs.objectPath(O, Path))
          return nullptr; // Literal has no portable locator.
        L.Kind = CodeArtifact::LitRef::K::ObjPath;
        L.Path = *Path;
      } else {
        return nullptr; // Methods/blocks/arrays as literals: stay local.
      }
    }
    A->Literals.push_back(std::move(L));
  }

  auto encodeMap = [&](Map *M, CodeArtifact::MapRef &R) {
    if (M == F.ReceiverMap && M) {
      R.Kind = CodeArtifact::MapRef::K::Receiver;
      return true;
    }
    NativeMapTag T = Sigs.nativeTag(M);
    if (T != NativeMapTag::None) {
      R.Kind = CodeArtifact::MapRef::K::Native;
      R.Tag = T;
      return true;
    }
    R.Kind = CodeArtifact::MapRef::K::BySig;
    return Sigs.mapSig(M, R.Sig);
  };
  A->MapPool.reserve(F.MapPool.size());
  for (Map *M : F.MapPool) {
    CodeArtifact::MapRef R;
    if (!encodeMap(M, R))
      return nullptr;
    A->MapPool.push_back(R);
  }
  A->DependsOn.reserve(F.DependsOnMaps.size());
  for (Map *M : F.DependsOnMaps) {
    CodeArtifact::MapRef R;
    if (!encodeMap(M, R))
      return nullptr;
    A->DependsOn.push_back(R);
  }
  return A;
}

std::unique_ptr<CompiledFunction>
SharedCodeBridge::rehydrate(const CodeArtifact &A, Map *ReceiverMap) {
  auto F = std::make_unique<CompiledFunction>();
  F->Code = A.Code;
  F->SelectorPool = A.SelectorPool;
  F->BlockPool = A.BlockPool;
  F->Caches.resize(A.NumCaches); // Fresh, empty inline caches.
  F->NumRegs = A.NumRegs;
  F->NumArgs = A.NumArgs;
  F->IncomingEnvReg = A.IncomingEnvReg;
  F->IsBlockUnit = A.IsBlockUnit;
  F->Source = A.Source;
  F->ReceiverMap = ReceiverMap;
  F->Name = A.Name;
  F->Stats = A.Stats;

  // NOTE on GC safety: newString() allocates but never collects (the heap
  // only collects at explicit safepoints), so literals built here stay
  // alive un-rooted until the caller pushes F into CodeManager::Functions,
  // whose traceRoots covers them.
  F->Literals.reserve(A.Literals.size());
  for (const CodeArtifact::LitRef &L : A.Literals) {
    switch (L.Kind) {
    case CodeArtifact::LitRef::K::Empty:
      F->Literals.push_back(Value());
      break;
    case CodeArtifact::LitRef::K::Int:
      F->Literals.push_back(Value::fromInt(L.Int));
      break;
    case CodeArtifact::LitRef::K::Nil:
      F->Literals.push_back(W.nilValue());
      break;
    case CodeArtifact::LitRef::K::True:
      F->Literals.push_back(W.trueValue());
      break;
    case CodeArtifact::LitRef::K::False:
      F->Literals.push_back(W.falseValue());
      break;
    case CodeArtifact::LitRef::K::Str:
      F->Literals.push_back(Value::fromObject(W.newString(L.Str)));
      break;
    case CodeArtifact::LitRef::K::ObjPath: {
      Object *O = Sigs.objectByPath(L.Path);
      if (!O)
        return nullptr;
      F->Literals.push_back(Value::fromObject(O));
      break;
    }
    }
  }

  auto decodeMap = [&](const CodeArtifact::MapRef &R) -> Map * {
    switch (R.Kind) {
    case CodeArtifact::MapRef::K::Receiver:
      return ReceiverMap;
    case CodeArtifact::MapRef::K::Native:
      return Sigs.mapByNativeTag(R.Tag);
    case CodeArtifact::MapRef::K::BySig:
      return Sigs.mapBySig(R.Sig);
    }
    return nullptr;
  };
  F->MapPool.reserve(A.MapPool.size());
  for (const CodeArtifact::MapRef &R : A.MapPool) {
    Map *M = decodeMap(R);
    if (!M)
      return nullptr;
    F->MapPool.push_back(M);
  }
  F->DependsOnMaps.reserve(A.DependsOn.size());
  for (const CodeArtifact::MapRef &R : A.DependsOn) {
    Map *M = decodeMap(R);
    if (!M)
      return nullptr;
    F->DependsOnMaps.push_back(M);
  }
  return F;
}

std::unique_ptr<CompiledFunction>
SharedCodeBridge::acquire(const CompileRequest &Req, Ticket &Out) {
  Out = Ticket{};
  Out.HasKey = keyFor(Req, Out.Key);
  if (!Out.HasKey)
    return nullptr;
  std::shared_ptr<const CodeArtifact> A;
  switch (T.acquire(Out.Key, A)) {
  case SharedTier::Probe::Claimed:
    Out.Claimed = true;
    return nullptr;
  case SharedTier::Probe::Unportable:
    return nullptr;
  case SharedTier::Probe::Ready:
    break;
  }
  auto F = rehydrate(*A, Req.ReceiverMap);
  if (!F) {
    Out.RehydrateFailed = true;
    T.noteRehydrateFailure(); // Fall back to a local compile, no claim.
  }
  return F;
}

std::unique_ptr<CompiledFunction>
SharedCodeBridge::tryAcquireReady(const CompileRequest &Req) {
  SharedTier::ArtifactKey K;
  if (!keyFor(Req, K))
    return nullptr;
  std::shared_ptr<const CodeArtifact> A = T.peekReady(K);
  if (!A)
    return nullptr;
  auto F = rehydrate(*A, Req.ReceiverMap);
  if (!F)
    T.noteRehydrateFailure();
  return F;
}

bool SharedCodeBridge::publish(const Ticket &Tk, const CompiledFunction &F) {
  auto A = build(F);
  bool Portable = A != nullptr;
  T.publish(Tk.Key, std::move(A));
  return Portable;
}

bool SharedCodeBridge::publishIfAbsent(const CompileRequest &Req,
                                       const CompiledFunction &F) {
  SharedTier::ArtifactKey K;
  if (!keyFor(Req, K))
    return false;
  return T.tryPublish(K, build(F));
}
