//===-- runtime/primitives.cpp - Robust primitive operations --------------===//

#include "runtime/primitives.h"

#include "runtime/world.h"
#include "vm/object.h"

#include <cassert>
#include <cinttypes>
#include <unordered_map>

using namespace mself;

static const PrimInfo kPrims[] = {
    {PrimId::IntAdd, "_IntAdd:", 1, true, false},
    {PrimId::IntSub, "_IntSub:", 1, true, false},
    {PrimId::IntMul, "_IntMul:", 1, true, false},
    {PrimId::IntDiv, "_IntDiv:", 1, true, false},
    {PrimId::IntMod, "_IntMod:", 1, true, false},
    {PrimId::IntLT, "_IntLT:", 1, true, false},
    {PrimId::IntLE, "_IntLE:", 1, true, false},
    {PrimId::IntGT, "_IntGT:", 1, true, false},
    {PrimId::IntGE, "_IntGE:", 1, true, false},
    {PrimId::IntEQ, "_IntEQ:", 1, true, false},
    {PrimId::IntNE, "_IntNE:", 1, true, false},
    {PrimId::Eq, "_Eq:", 1, false, false},
    {PrimId::At, "_At:", 1, true, false},
    {PrimId::AtPut, "_At:Put:", 2, true, true},
    {PrimId::Size, "_Size", 0, true, false},
    {PrimId::VectorNew, "_VectorNew:", 1, true, true},
    {PrimId::VectorNewFilling, "_VectorNew:Filling:", 2, true, true},
    {PrimId::Clone, "_Clone", 0, true, true},
    {PrimId::StrCat, "_StrCat:", 1, true, true},
    {PrimId::StrEq, "_StrEq:", 1, true, false},
    {PrimId::Print, "_Print", 0, false, true},
    {PrimId::PrintLine, "_PrintLine", 0, false, true},
    {PrimId::ErrorOp, "_Error:", 1, true, true},
    {PrimId::StrAt, "_StrAt:", 1, true, false},
    {PrimId::StrFromTo, "_StrFrom:To:", 2, true, true},
};

PrimId mself::primIdFor(const std::string &Selector) {
  static const std::unordered_map<std::string, PrimId> Index = [] {
    std::unordered_map<std::string, PrimId> M;
    for (const PrimInfo &P : kPrims)
      M.emplace(P.Selector, P.Id);
    return M;
  }();
  auto It = Index.find(Selector);
  return It == Index.end() ? PrimId::Invalid : It->second;
}

const PrimInfo &mself::primInfo(PrimId Id) {
  assert(Id != PrimId::Invalid && "no info for the invalid primitive");
  const PrimInfo &P = kPrims[static_cast<size_t>(Id)];
  assert(P.Id == Id && "primitive table out of order");
  return P;
}

namespace {

/// Writes \p V to \p F the way mini-SELF `print` renders values.
void printValue(World &W, FILE *F, Value V) {
  if (V.isInt()) {
    fprintf(F, "%" PRId64, V.asInt());
    return;
  }
  if (V.isEmpty()) {
    fprintf(F, "<empty>");
    return;
  }
  Object *O = V.asObject();
  if (O->kind() == ObjectKind::String) {
    fputs(static_cast<StringObj *>(O)->str().c_str(), F);
    return;
  }
  if (V == W.nilValue()) {
    fputs("nil", F);
    return;
  }
  if (V == W.trueValue()) {
    fputs("true", F);
    return;
  }
  if (V == W.falseValue()) {
    fputs("false", F);
    return;
  }
  fputs(V.describe().c_str(), F);
}

bool intPair(const Value *W, int64_t &A, int64_t &B) {
  if (!W[0].isInt() || !W[1].isInt())
    return false;
  A = W[0].asInt();
  B = W[1].asInt();
  return true;
}

} // namespace

bool mself::execPrimitive(World &W, PrimId Id, const Value *Win,
                          Value &Result) {
  switch (Id) {
  case PrimId::IntAdd:
  case PrimId::IntSub:
  case PrimId::IntMul: {
    int64_t A, B;
    if (!intPair(Win, A, B)) {
      W.setPrimError("integer primitive: operand is not a small integer");
      return false;
    }
    int64_t R = 0;
    bool Ovf = Id == PrimId::IntAdd   ? __builtin_add_overflow(A, B, &R)
               : Id == PrimId::IntSub ? __builtin_sub_overflow(A, B, &R)
                                      : __builtin_mul_overflow(A, B, &R);
    if (Ovf || !fitsSmallInt(R)) {
      W.setPrimError("integer primitive: overflow");
      return false;
    }
    Result = Value::fromInt(R);
    return true;
  }
  case PrimId::IntDiv:
  case PrimId::IntMod: {
    int64_t A, B;
    if (!intPair(Win, A, B)) {
      W.setPrimError("integer primitive: operand is not a small integer");
      return false;
    }
    if (B == 0) {
      W.setPrimError("integer primitive: division by zero");
      return false;
    }
    if (A == kMinSmallInt && B == -1) {
      W.setPrimError("integer primitive: overflow");
      return false;
    }
    int64_t R = Id == PrimId::IntDiv ? A / B : A % B;
    Result = Value::fromInt(R);
    return true;
  }
  case PrimId::IntLT:
  case PrimId::IntLE:
  case PrimId::IntGT:
  case PrimId::IntGE:
  case PrimId::IntEQ:
  case PrimId::IntNE: {
    int64_t A, B;
    if (!intPair(Win, A, B)) {
      W.setPrimError("integer comparison: operand is not a small integer");
      return false;
    }
    bool R = false;
    switch (Id) {
    case PrimId::IntLT:
      R = A < B;
      break;
    case PrimId::IntLE:
      R = A <= B;
      break;
    case PrimId::IntGT:
      R = A > B;
      break;
    case PrimId::IntGE:
      R = A >= B;
      break;
    case PrimId::IntEQ:
      R = A == B;
      break;
    default:
      R = A != B;
      break;
    }
    Result = W.boolValue(R);
    return true;
  }
  case PrimId::Eq:
    Result = W.boolValue(Win[0].identicalTo(Win[1]));
    return true;
  case PrimId::At: {
    if (!Win[0].isObject() || Win[0].asObject()->kind() != ObjectKind::Array ||
        !Win[1].isInt()) {
      W.setPrimError("_At: receiver is not an array or index not an integer");
      return false;
    }
    auto *A = static_cast<ArrayObj *>(Win[0].asObject());
    int64_t I = Win[1].asInt();
    if (!A->inBounds(I)) {
      W.setPrimError("_At: index out of bounds");
      return false;
    }
    Result = A->at(I);
    return true;
  }
  case PrimId::AtPut: {
    if (!Win[0].isObject() || Win[0].asObject()->kind() != ObjectKind::Array ||
        !Win[1].isInt()) {
      W.setPrimError("_At:Put: receiver is not an array or index not an "
                     "integer");
      return false;
    }
    auto *A = static_cast<ArrayObj *>(Win[0].asObject());
    int64_t I = Win[1].asInt();
    if (!A->inBounds(I)) {
      W.setPrimError("_At:Put: index out of bounds");
      return false;
    }
    A->atPut(I, Win[2]);
    Result = Win[2];
    return true;
  }
  case PrimId::Size: {
    if (Win[0].isObject() && Win[0].asObject()->kind() == ObjectKind::Array) {
      Result = Value::fromInt(static_cast<ArrayObj *>(Win[0].asObject())
                                  ->size());
      return true;
    }
    if (Win[0].isObject() && Win[0].asObject()->kind() == ObjectKind::String) {
      Result = Value::fromInt(static_cast<int64_t>(
          static_cast<StringObj *>(Win[0].asObject())->str().size()));
      return true;
    }
    W.setPrimError("_Size: receiver is not an array or string");
    return false;
  }
  case PrimId::VectorNew:
  case PrimId::VectorNewFilling: {
    if (!Win[1].isInt() || Win[1].asInt() < 0 ||
        Win[1].asInt() > (int64_t(1) << 30)) {
      W.setPrimError("_VectorNew: size is not a reasonable integer");
      return false;
    }
    Value Fill = Id == PrimId::VectorNewFilling ? Win[2] : W.nilValue();
    Result = Value::fromObject(
        W.heap().allocArray(W.arrayMap(), static_cast<size_t>(Win[1].asInt()),
                            Fill));
    return true;
  }
  case PrimId::Clone: {
    if (Win[0].isInt()) { // Integers are immutable; clone is identity.
      Result = Win[0];
      return true;
    }
    Object *O = Win[0].asObject();
    switch (O->kind()) {
    case ObjectKind::Plain: {
      Object *C = W.heap().allocPlain(O->map());
      C->fields() = O->fields();
      // The bulk copy bypassed the per-store write barrier; if the clone
      // landed in the old space (nursery overflow), re-scan it.
      W.heap().writeBarrierAll(C);
      Result = Value::fromObject(C);
      return true;
    }
    case ObjectKind::Array: {
      auto *A = static_cast<ArrayObj *>(O);
      ArrayObj *C = W.heap().allocArray(A->map(),
                                        static_cast<size_t>(A->size()),
                                        W.nilValue());
      C->elems() = A->elems();
      C->fields() = A->fields();
      W.heap().writeBarrierAll(C);
      Result = Value::fromObject(C);
      return true;
    }
    case ObjectKind::String:
    case ObjectKind::Method:
      Result = Win[0]; // Immutable: clone is identity.
      return true;
    default:
      W.setPrimError("_Clone: receiver cannot be cloned");
      return false;
    }
  }
  case PrimId::StrCat: {
    if (!Win[0].isObject() || Win[0].asObject()->kind() != ObjectKind::String ||
        !Win[1].isObject() ||
        Win[1].asObject()->kind() != ObjectKind::String) {
      W.setPrimError("_StrCat: both operands must be strings");
      return false;
    }
    Result = Value::fromObject(W.newString(
        static_cast<StringObj *>(Win[0].asObject())->str() +
        static_cast<StringObj *>(Win[1].asObject())->str()));
    return true;
  }
  case PrimId::StrEq: {
    if (!Win[0].isObject() || Win[0].asObject()->kind() != ObjectKind::String ||
        !Win[1].isObject() ||
        Win[1].asObject()->kind() != ObjectKind::String) {
      W.setPrimError("_StrEq: both operands must be strings");
      return false;
    }
    Result = W.boolValue(static_cast<StringObj *>(Win[0].asObject())->str() ==
                         static_cast<StringObj *>(Win[1].asObject())->str());
    return true;
  }
  case PrimId::Print:
  case PrimId::PrintLine:
    printValue(W, W.output(), Win[0]);
    if (Id == PrimId::PrintLine)
      fputc('\n', W.output());
    Result = Win[0];
    return true;
  case PrimId::ErrorOp: {
    std::string Msg = "error";
    if (Win[1].isObject() && Win[1].asObject()->kind() == ObjectKind::String)
      Msg = static_cast<StringObj *>(Win[1].asObject())->str();
    else
      Msg = "error: " + Win[1].describe();
    W.setPrimError(Msg);
    return false;
  }
  case PrimId::StrAt: {
    if (!Win[0].isObject() ||
        Win[0].asObject()->kind() != ObjectKind::String || !Win[1].isInt()) {
      W.setPrimError("_StrAt: receiver is not a string or index not an "
                     "integer");
      return false;
    }
    const std::string &S = static_cast<StringObj *>(Win[0].asObject())->str();
    int64_t I = Win[1].asInt();
    if (I < 0 || I >= static_cast<int64_t>(S.size())) {
      W.setPrimError("_StrAt: index out of bounds");
      return false;
    }
    Result = Value::fromInt(static_cast<unsigned char>(S[I]));
    return true;
  }
  case PrimId::StrFromTo: {
    if (!Win[0].isObject() ||
        Win[0].asObject()->kind() != ObjectKind::String || !Win[1].isInt() ||
        !Win[2].isInt()) {
      W.setPrimError("_StrFrom:To: receiver is not a string or bounds not "
                     "integers");
      return false;
    }
    const std::string &S = static_cast<StringObj *>(Win[0].asObject())->str();
    int64_t From = Win[1].asInt(), To = Win[2].asInt();
    if (From < 0 || To < From || To > static_cast<int64_t>(S.size())) {
      W.setPrimError("_StrFrom:To: range out of bounds");
      return false;
    }
    Result = Value::fromObject(W.newString(
        S.substr(static_cast<size_t>(From), static_cast<size_t>(To - From))));
    return true;
  }
  case PrimId::Invalid:
    break;
  }
  W.setPrimError("unknown primitive");
  return false;
}
