//===-- runtime/shapesig.h - Transitive map shape signatures ----*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural fingerprints of a world's shape graph, the cross-isolate half
/// of the shared code tier's cache key. Compiled code is valid in any world
/// whose *shapes* (maps, their slots, their constant bindings) match the
/// producer's — Map* identity is per-isolate, so artifacts are keyed by
/// signature instead:
///
///  - The **world signature** hashes the entire reachable shape graph in one
///    canonical traversal: the native maps in a fixed order, then every map
///    discovered by a breadth-first walk of constant/parent slots starting
///    at the lobby. It covers slot names, kinds, field layout, and
///    definition-time constant payloads (integers, string contents, method
///    AST identity) — everything a compile-time lookup can bake into code.
///    Two worlds with equal world signatures are shape-isomorphic, so a
///    lookup walk in one resolves exactly as in the other.
///  - Each discovered map gets a **map signature** salted with its discovery
///    index, which makes signatures unique within a world (two structurally
///    identical object literals get distinct signatures) and equal across
///    shape-isomorphic worlds — precisely what rehydration needs to rebind a
///    portable artifact's map references to this world's corresponding Map*.
///  - Each discovered object gets a **path** (the constant-slot selector
///    chain from the lobby), the portable locator for object literals
///    embedded in compiled code (GetFieldConst holders and inlined constant
///    reads).
///
/// The cache is epoch-based: every query revalidates against
/// World::shapeVersion() and rebuilds after any shape mutation, so a
/// mutation in one isolate silently diverges *its* signatures (its future
/// cache keys) and leaves every other isolate's keys — and the artifacts
/// already published under them — untouched. That is the copy-on-write
/// story: nothing is invalidated across isolates, keys simply fork.
///
/// Maps reachable only through runtime-mutable state (an object literal
/// stored in a *data* slot) are deliberately unregistered — their bindings
/// can change without a shape bump — and code referring to them simply
/// stays isolate-local (the bridge falls back to a plain local compile).
///
/// Thread model: owned by one isolate's SharedCodeBridge and used on that
/// isolate's mutator thread only; the traversal reads maps the same way the
/// mutator always does (mutations happen on this thread).
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_RUNTIME_SHAPESIG_H
#define MINISELF_RUNTIME_SHAPESIG_H

#include "runtime/world.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mself {

/// Fixed cross-isolate identifiers for the maps every world boots natively.
/// Artifact map references use these tags instead of signatures — native
/// maps exist before any traversal and are trivially corresponding.
enum class NativeMapTag : int {
  SmallInt,
  Array,
  String,
  Block,
  Method,
  Env,
  Nil,
  True,
  False,
  None = -1,
};

/// Epoch-memoized shape signatures, map registry, and object paths for one
/// World. See the file comment for the role each plays.
class ShapeSigCache {
public:
  explicit ShapeSigCache(World &W) : W(W) {}

  /// Signature of the whole reachable shape graph. Rebuilds on demand after
  /// a shape mutation.
  uint64_t worldSig();

  /// \returns false when \p M was not discovered by the canonical traversal
  /// (e.g. an object literal held only in a data slot) — such maps have no
  /// portable identity.
  bool mapSig(Map *M, uint64_t &SigOut);

  /// Inverse of mapSig within this world. \returns nullptr for unknown
  /// signatures (the consumer world is not shape-isomorphic after all, or
  /// the signature came from a diverged epoch).
  Map *mapBySig(uint64_t Sig);

  /// \returns the native tag of \p M, or NativeMapTag::None.
  NativeMapTag nativeTag(Map *M) const;
  Map *mapByNativeTag(NativeMapTag T) const;

  /// The constant-slot selector chain locating \p O from the lobby (empty
  /// for the lobby itself). \returns false for objects the traversal never
  /// reached. Pointers are interned slot names, stable for the interner's
  /// lifetime (the shared interner's, under a shared tier).
  bool objectPath(const Object *O,
                  const std::vector<const std::string *> *&PathOut);

  /// Resolves a path produced by objectPath() (possibly in another world)
  /// against this world. \returns nullptr when the chain does not resolve
  /// to constant-slot-held objects all the way down.
  Object *objectByPath(const std::vector<const std::string *> &Path);

  size_t discoveredMaps();

private:
  void ensure();
  void rebuild();

  World &W;
  uint64_t BuiltVersion = ~0ull;
  uint64_t WorldSignature = 0;
  std::unordered_map<Map *, uint64_t> MapToSig;
  std::unordered_map<uint64_t, Map *> SigToMap;
  std::unordered_map<const Object *, std::vector<const std::string *>>
      ObjToPath;
};

} // namespace mself

#endif // MINISELF_RUNTIME_SHAPESIG_H
