//===-- runtime/shapesig.cpp - Transitive map shape signatures ------------===//

#include "runtime/shapesig.h"

#include "vm/object.h"

#include <deque>

using namespace mself;

namespace {

/// FNV-1a, the project's convention for structural hashes.
struct Fnv {
  uint64_t H = 1469598103934665603ull;
  void byte(uint8_t B) {
    H ^= B;
    H *= 1099511628211ull;
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      byte(static_cast<uint8_t>(V >> (I * 8)));
  }
  void ptr(const void *P) { u64(reinterpret_cast<uintptr_t>(P)); }
  void str(const std::string &S) {
    u64(S.size());
    for (char C : S)
      byte(static_cast<uint8_t>(C));
  }
};

} // namespace

NativeMapTag ShapeSigCache::nativeTag(Map *M) const {
  if (M == W.smallIntMap())
    return NativeMapTag::SmallInt;
  if (M == W.arrayMap())
    return NativeMapTag::Array;
  if (M == W.stringMap())
    return NativeMapTag::String;
  if (M == W.blockMap())
    return NativeMapTag::Block;
  if (M == W.methodMap())
    return NativeMapTag::Method;
  if (M == W.envMap())
    return NativeMapTag::Env;
  if (M == W.nilMap())
    return NativeMapTag::Nil;
  if (M == W.trueMap())
    return NativeMapTag::True;
  if (M == W.falseMap())
    return NativeMapTag::False;
  return NativeMapTag::None;
}

Map *ShapeSigCache::mapByNativeTag(NativeMapTag T) const {
  switch (T) {
  case NativeMapTag::SmallInt:
    return W.smallIntMap();
  case NativeMapTag::Array:
    return W.arrayMap();
  case NativeMapTag::String:
    return W.stringMap();
  case NativeMapTag::Block:
    return W.blockMap();
  case NativeMapTag::Method:
    return W.methodMap();
  case NativeMapTag::Env:
    return W.envMap();
  case NativeMapTag::Nil:
    return W.nilMap();
  case NativeMapTag::True:
    return W.trueMap();
  case NativeMapTag::False:
    return W.falseMap();
  case NativeMapTag::None:
    break;
  }
  return nullptr;
}

void ShapeSigCache::ensure() {
  if (BuiltVersion != W.shapeVersion())
    rebuild();
}

void ShapeSigCache::rebuild() {
  MapToSig.clear();
  SigToMap.clear();
  ObjToPath.clear();

  // Pass 1 — canonical discovery order. Native maps first (fixed tag
  // order), then a breadth-first walk of constant/parent slots from the
  // lobby. The walk enqueues Plain objects only: those are the objects
  // definition-time constants can hold namespaces and literals in; native
  // representations (strings, methods) are hashed by payload instead.
  std::unordered_map<Map *, uint64_t> Index;
  std::vector<Map *> Order;
  auto addMap = [&](Map *M) {
    if (M && Index.emplace(M, Order.size()).second)
      Order.push_back(M);
  };
  for (int T = 0; T <= static_cast<int>(NativeMapTag::False); ++T)
    addMap(mapByNativeTag(static_cast<NativeMapTag>(T)));

  std::deque<const Object *> Work;
  ObjToPath.emplace(W.lobby(), std::vector<const std::string *>{});
  Work.push_back(W.lobby());
  while (!Work.empty()) {
    const Object *O = Work.front();
    Work.pop_front();
    addMap(O->map());
    // By value: the emplace below can rehash ObjToPath.
    const std::vector<const std::string *> Path = ObjToPath.at(O);
    for (const SlotDesc &S : O->map()->slots()) {
      if (S.Kind != SlotKind::Constant && S.Kind != SlotKind::Parent)
        continue;
      if (!S.Constant.isObject())
        continue;
      Object *Child = S.Constant.asObject();
      if (Child->map()->kind() != ObjectKind::Plain)
        continue;
      auto It = ObjToPath.emplace(Child, Path);
      if (!It.second)
        continue; // First (shortest, BFS) path wins.
      It.first->second.push_back(S.Name);
      Work.push_back(Child);
    }
  }

  // Pass 2 — hash every discovered map with its neighbors expressed as
  // discovery indices, salting each signature with the map's own index so
  // structurally identical twins stay distinct (SigToMap must be
  // injective: rehydration rebinds by signature). The world signature
  // folds every map signature plus the constant payloads a compile-time
  // lookup can bake into code.
  Fnv World_;
  for (Map *M : Order) {
    Fnv F;
    F.u64(Index.at(M));
    F.byte(static_cast<uint8_t>(M->kind()));
    F.u64(static_cast<uint64_t>(M->fieldCount()));
    F.u64(M->slots().size());
    for (const SlotDesc &S : M->slots()) {
      F.str(*S.Name);
      F.byte(static_cast<uint8_t>(S.Kind));
      F.u64(static_cast<uint64_t>(S.FieldIndex + 1));
      if (S.Kind != SlotKind::Constant && S.Kind != SlotKind::Parent)
        continue;
      Value V = S.Constant;
      if (V.isEmpty()) {
        F.byte('e');
      } else if (V.isInt()) {
        F.byte('i');
        F.u64(static_cast<uint64_t>(V.asInt()));
      } else {
        Object *O = V.asObject();
        switch (O->map()->kind()) {
        case ObjectKind::Plain: {
          auto It = Index.find(O->map());
          F.byte(It != Index.end() ? 'o' : 'x');
          F.u64(It != Index.end() ? It->second : 0);
          break;
        }
        case ObjectKind::String:
          F.byte('s');
          F.str(static_cast<StringObj *>(O)->str());
          break;
        case ObjectKind::Method: {
          // Method identity is its (shared) AST node: with a shared tier
          // every isolate that loaded the same source holds the same
          // pointer, and worlds that loaded different source must not
          // compare equal anyway.
          auto *Mth = static_cast<MethodObj *>(O);
          F.byte('m');
          F.ptr(Mth->body());
          F.str(*Mth->selector());
          break;
        }
        default:
          F.byte('?');
          F.byte(static_cast<uint8_t>(O->map()->kind()));
          break;
        }
      }
    }
    uint64_t Sig = F.H;
    World_.u64(Sig);
    auto Ins = SigToMap.emplace(Sig, M);
    if (Ins.second) {
      MapToSig.emplace(M, Sig);
    } else {
      // Hash collision between distinct maps: neither side gets a portable
      // identity (artifacts touching them stay isolate-local).
      MapToSig.erase(Ins.first->second);
    }
  }
  WorldSignature = World_.H;
  BuiltVersion = W.shapeVersion();
}

uint64_t ShapeSigCache::worldSig() {
  ensure();
  return WorldSignature;
}

bool ShapeSigCache::mapSig(Map *M, uint64_t &SigOut) {
  ensure();
  auto It = MapToSig.find(M);
  if (It == MapToSig.end())
    return false;
  SigOut = It->second;
  return true;
}

Map *ShapeSigCache::mapBySig(uint64_t Sig) {
  ensure();
  auto It = SigToMap.find(Sig);
  return It == SigToMap.end() ? nullptr : It->second;
}

bool ShapeSigCache::objectPath(const Object *O,
                               const std::vector<const std::string *> *&Out) {
  ensure();
  auto It = ObjToPath.find(O);
  if (It == ObjToPath.end())
    return false;
  Out = &It->second;
  return true;
}

Object *ShapeSigCache::objectByPath(
    const std::vector<const std::string *> &Path) {
  ensure();
  Object *Cur = W.lobby();
  for (const std::string *Name : Path) {
    const SlotDesc *S = Cur->map()->findSlot(Name);
    if (!S ||
        (S->Kind != SlotKind::Constant && S->Kind != SlotKind::Parent) ||
        !S->Constant.isObject())
      return nullptr;
    Cur = S->Constant.asObject();
  }
  return Cur;
}

size_t ShapeSigCache::discoveredMaps() {
  ensure();
  return SigToMap.size();
}
