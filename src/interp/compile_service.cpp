//===-- interp/compile_service.cpp - Shared compile worker pool -----------===//

#include "interp/compile_service.h"

#include "interp/compile_queue.h"

#include <algorithm>
#include <cassert>

using namespace mself;

CompileService::CompileService(int Workers) {
  if (Workers < 1)
    Workers = 1;
  Busy.resize(static_cast<size_t>(Workers), nullptr);
  Threads.reserve(static_cast<size_t>(Workers));
  for (int I = 0; I < Workers; ++I)
    Threads.emplace_back([this, I] { run(static_cast<size_t>(I)); });
}

CompileService::~CompileService() {
  {
    std::lock_guard<std::mutex> L(M);
    assert(Queues.empty() && "queues must detach before the service stops");
    Stopping = true;
  }
  WorkCV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void CompileService::attach(CompileQueue *Q) {
  std::lock_guard<std::mutex> L(M);
  Queues.push_back(Q);
}

void CompileService::detach(CompileQueue *Q) {
  std::unique_lock<std::mutex> L(M);
  Queues.erase(std::remove(Queues.begin(), Queues.end(), Q), Queues.end());
  // The queue is unreachable for future takes; wait out any worker already
  // inside serviceRun() on its behalf. The worker clears its busy slot
  // under the service mutex after serviceRun returns, so when this
  // predicate holds nothing references the queue anymore.
  DetachCV.wait(L, [this, Q] {
    return std::find(Busy.begin(), Busy.end(), Q) == Busy.end();
  });
}

void CompileService::notifyWork() {
  // Empty critical section on purpose: a worker that just scanned empty
  // holds the mutex until it blocks in wait(), so taking it here orders
  // this wake after that wait begins — the enqueue cannot slip between a
  // worker's scan and its sleep unnoticed.
  { std::lock_guard<std::mutex> L(M); }
  WorkCV.notify_all();
}

size_t CompileService::attachedCount() const {
  std::lock_guard<std::mutex> L(M);
  return Queues.size();
}

bool CompileService::anyTakeable() const {
  for (CompileQueue *Q : Queues)
    if (Q->serviceTakeable())
      return true;
  return false;
}

void CompileService::run(size_t Idx) {
  std::unique_lock<std::mutex> L(M);
  for (;;) {
    WorkCV.wait(L, [this] { return Stopping || anyTakeable(); });
    if (Stopping)
      return;
    // Round-robin across attached queues so one chatty isolate cannot
    // starve the rest.
    std::unique_ptr<CompileQueue::Job> J;
    CompileQueue *Q = nullptr;
    size_t N = Queues.size();
    for (size_t I = 0; I < N && !J; ++I) {
      CompileQueue *C = Queues[(RR + I) % N];
      J = C->serviceTake();
      if (J) {
        Q = C;
        RR = (RR + I + 1) % N;
      }
    }
    if (!J)
      continue; // Raced with another worker; rescan.
    Busy[Idx] = Q;
    L.unlock();
    Q->serviceRun(std::move(J));
    Jobs.fetch_add(1, std::memory_order_relaxed);
    L.lock();
    Busy[Idx] = nullptr;
    DetachCV.notify_all();
  }
}
