//===-- interp/interp.h - Bytecode interpreter and code cache ---*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine: an explicit-frame bytecode interpreter with
/// on-the-fly (lazy) compilation, polymorphic inline caches at dynamic send
/// sites (backed by the world's global lookup cache), non-local return, and
/// GC safepoints. The CodeManager is the code cache: compiled code is keyed
/// by (source code body, receiver map) — the receiver map being the paper's
/// *customization* — and the actual compiler is injected by the driver so
/// every compiler configuration runs on the same engine.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_INTERP_INTERP_H
#define MINISELF_INTERP_INTERP_H

#include "bytecode/bytecode.h"
#include "runtime/world.h"

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace mself {

/// What the injected compiler is asked to produce.
struct CompileRequest {
  const ast::Code *Source = nullptr;
  Map *ReceiverMap = nullptr; ///< Customization key; null = uncustomized.
  bool IsBlockUnit = false;
  const std::string *Name = nullptr;
};

using CompileFn =
    std::function<std::unique_ptr<CompiledFunction>(const CompileRequest &)>;

/// The code cache: compiles lazily; when \p Customize is set, entries are
/// keyed per receiver map (the paper's customized compilation), otherwise
/// one compile per source body is shared by all receivers.
class CodeManager : public RootProvider {
public:
  CodeManager(Heap &H, bool Customize, CompileFn Compiler)
      : H(H), Customize(Customize), Compiler(std::move(Compiler)) {
    H.addRootProvider(this);
  }
  ~CodeManager() override { H.removeRootProvider(this); }

  /// \returns cached or freshly compiled code for \p Req.
  CompiledFunction *getOrCompile(const CompileRequest &Req);

  /// Total CPU seconds spent inside the injected compiler.
  double totalCompileSeconds() const { return CompileSeconds; }
  /// Total compiled-code bytes across all cache entries.
  size_t totalCodeBytes() const;
  size_t functionCount() const { return Functions.size(); }

  /// Applies \p F to every compiled function (for stats and tests).
  void forEach(const std::function<void(const CompiledFunction &)> &F) const;

  /// Invalidation hook: resets every send site's inline cache back to the
  /// Empty state. Called (via the world's shape-mutation hook) whenever a
  /// map gains a slot, since cached bindings may then be stale.
  void flushInlineCaches();

  /// Number of flushInlineCaches() calls (observability).
  uint64_t inlineCacheFlushes() const { return CacheFlushes; }

  void traceRoots(GcVisitor &V) override;

private:
  struct Key {
    const ast::Code *Source;
    Map *ReceiverMap;
    bool operator==(const Key &O) const {
      return Source == O.Source && ReceiverMap == O.ReceiverMap;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      return std::hash<const void *>()(K.Source) * 31 +
             std::hash<const void *>()(K.ReceiverMap);
    }
  };

  Heap &H;
  bool Customize;
  CompileFn Compiler;
  std::unordered_map<Key, CompiledFunction *, KeyHash> Cache;
  std::vector<std::unique_ptr<CompiledFunction>> Functions;
  double CompileSeconds = 0;
  uint64_t CacheFlushes = 0;
};

/// Runtime dispatch configuration, derived from the compiler Policy by the
/// driver (interp/ deliberately does not depend on compiler/).
struct DispatchOptions {
  bool InlineCaches = true;   ///< Off: every send performs a full lookup.
  bool Polymorphic = true;    ///< Off: single-entry caches, replace on miss.
  int PicArity = 4;           ///< Entries per site before megamorphic.
  bool UseGlobalCache = true; ///< Consult the world's global lookup cache.

  /// \returns PicArity clamped to the PIC's physical capacity.
  int clampedArity() const {
    int A = Polymorphic ? PicArity : 1;
    if (A < 1)
      return 1;
    return A > InlineCache::kCapacity ? InlineCache::kCapacity : A;
  }
};

/// Dynamic execution counters (the "work" the benchmarks measure).
struct ExecCounters {
  uint64_t Instructions = 0;
  uint64_t Sends = 0;      ///< Dynamically-bound sends executed.
  uint64_t IcHits = 0;     ///< Sends served by a PIC entry probe.
  uint64_t IcMisses = 0;   ///< PIC probe misses (incl. megamorphic sends).
  uint64_t PrimCalls = 0;  ///< Non-inlined primitive calls executed.
  uint64_t TypeTests = 0;  ///< TestInt/TestMap executed.
  uint64_t BlocksMade = 0; ///< Closures created.
  uint64_t EnvAccesses = 0;

  // Dispatch-path observability (the PIC + global-cache fast path).
  uint64_t GlcHits = 0;      ///< Misses resolved by the global lookup cache.
  uint64_t GlcMisses = 0;    ///< Global-cache probes that fell through.
  uint64_t FullLookups = 0;  ///< Full parent-walk lookups performed.
  uint64_t SendsMono = 0;    ///< Sends dispatched at a Monomorphic site.
  uint64_t SendsPoly = 0;    ///< ... at a Polymorphic site.
  uint64_t SendsMega = 0;    ///< ... at a Megamorphic site.
  uint64_t SendsUncached = 0;///< ... at a cold site, or with caching off.
  uint64_t PicFills = 0;     ///< PIC entries installed.
  uint64_t MonoToPoly = 0;   ///< Monomorphic → Polymorphic transitions.
  uint64_t ToMegamorphic = 0;///< Transitions into the Megamorphic state.
  uint64_t PicEvictions = 0; ///< Entries replaced (monomorphic mode).
};

/// Aggregate dispatch-path statistics assembled by the driver: dynamic
/// counters from the interpreter, a send-site census from the code cache,
/// and the world's global-lookup-cache numbers.
struct DispatchStats {
  // Dynamic (per-interpreter) counts.
  uint64_t Sends = 0, PicHits = 0, PicMisses = 0;
  uint64_t GlcHits = 0, GlcMisses = 0, FullLookups = 0;
  uint64_t SendsMono = 0, SendsPoly = 0, SendsMega = 0, SendsUncached = 0;
  uint64_t PicFills = 0, MonoToPoly = 0, ToMegamorphic = 0, PicEvictions = 0;
  // Send-site census (code cache walk at sampling time).
  size_t Sites = 0, SitesEmpty = 0, SitesMono = 0, SitesPoly = 0,
         SitesMega = 0;
  // Global lookup cache.
  size_t GlcCapacity = 0, GlcOccupied = 0;
  uint64_t GlcFills = 0, GlcInvalidations = 0;
  uint64_t InlineCacheFlushes = 0;

  /// Fraction of sends served directly by a PIC entry.
  double picHitRate() const;
  /// Fraction of sends served by either a PIC entry or the global cache.
  double combinedHitRate() const;
  /// Fraction of global-cache slots holding an entry.
  double glcOccupancy() const;
};

/// The bytecode interpreter for one World.
class Interpreter : public RootProvider {
public:
  Interpreter(World &W, CodeManager &CM, DispatchOptions Opts = {});
  ~Interpreter() override;

  const DispatchOptions &dispatchOptions() const { return Opts; }

  /// Result of a top-level call.
  struct Outcome {
    bool Ok = true;
    Value Result;
    std::string Message; ///< Error description when !Ok.
  };

  /// Calls \p Fn with receiver \p Self and \p Args, running to completion.
  Outcome callFunction(CompiledFunction *Fn, Value Self,
                       const std::vector<Value> &Args);

  /// Compiles (uncached key: top-level bodies are unique) and runs a
  /// top-level expression body with the lobby as receiver.
  Outcome evalTopLevel(const ast::Code *Body);

  const ExecCounters &counters() const { return Counters; }
  void resetCounters() { Counters = ExecCounters(); }

  /// Aborts execution with an error after \p N instructions (0: unlimited).
  void setStepBudget(uint64_t N) { StepBudget = N; }

  void traceRoots(GcVisitor &V) override;

private:
  struct Frame {
    CompiledFunction *Fn;
    int IP;
    int Base;       ///< First register index in the shared register stack.
    int RetDst;     ///< Absolute register receiving the return value; -1.
    uint64_t FrameId;
    uint64_t HomeFrameId; ///< Target of `^`; == FrameId for method frames.
  };

  struct RunResult {
    enum class Kind : uint8_t { Done, NLR, Error } K = Kind::Done;
    Value Val;
    uint64_t HomeId = 0;
  };

  RunResult run(size_t Barrier);
  bool pushActivation(CompiledFunction *Fn, Value Self, const Value *Args,
                      int Argc, int RetDst, Object *Env, uint64_t HomeId,
                      bool IsBlock);
  /// Full send dispatch; either produces an immediate result, pushes an
  /// activation, or reports an error.
  enum class DispatchKind : uint8_t { Immediate, Pushed, Error };
  DispatchKind dispatchSend(Value Recv, const std::string *Sel,
                            const Value *Args, int Argc, int RetDst,
                            InlineCache *Cache, Value &Immediate);
  /// Executes the action bound in PIC entry \p E for receiver \p Recv.
  DispatchKind applyPicEntry(PicEntry &E, Value Recv, const Value *Args,
                             int Argc, int RetDst, Value &Immediate);
  /// Installs \p E into \p C, driving the mono → poly → megamorphic state
  /// machine (or single-entry replacement when PICs are disabled).
  void installPicEntry(InlineCache &C, const PicEntry &E);
  /// Sends `value...` to \p Callee (block fast path or generic send) and
  /// runs it to completion.
  RunResult callValueOn(Value Callee, const Value *Args, int Argc);
  /// Runs the whileTrue:/whileFalse: native loop.
  RunResult runWhileLoop(Value CondBlock, Value BodyBlock, bool Until);
  /// Unwinds a non-local return toward \p HomeId; stops at \p Barrier.
  RunResult continueNLR(uint64_t HomeId, Value Val, size_t Barrier);
  RunResult fail(const std::string &Msg);
  void safepoint();

  World &W;
  CodeManager &CM;
  DispatchOptions Opts;
  std::vector<Value> RegStack;
  std::vector<Frame> Frames;
  std::vector<Value> NativeRoots; ///< Values live in native helpers.
  uint64_t NextFrameId = 1;
  uint64_t StepBudget = 0;
  std::string ErrMsg;
  ExecCounters Counters;
};

} // namespace mself

#endif // MINISELF_INTERP_INTERP_H
