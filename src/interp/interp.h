//===-- interp/interp.h - Bytecode interpreter and code cache ---*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine: an explicit-frame bytecode interpreter with
/// on-the-fly (lazy) compilation, monomorphic inline caches at dynamic send
/// sites, non-local return, and GC safepoints. The CodeManager is the code
/// cache: compiled code is keyed by (source code body, receiver map) — the
/// receiver map being the paper's *customization* — and the actual compiler
/// is injected by the driver so every compiler configuration runs on the
/// same engine.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_INTERP_INTERP_H
#define MINISELF_INTERP_INTERP_H

#include "bytecode/bytecode.h"
#include "runtime/world.h"

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace mself {

/// What the injected compiler is asked to produce.
struct CompileRequest {
  const ast::Code *Source = nullptr;
  Map *ReceiverMap = nullptr; ///< Customization key; null = uncustomized.
  bool IsBlockUnit = false;
  const std::string *Name = nullptr;
};

using CompileFn =
    std::function<std::unique_ptr<CompiledFunction>(const CompileRequest &)>;

/// The code cache: compiles lazily; when \p Customize is set, entries are
/// keyed per receiver map (the paper's customized compilation), otherwise
/// one compile per source body is shared by all receivers.
class CodeManager : public RootProvider {
public:
  CodeManager(Heap &H, bool Customize, CompileFn Compiler)
      : H(H), Customize(Customize), Compiler(std::move(Compiler)) {
    H.addRootProvider(this);
  }
  ~CodeManager() override { H.removeRootProvider(this); }

  /// \returns cached or freshly compiled code for \p Req.
  CompiledFunction *getOrCompile(const CompileRequest &Req);

  /// Total CPU seconds spent inside the injected compiler.
  double totalCompileSeconds() const { return CompileSeconds; }
  /// Total compiled-code bytes across all cache entries.
  size_t totalCodeBytes() const;
  size_t functionCount() const { return Functions.size(); }

  /// Applies \p F to every compiled function (for stats and tests).
  void forEach(const std::function<void(const CompiledFunction &)> &F) const;

  void traceRoots(GcVisitor &V) override;

private:
  struct Key {
    const ast::Code *Source;
    Map *ReceiverMap;
    bool operator==(const Key &O) const {
      return Source == O.Source && ReceiverMap == O.ReceiverMap;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      return std::hash<const void *>()(K.Source) * 31 +
             std::hash<const void *>()(K.ReceiverMap);
    }
  };

  Heap &H;
  bool Customize;
  CompileFn Compiler;
  std::unordered_map<Key, CompiledFunction *, KeyHash> Cache;
  std::vector<std::unique_ptr<CompiledFunction>> Functions;
  double CompileSeconds = 0;
};

/// Dynamic execution counters (the "work" the benchmarks measure).
struct ExecCounters {
  uint64_t Instructions = 0;
  uint64_t Sends = 0;      ///< Dynamically-bound sends executed.
  uint64_t IcHits = 0;
  uint64_t IcMisses = 0;
  uint64_t PrimCalls = 0;  ///< Non-inlined primitive calls executed.
  uint64_t TypeTests = 0;  ///< TestInt/TestMap executed.
  uint64_t BlocksMade = 0; ///< Closures created.
  uint64_t EnvAccesses = 0;
};

/// The bytecode interpreter for one World.
class Interpreter : public RootProvider {
public:
  Interpreter(World &W, CodeManager &CM);
  ~Interpreter() override;

  /// Result of a top-level call.
  struct Outcome {
    bool Ok = true;
    Value Result;
    std::string Message; ///< Error description when !Ok.
  };

  /// Calls \p Fn with receiver \p Self and \p Args, running to completion.
  Outcome callFunction(CompiledFunction *Fn, Value Self,
                       const std::vector<Value> &Args);

  /// Compiles (uncached key: top-level bodies are unique) and runs a
  /// top-level expression body with the lobby as receiver.
  Outcome evalTopLevel(const ast::Code *Body);

  const ExecCounters &counters() const { return Counters; }
  void resetCounters() { Counters = ExecCounters(); }

  /// Aborts execution with an error after \p N instructions (0: unlimited).
  void setStepBudget(uint64_t N) { StepBudget = N; }

  void traceRoots(GcVisitor &V) override;

private:
  struct Frame {
    CompiledFunction *Fn;
    int IP;
    int Base;       ///< First register index in the shared register stack.
    int RetDst;     ///< Absolute register receiving the return value; -1.
    uint64_t FrameId;
    uint64_t HomeFrameId; ///< Target of `^`; == FrameId for method frames.
  };

  struct RunResult {
    enum class Kind : uint8_t { Done, NLR, Error } K = Kind::Done;
    Value Val;
    uint64_t HomeId = 0;
  };

  RunResult run(size_t Barrier);
  bool pushActivation(CompiledFunction *Fn, Value Self, const Value *Args,
                      int Argc, int RetDst, Object *Env, uint64_t HomeId,
                      bool IsBlock);
  /// Full send dispatch; either produces an immediate result, pushes an
  /// activation, or reports an error.
  enum class DispatchKind : uint8_t { Immediate, Pushed, Error };
  DispatchKind dispatchSend(Value Recv, const std::string *Sel,
                            const Value *Args, int Argc, int RetDst,
                            InlineCache *Cache, Value &Immediate);
  /// Sends `value...` to \p Callee (block fast path or generic send) and
  /// runs it to completion.
  RunResult callValueOn(Value Callee, const Value *Args, int Argc);
  /// Runs the whileTrue:/whileFalse: native loop.
  RunResult runWhileLoop(Value CondBlock, Value BodyBlock, bool Until);
  /// Unwinds a non-local return toward \p HomeId; stops at \p Barrier.
  RunResult continueNLR(uint64_t HomeId, Value Val, size_t Barrier);
  RunResult fail(const std::string &Msg);
  void safepoint();

  World &W;
  CodeManager &CM;
  std::vector<Value> RegStack;
  std::vector<Frame> Frames;
  std::vector<Value> NativeRoots; ///< Values live in native helpers.
  uint64_t NextFrameId = 1;
  uint64_t StepBudget = 0;
  std::string ErrMsg;
  ExecCounters Counters;
};

} // namespace mself

#endif // MINISELF_INTERP_INTERP_H
