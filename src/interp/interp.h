//===-- interp/interp.h - Bytecode interpreter and code cache ---*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine: an explicit-frame bytecode interpreter with
/// on-the-fly (lazy) compilation, polymorphic inline caches at dynamic send
/// sites (backed by the world's global lookup cache), non-local return, and
/// GC safepoints. The CodeManager is the code cache: compiled code is keyed
/// by (source code body, receiver map) — the receiver map being the paper's
/// *customization* — and the actual compiler is injected by the driver so
/// every compiler configuration runs on the same engine.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_INTERP_INTERP_H
#define MINISELF_INTERP_INTERP_H

#include "bytecode/bytecode.h"
#include "runtime/world.h"
#include "vm/heap.h"

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace mself {

class CompileQueue;
class SharedCodeBridge;

/// The one compile-traffic currency: every consumer of compilation — the
/// code cache, the background CompileQueue, the shared-tier bridge, and the
/// injected compiler itself — speaks this request type. Callers fill the
/// function identity (source / receiver map / block-unit flag / name); the
/// CodeManager owns tier selection and stamps the isolate before the request
/// leaves it, so the compiler and the artifact key never special-case a tier.
struct CompileRequest {
  const ast::Code *Source = nullptr;
  /// The request's type context: the receiver map the code is customized to
  /// (the paper's customization; the BBV tier seeds its entry block context
  /// from it). Null = uncustomized.
  Map *ReceiverMap = nullptr;
  bool IsBlockUnit = false;
  const std::string *Name = nullptr;
  /// Which compiler runs: the driver maps Baseline to its derived cheap
  /// policy, Optimized to the full policy, Bbv to the versioning tier.
  /// Chosen by the CodeManager (first-call tier vs. promotion target);
  /// callers' values are overwritten.
  CompileTier Tier = CompileTier::Optimized;
  /// The world the code will run in. Stamped by the CodeManager from its
  /// own isolate; compilers resolve lookups and literals against it.
  World *Isolate = nullptr;
  /// Mediates the compiler's access to mutable world state (compile-time
  /// lookups, string-literal allocation). Null means "compile
  /// synchronously on the mutator thread" — the compiler makes its own
  /// synchronous CompileAccess. The background compile queue supplies one
  /// in background mode, which routes lookups under the shape lock and
  /// carries the job's cancellation flag.
  CompileAccess *Access = nullptr;
};

/// What a request produced: the runnable code plus where it came from
/// (observability + tests; the cache-hit fast path reports CacheHit).
struct CompileResult {
  CompiledFunction *Fn = nullptr;
  enum class Origin : uint8_t {
    CacheHit, ///< Already in this manager's cache (memo or table).
    Compiled, ///< The injected compiler ran locally.
    Shared,   ///< Rehydrated from the shared tier's artifact store.
  } From = Origin::Compiled;
  explicit operator bool() const { return Fn != nullptr; }
};

using CompileFn =
    std::function<std::unique_ptr<CompiledFunction>(const CompileRequest &)>;

/// One entry in the bounded compilation event log.
struct CompileEvent {
  enum class Kind : uint8_t {
    Compile,    ///< A function entered the cache (either tier).
    Promote,    ///< Hot baseline code was recompiled under the full policy.
    Swap,       ///< The cache entry was switched to the promoted code.
    Invalidate, ///< A shape mutation voided the function's assumptions.
  };

  Kind EventKind = Kind::Compile;
  uint64_t Seq = 0; ///< Monotonic event number (survives log eviction).
  const std::string *Name = nullptr; ///< Function name; may be null.
  CompiledFunction::Tier Tier = CompiledFunction::Tier::Optimized;
  uint32_t HotCount = 0; ///< Counter value at promotion/invalidation.
  // Compiler time for Compile/Promote events, with the phase breakdown.
  double Seconds = 0;
  double ParseSeconds = 0;
  double AnalyzeSeconds = 0;
  double SplitSeconds = 0;
  double LowerSeconds = 0;
  double EmitSeconds = 0;
};

/// Bounded in-memory log of compilation activity: the oldest events are
/// evicted once the capacity is reached, while totalRecorded() keeps the
/// all-time count so samplers can detect eviction.
class CompilationEventLog {
public:
  static constexpr size_t kDefaultCapacity = 512;

  explicit CompilationEventLog(size_t Capacity = kDefaultCapacity)
      : Cap(Capacity ? Capacity : 1) {}

  void append(CompileEvent E) {
    E.Seq = Total++;
    Ring.push_back(E);
    while (Ring.size() > Cap)
      Ring.pop_front();
  }

  /// Retained events, oldest first.
  const std::deque<CompileEvent> &events() const { return Ring; }
  size_t capacity() const { return Cap; }
  uint64_t totalRecorded() const { return Total; }

private:
  size_t Cap;
  uint64_t Total = 0;
  std::deque<CompileEvent> Ring;
};

/// Aggregate tiering observability surfaced by the driver alongside
/// DispatchStats. Counter fields accumulate; the census fields are computed
/// from the code cache at sampling time.
struct TierStats {
  uint64_t BaselineCompiles = 0;
  uint64_t OptimizedCompiles = 0; ///< Full-policy compiles incl. promotions.
  uint64_t BbvCompiles = 0;       ///< Versioning-tier template compiles.
  double BbvCompileSeconds = 0;
  uint64_t BbvTagConflicts = 0;     ///< Slot-tag demotions fanned out to
                                    ///< guard cells (write-path hook).
  uint64_t BbvCellsInvalidated = 0; ///< Guard cells flipped by those
                                    ///< demotions (>= conflicts).
  uint64_t Promotions = 0;        ///< Baseline → top-tier recompiles.
  uint64_t Swaps = 0;             ///< Cache entries switched by promotion.
  uint64_t Invalidations = 0;     ///< Functions voided by shape mutations.
  double BaselineCompileSeconds = 0;
  double OptimizedCompileSeconds = 0;
  // Background (off-thread) promotion pipeline. Enqueued splits into
  // Installed + Cancelled (+ still queued at sampling time);
  // SyncFallbacks are promotions compiled synchronously because the
  // queue was saturated.
  uint64_t BackgroundEnqueued = 0;
  uint64_t BackgroundInstalled = 0; ///< Results swapped in at a safepoint.
  uint64_t BackgroundCancelled = 0; ///< Results discarded (shape mutation,
                                    ///< invalidation, or shutdown).
  uint64_t BackgroundSyncFallbacks = 0;
  double BackgroundCompileSeconds = 0; ///< Worker wall-clock compile time.
  /// Wall-clock time the mutator thread spent blocked inside the compiler
  /// (every synchronous compile, including saturation fallbacks). This is
  /// the tier-up stall that background compilation exists to remove: with
  /// the queue on, promotions cost the mutator only an enqueue and a
  /// safepoint install, and this stays near the first-call baseline cost.
  double MutatorStallSeconds = 0;
  // Shared code tier (multi-isolate SharedRuntime; all zero without one).
  // Hits + Publishes + LocalFallbacks partitions this isolate's compile
  // traffic by how the shared tier served it.
  uint64_t SharedHits = 0;      ///< Compiles served by a shared artifact.
  uint64_t SharedPublishes = 0; ///< Local compiles published as artifacts.
  uint64_t SharedRehydrateFailures = 0; ///< Ready artifacts this world could
                                        ///< not rebind (compiled locally).
  uint64_t SharedLocalFallbacks = 0; ///< Unkeyable requests (receiver shape
                                     ///< with no portable identity).
  // Code-cache census. Live: reachable from the cache (new calls run it).
  // Retired: baseline code replaced by promotion. Invalidated: voided by a
  // shape mutation. Live + Retired + Invalidated == functionCount().
  size_t LiveFunctions = 0, RetiredFunctions = 0, InvalidatedFunctions = 0;
  size_t LiveCodeBytes = 0, RetiredCodeBytes = 0, InvalidatedCodeBytes = 0;
};

/// The code cache: compiles lazily; when \p Customize is set, entries are
/// keyed per receiver map (the paper's customized compilation), otherwise
/// one compile per source body is shared by all receivers.
class CodeManager : public RootProvider {
public:
  /// Tiered-execution configuration, derived from the Policy by the driver.
  struct TieringConfig {
    bool Enabled = false;
    /// Hotness (invocations + loop back-edges) promoting baseline code;
    /// <= 0 compiles under the full policy on first call even when Enabled.
    int Threshold = 0;
    /// The tier hot (or, without tiering, first-call) code compiles at:
    /// Optimized by default, Bbv when the policy stacks the versioning
    /// tier on top.
    CompileTier Top = CompileTier::Optimized;
  };

  CodeManager(World &W, bool Customize, CompileFn Compiler,
              TieringConfig Tiering)
      : W(W), H(W.heap()), Customize(Customize),
        Compiler(std::move(Compiler)), Tiering(Tiering) {
    H.addRootProvider(this);
  }
  CodeManager(World &W, bool Customize, CompileFn Compiler)
      : CodeManager(W, Customize, std::move(Compiler), TieringConfig()) {}
  ~CodeManager() override { H.removeRootProvider(this); }

  /// The unified compile entry point: \returns cached or freshly compiled
  /// code for \p Req, with its origin. The manager owns tier selection —
  /// with tiering on (and a positive threshold) a cache miss compiles the
  /// baseline tier, otherwise straight at TieringConfig::Top — and stamps
  /// the isolate, so callers only describe *what* to compile.
  CompileResult request(const CompileRequest &Req);

  /// Pre-CompileResult spelling of request(); kept one PR for out-of-tree
  /// callers, like PR 5's telemetry shims.
  [[deprecated("use request()")]] CompiledFunction *
  getOrCompile(const CompileRequest &Req) {
    return request(Req).Fn;
  }

  bool tieringEnabled() const { return Tiering.Enabled; }

  /// Counter bump on activation entry. \returns the function the caller
  /// should actually run: \p Fn itself, its promoted replacement when the
  /// bump crossed the threshold (or a previous one did), else \p Fn.
  CompiledFunction *noteInvocation(CompiledFunction *Fn);

  /// Counter bump on a loop back-edge (a backward bytecode branch, or one
  /// iteration of the interpreter's native while loop). Promotion triggered
  /// here swaps the cache entry so *future* calls run optimized code; the
  /// executing activation finishes on the old code (no OSR).
  void noteBackEdge(CompiledFunction *Fn);

  /// Invalidates every live function whose compile-time lookups walked
  /// \p Mutated: the entry leaves the cache (the next call recompiles at
  /// the baseline tier and re-promotes with fresh types) and its dependency
  /// set is cleared. Called by the world's shape-mutation hook.
  void invalidateDependents(Map *Mutated);

  /// Routes hot-function promotions through \p Q instead of compiling them
  /// synchronously: hotness triggers enqueue a background job and the
  /// mutator keeps running baseline code until the result is installed at a
  /// safepoint (maybeInstall). Null reverts to synchronous promotion.
  void setBackgroundQueue(CompileQueue *Q) { Queue = Q; }
  CompileQueue *backgroundQueue() const { return Queue; }

  /// Connects this code cache to a SharedRuntime's code tier: cache misses
  /// probe the tier first (adopting a rehydrated artifact instead of
  /// compiling), local compiles publish their results, and promotion
  /// triggers skip the background queue when the optimized code already
  /// exists process-wide. Null (the default) is the single-VM
  /// configuration: every compile is local, nothing is published.
  void setSharedBridge(SharedCodeBridge *B) { Bridge = B; }
  SharedCodeBridge *sharedBridge() const { return Bridge; }

  /// Safepoint poll: installs every finished background compile — the
  /// promote/swap/PIC-re-point sequence of the synchronous path, run on the
  /// mutator thread — and discards results whose job was cancelled or whose
  /// baseline function was invalidated while the compile ran. Cheap when
  /// nothing is pending; no-op without a queue.
  void maybeInstall();

  /// Injects the BBV tier's lazy materializer (interp/ does not link
  /// against compiler/; the driver wires this the way it injects CompileFn).
  /// Given a BBV function and the stub index from a BbvStub instruction, it
  /// materializes the target block version and \returns the code index to
  /// resume at.
  void setBbvMaterializer(std::function<int(CompiledFunction &, int)> M) {
    BbvMaterializer = std::move(M);
  }

  /// Executes a BbvStub: runs the injected materializer on the mutator
  /// thread (no allocation, so no GC interleaving) and \returns the resume
  /// index, or -1 when no materializer is wired (malformed configuration).
  int bbvMaterialize(CompiledFunction &Fn, int StubIdx) {
    if (!BbvMaterializer)
      return -1;
    return BbvMaterializer(Fn, StubIdx);
  }

  /// Write-path hook: a store to \p FieldIndex of an object with map \p M
  /// conflicted with the slot's recorded type tag. Flips every guard cell
  /// covering that (map, field) so dependent BbvGuard sites take their slow
  /// (re-testing) path; the versions themselves stay installed and sound.
  void onSlotTagConflict(Map *M, int FieldIndex);

  /// Total CPU seconds spent inside the injected compiler.
  double totalCompileSeconds() const { return CompileSeconds; }
  /// Total compiled-code bytes across every function ever compiled,
  /// including retired (replaced by promotion) and invalidated code that
  /// is kept allocated for in-flight activations. Use liveCodeBytes() for
  /// the footprint of code new calls can actually reach.
  size_t totalCodeBytes() const;
  /// All functions ever compiled (live + retired + invalidated).
  size_t functionCount() const { return Functions.size(); }

  /// Functions reachable from the cache — what a fresh call would run.
  size_t liveFunctionCount() const { return Cache.size(); }
  size_t liveCodeBytes() const;
  /// Functions voided by shape mutations (kept for in-flight frames).
  size_t invalidatedFunctionCount() const;
  size_t invalidatedCodeBytes() const;

  /// Tiering counters plus a live/retired/invalidated code-cache census.
  TierStats tierStats() const;

  /// The bounded compile/promote/swap/invalidate event log.
  const CompilationEventLog &eventLog() const { return Events; }

  /// Applies \p F to every compiled function (for stats and tests).
  void forEach(const std::function<void(const CompiledFunction &)> &F) const;

  /// Invalidation hook: resets every send site's inline cache back to the
  /// Empty state and rewrites every quickened send opcode back to the
  /// generic Op::Send (quickened forms validate against PIC entry 0, which
  /// this just emptied — rewriting eagerly keeps specialized code from even
  /// reaching its guard after a shape mutation). Called (via the world's
  /// shape-mutation hook) whenever a map gains a slot, since cached
  /// bindings may then be stale.
  void flushInlineCaches();

  /// Rewrites every quickened send opcode in every compiled function back
  /// to Op::Send. Part of flushInlineCaches(); exposed for tests.
  void dequickenAll();

  /// Number of flushInlineCaches() calls (observability).
  uint64_t inlineCacheFlushes() const { return CacheFlushes; }

  /// Quickened sites rewritten back to generic by dequickenAll().
  uint64_t dequickenedSites() const { return DequickenedSites; }

  void traceRoots(GcVisitor &V) override;

private:
  /// Canonicalizes a caller's request: receiver map dropped when
  /// customization is off, the isolate stamped. Tier is set separately by
  /// the caller (first-call selection in request(), promotion target in
  /// promote()/triggerPromotion()).
  CompileRequest normalize(const CompileRequest &Req) const {
    CompileRequest Norm = Req;
    if (!Customize)
      Norm.ReceiverMap = nullptr;
    Norm.Isolate = &W;
    return Norm;
  }
  /// Compiles \p Req (already normalized, tier chosen), charges timing
  /// stats, logs the event, and takes ownership. Does not touch the cache.
  CompiledFunction *compileInternal(const CompileRequest &Req,
                                    CompileEvent::Kind LogKind);
  /// compileInternal() with the shared tier in front: adopt a rehydrated
  /// artifact on a tier hit, else compile locally and publish when this
  /// isolate holds the single-flight claim. Plain compileInternal() when no
  /// bridge is attached. \p FromOut, when non-null, reports whether the
  /// shared tier or the local compiler produced the code.
  CompiledFunction *compileShared(const CompileRequest &Norm,
                                  CompileEvent::Kind LogKind,
                                  CompileResult::Origin *FromOut = nullptr);
  /// Takes ownership of a function rehydrated from the shared tier and
  /// gives it the same cache-entry accounting as a fresh compile, charging
  /// only \p Seconds of rehydration wall time (no compiler ran here).
  CompiledFunction *adoptShared(std::unique_ptr<CompiledFunction> Fn,
                                CompileTier T, CompileEvent::Kind LogKind,
                                double Seconds);
  /// The promotion tail shared by every path that has optimized code in
  /// hand: ReplacedBy, cache swap, memo flush, swap event, PIC re-point.
  void swapIn(CompiledFunction *Old, CompiledFunction *New);
  /// Recompiles \p Old under the full policy and swaps the cache entry.
  CompiledFunction *promote(CompiledFunction *Old);
  /// Tiering trigger with the queue attached: enqueues an asynchronous
  /// promotion (dedup'd via PromotionPending) or falls back to a
  /// synchronous promote() when the queue is saturated. \returns the
  /// function the caller should run now.
  CompiledFunction *triggerPromotion(CompiledFunction *Old);
  /// Installs one finished background compile: the tail of promote()
  /// (ReplacedBy, cache swap, PIC re-point) plus the ownership and
  /// accounting that compileInternal() does for synchronous compiles.
  /// \p T is the tier the job was compiled at (from its request).
  void installCompleted(CompiledFunction *Old,
                        std::unique_ptr<CompiledFunction> NewOwned,
                        CompileTier T, double Seconds);
  /// Cache key with its hash computed once at construction, so the hot
  /// lookup (every block invocation and native-loop iteration probes the
  /// cache) hashes nothing at probe time — the table reads the stored value.
  struct Key {
    const ast::Code *Source;
    Map *ReceiverMap;
    size_t Hash;
    Key(const ast::Code *S, Map *M)
        : Source(S), ReceiverMap(M),
          Hash(std::hash<const void *>()(S) * 31 +
               std::hash<const void *>()(M)) {}
    bool operator==(const Key &O) const {
      return Source == O.Source && ReceiverMap == O.ReceiverMap;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const { return K.Hash; }
  };

  /// Tiny direct-mapped memo in front of the hash table: the same handful
  /// of block bodies are re-probed once per loop iteration, so most hot
  /// lookups resolve with a few pointer compares and no hashing at all.
  /// Must be flushed whenever a cache entry changes (promotion swaps,
  /// invalidation erasures).
  static constexpr int kMemoEntries = 4;
  struct MemoEntry {
    const ast::Code *Source = nullptr;
    Map *ReceiverMap = nullptr;
    CompiledFunction *Fn = nullptr;
  };
  void memoInsert(const ast::Code *S, Map *M, CompiledFunction *Fn) {
    Memo[MemoNext] = MemoEntry{S, M, Fn};
    MemoNext = (MemoNext + 1) % kMemoEntries;
  }
  void memoFlush() {
    for (MemoEntry &E : Memo)
      E = MemoEntry();
  }

  World &W;
  Heap &H;
  bool Customize;
  CompileFn Compiler;
  TieringConfig Tiering;
  CompileQueue *Queue = nullptr; ///< Non-null: promotions go off-thread.
  SharedCodeBridge *Bridge = nullptr; ///< Non-null: shared code tier.
  /// Lazy block-version materializer (BBV tier only; injected by driver).
  std::function<int(CompiledFunction &, int)> BbvMaterializer;
  std::unordered_map<Key, CompiledFunction *, KeyHash> Cache;
  MemoEntry Memo[kMemoEntries];
  unsigned MemoNext = 0;
  std::vector<std::unique_ptr<CompiledFunction>> Functions;
  double CompileSeconds = 0;
  uint64_t CacheFlushes = 0;
  uint64_t DequickenedSites = 0;
  TierStats Tiers; ///< Counter fields only; census filled by tierStats().
  CompilationEventLog Events;
};

/// True when this build can run the computed-goto (direct-threaded)
/// dispatch loop; without it DispatchOptions::Threaded is ignored and the
/// portable switch loop runs.
constexpr bool threadedDispatchSupported() {
#if defined(MINISELF_COMPUTED_GOTO)
  return true;
#else
  return false;
#endif
}

/// Runtime dispatch configuration, derived from the compiler Policy by the
/// driver (interp/ deliberately does not depend on compiler/).
struct DispatchOptions {
  bool InlineCaches = true;   ///< Off: every send performs a full lookup.
  bool Polymorphic = true;    ///< Off: single-entry caches, replace on miss.
  int PicArity = 4;           ///< Entries per site before megamorphic.
  bool UseGlobalCache = true; ///< Consult the world's global lookup cache.
  bool Threaded = true;       ///< Computed-goto loop (when built in).
  bool Quickening = true;     ///< Rewrite monomorphic Send sites in place.

  /// \returns PicArity clamped to the PIC's physical capacity.
  int clampedArity() const {
    int A = Polymorphic ? PicArity : 1;
    if (A < 1)
      return 1;
    return A > InlineCache::kCapacity ? InlineCache::kCapacity : A;
  }
};

/// Dynamic execution counters (the "work" the benchmarks measure).
struct ExecCounters {
  uint64_t Instructions = 0;
  uint64_t Sends = 0;      ///< Dynamically-bound sends executed.
  uint64_t IcHits = 0;     ///< Sends served by a PIC entry probe.
  uint64_t IcMisses = 0;   ///< PIC probe misses (incl. megamorphic sends).
  uint64_t PrimCalls = 0;  ///< Non-inlined primitive calls executed.
  uint64_t TypeTests = 0;  ///< TestInt/TestMap executed.
  uint64_t BlocksMade = 0; ///< Closures created.
  uint64_t EnvAccesses = 0;

  // Escape analysis: activation-arena allocation (the GC never sees these).
  uint64_t ArenaEnvAllocs = 0;   ///< Environments born in a frame arena.
  uint64_t ArenaBlockAllocs = 0; ///< Closures born in a frame arena.
  uint64_t ArenaBytes = 0;       ///< Shell + slot bytes allocated in arenas.
  uint64_t ArenaReleases = 0;    ///< Frame pops that freed arena objects.
  uint64_t ArenaDemotedAllocs = 0; ///< Arena sites that fell back to the
                                   ///< heap: the function was invalidated
                                   ///< (escape proof voided) or the frame
                                   ///< exhausted its arena budget.

  // Dispatch-path observability (the PIC + global-cache fast path).
  uint64_t GlcHits = 0;      ///< Misses resolved by the global lookup cache.
  uint64_t GlcMisses = 0;    ///< Global-cache probes that fell through.
  uint64_t FullLookups = 0;  ///< Full parent-walk lookups performed.
  uint64_t SendsMono = 0;    ///< Sends dispatched at a Monomorphic site.
  uint64_t SendsPoly = 0;    ///< ... at a Polymorphic site.
  uint64_t SendsMega = 0;    ///< ... at a Megamorphic site.
  uint64_t SendsUncached = 0;///< ... at a cold site, or with caching off.
  uint64_t PicFills = 0;     ///< PIC entries installed.
  uint64_t MonoToPoly = 0;   ///< Monomorphic → Polymorphic transitions.
  uint64_t ToMegamorphic = 0;///< Transitions into the Megamorphic state.
  uint64_t PicEvictions = 0; ///< Entries replaced (monomorphic mode).

  // Opcode quickening (the specialized-send execution path).
  uint64_t QuickSends = 0;     ///< Sends served by a quickened opcode.
  uint64_t Quickenings = 0;    ///< Send sites rewritten to a quickened form.
  uint64_t Dequickenings = 0;  ///< Quickened sites rewritten back on a
                               ///< guard miss (map/kind mismatch).

  // Lazy basic-block versioning (the third execution tier).
  uint64_t BbvStubRuns = 0;   ///< BbvStub dispatches (one materialization
                              ///< each; patched stubs never re-run).
  uint64_t BbvGuardFast = 0;  ///< Slot-tag guards passing on the cell read
                              ///< alone (a type test that never ran).
  uint64_t BbvGuardSlow = 0;  ///< Guards routed to the re-testing slow path
                              ///< after a conflicting store demoted the tag.

  /// Executions per opcode, indexed by Op. Always maintained — the cost is
  /// one array increment per dispatch, paid identically by every engine
  /// configuration — and asserted over by the opcode-coverage test.
  uint64_t PerOp[kNumOps] = {};
};

/// Aggregate dispatch-path statistics assembled by the driver: dynamic
/// counters from the interpreter, a send-site census from the code cache,
/// and the world's global-lookup-cache numbers.
struct DispatchStats {
  // Dynamic (per-interpreter) counts.
  uint64_t Sends = 0, PicHits = 0, PicMisses = 0;
  uint64_t GlcHits = 0, GlcMisses = 0, FullLookups = 0;
  uint64_t SendsMono = 0, SendsPoly = 0, SendsMega = 0, SendsUncached = 0;
  uint64_t PicFills = 0, MonoToPoly = 0, ToMegamorphic = 0, PicEvictions = 0;
  // Send-site census (code cache walk at sampling time).
  size_t Sites = 0, SitesEmpty = 0, SitesMono = 0, SitesPoly = 0,
         SitesMega = 0;
  // Global lookup cache.
  size_t GlcCapacity = 0, GlcOccupied = 0;
  uint64_t GlcFills = 0, GlcInvalidations = 0;
  uint64_t InlineCacheFlushes = 0;
  /// String-interner probes (selector/slot-name interning during lexing and
  /// loading). Process-wide when the interner is a SharedRuntime's.
  uint64_t InternerLookups = 0;
  // Opcode quickening.
  uint64_t QuickSends = 0, Quickenings = 0, Dequickenings = 0;
  uint64_t DequickenedSites = 0; ///< Sites reset by invalidation flushes.

  /// Fraction of sends served directly by a PIC entry.
  double picHitRate() const;
  /// Fraction of sends served by either a PIC entry or the global cache.
  double combinedHitRate() const;
  /// Fraction of global-cache slots holding an entry.
  double glcOccupancy() const;
};

/// The bytecode interpreter for one World.
class Interpreter : public RootProvider {
public:
  Interpreter(World &W, CodeManager &CM, DispatchOptions Opts = {});
  ~Interpreter() override;

  const DispatchOptions &dispatchOptions() const { return Opts; }

  /// Result of a top-level call.
  struct Outcome {
    bool Ok = true;
    Value Result;
    std::string Message; ///< Error description when !Ok.
  };

  /// Calls \p Fn with receiver \p Self and \p Args, running to completion.
  Outcome callFunction(CompiledFunction *Fn, Value Self,
                       const std::vector<Value> &Args);

  /// Compiles (uncached key: top-level bodies are unique) and runs a
  /// top-level expression body with the lobby as receiver.
  Outcome evalTopLevel(const ast::Code *Body);

  const ExecCounters &counters() const { return Counters; }
  void resetCounters() { Counters = ExecCounters(); }

  /// The per-activation arena for escape-proven envs and blocks
  /// (telemetry reads the high-water mark).
  const ActivationArena &arena() const { return Arena; }

  /// Aborts execution with an error after \p N instructions (0: unlimited).
  void setStepBudget(uint64_t N) { StepBudget = N; }

  void traceRoots(GcVisitor &V) override;

private:
  struct Frame {
    CompiledFunction *Fn;
    int IP;
    int Base;       ///< First register index in the shared register stack.
    int RetDst;     ///< Absolute register receiving the return value; -1.
    uint64_t FrameId;
    uint64_t HomeFrameId; ///< Target of `^`; == FrameId for method frames.
    /// Arena watermark at activation entry: popping this frame releases
    /// every env/block it arena-allocated, wholesale.
    ActivationArena::Mark ArenaMark;
  };

  struct RunResult {
    enum class Kind : uint8_t { Done, NLR, Error } K = Kind::Done;
    Value Val;
    uint64_t HomeId = 0;
  };

  /// Dispatches to runThreaded() when the build supports computed goto and
  /// Opts.Threaded is set, else to the portable switch loop. Both loops are
  /// expanded from interp_loop.inc so their per-opcode semantics cannot
  /// drift apart.
  RunResult run(size_t Barrier);
  RunResult runSwitch(size_t Barrier);
#if defined(MINISELF_COMPUTED_GOTO)
  RunResult runThreaded(size_t Barrier);
#endif
  /// Rewrites the Send at \p IP in \p Cd to its quickened form when the
  /// site's PIC is monomorphic (and the selector is not one the loop
  /// intercepts natively).
  void maybeQuicken(int32_t *Cd, int IP, const InlineCache &C,
                    const std::string *Sel, int Argc);
  bool pushActivation(CompiledFunction *Fn, Value Self, const Value *Args,
                      int Argc, int RetDst, Object *Env, uint64_t HomeId,
                      bool IsBlock);
  /// Full send dispatch; either produces an immediate result, pushes an
  /// activation, or reports an error.
  enum class DispatchKind : uint8_t { Immediate, Pushed, Error };
  DispatchKind dispatchSend(Value Recv, const std::string *Sel,
                            const Value *Args, int Argc, int RetDst,
                            InlineCache *Cache, Value &Immediate);
  /// Executes the action bound in PIC entry \p E for receiver \p Recv.
  DispatchKind applyPicEntry(PicEntry &E, Value Recv, const Value *Args,
                             int Argc, int RetDst, Value &Immediate);
  /// Installs \p E into \p C, driving the mono → poly → megamorphic state
  /// machine (or single-entry replacement when PICs are disabled).
  void installPicEntry(InlineCache &C, const PicEntry &E);
  /// Sends `value...` to \p Callee (block fast path or generic send) and
  /// runs it to completion.
  RunResult callValueOn(Value Callee, const Value *Args, int Argc);
  /// Runs the whileTrue:/whileFalse: native loop.
  RunResult runWhileLoop(Value CondBlock, Value BodyBlock, bool Until);
  /// Unwinds a non-local return toward \p HomeId; stops at \p Barrier.
  RunResult continueNLR(uint64_t HomeId, Value Val, size_t Barrier);
  RunResult fail(const std::string &Msg);
  void safepoint();
  /// Error-path unwind: releases the arena allocations of every frame
  /// above \p Barrier, then drops the frames. All normal pops (Return,
  /// non-local return) release their own frame's mark instead.
  void unwindFrames(size_t Barrier);
  /// Clears register-stack slots between the live top and the high-water
  /// mark. Popped frames leave their old register values behind; those
  /// slots re-enter the traced window when the next frame is pushed over
  /// them, so they must not keep pointers to storage a pop reclaimed.
  /// Mandatory after every arena release (the stale values may point at
  /// just-destroyed arena shells, which a later root sweep would chase
  /// into freed memory); also run after each collection.
  void scrubDeadRegisters();

  World &W;
  CodeManager &CM;
  DispatchOptions Opts;
  std::vector<Value> RegStack;
  std::vector<Frame> Frames;
  std::vector<Value> NativeRoots; ///< Values live in native helpers.
  ActivationArena Arena; ///< Escape-proven envs/blocks, one mark per frame.
  /// High-water mark of the live register window since the last scrub:
  /// every slot in [live top, RegDirtyHigh) may hold a stale value from a
  /// popped frame. Slots above it are guaranteed empty.
  size_t RegDirtyHigh = 0;
  uint64_t NextFrameId = 1;
  uint64_t StepBudget = 0;
  std::string ErrMsg;
  ExecCounters Counters;
};

} // namespace mself

#endif // MINISELF_INTERP_INTERP_H
