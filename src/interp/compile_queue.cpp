//===-- interp/compile_queue.cpp - Background compilation queue -----------===//

#include "interp/compile_queue.h"

#include "interp/compile_service.h"
#include "support/stopwatch.h"

#include <cassert>

using namespace mself;

CompileQueue::CompileQueue(World &W, Heap &H, CompileFn Compiler, int Cap,
                           CompileService *Svc)
    : W(W), H(H), Compiler(std::move(Compiler)), Cap(Cap), Svc(Svc) {
  H.setGcGate(&Gate);
  H.addRootProvider(this);
  if (Svc)
    Svc->attach(this);
  else
    Worker = std::thread([this] { workerLoop(); });
}

CompileQueue::~CompileQueue() {
  {
    std::lock_guard<std::mutex> L(QueueMutex);
    Stopping = true;
    // Pending jobs are dropped: nothing observed them beyond the
    // PromotionPending flag, and the VM is going away anyway.
    Pending.clear();
  }
  if (Svc) {
    // Blocks until no service worker still runs one of our jobs; after
    // detach() no worker can reach this queue again.
    Svc->detach(this);
  } else {
    WorkCV.notify_all();
    Worker.join();
  }
  H.removeRootProvider(this);
  H.setGcGate(nullptr);
}

bool CompileQueue::enqueue(CompiledFunction *Old, const CompileRequest &Req) {
  std::unique_lock<std::mutex> L(QueueMutex);
  if (Stopping ||
      Pending.size() >= static_cast<size_t>(Cap > 0 ? Cap : 0))
    return false;
  auto J = std::make_unique<Job>(W, Old, Req);
  if (FirstWalkHook)
    J->Access.setFirstWalkHook(FirstWalkHook);
  Pending.push_back(std::move(J));
  L.unlock();
  // Queue mutex released first: the service takes its own mutex, and the
  // worker side nests service mutex -> queue mutex (serviceTake), so
  // notifying while still holding the queue mutex would invert the order.
  if (Svc)
    Svc->notifyWork();
  else
    WorkCV.notify_one();
  return true;
}

std::unique_ptr<CompileQueue::Job> CompileQueue::serviceTake() {
  std::lock_guard<std::mutex> L(QueueMutex);
  if (Stopping || InFlight || Pending.empty())
    return nullptr;
  std::unique_ptr<Job> J = std::move(Pending.front());
  Pending.pop_front();
  InFlight = J.get();
  return J;
}

bool CompileQueue::serviceTakeable() const {
  std::lock_guard<std::mutex> L(QueueMutex);
  return !Stopping && !InFlight && !Pending.empty();
}

std::vector<std::unique_ptr<CompileQueue::Job>> CompileQueue::takeDone() {
  std::lock_guard<std::mutex> L(QueueMutex);
  DoneCount.store(0, std::memory_order_relaxed);
  std::vector<std::unique_ptr<Job>> Out = std::move(Done);
  Done.clear();
  return Out;
}

void CompileQueue::onShapeMutation(Map *Mutated) {
  std::lock_guard<std::mutex> L(QueueMutex);
  // In flight: cancel iff a lookup already walked the mutated map — the
  // result may bake in the old shape. The visited set is complete for
  // every walk that finished (appends happen under the shared shape lock,
  // which the caller's exclusive hold excludes), so a map not in it
  // cannot have influenced the compile so far; later walks will see the
  // new shape consistently thanks to the job-local memo being keyed on
  // walks that already happened.
  if (InFlight && InFlight->Access.visitedMap(Mutated))
    InFlight->Access.cancel();
  // Finished but uninstalled: the result's dependency set is exact — the
  // analog of CodeManager::invalidateDependents for code that never made
  // it into the cache.
  for (auto &J : Done) {
    if (!J->Result || J->Access.cancelled())
      continue;
    for (Map *M : J->Result->DependsOnMaps)
      if (M == Mutated) {
        J->Access.cancel();
        break;
      }
  }
  // Pending jobs need nothing: their compile starts after this mutation
  // and sees the new shape.
}

void CompileQueue::waitIdle() {
  std::unique_lock<std::mutex> L(QueueMutex);
  IdleCV.wait(L, [this] { return Pending.empty() && InFlight == nullptr; });
}

size_t CompileQueue::pendingCount() const {
  std::lock_guard<std::mutex> L(QueueMutex);
  return Pending.size();
}

void CompileQueue::traceRoots(GcVisitor &V) {
  // Runs only during a collection, i.e. with the gate held by the
  // collector — the worker cannot be publishing concurrently. The queue
  // mutex is still taken for the mutator-side accessors' benefit.
  std::lock_guard<std::mutex> L(QueueMutex);
  for (auto &J : Done) {
    if (!J->Result)
      continue;
    // Mirror CodeManager::traceRoots for code not yet in the cache:
    // literal Values must survive (and be updated across moves); PICs are
    // empty at birth but cheap to cover. Maps and code are not
    // heap-managed.
    for (Value &Lit : J->Result->Literals)
      V.visit(Lit);
    for (InlineCache &C : J->Result->Caches)
      for (int I = 0; I < C.Size; ++I) {
        V.visit(C.Entries[I].ConstValue);
        V.visitObject(C.Entries[I].SlotHolder);
      }
  }
}

void CompileQueue::runJob(std::unique_ptr<Job> J) {
  // The gate spans the compile *and* the publication below: until the
  // job is on the Done list (where traceRoots covers it), the values it
  // reads and the literals it accumulates are invisible to the
  // collector, so collections must not run. Safepoint GC try_locks and
  // defers instead of blocking — the mutator never waits on a compile.
  Gate.lock();
  Stopwatch Timer;
  if (!J->Access.cancelled())
    J->Result = Compiler(J->Req);
  J->Seconds = Timer.elapsedSeconds();
  {
    std::lock_guard<std::mutex> L(QueueMutex);
    InFlight = nullptr;
    Done.push_back(std::move(J));
    DoneCount.store(Done.size(), std::memory_order_relaxed);
  }
  Gate.unlock();
  IdleCV.notify_all();
}

void CompileQueue::workerLoop() {
  for (;;) {
    std::unique_ptr<Job> J;
    {
      std::unique_lock<std::mutex> L(QueueMutex);
      WorkCV.wait(L, [this] { return Stopping || !Pending.empty(); });
      if (Stopping)
        return;
      J = std::move(Pending.front());
      Pending.pop_front();
      InFlight = J.get();
    }
    runJob(std::move(J));
  }
}
