//===-- interp/interp.cpp - Bytecode interpreter and code cache -----------===//

#include "interp/interp.h"

#include "interp/compile_queue.h"
#include "runtime/lookup.h"
#include "runtime/primitives.h"
#include "runtime/shared_tier.h"
#include "support/stats.h"
#include "support/stopwatch.h"
#include "vm/object.h"

#include <algorithm>
#include <cassert>

using namespace mself;

//===----------------------------------------------------------------------===//
// CodeManager
//===----------------------------------------------------------------------===//

CompiledFunction *CodeManager::compileInternal(const CompileRequest &Req,
                                               CompileEvent::Kind LogKind) {
  double Before = cpuTimeSeconds();
  Stopwatch Wall; // Every synchronous compile stalls the mutator thread.
  std::unique_ptr<CompiledFunction> Fn = Compiler(Req);
  Tiers.MutatorStallSeconds += Wall.elapsedSeconds();
  double Elapsed = cpuTimeSeconds() - Before;
  assert(Fn && "compiler must produce code");
  Fn->Stats.Seconds = Elapsed;
  Fn->CodeTier = Req.Tier;
  CompileSeconds += Elapsed;
  switch (Req.Tier) {
  case CompileTier::Baseline:
    ++Tiers.BaselineCompiles;
    Tiers.BaselineCompileSeconds += Elapsed;
    break;
  case CompileTier::Bbv:
    ++Tiers.BbvCompiles;
    Tiers.BbvCompileSeconds += Elapsed;
    break;
  case CompileTier::Optimized:
    ++Tiers.OptimizedCompiles;
    Tiers.OptimizedCompileSeconds += Elapsed;
    break;
  }

  CompileEvent E;
  E.EventKind = LogKind;
  E.Name = Fn->Name;
  E.Tier = Req.Tier;
  E.Seconds = Elapsed;
  E.ParseSeconds = Fn->Stats.ParseSeconds;
  E.AnalyzeSeconds = Fn->Stats.AnalyzeSeconds;
  E.SplitSeconds = Fn->Stats.SplitSeconds;
  E.LowerSeconds = Fn->Stats.LowerSeconds;
  E.EmitSeconds = Fn->Stats.EmitSeconds;
  Events.append(E);

  CompiledFunction *Raw = Fn.get();
  Functions.push_back(std::move(Fn));
  return Raw;
}

CompiledFunction *CodeManager::adoptShared(std::unique_ptr<CompiledFunction> Fn,
                                           CompileTier T,
                                           CompileEvent::Kind LogKind,
                                           double Seconds) {
  CompiledFunction *Raw = Fn.get();
  Raw->CodeTier = T;
  // The producer's compile stats describe this code accurately; only the
  // event's cost is ours — rehydration wall time, not a compile. Neither
  // tier compile counters nor CompileSeconds are charged: no compiler ran.
  ++Tiers.SharedHits;
  CompileEvent E;
  E.EventKind = LogKind;
  E.Name = Raw->Name;
  E.Tier = T;
  E.Seconds = Seconds;
  Events.append(E);
  Functions.push_back(std::move(Fn));
  return Raw;
}

CompiledFunction *CodeManager::compileShared(const CompileRequest &Norm,
                                             CompileEvent::Kind LogKind,
                                             CompileResult::Origin *FromOut) {
  if (FromOut)
    *FromOut = CompileResult::Origin::Compiled;
  if (!Bridge)
    return compileInternal(Norm, LogKind);
  SharedCodeBridge::Ticket Tk;
  Stopwatch Wall;
  std::unique_ptr<CompiledFunction> Fn = Bridge->acquire(Norm, Tk);
  if (Tk.RehydrateFailed)
    ++Tiers.SharedRehydrateFailures;
  if (Fn) {
    if (FromOut)
      *FromOut = CompileResult::Origin::Shared;
    return adoptShared(std::move(Fn), Norm.Tier, LogKind,
                       Wall.elapsedSeconds());
  }
  if (!Tk.HasKey)
    ++Tiers.SharedLocalFallbacks;
  CompiledFunction *Raw = compileInternal(Norm, LogKind);
  // Holding the single-flight claim means other isolates may be blocked on
  // this key right now; publish (or mark unportable) to release them.
  if (Tk.Claimed && Bridge->publish(Tk, *Raw))
    ++Tiers.SharedPublishes;
  return Raw;
}

CompileResult CodeManager::request(const CompileRequest &Req) {
  CompileRequest Norm = normalize(Req);
  // Memo first: the same few block bodies are re-probed once per loop
  // iteration, and a handful of pointer compares beat even a stored-hash
  // table probe.
  for (const MemoEntry &E : Memo)
    if (E.Source == Norm.Source && E.ReceiverMap == Norm.ReceiverMap)
      return CompileResult{E.Fn, CompileResult::Origin::CacheHit};

  Key K{Norm.Source, Norm.ReceiverMap};
  auto It = Cache.find(K);
  if (It != Cache.end()) {
    memoInsert(K.Source, K.ReceiverMap, It->second);
    return CompileResult{It->second, CompileResult::Origin::CacheHit};
  }

  // Tier selection is the manager's, not the caller's: a cold function
  // compiles at the baseline tier when tiering is on (a non-positive
  // threshold degenerates to top-tier-first-call), else straight at the
  // configured top tier.
  Norm.Tier = Tiering.Enabled && Tiering.Threshold > 0 ? CompileTier::Baseline
                                                       : Tiering.Top;
  CompileResult R;
  R.Fn = compileShared(Norm, CompileEvent::Kind::Compile, &R.From);
  Cache.emplace(K, R.Fn);
  memoInsert(K.Source, K.ReceiverMap, R.Fn);
  return R;
}

CompiledFunction *CodeManager::promote(CompiledFunction *Old) {
  CompileRequest Req;
  Req.Source = Old->Source;
  Req.ReceiverMap = Old->ReceiverMap; // Already normalized at first compile.
  Req.IsBlockUnit = Old->IsBlockUnit;
  Req.Name = Old->Name;
  Req.Tier = Tiering.Top;
  Req.Isolate = &W;
  CompiledFunction *New = compileShared(Req, CompileEvent::Kind::Promote);
  swapIn(Old, New);
  return New;
}

void CodeManager::swapIn(CompiledFunction *Old, CompiledFunction *New) {
  Old->ReplacedBy = New;
  ++Tiers.Promotions;

  // Swap the cache entry: future request() calls — including every
  // block invocation and each native-loop iteration — run the new code.
  // Executing activations of Old keep running it (no OSR). The memo may
  // still hand out Old, so flush it.
  Cache[Key{Old->Source, Old->ReceiverMap}] = New;
  memoFlush();
  ++Tiers.Swaps;
  CompileEvent E;
  E.EventKind = CompileEvent::Kind::Swap;
  E.Name = Old->Name;
  E.Tier = New->CodeTier;
  E.HotCount = Old->HotCount;
  Events.append(E);

  // Send sites cache a CompiledFunction* per receiver map; re-point entries
  // still targeting the baseline code so cached call sites promote too.
  // Promotion is rare (at most once per function between invalidations), so
  // the full sweep is cheaper than a forwarding check on every dispatch.
  for (const auto &F : Functions)
    for (InlineCache &C : F->Caches)
      for (int I = 0; I < C.Size; ++I)
        if (C.Entries[I].EntryKind == PicEntry::Kind::Method &&
            C.Entries[I].Target == Old)
          C.Entries[I].Target = New;
}

CompiledFunction *CodeManager::triggerPromotion(CompiledFunction *Old) {
  if (!Queue)
    return promote(Old);
  // Already queued or compiling: keep running baseline until the install.
  if (Old->PromotionPending)
    return Old;
  // When some isolate already paid for the optimized code, adopt it now —
  // a rehydration is cheap enough for the trigger path and skips the
  // queue round-trip entirely.
  CompileRequest Req;
  Req.Source = Old->Source;
  Req.ReceiverMap = Old->ReceiverMap; // Already normalized at first compile.
  Req.IsBlockUnit = Old->IsBlockUnit;
  Req.Name = Old->Name;
  Req.Tier = Tiering.Top;
  Req.Isolate = &W;
  if (Bridge) {
    Stopwatch Wall;
    std::unique_ptr<CompiledFunction> Fn = Bridge->tryAcquireReady(Req);
    if (Fn) {
      CompiledFunction *New = adoptShared(std::move(Fn), Req.Tier,
                                          CompileEvent::Kind::Promote,
                                          Wall.elapsedSeconds());
      swapIn(Old, New);
      return New;
    }
  }
  if (!Queue->enqueue(Old, Req)) {
    // Saturated: take the stall now rather than letting hot code run
    // baseline indefinitely behind a full queue.
    ++Tiers.BackgroundSyncFallbacks;
    return promote(Old);
  }
  Old->PromotionPending = true;
  ++Tiers.BackgroundEnqueued;
  return Old;
}

CompiledFunction *CodeManager::noteInvocation(CompiledFunction *Fn) {
  if (!Tiering.Enabled || Fn->CodeTier != CompiledFunction::Tier::Baseline ||
      Fn->Invalidated)
    return Fn;
  if (Fn->ReplacedBy)
    return Fn->ReplacedBy;
  if (++Fn->HotCount < static_cast<uint32_t>(Tiering.Threshold))
    return Fn;
  return triggerPromotion(Fn);
}

void CodeManager::noteBackEdge(CompiledFunction *Fn) {
  if (!Tiering.Enabled || Fn->CodeTier != CompiledFunction::Tier::Baseline ||
      Fn->Invalidated || Fn->ReplacedBy)
    return;
  if (++Fn->HotCount >= static_cast<uint32_t>(Tiering.Threshold))
    triggerPromotion(Fn);
}

void CodeManager::installCompleted(CompiledFunction *Old,
                                   std::unique_ptr<CompiledFunction> NewOwned,
                                   CompileTier T, double Seconds) {
  // The accounting compileInternal() does for synchronous compiles, with
  // the worker's wall-clock time standing in for compiler CPU time (the
  // process CPU clock cannot attribute time to one thread), and none of it
  // charged to the mutator's stall.
  CompiledFunction *New = NewOwned.get();
  New->CodeTier = T;
  New->Stats.Seconds = Seconds;
  CompileSeconds += Seconds;
  if (T == CompileTier::Bbv) {
    ++Tiers.BbvCompiles;
    Tiers.BbvCompileSeconds += Seconds;
  } else {
    ++Tiers.OptimizedCompiles;
    Tiers.OptimizedCompileSeconds += Seconds;
  }
  Tiers.BackgroundCompileSeconds += Seconds;
  ++Tiers.BackgroundInstalled;
  Functions.push_back(std::move(NewOwned));

  CompileEvent E;
  E.EventKind = CompileEvent::Kind::Promote;
  E.Name = New->Name;
  E.Tier = T;
  E.HotCount = Old->HotCount;
  E.Seconds = Seconds;
  E.ParseSeconds = New->Stats.ParseSeconds;
  E.AnalyzeSeconds = New->Stats.AnalyzeSeconds;
  E.SplitSeconds = New->Stats.SplitSeconds;
  E.LowerSeconds = New->Stats.LowerSeconds;
  E.EmitSeconds = New->Stats.EmitSeconds;
  Events.append(E);

  // Background-compiled results were produced outside any single-flight
  // claim; offer them to the shared tier so other isolates' hot functions
  // can skip their own optimizing compile. Never clobbers an existing
  // entry or an in-flight claim.
  if (Bridge) {
    CompileRequest Pub;
    Pub.Source = New->Source;
    Pub.ReceiverMap = New->ReceiverMap;
    Pub.IsBlockUnit = New->IsBlockUnit;
    Pub.Name = New->Name;
    Pub.Tier = T;
    Pub.Isolate = &W;
    if (Bridge->publishIfAbsent(Pub, *New))
      ++Tiers.SharedPublishes;
  }

  // From here on this is exactly the tail of promote(): the atomic (with
  // respect to the interpreter — we are at a safepoint) cache swap plus
  // the PIC re-point sweep.
  swapIn(Old, New);
}

void CodeManager::maybeInstall() {
  if (!Queue || !Queue->hasDone())
    return;
  for (std::unique_ptr<CompileQueue::Job> &J : Queue->takeDone()) {
    CompiledFunction *Old = J->Old;
    // Clearing the dedup flag first makes every discard self-healing: the
    // function is still hot, so its next trigger simply re-enqueues.
    Old->PromotionPending = false;
    // Discard stale or moot results. Cancelled covers shape mutations the
    // compile (or its finished result) depended on; Invalidated covers the
    // baseline function itself having been voided — its cache entry is
    // gone, so there is nothing to swap; ReplacedBy covers a synchronous
    // promotion that won the race (saturation fallback).
    if (!J->Result || J->Access.cancelled() || Old->Invalidated ||
        Old->ReplacedBy) {
      ++Tiers.BackgroundCancelled;
      continue;
    }
    installCompleted(Old, std::move(J->Result), J->Req.Tier, J->Seconds);
  }
}

void CodeManager::invalidateDependents(Map *Mutated) {
  std::vector<Key> Doomed;
  for (const auto &[K, Fn] : Cache)
    for (Map *M : Fn->DependsOnMaps)
      if (M == Mutated) {
        Doomed.push_back(K);
        break;
      }
  for (const Key &K : Doomed) {
    CompiledFunction *Fn = Cache[K];
    Fn->Invalidated = true;
    Fn->HotCount = 0;
    // Drop the dependency set: invalidated code never consults it again,
    // and clearing keeps dead-map bookkeeping out of long-lived functions.
    Fn->DependsOnMaps.clear();
    Fn->DependsOnMaps.shrink_to_fit();
    // Baseline ancestors must not forward into voided code.
    for (const auto &F : Functions)
      if (F->ReplacedBy == Fn)
        F->ReplacedBy = nullptr;
    Cache.erase(K);
    ++Tiers.Invalidations;
    CompileEvent E;
    E.EventKind = CompileEvent::Kind::Invalidate;
    E.Name = Fn->Name;
    E.Tier = Fn->CodeTier;
    Events.append(E);
  }
  if (!Doomed.empty())
    memoFlush();
}

void CodeManager::onSlotTagConflict(Map *M, int FieldIndex) {
  // Cell flips, not invalidation: the guarded versions stay installed and
  // sound — every BbvGuard covering the demoted (map, field) tag starts
  // taking its slow path, which re-runs the original type test. Functions
  // with no dependent cells are untouched, so a conflict on one shape never
  // perturbs code specialized to another (tested by the invalidation-
  // precision suite).
  uint64_t Flipped = 0;
  for (const auto &F : Functions) {
    if (F->BbvCellDeps.empty())
      continue;
    for (const BbvCellDep &D : F->BbvCellDeps)
      if (D.DepMap == M && D.FieldIndex == FieldIndex &&
          F->BbvCells[static_cast<size_t>(D.Cell)] == 0) {
        F->BbvCells[static_cast<size_t>(D.Cell)] = 1;
        ++Flipped;
      }
  }
  ++Tiers.BbvTagConflicts;
  Tiers.BbvCellsInvalidated += Flipped;
}

size_t CodeManager::totalCodeBytes() const {
  size_t N = 0;
  for (const auto &F : Functions)
    N += F->sizeInBytes();
  return N;
}

size_t CodeManager::liveCodeBytes() const {
  size_t N = 0;
  for (const auto &[K, Fn] : Cache)
    N += Fn->sizeInBytes();
  return N;
}

size_t CodeManager::invalidatedFunctionCount() const {
  size_t N = 0;
  for (const auto &F : Functions)
    N += F->Invalidated ? 1 : 0;
  return N;
}

size_t CodeManager::invalidatedCodeBytes() const {
  size_t N = 0;
  for (const auto &F : Functions)
    if (F->Invalidated)
      N += F->sizeInBytes();
  return N;
}

TierStats CodeManager::tierStats() const {
  TierStats S = Tiers;
  for (const auto &F : Functions) {
    size_t Bytes = F->sizeInBytes();
    if (F->Invalidated) {
      ++S.InvalidatedFunctions;
      S.InvalidatedCodeBytes += Bytes;
    } else if (Cache.count(Key{F->Source, F->ReceiverMap}) &&
               Cache.at(Key{F->Source, F->ReceiverMap}) == F.get()) {
      ++S.LiveFunctions;
      S.LiveCodeBytes += Bytes;
    } else {
      ++S.RetiredFunctions;
      S.RetiredCodeBytes += Bytes;
    }
  }
  return S;
}

void CodeManager::forEach(
    const std::function<void(const CompiledFunction &)> &F) const {
  for (const auto &Fn : Functions)
    F(*Fn);
}

void CodeManager::traceRoots(GcVisitor &V) {
  for (const auto &F : Functions) {
    for (Value &L : F->Literals)
      V.visit(L);
    // Every occupied PIC entry can hold an Object* (data-slot holder) and a
    // Value (ConstGet payload); all must survive collection — updated in
    // place when a scavenge moves them — for the cached dispatch to remain
    // valid. Quickened SendConst/SendGetF/SendSetF sites read these same
    // entries (their operands are cache-table indices, never raw heap
    // pointers), so updating the PIC is what lets quickened code survive
    // object motion. Cached Map* and CompiledFunction* are not heap-managed
    // (maps are immortal, code is owned by this manager).
    for (InlineCache &C : F->Caches) {
      for (int I = 0; I < C.Size; ++I) {
        PicEntry &E = C.Entries[I];
        V.visit(E.ConstValue);
        V.visitObject(E.SlotHolder);
      }
    }
  }
}

void CodeManager::flushInlineCaches() {
  for (const auto &F : Functions)
    for (InlineCache &C : F->Caches)
      C.flush();
  ++CacheFlushes;
  // Quickened opcodes are specialized on PIC entry 0, which no longer
  // exists; rewrite them back to the generic Send eagerly. (The runtime
  // guard would also catch each site on its next execution — this keeps
  // flushed code from carrying stale specializations at all.)
  dequickenAll();
}

void CodeManager::dequickenAll() {
  for (const auto &F : Functions) {
    for (size_t I = 0; I < F->Code.size();) {
      Op O = static_cast<Op>(F->Code[I]);
      if (isQuickenedSend(O)) {
        F->Code[I] = static_cast<int32_t>(Op::Send);
        ++DequickenedSites;
      }
      I += static_cast<size_t>(1 + opArity(O));
    }
  }
}

//===----------------------------------------------------------------------===//
// DispatchStats
//===----------------------------------------------------------------------===//

double DispatchStats::picHitRate() const { return safeRatio(PicHits, Sends); }

double DispatchStats::combinedHitRate() const {
  return safeRatio(PicHits + GlcHits, Sends);
}

double DispatchStats::glcOccupancy() const {
  return safeRatio(GlcOccupied, GlcCapacity);
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

Interpreter::Interpreter(World &W, CodeManager &CM, DispatchOptions Opts)
    : W(W), CM(CM), Opts(Opts) {
  RegStack.reserve(1u << 16);
  W.heap().addRootProvider(this);
}

Interpreter::~Interpreter() { W.heap().removeRootProvider(this); }

void Interpreter::traceRoots(GcVisitor &V) {
  size_t Top = 0;
  if (!Frames.empty())
    Top = static_cast<size_t>(Frames.back().Base + Frames.back().Fn->NumRegs);
  for (size_t I = 0; I < Top; ++I)
    V.visit(RegStack[I]);
  for (Value &R : NativeRoots)
    V.visit(R);
  // Arena envs/blocks are not in any GC space, but their slots can point at
  // movable heap objects: trace (and fix up) those slots here. Released
  // arena objects are already off the list, so dead arenas cost nothing.
  W.heap().traceArenaList(Arena.head(), V);
}

void Interpreter::scrubDeadRegisters() {
  size_t Top = 0;
  if (!Frames.empty())
    Top = static_cast<size_t>(Frames.back().Base + Frames.back().Fn->NumRegs);
  for (size_t I = Top; I < RegDirtyHigh; ++I)
    RegStack[I] = Value();
  RegDirtyHigh = Top;
}

void Interpreter::unwindFrames(size_t Barrier) {
  if (Frames.size() > Barrier) {
    bool Released = Arena.head() != Frames[Barrier].ArenaMark.Head;
    if (Released)
      ++Counters.ArenaReleases;
    Arena.release(Frames[Barrier].ArenaMark);
    Frames.resize(Barrier);
    if (Released)
      scrubDeadRegisters();
  }
}

void Interpreter::safepoint() {
  // Install finished background compiles first: the swap must happen at a
  // point where no send is mid-dispatch, which is exactly what a safepoint
  // guarantees, and installing before a potential collection puts the new
  // code under CodeManager root tracing for that collection.
  CM.maybeInstall();
  // shouldCollect() also answers true for the whole duration of an
  // incremental old-space cycle, so safepoints double as the marker's
  // polling points: each call below may run one budget-bounded mark or
  // sweep slice (heap-internally paced), and the termination handshake's
  // root re-scan walks this interpreter's frames and arena lists through
  // the same traceRoots path a stop-the-world collection uses.
  if (!W.heap().shouldCollect())
    return;
  W.heap().collectAtSafepoint();
  // Scrub the dead region of the register stack: values there may point to
  // objects the sweep just freed, and must never be traced or reused.
  scrubDeadRegisters();
}

bool Interpreter::pushActivation(CompiledFunction *Fn, Value Self,
                                 const Value *Args, int Argc, int RetDst,
                                 Object *Env, uint64_t HomeId, bool IsBlock) {
  // Tiering: every activation entry bumps the hotness counter; crossing the
  // threshold recompiles under the full policy and this call already runs
  // the optimized code (callers may hold a stale pointer briefly — PIC
  // entries are re-pointed by the promotion itself).
  if (CM.tieringEnabled())
    Fn = CM.noteInvocation(Fn);
  assert(Argc == Fn->NumArgs && "activation arity mismatch");
  int NewBase = Frames.empty()
                    ? 0
                    : Frames.back().Base + Frames.back().Fn->NumRegs;
  size_t Need = static_cast<size_t>(NewBase + Fn->NumRegs);
  // Args may point into RegStack, which resize invalidates: copy first.
  Value ArgBuf[8];
  std::vector<Value> ArgOverflow;
  if (Argc > 8) {
    ArgOverflow.assign(Args, Args + Argc);
    Args = ArgOverflow.data();
  } else if (Argc > 0) {
    for (int I = 0; I < Argc; ++I)
      ArgBuf[I] = Args[I];
    Args = ArgBuf;
  }
  if (RegStack.size() < Need)
    RegStack.resize(Need); // New elements value-initialize to empty.
  // Stale values above the live top are not traced (traceRoots stops at the
  // top frame's extent) and are scrubbed after every collection and after
  // every arena release, so the window needs no per-activation clearing —
  // that cost would otherwise scale with the optimizer's inlining depth.
  RegDirtyHigh = std::max(RegDirtyHigh, Need);

  RegStack[static_cast<size_t>(NewBase)] = Self;
  for (int I = 0; I < Argc; ++I)
    RegStack[static_cast<size_t>(NewBase + 1 + I)] = Args[I];
  if (Fn->IncomingEnvReg >= 0 && Env)
    RegStack[static_cast<size_t>(NewBase + Fn->IncomingEnvReg)] =
        Value::fromObject(Env);

  Frame F;
  F.Fn = Fn;
  F.IP = 0;
  F.Base = NewBase;
  F.RetDst = RetDst;
  F.FrameId = NextFrameId++;
  F.HomeFrameId = IsBlock ? HomeId : F.FrameId;
  F.ArenaMark = Arena.mark();
  Frames.push_back(F);
  return true;
}

Interpreter::RunResult Interpreter::fail(const std::string &Msg) {
  ErrMsg = Msg;
  RunResult R;
  R.K = RunResult::Kind::Error;
  return R;
}

Interpreter::DispatchKind
Interpreter::applyPicEntry(PicEntry &E, Value Recv, const Value *Args,
                           int Argc, int RetDst, Value &Immediate) {
  ++E.HitCount;
  switch (E.EntryKind) {
  case PicEntry::Kind::Method:
    pushActivation(E.Target, Recv, Args, Argc, RetDst, nullptr, 0, false);
    return DispatchKind::Pushed;
  case PicEntry::Kind::DataGet: {
    Object *Holder = E.SlotHolder ? E.SlotHolder : Recv.asObject();
    Immediate = Holder->field(E.FieldIndex);
    return DispatchKind::Immediate;
  }
  case PicEntry::Kind::DataSet: {
    Object *Holder = E.SlotHolder ? E.SlotHolder : Recv.asObject();
    Holder->setField(E.FieldIndex, Args[0]);
    Immediate = Args[0];
    return DispatchKind::Immediate;
  }
  case PicEntry::Kind::ConstGet:
    Immediate = E.ConstValue;
    return DispatchKind::Immediate;
  case PicEntry::Kind::Empty:
    break;
  }
  ErrMsg = "empty inline-cache entry applied";
  return DispatchKind::Error;
}

void Interpreter::installPicEntry(InlineCache &C, const PicEntry &E) {
  if (C.SiteState == InlineCache::State::Megamorphic)
    return; // Mega sites stop caching; the global lookup cache serves them.
  int Arity = Opts.clampedArity();
  if (C.Size < Arity) {
    C.Entries[C.Size++] = E;
    ++Counters.PicFills;
    if (C.Size == 1) {
      C.SiteState = InlineCache::State::Monomorphic;
    } else {
      if (C.SiteState == InlineCache::State::Monomorphic)
        ++Counters.MonoToPoly;
      C.SiteState = InlineCache::State::Polymorphic;
    }
    return;
  }
  if (!Opts.Polymorphic) {
    // Pre-PIC monomorphic behaviour: evict the single entry and stay
    // monomorphic; such sites never become megamorphic.
    C.Entries[0] = E;
    ++C.Evictions;
    ++Counters.PicEvictions;
    ++Counters.PicFills;
    return;
  }
  // Arity limit reached with yet another receiver map: give the site up as
  // megamorphic. Existing entries are kept (their hit counters document the
  // site's history and they stay GC-traced) but are no longer probed.
  C.SiteState = InlineCache::State::Megamorphic;
  ++Counters.ToMegamorphic;
}

Interpreter::DispatchKind
Interpreter::dispatchSend(Value Recv, const std::string *Sel,
                          const Value *Args, int Argc, int RetDst,
                          InlineCache *Cache, Value &Immediate) {
  ++Counters.Sends;
  Map *M = W.mapOf(Recv);

  // Polymorphic-inline-cache fast path: probe the site's entries.
  const bool UseSiteCache = Cache && Opts.InlineCaches;
  if (UseSiteCache) {
    switch (Cache->SiteState) {
    case InlineCache::State::Empty:
      ++Counters.SendsUncached;
      break;
    case InlineCache::State::Monomorphic:
      ++Counters.SendsMono;
      break;
    case InlineCache::State::Polymorphic:
      ++Counters.SendsPoly;
      break;
    case InlineCache::State::Megamorphic:
      ++Counters.SendsMega;
      break;
    }
    if (Cache->SiteState != InlineCache::State::Megamorphic) {
      if (PicEntry *E = Cache->findEntry(M)) {
        ++Counters.IcHits;
        ++Cache->HitCount;
        return applyPicEntry(*E, Recv, Args, Argc, RetDst, Immediate);
      }
    }
    ++Counters.IcMisses;
    ++Cache->MissCount;
  } else {
    ++Counters.SendsUncached;
  }

  // Miss path: the hashed global lookup cache serves megamorphic sites and
  // cold PIC misses before we pay for the full parent walk.
  LookupResult R;
  bool Resolved = false;
  GlobalLookupCache *Glc =
      Opts.UseGlobalCache && W.lookupCache().enabled() ? &W.lookupCache()
                                                       : nullptr;
  if (Glc) {
    if (Glc->find(M, Sel, R)) {
      ++Counters.GlcHits;
      Resolved = true;
    } else {
      ++Counters.GlcMisses;
    }
  }
  if (!Resolved) {
    ++Counters.FullLookups;
    R = lookupSelector(W, M, Sel);
    if (Glc)
      Glc->insert(M, Sel, R);
  }

  switch (R.ResultKind) {
  case LookupResult::Kind::NotFound:
    ErrMsg = "message not understood: '" + *Sel + "' sent to " +
             Recv.describe();
    return DispatchKind::Error;
  case LookupResult::Kind::Method: {
    auto *MO = static_cast<MethodObj *>(R.Slot->Constant.asObject());
    int Need = selectorArity(*Sel);
    if (Need != Argc || MO->body()->NumArgs != Argc) {
      ErrMsg = "method '" + *Sel + "' arity mismatch";
      return DispatchKind::Error;
    }
    CompileRequest Req;
    Req.Source = MO->body();
    Req.ReceiverMap = M;
    Req.IsBlockUnit = false;
    Req.Name = MO->selector();
    CompiledFunction *Fn = CM.request(Req).Fn;
    if (UseSiteCache) {
      PicEntry E;
      E.CachedMap = M;
      E.EntryKind = PicEntry::Kind::Method;
      E.Target = Fn;
      installPicEntry(*Cache, E);
    }
    pushActivation(Fn, Recv, Args, Argc, RetDst, nullptr, 0, false);
    return DispatchKind::Pushed;
  }
  case LookupResult::Kind::Data: {
    if (Argc != 0) {
      ErrMsg = "data slot '" + *Sel + "' read takes no arguments";
      return DispatchKind::Error;
    }
    Object *Holder = R.Holder ? R.Holder : Recv.asObject();
    Immediate = Holder->field(R.Slot->FieldIndex);
    if (UseSiteCache) {
      PicEntry E;
      E.CachedMap = M;
      E.EntryKind = PicEntry::Kind::DataGet;
      E.SlotHolder = R.Holder;
      E.FieldIndex = R.Slot->FieldIndex;
      installPicEntry(*Cache, E);
    }
    return DispatchKind::Immediate;
  }
  case LookupResult::Kind::Assign: {
    if (Argc != 1) {
      ErrMsg = "assignment '" + *Sel + "' takes one argument";
      return DispatchKind::Error;
    }
    Object *Holder = R.Holder ? R.Holder : Recv.asObject();
    Holder->setField(R.Slot->FieldIndex, Args[0]);
    Immediate = Args[0];
    if (UseSiteCache) {
      PicEntry E;
      E.CachedMap = M;
      E.EntryKind = PicEntry::Kind::DataSet;
      E.SlotHolder = R.Holder;
      E.FieldIndex = R.Slot->FieldIndex;
      installPicEntry(*Cache, E);
    }
    return DispatchKind::Immediate;
  }
  case LookupResult::Kind::Constant:
    if (Argc != 0) {
      ErrMsg = "constant slot '" + *Sel + "' takes no arguments";
      return DispatchKind::Error;
    }
    Immediate = R.Slot->Constant;
    if (UseSiteCache) {
      PicEntry E;
      E.CachedMap = M;
      E.EntryKind = PicEntry::Kind::ConstGet;
      E.ConstValue = R.Slot->Constant;
      installPicEntry(*Cache, E);
    }
    return DispatchKind::Immediate;
  }
  ErrMsg = "lookup failed unexpectedly";
  return DispatchKind::Error;
}

Interpreter::RunResult Interpreter::callValueOn(Value Callee,
                                                const Value *Args, int Argc) {
  size_t Barrier = Frames.size();
  if (Callee.isObject() && Callee.asObject()->kind() == ObjectKind::Block) {
    auto *Blk = static_cast<BlockObj *>(Callee.asObject());
    if (Blk->body()->Body.NumArgs != Argc)
      return fail("block invoked with the wrong number of arguments");
    CompileRequest Req;
    Req.Source = &Blk->body()->Body;
    Req.ReceiverMap = W.mapOf(Blk->homeSelf());
    Req.IsBlockUnit = true;
    Req.Name = Blk->body()->Body.SelectorName;
    CompiledFunction *Fn = CM.request(Req).Fn;
    pushActivation(Fn, Blk->homeSelf(), Args, Argc, -1, Blk->env(),
                   Blk->homeFrameId(), true);
    return run(Barrier);
  }
  // Not a block: fall back to a generic `value...` send.
  const std::string *Sel = W.selectors().valueSelector(Argc);
  if (!Sel)
    return fail("cannot invoke a non-block with that many arguments");
  Value Imm;
  DispatchKind K = dispatchSend(Callee, Sel, Args, Argc, -1, nullptr, Imm);
  switch (K) {
  case DispatchKind::Immediate: {
    RunResult R;
    R.Val = Imm;
    return R;
  }
  case DispatchKind::Pushed:
    return run(Barrier);
  case DispatchKind::Error:
    return fail(ErrMsg);
  }
  return fail("unreachable dispatch state");
}

Interpreter::RunResult Interpreter::runWhileLoop(Value CondBlock,
                                                 Value BodyBlock, bool Until) {
  // Keep the two callables rooted across iterations.
  size_t Mark = NativeRoots.size();
  NativeRoots.push_back(CondBlock);
  NativeRoots.push_back(BodyBlock);
  // Baseline code never emits backward branches (loops run through this
  // native helper), so the enclosing function's back-edge counter is bumped
  // here, once per iteration. Promotion mid-loop takes effect for the block
  // bodies immediately: callValueOn re-probes the code cache every call.
  CompiledFunction *HomeFn = Frames.empty() ? nullptr : Frames.back().Fn;
  RunResult Out;
  for (;;) {
    safepoint();
    if (HomeFn && CM.tieringEnabled())
      CM.noteBackEdge(HomeFn);
    // Re-read the callables from NativeRoots each iteration (by index, not
    // reference — the vector can reallocate): a scavenge inside safepoint()
    // or either block call relocates the closures, and the locals this
    // function was called with would then be stale.
    RunResult C = callValueOn(NativeRoots[Mark], nullptr, 0);
    if (C.K != RunResult::Kind::Done) {
      Out = C;
      break;
    }
    bool Truthy;
    if (C.Val == W.trueValue())
      Truthy = true;
    else if (C.Val == W.falseValue())
      Truthy = false;
    else {
      Out = fail("loop condition must evaluate to a boolean");
      break;
    }
    if (Truthy == Until) { // whileTrue: stop on false; whileFalse: on true.
      Out.Val = W.nilValue();
      break;
    }
    RunResult B = callValueOn(NativeRoots[Mark + 1], nullptr, 0);
    if (B.K != RunResult::Kind::Done) {
      Out = B;
      break;
    }
  }
  NativeRoots.resize(Mark);
  return Out;
}

Interpreter::RunResult Interpreter::continueNLR(uint64_t HomeId, Value Val,
                                                size_t Barrier) {
  // The value may be an arena object of a frame this unwind is about to
  // release (e.g. a demoted function returning a block non-locally):
  // evacuate it to the heap before any frame's arena storage is freed.
  if (Val.isObject() && Heap::isArena(Val.asObject()))
    W.heap().arenaEscape(Val);
  while (Frames.size() > Barrier) {
    Frame Top = Frames.back();
    bool Released = Arena.head() != Top.ArenaMark.Head;
    if (Released)
      ++Counters.ArenaReleases;
    Arena.release(Top.ArenaMark);
    Frames.pop_back();
    if (Released)
      scrubDeadRegisters();
    if (Top.FrameId == HomeId) {
      // Returning *from* the home method to its caller.
      if (Top.RetDst >= 0)
        RegStack[static_cast<size_t>(Top.RetDst)] = Val;
      RunResult R;
      R.Val = Val;
      R.HomeId = 0;
      R.K = Frames.size() == Barrier ? RunResult::Kind::Done
                                     : RunResult::Kind::NLR;
      // Kind::NLR with HomeId==0 signals "resumed inside this run": the
      // caller loop in run() checks for it.
      return R;
    }
  }
  RunResult R;
  R.K = RunResult::Kind::NLR;
  R.Val = Val;
  R.HomeId = HomeId;
  return R;
}

/// Shared comparison evaluator for CmpValue/BrCmp and their fused forms.
static inline bool evalCond(Cond C, Value Av, Value Bv) {
  switch (C) {
  case Cond::IdEq:
    return Av.identicalTo(Bv);
  case Cond::IdNe:
    return !Av.identicalTo(Bv);
  case Cond::Lt:
    return Av.asInt() < Bv.asInt();
  case Cond::Le:
    return Av.asInt() <= Bv.asInt();
  case Cond::Gt:
    return Av.asInt() > Bv.asInt();
  case Cond::Ge:
    return Av.asInt() >= Bv.asInt();
  case Cond::Eq:
    return Av.asInt() == Bv.asInt();
  default:
    return Av.asInt() != Bv.asInt();
  }
}

void Interpreter::maybeQuicken(int32_t *Cd, int IP, const InlineCache &C,
                               const std::string *Sel, int Argc) {
  if (!Opts.Quickening || C.SiteState != InlineCache::State::Monomorphic ||
      C.Size != 1)
    return;
  // Leave the natively-intercepted selectors generic: value-family sends
  // and whileTrue:/whileFalse: take the block fast path *before* dispatch,
  // and a quickened form would route a block receiver through its cached
  // entry's guard instead. (The guard would in fact reject it -- a block
  // map is never cached for these selectors -- but not quickening keeps the
  // intercept structurally unreachable from specialized code.)
  const CommonSelectors &S = W.selectors();
  if (Sel == S.valueSelector(Argc) || Sel == S.WhileTrue ||
      Sel == S.WhileFalse)
    return;
  Op Q = Op::Send;
  switch (C.Entries[0].EntryKind) {
  case PicEntry::Kind::Method:
    Q = Op::SendMono;
    break;
  case PicEntry::Kind::DataGet:
    Q = Op::SendGetF;
    break;
  case PicEntry::Kind::DataSet:
    Q = Op::SendSetF;
    break;
  case PicEntry::Kind::ConstGet:
    Q = Op::SendConst;
    break;
  case PicEntry::Kind::Empty:
    return;
  }
  assert(static_cast<Op>(Cd[IP]) == Op::Send && "quickening a non-Send slot");
  Cd[IP] = static_cast<int32_t>(Q);
  ++Counters.Quickenings;
}

// Expand the shared loop body into the portable switch engine and (when the
// build supports computed goto) the direct-threaded engine.
#define MSELF_THREADED 0
#define MSELF_LOOP_FN runSwitch
#include "interp/interp_loop.inc"
#undef MSELF_THREADED
#undef MSELF_LOOP_FN

#if defined(MINISELF_COMPUTED_GOTO)
#define MSELF_THREADED 1
#define MSELF_LOOP_FN runThreaded
#include "interp/interp_loop.inc"
#undef MSELF_THREADED
#undef MSELF_LOOP_FN
#endif

Interpreter::RunResult Interpreter::run(size_t Barrier) {
#if defined(MINISELF_COMPUTED_GOTO)
  if (Opts.Threaded)
    return runThreaded(Barrier);
#endif
  return runSwitch(Barrier);
}

Interpreter::Outcome Interpreter::callFunction(CompiledFunction *Fn,
                                               Value Self,
                                               const std::vector<Value> &Args) {
  Outcome Out;
  size_t Barrier = Frames.size();
  if (Fn->NumArgs != static_cast<int>(Args.size())) {
    Out.Ok = false;
    Out.Message = "entry function arity mismatch";
    return Out;
  }
  pushActivation(Fn, Self, Args.data(), static_cast<int>(Args.size()), -1,
                 nullptr, 0, false);
  RunResult R = run(Barrier);
  switch (R.K) {
  case RunResult::Kind::Done:
    Out.Result = R.Val;
    return Out;
  case RunResult::Kind::NLR:
    Out.Ok = false;
    Out.Message = "non-local return from an exited method";
    return Out;
  case RunResult::Kind::Error:
    Out.Ok = false;
    Out.Message = ErrMsg;
    return Out;
  }
  Out.Ok = false;
  Out.Message = "unknown run result";
  return Out;
}

Interpreter::Outcome Interpreter::evalTopLevel(const ast::Code *Body) {
  CompileRequest Req;
  Req.Source = Body;
  Req.ReceiverMap = W.lobby()->map();
  Req.IsBlockUnit = false;
  Req.Name = Body->SelectorName;
  CompiledFunction *Fn = CM.request(Req).Fn;
  return callFunction(Fn, W.lobbyValue(), {});
}
