//===-- interp/compile_service.h - Shared compile worker pool ---*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-isolate generalization of the background CompileQueue's
/// dedicated worker: one pool of compile threads drains the tier-up queues
/// of every attached isolate. Each isolate keeps its own CompileQueue — its
/// bounded pending deque, GC gate, cancellation rules, and safepoint
/// install protocol are untouched — but in service mode the queue spawns no
/// thread; workers here pull jobs round-robin across attached queues
/// through CompileQueue::serviceTake() and run them with the queue's own
/// gate/publish sequence (CompileQueue::serviceRun). A server with dozens
/// of isolates thus pays for a fixed number of compile threads instead of
/// one per isolate.
///
/// Per-queue semantics preserved by construction:
///  - serviceTake() hands out at most one job per queue at a time, so
///    "the in-flight job" in CompileQueue::onShapeMutation() stays
///    meaningful per isolate.
///  - Saturation is still per-queue (the bounded pending deque): an isolate
///    whose queue is full falls back to synchronous inline promotion
///    exactly as in standalone mode, regardless of service load.
///  - Shutdown: a queue's destructor detaches, which blocks until no
///    worker still runs one of its jobs — after detach() returns, the
///    queue's memory is unreachable from the pool. Queues may detach with
///    jobs still pending (they are dropped, standalone rules). The service
///    must outlive every attached queue.
///
/// Lock order: service mutex -> queue mutex (workers scanning/taking), and
/// enqueue notifies the service only after releasing the queue mutex.
/// Nothing holds the service mutex while compiling.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_INTERP_COMPILE_SERVICE_H
#define MINISELF_INTERP_COMPILE_SERVICE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace mself {

class CompileQueue;

/// Fixed pool of compile workers shared by every attached CompileQueue.
class CompileService {
public:
  /// Spawns \p Workers threads (clamped to >= 1).
  explicit CompileService(int Workers = 1);
  /// Stops and joins the pool. Every attached queue must have detached
  /// (been destroyed) first.
  ~CompileService();

  /// Registers \p Q for draining. Called from CompileQueue's constructor.
  void attach(CompileQueue *Q);
  /// Unregisters \p Q and blocks until no worker still runs one of its
  /// jobs. Called from CompileQueue's destructor.
  void detach(CompileQueue *Q);
  /// Wakes the pool after an enqueue. Takes the service mutex briefly so a
  /// wake between a worker's empty scan and its wait cannot be lost.
  void notifyWork();

  int workerCount() const { return static_cast<int>(Threads.size()); }
  size_t attachedCount() const;
  /// Total jobs run across all queues (ServerTelemetry).
  uint64_t jobsExecuted() const {
    return Jobs.load(std::memory_order_relaxed);
  }

private:
  void run(size_t Idx);
  bool anyTakeable() const; ///< Scan under the service mutex.

  mutable std::mutex M;
  std::condition_variable WorkCV;   ///< Workers wait for jobs / stop.
  std::condition_variable DetachCV; ///< detach() waits for busy workers.
  std::vector<CompileQueue *> Queues;
  std::vector<CompileQueue *> Busy; ///< Per worker: queue being served.
  size_t RR = 0;                    ///< Round-robin fairness cursor.
  bool Stopping = false;
  std::atomic<uint64_t> Jobs{0};
  std::vector<std::thread> Threads;
};

} // namespace mself

#endif // MINISELF_INTERP_COMPILE_SERVICE_H
