//===-- interp/compile_queue.h - Background compilation queue ---*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Off-thread tier-up compilation. Hotness triggers enqueue a promotion job
/// instead of stalling the mutator inside the optimizer; a worker thread
/// runs the full analyze/split/lower/emit pipeline against a consistent
/// snapshot of lookup state (CompileAccess in background mode), and the
/// mutator installs the finished code at its next safepoint through the
/// same atomic cache-swap / PIC-re-pointing sequence the synchronous path
/// uses. The paper's compiler is unchanged — only *when and where* it runs
/// moves.
///
/// Concurrency protocol (all invariants enforced here, none in the
/// compiler):
///
/// - The **GC gate** (a mutex registered with the Heap) is held by the
///   worker for the whole compile, including publication of the result.
///   Safepoint collections try_lock it and defer when the worker is busy
///   (GcStats::GcDeferrals) — always safe, because allocation never
///   requires collection in this heap. In return, the worker may read
///   heap objects (map constant slots, method bodies, literal values) with
///   no per-object synchronization: nothing moves or dies mid-compile.
/// - The **shape lock** (World::shapeLock) orders the job's compile-time
///   lookup walks (shared side) against mutator slot definitions
///   (exclusive side). The job memoizes each (map, selector) walk, so it
///   observes one consistent shape per lookup for the compile's duration.
/// - **Cancellation**: the mutator's shape-mutation hook calls
///   onShapeMutation() under the exclusive shape lock. An in-flight job is
///   cancelled iff the mutated map is one its lookups already walked; a
///   finished-but-uninstalled job iff the map is in its result's
///   dependency set; jobs still pending compile later against the new
///   shape and need nothing. A cancelled result is discarded at install
///   time — stale code is never installed.
/// - **Queue handoff** is guarded by a plain mutex. Lock order is
///   consistent everywhere: gate -> shape lock (worker compile), gate ->
///   queue mutex (worker publish, GC trace), shape lock -> queue mutex
///   (mutator cancellation hook); nothing acquires the gate or shape lock
///   while holding the queue mutex.
///
/// Finished-but-uninstalled results are GC roots (this class is a
/// RootProvider): their literal Values — allocated old-space by the worker
/// or copied from map constants — must survive any collection between
/// publication and install.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_INTERP_COMPILE_QUEUE_H
#define MINISELF_INTERP_COMPILE_QUEUE_H

#include "interp/interp.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

namespace mself {

class CompileService;

/// Bounded queue of tier-up compilation jobs plus the worker that drains
/// it. Two drain modes share one protocol:
///
///  - **Standalone** (default): the queue spawns its own worker thread —
///    the single-VM configuration, exactly as before.
///  - **Service**: constructed with a CompileService, the queue spawns no
///    thread; the service's shared worker pool drains every attached
///    isolate's queue through serviceTake()/serviceRun(). At most one of a
///    queue's jobs is in flight at a time (serviceTake refuses while one
///    is), which keeps onShapeMutation's cancellation rule — "the in-flight
///    job" — meaningful per isolate.
class CompileQueue : public RootProvider {
public:
  /// One asynchronous promotion. Old is touched only by the mutator; the
  /// worker sees the request copy and the access mediator.
  struct Job {
    CompiledFunction *Old = nullptr; ///< Baseline function being promoted.
    CompileRequest Req;
    CompileAccess Access;
    std::unique_ptr<CompiledFunction> Result; ///< Null if cancelled early.
    double Seconds = 0; ///< Worker wall-clock compile time.

    Job(World &W, CompiledFunction *Old, const CompileRequest &R)
        : Old(Old), Req(R), Access(W, /*Background=*/true) {
      Req.Access = &Access;
    }
  };

  /// Registers the GC gate with \p H and this queue as a root provider,
  /// then starts a dedicated worker — or, when \p Svc is given, attaches
  /// to the shared service instead (no thread of its own; \p Svc must
  /// outlive this queue). \p Cap bounds the pending deque; enqueue() beyond
  /// it reports saturation (<= 0 rejects everything, forcing the
  /// synchronous fallback — used to exercise that path deterministically).
  CompileQueue(World &W, Heap &H, CompileFn Compiler, int Cap,
               CompileService *Svc = nullptr);
  /// Stops draining: the in-flight job finishes (its result is simply
  /// never installed), pending jobs are dropped. Standalone: joins the
  /// worker. Service: detaches, blocking until no service worker still
  /// runs one of this queue's jobs.
  ~CompileQueue() override;

  /// Queues a promotion of \p Old. \returns false when saturated; the
  /// caller then promotes synchronously. Mutator thread only.
  bool enqueue(CompiledFunction *Old, const CompileRequest &Req);

  /// True when finished jobs await install — one relaxed atomic load, so
  /// every safepoint can afford to poll it.
  bool hasDone() const { return DoneCount.load(std::memory_order_relaxed) != 0; }

  /// Hands every finished job to the caller (the CodeManager's install
  /// poll). Mutator thread only.
  std::vector<std::unique_ptr<Job>> takeDone();

  /// Shape-mutation fan-out; see the file comment for the exact rule.
  /// Called under the exclusive shape lock.
  void onShapeMutation(Map *Mutated);

  /// Blocks until no job is pending or in flight (finished jobs may await
  /// install). The test/bench settle primitive; pair with
  /// CodeManager::maybeInstall().
  void waitIdle();

  size_t pendingCount() const;
  int capacity() const { return Cap; }

  /// Test hook forwarded to each job's CompileAccess: fires on the worker
  /// after the job's first lookup walk completes (outside all locks),
  /// giving race tests a deterministic mid-compile point to mutate shapes
  /// against.
  void setFirstWalkHook(std::function<void()> Hook) {
    std::lock_guard<std::mutex> L(QueueMutex);
    FirstWalkHook = std::move(Hook);
  }

  void traceRoots(GcVisitor &V) override;

  //===--- Service-mode handoff (CompileService workers only) -----------===//

  /// Pops the next pending job and marks it in flight, or returns null when
  /// stopped, empty, or a job of this queue is already in flight. Called
  /// under the service mutex (lock order: service mutex -> queue mutex).
  std::unique_ptr<Job> serviceTake();
  /// Non-popping preview of serviceTake() for the workers' wait predicate.
  bool serviceTakeable() const;
  /// Runs a job obtained from serviceTake() on the calling (service
  /// worker) thread — same gate/publish sequence as the dedicated worker.
  void serviceRun(std::unique_ptr<Job> J) { runJob(std::move(J)); }

private:
  void workerLoop();
  /// Compile + publish, common to both drain modes. Holds the GC gate for
  /// the duration; clears InFlight and appends to Done under the queue
  /// mutex; notifies waitIdle().
  void runJob(std::unique_ptr<Job> J);

  World &W;
  Heap &H;
  CompileFn Compiler;
  int Cap;
  CompileService *Svc; ///< Null: standalone mode with a dedicated worker.

  mutable std::mutex QueueMutex;
  std::condition_variable WorkCV; ///< Worker waits for jobs / stop.
  std::condition_variable IdleCV; ///< waitIdle() waits for drain.
  std::deque<std::unique_ptr<Job>> Pending;
  Job *InFlight = nullptr; ///< Owned by the worker while compiling.
  std::vector<std::unique_ptr<Job>> Done;
  std::atomic<size_t> DoneCount{0};
  bool Stopping = false;
  std::function<void()> FirstWalkHook;

  /// The GC gate; registered with the heap for the queue's lifetime.
  std::mutex Gate;

  std::thread Worker;
};

} // namespace mself

#endif // MINISELF_INTERP_COMPILE_QUEUE_H
