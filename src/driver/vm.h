//===-- driver/vm.h - The virtual machine facade ----------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VirtualMachine bundles one complete mini-SELF system — heap, world,
/// code cache, interpreter — under one compiler Policy. This is the public
/// entry point: load source (definitions + expressions), evaluate
/// expressions, and read back compile/execution statistics. Each benchmark
/// configuration in the paper's tables is one VirtualMachine with a
/// different Policy.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_DRIVER_VM_H
#define MINISELF_DRIVER_VM_H

#include "compiler/policy.h"
#include "interp/interp.h"

#include <cstdio>
#include <memory>
#include <string>

namespace mself {

class VirtualMachine {
public:
  explicit VirtualMachine(Policy P = Policy::newSelf());

  /// Loads \p Source: slot definitions install on the lobby; expression
  /// statements evaluate immediately in order.
  /// \returns false and sets \p ErrOut on parse/load/runtime errors.
  bool load(const std::string &Source, std::string &ErrOut);

  /// Parses and evaluates \p Source as a top-level program, returning the
  /// value of the last expression statement.
  Interpreter::Outcome eval(const std::string &Source);

  /// Convenience: evaluates and expects a small-integer result.
  /// \returns false unless evaluation succeeded with an integer.
  bool evalInt(const std::string &Source, int64_t &Out, std::string &ErrOut);

  const Policy &policy() const { return Pol; }
  Heap &heap() { return TheHeap; }
  World &world() { return *TheWorld; }
  CodeManager &code() { return *Code; }
  Interpreter &interp() { return *Interp; }

  /// Aggregate dispatch-path observability: PIC hit/miss/transition
  /// counters, per-state send counts, send-site census, and global
  /// lookup-cache occupancy and traffic.
  DispatchStats dispatchStats() const;

  /// Tiered-execution observability: compile/promotion/invalidation
  /// counters, per-tier compile seconds, and the live/retired/invalidated
  /// code-cache census.
  TierStats tierStats() const;

  /// The code cache's bounded compilation event log (compile, promote,
  /// swap, invalidate — with per-phase compile timings).
  const CompilationEventLog &compilationEvents() const;

  /// Collector observability: scavenge/full-collection counts, pause
  /// timings, promotion and survival volumes, and write-barrier traffic.
  const GcStats &gcStats() const { return TheHeap.stats(); }

  /// Prints the dispatch, tiering, and collector statistics to \p Out — the
  /// VM's one-stop stats dump (examples/quickstart uses it).
  void printStats(FILE *Out) const;

private:
  Policy Pol;
  Heap TheHeap;
  std::unique_ptr<World> TheWorld;
  std::unique_ptr<CodeManager> Code;
  std::unique_ptr<Interpreter> Interp;
};

} // namespace mself

#endif // MINISELF_DRIVER_VM_H
