//===-- driver/vm.h - The virtual machine facade ----------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VirtualMachine bundles one complete mini-SELF system — heap, world,
/// code cache, interpreter — under one compiler Policy. This is the public
/// entry point: load source (definitions + expressions), evaluate
/// expressions, and read back compile/execution statistics. Each benchmark
/// configuration in the paper's tables is one VirtualMachine with a
/// different Policy.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_DRIVER_VM_H
#define MINISELF_DRIVER_VM_H

#include "compiler/policy.h"
#include "driver/telemetry.h"
#include "interp/interp.h"

#include <cstdio>
#include <memory>
#include <string>

namespace mself {

class SharedTier;
class CompileService;

class VirtualMachine {
public:
  /// A standalone VM owns everything. With \p Tier (a SharedRuntime's
  /// shared code tier) the VM becomes one *isolate*: it interns and parses
  /// through the tier, probes it for compiled-code artifacts before
  /// compiling, and publishes its own compiles for other isolates — while
  /// heap, world, dispatch caches, and interpreter stay fully private.
  /// With \p Service as well, background tier-up jobs drain on the shared
  /// compile pool instead of a per-VM worker thread. Both must outlive the
  /// VM; both default to null (the single-VM configuration, unchanged).
  explicit VirtualMachine(Policy P = Policy::newSelf(),
                          SharedTier *Tier = nullptr,
                          CompileService *Service = nullptr);
  /// Tears down in dependency order; with background compilation on, the
  /// compile queue shuts down first (worker joined or service drained,
  /// in-flight job allowed to finish, pending jobs dropped) so no thread
  /// outlives the world.
  ~VirtualMachine();

  /// Loads \p Source: slot definitions install on the lobby; expression
  /// statements evaluate immediately in order.
  /// \returns false and sets \p ErrOut on parse/load/runtime errors.
  bool load(const std::string &Source, std::string &ErrOut);

  /// Parses and evaluates \p Source as a top-level program, returning the
  /// value of the last expression statement.
  Interpreter::Outcome eval(const std::string &Source);

  /// Convenience: evaluates and expects a small-integer result.
  /// \returns false unless evaluation succeeded with an integer.
  bool evalInt(const std::string &Source, int64_t &Out, std::string &ErrOut);

  const Policy &policy() const { return Pol; }
  Heap &heap() { return TheHeap; }
  World &world() { return *TheWorld; }
  CodeManager &code() { return *Code; }
  Interpreter &interp() { return *Interp; }
  /// The background compile queue, or null in synchronous mode.
  CompileQueue *backgroundQueue() { return BgQueue.get(); }

  /// Blocks until the background compile queue is idle, then installs
  /// every finished job — the settle primitive tests and benchmarks call
  /// before asserting on exact post-tier-up state. No-op in synchronous
  /// mode, so assertions stay valid across both configurations.
  void settleBackgroundCompiles();

  /// The VM's one observability surface: a coherent snapshot of the
  /// dispatch path, tiering (including the background compile pipeline),
  /// the collector, the execution counters, and the compilation event log.
  /// Serialize with VmTelemetry::print()/formatStats()/toJson().
  VmTelemetry telemetry() const;

  /// The shared-tier doorway, or null for a standalone VM.
  SharedCodeBridge *sharedBridge() { return Bridge.get(); }

private:
  /// Assembles the dispatch section of the telemetry snapshot (dynamic
  /// counters + code-cache site census + global-lookup-cache numbers).
  DispatchStats buildDispatchStats() const;

  Policy Pol;
  Heap TheHeap;
  std::unique_ptr<World> TheWorld;
  /// Mutator-thread-only doorway to the SharedRuntime's code tier (null
  /// standalone). Before Code: the code cache probes it on every miss.
  std::unique_ptr<SharedCodeBridge> Bridge;
  std::unique_ptr<CodeManager> Code;
  std::unique_ptr<Interpreter> Interp;
  /// Declared last: destroyed first, joining the worker thread (or
  /// detaching from the compile service) before the world, heap, or code
  /// cache it reads go away.
  std::unique_ptr<CompileQueue> BgQueue;
};

} // namespace mself

#endif // MINISELF_DRIVER_VM_H
