//===-- driver/telemetry.h - Unified VM observability snapshot --*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// VmTelemetry is the one observability surface of the VirtualMachine: a
/// single coherent snapshot of the dispatch path, the tiering pipeline
/// (including the background compile queue), the collector, the dynamic
/// execution counters, and the compilation event log — everything the four
/// historical accessors (dispatchStats/tierStats/gcStats/compilationEvents)
/// used to hand out piecemeal.
///
/// The snapshot is plain data: taking one is cheap (counters copy, plus one
/// code-cache walk for the send-site census), and everything read afterwards
/// is immune to the VM mutating underneath — including the background
/// compile worker, which only ever touches job-local state until the
/// mutator installs results at a safepoint.
///
/// Two serializations share one fixed schema:
///   - formatStats(): line-oriented `section.key=value` text, emitted by
///     print() with a single fwrite so output can never interleave with
///     other threads' writes. The key set and order are stable across
///     configurations (a key whose subsystem is off reports 0), which makes
///     the output machine-diffable: two runs differ only in values.
///   - toJson(): the same keys as one nested JSON object.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_DRIVER_TELEMETRY_H
#define MINISELF_DRIVER_TELEMETRY_H

#include "interp/interp.h"
#include "runtime/shared_tier.h"
#include "vm/heap.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace mself {

/// One coherent snapshot of every VM statistic. Obtain via
/// VirtualMachine::telemetry().
struct VmTelemetry {
  /// Bumped whenever a key is added, removed, or renamed; emitted in the
  /// header line so consumers can detect schema drift.
  /// v2: tier section gained the shared-code-tier counters (shared_hits,
  /// shared_publishes, shared_rehydrate_failures, shared_local_fallbacks).
  /// v3: dispatch section gained interner_lookups (string-interner probes,
  /// the symbol-lookup volume a perfect-hash selector table would remove).
  /// v4: new escape section (escape-analysis classification roll-up plus
  /// the dynamic arena-allocation and evacuation counters).
  /// v5: gc section gained the incremental-marking counters (satb_marks,
  /// mark_increments, sweep_increments, mark_cycles) and the pause
  /// histograms — p50/p95/p99/max split by scavenge vs full/slice pauses —
  /// replacing the unbounded per-pause vector.
  /// v6: new bbv section (lazy basic-block versioning: template compiles,
  /// versions/stubs/guards materialized, dynamic stub and guard traffic,
  /// slot-tag conflict fan-out); tier section gained bbv_compiles and
  /// bbv_compile_seconds.
  static constexpr int kSchemaVersion = 6;

  std::string PolicyName;    ///< Policy::Name of the VM's configuration.
  bool Background = false;   ///< Background compile queue active.
  bool Generational = false; ///< Generational collector (else mark-sweep).

  ExecCounters Exec;     ///< Dynamic execution counters (work measures).
  DispatchStats Dispatch; ///< Send fast path + site census + global cache.
  TierStats Tier;        ///< Tiering counters, background pipeline, census.
  GcStats Gc;            ///< Collector counts, pauses, volumes, barriers.

  /// Escape analysis + per-activation arena allocation (schema v4). The
  /// static half is a roll-up of CompileStats over live compiled code (what
  /// the classifiers decided); the dynamic half counts what the arena
  /// actually did at run time, including the soundness-net traffic
  /// (demotions and evacuations).
  struct EscapeStats {
    uint64_t BlocksNonEscaping = 0;  ///< Closures proven run-and-discard.
    uint64_t BlocksArgEscaping = 0;  ///< Escape only into proven callees.
    uint64_t BlocksEscaping = 0;     ///< Heap-allocated closures.
    uint64_t EnvsArena = 0;          ///< Environments placed in the arena.
    uint64_t EnvsScalarReplaced = 0; ///< Captured scopes kept in registers.
    uint64_t ArenaEnvAllocs = 0;     ///< Dynamic arena env allocations.
    uint64_t ArenaBlockAllocs = 0;   ///< Dynamic arena block allocations.
    uint64_t ArenaBytes = 0;         ///< Total bytes bump-allocated.
    uint64_t ArenaReleases = 0;      ///< Frame exits that freed arena data.
    uint64_t ArenaDemotedAllocs = 0; ///< Arena sites forced back to heap.
    uint64_t ArenaEvacuations = 0;   ///< Objects copied out by the nets.
    uint64_t ArenaHighWaterBytes = 0; ///< Peak arena footprint.
  };
  EscapeStats Escape;

  /// Lazy basic-block versioning (schema v6). The static half rolls up
  /// CompileStats over live BBV functions — what the materializer emitted
  /// so far (versions are appended lazily, so these grow at run time, not
  /// at compile time); the dynamic half counts stub dispatches and guard
  /// outcomes. Zero throughout for policies without the tier.
  struct BbvStats {
    uint64_t Blocks = 0;          ///< Basic blocks across live templates.
    uint64_t Versions = 0;        ///< Specialized block versions emitted.
    uint64_t GenericVersions = 0; ///< Context-free fallback versions.
    uint64_t CapFallbacks = 0;    ///< Materializations routed to generic
                                  ///< by the per-block version cap.
    uint64_t TypeTestsElided = 0; ///< Tests the incoming context proved.
    uint64_t TagGuards = 0;       ///< Tests replaced by slot-tag cells.
    uint64_t StubsPatched = 0;    ///< Stubs rewritten into direct jumps.
    uint64_t StubRuns = 0;        ///< Dynamic BbvStub dispatches.
    uint64_t GuardFast = 0;       ///< Dynamic guard cell-read passes.
    uint64_t GuardSlow = 0;       ///< Dynamic guard slow-path entries.
    uint64_t TagConflicts = 0;    ///< Slot tags demoted to Poly.
    uint64_t CellsInvalidated = 0; ///< Guard cells flipped by demotions.
  };
  BbvStats Bbv;

  /// Retained tail of the bounded compilation event log, oldest first.
  std::vector<CompileEvent> Events;
  /// All-time number of events appended (>: the log evicted).
  uint64_t EventsRecorded = 0;

  /// The stable text serialization: one `section.key=value` pair per line,
  /// fixed key set and order, `%.6f` for seconds/rates.
  std::string formatStats() const;

  /// The same keys as a nested JSON object (sections as sub-objects).
  std::string toJson() const;

  /// Writes formatStats() to \p Out with a single fwrite — atomic with
  /// respect to other threads' stream writes, so dumps are never torn.
  void print(FILE *Out) const;
};

/// The multi-isolate roll-up: the shared tier's process-wide counters, the
/// compile service's, and one VmTelemetry per live isolate with sums over
/// them. Obtain via SharedRuntime::serverTelemetry() — only while every
/// isolate is quiescent (per-isolate counters are mutator-thread state and
/// are read here without synchronization).
struct ServerTelemetry {
  /// v2: agg section gained the merged pause-histogram roll-up
  /// (scavenge_pause_p99_seconds, full_pause_p99_seconds,
  /// max_pause_seconds).
  static constexpr int kSchemaVersion = 2;

  SharedTierStats Shared; ///< Interner / AST cache / artifact cache.
  uint64_t ServiceWorkers = 0;      ///< Shared compile pool size (0: none).
  uint64_t ServiceJobsExecuted = 0; ///< Background jobs run by the pool.
  std::vector<VmTelemetry> Isolates; ///< Per-isolate snapshots, by id order.

  /// Fraction of keyed compile probes served by an existing shared
  /// artifact — the server bench's headline cache metric.
  double crossIsolateHitRate() const { return Shared.hitRate(); }

  /// Sums over the per-isolate snapshots (the `agg.*` keys).
  struct Aggregate {
    uint64_t Sends = 0, Instructions = 0;
    uint64_t BaselineCompiles = 0, OptimizedCompiles = 0;
    uint64_t SharedHits = 0, SharedPublishes = 0;
    uint64_t SharedRehydrateFailures = 0, SharedLocalFallbacks = 0;
    uint64_t Invalidations = 0, InlineCacheFlushes = 0;
    uint64_t Scavenges = 0, FullCollections = 0;
    double MutatorStallSeconds = 0;
    /// Pause distributions merged across isolates — the server-level
    /// answer to "what is the worst GC pause any request saw".
    PauseHistogram ScavengePauses, FullPauses;
  };
  Aggregate aggregate() const;

  /// `shared.*` + `service.*` + `agg.*` keys in the VmTelemetry text style
  /// (per-isolate detail is JSON-only to keep the text diffable).
  std::string formatStats() const;
  /// Everything, including a `per_isolate` array of full VmTelemetry
  /// objects.
  std::string toJson() const;
  void print(FILE *Out) const;
};

} // namespace mself

#endif // MINISELF_DRIVER_TELEMETRY_H
