//===-- driver/isolate.cpp - Multi-isolate server runtime -------------------===//

#include "driver/isolate.h"

#include "interp/compile_service.h"
#include "runtime/shared_tier.h"

#include <algorithm>
#include <cassert>

using namespace mself;

//===----------------------------------------------------------------------===//
// Isolate
//===----------------------------------------------------------------------===//

Isolate::Isolate(SharedRuntime &RT, uint64_t Id, Policy P)
    : RT(RT), Id(Id),
      Vm(std::move(P), &RT.tier(), &RT.compileService()) {}

Isolate::~Isolate() { RT.unregister(this); }

//===----------------------------------------------------------------------===//
// SharedRuntime
//===----------------------------------------------------------------------===//

SharedRuntime::SharedRuntime(int CompileWorkers)
    : Tier(std::make_unique<SharedTier>()),
      Service(std::make_unique<CompileService>(CompileWorkers)) {}

SharedRuntime::~SharedRuntime() {
  // Isolates hold references into the tier and the service; destroying the
  // runtime under them would leave their VMs dangling.
  assert(Isolates.empty() && "destroy every Isolate before its SharedRuntime");
}

std::unique_ptr<Isolate> SharedRuntime::createIsolate(Policy P) {
  uint64_t Id = NextId.fetch_add(1, std::memory_order_relaxed);
  // Private constructor: can't go through make_unique.
  std::unique_ptr<Isolate> I(new Isolate(*this, Id, std::move(P)));
  std::lock_guard<std::mutex> L(RegMutex);
  Isolates.push_back(I.get());
  return I;
}

void SharedRuntime::unregister(Isolate *I) {
  std::lock_guard<std::mutex> L(RegMutex);
  Isolates.erase(std::remove(Isolates.begin(), Isolates.end(), I),
                 Isolates.end());
}

size_t SharedRuntime::isolateCount() const {
  std::lock_guard<std::mutex> L(RegMutex);
  return Isolates.size();
}

ServerTelemetry SharedRuntime::serverTelemetry() const {
  ServerTelemetry T;
  T.Shared = Tier->statsSnapshot();
  T.ServiceWorkers = static_cast<uint64_t>(Service->workerCount());
  T.ServiceJobsExecuted = Service->jobsExecuted();
  std::lock_guard<std::mutex> L(RegMutex);
  T.Isolates.reserve(Isolates.size());
  for (Isolate *I : Isolates)
    T.Isolates.push_back(I->Vm.telemetry());
  return T;
}
