//===-- driver/vm.cpp - The virtual machine facade --------------------------===//

#include "driver/vm.h"

#include "compiler/compile.h"

using namespace mself;

VirtualMachine::VirtualMachine(Policy P) : Pol(std::move(P)) {
  TheWorld = std::make_unique<World>(TheHeap);
  World *W = TheWorld.get();
  const Policy *Pp = &Pol;
  Code = std::make_unique<CodeManager>(
      TheHeap, Pol.Customize, [W, Pp](const CompileRequest &Req) {
        return compileFunction(*W, *Pp, Req);
      });
  Interp = std::make_unique<Interpreter>(*TheWorld, *Code);
}

bool VirtualMachine::load(const std::string &Source, std::string &ErrOut) {
  std::vector<const ast::Code *> Exprs;
  if (!TheWorld->loadSource(Source, Exprs, ErrOut))
    return false;
  for (const ast::Code *E : Exprs) {
    Interpreter::Outcome O = Interp->evalTopLevel(E);
    if (!O.Ok) {
      ErrOut = O.Message;
      return false;
    }
  }
  return true;
}

Interpreter::Outcome VirtualMachine::eval(const std::string &Source) {
  std::vector<const ast::Code *> Exprs;
  std::string Err;
  Interpreter::Outcome Out;
  if (!TheWorld->loadSource(Source, Exprs, Err)) {
    Out.Ok = false;
    Out.Message = Err;
    return Out;
  }
  Out.Result = TheWorld->nilValue();
  for (const ast::Code *E : Exprs) {
    Out = Interp->evalTopLevel(E);
    if (!Out.Ok)
      return Out;
  }
  return Out;
}

bool VirtualMachine::evalInt(const std::string &Source, int64_t &Out,
                             std::string &ErrOut) {
  Interpreter::Outcome O = eval(Source);
  if (!O.Ok) {
    ErrOut = O.Message;
    return false;
  }
  if (!O.Result.isInt()) {
    ErrOut = "expected an integer result, got " + O.Result.describe();
    return false;
  }
  Out = O.Result.asInt();
  return true;
}
