//===-- driver/vm.cpp - The virtual machine facade --------------------------===//

#include "driver/vm.h"

#include "compiler/compile.h"

#include <cstdlib>
#include <cstring>

using namespace mself;

VirtualMachine::VirtualMachine(Policy P) : Pol(std::move(P)) {
  // Collector configuration must precede the first allocation — the world
  // boot below already allocates. MINISELF_GC_STRESS=1 overrides the
  // policy with a tiny, promotion-eager nursery so any test suite can be
  // re-run with scavenges forced mid-send (the check-gc-stress target).
  size_t Nursery = Pol.GcNurseryKiB > 0
                       ? static_cast<size_t>(Pol.GcNurseryKiB) << 10
                       : Heap::kDefaultNurseryBytes;
  int Age = Pol.GcPromotionAge >= 0 ? Pol.GcPromotionAge
                                    : Heap::kDefaultPromotionAge;
  size_t Threshold = Pol.GcThresholdKiB > 0
                         ? static_cast<size_t>(Pol.GcThresholdKiB) << 10
                         : Heap::kDefaultGcThresholdBytes;
  bool Generational = Pol.GenerationalGc;
  if (const char *S = std::getenv("MINISELF_GC_STRESS");
      S && *S && std::strcmp(S, "0") != 0) {
    Generational = true;
    Nursery = 4u << 10;
    Age = 1;
    Threshold = 512u << 10;
  }
  TheHeap.configureGc(Generational, Nursery, Age, Threshold);

  TheWorld = std::make_unique<World>(TheHeap);
  World *W = TheWorld.get();
  const Policy *Pp = &Pol;
  // Tiered execution: baseline-tier requests compile under the derived
  // cheap policy; everything else (first-call compiles with tiering off,
  // and promotions) uses the full configured policy.
  CodeManager::TieringConfig TC;
  TC.Enabled = Pol.TieredCompilation;
  TC.Threshold = Pol.TierUpThreshold;
  Code = std::make_unique<CodeManager>(
      TheHeap, Pol.Customize,
      [W, Pp, BP = Pol.baselinePolicy()](const CompileRequest &Req) {
        return compileFunction(*W, Req.BaselineTier ? BP : *Pp, Req);
      },
      TC);

  // Dispatch fast-path configuration: the global (map, selector) cache
  // lives in the world; the per-site PIC knobs ride into the interpreter.
  TheWorld->lookupCache().configure(
      static_cast<size_t>(Pol.GlobalLookupCacheEntries > 0
                              ? Pol.GlobalLookupCacheEntries
                              : 1),
      Pol.UseGlobalLookupCache);
  DispatchOptions DO;
  DO.InlineCaches = Pol.InlineCaches;
  DO.Polymorphic = Pol.PolymorphicInlineCaches;
  DO.PicArity = Pol.PicArity;
  DO.UseGlobalCache = Pol.UseGlobalLookupCache;
  // Execution-engine knobs. Quickening specializes on PIC entry 0, so it is
  // only meaningful with inline caches on; ThreadedDispatch additionally
  // needs the computed-goto build (run() falls back to the switch loop).
  DO.Threaded = Pol.ThreadedDispatch;
  DO.Quickening = Pol.OpcodeQuickening && Pol.InlineCaches;
  Interp = std::make_unique<Interpreter>(*TheWorld, *Code, DO);

  // World shape mutations (a map gaining a slot) invalidate every cached
  // dispatch decision: the world flushes its own lookup cache, and this
  // hook flushes the per-site inline caches plus the compiled functions
  // whose compile-time lookups assumed the mutated map's shape (they fall
  // back to the baseline tier and re-promote with fresh types).
  CodeManager *CM = Code.get();
  TheWorld->setShapeMutationHook([CM](Map *Mutated) {
    CM->flushInlineCaches();
    CM->invalidateDependents(Mutated);
  });
}

TierStats VirtualMachine::tierStats() const { return Code->tierStats(); }

const CompilationEventLog &VirtualMachine::compilationEvents() const {
  return Code->eventLog();
}

DispatchStats VirtualMachine::dispatchStats() const {
  DispatchStats S;
  const ExecCounters &C = Interp->counters();
  S.Sends = C.Sends;
  S.PicHits = C.IcHits;
  S.PicMisses = C.IcMisses;
  S.GlcHits = C.GlcHits;
  S.GlcMisses = C.GlcMisses;
  S.FullLookups = C.FullLookups;
  S.SendsMono = C.SendsMono;
  S.SendsPoly = C.SendsPoly;
  S.SendsMega = C.SendsMega;
  S.SendsUncached = C.SendsUncached;
  S.PicFills = C.PicFills;
  S.MonoToPoly = C.MonoToPoly;
  S.ToMegamorphic = C.ToMegamorphic;
  S.PicEvictions = C.PicEvictions;

  Code->forEach([&S](const CompiledFunction &F) {
    for (const InlineCache &IC : F.Caches) {
      ++S.Sites;
      switch (IC.SiteState) {
      case InlineCache::State::Empty:
        ++S.SitesEmpty;
        break;
      case InlineCache::State::Monomorphic:
        ++S.SitesMono;
        break;
      case InlineCache::State::Polymorphic:
        ++S.SitesPoly;
        break;
      case InlineCache::State::Megamorphic:
        ++S.SitesMega;
        break;
      }
    }
  });

  const GlobalLookupCache &Glc = TheWorld->lookupCache();
  S.GlcCapacity = Glc.capacity();
  S.GlcOccupied = Glc.occupied();
  S.GlcFills = Glc.stats().Fills;
  S.GlcInvalidations = Glc.stats().Invalidations;
  S.InlineCacheFlushes = Code->inlineCacheFlushes();
  S.QuickSends = C.QuickSends;
  S.Quickenings = C.Quickenings;
  S.Dequickenings = C.Dequickenings;
  S.DequickenedSites = Code->dequickenedSites();
  return S;
}

void VirtualMachine::printStats(FILE *Out) const {
  DispatchStats D = dispatchStats();
  fprintf(Out, "dispatch: %llu sends, PIC hit rate %.1f%%, combined %.1f%%, "
               "%llu full lookups\n",
          (unsigned long long)D.Sends, D.picHitRate() * 100,
          D.combinedHitRate() * 100, (unsigned long long)D.FullLookups);
  fprintf(Out, "  sites: %zu (%zu mono, %zu poly, %zu mega), quick sends "
               "%llu\n",
          D.Sites, D.SitesMono, D.SitesPoly, D.SitesMega,
          (unsigned long long)D.QuickSends);

  TierStats T = tierStats();
  fprintf(Out, "tiering: %llu baseline + %llu optimized compiles, "
               "%llu promotions, %llu invalidations\n",
          (unsigned long long)T.BaselineCompiles,
          (unsigned long long)T.OptimizedCompiles,
          (unsigned long long)T.Promotions,
          (unsigned long long)T.Invalidations);

  const GcStats &G = gcStats();
  fprintf(Out, "gc (%s): %llu scavenges + %llu full collections, "
               "%.2f ms total pause, %.3f ms max pause\n",
          TheHeap.generational() ? "generational" : "mark-sweep",
          (unsigned long long)G.Scavenges,
          (unsigned long long)G.FullCollections,
          G.totalPauseSeconds() * 1e3, G.MaxPauseSeconds * 1e3);
  fprintf(Out, "  alloc: %llu nursery + %llu old (%llu overflow); "
               "promoted %llu objs / %llu KiB; survival %.1f%%; "
               "barrier hits %llu\n",
          (unsigned long long)G.NurseryAllocs,
          (unsigned long long)G.OldAllocs,
          (unsigned long long)G.OverflowAllocs,
          (unsigned long long)G.ObjectsPromoted,
          (unsigned long long)(G.BytesPromoted >> 10), G.survivalRate() * 100,
          (unsigned long long)G.BarrierHits);
}

bool VirtualMachine::load(const std::string &Source, std::string &ErrOut) {
  std::vector<const ast::Code *> Exprs;
  if (!TheWorld->loadSource(Source, Exprs, ErrOut))
    return false;
  for (const ast::Code *E : Exprs) {
    Interpreter::Outcome O = Interp->evalTopLevel(E);
    if (!O.Ok) {
      ErrOut = O.Message;
      return false;
    }
  }
  return true;
}

Interpreter::Outcome VirtualMachine::eval(const std::string &Source) {
  std::vector<const ast::Code *> Exprs;
  std::string Err;
  Interpreter::Outcome Out;
  if (!TheWorld->loadSource(Source, Exprs, Err)) {
    Out.Ok = false;
    Out.Message = Err;
    return Out;
  }
  Out.Result = TheWorld->nilValue();
  for (const ast::Code *E : Exprs) {
    Out = Interp->evalTopLevel(E);
    if (!Out.Ok)
      return Out;
  }
  return Out;
}

bool VirtualMachine::evalInt(const std::string &Source, int64_t &Out,
                             std::string &ErrOut) {
  Interpreter::Outcome O = eval(Source);
  if (!O.Ok) {
    ErrOut = O.Message;
    return false;
  }
  if (!O.Result.isInt()) {
    ErrOut = "expected an integer result, got " + O.Result.describe();
    return false;
  }
  Out = O.Result.asInt();
  return true;
}
