//===-- driver/vm.cpp - The virtual machine facade --------------------------===//

#include "driver/vm.h"

#include "compiler/bbv.h"
#include "compiler/compile.h"
#include "interp/compile_queue.h"
#include "interp/compile_service.h"
#include "runtime/shared_tier.h"

using namespace mself;

VirtualMachine::VirtualMachine(Policy P, SharedTier *Tier,
                               CompileService *Service)
    : Pol(Policy::fromEnv(std::move(P))) {
  // Collector configuration must precede the first allocation — the world
  // boot below already allocates. Environment overrides (the
  // check-gc-stress / check-tsan targets' MINISELF_GC_STRESS and
  // MINISELF_BG_COMPILE) were already folded into Pol by Policy::fromEnv
  // above, so this reads pure policy state.
  size_t Nursery = Pol.GcNurseryKiB > 0
                       ? static_cast<size_t>(Pol.GcNurseryKiB) << 10
                       : Heap::kDefaultNurseryBytes;
  int Age = Pol.GcPromotionAge >= 0 ? Pol.GcPromotionAge
                                    : Heap::kDefaultPromotionAge;
  size_t Threshold = Pol.GcThresholdKiB > 0
                         ? static_cast<size_t>(Pol.GcThresholdKiB) << 10
                         : Heap::kDefaultGcThresholdBytes;
  TheHeap.configureGc(Pol.GenerationalGc, Nursery, Age, Threshold);
  TheHeap.configureIncrementalMark(Pol.GcIncrementalMark,
                                   Pol.GcMaxPauseMicros > 0
                                       ? static_cast<uint32_t>(
                                             Pol.GcMaxPauseMicros)
                                       : 1000u);

  TheWorld = std::make_unique<World>(TheHeap, Tier);
  World *W = TheWorld.get();
  const Policy *Pp = &Pol;
  if (Tier)
    Bridge = std::make_unique<SharedCodeBridge>(*Tier, *TheWorld,
                                                Pol.fingerprint());
  // One compiler lambda serves every consumer of CompileRequests — the
  // code cache and the background queue alike. The request's tier picks
  // the compiler: Baseline maps to the derived cheap policy, Optimized to
  // the full configured policy, Bbv to the lazy-versioning tier stacked
  // above it. The isolate rides in the request (stamped by the
  // CodeManager), so the lambda captures no world.
  auto Compile = [Pp, BP = Pol.baselinePolicy()](const CompileRequest &Req)
      -> std::unique_ptr<CompiledFunction> {
    switch (Req.Tier) {
    case CompileTier::Baseline:
      return compileFunction(*Req.Isolate, BP, Req);
    case CompileTier::Bbv:
      return bbvCompile(*Req.Isolate, *Pp, Req);
    case CompileTier::Optimized:
      break;
    }
    return compileFunction(*Req.Isolate, *Pp, Req);
  };

  // Tiered execution: baseline-tier requests compile under the derived
  // cheap policy; hot code promotes to the configured top tier (BBV when
  // the policy stacks it, else the optimizer).
  CodeManager::TieringConfig TC;
  TC.Enabled = Pol.TieredCompilation;
  TC.Threshold = Pol.TierUpThreshold;
  TC.Top = Pol.BbvTier ? CompileTier::Bbv : CompileTier::Optimized;
  Code = std::make_unique<CodeManager>(*TheWorld, Pol.Customize, Compile, TC);
  Code->setSharedBridge(Bridge.get());
  if (Pol.BbvTier)
    Code->setBbvMaterializer([W](CompiledFunction &Fn, int StubIdx) {
      return bbvMaterialize(*W, Fn, StubIdx);
    });

  // Dispatch fast-path configuration: the global (map, selector) cache
  // lives in the world; the per-site PIC knobs ride into the interpreter.
  TheWorld->lookupCache().configure(
      static_cast<size_t>(Pol.GlobalLookupCacheEntries > 0
                              ? Pol.GlobalLookupCacheEntries
                              : 1),
      Pol.UseGlobalLookupCache);
  DispatchOptions DO;
  DO.InlineCaches = Pol.InlineCaches;
  DO.Polymorphic = Pol.PolymorphicInlineCaches;
  DO.PicArity = Pol.PicArity;
  DO.UseGlobalCache = Pol.UseGlobalLookupCache;
  // Execution-engine knobs. Quickening specializes on PIC entry 0, so it is
  // only meaningful with inline caches on; ThreadedDispatch additionally
  // needs the computed-goto build (run() falls back to the switch loop).
  DO.Threaded = Pol.ThreadedDispatch;
  DO.Quickening = Pol.OpcodeQuickening && Pol.InlineCaches;
  Interp = std::make_unique<Interpreter>(*TheWorld, *Code, DO);

  // Background compilation: promotions move to a worker thread, installed
  // back at interpreter safepoints. The queue shares the exact compiler
  // lambda above — only the CompileAccess the requests carry differs.
  if (Pol.BackgroundCompile && Pol.TieredCompilation) {
    BgQueue = std::make_unique<CompileQueue>(*TheWorld, TheHeap, Compile,
                                            Pol.BackgroundQueueCap, Service);
    Code->setBackgroundQueue(BgQueue.get());
  }

  // World shape mutations (a map gaining a slot) invalidate every cached
  // dispatch decision: the world flushes its own lookup cache, and this
  // hook flushes the per-site inline caches plus the compiled functions
  // whose compile-time lookups assumed the mutated map's shape (they fall
  // back to the baseline tier and re-promote with fresh types). With the
  // compile queue on, the queue's cancellation fan-out runs first — this
  // whole hook executes under the exclusive shape lock, so an in-flight
  // compile that already depends on the mutated map is cancelled before
  // any of its lookups can resume.
  CodeManager *CM = Code.get();
  TheWorld->setShapeMutationHook([CM, Q = BgQueue.get()](Map *Mutated) {
    if (Q)
      Q->onShapeMutation(Mutated);
    CM->flushInlineCaches();
    CM->invalidateDependents(Mutated);
  });

  // Slot-tag conflicts (a store breaking a field's monomorphic type
  // history) are narrower than shape mutations: they flip the BBV guard
  // cells covering that one (map, field) tag, sending dependent guarded
  // loads to their slow paths, and invalidate nothing — the materialized
  // versions stay correct, they just stop skipping the test.
  TheHeap.setSlotTagConflictHook([CM](Map *Mutated, int FieldIndex) {
    CM->onSlotTagConflict(Mutated, FieldIndex);
  });
}

VirtualMachine::~VirtualMachine() {
  // The conflict hook captures the CodeManager raw; drop it before member
  // destruction starts so no late store can reach a dead manager.
  TheHeap.setSlotTagConflictHook(nullptr);
}

void VirtualMachine::settleBackgroundCompiles() {
  if (!BgQueue)
    return;
  BgQueue->waitIdle();
  Code->maybeInstall();
}

VmTelemetry VirtualMachine::telemetry() const {
  VmTelemetry T;
  T.PolicyName = Pol.Name;
  T.Background = BgQueue != nullptr;
  T.Generational = TheHeap.generational();
  T.Exec = Interp->counters();
  T.Dispatch = buildDispatchStats();
  T.Tier = Code->tierStats();
  T.Gc = TheHeap.stats();
  const ExecCounters &C = Interp->counters();
  T.Escape.ArenaEnvAllocs = C.ArenaEnvAllocs;
  T.Escape.ArenaBlockAllocs = C.ArenaBlockAllocs;
  T.Escape.ArenaBytes = C.ArenaBytes;
  T.Escape.ArenaReleases = C.ArenaReleases;
  T.Escape.ArenaDemotedAllocs = C.ArenaDemotedAllocs;
  T.Escape.ArenaEvacuations = T.Gc.ArenaEvacuations;
  T.Escape.ArenaHighWaterBytes = Interp->arena().highWaterBytes();
  Code->forEach([&T](const CompiledFunction &F) {
    T.Escape.BlocksNonEscaping +=
        static_cast<uint64_t>(F.Stats.BlocksNonEscaping);
    T.Escape.BlocksArgEscaping +=
        static_cast<uint64_t>(F.Stats.BlocksArgEscaping);
    T.Escape.BlocksEscaping += static_cast<uint64_t>(F.Stats.BlocksEscaping);
    T.Escape.EnvsArena += static_cast<uint64_t>(F.Stats.EnvsArena);
    T.Escape.EnvsScalarReplaced +=
        static_cast<uint64_t>(F.Stats.EnvsScalarReplaced);
    T.Bbv.Blocks += static_cast<uint64_t>(F.Stats.BbvBlocks);
    T.Bbv.Versions += static_cast<uint64_t>(F.Stats.BbvVersions);
    T.Bbv.GenericVersions += static_cast<uint64_t>(F.Stats.BbvGenericVersions);
    T.Bbv.CapFallbacks += static_cast<uint64_t>(F.Stats.BbvCapFallbacks);
    T.Bbv.TypeTestsElided +=
        static_cast<uint64_t>(F.Stats.BbvTypeTestsElided);
    T.Bbv.TagGuards += static_cast<uint64_t>(F.Stats.BbvTagGuards);
    T.Bbv.StubsPatched += static_cast<uint64_t>(F.Stats.BbvStubsPatched);
  });
  T.Bbv.StubRuns = C.BbvStubRuns;
  T.Bbv.GuardFast = C.BbvGuardFast;
  T.Bbv.GuardSlow = C.BbvGuardSlow;
  T.Bbv.TagConflicts = T.Tier.BbvTagConflicts;
  T.Bbv.CellsInvalidated = T.Tier.BbvCellsInvalidated;
  const CompilationEventLog &Log = Code->eventLog();
  T.Events.assign(Log.events().begin(), Log.events().end());
  T.EventsRecorded = Log.totalRecorded();
  return T;
}

DispatchStats VirtualMachine::buildDispatchStats() const {
  DispatchStats S;
  const ExecCounters &C = Interp->counters();
  S.Sends = C.Sends;
  S.PicHits = C.IcHits;
  S.PicMisses = C.IcMisses;
  S.GlcHits = C.GlcHits;
  S.GlcMisses = C.GlcMisses;
  S.FullLookups = C.FullLookups;
  S.SendsMono = C.SendsMono;
  S.SendsPoly = C.SendsPoly;
  S.SendsMega = C.SendsMega;
  S.SendsUncached = C.SendsUncached;
  S.PicFills = C.PicFills;
  S.MonoToPoly = C.MonoToPoly;
  S.ToMegamorphic = C.ToMegamorphic;
  S.PicEvictions = C.PicEvictions;

  Code->forEach([&S](const CompiledFunction &F) {
    for (const InlineCache &IC : F.Caches) {
      ++S.Sites;
      switch (IC.SiteState) {
      case InlineCache::State::Empty:
        ++S.SitesEmpty;
        break;
      case InlineCache::State::Monomorphic:
        ++S.SitesMono;
        break;
      case InlineCache::State::Polymorphic:
        ++S.SitesPoly;
        break;
      case InlineCache::State::Megamorphic:
        ++S.SitesMega;
        break;
      }
    }
  });

  const GlobalLookupCache &Glc = TheWorld->lookupCache();
  S.GlcCapacity = Glc.capacity();
  S.GlcOccupied = Glc.occupied();
  S.GlcFills = Glc.stats().Fills;
  S.GlcInvalidations = Glc.stats().Invalidations;
  S.InlineCacheFlushes = Code->inlineCacheFlushes();
  S.InternerLookups = TheWorld->interner().lookups();
  S.QuickSends = C.QuickSends;
  S.Quickenings = C.Quickenings;
  S.Dequickenings = C.Dequickenings;
  S.DequickenedSites = Code->dequickenedSites();
  return S;
}

bool VirtualMachine::load(const std::string &Source, std::string &ErrOut) {
  std::vector<const ast::Code *> Exprs;
  if (!TheWorld->loadSource(Source, Exprs, ErrOut))
    return false;
  for (const ast::Code *E : Exprs) {
    Interpreter::Outcome O = Interp->evalTopLevel(E);
    if (!O.Ok) {
      ErrOut = O.Message;
      return false;
    }
  }
  return true;
}

Interpreter::Outcome VirtualMachine::eval(const std::string &Source) {
  std::vector<const ast::Code *> Exprs;
  std::string Err;
  Interpreter::Outcome Out;
  if (!TheWorld->loadSource(Source, Exprs, Err)) {
    Out.Ok = false;
    Out.Message = Err;
    return Out;
  }
  Out.Result = TheWorld->nilValue();
  for (const ast::Code *E : Exprs) {
    Out = Interp->evalTopLevel(E);
    if (!Out.Ok)
      return Out;
  }
  return Out;
}

bool VirtualMachine::evalInt(const std::string &Source, int64_t &Out,
                             std::string &ErrOut) {
  Interpreter::Outcome O = eval(Source);
  if (!O.Ok) {
    ErrOut = O.Message;
    return false;
  }
  if (!O.Result.isInt()) {
    ErrOut = "expected an integer result, got " + O.Result.describe();
    return false;
  }
  Out = O.Result.asInt();
  return true;
}
