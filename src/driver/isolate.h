//===-- driver/isolate.h - Multi-isolate server runtime ---------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server-mode entry point: one SharedRuntime owns the process-wide
/// immutable artifacts (interned selectors, parsed ASTs, compiled-code
/// artifacts — the SharedTier) and a fixed pool of compile workers (the
/// CompileService); each Isolate it creates is a full VirtualMachine —
/// private heap, world, dispatch caches, interpreter — that interns,
/// parses, and compiles *through* the shared tier. Mutable state never
/// crosses isolates: a shape mutation in one isolate forks its cache keys
/// (copy-on-write) instead of invalidating anything its neighbours run.
///
/// Threading: each isolate belongs to one mutator thread at a time, exactly
/// like a standalone VirtualMachine. SharedRuntime::createIsolate() and the
/// shared tier underneath are thread-safe, so worker threads may create and
/// run their own isolates concurrently.
///
/// Teardown order: every Isolate must be destroyed before its SharedRuntime
/// (the tier and the service must outlive every VM attached to them —
/// enforced by an assert in ~SharedRuntime).
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_DRIVER_ISOLATE_H
#define MINISELF_DRIVER_ISOLATE_H

#include "driver/telemetry.h"
#include "driver/vm.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace mself {

class SharedRuntime;

/// One tenant of a SharedRuntime: a VirtualMachine wired to the runtime's
/// shared tier and compile service, plus a stable id. Everything a
/// standalone VM can do, an isolate can do — load, eval, telemetry — and
/// the semantics are identical by construction (sharing only short-cuts
/// compilation, never changes its result).
class Isolate {
public:
  ~Isolate();

  uint64_t id() const { return Id; }
  VirtualMachine &vm() { return Vm; }

  /// Conveniences forwarding to the VM, so server code reads naturally.
  bool load(const std::string &Source, std::string &ErrOut) {
    return Vm.load(Source, ErrOut);
  }
  Interpreter::Outcome eval(const std::string &Source) {
    return Vm.eval(Source);
  }

private:
  friend class SharedRuntime;
  Isolate(SharedRuntime &RT, uint64_t Id, Policy P);

  SharedRuntime &RT;
  uint64_t Id;
  VirtualMachine Vm;
};

/// The process-wide half of server mode: shared tier + compile service +
/// the isolate registry. Create one per server, then one Isolate per
/// session/worker.
class SharedRuntime {
public:
  /// \p CompileWorkers sizes the shared background-compile pool (clamped
  /// to >= 1). Isolates whose policy disables background compilation
  /// simply never enqueue to it.
  explicit SharedRuntime(int CompileWorkers = 1);
  ~SharedRuntime();

  SharedTier &tier() { return *Tier; }
  CompileService &compileService() { return *Service; }

  /// Creates a registered isolate. Thread-safe. The returned isolate must
  /// be destroyed before this runtime.
  std::unique_ptr<Isolate> createIsolate(Policy P = Policy::newSelf());

  size_t isolateCount() const;

  /// The server-wide telemetry roll-up: shared-tier counters, compile-pool
  /// counters, and one VmTelemetry per live isolate (in creation order).
  /// Call only while every isolate is quiescent — per-isolate counters are
  /// mutator-thread state and are snapshotted here without synchronization.
  ServerTelemetry serverTelemetry() const;

private:
  friend class Isolate;
  void unregister(Isolate *I);

  std::unique_ptr<SharedTier> Tier;
  std::unique_ptr<CompileService> Service;

  mutable std::mutex RegMutex;
  std::vector<Isolate *> Isolates; ///< Live isolates, creation order.
  std::atomic<uint64_t> NextId{1};
};

} // namespace mself

#endif // MINISELF_DRIVER_ISOLATE_H
