//===-- driver/telemetry.cpp - Unified VM observability snapshot ----------===//

#include "driver/telemetry.h"

#include <cinttypes>
#include <cstdarg>

using namespace mself;

namespace {

void appendf(std::string &S, const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  int N = vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    S.append(Buf, static_cast<size_t>(N) < sizeof(Buf) ? static_cast<size_t>(N)
                                                       : sizeof(Buf) - 1);
}

/// Emits every scalar of the schema exactly once, in a fixed order, through
/// one of two sinks — so the text and JSON serializations cannot drift
/// apart. `section(name)` opens a group, `u`/`f` emit one key.
class Emitter {
public:
  virtual ~Emitter() = default;
  virtual void section(const char *Name) = 0;
  virtual void u(const char *Key, uint64_t V) = 0;
  virtual void f(const char *Key, double V) = 0;
};

void emitAll(const VmTelemetry &T, Emitter &E) {
  E.section("exec");
  E.u("instructions", T.Exec.Instructions);
  E.u("sends", T.Exec.Sends);
  E.u("prim_calls", T.Exec.PrimCalls);
  E.u("type_tests", T.Exec.TypeTests);
  E.u("blocks_made", T.Exec.BlocksMade);
  E.u("env_accesses", T.Exec.EnvAccesses);

  E.section("dispatch");
  E.u("sends", T.Dispatch.Sends);
  E.u("pic_hits", T.Dispatch.PicHits);
  E.u("pic_misses", T.Dispatch.PicMisses);
  E.f("pic_hit_rate", T.Dispatch.picHitRate());
  E.f("combined_hit_rate", T.Dispatch.combinedHitRate());
  E.u("glc_hits", T.Dispatch.GlcHits);
  E.u("glc_misses", T.Dispatch.GlcMisses);
  E.u("full_lookups", T.Dispatch.FullLookups);
  E.u("sends_mono", T.Dispatch.SendsMono);
  E.u("sends_poly", T.Dispatch.SendsPoly);
  E.u("sends_mega", T.Dispatch.SendsMega);
  E.u("sends_uncached", T.Dispatch.SendsUncached);
  E.u("pic_fills", T.Dispatch.PicFills);
  E.u("mono_to_poly", T.Dispatch.MonoToPoly);
  E.u("to_megamorphic", T.Dispatch.ToMegamorphic);
  E.u("pic_evictions", T.Dispatch.PicEvictions);
  E.u("sites", T.Dispatch.Sites);
  E.u("sites_empty", T.Dispatch.SitesEmpty);
  E.u("sites_mono", T.Dispatch.SitesMono);
  E.u("sites_poly", T.Dispatch.SitesPoly);
  E.u("sites_mega", T.Dispatch.SitesMega);
  E.u("glc_capacity", T.Dispatch.GlcCapacity);
  E.u("glc_occupied", T.Dispatch.GlcOccupied);
  E.u("glc_fills", T.Dispatch.GlcFills);
  E.u("glc_invalidations", T.Dispatch.GlcInvalidations);
  E.u("inline_cache_flushes", T.Dispatch.InlineCacheFlushes);
  E.u("interner_lookups", T.Dispatch.InternerLookups);
  E.u("quick_sends", T.Dispatch.QuickSends);
  E.u("quickenings", T.Dispatch.Quickenings);
  E.u("dequickenings", T.Dispatch.Dequickenings);
  E.u("dequickened_sites", T.Dispatch.DequickenedSites);

  E.section("tier");
  E.u("baseline_compiles", T.Tier.BaselineCompiles);
  E.u("optimized_compiles", T.Tier.OptimizedCompiles);
  E.u("promotions", T.Tier.Promotions);
  E.u("swaps", T.Tier.Swaps);
  E.u("invalidations", T.Tier.Invalidations);
  E.f("baseline_compile_seconds", T.Tier.BaselineCompileSeconds);
  E.f("optimized_compile_seconds", T.Tier.OptimizedCompileSeconds);
  E.f("mutator_stall_seconds", T.Tier.MutatorStallSeconds);
  E.u("bg_enqueued", T.Tier.BackgroundEnqueued);
  E.u("bg_installed", T.Tier.BackgroundInstalled);
  E.u("bg_cancelled", T.Tier.BackgroundCancelled);
  E.u("bg_sync_fallbacks", T.Tier.BackgroundSyncFallbacks);
  E.f("bg_compile_seconds", T.Tier.BackgroundCompileSeconds);
  E.u("bbv_compiles", T.Tier.BbvCompiles);
  E.f("bbv_compile_seconds", T.Tier.BbvCompileSeconds);
  E.u("shared_hits", T.Tier.SharedHits);
  E.u("shared_publishes", T.Tier.SharedPublishes);
  E.u("shared_rehydrate_failures", T.Tier.SharedRehydrateFailures);
  E.u("shared_local_fallbacks", T.Tier.SharedLocalFallbacks);
  E.u("live_functions", T.Tier.LiveFunctions);
  E.u("retired_functions", T.Tier.RetiredFunctions);
  E.u("invalidated_functions", T.Tier.InvalidatedFunctions);
  E.u("live_code_bytes", T.Tier.LiveCodeBytes);
  E.u("retired_code_bytes", T.Tier.RetiredCodeBytes);
  E.u("invalidated_code_bytes", T.Tier.InvalidatedCodeBytes);

  E.section("gc");
  E.u("scavenges", T.Gc.Scavenges);
  E.u("full_collections", T.Gc.FullCollections);
  E.u("nursery_allocs", T.Gc.NurseryAllocs);
  E.u("old_allocs", T.Gc.OldAllocs);
  E.u("overflow_allocs", T.Gc.OverflowAllocs);
  E.u("bytes_allocated_nursery", T.Gc.BytesAllocatedNursery);
  E.u("bytes_allocated_old", T.Gc.BytesAllocatedOld);
  E.u("objects_copied", T.Gc.ObjectsCopied);
  E.u("bytes_copied", T.Gc.BytesCopied);
  E.u("objects_promoted", T.Gc.ObjectsPromoted);
  E.u("bytes_promoted", T.Gc.BytesPromoted);
  E.u("barrier_hits", T.Gc.BarrierHits);
  E.u("satb_marks", T.Gc.SatbMarks);
  E.u("deferrals", T.Gc.GcDeferrals);
  E.u("mark_increments", T.Gc.MarkIncrements);
  E.u("sweep_increments", T.Gc.SweepIncrements);
  E.u("mark_cycles", T.Gc.MarkCycles);
  E.f("survival_rate", T.Gc.survivalRate());
  E.f("total_pause_seconds", T.Gc.totalPauseSeconds());
  E.f("max_pause_seconds", T.Gc.maxPauseSeconds());
  E.f("scavenge_pause_p50_seconds", T.Gc.ScavengePauses.percentileSeconds(0.50));
  E.f("scavenge_pause_p95_seconds", T.Gc.ScavengePauses.percentileSeconds(0.95));
  E.f("scavenge_pause_p99_seconds", T.Gc.ScavengePauses.percentileSeconds(0.99));
  E.f("scavenge_pause_max_seconds", T.Gc.ScavengePauses.MaxSeconds);
  E.f("full_pause_p50_seconds", T.Gc.FullPauses.percentileSeconds(0.50));
  E.f("full_pause_p95_seconds", T.Gc.FullPauses.percentileSeconds(0.95));
  E.f("full_pause_p99_seconds", T.Gc.FullPauses.percentileSeconds(0.99));
  E.f("full_pause_max_seconds", T.Gc.FullPauses.MaxSeconds);

  E.section("escape");
  E.u("blocks_non_escaping", T.Escape.BlocksNonEscaping);
  E.u("blocks_arg_escaping", T.Escape.BlocksArgEscaping);
  E.u("blocks_escaping", T.Escape.BlocksEscaping);
  E.u("envs_arena", T.Escape.EnvsArena);
  E.u("envs_scalar_replaced", T.Escape.EnvsScalarReplaced);
  E.u("arena_env_allocs", T.Escape.ArenaEnvAllocs);
  E.u("arena_block_allocs", T.Escape.ArenaBlockAllocs);
  E.u("arena_bytes", T.Escape.ArenaBytes);
  E.u("arena_releases", T.Escape.ArenaReleases);
  E.u("arena_demoted_allocs", T.Escape.ArenaDemotedAllocs);
  E.u("arena_evacuations", T.Escape.ArenaEvacuations);
  E.u("arena_high_water_bytes", T.Escape.ArenaHighWaterBytes);

  E.section("bbv");
  E.u("blocks", T.Bbv.Blocks);
  E.u("versions", T.Bbv.Versions);
  E.u("generic_versions", T.Bbv.GenericVersions);
  E.u("cap_fallbacks", T.Bbv.CapFallbacks);
  E.u("type_tests_elided", T.Bbv.TypeTestsElided);
  E.u("tag_guards", T.Bbv.TagGuards);
  E.u("stubs_patched", T.Bbv.StubsPatched);
  E.u("stub_runs", T.Bbv.StubRuns);
  E.u("guard_fast", T.Bbv.GuardFast);
  E.u("guard_slow", T.Bbv.GuardSlow);
  E.u("tag_conflicts", T.Bbv.TagConflicts);
  E.u("cells_invalidated", T.Bbv.CellsInvalidated);

  E.section("events");
  E.u("recorded", T.EventsRecorded);
  E.u("retained", T.Events.size());
}

class TextEmitter : public Emitter {
public:
  explicit TextEmitter(std::string &S) : S(S) {}
  void section(const char *Name) override { Sec = Name; }
  void u(const char *Key, uint64_t V) override {
    appendf(S, "%s.%s=%" PRIu64 "\n", Sec, Key, V);
  }
  void f(const char *Key, double V) override {
    appendf(S, "%s.%s=%.6f\n", Sec, Key, V);
  }

private:
  std::string &S;
  const char *Sec = "";
};

class JsonEmitter : public Emitter {
public:
  explicit JsonEmitter(std::string &S) : S(S) {}
  void section(const char *Name) override {
    closeSection();
    appendf(S, ",\n  \"%s\": {", Name);
    FirstKey = true;
    Open = true;
  }
  void u(const char *Key, uint64_t V) override {
    appendf(S, "%s\n    \"%s\": %" PRIu64, FirstKey ? "" : ",", Key, V);
    FirstKey = false;
  }
  void f(const char *Key, double V) override {
    appendf(S, "%s\n    \"%s\": %.6f", FirstKey ? "" : ",", Key, V);
    FirstKey = false;
  }
  void closeSection() {
    if (Open)
      S += "\n  }";
    Open = false;
  }

private:
  std::string &S;
  bool FirstKey = true;
  bool Open = false;
};

} // namespace

std::string VmTelemetry::formatStats() const {
  std::string S;
  S.reserve(2048);
  appendf(S, "miniself.telemetry schema=%d policy=%s background=%d "
             "collector=%s\n",
          kSchemaVersion, PolicyName.c_str(), Background ? 1 : 0,
          Generational ? "generational" : "marksweep");
  TextEmitter E(S);
  emitAll(*this, E);
  return S;
}

std::string VmTelemetry::toJson() const {
  std::string S;
  S.reserve(4096);
  appendf(S, "{\n  \"schema\": %d,\n  \"policy\": \"%s\",\n"
             "  \"background\": %s,\n  \"collector\": \"%s\"",
          kSchemaVersion, PolicyName.c_str(), Background ? "true" : "false",
          Generational ? "generational" : "marksweep");
  JsonEmitter E(S);
  emitAll(*this, E);
  E.closeSection();
  S += "\n}\n";
  return S;
}

void VmTelemetry::print(FILE *Out) const {
  std::string S = formatStats();
  fwrite(S.data(), 1, S.size(), Out);
}

//===----------------------------------------------------------------------===//
// ServerTelemetry
//===----------------------------------------------------------------------===//

ServerTelemetry::Aggregate ServerTelemetry::aggregate() const {
  Aggregate A;
  for (const VmTelemetry &T : Isolates) {
    A.Sends += T.Exec.Sends;
    A.Instructions += T.Exec.Instructions;
    A.BaselineCompiles += T.Tier.BaselineCompiles;
    A.OptimizedCompiles += T.Tier.OptimizedCompiles;
    A.SharedHits += T.Tier.SharedHits;
    A.SharedPublishes += T.Tier.SharedPublishes;
    A.SharedRehydrateFailures += T.Tier.SharedRehydrateFailures;
    A.SharedLocalFallbacks += T.Tier.SharedLocalFallbacks;
    A.Invalidations += T.Tier.Invalidations;
    A.InlineCacheFlushes += T.Dispatch.InlineCacheFlushes;
    A.Scavenges += T.Gc.Scavenges;
    A.FullCollections += T.Gc.FullCollections;
    A.MutatorStallSeconds += T.Tier.MutatorStallSeconds;
    A.ScavengePauses.merge(T.Gc.ScavengePauses);
    A.FullPauses.merge(T.Gc.FullPauses);
  }
  return A;
}

namespace {

/// Shared/service/aggregate scalars through the same dual-sink scheme as
/// VmTelemetry, so the two serializations cannot drift.
void emitServer(const ServerTelemetry &T, Emitter &E) {
  E.section("shared");
  E.u("interned_strings", T.Shared.InternedStrings);
  E.u("ast_hits", T.Shared.AstHits);
  E.u("ast_misses", T.Shared.AstMisses);
  E.u("ast_programs", T.Shared.AstPrograms);
  E.u("code_hits", T.Shared.CodeHits);
  E.u("code_misses", T.Shared.CodeMisses);
  E.u("code_waits", T.Shared.CodeWaits);
  E.u("code_unportable_probes", T.Shared.CodeUnportableProbes);
  E.u("code_fills", T.Shared.CodeFills);
  E.u("code_unportable_marks", T.Shared.CodeUnportableMarks);
  E.u("rehydrate_failures", T.Shared.RehydrateFailures);
  E.u("artifacts", T.Shared.Artifacts);
  E.f("hit_rate", T.Shared.hitRate());

  E.section("service");
  E.u("workers", T.ServiceWorkers);
  E.u("jobs_executed", T.ServiceJobsExecuted);

  ServerTelemetry::Aggregate A = T.aggregate();
  E.section("agg");
  E.u("isolates", T.Isolates.size());
  E.u("sends", A.Sends);
  E.u("instructions", A.Instructions);
  E.u("baseline_compiles", A.BaselineCompiles);
  E.u("optimized_compiles", A.OptimizedCompiles);
  E.u("shared_hits", A.SharedHits);
  E.u("shared_publishes", A.SharedPublishes);
  E.u("shared_rehydrate_failures", A.SharedRehydrateFailures);
  E.u("shared_local_fallbacks", A.SharedLocalFallbacks);
  E.u("invalidations", A.Invalidations);
  E.u("inline_cache_flushes", A.InlineCacheFlushes);
  E.u("scavenges", A.Scavenges);
  E.u("full_collections", A.FullCollections);
  E.f("mutator_stall_seconds", A.MutatorStallSeconds);
  E.f("scavenge_pause_p99_seconds", A.ScavengePauses.percentileSeconds(0.99));
  E.f("full_pause_p99_seconds", A.FullPauses.percentileSeconds(0.99));
  E.f("max_pause_seconds",
      A.ScavengePauses.MaxSeconds > A.FullPauses.MaxSeconds
          ? A.ScavengePauses.MaxSeconds
          : A.FullPauses.MaxSeconds);
}

} // namespace

std::string ServerTelemetry::formatStats() const {
  std::string S;
  S.reserve(2048);
  appendf(S, "miniself.server_telemetry schema=%d isolates=%zu\n",
          kSchemaVersion, Isolates.size());
  TextEmitter E(S);
  emitServer(*this, E);
  return S;
}

std::string ServerTelemetry::toJson() const {
  std::string S;
  S.reserve(4096);
  appendf(S, "{\n  \"schema\": %d,\n  \"isolates\": %zu", kSchemaVersion,
          Isolates.size());
  JsonEmitter E(S);
  emitServer(*this, E);
  E.closeSection();
  S += ",\n  \"per_isolate\": [";
  for (size_t I = 0; I < Isolates.size(); ++I) {
    if (I)
      S += ",";
    S += "\n";
    S += Isolates[I].toJson();
  }
  S += "]\n}\n";
  return S;
}

void ServerTelemetry::print(FILE *Out) const {
  std::string S = formatStats();
  fwrite(S.data(), 1, S.size(), Out);
}
