//===-- compiler/policy.cpp - Compiler configurations ----------------------===//

#include "compiler/policy.h"

#include <cstdlib>
#include <cstring>
#include <limits>

using namespace mself;

Policy Policy::st80() {
  Policy P;
  P.Name = "st80";
  P.Customize = false;
  P.Inlining = false;
  P.TypePrediction = false;
  P.TypeAnalysis = false;
  P.TrackLocalTypes = false;
  P.RangeAnalysis = false;
  P.LocalSplitting = false;
  P.ExtendedSplitting = false;
  P.IterativeLoops = false;
  P.LoopHeadGeneralization = false;
  return P;
}

Policy Policy::oldSelf() {
  Policy P;
  P.Name = "oldself";
  P.Customize = true;
  P.Inlining = true;
  P.TypePrediction = true;
  P.TypeAnalysis = true;
  P.TrackLocalTypes = false;
  P.RangeAnalysis = false;
  P.LocalSplitting = true;
  P.ExtendedSplitting = false;
  P.IterativeLoops = false;
  P.LoopHeadGeneralization = false;
  return P;
}

Policy Policy::newSelf() {
  Policy P;
  P.Name = "newself";
  return P;
}

Policy Policy::baselinePolicy() const {
  Policy B = *this;
  B.Name = Name + "-baseline";
  B.Inlining = false;
  B.TypePrediction = false;
  B.TypeAnalysis = false;
  B.TrackLocalTypes = false;
  B.RangeAnalysis = false;
  B.LocalSplitting = false;
  B.ExtendedSplitting = false;
  B.IterativeLoops = false;
  B.LoopHeadGeneralization = false;
  B.TieredCompilation = false;
  B.BbvTier = false;
  return B;
}

uint64_t Policy::fingerprint() const {
  // FNV-1a over every field except Name, in declaration order. Keep in
  // sync with the struct: a knob missing here would let two isolates with
  // different codegen share artifacts.
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= static_cast<uint8_t>(V >> (I * 8));
      H *= 1099511628211ull;
    }
  };
  Mix(Customize);
  Mix(Inlining);
  Mix(TypePrediction);
  Mix(TypeAnalysis);
  Mix(TrackLocalTypes);
  Mix(RangeAnalysis);
  Mix(LocalSplitting);
  Mix(ExtendedSplitting);
  Mix(IterativeLoops);
  Mix(LoopHeadGeneralization);
  Mix(EscapeAnalysis);
  Mix(static_cast<uint64_t>(SplitThreshold));
  Mix(static_cast<uint64_t>(MaxInlineSize));
  Mix(static_cast<uint64_t>(MaxInlineDepth));
  Mix(static_cast<uint64_t>(MaxLoopIterations));
  Mix(InlineCaches);
  Mix(PolymorphicInlineCaches);
  Mix(static_cast<uint64_t>(PicArity));
  Mix(UseGlobalLookupCache);
  Mix(static_cast<uint64_t>(GlobalLookupCacheEntries));
  Mix(ThreadedDispatch);
  Mix(OpcodeQuickening);
  Mix(Superinstructions);
  Mix(GenerationalGc);
  Mix(static_cast<uint64_t>(GcNurseryKiB));
  Mix(static_cast<uint64_t>(GcPromotionAge));
  Mix(static_cast<uint64_t>(GcThresholdKiB));
  Mix(GcIncrementalMark);
  Mix(static_cast<uint64_t>(GcMaxPauseMicros));
  Mix(TieredCompilation);
  Mix(static_cast<uint64_t>(TierUpThreshold));
  Mix(BackgroundCompile);
  Mix(static_cast<uint64_t>(BackgroundQueueCap));
  Mix(BbvTier);
  Mix(static_cast<uint64_t>(BbvMaxVersions));
  return H;
}

Policy Policy::pureInterp() {
  Policy P = st80();
  P.Name = "pureinterp";
  P.InlineCaches = false;
  P.PolymorphicInlineCaches = false;
  P.UseGlobalLookupCache = false;
  return P;
}

//===----------------------------------------------------------------------===//
// Preset registry
//===----------------------------------------------------------------------===//

namespace {

PolicyPreset matrixEntry(std::string Name, std::string Desc, Policy P) {
  PolicyPreset E;
  E.Name = std::move(Name);
  E.Description = std::move(Desc);
  E.P = std::move(P);
  E.InMatrix = true;
  return E;
}

std::vector<PolicyPreset> buildRegistry() {
  std::vector<PolicyPreset> R;

  // The paper's three systems (§6) plus the dispatch-path floor. These are
  // what bench tables iterate; they are not matrix members themselves —
  // the "<name>/pic" entries below run the identical configurations under
  // their matrix labels.
  for (const Policy &P :
       {Policy::st80(), Policy::oldSelf(), Policy::newSelf()}) {
    PolicyPreset E;
    E.Name = P.Name;
    E.Description = P.Name == "st80"
                        ? "Smalltalk-80-style baseline compiler"
                        : (P.Name == "oldself"
                               ? "previous SELF compiler (no iterative "
                                 "analysis, local splitting only)"
                               : "the paper's compiler (iterative type "
                                 "analysis + extended splitting)");
    E.P = P;
    E.PaperSystem = true;
    R.push_back(std::move(E));
  }
  {
    PolicyPreset E;
    E.Name = "pureinterp";
    E.Description = "no caches, no optimizer: full lookup on every send";
    E.P = Policy::pureInterp();
    R.push_back(std::move(E));
  }

  // Dispatch axis: {st80, oldself, newself} × {pic, mono, noglc, nocache}.
  // "pic" is the default stack (PIC + global lookup cache), "mono"
  // degrades to single-entry replace-on-miss caches, "noglc" runs PICs
  // without the global cache, "nocache" performs a full lookup on every
  // send — st80/nocache is pure interpretation.
  for (const Policy &Base :
       {Policy::st80(), Policy::oldSelf(), Policy::newSelf()}) {
    R.push_back(matrixEntry(Base.Name + "/pic",
                            "default dispatch stack (PIC + global cache)",
                            Base));

    Policy Mono = Base;
    Mono.PolymorphicInlineCaches = false;
    Mono.UseGlobalLookupCache = false;
    R.push_back(matrixEntry(Base.Name + "/mono",
                            "single-entry replace-on-miss inline caches",
                            Mono));

    Policy NoGlc = Base;
    NoGlc.UseGlobalLookupCache = false;
    R.push_back(matrixEntry(Base.Name + "/noglc",
                            "PICs without the global lookup cache", NoGlc));

    Policy NoCache = Base;
    NoCache.InlineCaches = false;
    NoCache.UseGlobalLookupCache = false;
    R.push_back(matrixEntry(Base.Name + "/nocache",
                            "full lookup on every send", NoCache));
  }
  // Tiny global cache: forces heavy replacement traffic so index collisions
  // cannot change results either.
  Policy TinyGlc = Policy::newSelf();
  TinyGlc.GlobalLookupCacheEntries = 8;
  R.push_back(matrixEntry("newself/tinyglc",
                          "8-entry global cache (collision stress)",
                          TinyGlc));

  // Tier axis: baseline-tier execution, immediate promotion, and mid-run
  // promotion must all be observationally identical to full-opt-first-call
  // (the plain presets above). oldself and newself differ in how much the
  // optimized tier changes relative to baseline, so both are crossed.
  for (const Policy &Base : {Policy::oldSelf(), Policy::newSelf()}) {
    Policy T1 = Base;
    T1.TieredCompilation = true;
    T1.TierUpThreshold = 1;
    R.push_back(matrixEntry(Base.Name + "/tier1",
                            "tiered, promotion on the first invocation",
                            T1));

    Policy TN = Base;
    TN.TieredCompilation = true;
    TN.TierUpThreshold = 8;
    R.push_back(matrixEntry(Base.Name + "/tierN",
                            "tiered, mid-run promotion at threshold 8", TN));
  }
  Policy BaseOnly = Policy::newSelf();
  BaseOnly.TieredCompilation = true;
  BaseOnly.TierUpThreshold = std::numeric_limits<int>::max();
  R.push_back(matrixEntry("newself/tierbase",
                          "baseline tier only, never promotes", BaseOnly));

  // Execution-engine axis: the dispatch loop (threaded vs switch), opcode
  // quickening, and superinstruction fusion must each be observationally
  // invisible. st80 and newself bracket the compiler spectrum — st80 runs
  // the most generic sends (quickening hits hardest), newself the most
  // optimized bytecode (fusion hits hardest).
  for (const Policy &Base : {Policy::st80(), Policy::newSelf()}) {
    Policy NoQuick = Base;
    NoQuick.OpcodeQuickening = false;
    R.push_back(matrixEntry(Base.Name + "/noquick",
                            "opcode quickening off", NoQuick));

    Policy NoFuse = Base;
    NoFuse.Superinstructions = false;
    R.push_back(matrixEntry(Base.Name + "/nofuse",
                            "superinstruction fusion off", NoFuse));

    Policy Plain = Base;
    Plain.ThreadedDispatch = false;
    Plain.OpcodeQuickening = false;
    Plain.Superinstructions = false;
    R.push_back(matrixEntry(Base.Name + "/plainloop",
                            "switch loop, no quickening, no fusion", Plain));
  }
  // Switch loop with quickening + fusion still on: the non-default engine
  // pairing (threaded-off is the portable fallback everywhere).
  Policy SwitchLoop = Policy::newSelf();
  SwitchLoop.ThreadedDispatch = false;
  R.push_back(matrixEntry("newself/switchloop",
                          "switch loop with quickening + fusion",
                          SwitchLoop));
  // Quickening across tier promotion: baseline code quickens, promotion
  // swaps in fresh optimized code mid-run, which must re-quicken cleanly.
  Policy TierQuick = Policy::newSelf();
  TierQuick.TieredCompilation = true;
  TierQuick.TierUpThreshold = 8;
  TierQuick.ThreadedDispatch = false;
  R.push_back(matrixEntry("newself/tierquick",
                          "quickening across mid-run tier promotion",
                          TierQuick));

  // Collector axis: the memory system must be observationally invisible
  // too. "marksweep" turns the generational collector off entirely (every
  // object old from birth, no barriers, no motion); "tinynursery" is the
  // opposite extreme — a ~4 KiB nursery with promotion age 1 forces
  // copying scavenges mid-send, so PICs, quickened sites, and closure
  // environments are exercised against object motion on every preset.
  // newself/tinytier additionally promotes code tiers mid-run while the
  // scavenger moves objects under the running frames.
  for (const Policy &Base :
       {Policy::st80(), Policy::oldSelf(), Policy::newSelf()}) {
    Policy MarkSweep = Base;
    MarkSweep.GenerationalGc = false;
    MarkSweep.GcThresholdKiB = 256;
    R.push_back(matrixEntry(Base.Name + "/marksweep",
                            "single-space mark-sweep collector", MarkSweep));

    Policy TinyNursery = Base;
    TinyNursery.GcNurseryKiB = 4;
    TinyNursery.GcPromotionAge = 1;
    TinyNursery.GcThresholdKiB = 512;
    R.push_back(matrixEntry(Base.Name + "/tinynursery",
                            "4 KiB nursery, scavenges forced mid-send",
                            TinyNursery));
  }
  Policy TinyTier = Policy::newSelf();
  TinyTier.GcNurseryKiB = 4;
  TinyTier.GcPromotionAge = 1;
  TinyTier.GcThresholdKiB = 512;
  TinyTier.TieredCompilation = true;
  TinyTier.TierUpThreshold = 8;
  R.push_back(matrixEntry("newself/tinytier",
                          "tiny nursery + mid-run tier promotion",
                          TinyTier));
  // Tiny nursery with quickening off: object motion against generic sends
  // only (isolates the PIC/GLC updating from the quickened-operand
  // updating covered by tinynursery above).
  Policy TinyNoQuick = Policy::newSelf();
  TinyNoQuick.GcNurseryKiB = 4;
  TinyNoQuick.GcPromotionAge = 1;
  TinyNoQuick.GcThresholdKiB = 512;
  TinyNoQuick.OpcodeQuickening = false;
  R.push_back(matrixEntry("newself/tinynoquick",
                          "tiny nursery with quickening off", TinyNoQuick));

  // Incremental-marking axis: SATB tri-color cycles sliced across
  // safepoints must be observationally identical to stop-the-world
  // mark-sweep. st80 runs the most generic (store-heaviest) code, newself
  // the most optimized; the small thresholds force several complete
  // cycles per test so the barrier, the termination handshake, and the
  // lazy sweep all actually run. incmarktiny shrinks both the nursery and
  // the slice budget (100 µs) so scavenges, promotions, and mark slices
  // interleave densely mid-send; incmarksweep crosses the incremental
  // cycle with the single-space collector (allocate-black from birth).
  for (const Policy &Base : {Policy::st80(), Policy::newSelf()}) {
    Policy IncMark = Base;
    IncMark.GcIncrementalMark = true;
    IncMark.GcThresholdKiB = 512;
    R.push_back(matrixEntry(Base.Name + "/incmark",
                            "incremental SATB old-space marking", IncMark));
  }
  Policy IncMarkTiny = Policy::newSelf();
  IncMarkTiny.GcIncrementalMark = true;
  IncMarkTiny.GcMaxPauseMicros = 100;
  IncMarkTiny.GcNurseryKiB = 4;
  IncMarkTiny.GcPromotionAge = 1;
  IncMarkTiny.GcThresholdKiB = 256;
  R.push_back(matrixEntry("newself/incmarktiny",
                          "100 µs mark slices against a 4 KiB nursery",
                          IncMarkTiny));
  Policy IncMarkSweep = Policy::newSelf();
  IncMarkSweep.GcIncrementalMark = true;
  IncMarkSweep.GenerationalGc = false;
  IncMarkSweep.GcThresholdKiB = 256;
  R.push_back(matrixEntry("newself/incmarksweep",
                          "incremental marking over the single-space "
                          "collector",
                          IncMarkSweep));

  // Background-compilation axis: off-thread tier-up + safepoint install
  // must be observationally identical to inline promotion, including under
  // GC stress (object motion while a compile is in flight) and under queue
  // saturation (every request falling back to the synchronous path).
  for (const Policy &Base : {Policy::oldSelf(), Policy::newSelf()}) {
    Policy BgTier = Base;
    BgTier.TieredCompilation = true;
    BgTier.TierUpThreshold = 8;
    BgTier.BackgroundCompile = true;
    R.push_back(matrixEntry(Base.Name + "/bgtier",
                            "off-thread promotion, safepoint install",
                            BgTier));
  }
  Policy BgTinyTier = Policy::newSelf();
  BgTinyTier.GcNurseryKiB = 4;
  BgTinyTier.GcPromotionAge = 1;
  BgTinyTier.GcThresholdKiB = 512;
  BgTinyTier.TieredCompilation = true;
  BgTinyTier.TierUpThreshold = 8;
  BgTinyTier.BackgroundCompile = true;
  R.push_back(matrixEntry("newself/bgtinytier",
                          "background promotion under tiny-nursery GC "
                          "stress",
                          BgTinyTier));
  // Escape-analysis axis: arena allocation of proven-non-escaping blocks
  // and environments must be observationally invisible. st80 exercises the
  // baseline codegen's syntactic screen, newself the optimizer's
  // send-graph classification; noescapetier plumbs the knob through both
  // tiers of one run. The default-on rows above already cross arenas with
  // GC stress (tinynursery) and object motion.
  for (const Policy &Base : {Policy::st80(), Policy::newSelf()}) {
    Policy NoEscape = Base;
    NoEscape.EscapeAnalysis = false;
    R.push_back(matrixEntry(Base.Name + "/noescape",
                            "heap-allocate every block and environment",
                            NoEscape));
  }
  Policy NoEscapeTier = Policy::newSelf();
  NoEscapeTier.EscapeAnalysis = false;
  NoEscapeTier.TieredCompilation = true;
  NoEscapeTier.TierUpThreshold = 8;
  R.push_back(matrixEntry("newself/noescapetier",
                          "escape analysis off across both tiers",
                          NoEscapeTier));

  // BBV axis: the lazy basic-block-versioning tier must be observationally
  // identical to eager optimized compilation — versions materializing
  // mid-run, the per-block version cap's generic fallback, slot-tag guard
  // cells, and BBV code promoted into via the baseline tier all cross the
  // same differential matrix (including the isolates axis).
  Policy Bbv = Policy::newSelf();
  Bbv.BbvTier = true;
  R.push_back(matrixEntry("newself/bbv",
                          "lazy basic-block versioning as the top tier",
                          Bbv));
  Policy BbvTierUp = Policy::newSelf();
  BbvTierUp.BbvTier = true;
  BbvTierUp.TieredCompilation = true;
  BbvTierUp.TierUpThreshold = 8;
  R.push_back(matrixEntry("newself/bbvtier",
                          "baseline tier promoting into BBV mid-run",
                          BbvTierUp));
  Policy BbvCap1 = Policy::newSelf();
  BbvCap1.BbvTier = true;
  BbvCap1.BbvMaxVersions = 1;
  R.push_back(matrixEntry("newself/bbvcap1",
                          "version cap 1: every block generic (lazy "
                          "compilation without specialization)",
                          BbvCap1));
  Policy BbvBg = Policy::newSelf();
  BbvBg.BbvTier = true;
  BbvBg.TieredCompilation = true;
  BbvBg.TierUpThreshold = 8;
  BbvBg.BackgroundCompile = true;
  R.push_back(matrixEntry("newself/bbvbg",
                          "off-thread promotion into the BBV tier", BbvBg));
  Policy BbvTiny = Policy::newSelf();
  BbvTiny.BbvTier = true;
  BbvTiny.GcNurseryKiB = 4;
  BbvTiny.GcPromotionAge = 1;
  BbvTiny.GcThresholdKiB = 512;
  R.push_back(matrixEntry("newself/bbvtiny",
                          "BBV versions materializing under tiny-nursery "
                          "GC stress",
                          BbvTiny));

  Policy BgSat = Policy::newSelf();
  BgSat.TieredCompilation = true;
  BgSat.TierUpThreshold = 8;
  BgSat.BackgroundCompile = true;
  BgSat.BackgroundQueueCap = 0;
  R.push_back(matrixEntry("newself/bgsat",
                          "zero-capacity queue: every promotion takes the "
                          "saturation fallback",
                          BgSat));

  return R;
}

} // namespace

const std::vector<PolicyPreset> &Policy::presets() {
  static const std::vector<PolicyPreset> Registry = buildRegistry();
  return Registry;
}

const PolicyPreset *Policy::preset(const std::string &Name) {
  for (const PolicyPreset &E : presets())
    if (E.Name == Name)
      return &E;
  return nullptr;
}

Policy Policy::fromEnv(Policy Base) {
  if (const char *S = std::getenv("MINISELF_GC_STRESS");
      S && *S && std::strcmp(S, "0") != 0) {
    Base.GenerationalGc = true;
    Base.GcNurseryKiB = 4;
    Base.GcPromotionAge = 1;
    Base.GcThresholdKiB = 512;
  }
  if (const char *S = std::getenv("MINISELF_BG_COMPILE"))
    Base.BackgroundCompile = *S && std::strcmp(S, "0") != 0;
  if (const char *S = std::getenv("MINISELF_GC_CONCURRENT"))
    Base.GcIncrementalMark = *S && std::strcmp(S, "0") != 0;
  return Base;
}

std::vector<const PolicyPreset *> mself::matrixPresets() {
  std::vector<const PolicyPreset *> Out;
  for (const PolicyPreset &E : Policy::presets())
    if (E.InMatrix)
      Out.push_back(&E);
  return Out;
}

std::vector<const PolicyPreset *> mself::paperPresets() {
  std::vector<const PolicyPreset *> Out;
  for (const PolicyPreset &E : Policy::presets())
    if (E.PaperSystem)
      Out.push_back(&E);
  return Out;
}
