//===-- compiler/policy.cpp - Compiler configurations ----------------------===//

#include "compiler/policy.h"

using namespace mself;

Policy Policy::st80() {
  Policy P;
  P.Name = "st80";
  P.Customize = false;
  P.Inlining = false;
  P.TypePrediction = false;
  P.TypeAnalysis = false;
  P.TrackLocalTypes = false;
  P.RangeAnalysis = false;
  P.LocalSplitting = false;
  P.ExtendedSplitting = false;
  P.IterativeLoops = false;
  P.LoopHeadGeneralization = false;
  return P;
}

Policy Policy::oldSelf() {
  Policy P;
  P.Name = "oldself";
  P.Customize = true;
  P.Inlining = true;
  P.TypePrediction = true;
  P.TypeAnalysis = true;
  P.TrackLocalTypes = false;
  P.RangeAnalysis = false;
  P.LocalSplitting = true;
  P.ExtendedSplitting = false;
  P.IterativeLoops = false;
  P.LoopHeadGeneralization = false;
  return P;
}

Policy Policy::newSelf() {
  Policy P;
  P.Name = "newself";
  return P;
}

Policy Policy::baselinePolicy() const {
  Policy B = *this;
  B.Name = Name + "-baseline";
  B.Inlining = false;
  B.TypePrediction = false;
  B.TypeAnalysis = false;
  B.TrackLocalTypes = false;
  B.RangeAnalysis = false;
  B.LocalSplitting = false;
  B.ExtendedSplitting = false;
  B.IterativeLoops = false;
  B.LoopHeadGeneralization = false;
  B.TieredCompilation = false;
  return B;
}

Policy Policy::pureInterp() {
  Policy P = st80();
  P.Name = "pureinterp";
  P.InlineCaches = false;
  P.PolymorphicInlineCaches = false;
  P.UseGlobalLookupCache = false;
  return P;
}
