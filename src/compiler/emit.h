//===-- compiler/emit.h - Bytecode emission helper --------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FunctionBuilder: the bytecode assembler shared by the baseline code
/// generator and the optimizing compiler's lowering pass. Handles register
/// allocation (stack-discipline temporaries above the fixed prologue
/// registers), literal/selector/map/block pools, inline-cache slots, and
/// forward-jump fixups.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_COMPILER_EMIT_H
#define MINISELF_COMPILER_EMIT_H

#include "bytecode/bytecode.h"

#include <cassert>
#include <vector>

namespace mself {

class FunctionBuilder {
public:
  explicit FunctionBuilder(CompiledFunction &Fn) : Fn(Fn) {}

  //===--- registers ------------------------------------------------------===//

  /// Reserves a register permanently (self, arguments, locals, env).
  int fixedReg() {
    int R = NumFixed++;
    assert(TempTop == NumFixed - 1 && "fixed regs must precede temps");
    TempTop = NumFixed;
    HighWater = std::max(HighWater, TempTop);
    return R;
  }

  /// Allocates a temporary; release in LIFO order via tempMark/resetTemps.
  int allocTemp() {
    int R = TempTop++;
    HighWater = std::max(HighWater, TempTop);
    return R;
  }
  int tempMark() const { return TempTop; }
  void resetTemps(int Mark) {
    assert(Mark >= NumFixed && Mark <= TempTop && "bad temp mark");
    TempTop = Mark;
  }

  int numRegs() const { return HighWater; }

  //===--- pools ----------------------------------------------------------===//

  int literal(Value V) {
    for (size_t I = 0; I < Fn.Literals.size(); ++I)
      if (Fn.Literals[I] == V)
        return static_cast<int>(I);
    Fn.Literals.push_back(V);
    return static_cast<int>(Fn.Literals.size()) - 1;
  }
  int selector(const std::string *S) {
    for (size_t I = 0; I < Fn.SelectorPool.size(); ++I)
      if (Fn.SelectorPool[I] == S)
        return static_cast<int>(I);
    Fn.SelectorPool.push_back(S);
    return static_cast<int>(Fn.SelectorPool.size()) - 1;
  }
  int mapIndex(Map *M) {
    for (size_t I = 0; I < Fn.MapPool.size(); ++I)
      if (Fn.MapPool[I] == M)
        return static_cast<int>(I);
    Fn.MapPool.push_back(M);
    return static_cast<int>(Fn.MapPool.size()) - 1;
  }
  int blockIndex(const ast::BlockExpr *B) {
    Fn.BlockPool.push_back(B);
    return static_cast<int>(Fn.BlockPool.size()) - 1;
  }
  int cacheIndex() {
    Fn.Caches.emplace_back();
    return static_cast<int>(Fn.Caches.size()) - 1;
  }

  //===--- instructions ----------------------------------------------------===//

  size_t here() const { return Fn.Code.size(); }

  void emit(Op O) { Fn.Code.push_back(static_cast<int32_t>(O)); }
  void operand(int V) { Fn.Code.push_back(V); }

  void emit1(Op O, int A) {
    emit(O);
    operand(A);
  }
  void emit2(Op O, int A, int B) {
    emit(O);
    operand(A);
    operand(B);
  }
  void emit3(Op O, int A, int B, int C) {
    emit(O);
    operand(A);
    operand(B);
    operand(C);
  }
  void emit4(Op O, int A, int B, int C, int D) {
    emit(O);
    operand(A);
    operand(B);
    operand(C);
    operand(D);
  }
  void emit5(Op O, int A, int B, int C, int D, int E) {
    emit(O);
    operand(A);
    operand(B);
    operand(C);
    operand(D);
    operand(E);
  }

  /// Emits an operand to be patched later; \returns its code index.
  size_t placeholder() {
    Fn.Code.push_back(-1);
    return Fn.Code.size() - 1;
  }
  void patch(size_t At, int Target) {
    assert(Fn.Code[At] == -1 && "double patch");
    Fn.Code[At] = Target;
  }
  void patchHere(size_t At) { patch(At, static_cast<int>(here())); }

  CompiledFunction &fn() { return Fn; }

private:
  CompiledFunction &Fn;
  int NumFixed = 0;
  int TempTop = 0;
  int HighWater = 0;
};

} // namespace mself

#endif // MINISELF_COMPILER_EMIT_H
