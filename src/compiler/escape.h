//===-- compiler/escape.h - Closure/environment escape analysis -*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Escape analysis over the inlined, split, DCE'd graph: classifies each
/// surviving closure as non-escaping (never leaves its creating
/// activation), arg-escaping (passed down a call the analyzer resolved to
/// a body that only invokes it), or globally escaping (stored, returned,
/// or handed to code we cannot see). Non- and arg-escaping closures — and
/// the environments only such closures capture — are allocated in the
/// activation's bump-pointer arena (Op::MakeBlockArena / Op::MakeEnvArena)
/// and freed wholesale when the frame pops; fully inlined capturing scopes
/// keep their variables in registers (scalar replacement).
///
/// The classification is a pure performance decision: soundness is carried
/// by the runtime nets (write-barrier evacuation, return-value evacuation,
/// invalidation demotion in the arena opcode handlers), so a stale proof
/// can never produce a dangling reference — only a wasted evacuation.
/// Proof staleness is bounded by DependsOnMaps: the CalleeBody facts used
/// here come from compile-time lookups whose walked maps invalidate the
/// whole function when mutated.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_COMPILER_ESCAPE_H
#define MINISELF_COMPILER_ESCAPE_H

#include "compiler/cfg.h"

#include <set>

namespace mself {

class World;
struct Policy;
struct CompileStats;

/// The three-point escape lattice, ordered by severity.
enum class BlockEscape : uint8_t {
  NonEscaping,  ///< Only invoked/looped in this activation: arena.
  ArgEscaping,  ///< Passed to a resolved callee that only invokes it:
                ///< still bounded by this activation's extent, so arena.
  Escaping,     ///< May outlive the activation: ordinary heap allocation.
};

/// Result of the pass, consumed by lowerGraph's emission decisions.
struct EscapeInfo {
  /// False when Policy::EscapeAnalysis is off: everything is classified
  /// Escaping and every capturing scope materializes (legacy behaviour).
  bool Enabled = false;
  /// Classification of every surviving MakeBlockNode.
  std::map<const Node *, BlockEscape> Blocks;
  /// Capturing scope instances that must materialize an environment: those
  /// on the lexical chain of some surviving closure (the chain must stay
  /// contiguous — block-unit hop counts assume every capturing ancestor
  /// materializes). Other capturing scopes are scalar-replaced.
  std::set<const ScopeInst *> Materialize;
  /// Materialized scopes whose environment may live in the frame arena:
  /// no globally-escaping closure closes over any scope on their chain.
  std::set<const ScopeInst *> ArenaEnvs;
};

/// Runs the classification over the reached (\p Order) minus \p Removed
/// node set and fills the escape counters of \p Stats.
EscapeInfo analyzeEscapes(const World &W, const Policy &P, const Graph &G,
                          const std::vector<Node *> &Order,
                          const std::set<const Node *> &Removed,
                          CompileStats &Stats);

/// True when \p Callee's body uses its parameter \p ParamIdx only in ways
/// bounded by the call's dynamic extent: as the receiver of a value-family
/// send, or as either operand of whileTrue:/whileFalse: — and never from a
/// nested block. Used for both graph sends (via Node::CalleeBody) and the
/// baseline compiler's syntactic screen.
bool blockParamSafe(const World &W, const ast::Code *Callee, int ParamIdx);

} // namespace mself

#endif // MINISELF_COMPILER_ESCAPE_H
