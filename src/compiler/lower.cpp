//===-- compiler/lower.cpp - CFG to bytecode lowering -----------------------===//
//
// The "traditional back-end" stage: dead node elimination, the environment
// materialization decision, linearization, and bytecode emission.
//
// Environment decision: captured variables normally live in heap-allocated
// environments (closures need them). When the optimizer inlined *every*
// block of the unit (no MakeBlock node survives DCE), no closure can ever
// observe this activation's variables, so captured variables are demoted to
// plain registers — this is what puts the paper's loop counters in
// registers even though the source closes over them.
//
//===----------------------------------------------------------------------===//

#include "compiler/analyze.h"

#include "bytecode/peephole.h"
#include "compiler/emit.h"
#include "compiler/escape.h"
#include "parser/ast.h"
#include "support/stopwatch.h"

#include <cassert>
#include <map>
#include <set>

using namespace mself;
using namespace mself::ast;

namespace {

/// Registers read by a node.
void inputVregs(const Node *N, std::vector<int> &Out) {
  Out.clear();
  switch (N->Op) {
  case NodeOp::Move:
    Out.push_back(N->A);
    break;
  case NodeOp::GetField:
    Out.push_back(N->A);
    break;
  case NodeOp::SetField:
    Out.push_back(N->A);
    Out.push_back(N->B);
    break;
  case NodeOp::SetFieldK:
  case NodeOp::VarSetOuter:
    Out.push_back(N->A);
    break;
  case NodeOp::ArithRR:
  case NodeOp::ArithCk:
  case NodeOp::CompareBr:
    Out.push_back(N->A);
    Out.push_back(N->B);
    break;
  case NodeOp::TestInt:
  case NodeOp::TestMap:
    Out.push_back(N->A);
    break;
  case NodeOp::ArrAt:
  case NodeOp::ArrAtRaw:
    Out.push_back(N->A);
    Out.push_back(N->B);
    break;
  case NodeOp::ArrAtPut:
  case NodeOp::ArrAtPutRaw:
    Out.push_back(N->A);
    Out.push_back(N->B);
    Out.push_back(N->C);
    break;
  case NodeOp::ArrSize:
    Out.push_back(N->A);
    break;
  case NodeOp::SendNode:
  case NodeOp::PrimNode:
    for (int A : N->Args)
      Out.push_back(A);
    break;
  case NodeOp::VarSet:
    Out.push_back(N->A);
    break;
  case NodeOp::VarGet:
    // When the environment is elided this lowers to a move from the slot
    // register, so that register must count as used.
    Out.push_back(N->Inst->VregBase + N->Idx);
    break;
  case NodeOp::MakeBlockNode:
    // Lowering reads the creating scope's self register (the closure's
    // home self).
    Out.push_back(N->Inst->SelfVreg);
    break;
  case NodeOp::ReturnNode:
  case NodeOp::NLRetNode:
    Out.push_back(N->A);
    break;
  default:
    break;
  }
}

/// True when the node has no side effect and exists only for its Dst.
bool isPureValueNode(const Node *N) {
  switch (N->Op) {
  case NodeOp::Const:
  case NodeOp::Move:
  case NodeOp::GetField:
  case NodeOp::GetFieldK:
  case NodeOp::ArithRR:
  case NodeOp::ArrSize:
  case NodeOp::MakeBlockNode:
  case NodeOp::VarGet:
  case NodeOp::VarGetOuter:
    return true;
  default:
    return false;
  }
}

} // namespace

std::unique_ptr<CompiledFunction>
mself::lowerGraph(World &W, const Policy &P, const CompileRequest &Req,
                  Graph &G, int NumVregs, CompileStats Stats) {
  double LowerStart = cpuTimeSeconds();
  const Code *Unit = Req.Source;
  CompileAccess OwnAccess(W, /*Background=*/false);
  CompileAccess *Access = Req.Access ? Req.Access : &OwnAccess;
  auto Fn = std::make_unique<CompiledFunction>();
  Fn->Source = Unit;
  Fn->ReceiverMap = P.Customize ? Req.ReceiverMap : nullptr;
  Fn->IsBlockUnit = Req.IsBlockUnit;
  Fn->Name = Req.Name;
  Fn->NumArgs = Unit->NumArgs;

  //===--- reachability ----------------------------------------------------===//

  std::vector<Node *> Order; // Reverse-ish DFS order used for emission.
  std::set<Node *> Reached;
  {
    std::vector<Node *> Work{G.start()};
    while (!Work.empty()) {
      Node *N = Work.back();
      Work.pop_back();
      if (!Reached.insert(N).second)
        continue;
      Order.push_back(N);
      // Push in reverse so Succs[0] is visited first (fallthrough bias).
      for (auto It = N->Succs.rbegin(); It != N->Succs.rend(); ++It)
        if (*It)
          Work.push_back(*It);
    }
  }

  //===--- dead value elimination ------------------------------------------===//

  std::set<const Node *> Removed;
  // Two rounds: optimistically assume all environments elide (VarSet is
  // then a plain register move and removable when its variable is never
  // read). If a MakeBlock survives, redo conservatively: closures may
  // observe captured variables, so VarSet must stay.
  int FirstTemp = 1 + static_cast<int>(Unit->Slots.size());
  auto runDce = [&](bool Optimistic) {
    Removed.clear();
    bool Changed = true;
    std::vector<int> Ins;
    while (Changed) {
      Changed = false;
      std::set<int> Used;
      for (const Node *N : Order) {
        if (Removed.count(N))
          continue;
        inputVregs(N, Ins);
        for (int V : Ins)
          Used.insert(V);
      }
      for (Node *N : Order) {
        if (Removed.count(N))
          continue;
        bool Pure = isPureValueNode(N);
        int Dst = N->Dst;
        if (Optimistic && N->Op == NodeOp::VarSet) {
          Pure = true;
          Dst = N->Inst->VregBase + N->Idx;
        }
        if (!Pure)
          continue;
        // Registers holding unit variables are always observable (they
        // carry the variable across merges); temps are not.
        if (Dst >= FirstTemp && !Used.count(Dst)) {
          Removed.insert(N);
          Changed = true;
        }
        if (N->Op == NodeOp::Move && N->Dst == N->A) {
          Removed.insert(N);
          Changed = true;
        }
      }
    }
  };
  auto anyBlocksLeft = [&]() {
    for (Node *N : Order)
      if (!Removed.count(N) && N->Op == NodeOp::MakeBlockNode)
        return true;
    return false;
  };
  runDce(/*Optimistic=*/true);
  bool AnyBlocks = anyBlocksLeft();
  if (AnyBlocks) {
    runDce(/*Optimistic=*/false);
    AnyBlocks = anyBlocksLeft();
  }

  // Escape analysis over the surviving closures: decides which scopes
  // materialize environments at all (scalar replacement), and which of the
  // materialized envs/blocks may live in the activation arena.
  EscapeInfo EI = analyzeEscapes(W, P, G, Order, Removed, Stats);

  FunctionBuilder B(*Fn);
  // Fixed registers: all analysis vregs, then (if needed) the incoming
  // env, per-scope env registers, and one send/prim argument window.
  for (int I = 0; I < NumVregs; ++I)
    B.fixedReg();

  int IncomingEnv = -1;
  if (Req.IsBlockUnit) {
    IncomingEnv = B.fixedReg();
    Fn->IncomingEnvReg = IncomingEnv;
  }

  // Which scope instances materialize an environment: capturing scopes on
  // some surviving closure's lexical chain (all of them when escape
  // analysis is off — EscapeInfo then reports every capturing scope).
  std::map<const ScopeInst *, int> EnvRegs;
  if (AnyBlocks)
    for (const auto &Inst : G.insts())
      if (Inst->Scope->HasCaptured && EI.Materialize.count(Inst.get()))
        EnvRegs[Inst.get()] = B.fixedReg();

  // Environment register a block created in scope instance \p I closes
  // over: the nearest materialized enclosing scope, else the incoming env.
  auto envSourceFor = [&](const ScopeInst *I) -> int {
    for (const ScopeInst *Cur = I; Cur; Cur = Cur->ParentInst) {
      auto It = EnvRegs.find(Cur);
      if (It != EnvRegs.end())
        return It->second;
    }
    return IncomingEnv;
  };
  auto envParentFor = [&](const ScopeInst *I) -> int {
    return envSourceFor(I->ParentInst ? I->ParentInst : nullptr);
  };

  // Maximum argument window needed by sends/prims.
  int MaxWin = 0;
  for (Node *N : Order)
    if (!Removed.count(N) &&
        (N->Op == NodeOp::SendNode || N->Op == NodeOp::PrimNode ||
         N->Op == NodeOp::ErrorNode))
      MaxWin = std::max(MaxWin,
                        N->Op == NodeOp::ErrorNode
                            ? 2
                            : static_cast<int>(N->Args.size()));
  int Win = -1;
  if (MaxWin > 0) {
    Win = B.fixedReg();
    for (int I = 1; I < MaxWin; ++I)
      B.fixedReg();
  }

  //===--- emission ---------------------------------------------------------===//

  double EmitStart = cpuTimeSeconds();
  Stats.LowerSeconds = EmitStart - LowerStart;

  std::map<const Node *, int> Offsets;
  struct Fixup {
    size_t At;
    const Node *Target;
  };
  std::vector<Fixup> Fixups;
  std::set<const Node *> Emitted;

  // Emission order: straight-line DFS preferring fallthrough successors.
  // We walk chains from a worklist; a chain ends at an already-emitted
  // node (emit a Jump) or a terminal.
  std::vector<Node *> Work{G.start()};
  auto jumpTo = [&](const Node *T) {
    B.emit(Op::Jump);
    auto It = Offsets.find(T);
    if (It != Offsets.end()) {
      B.operand(It->second);
    } else {
      Fixups.push_back({B.placeholder(), T});
    }
  };
  auto refTarget = [&](const Node *T) {
    if (!T) { // Unreachable slot (dead split path): jump to a Halt.
      Fixups.push_back({B.placeholder(), nullptr});
      return;
    }
    auto It = Offsets.find(T);
    if (It != Offsets.end())
      B.operand(It->second);
    else
      Fixups.push_back({B.placeholder(), T});
  };

  auto emitValueWindow = [&](const std::vector<int> &Args) {
    for (size_t I = 0; I < Args.size(); ++I)
      B.emit2(Op::Move, Win + static_cast<int>(I), Args[I]);
  };

  while (!Work.empty()) {
    Node *N = Work.back();
    Work.pop_back();
    if (Emitted.count(N))
      continue;

    // Emit a chain starting at N.
    Node *Cur = N;
    while (Cur && !Emitted.count(Cur)) {
      Emitted.insert(Cur);
      Offsets[Cur] = static_cast<int>(B.here());

      Node *Next = Cur->numSuccs() >= 1 ? Cur->Succs[0] : nullptr;
      bool Skip = Removed.count(Cur) > 0;

      switch (Cur->Op) {
      case NodeOp::Start:
      case NodeOp::MergeNode:
      case NodeOp::LoopHead:
        break;
      case NodeOp::Const:
        if (!Skip) {
          Value V = Cur->Val;
          if (V.isInt() && V.asInt() >= INT32_MIN && V.asInt() <= INT32_MAX)
            B.emit2(Op::LoadInt, Cur->Dst, static_cast<int>(V.asInt()));
          else
            B.emit2(Op::LoadConst, Cur->Dst, B.literal(V));
        }
        break;
      case NodeOp::Move:
        if (!Skip && Cur->Dst != Cur->A)
          B.emit2(Op::Move, Cur->Dst, Cur->A);
        break;
      case NodeOp::GetField:
        if (!Skip)
          B.emit3(Op::GetField, Cur->Dst, Cur->A, Cur->Idx);
        break;
      case NodeOp::SetField:
        B.emit3(Op::SetField, Cur->A, Cur->Idx, Cur->B);
        break;
      case NodeOp::GetFieldK:
        if (!Skip)
          B.emit3(Op::GetFieldConst, Cur->Dst, B.literal(Cur->Val),
                  Cur->Idx);
        break;
      case NodeOp::SetFieldK:
        B.emit3(Op::SetFieldConst, B.literal(Cur->Val), Cur->Idx, Cur->A);
        break;
      case NodeOp::ArithRR:
        if (!Skip) {
          Op O = Cur->Arith == ArithKind::Add   ? Op::AddRaw
                 : Cur->Arith == ArithKind::Sub ? Op::SubRaw
                                                : Op::MulRaw;
          B.emit3(O, Cur->Dst, Cur->A, Cur->B);
        }
        break;
      case NodeOp::ArithCk: {
        Op O;
        switch (Cur->Arith) {
        case ArithKind::Add:
          O = Op::AddCk;
          break;
        case ArithKind::Sub:
          O = Op::SubCk;
          break;
        case ArithKind::Mul:
          O = Op::MulCk;
          break;
        case ArithKind::Div:
          O = Op::DivCk;
          break;
        case ArithKind::Mod:
          O = Op::ModCk;
          break;
        }
        B.emit(O);
        B.operand(Cur->Dst);
        B.operand(Cur->A);
        B.operand(Cur->B);
        refTarget(Cur->Succs[1]);
        break;
      }
      case NodeOp::CompareBr:
        B.emit(Op::BrCmp);
        B.operand(static_cast<int>(Cur->CondCode));
        B.operand(Cur->A);
        B.operand(Cur->B);
        refTarget(Cur->Succs[0]); // Branch when true.
        Next = Cur->Succs[1];     // Fall through when false.
        break;
      case NodeOp::TestInt:
        B.emit(Op::TestInt);
        B.operand(Cur->A);
        refTarget(Cur->Succs[1]);
        break;
      case NodeOp::TestMap:
        B.emit(Op::TestMap);
        B.operand(Cur->A);
        B.operand(B.mapIndex(Cur->MapArg));
        refTarget(Cur->Succs[1]);
        break;
      case NodeOp::ArrAt:
        B.emit(Op::ArrAt);
        B.operand(Cur->Dst);
        B.operand(Cur->A);
        B.operand(Cur->B);
        refTarget(Cur->Succs[1]);
        break;
      case NodeOp::ArrAtRaw:
        if (!Skip)
          B.emit3(Op::ArrAtRaw, Cur->Dst, Cur->A, Cur->B);
        break;
      case NodeOp::ArrAtPut:
        B.emit(Op::ArrAtPut);
        B.operand(Cur->A);
        B.operand(Cur->B);
        B.operand(Cur->C);
        refTarget(Cur->Succs[1]);
        break;
      case NodeOp::ArrAtPutRaw:
        B.emit3(Op::ArrAtPutRaw, Cur->A, Cur->B, Cur->C);
        break;
      case NodeOp::ArrSize:
        if (!Skip)
          B.emit2(Op::ArrSize, Cur->Dst, Cur->A);
        break;
      case NodeOp::SendNode: {
        emitValueWindow(Cur->Args);
        B.emit5(Op::Send, Cur->Dst, B.selector(Cur->Sel), Win,
                static_cast<int>(Cur->Args.size()) - 1, B.cacheIndex());
        break;
      }
      case NodeOp::PrimNode: {
        emitValueWindow(Cur->Args);
        B.emit(Op::Prim);
        B.operand(Cur->Dst);
        B.operand(static_cast<int>(Cur->Prim));
        B.operand(Win);
        B.operand(static_cast<int>(Cur->Args.size()) - 1);
        if (Cur->numSuccs() == 2)
          refTarget(Cur->Succs[1]);
        else
          B.operand(-1);
        break;
      }
      case NodeOp::VarGet: {
        if (Skip)
          break;
        int SlotVreg = Cur->Inst->VregBase + Cur->Idx;
        auto It = EnvRegs.find(Cur->Inst);
        if (It == EnvRegs.end()) {
          if (Cur->Dst != SlotVreg)
            B.emit2(Op::Move, Cur->Dst, SlotVreg);
        } else {
          int EnvIdx =
              Cur->Inst->Scope->Slots[static_cast<size_t>(Cur->Idx)]
                  .EnvIndex;
          B.emit4(Op::EnvGet, Cur->Dst, It->second, 0, EnvIdx);
        }
        break;
      }
      case NodeOp::VarSet: {
        int SlotVreg = Cur->Inst->VregBase + Cur->Idx;
        auto It = EnvRegs.find(Cur->Inst);
        if (It == EnvRegs.end()) {
          if (SlotVreg != Cur->A)
            B.emit2(Op::Move, SlotVreg, Cur->A);
        } else {
          int EnvIdx =
              Cur->Inst->Scope->Slots[static_cast<size_t>(Cur->Idx)]
                  .EnvIndex;
          B.emit4(Op::EnvSet, It->second, 0, EnvIdx, Cur->A);
        }
        break;
      }
      case NodeOp::VarGetOuter:
        if (!Skip)
          B.emit4(Op::EnvGet, Cur->Dst, IncomingEnv, Cur->Idx2, Cur->Idx);
        break;
      case NodeOp::VarSetOuter:
        B.emit4(Op::EnvSet, IncomingEnv, Cur->Idx2, Cur->Idx, Cur->A);
        break;
      case NodeOp::EnterScope: {
        auto It = EnvRegs.find(Cur->Inst);
        if (It == EnvRegs.end())
          break; // Environment elided: captured vars are registers.
        const Code *Sc = Cur->Inst->Scope;
        B.emit3(EI.ArenaEnvs.count(Cur->Inst) ? Op::MakeEnvArena
                                              : Op::MakeEnv,
                It->second, Sc->EnvSlotCount, envParentFor(Cur->Inst));
        // Copy captured incoming values (arguments and, for the root
        // scope, nothing else — locals are stored via VarSet nodes).
        for (int K = 0; K < Sc->NumArgs; ++K) {
          const Code::VarSlot &Slot = Sc->Slots[static_cast<size_t>(K)];
          if (Slot.Storage == VarStorage::Env &&
              Cur->Inst->ParentInst == nullptr &&
              Cur->Inst->Scope == Unit)
            B.emit4(Op::EnvSet, It->second, 0, Slot.EnvIndex,
                    Cur->Inst->VregBase + K);
        }
        break;
      }
      case NodeOp::MakeBlockNode:
        if (!Skip) {
          auto EscIt = EI.Blocks.find(Cur);
          bool ArenaBlk = EscIt != EI.Blocks.end() &&
                          EscIt->second != BlockEscape::Escaping;
          B.emit4(ArenaBlk ? Op::MakeBlockArena : Op::MakeBlock, Cur->Dst,
                  B.blockIndex(Cur->Block), envSourceFor(Cur->Inst),
                  Cur->Inst->SelfVreg);
        }
        break;
      case NodeOp::ReturnNode:
        B.emit1(Op::Return, Cur->A);
        Next = nullptr;
        break;
      case NodeOp::NLRetNode:
        B.emit1(Op::NLRet, Cur->A);
        Next = nullptr;
        break;
      case NodeOp::ErrorNode: {
        Value Msg = Access->stringLiteral(Cur->Msg);
        B.emit2(Op::Move, Win, 0);
        B.emit2(Op::LoadConst, Win + 1, B.literal(Msg));
        B.emit5(Op::Prim, Win, static_cast<int>(PrimId::ErrorOp), Win, 1,
                -1);
        Next = nullptr;
        break;
      }
      }

      if (!Next) {
        // Terminal or unconnected slot.
        if (Cur->Op != NodeOp::ReturnNode && Cur->Op != NodeOp::NLRetNode &&
            Cur->Op != NodeOp::ErrorNode && Cur->numSuccs() >= 1)
          B.emit(Op::Halt); // Unreachable (dead split path).
        break;
      }
      // Queue the not-taken side of branches for later emission.
      for (size_t SI = 0; SI < Cur->Succs.size(); ++SI)
        if (Cur->Succs[SI] && Cur->Succs[SI] != Next)
          Work.push_back(Cur->Succs[SI]);
      if (Emitted.count(Next)) {
        jumpTo(Next);
        break;
      }
      Cur = Next;
    }
  }

  // Resolve forward references; null targets resolve to a shared Halt.
  int HaltAt = -1;
  for (const Fixup &F : Fixups) {
    if (!F.Target) {
      if (HaltAt < 0) {
        HaltAt = static_cast<int>(B.here());
        B.emit(Op::Halt);
      }
      B.patch(F.At, HaltAt);
      continue;
    }
    auto It = Offsets.find(F.Target);
    assert(It != Offsets.end() && "branch target was never emitted");
    B.patch(F.At, It->second);
  }

  Fn->NumRegs = B.numRegs();
  if (P.Superinstructions)
    Stats.SuperFused = fuseSuperinstructions(*Fn, &Stats.MovesElided);
  Stats.EmitSeconds = cpuTimeSeconds() - EmitStart;
  Fn->Stats = Stats;

#ifndef NDEBUG
  // Verify the stream decodes cleanly: instruction starts line up and every
  // branch target lands on an instruction boundary. Branch operand layouts
  // come from opJumpOperands so fused forms are covered automatically.
  {
    std::set<int> Starts;
    size_t I = 0;
    while (I < Fn->Code.size()) {
      Starts.insert(static_cast<int>(I));
      Op O = static_cast<Op>(Fn->Code[I]);
      int Arity = opArity(O);
      I += static_cast<size_t>(1 + Arity);
    }
    assert(I == Fn->Code.size() && "bytecode stream misaligned");
    I = 0;
    while (I < Fn->Code.size()) {
      Op O = static_cast<Op>(Fn->Code[I]);
      int Slots[2];
      int NumTargets = opJumpOperands(O, Slots);
      for (int K = 0; K < NumTargets; ++K) {
        int T = Fn->Code[I + static_cast<size_t>(Slots[K])];
        if (O == Op::Prim && T == -1)
          continue; // Optional fail target: -1 means "runtime error".
        assert(T >= 0 && Starts.count(T) && "branch target misaligned");
        (void)T;
      }
      I += static_cast<size_t>(1 + opArity(O));
    }
    // Every instruction path must end in a control transfer, never run off
    // the end: the last instruction must be a terminator or jump.
    if (!Fn->Code.empty()) {
      size_t Last = 0;
      for (I = 0; I < Fn->Code.size();
           I += static_cast<size_t>(1 + opArity(static_cast<Op>(Fn->Code[I]))))
        Last = I;
      Op O = static_cast<Op>(Fn->Code[Last]);
      assert((O == Op::Return || O == Op::NLRet || O == Op::Jump ||
              O == Op::MoveJump || O == Op::Halt ||
              (O == Op::Prim && Fn->Code[Last + 5] == -1)) &&
             "function may run off the end of its code");
    }
  }
#endif
  return Fn;
}

std::unique_ptr<CompiledFunction>
mself::compileOptimized(World &W, const Policy &P, const CompileRequest &Req) {
  Analyzer A(W, P, Req);
  return A.compile();
}
