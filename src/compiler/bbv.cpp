//===-- compiler/bbv.cpp - Lazy basic-block versioning --------------------===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
//
// The third tier. Where the optimizer's message splitting duplicates paths
// *eagerly* for every type combination the analysis can imagine, this tier
// duplicates them *lazily*, one basic-block version per type context that
// execution actually produces (Chevalier-Boisvert & Feeley, arXiv
// 1401.3041), and reads per-slot store tags off maps so field loads extend
// the context without re-testing (arXiv 1507.02437).
//
// Mechanics. bbvCompile() runs the optimizer with splitting and fusion
// disabled and keeps the result as a *template* that never executes; the
// function's code vector holds a single two-word entry stub. Executing a
// stub (interpreter op BbvStub) calls bbvMaterialize(), which emits a
// specialized copy of the target block — eliding TestInt/TestMap the
// context proves, guarding tag-derived facts with one-word cells — then
// patches the stub into a direct Jump. Outgoing edges land on two-word
// "islands" appended after each version: a BbvStub when the successor
// version does not exist yet, a Jump when it does.
//
// Versions are keyed by (template PC, tag-free flag, context), not by
// block alone: a tag guard's slow path re-enters at the guarded load's own
// PC (mid-block), under the same context but with guard emission disabled
// so the slow version cannot chain to itself. Specialized versions per
// start PC are capped at Policy::BbvMaxVersions; past the cap,
// materialization routes to the context-free generic version.
//
// Soundness notes.
//  * A context fact is a claim about a register's *current contents*,
//    established dynamically (a test, a guarded load, the customization
//    invariant for register 0). Such facts survive later tag conflicts:
//    flipping a cell changes which path future loads take, never what a
//    register already holds.
//  * Only Jump and BrCmp transfer control backwards in materialized code
//    (islands make every other branch land forward), and those two are
//    exactly the ops whose handlers run the back-edge safepoint — a cycle
//    through versions therefore safepoints at least once per iteration no
//    matter what order the blocks materialized in.
//  * Everything here runs on the mutator thread. Background compilation
//    only ever builds templates (bbvCompile), which read no tags.
//
//===----------------------------------------------------------------------===//

#include "compiler/bbv.h"

#include "compiler/compile.h"
#include "runtime/primitives.h"
#include "vm/map.h"
#include "vm/object.h"

#include <cassert>
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

using namespace mself;

namespace mself {

/// Per-function versioning state, opaque outside this file (the bytecode
/// layer destroys it through CompiledFunction::BbvDeleter).
struct BbvState {
  /// One register-type fact: the register holds either a tagged small
  /// integer (IsInt) or a heap object of exactly map M.
  struct Fact {
    bool IsInt = false;
    Map *M = nullptr;
    bool operator==(const Fact &O) const {
      return IsInt == O.IsInt && M == O.M;
    }
    bool operator<(const Fact &O) const {
      return std::tie(IsInt, M) < std::tie(O.IsInt, O.M);
    }
  };

  /// A type context: facts keyed by register number (>= 0) or by encoded
  /// environment slot (< 0, see envKey below). Env-slot facts claim the
  /// current contents of a closure-environment slot reached as (base
  /// register, hop count, slot index); they are established by EnvSet of a
  /// typed value, flow across block boundaries in version keys (this is
  /// what types loop variables, which live in environments whenever the
  /// loop body is a block), and die at any point the slot could be written
  /// behind the version's back — a Send (an escaped block may store to the
  /// chain), or the base register being overwritten.
  using Context = std::map<int, Fact>;

  /// Encodes an env-slot context key, or 0 when the coordinates don't fit
  /// the packing (such slots just go untracked).
  static int envKey(int Reg, int Hop, int Idx) {
    if (Reg < 0 || Reg >= (1 << 19) || Hop < 0 || Hop > 7 || Idx < 0 ||
        Idx > 255)
      return 0;
    return -(((Reg << 11) | (Hop << 8) | Idx) + 1);
  }
  /// \returns the base register of an encoded env-slot key.
  static int envKeyReg(int Key) { return (-Key - 1) >> 11; }
  /// \returns the hop count of an encoded env-slot key.
  static int envKeyHop(int Key) { return ((-Key - 1) >> 8) & 7; }

  /// Version key: template entry PC, tag-free flag (1 for guard slow
  /// paths, which must not emit guards lest their slow edge resolve to the
  /// guarded version itself), incoming context.
  using Key = std::tuple<int, int, Context>;

  /// A pending materialization site: which (PC, context) to emit when the
  /// two-word stub at CodeOffset executes.
  struct Stub {
    int StartPC = 0;
    int TagFree = 0;
    Context Ctx;
    int CodeOffset = 0;
  };

  std::vector<int32_t> Template; ///< Optimized code; never executed.
  std::vector<uint8_t> Leader;   ///< Per template PC: 1 iff a jump target.
  int MaxVersions = 5;           ///< Policy::BbvMaxVersions, frozen here
                                 ///< (the policy is gone at materialize
                                 ///< time).
  Context Entry;                 ///< Receiver-seeded context of stub 0.

  std::vector<Stub> Stubs;
  std::map<Key, int> Versions;  ///< Key -> version entry offset in Code.
  std::map<int, int> SpecCount; ///< StartPC -> specialized versions so far.
  std::map<std::pair<Map *, int>, int> CellForSlot; ///< (map, field)->cell.

  /// Per block-start template PC: bitmap of registers live on entry (read
  /// by the block or some successor before being overwritten). Version
  /// keys carry facts only for these registers — a fact about a dead
  /// register is true but worthless, and keying on it multiplies versions
  /// without eliding a single test.
  std::map<int, std::vector<uint8_t>> LiveIn;

  /// Per block-start template PC: bitmap of registers whose *type* can
  /// still pay off downstream — they feed a TestInt/TestMap, serve as a
  /// guard-eligible GetField holder, or flow into such a use through
  /// moves and environment slots. Version keys are restricted further to
  /// these: a live register whose type nothing ever tests cannot elide
  /// anything, so keying on it only burns the per-block version cap.
  std::map<int, std::vector<uint8_t>> RelevantIn;

  /// Encoded env-slot keys whose contents feed a type test somewhere in
  /// the function (function-wide: environment slots are frame-global).
  std::set<int> RelevantSlots;

  /// \returns \p C restricted to the registers both live *and* relevant at
  /// \p StartPC (an env-slot fact stays while its base register is live
  /// and the slot is relevant somewhere in the function). PCs without
  /// liveness info (tag-guard slow paths re-enter mid-block) pass through
  /// unpruned — dropping facts is always sound, keeping them merely costs
  /// duplicate versions, and slow paths are rare.
  Context pruned(int StartPC, const Context &C) const {
    auto LIt = LiveIn.find(StartPC);
    if (LIt == LiveIn.end())
      return C;
    auto RIt = RelevantIn.find(StartPC);
    Context Out;
    for (const auto &KV : C) {
      int Reg = KV.first >= 0 ? KV.first : envKeyReg(KV.first);
      if (Reg >= static_cast<int>(LIt->second.size()) ||
          !LIt->second[static_cast<size_t>(Reg)])
        continue;
      if (KV.first >= 0) {
        if (RIt != RelevantIn.end() &&
            !RIt->second[static_cast<size_t>(Reg)])
          continue;
      } else if (!RelevantSlots.count(KV.first)) {
        continue;
      }
      Out.insert(KV);
    }
    return Out;
  }
};

} // namespace mself

namespace {

using Fact = BbvState::Fact;
using Context = BbvState::Context;

/// Register operands of the template op at \p PC: the written register (or
/// -1), up to four directly-named read registers, and the register window a
/// Send/Prim consumes (receiver plus arguments, contiguous from WinBase).
struct RegUse {
  int Dst = -1;
  int Reads[4];
  int NReads = 0;
  int WinBase = -1;
  int WinCount = 0;
};

RegUse regUse(const std::vector<int32_t> &T, int PC) {
  RegUse U;
  const int32_t *I = &T[static_cast<size_t>(PC)];
  auto Rd = [&](int Idx) { U.Reads[U.NReads++] = I[Idx]; };
  switch (static_cast<Op>(I[0])) {
  case Op::Move:
  case Op::GetField:
  case Op::ArrSize:
  case Op::EnvGet:
    U.Dst = I[1];
    Rd(2);
    break;
  case Op::LoadInt:
  case Op::LoadConst:
  case Op::GetFieldConst:
    U.Dst = I[1];
    break;
  case Op::SetField:
    Rd(1);
    Rd(3);
    break;
  case Op::SetFieldConst:
    Rd(3);
    break;
  case Op::AddRaw:
  case Op::SubRaw:
  case Op::MulRaw:
  case Op::AddCk:
  case Op::SubCk:
  case Op::MulCk:
  case Op::DivCk:
  case Op::ModCk:
  case Op::ArrAt:
  case Op::ArrAtRaw:
    U.Dst = I[1];
    Rd(2);
    Rd(3);
    break;
  case Op::CmpValue:
    U.Dst = I[1];
    Rd(3);
    Rd(4);
    break;
  case Op::BrCmp:
    Rd(2);
    Rd(3);
    break;
  case Op::BrTrue:
  case Op::TestInt:
  case Op::TestMap:
  case Op::Return:
  case Op::NLRet:
    Rd(1);
    break;
  case Op::Send:
  case Op::Prim:
    U.Dst = I[1];
    U.WinBase = I[3];
    U.WinCount = I[4] + 1; // receiver + argc arguments
    break;
  case Op::ArrAtPut:
  case Op::ArrAtPutRaw:
    Rd(1);
    Rd(2);
    Rd(3);
    break;
  case Op::MakeEnv:
  case Op::MakeEnvArena:
    U.Dst = I[1];
    if (I[3] >= 0)
      Rd(3);
    break;
  case Op::EnvSet:
    Rd(1);
    Rd(4);
    break;
  case Op::MakeBlock:
  case Op::MakeBlockArena:
    U.Dst = I[1];
    if (I[3] >= 0)
      Rd(3);
    if (I[4] >= 0)
      Rd(4);
    break;
  default:
    break; // Halt, Jump: no register operands.
  }
  return U;
}

bool isTerminator(Op O) {
  return O == Op::Halt || O == Op::Return || O == Op::NLRet ||
         O == Op::Jump || O == Op::BrTrue;
}

/// Computes St.LiveIn and St.RelevantIn for every block start: two standard
/// backward dataflows over the template, per-op within each region so
/// mid-block side exits (TestInt else-edges, overflow checks) pick up their
/// targets' sets at the right point. Precision here is purely a footprint
/// matter — a register wrongly kept costs duplicate versions, never
/// correctness.
///
/// Liveness is the classic use/def problem. Relevance is a thinner slice of
/// it: a register is relevant where its *type* can still elide something —
/// it feeds a TestInt/TestMap, serves as the holder of a guard-eligible
/// GetField, or flows into such a use through a Move or an environment
/// slot. Version keys carry only relevant facts; everything else is a true
/// statement nothing downstream ever cashes in, and keying on it burns the
/// per-block version cap on contexts that compile to identical code.
void computeLiveness(BbvState &St) {
  const std::vector<int32_t> &T = St.Template;
  if (T.empty())
    return;

  int MaxReg = 0;
  for (int PC = 0; PC < static_cast<int>(T.size());) {
    Op O = static_cast<Op>(T[static_cast<size_t>(PC)]);
    RegUse U = regUse(T, PC);
    if (U.Dst >= MaxReg)
      MaxReg = U.Dst + 1;
    for (int I = 0; I < U.NReads; ++I)
      if (U.Reads[I] >= MaxReg)
        MaxReg = U.Reads[I] + 1;
    if (U.WinBase >= 0 && U.WinBase + U.WinCount > MaxReg)
      MaxReg = U.WinBase + U.WinCount;
    PC += 1 + opArity(O);
  }

  std::vector<int> Starts;
  Starts.push_back(0);
  for (int PC = 1; PC < static_cast<int>(St.Leader.size()); ++PC)
    if (St.Leader[static_cast<size_t>(PC)])
      Starts.push_back(PC);

  // The region of ops a block start dominates: stops at a terminator or
  // the next leader (anything past a terminator is dead unless itself a
  // leader). FallPC is the leader fallen into, or -1.
  auto regionOf = [&](int S, std::vector<int> &OpPCs, int &FallPC) {
    OpPCs.clear();
    FallPC = -1;
    int PC = S;
    while (PC < static_cast<int>(T.size())) {
      if (PC != S && St.Leader[static_cast<size_t>(PC)]) {
        FallPC = PC;
        break;
      }
      Op O = static_cast<Op>(T[static_cast<size_t>(PC)]);
      OpPCs.push_back(PC);
      if (isTerminator(O))
        break;
      PC += 1 + opArity(O);
    }
  };

  // Pass 1: liveness.
  for (int S : Starts)
    St.LiveIn[S].assign(static_cast<size_t>(MaxReg), 0);
  std::vector<int> OpPCs;
  int FallPC = -1;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Reverse block order converges fastest for a backward problem.
    for (auto SIt = Starts.rbegin(); SIt != Starts.rend(); ++SIt) {
      int S = *SIt;
      regionOf(S, OpPCs, FallPC);

      std::vector<uint8_t> Live(static_cast<size_t>(MaxReg), 0);
      auto Merge = [&](int Target) {
        auto It = St.LiveIn.find(Target);
        if (It == St.LiveIn.end())
          return;
        for (size_t R = 0; R < It->second.size(); ++R)
          Live[R] |= It->second[R];
      };
      if (FallPC >= 0)
        Merge(FallPC);
      for (auto PIt = OpPCs.rbegin(); PIt != OpPCs.rend(); ++PIt) {
        int P = *PIt;
        Op O = static_cast<Op>(T[static_cast<size_t>(P)]);
        int JumpOps[2];
        int N = opJumpOperands(O, JumpOps);
        for (int I = 0; I < N; ++I) {
          int32_t Tgt = T[static_cast<size_t>(P + JumpOps[I])];
          if (Tgt >= 0) // Prim's -1 fail sentinel has no live set.
            Merge(Tgt);
        }
        RegUse U = regUse(T, P);
        if (U.Dst >= 0)
          Live[static_cast<size_t>(U.Dst)] = 0;
        for (int I = 0; I < U.NReads; ++I)
          Live[static_cast<size_t>(U.Reads[I])] = 1;
        for (int I = 0; I < U.WinCount; ++I)
          Live[static_cast<size_t>(U.WinBase + I)] = 1;
      }
      std::vector<uint8_t> &In = St.LiveIn[S];
      if (Live != In) {
        In = std::move(Live);
        Changed = true;
      }
    }
  }

  // Pass 2: relevance. RelevantSlots grows monotonically inside the same
  // fixpoint — an EnvSet of a relevant slot makes its source relevant, and
  // an EnvGet into a relevant register makes its slot relevant.
  for (int S : Starts)
    St.RelevantIn[S].assign(static_cast<size_t>(MaxReg), 0);
  Changed = true;
  while (Changed) {
    Changed = false;
    for (auto SIt = Starts.rbegin(); SIt != Starts.rend(); ++SIt) {
      int S = *SIt;
      regionOf(S, OpPCs, FallPC);

      std::vector<uint8_t> Rel(static_cast<size_t>(MaxReg), 0);
      auto Merge = [&](int Target) {
        auto It = St.RelevantIn.find(Target);
        if (It == St.RelevantIn.end())
          return;
        for (size_t R = 0; R < It->second.size(); ++R)
          Rel[R] |= It->second[R];
      };
      if (FallPC >= 0)
        Merge(FallPC);
      for (auto PIt = OpPCs.rbegin(); PIt != OpPCs.rend(); ++PIt) {
        int P = *PIt;
        Op O = static_cast<Op>(T[static_cast<size_t>(P)]);
        int JumpOps[2];
        int N = opJumpOperands(O, JumpOps);
        for (int I = 0; I < N; ++I) {
          int32_t Tgt = T[static_cast<size_t>(P + JumpOps[I])];
          if (Tgt >= 0)
            Merge(Tgt);
        }
        switch (O) {
        case Op::TestInt:
        case Op::TestMap:
          Rel[static_cast<size_t>(T[P + 1])] = 1;
          break;
        case Op::Move: {
          size_t Dst = static_cast<size_t>(T[P + 1]);
          bool Was = Rel[Dst];
          Rel[Dst] = 0;
          if (Was)
            Rel[static_cast<size_t>(T[P + 2])] = 1;
          break;
        }
        case Op::GetField: {
          // A map fact on the holder is what makes the load guardable,
          // which in turn types the destination — so the holder matters
          // exactly where the destination does.
          size_t Dst = static_cast<size_t>(T[P + 1]);
          bool Was = Rel[Dst];
          Rel[Dst] = 0;
          if (Was)
            Rel[static_cast<size_t>(T[P + 2])] = 1;
          break;
        }
        case Op::EnvGet: {
          size_t Dst = static_cast<size_t>(T[P + 1]);
          bool Was = Rel[Dst];
          Rel[Dst] = 0;
          if (Was) {
            int K = BbvState::envKey(T[P + 2], T[P + 3], T[P + 4]);
            if (K && St.RelevantSlots.insert(K).second)
              Changed = true;
          }
          break;
        }
        case Op::EnvSet: {
          int K = BbvState::envKey(T[P + 1], T[P + 2], T[P + 3]);
          if (K && St.RelevantSlots.count(K))
            Rel[static_cast<size_t>(T[P + 4])] = 1;
          break;
        }
        default: {
          RegUse U = regUse(T, P);
          if (U.Dst >= 0)
            Rel[static_cast<size_t>(U.Dst)] = 0;
          break;
        }
        }
      }
      std::vector<uint8_t> &In = St.RelevantIn[S];
      if (Rel != In) {
        In = std::move(Rel);
        Changed = true;
      }
    }
  }
}

/// Finds or allocates the guard cell covering (\p M, \p Field), recording
/// the dependency on the function so CodeManager::onSlotTagConflict can
/// flip it. A pre-existing cell is necessarily still 0 here: cells flip
/// only when the tag goes Poly, and callers only reach this while the tag
/// is monomorphic.
int cellForSlot(CompiledFunction &Fn, BbvState &St, Map *M, int Field) {
  auto It = St.CellForSlot.find({M, Field});
  if (It != St.CellForSlot.end())
    return It->second;
  int Cell = static_cast<int>(Fn.BbvCells.size());
  Fn.BbvCells.push_back(0);
  Fn.BbvCellDeps.push_back(BbvCellDep{M, Field, Cell});
  St.CellForSlot.emplace(std::make_pair(M, Field), Cell);
  return Cell;
}

/// Emits one version of the block at \p StartPC under \p EntryCtx,
/// appending to Fn.Code, and returns its entry offset. Registers the
/// version before emitting so self-loops resolve directly.
int emitVersion(CompiledFunction &Fn, BbvState &St, int StartPC, int TagFree,
                const Context &EntryCtx) {
  const std::vector<int32_t> &T = St.Template;
  std::vector<int32_t> &Out = Fn.Code;
  const int VersionEntry = static_cast<int>(Out.size());
  St.Versions[{StartPC, TagFree, EntryCtx}] = VersionEntry;

  // Out-edges land on two-word islands appended after the body. Routing
  // every branch whose handler lacks the back-edge safepoint (everything
  // except Jump/BrCmp) through an island keeps backward transfers confined
  // to Jump, and gives tag-guard slow edges somewhere to go that is never
  // the guarded version itself.
  std::map<BbvState::Key, std::vector<int>> Islands;
  auto EdgeTo = [&](int TplPC, int EdgeTagFree, const Context &C,
                    bool Direct) {
    // Keying the edge on the pruned context makes every path that agrees
    // on the *live* registers share one island (and one successor
    // version), whatever dead facts they accumulated.
    Context PC2 = St.pruned(TplPC, C);
    int Pos = static_cast<int>(Out.size());
    Out.push_back(0);
    if (Direct) {
      auto It = St.Versions.find({TplPC, EdgeTagFree, PC2});
      if (It != St.Versions.end()) {
        Out[static_cast<size_t>(Pos)] = It->second;
        return;
      }
    }
    Islands[{TplPC, EdgeTagFree, std::move(PC2)}].push_back(Pos);
  };

  Context Ctx = EntryCtx;
  auto FactOf = [&](int Reg) -> const Fact * {
    auto It = Ctx.find(Reg);
    return It == Ctx.end() ? nullptr : &It->second;
  };
  auto Emit = [&](Op O) { Out.push_back(static_cast<int32_t>(O)); };
  // Writing a register: its own fact is replaced, and env-slot facts
  // anchored to it die — the register may no longer name the same
  // environment. (Negative keys sort first in the map.)
  auto SetReg = [&](int Reg, const Fact *FP) {
    Fact F;
    bool Has = FP != nullptr;
    if (FP)
      F = *FP;
    for (auto It = Ctx.begin(); It != Ctx.end() && It->first < 0;) {
      if (BbvState::envKeyReg(It->first) == Reg)
        It = Ctx.erase(It);
      else
        ++It;
    }
    if (Has)
      Ctx[Reg] = F;
    else
      Ctx.erase(Reg);
  };
  auto SetRegInt = [&](int Reg) {
    Fact F{true, nullptr};
    SetReg(Reg, &F);
  };
  // Drops every env-slot fact outside the (base register, hop) group —
  // pass KeepReg = -1 to drop them all. Slots in the same group are
  // provably distinct; anything else might alias the written slot through
  // another register or a parent hop.
  auto KillEnvFactsExcept = [&](int KeepReg, int KeepHop) {
    for (auto It = Ctx.begin(); It != Ctx.end() && It->first < 0;) {
      if (KeepReg >= 0 && BbvState::envKeyReg(It->first) == KeepReg &&
          BbvState::envKeyHop(It->first) == KeepHop)
        ++It;
      else
        It = Ctx.erase(It);
    }
  };

  int PC = StartPC;
  bool Open = true;
  while (Open) {
    if (PC != StartPC && PC < static_cast<int>(St.Leader.size()) &&
        St.Leader[static_cast<size_t>(PC)]) {
      // Fell through into another block's leader: close this version with
      // a jump carrying the accumulated context across the boundary.
      Emit(Op::Jump);
      EdgeTo(PC, 0, Ctx, /*Direct=*/true);
      break;
    }
    assert(PC >= 0 && PC < static_cast<int>(T.size()) &&
           "template PC out of range");
    Op O = static_cast<Op>(T[static_cast<size_t>(PC)]);
    auto Copy = [&](int Words) {
      for (int I = 0; I < Words; ++I)
        Out.push_back(T[static_cast<size_t>(PC + I)]);
    };
    switch (O) {
    case Op::Halt:
      Copy(1);
      Open = false;
      break;

    case Op::Return:
    case Op::NLRet:
      Copy(2);
      Open = false;
      break;

    case Op::Jump:
      Emit(Op::Jump);
      EdgeTo(T[PC + 1], 0, Ctx, /*Direct=*/true);
      Open = false;
      break;

    case Op::Move: {
      Copy(3);
      SetReg(T[PC + 1], FactOf(T[PC + 2]));
      PC += 3;
      break;
    }

    case Op::LoadInt:
      Copy(3);
      SetRegInt(T[PC + 1]);
      PC += 3;
      break;

    case Op::LoadConst: {
      Copy(3);
      Value L = Fn.Literals[static_cast<size_t>(T[PC + 2])];
      if (L.isInt()) {
        SetRegInt(T[PC + 1]);
      } else if (L.isObject()) {
        Fact F{false, L.asObject()->map()};
        SetReg(T[PC + 1], &F);
      } else {
        SetReg(T[PC + 1], nullptr);
      }
      PC += 3;
      break;
    }

    case Op::GetField:
    case Op::GetFieldConst: {
      // The typed-shapes payoff: when the holder's map is known and its
      // slot tag is monomorphic, a one-word cell read stands in for the
      // type test the loaded value would otherwise need downstream.
      int Dst = T[PC + 1];
      Map *HM = nullptr;
      if (O == Op::GetField) {
        const Fact *F = FactOf(T[PC + 2]);
        if (F && !F->IsInt)
          HM = F->M;
      } else {
        Value L = Fn.Literals[static_cast<size_t>(T[PC + 2])];
        if (L.isObject())
          HM = L.asObject()->map();
      }
      int FieldIdx = T[PC + 3];
      const SlotTypeTag *Tag = nullptr;
      if (!TagFree && HM && HM->kind() == ObjectKind::Plain &&
          FieldIdx >= 0 && FieldIdx < HM->fieldCount())
        Tag = &HM->fieldTag(FieldIdx);
      bool Guarded =
          Tag && (Tag->St == SlotTypeTag::State::Int ||
                  (Tag->St == SlotTypeTag::State::Typed && Tag->TypedMap));
      if (Guarded) {
        Emit(Op::BbvGuard);
        Out.push_back(cellForSlot(Fn, St, HM, FieldIdx));
        // Slow edge: re-enter at this very load, same context, guards off.
        EdgeTo(PC, 1, Ctx, /*Direct=*/false);
        ++Fn.Stats.BbvTagGuards;
      }
      Copy(4);
      if (Guarded) {
        Fact F = Tag->St == SlotTypeTag::State::Int
                     ? Fact{true, nullptr}
                     : Fact{false, Tag->TypedMap};
        SetReg(Dst, &F);
      } else {
        SetReg(Dst, nullptr);
      }
      PC += 4;
      break;
    }

    case Op::SetField:
    case Op::SetFieldConst:
    case Op::ArrAtPutRaw:
      Copy(4);
      PC += 4;
      break;

    case Op::AddRaw:
    case Op::SubRaw:
    case Op::MulRaw:
      Copy(4);
      SetRegInt(T[PC + 1]);
      PC += 4;
      break;

    case Op::AddCk:
    case Op::SubCk:
    case Op::MulCk:
    case Op::DivCk:
    case Op::ModCk:
      Copy(4); // op, dst, a, b
      // Fail edge first: dst is unwritten there, so the pre-store context
      // still holds.
      EdgeTo(T[PC + 4], 0, Ctx, /*Direct=*/false);
      SetRegInt(T[PC + 1]);
      PC += 5;
      break;

    case Op::CmpValue:
      Copy(5);
      SetReg(T[PC + 1], nullptr);
      PC += 5;
      break;

    case Op::BrCmp:
      Copy(4); // op, cond, a, b
      EdgeTo(T[PC + 4], 0, Ctx, /*Direct=*/true);
      PC += 5;
      break;

    case Op::BrTrue:
      Copy(2); // op, src
      EdgeTo(T[PC + 2], 0, Ctx, /*Direct=*/false);
      EdgeTo(T[PC + 3], 0, Ctx, /*Direct=*/false);
      Open = false;
      break;

    case Op::TestInt: {
      int Src = T[PC + 1];
      const Fact *F = FactOf(Src);
      if (F && F->IsInt) {
        ++Fn.Stats.BbvTypeTestsElided; // proven int: fall through
        PC += 3;
        break;
      }
      if (F && !F->IsInt) {
        ++Fn.Stats.BbvTypeTestsElided; // proven heap object: always else
        Emit(Op::Jump);
        EdgeTo(T[PC + 2], 0, Ctx, /*Direct=*/true);
        Open = false;
        break;
      }
      Emit(Op::TestInt);
      Out.push_back(Src);
      EdgeTo(T[PC + 2], 0, Ctx, /*Direct=*/false);
      Ctx[Src] = Fact{true, nullptr}; // fall-through proof
      PC += 3;
      break;
    }

    case Op::TestMap: {
      int Src = T[PC + 1];
      Map *M = Fn.MapPool[static_cast<size_t>(T[PC + 2])];
      bool IsIntMap = M->kind() == ObjectKind::SmallInt;
      const Fact *F = FactOf(Src);
      if (F) {
        ++Fn.Stats.BbvTypeTestsElided;
        bool Passes = F->IsInt ? IsIntMap : F->M == M;
        if (Passes) {
          PC += 4;
        } else {
          Emit(Op::Jump);
          EdgeTo(T[PC + 3], 0, Ctx, /*Direct=*/true);
          Open = false;
        }
        break;
      }
      Emit(Op::TestMap);
      Out.push_back(Src);
      Out.push_back(T[PC + 2]);
      EdgeTo(T[PC + 3], 0, Ctx, /*Direct=*/false);
      Ctx[Src] = IsIntMap ? Fact{true, nullptr} : Fact{false, M};
      PC += 4;
      break;
    }

    case Op::Send:
      // Callees cannot touch caller registers, so register facts survive
      // the call and only the result is unknown — but a callee CAN write
      // this frame's environment slots through a captured block, so every
      // env-slot fact dies here.
      Copy(6);
      KillEnvFactsExcept(-1, 0);
      SetReg(T[PC + 1], nullptr);
      PC += 6;
      break;

    case Op::Prim: {
      Copy(5); // op, dst, prim, base, argc
      // Primitives are leaves: they never call back into mini-SELF code,
      // so env-slot facts survive unless the primitive was handed the env
      // itself through its register window. Drop those before either edge.
      {
        int WinBase = T[PC + 3], Argc = T[PC + 4];
        for (auto It = Ctx.begin(); It != Ctx.end() && It->first < 0;) {
          int R = BbvState::envKeyReg(It->first);
          if (R >= WinBase && R <= WinBase + Argc)
            It = Ctx.erase(It);
          else
            ++It;
        }
      }
      int Fail = T[PC + 5];
      if (Fail < 0)
        Out.push_back(Fail); // -1: primitive failure is a runtime error
      else
        EdgeTo(Fail, 0, Ctx, /*Direct=*/false); // dst unwritten on fail
      // On the success path, the int-producing primitives prove their
      // result: a completed _IntAdd: or _StrAt: cannot have yielded
      // anything but a small integer.
      switch (static_cast<PrimId>(T[PC + 2])) {
      case PrimId::IntAdd:
      case PrimId::IntSub:
      case PrimId::IntMul:
      case PrimId::IntDiv:
      case PrimId::IntMod:
      case PrimId::Size:
      case PrimId::StrAt:
        SetRegInt(T[PC + 1]);
        break;
      default:
        SetReg(T[PC + 1], nullptr);
        break;
      }
      PC += 6;
      break;
    }

    case Op::ArrAt:
      Copy(4);
      EdgeTo(T[PC + 4], 0, Ctx, /*Direct=*/false);
      SetReg(T[PC + 1], nullptr);
      PC += 5;
      break;

    case Op::ArrAtPut:
      Copy(4);
      EdgeTo(T[PC + 4], 0, Ctx, /*Direct=*/false);
      PC += 5;
      break;

    case Op::ArrAtRaw:
      Copy(4);
      SetReg(T[PC + 1], nullptr);
      PC += 4;
      break;

    case Op::ArrSize:
      Copy(3);
      SetRegInt(T[PC + 1]);
      PC += 3;
      break;

    case Op::MakeEnv:
    case Op::MakeEnvArena:
      Copy(4);
      SetReg(T[PC + 1], nullptr);
      PC += 4;
      break;

    case Op::EnvGet: {
      // A read through a slot the context has a fact for types the
      // destination — this is what carries loop variables, which live in
      // environments whenever the loop body is a block.
      Copy(5);
      int K = BbvState::envKey(T[PC + 2], T[PC + 3], T[PC + 4]);
      const Fact *F = K ? FactOf(K) : nullptr;
      if (F) {
        Fact Copied = *F; // SetReg may invalidate the pointer.
        SetReg(T[PC + 1], &Copied);
      } else {
        SetReg(T[PC + 1], nullptr);
      }
      PC += 5;
      break;
    }

    case Op::EnvSet: {
      Copy(5);
      int E = T[PC + 1], Hop = T[PC + 2], Idx = T[PC + 3];
      // The written slot may be reachable as some other (register, hop)
      // pair; only facts in the same group are provably distinct slots.
      KillEnvFactsExcept(E, Hop);
      int K = BbvState::envKey(E, Hop, Idx);
      if (K) {
        const Fact *F = FactOf(T[PC + 4]);
        if (F)
          Ctx[K] = *F;
        else
          Ctx.erase(K);
      }
      PC += 5;
      break;
    }

    case Op::MakeBlock:
    case Op::MakeBlockArena:
      Copy(5);
      SetReg(T[PC + 1], nullptr);
      PC += 5;
      break;

    default:
      // Superinstructions, quickened sends, and BBV ops cannot appear in a
      // template: fusion is disabled, and templates never execute so never
      // quicken. Fail loudly rather than emit a mistargeted copy.
      assert(false && "unexpected opcode in BBV template");
      Emit(Op::Halt);
      Open = false;
      break;
    }
  }

  // Resolve the islands: one two-word slot per distinct out-edge key.
  for (auto &IslandEntry : Islands) {
    const BbvState::Key &K = IslandEntry.first;
    int Pos = static_cast<int>(Out.size());
    auto It = St.Versions.find(K);
    if (It != St.Versions.end()) {
      Emit(Op::Jump);
      Out.push_back(It->second);
    } else {
      Emit(Op::BbvStub);
      Out.push_back(static_cast<int32_t>(St.Stubs.size()));
      St.Stubs.push_back(BbvState::Stub{std::get<0>(K), std::get<1>(K),
                                        std::get<2>(K), Pos});
    }
    for (int Fix : IslandEntry.second)
      Out[static_cast<size_t>(Fix)] = Pos;
  }
  return VersionEntry;
}

/// Finds or materializes the version for (\p StartPC, \p TagFree, \p Ctx),
/// applying the per-block specialization cap: past it (or always, for a
/// cap <= 1, which degenerates to pure lazy compilation), the context-free
/// generic version serves instead.
int ensureVersion(CompiledFunction &Fn, BbvState &St, int StartPC,
                  int TagFree, const Context &RawCtx) {
  Context Ctx = St.pruned(StartPC, RawCtx);
  auto It = St.Versions.find({StartPC, TagFree, Ctx});
  if (It != St.Versions.end())
    return It->second;
  if (!Ctx.empty() &&
      (St.MaxVersions <= 1 || St.SpecCount[StartPC] >= St.MaxVersions)) {
    ++Fn.Stats.BbvCapFallbacks;
    // Past the cap, prefer the strongest existing version whose
    // assumptions this context satisfies (every fact it was specialized
    // on holds here) over surrendering all facts to the generic version.
    int Best = -1;
    size_t BestFacts = 0;
    for (const auto &V : St.Versions) {
      if (std::get<0>(V.first) != StartPC ||
          std::get<1>(V.first) != TagFree)
        continue;
      const Context &VC = std::get<2>(V.first);
      if (VC.empty() || VC.size() < BestFacts)
        continue;
      bool Subsumes = true;
      for (const auto &KV : VC) {
        auto F = Ctx.find(KV.first);
        if (F == Ctx.end() || !(F->second == KV.second)) {
          Subsumes = false;
          break;
        }
      }
      if (Subsumes) {
        Best = V.second;
        BestFacts = VC.size();
      }
    }
    if (Best >= 0)
      return Best;
    return ensureVersion(Fn, St, StartPC, TagFree, Context());
  }
  if (Ctx.empty())
    ++Fn.Stats.BbvGenericVersions;
  else {
    ++Fn.Stats.BbvVersions;
    ++St.SpecCount[StartPC];
  }
  return emitVersion(Fn, St, StartPC, TagFree, Ctx);
}

} // namespace

std::unique_ptr<CompiledFunction>
mself::bbvCompile(World &W, const Policy &P, const CompileRequest &Req) {
  // The template: the optimizer as configured, minus superinstruction
  // fusion, which would blur per-op context transfer. Splitting stays on —
  // split-recovered types feed the optimizer's inlining, and the split
  // paths cost nothing here: the template never executes, and only the
  // paths execution actually takes materialize as versions.
  Policy TP = P;
  TP.Superinstructions = false;
  std::unique_ptr<CompiledFunction> Fn = compileOptimized(W, TP, Req);

  auto St = std::make_unique<BbvState>();
  St->MaxVersions = P.BbvMaxVersions;
  St->Template = std::move(Fn->Code);
  Fn->Code.clear();

  // Block leaders: every jump target in the template. Prim's -1 fail
  // sentinel is tolerated per the opJumpOperands contract.
  St->Leader.assign(St->Template.size(), 0);
  int NumLeaders = 0;
  for (size_t PC = 0; PC < St->Template.size();) {
    Op O = static_cast<Op>(St->Template[PC]);
    int JumpOps[2];
    int N = opJumpOperands(O, JumpOps);
    for (int I = 0; I < N; ++I) {
      int32_t Tgt = St->Template[PC + static_cast<size_t>(JumpOps[I])];
      if (Tgt >= 0 && !St->Leader[static_cast<size_t>(Tgt)]) {
        St->Leader[static_cast<size_t>(Tgt)] = 1;
        ++NumLeaders;
      }
    }
    PC += 1 + static_cast<size_t>(opArity(O));
  }
  Fn->Stats.BbvBlocks =
      NumLeaders + ((St->Leader.empty() || !St->Leader[0]) ? 1 : 0);
  computeLiveness(*St);

  // Entry context: register 0 is the receiver, and a customized function
  // only ever activates on receivers of its customization map.
  if (Fn->ReceiverMap) {
    if (Fn->ReceiverMap->kind() == ObjectKind::SmallInt)
      St->Entry[0] = Fact{true, nullptr};
    else
      St->Entry[0] = Fact{false, Fn->ReceiverMap};
  }

  // The function's entire executable code: one stub for (PC 0, entry ctx).
  Fn->Code.push_back(static_cast<int32_t>(Op::BbvStub));
  Fn->Code.push_back(0);
  St->Stubs.push_back(BbvState::Stub{0, 0, St->Entry, 0});

  Fn->Bbv = St.release();
  Fn->BbvDeleter = +[](BbvState *S) { delete S; };
  (void)W;
  return Fn;
}

int mself::bbvMaterialize(World &W, CompiledFunction &Fn, int StubIdx) {
  (void)W;
  if (!Fn.Bbv)
    return -1;
  BbvState &St = *Fn.Bbv;
  if (StubIdx < 0 || StubIdx >= static_cast<int>(St.Stubs.size()))
    return -1;
  // Copy, not reference: emission appends new stubs behind it.
  BbvState::Stub S = St.Stubs[static_cast<size_t>(StubIdx)];
  int Target = ensureVersion(Fn, St, S.StartPC, S.TagFree, S.Ctx);
  // Patch the stub in place into a direct jump so this edge never
  // re-enters the materializer.
  Fn.Code[static_cast<size_t>(S.CodeOffset)] = static_cast<int32_t>(Op::Jump);
  Fn.Code[static_cast<size_t>(S.CodeOffset) + 1] = Target;
  ++Fn.Stats.BbvStubsPatched;
  return Target;
}
