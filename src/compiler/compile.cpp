//===-- compiler/compile.cpp - Compiler entry point -------------------------===//

#include "compiler/compile.h"

using namespace mself;

std::unique_ptr<CompiledFunction>
mself::compileFunction(World &W, const Policy &P, const CompileRequest &Req) {
  if (P.Inlining || P.TypeAnalysis)
    return compileOptimized(W, P, Req);
  return compileBaseline(W, P, Req);
}

