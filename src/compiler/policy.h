//===-- compiler/policy.h - Compiler configurations -------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feature flags selecting a compiler configuration. The three presets are
/// the systems the paper compares (§6): a Smalltalk-80-style baseline
/// ("ST-80"), the previous SELF compiler ("old SELF": customization, type
/// prediction, message/primitive inlining, local splitting, pessimistic
/// loops, no range analysis), and the paper's contribution ("new SELF").
/// Individual flags double as the ablation switches for DESIGN.md §5.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_COMPILER_POLICY_H
#define MINISELF_COMPILER_POLICY_H

#include <cstdint>
#include <string>
#include <vector>

namespace mself {

struct PolicyPreset;

struct Policy {
  std::string Name = "newself";

  /// Compile one machine method per (source method, receiver map) pair so
  /// the receiver's type is a compile-time constant (paper §2).
  bool Customize = true;
  /// Compile-time lookup + inlining of sends with known receiver class,
  /// and opening up of small primitives into raw/checked instructions.
  bool Inlining = true;
  /// Insert a run-time type test when the message name predicts the
  /// receiver type (+, -, <, ... predict small integers; §2, §3.2.2).
  bool TypePrediction = true;
  /// Maintain the type lattice at all (off: every value is unknown).
  bool TypeAnalysis = true;
  /// Track types of assigned locals (the old compiler treated all locals
  /// as unknown; §5: "the original SELF compiler performed no type
  /// analysis").
  bool TrackLocalTypes = true;
  /// Integer subrange analysis: fold comparisons, remove overflow checks
  /// and array bounds checks (§3.2.1, §3.2.3).
  bool RangeAnalysis = true;
  /// Split a send that *immediately* follows a merge (§4, the old
  /// compiler's "local message splitting").
  bool LocalSplitting = true;
  /// Split sends arbitrarily far from the diluting merge by copying the
  /// intervening nodes (§4, "extended message splitting").
  bool ExtendedSplitting = true;
  /// Iterative type analysis for loops (§5.1); off = pessimistic loops
  /// (assigned locals become unknown at the loop head).
  bool IterativeLoops = true;
  /// Generalize value/subrange types to their class type at loop heads to
  /// reach the fix-point quickly (§5.1).
  bool LoopHeadGeneralization = true;
  /// Escape analysis over the inlined body: closures (and the environments
  /// they capture) proven not to outlive their creating activation are
  /// allocated in a per-activation arena and freed wholesale at frame exit;
  /// fully inlined capturing scopes keep their variables in registers.
  /// Soundness does not depend on this flag — runtime nets evacuate any
  /// arena object the moment it actually escapes.
  bool EscapeAnalysis = true;

  /// Maximum number of nodes extended splitting may copy per split (§4:
  /// "only performs extended message splitting when the number of copied
  /// nodes is below a fixed threshold").
  int SplitThreshold = 32;
  /// Maximum AST size (expression nodes) of an inlinable method.
  int MaxInlineSize = 120;
  /// Maximum nesting depth of inlined sends.
  int MaxInlineDepth = 24;
  /// Maximum re-analysis passes per loop before giving up and using
  /// pessimistic bindings.
  int MaxLoopIterations = 6;

  //===--- Dispatch (runtime) knobs ------------------------------------===//
  // The send fast path is shared by every compiler configuration; these
  // flags exist for ablation (bench/table_dispatch) and differential
  // testing, not as part of the three paper presets.

  /// Inline caches at dynamically-bound send sites. Off: every send does a
  /// full lookup — "pure interpretation" of the dispatch path.
  bool InlineCaches = true;
  /// Polymorphic inline caches: up to PicArity (map, target) entries per
  /// site with mono → poly → megamorphic transitions. Off: single-entry
  /// monomorphic caches with replacement on miss (the pre-PIC behaviour).
  bool PolymorphicInlineCaches = true;
  /// Entries per PIC site before the megamorphic transition (clamped to
  /// 1..InlineCache::kCapacity by the interpreter).
  int PicArity = 4;
  /// Hashed per-world (map, selector) lookup cache serving megamorphic
  /// sites, cold PIC misses, and compile-time lookups.
  bool UseGlobalLookupCache = true;
  /// Global lookup cache size in entries (rounded up to a power of two).
  int GlobalLookupCacheEntries = 2048;

  //===--- Execution engine (interpreter core) knobs -------------------===//
  // How compiled bytecode is *executed*, orthogonal to how it is compiled
  // and dispatched. All three default on; the differential matrix and
  // bench/table_interp cross-check every combination against the plain
  // switch/generic/unfused engine.

  /// Direct-threaded dispatch: the interpreter jumps label-to-label via
  /// computed goto instead of re-entering a switch per instruction. Only
  /// effective when the build has MINISELF_COMPUTED_GOTO (GNU/Clang);
  /// otherwise the portable switch loop runs regardless.
  bool ThreadedDispatch = true;
  /// Opcode quickening: monomorphic Send sites rewrite their opcode word in
  /// place to a specialized form (SendMono/SendGetF/SendSetF/SendConst)
  /// validated against PIC entry 0, de-quickening on any mismatch and on
  /// shape-mutation cache flushes.
  bool OpcodeQuickening = true;
  /// Superinstruction fusion: a post-codegen peephole pass merges hot
  /// adjacent instruction pairs (compare+branch, load-imm+arith, move
  /// chains) into single-dispatch superinstructions.
  bool Superinstructions = true;

  //===--- Memory system (garbage collector) knobs ----------------------===//
  // Which collector the VM's heap runs and how it is sized. Like the
  // dispatch knobs these are orthogonal to the three compiler presets; the
  // differential matrix crosses them against every policy, and
  // bench/table_gc measures the generational collector against the
  // mark-sweep baseline.

  /// Two-generation collector: bump-pointer nursery + copying scavenges +
  /// age-based promotion into the mark-sweep old space. Off: the
  /// single-space mark-sweep collector (every object old from birth).
  bool GenerationalGc = true;
  /// Nursery semispace size in KiB (generational only). Tiny values
  /// (e.g. 4) force scavenges mid-send and are used by the GC stress
  /// tests; <= 0 selects the heap's default (256 KiB).
  int GcNurseryKiB = 0;
  /// Scavenges an object must survive before being tenured into the old
  /// space; 0 promotes on the first scavenge. Negative selects the heap's
  /// default (2).
  int GcPromotionAge = -1;
  /// Old-space growth (KiB) between full collections; <= 0 selects the
  /// heap's default (8 MiB). This replaces the test-only
  /// Heap::setGcThresholdBytes as the way to configure collection volume.
  int GcThresholdKiB = 0;
  /// Incremental old-space marking: full collections become a
  /// snapshot-at-the-beginning tri-color cycle advanced in budget-bounded
  /// slices at safepoints, with lazy chunked sweeping, instead of one
  /// stop-the-world mark-sweep pause. Observationally invisible (the
  /// differential matrix crosses it); orthogonal to GenerationalGc.
  bool GcIncrementalMark = false;
  /// Pause budget in microseconds for each incremental mark/sweep slice;
  /// <= 0 selects 1000 (1 ms). Ignored unless GcIncrementalMark.
  int GcMaxPauseMicros = 1000;

  //===--- Tiered adaptive recompilation -------------------------------===//
  // Two-tier execution: functions first compile under baselinePolicy() (a
  // fast, non-optimizing compile) and carry an invocation + loop-back-edge
  // hotness counter; crossing TierUpThreshold recompiles them under the
  // full policy and swaps the code-cache entry (re-entries of already
  // running activations keep the old code — there is no OSR).

  /// Enables the baseline tier + promotion pipeline. Off: every function is
  /// compiled under the full policy on its first call.
  bool TieredCompilation = false;
  /// Hotness count (invocations plus loop back-edges) at which baseline
  /// code is recompiled under the full policy. A threshold <= 0 skips the
  /// baseline tier entirely (equivalent to full-opt-first-call).
  int TierUpThreshold = 100;

  //===--- Background compilation ---------------------------------------===//
  // Off-thread tier-up: promotions run on the CompileQueue worker thread
  // against a locked snapshot of the lookup state and install at the next
  // interpreter safepoint, so the mutator never pays the optimizing
  // pipeline's latency inline. First-call (cold) compiles stay synchronous
  // in either mode — there is nothing to execute until they finish.

  /// Route tier-up recompiles through the background CompileQueue. Off
  /// (the default): promotions compile inline on the mutator, which keeps
  /// single-threaded runs fully deterministic.
  bool BackgroundCompile = false;
  /// Bounded depth of the background compile queue. A tier-up request that
  /// finds the queue full falls back to a synchronous inline promotion
  /// (backpressure); <= 0 saturates immediately, forcing the fallback path
  /// on every promotion.
  int BackgroundQueueCap = 16;

  //===--- Lazy basic-block versioning (third tier) ----------------------===//
  // A tier stacked above the optimizer: functions compile to an entry stub
  // plus a shared template; basic-block versions specialized to the
  // incoming type context materialize lazily the first time execution
  // reaches them, eliminating the type tests the context already proves.
  // Per-slot map type tags let field loads in typed contexts replace full
  // type tests with one-word guard-cell reads.

  /// Make BBV the top tier: first-call (or tier-up, under
  /// TieredCompilation) compiles produce lazily-versioned code instead of
  /// eagerly split optimized code. Off: the optimizer remains the top tier.
  bool BbvTier = false;
  /// Maximum specialized versions per basic block. A block whose cap is
  /// reached serves every further incoming context with a generic
  /// (empty-context) version; <= 1 degenerates to one generic version per
  /// block (lazy compilation without specialization).
  int BbvMaxVersions = 5;

  /// \returns the cheap first-tier policy derived from this one: every
  /// compiler optimization off (routing to the baseline code generator),
  /// customization and all dispatch-path knobs preserved so code-cache keys
  /// and send-site behaviour stay consistent across tiers.
  Policy baselinePolicy() const;

  /// Structural hash of every code-shaping knob (Name excluded): the policy
  /// component of the shared code tier's artifact key. Two isolates share
  /// compiled code only when their fingerprints match, so a renamed preset
  /// with equal flags still shares and any flag divergence forks the key.
  uint64_t fingerprint() const;

  static Policy st80();
  static Policy oldSelf();
  static Policy newSelf();

  /// The dispatch-path baseline: no inline caches, no global lookup cache,
  /// no compiler optimizations — every send walks the parent chain.
  static Policy pureInterp();

  //===--- Preset registry ----------------------------------------------===//
  // Every named configuration the project runs — the paper's three
  // systems, the dispatch/tier/engine/collector/background axes of the
  // differential matrix — lives in one registry instead of being
  // hand-rolled per harness. Tests and benches enumerate it by tag.

  /// The full registry, built once. Order is stable (paper systems first,
  /// then the matrix axes in the order they were introduced).
  static const std::vector<PolicyPreset> &presets();

  /// Looks up one preset by its registry name (e.g. "newself",
  /// "st80/nocache"). \returns nullptr when no preset has that name.
  static const PolicyPreset *preset(const std::string &Name);

  /// Environment-override builder: the one place process environment is
  /// allowed to reshape a Policy. MINISELF_GC_STRESS=1 forces the tiny
  /// promotion-eager nursery (4 KiB, age 1, 512 KiB full-GC threshold) so
  /// any suite can be re-run with scavenges mid-send; MINISELF_BG_COMPILE
  /// (0/1) forces background tier-up compilation off/on;
  /// MINISELF_GC_CONCURRENT (0/1) forces incremental SATB old-space
  /// marking off/on, so any suite can be re-run with mark cycles sliced
  /// across its safepoints. VirtualMachine applies this to every policy it
  /// is constructed with.
  static Policy fromEnv(Policy Base);
};

/// One named entry in the Policy preset registry.
struct PolicyPreset {
  /// Registry key, also the label differential failures report
  /// (e.g. "newself/tinytier").
  std::string Name;
  /// One-line description of what the configuration exercises.
  std::string Description;
  Policy P;
  /// Member of the differential-testing matrix (tests/harness/differential.h
  /// runs every InMatrix preset and asserts identical results).
  bool InMatrix = false;
  /// One of the three systems the paper compares (§6): st80, oldself,
  /// newself. Bench tables iterate these.
  bool PaperSystem = false;
};

/// Convenience filters over Policy::presets().
std::vector<const PolicyPreset *> matrixPresets();
std::vector<const PolicyPreset *> paperPresets();

} // namespace mself

#endif // MINISELF_COMPILER_POLICY_H
