//===-- compiler/type.h - The compile-time type lattice ---------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's type system (§3.1): a type is a non-empty set of values.
///
///   * Value          — a singleton set (compile-time constant object).
///                      Integer constants are represented as degenerate
///                      IntRange types instead, so every integer type
///                      carries range information.
///   * IntRange       — a set of sequential integer values; the integer
///                      "class type" is the full range.
///   * Class          — all values sharing one map (format + inheritance).
///   * Unknown        — all values; provides no information.
///   * Union          — set union of types.
///   * Difference     — set difference (from failed run-time type tests).
///   * Merge          — like a union, but remembers that the dilution came
///                      from a control-flow merge: it records the identity
///                      of each incoming branch's type, which is what makes
///                      message splitting possible (§4).
///
/// Types are immutable and allocated from a TypeContext arena.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_COMPILER_TYPE_H
#define MINISELF_COMPILER_TYPE_H

#include "vm/map.h"
#include "vm/value.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mself {

class World;
struct Node;
struct ScopeInst;
namespace ast {
struct BlockExpr;
} // namespace ast

class Type {
public:
  enum class Kind : uint8_t {
    Unknown,
    Value,
    IntRange,
    Class,
    Union,
    Difference,
    Merge,
    Closure, ///< A specific block literal from a specific inline context.
  };

  Kind kind() const { return K; }

  bool isUnknown() const { return K == Kind::Unknown; }
  bool isIntRange() const { return K == Kind::IntRange; }
  bool isMerge() const { return K == Kind::Merge; }
  bool isClosure() const { return K == Kind::Closure; }

  /// The constant for Value types / degenerate ranges, if any.
  std::optional<Value> constant() const;
  /// Inclusive integer bounds when every member is a small integer.
  std::optional<std::pair<int64_t, int64_t>> intRange() const;

  /// The single map every member of this type is guaranteed to have, or
  /// null. This is what permits compile-time message lookup (§3.2.2).
  Map *definiteMap(const World &W) const;

  /// True when no member of this type can be a small integer (used to
  /// prune impossible test branches).
  bool excludesInt(const World &W) const;
  /// True when no member can have map \p M.
  bool excludesMap(const World &W, Map *M) const;

  /// Structural equality.
  bool equals(const Type *O) const;

  /// Conservative subset test: true only when every member of \p Sub is
  /// provably a member of this type.
  bool contains(const World &W, const Type *Sub) const;

  /// Constituents of Union/Merge types.
  const std::vector<const Type *> &elems() const { return Elems; }
  /// The control-flow merge node a Merge type originated at.
  Node *mergeOrigin() const { return Origin; }

  const Type *diffBase() const { return Base; }
  const Type *diffSub() const { return Sub; }

  Value valueConstant() const { return V; }
  Map *classMap() const { return M; }
  const ast::BlockExpr *closureBlock() const { return ClosureB; }
  struct ScopeInst *closureInst() const { return ClosureI; }
  int64_t lo() const { return Lo; }
  int64_t hi() const { return Hi; }

  std::string describe() const;

private:
  friend class TypeContext;
  explicit Type(Kind K) : K(K) {}

  Kind K;
  Value V;                 ///< Value
  Map *M = nullptr;        ///< Class; also the constant's map for Value.
  int64_t Lo = 0, Hi = 0;  ///< IntRange
  std::vector<const Type *> Elems; ///< Union/Merge
  const Type *Base = nullptr, *Sub = nullptr; ///< Difference
  Node *Origin = nullptr;  ///< Merge
  const ast::BlockExpr *ClosureB = nullptr; ///< Closure
  struct ScopeInst *ClosureI = nullptr;     ///< Closure
};

/// Arena + factory for types used during one compilation.
class TypeContext {
public:
  explicit TypeContext(const World &W) : W(W) {}

  const Type *unknown();
  /// Constant type for \p V (integers become degenerate ranges).
  const Type *constantOf(Value V);
  const Type *intRange(int64_t Lo, int64_t Hi);
  const Type *intClass(); ///< The full small-integer range.
  /// Class type for \p M (the small-int map normalizes to intClass()).
  const Type *classOf(Map *M);
  const Type *unionOf(std::vector<const Type *> Elems);
  const Type *difference(const Type *Base, const Type *Sub);
  /// A specific block literal created in inline context \p Inst.
  const Type *closureOf(const ast::BlockExpr *B, ScopeInst *Inst);
  /// Merge type: \p PerPred holds the incoming type of each predecessor of
  /// \p Origin, in predecessor order. Collapses when all inputs are equal.
  const Type *mergeOf(Node *Origin, std::vector<const Type *> PerPred);

  /// The join used at normal merge nodes: equal types stay, different
  /// types form a merge type remembering both (§4).
  const Type *joinAtMerge(Node *Origin, std::vector<const Type *> PerPred);

  /// The loop-head join (§5.1): different value/subrange types within the
  /// same class generalize to the class type (when \p Generalize), other
  /// differences form a merge type.
  const Type *joinAtLoopHead(Node *Origin, const Type *HeadT,
                             const Type *TailT, bool Generalize);

  const World &world() const { return W; }

private:
  Type *make(Type::Kind K);
  const World &W;
  std::vector<std::unique_ptr<Type>> Arena;
  const Type *UnknownCache = nullptr;
};

} // namespace mself

#endif // MINISELF_COMPILER_TYPE_H
