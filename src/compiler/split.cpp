//===-- compiler/split.cpp - Extended message splitting ---------------------===//
//
// Extended message splitting (§4): when the receiver of a send has a merge
// type, the compiler may copy all the nodes between the diluting merge and
// the send, giving each copy the more specific type information of its
// branch so the send can be inlined separately on each. The old compiler
// could only do this when the send *immediately* followed the merge ("local
// splitting"); the threshold on copied nodes bounds code growth.
//
// Implementation: the merge's predecessors are partitioned by the receiver
// constituent's map; each group gets its own fresh merge node and a clone
// of the intervening node chain. Clones write the same vregs as the
// originals (the later re-merge is by register convergence), and each
// clone chain's types are recomputed by re-running the per-node transfer
// functions — which is also where copied type tests and overflow checks
// constant-fold away on the refined path.
//
//===----------------------------------------------------------------------===//

#include "compiler/analyze.h"

#include "bytecode/bytecode.h"
#include "support/stopwatch.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace mself;

namespace {

/// Accumulates the enclosing scope's CPU time into a CompileStats phase
/// field (trySplitAtMerge has many early returns).
struct PhaseTimer {
  double &Out;
  double T0;
  explicit PhaseTimer(double &Out) : Out(Out), T0(cpuTimeSeconds()) {}
  ~PhaseTimer() { Out += cpuTimeSeconds() - T0; }
};

} // namespace

bool Analyzer::trySplitAtMerge(const State &S, int Vreg,
                               std::vector<State> &Out) {
  PhaseTimer T(Stats.SplitSeconds);
  if (S.Dead)
    return false;
  const Type *MT = typeOf(S, Vreg);
  if (!MT->isMerge())
    return false;
  Node *M = MT->mergeOrigin();
  if (!M || M->Op != NodeOp::MergeNode || M->SplitUnsafe)
    return false;
  if (MT->elems().size() != M->Preds.size())
    return false; // Stale alignment (extra predecessors attached since).

  // Collect the (linear) chain of nodes from M to the current point.
  std::vector<Node *> Chain;
  std::vector<int> InSlot; // Slot through which each chain node is entered.
  Node *Cur = S.Tail;
  int CurSlot = S.Slot;
  std::vector<int> TakenSlot; // Successor slot the path takes out of node.
  while (Cur != M) {
    if (Cur->Preds.size() != 1)
      return false; // Inner joins: give up (only common-case chains copy).
    if (Cur->Op == NodeOp::MergeNode || Cur->Op == NodeOp::LoopHead)
      return false;
    Chain.push_back(Cur);
    TakenSlot.push_back(CurSlot);
    Node *Pred = Cur->Preds[0];
    int Slot = -1;
    for (int I = 0; I < Pred->numSuccs(); ++I)
      if (Pred->Succs[static_cast<size_t>(I)] == Cur) {
        Slot = I;
        break;
      }
    if (Slot < 0)
      return false;
    CurSlot = Slot;
    Cur = Pred;
    if (static_cast<int>(Chain.size()) > P.SplitThreshold)
      return false; // §4: bound the code growth.
  }
  std::reverse(Chain.begin(), Chain.end());
  std::reverse(TakenSlot.begin(), TakenSlot.end());
  if (!P.ExtendedSplitting && !Chain.empty())
    return false; // Local splitting reaches only adjacent sends.

  // Partition predecessors by the receiver constituent's definite map,
  // keeping groups in first-predecessor order (pointer-keyed maps would
  // make the compiled code nondeterministic).
  std::vector<std::pair<Map *, std::vector<size_t>>> Groups;
  for (size_t I = 0; I < MT->elems().size(); ++I) {
    Map *DM = MT->elems()[I]->definiteMap(W);
    bool Found = false;
    for (auto &G : Groups)
      if (G.first == DM) {
        G.second.push_back(I);
        Found = true;
        break;
      }
    if (!Found)
      Groups.push_back({DM, {I}});
  }
  if (Groups.size() < 2)
    return false;

  Stats.NodesCopied +=
      static_cast<int>(Chain.size()) * (static_cast<int>(Groups.size()) - 1);

  // Snapshot and detach M's incoming edges (aligned with MT->elems()).
  std::vector<Node *> MPreds = M->Preds;
  std::vector<int> MPredSlots(MPreds.size(), -1);
  for (size_t I = 0; I < MPreds.size(); ++I) {
    Node *Pn = MPreds[I];
    for (int SI = 0; SI < Pn->numSuccs(); ++SI)
      if (Pn->Succs[static_cast<size_t>(SI)] == M) {
        MPredSlots[I] = SI;
        Pn->Succs[static_cast<size_t>(SI)] = nullptr;
        break;
      }
    assert(MPredSlots[I] >= 0 && "merge predecessor edge not found");
  }
  M->Preds.clear(); // M and the original chain become unreachable.

  for (auto &[GroupMap, Idxs] : Groups) {
    (void)GroupMap;
    // Per-group merge joining just this group's predecessors.
    Node *Mg = G.newNode(NodeOp::MergeNode, 1);
    TypeMap GTypes;
    for (const auto &KV : M->TypesAt) {
      const Type *T = KV.second;
      if (T->isMerge() && T->mergeOrigin() == M &&
          T->elems().size() == MPreds.size()) {
        std::vector<const Type *> Per;
        Per.reserve(Idxs.size());
        for (size_t I : Idxs)
          Per.push_back(T->elems()[I]);
        GTypes[KV.first] = TC.mergeOf(Mg, std::move(Per));
      } else {
        GTypes[KV.first] = T;
      }
    }
    Mg->TypesAt = GTypes;
    for (size_t I : Idxs)
      G.connect(MPreds[I], MPredSlots[I], Mg);

    // Clone the chain, re-running the transfer functions with the group's
    // refined types; redundant tests fold away here.
    State St;
    St.Tail = Mg;
    St.Slot = 0;
    St.Types = std::move(GTypes);
    for (size_t CI = 0; CI < Chain.size() && !St.Dead; ++CI) {
      Node *Orig = Chain[CI];
      int Taken = TakenSlot[CI];
      Node *Clone = G.newNode(Orig->Op, Orig->numSuccs());
      Clone->Dst = Orig->Dst;
      Clone->A = Orig->A;
      Clone->B = Orig->B;
      Clone->C = Orig->C;
      Clone->Idx = Orig->Idx;
      Clone->Idx2 = Orig->Idx2;
      Clone->Arith = Orig->Arith;
      Clone->CondCode = Orig->CondCode;
      Clone->Val = Orig->Val;
      Clone->MapArg = Orig->MapArg;
      Clone->Sel = Orig->Sel;
      Clone->Prim = Orig->Prim;
      Clone->Args = Orig->Args;
      Clone->Block = Orig->Block;
      Clone->Inst = Orig->Inst;
      Clone->Msg = Orig->Msg;

      Transfer Tr = applyTransfer(Clone, Taken, St.Types);
      if (Tr == Transfer::Fold)
        continue; // Node proven unnecessary on this path; clone orphaned.

      G.connect(St.Tail, St.Slot, Clone);
      // Side exits (failure branches etc.) share the original targets.
      for (int SI = 0; SI < Clone->numSuccs(); ++SI) {
        if (SI == Taken && Tr != Transfer::DeadPath)
          continue;
        if (SI == Taken)
          continue; // DeadPath: the taken slot stays unconnected (Halt).
        Node *Target = Orig->Succs[static_cast<size_t>(SI)];
        if (!Target)
          continue;
        G.connect(Clone, SI, Target);
        if (Target->Op == NodeOp::MergeNode ||
            Target->Op == NodeOp::LoopHead)
          Target->SplitUnsafe = true;
      }
      if (Tr == Transfer::DeadPath) {
        St.Dead = true;
        break;
      }
      St.Tail = Clone;
      St.Slot = Taken;
    }
    Out.push_back(std::move(St));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Per-node transfer functions
//===----------------------------------------------------------------------===//

Analyzer::Transfer Analyzer::applyTransfer(Node *N, int Taken,
                                           TypeMap &T) {
  auto typeAt = [&](int V) -> const Type * {
    auto It = T.find(V);
    return It == T.end() ? TC.unknown() : It->second;
  };
  auto range = [&](int V) { return typeAt(V)->intRange(); };

  switch (N->Op) {
  case NodeOp::Const:
    T[N->Dst] = TC.constantOf(N->Val);
    return Transfer::Keep;
  case NodeOp::Move:
    T[N->Dst] = typeAt(N->A);
    return Transfer::Keep;
  case NodeOp::GetField:
  case NodeOp::GetFieldK:
  case NodeOp::VarGetOuter:
    T[N->Dst] = TC.unknown();
    return Transfer::Keep;
  case NodeOp::SetField:
  case NodeOp::SetFieldK:
  case NodeOp::VarSetOuter:
  case NodeOp::EnterScope:
  case NodeOp::ArrAtPut:
  case NodeOp::ArrAtPutRaw:
    return Transfer::Keep;
  case NodeOp::ArithRR: {
    auto RA = range(N->A), RB = range(N->B);
    const Type *Res = TC.intClass();
    if (P.RangeAnalysis && RA && RB) {
      // Recompute the interval; it was provably in range when emitted and
      // refinement only narrows it.
      int64_t Cands[4] = {0, 0, 0, 0};
      std::pair<int64_t, int64_t> Ps[4] = {{RA->first, RB->first},
                                           {RA->first, RB->second},
                                           {RA->second, RB->first},
                                           {RA->second, RB->second}};
      bool Ok = true;
      for (int I = 0; I < 4 && Ok; ++I) {
        switch (N->Arith) {
        case ArithKind::Add:
          Ok = !__builtin_add_overflow(Ps[I].first, Ps[I].second, &Cands[I]);
          break;
        case ArithKind::Sub:
          Ok = !__builtin_sub_overflow(Ps[I].first, Ps[I].second, &Cands[I]);
          break;
        case ArithKind::Mul:
          Ok = !__builtin_mul_overflow(Ps[I].first, Ps[I].second, &Cands[I]);
          break;
        default:
          Ok = false;
          break;
        }
      }
      if (Ok) {
        int64_t Lo = *std::min_element(Cands, Cands + 4);
        int64_t Hi = *std::max_element(Cands, Cands + 4);
        Res = TC.intRange(std::max(Lo, kMinSmallInt),
                          std::min(Hi, kMaxSmallInt));
      }
    }
    T[N->Dst] = Res;
    return Transfer::Keep;
  }
  case NodeOp::ArithCk: {
    if (Taken == 1) // Along the failure path nothing is defined.
      return Transfer::Keep;
    auto RA = range(N->A), RB = range(N->B);
    bool IsAddSubMul = N->Arith == ArithKind::Add ||
                       N->Arith == ArithKind::Sub ||
                       N->Arith == ArithKind::Mul;
    if (P.RangeAnalysis && IsAddSubMul && RA && RB) {
      int64_t Cands[4] = {0, 0, 0, 0};
      std::pair<int64_t, int64_t> Ps[4] = {{RA->first, RB->first},
                                           {RA->first, RB->second},
                                           {RA->second, RB->first},
                                           {RA->second, RB->second}};
      bool Ok = true;
      for (int I = 0; I < 4 && Ok; ++I) {
        switch (N->Arith) {
        case ArithKind::Add:
          Ok = !__builtin_add_overflow(Ps[I].first, Ps[I].second, &Cands[I]);
          break;
        case ArithKind::Sub:
          Ok = !__builtin_sub_overflow(Ps[I].first, Ps[I].second, &Cands[I]);
          break;
        default:
          Ok = !__builtin_mul_overflow(Ps[I].first, Ps[I].second, &Cands[I]);
          break;
        }
      }
      if (Ok) {
        int64_t Lo = *std::min_element(Cands, Cands + 4);
        int64_t Hi = *std::max_element(Cands, Cands + 4);
        if (Lo >= kMinSmallInt && Hi <= kMaxSmallInt) {
          // The refined ranges prove no overflow: relax to a raw op.
          N->Op = NodeOp::ArithRR;
          N->Succs.resize(1);
          ++Stats.ChecksEliminated;
          T[N->Dst] = TC.intRange(Lo, Hi);
          return Transfer::Keep;
        }
        T[N->Dst] = TC.intRange(std::max(Lo, kMinSmallInt),
                                std::min(Hi, kMaxSmallInt));
        return Transfer::Keep;
      }
    }
    T[N->Dst] = TC.intClass();
    return Transfer::Keep;
  }
  case NodeOp::CompareBr: {
    if (N->CondCode == Cond::IdEq || N->CondCode == Cond::IdNe) {
      auto CA = typeAt(N->A)->constant();
      auto CB = typeAt(N->B)->constant();
      if (CA && CB) {
        bool Eq = CA->identicalTo(*CB);
        bool GoesTrue = N->CondCode == Cond::IdEq ? Eq : !Eq;
        int Goes = GoesTrue ? 0 : 1;
        return Goes == Taken ? Transfer::Fold : Transfer::DeadPath;
      }
      return Transfer::Keep;
    }
    auto RA = range(N->A), RB = range(N->B);
    if (RA && RB && P.RangeAnalysis) {
      std::optional<bool> Known;
      switch (N->CondCode) {
      case Cond::Lt:
        if (RA->second < RB->first)
          Known = true;
        else if (RA->first >= RB->second)
          Known = false;
        break;
      case Cond::Le:
        if (RA->second <= RB->first)
          Known = true;
        else if (RA->first > RB->second)
          Known = false;
        break;
      case Cond::Gt:
        if (RA->first > RB->second)
          Known = true;
        else if (RA->second <= RB->first)
          Known = false;
        break;
      case Cond::Ge:
        if (RA->first >= RB->second)
          Known = true;
        else if (RA->second < RB->first)
          Known = false;
        break;
      case Cond::Eq:
        if (RA->second < RB->first || RA->first > RB->second)
          Known = false;
        else if (RA->first == RA->second && RA->first == RB->first &&
                 RB->first == RB->second)
          Known = true;
        break;
      case Cond::Ne:
        if (RA->second < RB->first || RA->first > RB->second)
          Known = true;
        else if (RA->first == RA->second && RA->first == RB->first &&
                 RB->first == RB->second)
          Known = false;
        break;
      default:
        break;
      }
      if (Known) {
        ++Stats.ChecksEliminated;
        int Goes = *Known ? 0 : 1;
        return Goes == Taken ? Transfer::Fold : Transfer::DeadPath;
      }
      // Refine the taken branch's operand ranges (§3.2.1).
      bool TrueSide = Taken == 0;
      int64_t ALo = RA->first, AHi = RA->second;
      int64_t BLo = RB->first, BHi = RB->second;
      switch (N->CondCode) {
      case Cond::Lt:
        if (TrueSide) {
          AHi = std::min(AHi, BHi - 1);
          BLo = std::max(BLo, ALo + 1);
        } else {
          ALo = std::max(ALo, BLo);
          BHi = std::min(BHi, AHi);
        }
        break;
      case Cond::Le:
        if (TrueSide) {
          AHi = std::min(AHi, BHi);
          BLo = std::max(BLo, ALo);
        } else {
          ALo = std::max(ALo, BLo + 1);
          BHi = std::min(BHi, AHi - 1);
        }
        break;
      case Cond::Gt:
        if (TrueSide) {
          ALo = std::max(ALo, BLo + 1);
          BHi = std::min(BHi, AHi - 1);
        } else {
          AHi = std::min(AHi, BHi);
          BLo = std::max(BLo, ALo);
        }
        break;
      case Cond::Ge:
        if (TrueSide) {
          ALo = std::max(ALo, BLo);
          BHi = std::min(BHi, AHi);
        } else {
          AHi = std::min(AHi, BHi - 1);
          BLo = std::max(BLo, ALo + 1);
        }
        break;
      case Cond::Eq:
        if (TrueSide) {
          ALo = BLo = std::max(ALo, BLo);
          AHi = BHi = std::min(AHi, BHi);
        }
        break;
      default:
        break;
      }
      if (ALo > AHi || BLo > BHi)
        return Transfer::DeadPath;
      T[N->A] = TC.intRange(ALo, AHi);
      T[N->B] = TC.intRange(BLo, BHi);
    }
    return Transfer::Keep;
  }
  case NodeOp::TestInt: {
    const Type *At = typeAt(N->A);
    if (At->definiteMap(W) == W.smallIntMap()) {
      ++Stats.ChecksEliminated;
      return Taken == 0 ? Transfer::Fold : Transfer::DeadPath;
    }
    if (At->excludesInt(W)) {
      if (Taken == 0)
        return Transfer::DeadPath;
      ++Stats.ChecksEliminated;
      return Transfer::Fold;
    }
    if (Taken == 0)
      T[N->A] = TC.intClass();
    else
      T[N->A] = TC.difference(At, TC.intClass());
    return Transfer::Keep;
  }
  case NodeOp::TestMap: {
    const Type *At = typeAt(N->A);
    if (At->definiteMap(W) == N->MapArg) {
      ++Stats.ChecksEliminated;
      return Taken == 0 ? Transfer::Fold : Transfer::DeadPath;
    }
    if (At->excludesMap(W, N->MapArg)) {
      if (Taken == 0)
        return Transfer::DeadPath;
      ++Stats.ChecksEliminated;
      return Transfer::Fold;
    }
    if (Taken == 0)
      T[N->A] = TC.classOf(N->MapArg);
    else
      T[N->A] = TC.difference(At, TC.classOf(N->MapArg));
    return Transfer::Keep;
  }
  case NodeOp::ArrAt:
  case NodeOp::ArrAtRaw:
    T[N->Dst] = TC.unknown();
    return Transfer::Keep;
  case NodeOp::ArrSize:
    T[N->Dst] = TC.intRange(0, int64_t(1) << 30);
    return Transfer::Keep;
  case NodeOp::SendNode:
    T[N->Dst] = TC.unknown();
    for (int V : EscapedVars)
      T[V] = TC.unknown();
    return Transfer::Keep;
  case NodeOp::PrimNode: {
    const Type *Res = TC.unknown();
    switch (N->Prim) {
    case PrimId::VectorNew:
    case PrimId::VectorNewFilling:
      Res = TC.classOf(W.arrayMap());
      break;
    case PrimId::Clone:
      if (Map *M = typeAt(N->Args[0])->definiteMap(W))
        Res = TC.classOf(M);
      break;
    case PrimId::StrCat:
      Res = TC.classOf(W.stringMap());
      break;
    case PrimId::Print:
    case PrimId::PrintLine:
      Res = typeAt(N->Args[0]);
      break;
    default:
      break;
    }
    T[N->Dst] = Res;
    for (int V : EscapedVars)
      T[V] = TC.unknown();
    return Transfer::Keep;
  }
  case NodeOp::VarGet: {
    int SlotVreg = N->Inst->VregBase + N->Idx;
    T[N->Dst] = EscapedVars.count(SlotVreg) ? TC.unknown()
                                            : typeAt(SlotVreg);
    return Transfer::Keep;
  }
  case NodeOp::VarSet: {
    int SlotVreg = N->Inst->VregBase + N->Idx;
    T[SlotVreg] = P.TrackLocalTypes && !EscapedVars.count(SlotVreg)
                      ? typeAt(N->A)
                      : TC.unknown();
    return Transfer::Keep;
  }
  case NodeOp::MakeBlockNode:
    T[N->Dst] = TC.closureOf(N->Block, N->Inst);
    return Transfer::Keep;
  case NodeOp::Start:
  case NodeOp::MergeNode:
  case NodeOp::LoopHead:
  case NodeOp::ReturnNode:
  case NodeOp::NLRetNode:
  case NodeOp::ErrorNode:
    assert(false && "join/terminal nodes never appear in a split chain");
    return Transfer::Keep;
  }
  return Transfer::Keep;
}
