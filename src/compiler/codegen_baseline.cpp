//===-- compiler/codegen_baseline.cpp - Non-optimizing code generator ------===//
//
// The ST-80-style baseline: a direct AST-to-bytecode walk. Every message is
// a dynamically-bound Send through an inline cache; every primitive is a
// full robust Prim call; every block literal materializes a closure; and
// control structures execute as real sends to boolean/block objects. This
// is the "fastest commercially available dynamically-typed implementation"
// point in the paper's comparison: dynamic translation with inline caches
// but no type analysis and no inlining.
//
//===----------------------------------------------------------------------===//

#include "compiler/compile.h"

#include "bytecode/peephole.h"
#include "compiler/emit.h"
#include "runtime/primitives.h"
#include "support/stopwatch.h"
#include "vm/object.h"

#include <cassert>
#include <set>

using namespace mself;
using namespace mself::ast;

namespace {

class BaselineCodegen {
public:
  BaselineCodegen(World &W, const Policy &P, const CompileRequest &Req)
      : W(W), P(P), Req(Req), OwnAccess(W, /*Background=*/false),
        Access(Req.Access ? Req.Access : &OwnAccess),
        Fn(std::make_unique<CompiledFunction>()), B(*Fn), Unit(Req.Source) {}

  std::unique_ptr<CompiledFunction> run() {
    // The whole baseline compile is one direct AST-to-bytecode walk; its
    // time lands in the emit phase of the compilation event log.
    double T0 = cpuTimeSeconds();
    Fn->Source = Unit;
    Fn->ReceiverMap = P.Customize ? Req.ReceiverMap : nullptr;
    Fn->IsBlockUnit = Req.IsBlockUnit;
    Fn->Name = Req.Name;
    Fn->NumArgs = Unit->NumArgs;

    allocFixedRegs();
    if (P.EscapeAnalysis)
      for (const Expr *E : Unit->Body)
        screenExpr(E);
    else
      AllBlocksArena = false;
    emitPrologue();
    emitBody();

    Fn->NumRegs = B.numRegs();
    if (P.Superinstructions)
      Fn->Stats.SuperFused =
          fuseSuperinstructions(*Fn, &Fn->Stats.MovesElided);
    Fn->Stats.EmitSeconds = cpuTimeSeconds() - T0;
    return std::move(Fn);
  }

private:
  World &W;
  const Policy &P;
  const CompileRequest &Req;
  CompileAccess OwnAccess; ///< Synchronous fallback when Req carries none.
  CompileAccess *Access;
  std::unique_ptr<CompiledFunction> Fn;
  FunctionBuilder B;
  const Code *Unit;

  std::vector<int> SlotRegs; ///< Per unit slot: register, or -1 (env).
  int IncomingEnv = -1;      ///< Block units: the captured environment.
  int OwnEnv = -1;           ///< This scope's environment, if it captures.
  int CurEnv = -1;           ///< Environment register var refs start from.

  /// The baseline has no send-graph analysis, so its escape screen is
  /// purely syntactic: a block literal whose sole use is as the receiver
  /// of a value-family send or an operand of whileTrue:/whileFalse: is
  /// run-and-discarded by the native intercepts — no lookup is involved,
  /// so no override can ever void the proof and no invalidation hook is
  /// needed. Everything else stays heap-allocated.
  std::set<const Expr *> ArenaBlocks;
  bool AllBlocksArena = true; ///< Every literal in the unit passed.

  /// Screens one expression tree; does not descend into block bodies
  /// (those compile as their own units with their own screen).
  void screenExpr(const Expr *E) {
    if (!E)
      return;
    switch (E->Kind) {
    case ExprKind::IntLit:
    case ExprKind::StrLit:
    case ExprKind::SelfRef:
    case ExprKind::VarGet:
      return;
    case ExprKind::VarSet:
      screenExpr(static_cast<const VarSet *>(E)->Val);
      return;
    case ExprKind::Send: {
      const auto *S = static_cast<const Send *>(E);
      const CommonSelectors &CS = W.selectors();
      bool IsLoop =
          S->Selector == CS.WhileTrue || S->Selector == CS.WhileFalse;
      bool RecvInvoked =
          S->Recv && S->Recv->Kind == ExprKind::BlockLit &&
          (S->Selector ==
               CS.valueSelector(static_cast<int>(S->Args.size())) ||
           IsLoop);
      if (RecvInvoked)
        ArenaBlocks.insert(S->Recv);
      else
        screenExpr(S->Recv);
      for (const Expr *A : S->Args) {
        if (IsLoop && A->Kind == ExprKind::BlockLit) {
          ArenaBlocks.insert(A); // The loop intercept runs it in-frame.
          continue;
        }
        screenExpr(A);
      }
      return;
    }
    case ExprKind::PrimCall: {
      const auto *Pc = static_cast<const PrimCall *>(E);
      screenExpr(Pc->Recv);
      for (const Expr *A : Pc->Args)
        screenExpr(A);
      if (Pc->OnFail)
        screenExpr(Pc->OnFail);
      return;
    }
    case ExprKind::BlockLit:
      // Reached only when the literal was not consumed by an invoking
      // send above: it flows somewhere we cannot bound.
      AllBlocksArena = false;
      return;
    case ExprKind::Return:
      screenExpr(static_cast<const Return *>(E)->Val);
      return;
    }
  }

  void allocFixedRegs() {
    int SelfReg = B.fixedReg();
    (void)SelfReg;
    assert(SelfReg == 0 && "self must be register 0");
    SlotRegs.assign(Unit->Slots.size(), -1);
    for (int I = 0; I < Unit->NumArgs; ++I) {
      int R = B.fixedReg();
      SlotRegs[static_cast<size_t>(I)] = R;
    }
    for (size_t I = static_cast<size_t>(Unit->NumArgs);
         I < Unit->Slots.size(); ++I)
      if (Unit->Slots[I].Storage == VarStorage::Reg)
        SlotRegs[I] = B.fixedReg();
    if (Req.IsBlockUnit) {
      IncomingEnv = B.fixedReg();
      Fn->IncomingEnvReg = IncomingEnv;
    }
    if (Unit->HasCaptured)
      OwnEnv = B.fixedReg();
    CurEnv = Unit->HasCaptured ? OwnEnv : IncomingEnv;
  }

  Value initValueOf(const Code::VarSlot &S) {
    if (S.InitIsInt)
      return Value::fromInt(S.InitInt);
    if (S.InitStr)
      return Access->stringLiteral(*S.InitStr);
    return W.nilValue();
  }

  void emitPrologue() {
    if (Unit->HasCaptured) {
      // If every closure in this unit is run-and-discard, the env they
      // capture cannot outlive the frame either.
      bool ArenaEnv = P.EscapeAnalysis && AllBlocksArena;
      if (ArenaEnv)
        ++Fn->Stats.EnvsArena;
      B.emit3(ArenaEnv ? Op::MakeEnvArena : Op::MakeEnv, OwnEnv,
              Unit->EnvSlotCount, IncomingEnv);
      // Captured arguments move from their incoming registers to the env.
      for (int I = 0; I < Unit->NumArgs; ++I) {
        const Code::VarSlot &S = Unit->Slots[static_cast<size_t>(I)];
        if (S.Storage == VarStorage::Env)
          B.emit4(Op::EnvSet, OwnEnv, 0, S.EnvIndex, 1 + I);
      }
    }
    // Initialize locals.
    for (size_t I = static_cast<size_t>(Unit->NumArgs);
         I < Unit->Slots.size(); ++I) {
      const Code::VarSlot &S = Unit->Slots[I];
      Value Init = initValueOf(S);
      if (S.Storage == VarStorage::Reg) {
        emitLoadValue(SlotRegs[I], Init);
      } else {
        int Mark = B.tempMark();
        int T = B.allocTemp();
        emitLoadValue(T, Init);
        B.emit4(Op::EnvSet, OwnEnv, 0, S.EnvIndex, T);
        B.resetTemps(Mark);
      }
    }
  }

  void emitLoadValue(int Dst, Value V) {
    if (V.isInt() && V.asInt() >= INT32_MIN && V.asInt() <= INT32_MAX) {
      B.emit2(Op::LoadInt, Dst, static_cast<int>(V.asInt()));
      return;
    }
    B.emit2(Op::LoadConst, Dst, B.literal(V));
  }

  void emitBody() {
    const std::vector<Expr *> &Body = Unit->Body;
    if (Body.empty()) {
      if (Req.IsBlockUnit) {
        int T = B.allocTemp();
        emitLoadValue(T, W.nilValue());
        B.emit1(Op::Return, T);
      } else {
        B.emit1(Op::Return, 0); // Empty methods return self.
      }
      return;
    }
    for (size_t I = 0; I + 1 < Body.size(); ++I) {
      int Mark = B.tempMark();
      eval(Body[I]);
      B.resetTemps(Mark);
    }
    int R = eval(Body.back());
    B.emit1(Op::Return, R);
  }

  int eval(const Expr *E) {
    switch (E->Kind) {
    case ExprKind::IntLit: {
      int T = B.allocTemp();
      emitLoadValue(T, Value::fromInt(static_cast<const IntLit *>(E)->Val));
      return T;
    }
    case ExprKind::StrLit: {
      int T = B.allocTemp();
      Value S = Access->stringLiteral(*static_cast<const StrLit *>(E)->Text);
      B.emit2(Op::LoadConst, T, B.literal(S));
      return T;
    }
    case ExprKind::SelfRef:
      return 0;
    case ExprKind::VarGet:
      return evalVarGet(static_cast<const VarGet *>(E));
    case ExprKind::VarSet:
      return evalVarSet(static_cast<const VarSet *>(E));
    case ExprKind::Send:
      return evalSend(static_cast<const Send *>(E));
    case ExprKind::PrimCall:
      return evalPrim(static_cast<const PrimCall *>(E));
    case ExprKind::BlockLit: {
      int T = B.allocTemp();
      bool ArenaBlk = P.EscapeAnalysis && ArenaBlocks.count(E) != 0;
      if (P.EscapeAnalysis)
        ++(ArenaBlk ? Fn->Stats.BlocksNonEscaping : Fn->Stats.BlocksEscaping);
      B.emit4(ArenaBlk ? Op::MakeBlockArena : Op::MakeBlock, T,
              B.blockIndex(static_cast<const BlockLit *>(E)->Block), CurEnv,
              0);
      return T;
    }
    case ExprKind::Return: {
      int V = eval(static_cast<const Return *>(E)->Val);
      B.emit1(Req.IsBlockUnit ? Op::NLRet : Op::Return, V);
      return V; // Unreachable afterwards; any register will do.
    }
    }
    assert(false && "unhandled expression kind");
    return 0;
  }

  /// \returns (EnvReg, Hops, Index) placement for an env-stored slot.
  void envPlacement(const Code *S, int SlotIndex, int &EnvReg, int &Hops,
                    int &Index) {
    const Code::VarSlot &V = S->Slots[static_cast<size_t>(SlotIndex)];
    assert(V.Storage == VarStorage::Env && "placement of a register slot");
    Index = V.EnvIndex;
    if (S == Unit) {
      EnvReg = OwnEnv;
      Hops = 0;
      return;
    }
    assert(CurEnv >= 0 && "outer variable access without an environment");
    EnvReg = CurEnv;
    Hops = Unit->EnvLevel - S->EnvLevel;
    assert(Hops >= 0 && "environment hop count cannot be negative");
  }

  int evalVarGet(const VarGet *E) {
    if (E->Scope == Unit &&
        Unit->Slots[static_cast<size_t>(E->SlotIndex)].Storage ==
            VarStorage::Reg)
      return SlotRegs[static_cast<size_t>(E->SlotIndex)];
    int EnvReg, Hops, Index;
    envPlacement(E->Scope, E->SlotIndex, EnvReg, Hops, Index);
    int T = B.allocTemp();
    B.emit4(Op::EnvGet, T, EnvReg, Hops, Index);
    return T;
  }

  int evalVarSet(const VarSet *E) {
    int V = eval(E->Val);
    // Copy into a fresh temp so the expression's value survives even if the
    // assigned location is written again within the same statement.
    int T = B.allocTemp();
    B.emit2(Op::Move, T, V);
    if (E->Scope == Unit &&
        Unit->Slots[static_cast<size_t>(E->SlotIndex)].Storage ==
            VarStorage::Reg) {
      B.emit2(Op::Move, SlotRegs[static_cast<size_t>(E->SlotIndex)], T);
      return T;
    }
    int EnvReg, Hops, Index;
    envPlacement(E->Scope, E->SlotIndex, EnvReg, Hops, Index);
    B.emit4(Op::EnvSet, EnvReg, Hops, Index, T);
    return T;
  }

  /// Evaluates receiver + args, then copies them into a fresh contiguous
  /// register window. \returns the window base.
  int buildWindow(const Expr *Recv, const std::vector<Expr *> &Args) {
    int RecvReg = Recv ? eval(Recv) : 0;
    std::vector<int> ArgRegs;
    ArgRegs.reserve(Args.size());
    for (const Expr *A : Args)
      ArgRegs.push_back(eval(A));
    int Win = B.allocTemp();
    for (size_t I = 0; I < Args.size(); ++I)
      B.allocTemp();
    B.emit2(Op::Move, Win, RecvReg);
    for (size_t I = 0; I < ArgRegs.size(); ++I)
      B.emit2(Op::Move, Win + 1 + static_cast<int>(I), ArgRegs[I]);
    return Win;
  }

  int evalSend(const Send *E) {
    int Win = buildWindow(E->Recv, E->Args);
    ++Fn->Stats.SendsDynamic;
    B.emit5(Op::Send, Win, B.selector(E->Selector), Win,
            static_cast<int>(E->Args.size()), B.cacheIndex());
    return Win;
  }

  int evalPrim(const PrimCall *E) {
    PrimId Id = E->Selector ? primIdFor(*E->Selector) : PrimId::Invalid;
    int Argc = static_cast<int>(E->Args.size());
    bool Valid = Id != PrimId::Invalid && primInfo(Id).Argc == Argc;

    int Win = buildWindow(E->Recv, E->Args);
    if (!Valid) {
      // Unknown primitive: executing it reports a runtime error.
      B.emit5(Op::Prim, Win, static_cast<int>(PrimId::Invalid), Win, 0, -1);
      return Win;
    }
    if (!E->OnFail) {
      B.emit5(Op::Prim, Win, static_cast<int>(Id), Win, Argc, -1);
      return Win;
    }
    B.emit(Op::Prim);
    B.operand(Win);
    B.operand(static_cast<int>(Id));
    B.operand(Win);
    B.operand(Argc);
    size_t FailAt = B.placeholder();
    B.emit(Op::Jump);
    size_t JoinAt = B.placeholder();
    // Failure path: evaluate the handler, send it `value`.
    B.patchHere(FailAt);
    {
      int Mark = B.tempMark();
      int H = eval(E->OnFail);
      int HWin = B.allocTemp();
      B.emit2(Op::Move, HWin, H);
      ++Fn->Stats.SendsDynamic;
      B.emit5(Op::Send, HWin, B.selector(W.selectors().Value), HWin, 0,
              B.cacheIndex());
      B.emit2(Op::Move, Win, HWin);
      B.resetTemps(Mark);
    }
    B.patchHere(JoinAt);
    return Win;
  }
};

} // namespace

std::unique_ptr<CompiledFunction>
mself::compileBaseline(World &W, const Policy &P, const CompileRequest &Req) {
  BaselineCodegen G(W, P, Req);
  return G.run();
}
