//===-- compiler/compile.h - Compiler entry point ---------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Entry point dispatching a CompileRequest to the configured compiler:
/// the baseline code generator (ST-80 policy: no inlining, every message a
/// dynamically-bound send) or the optimizing compiler (old/new SELF
/// policies: type analysis, inlining, splitting per the Policy flags).
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_COMPILER_COMPILE_H
#define MINISELF_COMPILER_COMPILE_H

#include "compiler/policy.h"
#include "interp/interp.h"

#include <memory>

namespace mself {

/// Compiles \p Req under \p P. Never fails: malformed requests compile to
/// code that reports a runtime error when executed.
std::unique_ptr<CompiledFunction>
compileFunction(World &W, const Policy &P, const CompileRequest &Req);

/// The non-optimizing code generator (used directly by the ST-80 policy and
/// as scaffolding for tests).
std::unique_ptr<CompiledFunction>
compileBaseline(World &W, const Policy &P, const CompileRequest &Req);

/// The optimizing compiler (type analysis, inlining, splitting, iterative
/// loop analysis; compiler/analyze.cpp).
std::unique_ptr<CompiledFunction>
compileOptimized(World &W, const Policy &P, const CompileRequest &Req);

} // namespace mself

#endif // MINISELF_COMPILER_COMPILE_H
