//===-- compiler/analyze.h - The optimizing compiler ------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Analyzer implements the paper's new compilation phase: it constructs
/// the control flow graph from ASTs while *simultaneously* performing type
/// analysis, message/primitive inlining, type prediction, local and
/// extended message splitting, and iterative type analysis for loops. Its
/// methods are spread over analyze.cpp (expressions, sends, primitives),
/// split.cpp (extended splitting and the per-node transfer functions), and
/// loops.cpp (iterative analysis and multi-version loops); lower.cpp turns
/// the finished graph into bytecode.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_COMPILER_ANALYZE_H
#define MINISELF_COMPILER_ANALYZE_H

#include "compiler/cfg.h"
#include "compiler/compile.h"
#include "compiler/policy.h"
#include "parser/ast.h"
#include "runtime/lookup.h"
#include "runtime/world.h"

#include <set>
#include <unordered_map>
#include <vector>

namespace mself {

class Analyzer {
public:
  Analyzer(World &W, const Policy &P, const CompileRequest &Req);

  std::unique_ptr<CompiledFunction> compile();

  /// One point in the analysis: where the next node attaches (Tail's
  /// successor slot Slot) and what the variables are known to hold there.
  struct State {
    Node *Tail = nullptr;
    int Slot = 0;
    TypeMap Types;
    /// Value provenance: temp vreg -> the variable (slot vreg) whose value
    /// it currently holds. A run-time type test on the temp then refines
    /// the *variable's* binding as well — the paper's type tests "alter
    /// the type bindings of their arguments" (§3.2.1), and variables are
    /// the bindings that persist across loop iterations.
    std::map<int, int> Prov;
    bool Dead = false;
  };

  /// Everything that depends on the inline nesting at an eval site.
  struct EvalCtx {
    ScopeInst *Inst = nullptr;
    int Depth = 0; ///< Inline nesting depth.
  };

private:
  friend std::unique_ptr<CompiledFunction>
  lowerGraph(World &W, const Policy &P, const CompileRequest &Req, Graph &G,
             int NumVregs, CompileStats Stats);

  //===--- plumbing (analyze.cpp) -----------------------------------------===//

  int newVreg() { return NextVreg++; }
  const Type *typeOf(const State &S, int Vreg) const;
  void setType(State &S, int Vreg, const Type *T);
  /// Refines \p Vreg's type and, when its provenance is intact, the
  /// originating variable's binding (only ever narrowing it).
  void refineType(State &S, int Vreg, const Type *T);
  /// \returns the slot vreg whose value \p Vreg holds, or -1.
  int provRoot(const State &S, int Vreg) const;
  /// Records that variable \p SlotVreg was (re)assigned: stale provenance
  /// entries rooted at it die; \p NewRoot (if >= 0) chains assignments.
  void noteVarWrite(State &S, int SlotVreg, int NewRoot);
  Node *emit(State &S, NodeOp Op, int NumSuccs);
  /// Forks a state onto successor slot \p Slot of branch node \p N.
  State forkState(const State &S, Node *N, int Slot) const;
  /// Terminates \p S with a runtime error.
  void emitError(State &S, const std::string &Msg);
  /// Joins states; alive inputs' \p ResultVregs are moved into one fresh
  /// vreg. \returns the joined state and sets \p ResultOut.
  State mergeStates(std::vector<State> States, std::vector<int> ResultVregs,
                    int &ResultOut);
  /// Marks the free variables of \p ClosureT's block escaped (their types
  /// become unknown and stay invalidated across dynamic calls).
  void escapeClosure(const Type *ClosureT);
  void escapeIfClosure(const State &S, int Vreg);
  /// After a dynamic send/prim: escaped variables may have been mutated.
  void invalidateEscaped(State &S);
  /// Collects (scope, slot) pairs of variables a block subtree assigns
  /// outside itself.
  void collectFreeWrites(const ast::Code *C,
                         std::set<std::pair<const ast::Code *, int>> &Out);
  void collectFreeReads(const ast::Code *C,
                        std::set<std::pair<const ast::Code *, int>> &Out);
  /// Resolves a (scope, slot) to its vreg through the instance chain.
  int resolveSlotVreg(ScopeInst *From, const ast::Code *Scope, int Slot) const;
  /// AST size of a code body, for the inline budget.
  int astSize(const ast::Code *C);
  /// Compile-time lookup with dependency tracking: performs the raw parent
  /// walk (recording every visited map in DepMaps — the shapes the result
  /// is specialized on) and warms the global lookup cache for the runtime.
  LookupResult compileLookup(Map *M, const std::string *Sel);
  /// True when \p C contains a block literal whose body performs `^`:
  /// such methods are never inlined (an escaping block could not target
  /// the merged activation with its non-local return).
  bool hasNLRBlock(const ast::Code *C);

  //===--- expressions and sends (analyze.cpp) ----------------------------===//

  int evalBody(State &S, const ast::Code *C, EvalCtx &Ctx);
  int evalExpr(State &S, const ast::Expr *E, EvalCtx &Ctx);
  int evalSend(State &S, int RecvVreg, const std::string *Sel,
               const std::vector<int> &Args, EvalCtx &Ctx,
               bool AllowPrediction = true);
  int evalPrim(State &S, const ast::PrimCall *E, EvalCtx &Ctx);
  int inlineMethod(State &S, const ast::Code *Body, const std::string *Sel,
                   int RecvVreg, const std::vector<int> &Args, EvalCtx &Ctx);
  int inlineBlockBody(State &S, const Type *ClosureT, int ClosureVreg,
                      const std::vector<int> &Args, EvalCtx &Ctx);
  /// Emits a dynamically-bound send. \p CalleeBody records the statically
  /// resolved (but not inlined) callee for the escape classifier.
  int emitDynamicSend(State &S, int RecvVreg, const std::string *Sel,
                      const std::vector<int> &Args,
                      const ast::Code *CalleeBody = nullptr);
  /// Splits control on a boolean-valued vreg: \returns true/false states.
  std::pair<State, State> branchOnBoolean(State S, int CondVreg,
                                          EvalCtx &Ctx);
  /// The arithmetic/comparison primitive bodies.
  int evalIntArith(State &S, ArithKind K, int RecvVreg, int ArgVreg,
                   const ast::Expr *OnFail, EvalCtx &Ctx);
  int evalIntCompare(State &S, Cond C, int RecvVreg, int ArgVreg,
                     const ast::Expr *OnFail, EvalCtx &Ctx);
  /// Runs the failure handler (inlining literal blocks). \returns result.
  int evalFailHandler(State &S, const ast::Expr *OnFail, EvalCtx &Ctx);
  /// Ensures \p Vreg holds a small int, branching to the failure handler
  /// otherwise. Folds to nothing when the type proves it. Returns the fail
  /// state (possibly dead) through \p FailStates/\p FailResults.
  void requireInt(State &S, int Vreg, const ast::Expr *OnFail, EvalCtx &Ctx,
                  std::vector<State> &FailStates,
                  std::vector<int> &FailResults);
  void requireMap(State &S, int Vreg, Map *M, const ast::Expr *OnFail,
                  EvalCtx &Ctx, std::vector<State> &FailStates,
                  std::vector<int> &FailResults);

  //===--- splitting (split.cpp) ------------------------------------------===//

  /// Extended (and local) message splitting (§4): if \p Vreg's type at \p S
  /// is a merge type whose origin merge is close enough, repartition the
  /// merge's predecessors and clone the intervening nodes, producing one
  /// state per constituent group with refined types.
  bool trySplitAtMerge(const State &S, int Vreg, std::vector<State> &Out);

  enum class Transfer : uint8_t {
    Keep,     ///< Node stays; types updated.
    Fold,     ///< Node proven unnecessary on this path; skip it.
    DeadPath, ///< This path cannot continue through the taken successor.
  };
  /// Recomputes types across \p N when its taken successor is \p TakenSlot.
  /// \p N may be mutated (e.g. checked arithmetic relaxed to raw) when the
  /// recomputed types prove a check redundant.
  Transfer applyTransfer(Node *N, int TakenSlot, TypeMap &Types);

  //===--- loops (loops.cpp) -----------------------------------------------===//

  int buildWhileLoop(State &S, const Type *CondClosure, int CondVreg,
                     const Type *BodyClosure, int BodyVreg, bool Until,
                     EvalCtx &Ctx);

  struct ReturnCollector;
  struct LoopVersion {
    Node *Head = nullptr;
    TypeMap Bindings;
  };
  /// Analyzes one pass of condition + body from \p Head. Appends exit
  /// states to \p Exits; \returns the loop-tail state (dead if the body
  /// never reaches the back edge).
  State analyzeLoopBody(Node *Head, const TypeMap &Bindings,
                        const Type *CondClosure, int CondVreg,
                        const Type *BodyClosure, int BodyVreg, bool Until,
                        EvalCtx &Ctx, std::vector<State> &Exits);
  /// Snapshot of every active return collector's length, used to roll
  /// back `^` states recorded inside a discarded loop analysis pass.
  std::vector<std::pair<ReturnCollector *, size_t>> captureReturnMarks();
  void rollbackReturns(
      const std::vector<std::pair<ReturnCollector *, size_t>> &Marks);
  /// The paper's compatibility rule (§5.2).
  bool headCompatible(const TypeMap &Head, const TypeMap &Tail,
                      bool Relaxed) const;
  TypeMap generalizeBindings(const TypeMap &Head, const TypeMap &Tail);

  //===--- members ----------------------------------------------------------===//

  World &W;
  const Policy &P;
  CompileRequest Req;
  /// Fallback synchronous world access, used when the request carries none;
  /// Access points either here or at the request's (background) mediator.
  CompileAccess OwnAccess;
  CompileAccess *Access;
  TypeContext TC;
  Graph G;
  CompileStats Stats;

  int NextVreg = 0;
  ScopeInst *RootInst = nullptr;
  /// Maps walked by compile-time lookups: the compiled function's shape
  /// dependencies (CompiledFunction::DependsOnMaps).
  std::set<Map *> DepMaps;
  std::set<int> EscapedVars;
  std::set<int> SlotVregSet; ///< Every vreg that backs a variable slot.
  std::vector<const ast::Code *> InlineStack;

  /// Return collectors for the method bodies currently being inlined.
  struct ReturnCollector {
    std::vector<State> States;
    std::vector<int> Results;
  };
  std::unordered_map<const ScopeInst *, ReturnCollector *> ActiveReturns;
  std::unordered_map<const ast::Code *, int> AstSizeCache;
  std::unordered_map<const ast::Code *, bool> NLRBlockCache;
};

/// Lowers a finished graph to bytecode (lower.cpp).
std::unique_ptr<CompiledFunction> lowerGraph(World &W, const Policy &P,
                                             const CompileRequest &Req,
                                             Graph &G, int NumVregs,
                                             CompileStats Stats);

} // namespace mself

#endif // MINISELF_COMPILER_ANALYZE_H
