//===-- compiler/analyze.cpp - Type analysis, inlining, prediction ---------===//
//
// The core of the paper: the compiler walks the AST, building the control
// flow graph and the type bindings together. Message sends with receivers
// of known map are looked up and inlined at compile time (§3.2.2);
// primitives are opened up into type tests + raw operations and the tests
// are folded away when the types prove them (§3.2.3); unknown receivers of
// arithmetic selectors are type-predicted behind a run-time test; merge
// types trigger message splitting (split.cpp) and loops run the iterative
// analysis (loops.cpp).
//
//===----------------------------------------------------------------------===//

#include "compiler/analyze.h"

#include "bytecode/bytecode.h"
#include "runtime/selector.h"
#include "support/stopwatch.h"
#include "vm/object.h"

#include <algorithm>
#include <cassert>

using namespace mself;
using namespace mself::ast;

//===----------------------------------------------------------------------===//
// Local type helpers
//===----------------------------------------------------------------------===//

namespace {

/// Integer hull of a type, looking through merges/unions.
std::optional<std::pair<int64_t, int64_t>> rangeHull(const Type *T) {
  if (auto R = T->intRange())
    return R;
  if (T->kind() == Type::Kind::Merge || T->kind() == Type::Kind::Union) {
    int64_t Lo = kMaxSmallInt, Hi = kMinSmallInt;
    for (const Type *E : T->elems()) {
      auto R = rangeHull(E);
      if (!R)
        return std::nullopt;
      Lo = std::min(Lo, R->first);
      Hi = std::max(Hi, R->second);
    }
    return std::make_pair(Lo, Hi);
  }
  return std::nullopt;
}

} // namespace

//===----------------------------------------------------------------------===//
// Construction and plumbing
//===----------------------------------------------------------------------===//

Analyzer::Analyzer(World &W, const Policy &P, const CompileRequest &Req)
    : W(W), P(P), Req(Req), OwnAccess(W, /*Background=*/false),
      Access(this->Req.Access ? this->Req.Access : &OwnAccess), TC(W) {}

const Type *Analyzer::typeOf(const State &S, int Vreg) const {
  auto It = S.Types.find(Vreg);
  if (It == S.Types.end())
    return const_cast<TypeContext &>(TC).unknown();
  return It->second;
}

void Analyzer::setType(State &S, int Vreg, const Type *T) {
  S.Types[Vreg] = T;
}

int Analyzer::provRoot(const State &S, int Vreg) const {
  auto It = S.Prov.find(Vreg);
  if (It != S.Prov.end())
    return It->second;
  return SlotVregSet.count(Vreg) ? Vreg : -1;
}

void Analyzer::refineType(State &S, int Vreg, const Type *T) {
  setType(S, Vreg, T);
  // Walk the provenance chain (temp -> inlined callee's argument ->
  // caller's variable ...): every link holds the very value just tested,
  // so each variable's binding narrows too (never widening a binding that
  // is already more precise).
  int Cur = Vreg;
  for (int Guard = 0; Guard < 16; ++Guard) {
    auto It = S.Prov.find(Cur);
    if (It == S.Prov.end())
      break;
    int Root = It->second;
    if (Root == Cur || EscapedVars.count(Root))
      break;
    const Type *RootT = typeOf(S, Root);
    if (RootT->contains(W, T) && !RootT->equals(T))
      setType(S, Root, T);
    Cur = Root;
  }
}

void Analyzer::noteVarWrite(State &S, int SlotVreg, int NewRoot) {
  S.Prov.erase(SlotVreg);
  for (auto It = S.Prov.begin(); It != S.Prov.end();)
    if (It->second == SlotVreg)
      It = S.Prov.erase(It);
    else
      ++It;
  if (NewRoot >= 0 && NewRoot != SlotVreg)
    S.Prov[SlotVreg] = NewRoot;
}

Node *Analyzer::emit(State &S, NodeOp Op, int NumSuccs) {
  Node *N = G.newNode(Op, NumSuccs);
  if (!S.Dead) {
    G.connect(S.Tail, S.Slot, N);
    S.Tail = N;
    S.Slot = 0;
  }
  return N;
}

Analyzer::State Analyzer::forkState(const State &S, Node *N, int Slot) const {
  State F;
  F.Tail = N;
  F.Slot = Slot;
  F.Types = S.Types;
  F.Dead = S.Dead;
  return F;
}

void Analyzer::emitError(State &S, const std::string &Msg) {
  if (S.Dead)
    return;
  Node *N = emit(S, NodeOp::ErrorNode, 0);
  N->Msg = Msg;
  S.Dead = true;
}

Analyzer::State Analyzer::mergeStates(std::vector<State> States,
                                      std::vector<int> ResultVregs,
                                      int &ResultOut) {
  assert((ResultVregs.empty() || ResultVregs.size() == States.size()) &&
         "result vreg list must match state list");
  bool WantResult = !ResultVregs.empty();
  ResultOut = WantResult ? newVreg() : -1;

  std::vector<size_t> Alive;
  for (size_t I = 0; I < States.size(); ++I)
    if (!States[I].Dead)
      Alive.push_back(I);

  if (Alive.empty()) {
    State DeadS;
    DeadS.Dead = true;
    return DeadS;
  }

  // Route each alive state's result into the common vreg.
  if (WantResult) {
    for (size_t I : Alive) {
      Node *Mv = emit(States[I], NodeOp::Move, 1);
      Mv->Dst = ResultOut;
      Mv->A = ResultVregs[I];
      setType(States[I], ResultOut, typeOf(States[I], ResultVregs[I]));
    }
  }

  if (Alive.size() == 1)
    return States[Alive[0]];

  // Provenance survives a merge only when every incoming path agrees.
  std::map<int, int> MergedProv = States[Alive[0]].Prov;
  for (size_t I = 1; I < Alive.size(); ++I) {
    const auto &Other = States[Alive[I]].Prov;
    for (auto It = MergedProv.begin(); It != MergedProv.end();) {
      auto Oit = Other.find(It->first);
      if (Oit == Other.end() || Oit->second != It->second)
        It = MergedProv.erase(It);
      else
        ++It;
    }
  }

  Node *M = G.newNode(NodeOp::MergeNode, 1);
  TypeMap Joined;
  // Join over the union of tracked vregs, predecessor by predecessor.
  std::set<int> Keys;
  for (size_t I : Alive)
    for (const auto &KV : States[I].Types)
      Keys.insert(KV.first);
  for (int K : Keys) {
    std::vector<const Type *> PerPred;
    PerPred.reserve(Alive.size());
    for (size_t I : Alive)
      PerPred.push_back(typeOf(States[I], K));
    Joined[K] = TC.joinAtMerge(M, std::move(PerPred));
  }
  for (size_t I : Alive)
    G.addMergePred(M, States[I].Tail, States[I].Slot);
  M->TypesAt = Joined;

  State Out;
  Out.Tail = M;
  Out.Slot = 0;
  Out.Types = std::move(Joined);
  Out.Prov = std::move(MergedProv);
  return Out;
}

//===----------------------------------------------------------------------===//
// Escape analysis for closures
//===----------------------------------------------------------------------===//

void Analyzer::collectFreeWrites(
    const Code *C, std::set<std::pair<const Code *, int>> &Out) {
  struct Walker {
    const Code *Root;
    std::set<std::pair<const Code *, int>> &Out;
    void walkCode(const Code *C) {
      for (const Expr *E : C->Body)
        walk(E);
    }
    void walk(const Expr *E) {
      switch (E->Kind) {
      case ExprKind::VarSet: {
        const auto *V = static_cast<const VarSet *>(E);
        Out.insert({V->Scope, V->SlotIndex});
        walk(V->Val);
        break;
      }
      case ExprKind::Send: {
        const auto *S = static_cast<const Send *>(E);
        if (S->Recv)
          walk(S->Recv);
        for (const Expr *A : S->Args)
          walk(A);
        break;
      }
      case ExprKind::PrimCall: {
        const auto *Pc = static_cast<const PrimCall *>(E);
        walk(Pc->Recv);
        for (const Expr *A : Pc->Args)
          walk(A);
        if (Pc->OnFail)
          walk(Pc->OnFail);
        break;
      }
      case ExprKind::BlockLit:
        walkCode(&static_cast<const BlockLit *>(E)->Block->Body);
        break;
      case ExprKind::Return:
        walk(static_cast<const Return *>(E)->Val);
        break;
      default:
        break;
      }
    }
  };
  Walker Wk{C, Out};
  Wk.walkCode(C);
  // Keep only writes that leave the block subtree itself: scopes outside C
  // and not lexically inside it. A scope is inside C iff walking its
  // lexical parents reaches C.
  for (auto It = Out.begin(); It != Out.end();) {
    const Code *S = It->first;
    bool Inside = false;
    for (const Code *Cur = S; Cur; Cur = Cur->LexicalParent)
      if (Cur == C) {
        Inside = true;
        break;
      }
    if (Inside)
      It = Out.erase(It);
    else
      ++It;
  }
}

void Analyzer::collectFreeReads(
    const Code *C, std::set<std::pair<const Code *, int>> &Out) {
  // For escape purposes reads matter too (the escaping block observes the
  // variable), but only writes invalidate our types; we reuse the write
  // collector and additionally pick up VarGet nodes.
  struct Walker {
    std::set<std::pair<const Code *, int>> &Out;
    void walkCode(const Code *C) {
      for (const Expr *E : C->Body)
        walk(E);
    }
    void walk(const Expr *E) {
      switch (E->Kind) {
      case ExprKind::VarGet: {
        const auto *V = static_cast<const VarGet *>(E);
        Out.insert({V->Scope, V->SlotIndex});
        break;
      }
      case ExprKind::VarSet: {
        const auto *V = static_cast<const VarSet *>(E);
        Out.insert({V->Scope, V->SlotIndex});
        walk(V->Val);
        break;
      }
      case ExprKind::Send: {
        const auto *S = static_cast<const Send *>(E);
        if (S->Recv)
          walk(S->Recv);
        for (const Expr *A : S->Args)
          walk(A);
        break;
      }
      case ExprKind::PrimCall: {
        const auto *Pc = static_cast<const PrimCall *>(E);
        walk(Pc->Recv);
        for (const Expr *A : Pc->Args)
          walk(A);
        if (Pc->OnFail)
          walk(Pc->OnFail);
        break;
      }
      case ExprKind::BlockLit:
        walkCode(&static_cast<const BlockLit *>(E)->Block->Body);
        break;
      case ExprKind::Return:
        walk(static_cast<const Return *>(E)->Val);
        break;
      default:
        break;
      }
    }
  };
  Walker Wk{Out};
  Wk.walkCode(C);
}

int Analyzer::resolveSlotVreg(ScopeInst *From, const Code *Scope,
                              int Slot) const {
  for (ScopeInst *I = From; I; I = I->ParentInst)
    if (I->Scope == Scope)
      return I->VregBase + Slot;
  return -1;
}

void Analyzer::escapeClosure(const Type *ClosureT) {
  if (!ClosureT->isClosure())
    return;
  const Code *C = &ClosureT->closureBlock()->Body;
  std::set<std::pair<const Code *, int>> Writes;
  collectFreeWrites(C, Writes);
  for (const auto &WSlot : Writes) {
    int V = resolveSlotVreg(ClosureT->closureInst(), WSlot.first,
                            WSlot.second);
    if (V >= 0)
      EscapedVars.insert(V);
  }
}

void Analyzer::escapeIfClosure(const State &S, int Vreg) {
  const Type *T = typeOf(S, Vreg);
  if (T->isClosure()) {
    escapeClosure(T);
    return;
  }
  if (T->isMerge() || T->kind() == Type::Kind::Union)
    for (const Type *E : T->elems())
      if (E->isClosure())
        escapeClosure(E);
}

void Analyzer::invalidateEscaped(State &S) {
  for (int V : EscapedVars) {
    S.Types[V] = TC.unknown();
    S.Prov.erase(V);
  }
  for (auto It = S.Prov.begin(); It != S.Prov.end();)
    if (EscapedVars.count(It->second))
      It = S.Prov.erase(It);
    else
      ++It;
}

int Analyzer::astSize(const Code *C) {
  auto It = AstSizeCache.find(C);
  if (It != AstSizeCache.end())
    return It->second;
  struct Counter {
    int N = 0;
    void walkCode(const Code *C) {
      for (const Expr *E : C->Body)
        walk(E);
    }
    void walk(const Expr *E) {
      ++N;
      switch (E->Kind) {
      case ExprKind::VarSet:
        walk(static_cast<const VarSet *>(E)->Val);
        break;
      case ExprKind::Send: {
        const auto *S = static_cast<const Send *>(E);
        if (S->Recv)
          walk(S->Recv);
        for (const Expr *A : S->Args)
          walk(A);
        break;
      }
      case ExprKind::PrimCall: {
        const auto *Pc = static_cast<const PrimCall *>(E);
        walk(Pc->Recv);
        for (const Expr *A : Pc->Args)
          walk(A);
        if (Pc->OnFail)
          walk(Pc->OnFail);
        break;
      }
      case ExprKind::BlockLit:
        walkCode(&static_cast<const BlockLit *>(E)->Block->Body);
        break;
      case ExprKind::Return:
        walk(static_cast<const Return *>(E)->Val);
        break;
      default:
        break;
      }
    }
  };
  Counter Cnt;
  Cnt.walkCode(C);
  AstSizeCache[C] = Cnt.N;
  return Cnt.N;
}

bool Analyzer::hasNLRBlock(const Code *C) {
  auto It = NLRBlockCache.find(C);
  if (It != NLRBlockCache.end())
    return It->second;
  struct Finder {
    bool Found = false;
    void walkCode(const Code *C, bool InBlock) {
      for (const Expr *E : C->Body)
        walk(E, InBlock);
    }
    void walk(const Expr *E, bool InBlock) {
      if (Found)
        return;
      switch (E->Kind) {
      case ExprKind::Return:
        if (InBlock)
          Found = true;
        else
          walk(static_cast<const Return *>(E)->Val, InBlock);
        break;
      case ExprKind::VarSet:
        walk(static_cast<const VarSet *>(E)->Val, InBlock);
        break;
      case ExprKind::Send: {
        const auto *S = static_cast<const Send *>(E);
        if (S->Recv)
          walk(S->Recv, InBlock);
        for (const Expr *A : S->Args)
          walk(A, InBlock);
        break;
      }
      case ExprKind::PrimCall: {
        const auto *Pc = static_cast<const PrimCall *>(E);
        walk(Pc->Recv, InBlock);
        for (const Expr *A : Pc->Args)
          walk(A, InBlock);
        if (Pc->OnFail)
          walk(Pc->OnFail, InBlock);
        break;
      }
      case ExprKind::BlockLit:
        walkCode(&static_cast<const BlockLit *>(E)->Block->Body, true);
        break;
      default:
        break;
      }
    }
  };
  Finder F;
  F.walkCode(C, false);
  NLRBlockCache[C] = F.Found;
  return F.Found;
}

//===----------------------------------------------------------------------===//
// Compilation driver
//===----------------------------------------------------------------------===//

LookupResult Analyzer::compileLookup(Map *M, const std::string *Sel) {
  std::vector<Map *> Walked;
  LookupResult R = Access->lookup(M, Sel, &Walked);
  DepMaps.insert(Walked.begin(), Walked.end());
  return R;
}

std::unique_ptr<CompiledFunction> Analyzer::compile() {
  double T0 = cpuTimeSeconds();
  const Code *Unit = Req.Source;
  Node *Start = G.newNode(NodeOp::Start, 1);
  G.setStart(Start);

  // vreg 0 = self; slot K of the unit scope = vreg 1 + K.
  NextVreg = 1 + static_cast<int>(Unit->Slots.size());
  RootInst = G.newInst(Unit, nullptr, 1, 0);
  for (size_t K = 0; K < Unit->Slots.size(); ++K)
    SlotVregSet.insert(1 + static_cast<int>(K));

  State S;
  S.Tail = Start;
  S.Slot = 0;

  // Customization (§2): the receiver's map is a compile-time constant.
  setType(S, 0, Req.ReceiverMap && P.Customize ? TC.classOf(Req.ReceiverMap)
                                               : TC.unknown());
  for (int I = 0; I < Unit->NumArgs; ++I)
    setType(S, 1 + I, TC.unknown());

  EvalCtx Ctx;
  Ctx.Inst = RootInst;
  Ctx.Depth = 0;

  if (Unit->HasCaptured) {
    Node *Es = emit(S, NodeOp::EnterScope, 1);
    Es->Inst = RootInst;
  }

  // Locals are initialized to compile-time constants (§3.2.1): that is the
  // analyzer's seed type information.
  for (size_t K = static_cast<size_t>(Unit->NumArgs); K < Unit->Slots.size();
       ++K) {
    const Code::VarSlot &Slot = Unit->Slots[K];
    Value Init = Slot.InitIsInt ? Value::fromInt(Slot.InitInt)
                 : Slot.InitStr
                     ? Access->stringLiteral(*Slot.InitStr)
                     : W.nilValue();
    int T = newVreg();
    Node *C = emit(S, NodeOp::Const, 1);
    C->Dst = T;
    C->Val = Init;
    setType(S, T, TC.constantOf(Init));
    int SlotVreg = RootInst->VregBase + static_cast<int>(K);
    if (Slot.Storage == VarStorage::Env) {
      Node *Vs = emit(S, NodeOp::VarSet, 1);
      Vs->Inst = RootInst;
      Vs->Idx = static_cast<int>(K);
      Vs->A = T;
    } else {
      Node *Mv = emit(S, NodeOp::Move, 1);
      Mv->Dst = SlotVreg;
      Mv->A = T;
    }
    setType(S, SlotVreg,
            P.TrackLocalTypes ? TC.constantOf(Init) : TC.unknown());
  }

  // The root method body collects its early returns like any inlined one.
  ReturnCollector RootReturns;
  bool IsMethodRoot = Unit->Depth == 0;
  if (IsMethodRoot)
    ActiveReturns[RootInst] = &RootReturns;
  InlineStack.push_back(Unit);

  int Last = evalBody(S, Unit, Ctx);

  InlineStack.pop_back();
  if (IsMethodRoot)
    ActiveReturns.erase(RootInst);

  // Default result: last statement (methods with empty bodies return self,
  // blocks return nil).
  int DefaultResult;
  if (Last >= 0) {
    DefaultResult = Last;
  } else if (Req.IsBlockUnit) {
    DefaultResult = newVreg();
    Node *C = emit(S, NodeOp::Const, 1);
    C->Dst = DefaultResult;
    C->Val = W.nilValue();
  } else {
    DefaultResult = 0;
  }

  std::vector<State> Ends = std::move(RootReturns.States);
  std::vector<int> Results = std::move(RootReturns.Results);
  Ends.push_back(std::move(S));
  Results.push_back(DefaultResult);
  int FinalVreg = -1;
  State End = mergeStates(std::move(Ends), std::move(Results), FinalVreg);
  if (!End.Dead) {
    Node *Ret = emit(End, NodeOp::ReturnNode, 0);
    Ret->A = FinalVreg;
  }

  // Analysis time excludes splitting (accumulated separately inside
  // trySplitAtMerge) so the event log's phase breakdown is disjoint;
  // lowerGraph fills the lower/emit phases.
  Stats.AnalyzeSeconds = (cpuTimeSeconds() - T0) - Stats.SplitSeconds;
  auto Fn = lowerGraph(W, P, Req, G, NextVreg, Stats);
  Fn->DependsOnMaps.assign(DepMaps.begin(), DepMaps.end());
  return Fn;
}

int Analyzer::evalBody(State &S, const Code *C, EvalCtx &Ctx) {
  int Last = -1;
  for (const Expr *E : C->Body) {
    if (S.Dead)
      break;
    Last = evalExpr(S, E, Ctx);
  }
  return Last;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

int Analyzer::evalExpr(State &S, const Expr *E, EvalCtx &Ctx) {
  if (S.Dead)
    return newVreg();
  switch (E->Kind) {
  case ExprKind::IntLit: {
    int T = newVreg();
    Node *N = emit(S, NodeOp::Const, 1);
    N->Dst = T;
    N->Val = Value::fromInt(static_cast<const IntLit *>(E)->Val);
    setType(S, T, TC.constantOf(N->Val));
    return T;
  }
  case ExprKind::StrLit: {
    int T = newVreg();
    Node *N = emit(S, NodeOp::Const, 1);
    N->Dst = T;
    N->Val =
        Access->stringLiteral(*static_cast<const StrLit *>(E)->Text);
    setType(S, T, TC.constantOf(N->Val));
    return T;
  }
  case ExprKind::SelfRef:
    return Ctx.Inst->SelfVreg;
  case ExprKind::VarGet: {
    const auto *V = static_cast<const VarGet *>(E);
    int SlotVreg = resolveSlotVreg(Ctx.Inst, V->Scope, V->SlotIndex);
    const Code::VarSlot &Slot =
        V->Scope->Slots[static_cast<size_t>(V->SlotIndex)];
    if (SlotVreg < 0) {
      // Out-of-unit variable (block bodies compiled standalone).
      assert(Slot.Storage == VarStorage::Env &&
             "cross-unit variable must be captured");
      int T = newVreg();
      Node *N = emit(S, NodeOp::VarGetOuter, 1);
      N->Dst = T;
      N->Idx = Slot.EnvIndex;
      // Hops are relative to the *incoming* environment, which belongs to
      // the nearest capturing scope lexically enclosing this block unit.
      assert(Req.Source->LexicalParent && "outer access needs a parent");
      N->Idx2 = Req.Source->LexicalParent->EnvLevel - V->Scope->EnvLevel;
      setType(S, T, TC.unknown());
      return T;
    }
    if (Slot.Storage == VarStorage::Reg)
      return SlotVreg;
    int T = newVreg();
    Node *N = emit(S, NodeOp::VarGet, 1);
    N->Dst = T;
    N->Inst = nullptr;
    for (ScopeInst *I = Ctx.Inst; I; I = I->ParentInst)
      if (I->Scope == V->Scope) {
        N->Inst = I;
        break;
      }
    N->Idx = V->SlotIndex;
    if (EscapedVars.count(SlotVreg)) {
      setType(S, T, TC.unknown());
    } else {
      setType(S, T, typeOf(S, SlotVreg));
      S.Prov[T] = SlotVreg;
    }
    return T;
  }
  case ExprKind::VarSet: {
    const auto *V = static_cast<const VarSet *>(E);
    int Val = evalExpr(S, V->Val, Ctx);
    if (S.Dead)
      return Val;
    int SlotVreg = resolveSlotVreg(Ctx.Inst, V->Scope, V->SlotIndex);
    const Code::VarSlot &Slot =
        V->Scope->Slots[static_cast<size_t>(V->SlotIndex)];
    if (SlotVreg < 0) {
      assert(Slot.Storage == VarStorage::Env &&
             "cross-unit variable must be captured");
      Node *N = emit(S, NodeOp::VarSetOuter, 1);
      N->A = Val;
      N->Idx = Slot.EnvIndex;
      assert(Req.Source->LexicalParent && "outer access needs a parent");
      N->Idx2 = Req.Source->LexicalParent->EnvLevel - V->Scope->EnvLevel;
      return Val;
    }
    if (Slot.Storage == VarStorage::Reg) {
      Node *Mv = emit(S, NodeOp::Move, 1);
      Mv->Dst = SlotVreg;
      Mv->A = Val;
    } else {
      Node *N = emit(S, NodeOp::VarSet, 1);
      for (ScopeInst *I = Ctx.Inst; I; I = I->ParentInst)
        if (I->Scope == V->Scope) {
          N->Inst = I;
          break;
        }
      N->Idx = V->SlotIndex;
      N->A = Val;
    }
    setType(S, SlotVreg,
            P.TrackLocalTypes ? typeOf(S, Val) : TC.unknown());
    noteVarWrite(S, SlotVreg, provRoot(S, Val));
    return Val;
  }
  case ExprKind::Send: {
    const auto *Sn = static_cast<const Send *>(E);
    int Recv = Sn->Recv ? evalExpr(S, Sn->Recv, Ctx) : Ctx.Inst->SelfVreg;
    std::vector<int> Args;
    Args.reserve(Sn->Args.size());
    for (const Expr *A : Sn->Args) {
      Args.push_back(evalExpr(S, A, Ctx));
      if (S.Dead)
        return Args.back();
    }
    return evalSend(S, Recv, Sn->Selector, Args, Ctx);
  }
  case ExprKind::PrimCall:
    return evalPrim(S, static_cast<const PrimCall *>(E), Ctx);
  case ExprKind::BlockLit: {
    const auto *B = static_cast<const BlockLit *>(E);
    int T = newVreg();
    Node *N = emit(S, NodeOp::MakeBlockNode, 1);
    N->Dst = T;
    N->Block = B->Block;
    N->Inst = Ctx.Inst;
    setType(S, T, TC.closureOf(B->Block, Ctx.Inst));
    return T;
  }
  case ExprKind::Return: {
    const auto *R = static_cast<const Return *>(E);
    int V = evalExpr(S, R->Val, Ctx);
    if (S.Dead)
      return V;
    // `^` returns from the lexically enclosing method activation.
    ScopeInst *Home = nullptr;
    for (ScopeInst *I = Ctx.Inst; I; I = I->ParentInst)
      if (I->Scope->Depth == 0) {
        Home = I;
        break;
      }
    if (Home) {
      auto It = ActiveReturns.find(Home);
      assert(It != ActiveReturns.end() &&
             "home method's return collector must be active");
      It->second->States.push_back(S);
      It->second->Results.push_back(V);
      S.Dead = true;
      return V;
    }
    // Home is outside this unit: a true non-local return.
    Node *N = emit(S, NodeOp::NLRetNode, 0);
    N->A = V;
    S.Dead = true;
    return V;
  }
  }
  assert(false && "unhandled expression kind");
  return newVreg();
}

//===----------------------------------------------------------------------===//
// Sends: compile-time lookup, inlining, prediction, splitting
//===----------------------------------------------------------------------===//

int Analyzer::emitDynamicSend(State &S, int RecvVreg, const std::string *Sel,
                              const std::vector<int> &Args,
                              const ast::Code *CalleeBody) {
  if (S.Dead)
    return newVreg();
  escapeIfClosure(S, RecvVreg);
  for (int A : Args)
    escapeIfClosure(S, A);
  int T = newVreg();
  Node *N = emit(S, NodeOp::SendNode, 1);
  N->Dst = T;
  N->Sel = Sel;
  N->CalleeBody = CalleeBody;
  N->Args.push_back(RecvVreg);
  for (int A : Args)
    N->Args.push_back(A);
  ++Stats.SendsDynamic;
  invalidateEscaped(S);
  setType(S, T, TC.unknown());
  return T;
}

int Analyzer::evalSend(State &S, int RecvVreg, const std::string *Sel,
                       const std::vector<int> &Args, EvalCtx &Ctx,
                       bool AllowPrediction) {
  if (S.Dead)
    return newVreg();
  const Type *RT = typeOf(S, RecvVreg);
  const CommonSelectors &CS = W.selectors();

  // Inlined block invocation and loop construction.
  if (P.Inlining && RT->isClosure()) {
    const Code *BC = &RT->closureBlock()->Body;
    if (Sel == CS.valueSelector(static_cast<int>(Args.size())) &&
        BC->NumArgs == static_cast<int>(Args.size()))
      return inlineBlockBody(S, RT, RecvVreg, Args, Ctx);
    if ((Sel == CS.WhileTrue || Sel == CS.WhileFalse) && Args.size() == 1 &&
        typeOf(S, Args[0])->isClosure() && BC->NumArgs == 0 &&
        typeOf(S, Args[0])->closureBlock()->Body.NumArgs == 0)
      return buildWhileLoop(S, RT, RecvVreg, typeOf(S, Args[0]), Args[0],
                            Sel == CS.WhileFalse, Ctx);
  }

  // Compile-time lookup when the receiver's map is known (§3.2.2). Always
  // the raw parent walk (not a global-cache probe): the walk's visited set
  // is recorded as the compiled function's shape dependencies, so a later
  // mutation of any walked map invalidates exactly this code. The result
  // still warms the global lookup cache for the runtime.
  Map *M = RT->definiteMap(W);
  if (M && P.Inlining) {
    LookupResult R = compileLookup(M, Sel);
    switch (R.ResultKind) {
    case LookupResult::Kind::NotFound:
      emitError(S, "message not understood: '" + *Sel + "'");
      return newVreg();
    case LookupResult::Kind::Constant: {
      ++Stats.SendsInlined;
      int T = newVreg();
      Node *N = emit(S, NodeOp::Const, 1);
      N->Dst = T;
      N->Val = R.Slot->Constant;
      setType(S, T, TC.constantOf(R.Slot->Constant));
      return T;
    }
    case LookupResult::Kind::Data: {
      ++Stats.SendsInlined;
      int T = newVreg();
      if (R.Holder) {
        Node *N = emit(S, NodeOp::GetFieldK, 1);
        N->Dst = T;
        N->Val = Value::fromObject(R.Holder);
        N->Idx = R.Slot->FieldIndex;
      } else {
        Node *N = emit(S, NodeOp::GetField, 1);
        N->Dst = T;
        N->A = RecvVreg;
        N->Idx = R.Slot->FieldIndex;
      }
      setType(S, T, TC.unknown());
      return T;
    }
    case LookupResult::Kind::Assign: {
      ++Stats.SendsInlined;
      assert(Args.size() == 1 && "assignment send takes one argument");
      escapeIfClosure(S, Args[0]);
      if (R.Holder) {
        Node *N = emit(S, NodeOp::SetFieldK, 1);
        N->Val = Value::fromObject(R.Holder);
        N->Idx = R.Slot->FieldIndex;
        N->A = Args[0];
      } else {
        Node *N = emit(S, NodeOp::SetField, 1);
        N->A = RecvVreg;
        N->Idx = R.Slot->FieldIndex;
        N->B = Args[0];
      }
      return Args[0];
    }
    case LookupResult::Kind::Method: {
      auto *MO = static_cast<MethodObj *>(R.Slot->Constant.asObject());
      const Code *Body = MO->body();
      bool TooBig = astSize(Body) > P.MaxInlineSize;
      bool TooDeep = Ctx.Depth >= P.MaxInlineDepth;
      // Bound re-entrant inlining of one method rather than forbidding it:
      // nested user-defined loops are the same `to:Do:` method inlined
      // inside itself (through the loop-body closure), and the paper's
      // results depend on fully opening such nests. Genuine self-recursion
      // (fib-style) stops at the occurrence bound and the depth budget.
      int Occurrences = 0;
      for (const ast::Code *C : InlineStack)
        if (C == Body)
          ++Occurrences;
      if (Body->NumArgs != static_cast<int>(Args.size()) || TooBig ||
          TooDeep || Occurrences >= 3 || hasNLRBlock(Body))
        // Pass the resolved body along (arity permitting): the compile-time
        // lookup above already recorded its walked maps as shape
        // dependencies, so the escape classifier may trust it until an
        // override installation invalidates this function.
        return emitDynamicSend(S, RecvVreg, Sel, Args,
                               Body->NumArgs == static_cast<int>(Args.size())
                                   ? Body
                                   : nullptr);
      return inlineMethod(S, Body, Sel, RecvVreg, Args, Ctx);
    }
    }
  }

  // Extended / local message splitting (§4): recover the type information
  // a merge diluted.
  if (RT->isMerge() && (P.ExtendedSplitting || P.LocalSplitting) &&
      P.Inlining) {
    std::vector<State> Parts;
    if (trySplitAtMerge(S, RecvVreg, Parts)) {
      std::vector<State> Outs;
      std::vector<int> Results;
      for (State &Part : Parts) {
        int R = evalSend(Part, RecvVreg, Sel, Args, Ctx, AllowPrediction);
        Outs.push_back(std::move(Part));
        Results.push_back(R);
      }
      int Out = -1;
      State Joined = mergeStates(std::move(Outs), std::move(Results), Out);
      S = std::move(Joined);
      return Out;
    }
  }

  // Type prediction (§2, §3.2.2).
  if (P.TypePrediction && P.Inlining && AllowPrediction && !M) {
    if (isIntPredictedSelector(*Sel) && !RT->excludesInt(W)) {
      Node *Test = emit(S, NodeOp::TestInt, 2);
      Test->A = RecvVreg;
      ++Stats.TypeTestsEmitted;
      State IntS = forkState(S, Test, 0);
      State OtherS = forkState(S, Test, 1);
      auto Hull = rangeHull(RT);
      refineType(IntS, RecvVreg,
                 Hull ? TC.intRange(Hull->first, Hull->second)
                      : TC.intClass());
      refineType(OtherS, RecvVreg, TC.difference(RT, TC.intClass()));
      int R1 = evalSend(IntS, RecvVreg, Sel, Args, Ctx, false);
      int R2 = evalSend(OtherS, RecvVreg, Sel, Args, Ctx, false);
      std::vector<State> Outs{std::move(IntS), std::move(OtherS)};
      int Out = -1;
      State Joined = mergeStates(std::move(Outs), {R1, R2}, Out);
      S = std::move(Joined);
      return Out;
    }
    bool BoolPredicted = Sel == CS.IfTrue || Sel == CS.IfFalse ||
                         Sel == CS.IfTrueFalse || Sel == CS.IfFalseTrue ||
                         *Sel == "and:" || *Sel == "or:" || *Sel == "not";
    if (BoolPredicted && (!RT->excludesMap(W, W.trueMap()) ||
                          !RT->excludesMap(W, W.falseMap()))) {
      std::vector<State> Outs;
      std::vector<int> Results;
      State Cur = S;
      for (Map *BM : {W.trueMap(), W.falseMap()}) {
        if (Cur.Dead || RT->excludesMap(W, BM))
          continue;
        Node *Test = emit(Cur, NodeOp::TestMap, 2);
        Test->A = RecvVreg;
        Test->MapArg = BM;
        ++Stats.TypeTestsEmitted;
        State Match = forkState(Cur, Test, 0);
        refineType(Match, RecvVreg,
                   TC.constantOf(BM == W.trueMap() ? W.trueValue()
                                                   : W.falseValue()));
        Results.push_back(evalSend(Match, RecvVreg, Sel, Args, Ctx, false));
        Outs.push_back(std::move(Match));
        Cur = forkState(Cur, Test, 1);
        refineType(Cur, RecvVreg, TC.difference(typeOf(Cur, RecvVreg),
                                                TC.classOf(BM)));
      }
      Results.push_back(emitDynamicSend(Cur, RecvVreg, Sel, Args));
      Outs.push_back(std::move(Cur));
      int Out = -1;
      State Joined = mergeStates(std::move(Outs), std::move(Results), Out);
      S = std::move(Joined);
      return Out;
    }
  }

  return emitDynamicSend(S, RecvVreg, Sel, Args);
}

int Analyzer::inlineMethod(State &S, const Code *Body, const std::string *Sel,
                           int RecvVreg, const std::vector<int> &Args,
                           EvalCtx &Ctx) {
  ++Stats.SendsInlined;
  int Base = NextVreg;
  NextVreg += static_cast<int>(Body->Slots.size());
  ScopeInst *Inst = G.newInst(Body, nullptr, Base, RecvVreg);

  if (Body->HasCaptured) {
    Node *Es = emit(S, NodeOp::EnterScope, 1);
    Es->Inst = Inst;
  }

  // Bind arguments and initialize locals.
  for (size_t K = 0; K < Body->Slots.size(); ++K) {
    const Code::VarSlot &Slot = Body->Slots[K];
    int SlotVreg = Base + static_cast<int>(K);
    int Src;
    const Type *SrcT;
    if (Slot.IsArgument) {
      Src = Args[K];
      SrcT = typeOf(S, Src);
    } else {
      Value Init = Slot.InitIsInt ? Value::fromInt(Slot.InitInt)
                   : Slot.InitStr
                       ? Access->stringLiteral(*Slot.InitStr)
                       : W.nilValue();
      Src = newVreg();
      Node *C = emit(S, NodeOp::Const, 1);
      C->Dst = Src;
      C->Val = Init;
      SrcT = TC.constantOf(Init);
    }
    if (Slot.Storage == VarStorage::Env) {
      Node *Vs = emit(S, NodeOp::VarSet, 1);
      Vs->Inst = Inst;
      Vs->Idx = static_cast<int>(K);
      Vs->A = Src;
    } else {
      Node *Mv = emit(S, NodeOp::Move, 1);
      Mv->Dst = SlotVreg;
      Mv->A = Src;
    }
    setType(S, SlotVreg, P.TrackLocalTypes ? SrcT : TC.unknown());
    SlotVregSet.insert(SlotVreg);
    noteVarWrite(S, SlotVreg, provRoot(S, Src));
  }

  ReturnCollector RC;
  ActiveReturns[Inst] = &RC;
  InlineStack.push_back(Body);
  EvalCtx Inner;
  Inner.Inst = Inst;
  Inner.Depth = Ctx.Depth + 1;

  int Last = evalBody(S, Body, Inner);

  InlineStack.pop_back();
  ActiveReturns.erase(Inst);
  (void)Sel;

  int DefaultResult = Last >= 0 ? Last : RecvVreg;
  if (RC.States.empty())
    return DefaultResult;

  std::vector<State> Ends = std::move(RC.States);
  std::vector<int> Results = std::move(RC.Results);
  Ends.push_back(std::move(S));
  Results.push_back(DefaultResult);
  int Out = -1;
  State Joined = mergeStates(std::move(Ends), std::move(Results), Out);
  S = std::move(Joined);
  return Out;
}

int Analyzer::inlineBlockBody(State &S, const Type *ClosureT,
                              int ClosureVreg,
                              const std::vector<int> &Args, EvalCtx &Ctx) {
  const BlockExpr *B = ClosureT->closureBlock();
  const Code *Body = &B->Body;
  int Occurrences = 0;
  for (const ast::Code *C : InlineStack)
    if (C == Body)
      ++Occurrences;
  if (Occurrences >= 3 || Ctx.Depth >= P.MaxInlineDepth) {
    // Fall back to a dynamic `value...` send on the materialized closure
    // (its MakeBlock node is still in the graph and stays live).
    const std::string *Sel =
        W.selectors().valueSelector(static_cast<int>(Args.size()));
    return emitDynamicSend(S, ClosureVreg, Sel, Args);
  }
  ++Stats.SendsInlined;
  ScopeInst *Parent = ClosureT->closureInst();
  int Base = NextVreg;
  NextVreg += static_cast<int>(Body->Slots.size());
  ScopeInst *Inst = G.newInst(Body, Parent, Base, Parent->SelfVreg);

  if (Body->HasCaptured) {
    Node *Es = emit(S, NodeOp::EnterScope, 1);
    Es->Inst = Inst;
  }
  for (size_t K = 0; K < Body->Slots.size(); ++K) {
    const Code::VarSlot &Slot = Body->Slots[K];
    int SlotVreg = Base + static_cast<int>(K);
    int Src;
    const Type *SrcT;
    if (Slot.IsArgument) {
      Src = Args[K];
      SrcT = typeOf(S, Src);
    } else {
      Value Init = Slot.InitIsInt ? Value::fromInt(Slot.InitInt)
                   : Slot.InitStr
                       ? Access->stringLiteral(*Slot.InitStr)
                       : W.nilValue();
      Src = newVreg();
      Node *C = emit(S, NodeOp::Const, 1);
      C->Dst = Src;
      C->Val = Init;
      SrcT = TC.constantOf(Init);
    }
    if (Slot.Storage == VarStorage::Env) {
      Node *Vs = emit(S, NodeOp::VarSet, 1);
      Vs->Inst = Inst;
      Vs->Idx = static_cast<int>(K);
      Vs->A = Src;
    } else {
      Node *Mv = emit(S, NodeOp::Move, 1);
      Mv->Dst = SlotVreg;
      Mv->A = Src;
    }
    setType(S, SlotVreg, P.TrackLocalTypes ? SrcT : TC.unknown());
    SlotVregSet.insert(SlotVreg);
    noteVarWrite(S, SlotVreg, provRoot(S, Src));
  }

  InlineStack.push_back(Body);
  EvalCtx Inner;
  Inner.Inst = Inst;
  Inner.Depth = Ctx.Depth + 1;
  int Last = evalBody(S, Body, Inner);
  InlineStack.pop_back();

  if (Last >= 0)
    return Last;
  int T = newVreg();
  if (!S.Dead) {
    Node *C = emit(S, NodeOp::Const, 1);
    C->Dst = T;
    C->Val = W.nilValue();
    setType(S, T, TC.constantOf(W.nilValue()));
  }
  return T;
}

//===----------------------------------------------------------------------===//
// Boolean branching
//===----------------------------------------------------------------------===//

std::pair<Analyzer::State, Analyzer::State>
Analyzer::branchOnBoolean(State S, int CondVreg, EvalCtx &Ctx) {
  State DeadS;
  DeadS.Dead = true;
  if (S.Dead)
    return {DeadS, DeadS};

  const Type *T = typeOf(S, CondVreg);
  if (auto C = T->constant()) {
    if (*C == W.trueValue())
      return {std::move(S), DeadS};
    if (*C == W.falseValue())
      return {DeadS, std::move(S)};
  }

  // Split a merge-typed condition back to its sources: this is how an
  // inlined comparison's true/false constants turn into direct branches.
  if (T->isMerge() && (P.ExtendedSplitting || P.LocalSplitting) &&
      P.Inlining) {
    std::vector<State> Parts;
    if (trySplitAtMerge(S, CondVreg, Parts)) {
      std::vector<State> TrueSide, FalseSide;
      for (State &Part : Parts) {
        auto [Ts, Fs] = branchOnBoolean(std::move(Part), CondVreg, Ctx);
        TrueSide.push_back(std::move(Ts));
        FalseSide.push_back(std::move(Fs));
      }
      int Dummy = -1;
      State TrueS = mergeStates(std::move(TrueSide), {}, Dummy);
      State FalseS = mergeStates(std::move(FalseSide), {}, Dummy);
      return {std::move(TrueS), std::move(FalseS)};
    }
  }

  if (T->excludesMap(W, W.trueMap()) && T->excludesMap(W, W.falseMap())) {
    emitError(S, "expected a boolean");
    return {DeadS, DeadS};
  }

  // Run-time dispatch on the boolean's map.
  Node *TestT = emit(S, NodeOp::TestMap, 2);
  TestT->A = CondVreg;
  TestT->MapArg = W.trueMap();
  ++Stats.TypeTestsEmitted;
  State TrueS = forkState(S, TestT, 0);
  refineType(TrueS, CondVreg, TC.constantOf(W.trueValue()));

  State Rest = forkState(S, TestT, 1);
  Node *TestF = emit(Rest, NodeOp::TestMap, 2);
  TestF->A = CondVreg;
  TestF->MapArg = W.falseMap();
  ++Stats.TypeTestsEmitted;
  State FalseS = forkState(Rest, TestF, 0);
  refineType(FalseS, CondVreg, TC.constantOf(W.falseValue()));
  State ErrS = forkState(Rest, TestF, 1);
  emitError(ErrS, "expected a boolean");
  return {std::move(TrueS), std::move(FalseS)};
}
