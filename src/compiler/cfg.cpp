//===-- compiler/cfg.cpp - Control flow graph nodes -------------------------===//

#include "compiler/cfg.h"

#include <algorithm>
#include <cassert>

using namespace mself;

Node *Graph::newNode(NodeOp Op, int NumSuccs) {
  Nodes.push_back(std::make_unique<Node>());
  Node *N = Nodes.back().get();
  N->Op = Op;
  N->Id = NextId++;
  N->Succs.assign(static_cast<size_t>(NumSuccs), nullptr);
  return N;
}

void Graph::connect(Node *From, int Slot, Node *To) {
  assert(Slot >= 0 && Slot < From->numSuccs() && "bad successor slot");
  assert(From->Succs[static_cast<size_t>(Slot)] == nullptr &&
         "successor slot already connected");
  From->Succs[static_cast<size_t>(Slot)] = To;
  To->Preds.push_back(From);
}

void Graph::addMergePred(Node *Merge, Node *From, int Slot) {
  assert((Merge->Op == NodeOp::MergeNode || Merge->Op == NodeOp::LoopHead) &&
         "addMergePred target must be a join node");
  connect(From, Slot, Merge);
}

void Graph::truncate(size_t Mark) {
  assert(Mark <= Nodes.size() && "bad truncation mark");
  // Remove edges from surviving nodes into the discarded region first.
  for (size_t I = 0; I < Mark; ++I) {
    Node *N = Nodes[I].get();
    for (Node *&S : N->Succs)
      if (S && static_cast<size_t>(S->Id) >= Mark)
        S = nullptr;
    N->Preds.erase(std::remove_if(N->Preds.begin(), N->Preds.end(),
                                  [Mark](Node *P) {
                                    return static_cast<size_t>(P->Id) >= Mark;
                                  }),
                   N->Preds.end());
  }
  Nodes.resize(Mark);
  NextId = static_cast<int>(Mark);
}

ScopeInst *Graph::newInst(const ast::Code *Scope, ScopeInst *Parent,
                          int VregBase, int SelfVreg) {
  Insts.push_back(std::make_unique<ScopeInst>());
  ScopeInst *I = Insts.back().get();
  I->Scope = Scope;
  I->ParentInst = Parent;
  I->VregBase = VregBase;
  I->SelfVreg = SelfVreg;
  I->Id = NextInstId++;
  return I;
}
