//===-- compiler/bbv.h - Lazy basic-block versioning ------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third compilation tier: lazy basic-block versioning with typed
/// object shapes (after Chevalier-Boisvert & Feeley, arXiv 1401.3041 and
/// 1507.02437), stacked above the optimizing compiler.
///
/// bbvCompile() builds a *template* — the function compiled by the
/// optimizer with message splitting and superinstruction fusion disabled,
/// so the CFG keeps its explicit TestInt/TestMap type tests — but installs
/// only a two-word entry stub as the function's executable code. Executing
/// a stub calls bbvMaterialize(), which emits a version of the target
/// block specialized to the register types that actually flowed in
/// (eliding the tests the context already proves), appends it to the code
/// vector, and patches the stub into a direct jump. Outgoing edges become
/// fresh stubs carrying the propagated context, so specialization chains
/// across block boundaries exactly as far as execution actually goes.
///
/// Field loads additionally consult the receiver map's per-slot store tags
/// (vm/map.h SlotTypeTag): a monomorphic tag lets the load's result type
/// flow into the context guarded by a one-word invalidation cell
/// (Op::BbvGuard) instead of a re-executed type test.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_COMPILER_BBV_H
#define MINISELF_COMPILER_BBV_H

#include "compiler/policy.h"
#include "interp/interp.h"

#include <memory>

namespace mself {

/// Compiles \p Req at the BBV tier: an optimizer-built template (splitting
/// and fusion off, everything else per \p P) held in opaque BbvState, with
/// the function's executable code reduced to a single entry stub. Lazily
/// grows via bbvMaterialize as execution reaches new (block, context)
/// pairs. Never fails (the template compiler never fails).
std::unique_ptr<CompiledFunction>
bbvCompile(World &W, const Policy &P, const CompileRequest &Req);

/// Executes stub \p StubIdx of \p Fn: finds or emits the version of the
/// stub's target block under the stub's recorded type context (applying
/// the per-block version cap, falling back to a generic version past it),
/// patches the stub into a direct jump, and returns the version's entry
/// offset in Fn.Code. \returns -1 when \p Fn carries no BBV state or the
/// stub index is invalid. Mutator thread only: appends to Fn.Code, so the
/// interpreter must refresh its code pointer afterwards (the BbvStub
/// handler re-enters through frameChanged).
int bbvMaterialize(World &W, CompiledFunction &Fn, int StubIdx);

} // namespace mself

#endif // MINISELF_COMPILER_BBV_H
