//===-- compiler/loops.cpp - Iterative type analysis for loops --------------===//
//
// Loops (§5): the loop head is a merge whose incoming back-edge types are
// unknown until the body has been compiled, so the compiler repeatedly
// compiles the body and compares the loop-tail bindings against the
// loop-head assumptions until they reach a fix-point, generalizing
// value/subrange types to class types at the head to converge quickly
// (§5.1). With extended splitting enabled, merge-typed fix-point bindings
// are split into a *specialized* loop version (common-case types, no type
// tests) and a *general* version; the general version's tail connects to
// the specialized head when its types allow, which is exactly how the
// paper's type tests get hoisted out of the hot loop (§5.2-§5.4).
//
// Without iterative analysis (the old compiler), assigned locals are bound
// to unknown at the head ("pessimistic type analysis", §5).
//
//===----------------------------------------------------------------------===//

#include "compiler/analyze.h"

#include "bytecode/bytecode.h"

#include <cassert>

using namespace mself;
using namespace mself::ast;

std::vector<std::pair<Analyzer::ReturnCollector *, size_t>>
Analyzer::captureReturnMarks() {
  std::vector<std::pair<ReturnCollector *, size_t>> Marks;
  for (auto &KV : ActiveReturns)
    Marks.push_back({KV.second, KV.second->States.size()});
  return Marks;
}

void Analyzer::rollbackReturns(
    const std::vector<std::pair<ReturnCollector *, size_t>> &Marks) {
  for (const auto &M : Marks) {
    M.first->States.resize(M.second);
    M.first->Results.resize(M.second);
  }
}

//===----------------------------------------------------------------------===//
// Compatibility and generalization (§5.1, §5.2)
//===----------------------------------------------------------------------===//

bool Analyzer::headCompatible(const TypeMap &Head, const TypeMap &Tail,
                              bool Relaxed) const {
  for (const auto &KV : Head) {
    const Type *HT = KV.second;
    auto It = Tail.find(KV.first);
    const Type *TT =
        It == Tail.end() ? const_cast<TypeContext &>(TC).unknown()
                         : It->second;
    if (HT->equals(TT))
      continue;
    if (!HT->contains(W, TT))
      return false;
    if (Relaxed)
      continue;
    // The head must not sacrifice class information present at the tail
    // (§5.2): an unknown head binding is NOT compatible with a class-typed
    // tail binding — the analysis iterates and forms a merge type instead,
    // so the body can split the class branch off the unknown branch.
    Map *TM = TT->definiteMap(W);
    if (!TM || HT->definiteMap(W))
      continue;
    bool Preserved = false;
    if (HT->isMerge() || HT->kind() == Type::Kind::Union)
      for (const Type *E : HT->elems())
        if (E->definiteMap(W) == TM && E->contains(W, TT)) {
          Preserved = true;
          break;
        }
    if (!Preserved)
      return false;
  }
  return true;
}

TypeMap Analyzer::generalizeBindings(const TypeMap &Head,
                                     const TypeMap &Tail) {
  TypeMap Out;
  for (const auto &KV : Head) {
    const Type *HT = KV.second;
    auto It = Tail.find(KV.first);
    const Type *TT =
        It == Tail.end() ? TC.unknown() : It->second;
    Out[KV.first] =
        TC.joinAtLoopHead(nullptr, HT, TT, P.LoopHeadGeneralization);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// One analysis pass over condition + body
//===----------------------------------------------------------------------===//

Analyzer::State Analyzer::analyzeLoopBody(Node *Head, const TypeMap &Bindings,
                                          const Type *CondClosure,
                                          int CondVreg,
                                          const Type *BodyClosure,
                                          int BodyVreg, bool Until,
                                          EvalCtx &Ctx,
                                          std::vector<State> &Exits) {
  State S;
  S.Tail = Head;
  S.Slot = 0;
  S.Types = Bindings;

  int CondR = inlineBlockBody(S, CondClosure, CondVreg, {}, Ctx);
  auto [TrueS, FalseS] = branchOnBoolean(std::move(S), CondR, Ctx);
  State Continue = Until ? std::move(FalseS) : std::move(TrueS);
  State Exit = Until ? std::move(TrueS) : std::move(FalseS);
  Exits.push_back(std::move(Exit));
  if (Continue.Dead)
    return Continue;
  inlineBlockBody(Continue, BodyClosure, BodyVreg, {}, Ctx);
  return Continue;
}

//===----------------------------------------------------------------------===//
// Loop construction
//===----------------------------------------------------------------------===//

namespace {

/// Picks the "good" constituent of each merge-typed binding: the loop
/// version specialized to these bindings is the paper's common-case loop.
bool specializeBindings(const World &W, const TypeMap &General,
                        TypeMap &Specialized) {
  bool Changed = false;
  Specialized = General;
  for (auto &KV : Specialized) {
    const Type *T = KV.second;
    if (!T->isMerge())
      continue;
    for (const Type *E : T->elems())
      if (E->definiteMap(W)) {
        KV.second = E;
        Changed = true;
        break;
      }
  }
  return Changed;
}

} // namespace

int Analyzer::buildWhileLoop(State &S, const Type *CondClosure,
                             int CondVreg, const Type *BodyClosure,
                             int BodyVreg, bool Until, EvalCtx &Ctx) {
  if (S.Dead)
    return newVreg();

  std::vector<State> Exits;
  size_t Mark0 = G.size();
  int Vreg0 = NextVreg;
  TypeMap Entry = S.Types;

  // Connect a tail state to the first compatible head, splitting the tail
  // when a merge-typed binding matches different heads (§5.2).
  auto connectTail = [&](State Tail, std::vector<LoopVersion> &Heads,
                         auto &&ConnectRef, int Depth) -> void {
    if (Tail.Dead)
      return;
    for (LoopVersion &V : Heads)
      if (headCompatible(V.Bindings, Tail.Types, /*Relaxed=*/false)) {
        G.addMergePred(V.Head, Tail.Tail, Tail.Slot);
        V.Head->SplitUnsafe = true; // Extra preds: stale per-pred types.
        return;
      }
    // Try splitting the loop tail on a merge-typed variable.
    if (Depth < 2 && P.ExtendedSplitting) {
      for (const auto &KV : Tail.Types) {
        if (!KV.second->isMerge())
          continue;
        std::vector<State> Parts;
        if (trySplitAtMerge(Tail, KV.first, Parts)) {
          for (State &Part : Parts)
            ConnectRef(std::move(Part), Heads, ConnectRef, Depth + 1);
          return;
        }
      }
    }
    // Fall back to any head that is compatible under the relaxed rule
    // (the most general head always is, by fix-point construction).
    for (LoopVersion &V : Heads)
      if (headCompatible(V.Bindings, Tail.Types, /*Relaxed=*/true)) {
        G.addMergePred(V.Head, Tail.Tail, Tail.Slot);
        V.Head->SplitUnsafe = true;
        return;
      }
    // Nothing matched (cannot happen when the general head's bindings are
    // a fix-point); drop the path into an error to stay safe.
    emitError(Tail, "loop tail matched no loop head");
  };

  TypeMap A = Entry;
  Node *GeneralHead = nullptr;
  State GeneralTail;
  GeneralTail.Dead = true;
  // `^` states recorded during a discarded pass would dangle; snapshot the
  // active return collectors so rollbacks can discard them too.
  auto ReturnMarks0 = captureReturnMarks();

  if (!P.IterativeLoops) {
    // Pessimistic type analysis (§5): anything assigned within the loop
    // becomes unknown at the head. Discover the assigned set by compiling
    // the body once (a static scan cannot see writes made through invoked
    // closures) and widening every binding the pass changed.
    {
      size_t Mark = G.size();
      int VregMark = NextVreg;
      std::vector<State> ProbeExits;
      Node *Probe = G.newNode(NodeOp::LoopHead, 1);
      Probe->TypesAt = A;
      State ProbeTail =
          analyzeLoopBody(Probe, A, CondClosure, CondVreg, BodyClosure,
                          BodyVreg, Until, Ctx, ProbeExits);
      for (auto &KV : A) {
        auto It = ProbeTail.Types.find(KV.first);
        const Type *TT = It == ProbeTail.Types.end() ? TC.unknown()
                                                     : It->second;
        if (!ProbeTail.Dead && !KV.second->equals(TT))
          KV.second = TC.unknown();
      }
      G.truncate(Mark);
      NextVreg = VregMark;
      rollbackReturns(ReturnMarks0);
    }
    ++Stats.LoopIterations;
    GeneralHead = G.newNode(NodeOp::LoopHead, 1);
    GeneralHead->TypesAt = A;
    GeneralTail = analyzeLoopBody(GeneralHead, A, CondClosure, CondVreg,
                                  BodyClosure, BodyVreg, Until, Ctx, Exits);
  } else {
    // Iterative type analysis (§5.1): recompile until fix-point.
    bool Converged = false;
    for (int Iter = 0; Iter < P.MaxLoopIterations && !Converged; ++Iter) {
      ++Stats.LoopIterations;
      size_t Mark = G.size();
      int VregMark = NextVreg;
      std::vector<State> PassExits;
      Node *H = G.newNode(NodeOp::LoopHead, 1);
      H->TypesAt = A;
      State Tail = analyzeLoopBody(H, A, CondClosure, CondVreg,
                                   BodyClosure, BodyVreg, Until, Ctx,
                                   PassExits);
      if (Tail.Dead || headCompatible(A, Tail.Types, /*Relaxed=*/false)) {
        Converged = true;
        GeneralHead = H;
        GeneralTail = std::move(Tail);
        for (State &E : PassExits)
          Exits.push_back(std::move(E));
        break;
      }
      A = generalizeBindings(A, Tail.Types);
      G.truncate(Mark);
      NextVreg = VregMark;
      rollbackReturns(ReturnMarks0);
    }
    if (!Converged) {
      // Give up: widen everything that still disagrees to unknown and
      // accept the result under the relaxed rule.
      for (auto &KV : A)
        if (KV.second->isMerge())
          KV.second = TC.unknown();
      ++Stats.LoopIterations;
      GeneralHead = G.newNode(NodeOp::LoopHead, 1);
      GeneralHead->TypesAt = A;
      GeneralTail = analyzeLoopBody(GeneralHead, A, CondClosure, CondVreg,
                                    BodyClosure, BodyVreg, Until, Ctx,
                                    Exits);
    }
  }

  // Multi-version loops (§5.2): split merge-typed head bindings into a
  // specialized common-case version plus the general version.
  TypeMap A1;
  bool Specialize = P.IterativeLoops && P.ExtendedSplitting &&
                    specializeBindings(W, A, A1);
  if (getenv("MINISELF_DEBUG_LOOPS")) {
    fprintf(stderr, "[loop] specialize=%d bindings:\n", (int)Specialize);
    for (auto &KV : A)
      fprintf(stderr, "  v%d: %s\n", KV.first,
              KV.second->describe().c_str());
  }
  if (!Specialize) {
    ++Stats.LoopVersions;
    std::vector<LoopVersion> Heads;
    Heads.push_back({GeneralHead, A});
    G.addMergePred(GeneralHead, S.Tail, S.Slot);
    connectTail(std::move(GeneralTail), Heads, connectTail, 0);
  } else {
    // Rebuild both versions from scratch.
    G.truncate(Mark0);
    NextVreg = Vreg0;
    rollbackReturns(ReturnMarks0);
    Exits.clear();
    Stats.LoopVersions += 2;

    std::vector<LoopVersion> Heads;
    Node *H1 = G.newNode(NodeOp::LoopHead, 1);
    H1->TypesAt = A1;
    Heads.push_back({H1, A1});
    Node *H2 = G.newNode(NodeOp::LoopHead, 1);
    H2->TypesAt = A;
    Heads.push_back({H2, A});

    ++Stats.LoopIterations;
    State Tail1 = analyzeLoopBody(H1, A1, CondClosure, CondVreg,
                                  BodyClosure, BodyVreg, Until, Ctx, Exits);
    ++Stats.LoopIterations;
    State Tail2 = analyzeLoopBody(H2, A, CondClosure, CondVreg, BodyClosure,
                                  BodyVreg, Until, Ctx, Exits);

    connectTail(std::move(Tail1), Heads, connectTail, 0);
    connectTail(std::move(Tail2), Heads, connectTail, 0);

    // Enter at the specialized version when the entry types allow; the
    // general version otherwise (its tail hops into the fast version after
    // the first iteration's tests pass — the paper's hoisting, §5.4).
    if (headCompatible(A1, Entry, /*Relaxed=*/false)) {
      G.addMergePred(H1, S.Tail, S.Slot);
      H1->SplitUnsafe = true;
    } else {
      G.addMergePred(H2, S.Tail, S.Slot);
      H2->SplitUnsafe = true;
    }
    // An unreachable head would leave a dangling loop; prune by marking
    // unreachable heads' bodies dead is unnecessary — lowering only emits
    // reachable nodes.
  }

  // The loop expression's value is nil, delivered at the merged exits.
  int Dummy = -1;
  State Out = mergeStates(std::move(Exits), {}, Dummy);
  S = std::move(Out);
  int T = newVreg();
  if (!S.Dead) {
    Node *C = emit(S, NodeOp::Const, 1);
    C->Dst = T;
    C->Val = W.nilValue();
    setType(S, T, TC.constantOf(C->Val));
  }
  return T;
}
