//===-- compiler/type.cpp - The compile-time type lattice ------------------===//

#include "compiler/type.h"

#include "runtime/world.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace mself;

//===----------------------------------------------------------------------===//
// Type queries
//===----------------------------------------------------------------------===//

std::optional<Value> Type::constant() const {
  if (K == Kind::Value)
    return V;
  if (K == Kind::IntRange && Lo == Hi)
    return Value::fromInt(Lo);
  return std::nullopt;
}

std::optional<std::pair<int64_t, int64_t>> Type::intRange() const {
  if (K == Kind::IntRange)
    return std::make_pair(Lo, Hi);
  return std::nullopt;
}

Map *Type::definiteMap(const World &W) const {
  switch (K) {
  case Kind::Value:
    return M;
  case Kind::IntRange:
    return W.smallIntMap();
  case Kind::Class:
    return M;
  case Kind::Unknown:
    return nullptr;
  case Kind::Union:
  case Kind::Merge: {
    Map *Common = nullptr;
    for (const Type *E : Elems) {
      Map *EM = E->definiteMap(W);
      if (!EM || (Common && EM != Common))
        return nullptr;
      Common = EM;
    }
    return Common;
  }
  case Kind::Difference:
    // Removing values cannot widen the set of possible maps.
    return Base->definiteMap(W);
  case Kind::Closure:
    return W.blockMap();
  }
  return nullptr;
}

bool Type::excludesInt(const World &W) const {
  switch (K) {
  case Kind::Value:
  case Kind::Class:
    return M != W.smallIntMap();
  case Kind::Closure:
    return true;
  case Kind::IntRange:
    return false;
  case Kind::Unknown:
    return false;
  case Kind::Union:
  case Kind::Merge:
    for (const Type *E : Elems)
      if (!E->excludesInt(W))
        return false;
    return true;
  case Kind::Difference:
    // base \ sub excludes ints if base does, or if sub covers all ints.
    if (Base->excludesInt(W))
      return true;
    if (Sub->K == Kind::IntRange && Sub->Lo == kMinSmallInt &&
        Sub->Hi == kMaxSmallInt)
      return true;
    return false;
  }
  return false;
}

bool Type::excludesMap(const World &W, Map *Target) const {
  switch (K) {
  case Kind::Value:
  case Kind::Class:
    return M != Target;
  case Kind::Closure:
    return Target != W.blockMap();
  case Kind::IntRange:
    return Target != W.smallIntMap();
  case Kind::Unknown:
    return false;
  case Kind::Union:
  case Kind::Merge:
    for (const Type *E : Elems)
      if (!E->excludesMap(W, Target))
        return false;
    return true;
  case Kind::Difference:
    if (Base->excludesMap(W, Target))
      return true;
    // base \ sub excludes Target when sub covers the whole Target class.
    if (Sub->K == Kind::Class && Sub->M == Target)
      return true;
    if (Target == W.smallIntMap() && Sub->K == Kind::IntRange &&
        Sub->Lo == kMinSmallInt && Sub->Hi == kMaxSmallInt)
      return true;
    return false;
  }
  return false;
}

bool Type::equals(const Type *O) const {
  if (this == O)
    return true;
  if (K != O->K)
    return false;
  switch (K) {
  case Kind::Unknown:
    return true;
  case Kind::Value:
    return V == O->V;
  case Kind::IntRange:
    return Lo == O->Lo && Hi == O->Hi;
  case Kind::Class:
    return M == O->M;
  case Kind::Union:
  case Kind::Merge:
    if (K == Kind::Merge && Origin != O->Origin)
      return false;
    if (Elems.size() != O->Elems.size())
      return false;
    for (size_t I = 0; I < Elems.size(); ++I)
      if (!Elems[I]->equals(O->Elems[I]))
        return false;
    return true;
  case Kind::Difference:
    return Base->equals(O->Base) && Sub->equals(O->Sub);
  case Kind::Closure:
    return ClosureB == O->ClosureB && ClosureI == O->ClosureI;
  }
  return false;
}

bool Type::contains(const World &W, const Type *SubT) const {
  if (equals(SubT) || K == Kind::Unknown)
    return true;
  // A union/merge contains anything one of its constituents contains.
  if (K == Kind::Union || K == Kind::Merge) {
    for (const Type *E : Elems)
      if (E->contains(W, SubT))
        return true;
    // Or, memberwise: every constituent of a sub-union is contained.
  }
  if (SubT->K == Kind::Union || SubT->K == Kind::Merge) {
    bool All = true;
    for (const Type *E : SubT->Elems)
      if (!contains(W, E)) {
        All = false;
        break;
      }
    if (All)
      return true;
  }
  switch (K) {
  case Kind::IntRange: {
    auto R = SubT->intRange();
    return R && R->first >= Lo && R->second <= Hi;
  }
  case Kind::Class:
    if (SubT->K == Kind::Value)
      return SubT->M == M;
    if (SubT->K == Kind::Class)
      return SubT->M == M;
    if (SubT->K == Kind::IntRange)
      return M == W.smallIntMap();
    if (SubT->K == Kind::Difference)
      return contains(W, SubT->Base);
    return false;
  case Kind::Difference:
    // Conservative: no structural reasoning beyond equality.
    return false;
  default:
    return false;
  }
}

std::string Type::describe() const {
  std::ostringstream Os;
  switch (K) {
  case Kind::Unknown:
    Os << "?";
    break;
  case Kind::Value:
    Os << "val(" << V.describe() << ")";
    break;
  case Kind::IntRange:
    if (Lo == kMinSmallInt && Hi == kMaxSmallInt)
      Os << "int";
    else if (Lo == Hi)
      Os << Lo;
    else
      Os << "[" << Lo << ".." << Hi << "]";
    break;
  case Kind::Class:
    Os << "class(" << M->debugName() << ")";
    break;
  case Kind::Union:
  case Kind::Merge: {
    Os << (K == Kind::Union ? "union{" : "merge{");
    bool First = true;
    for (const Type *E : Elems) {
      if (!First)
        Os << ", ";
      First = false;
      Os << E->describe();
    }
    Os << "}";
    break;
  }
  case Kind::Difference:
    Os << Base->describe() << " \\ " << Sub->describe();
    break;
  case Kind::Closure:
    Os << "closure";
    break;
  }
  return Os.str();
}

//===----------------------------------------------------------------------===//
// TypeContext
//===----------------------------------------------------------------------===//

Type *TypeContext::make(Type::Kind K) {
  Arena.push_back(std::unique_ptr<Type>(new Type(K)));
  return Arena.back().get();
}

const Type *TypeContext::unknown() {
  if (!UnknownCache)
    UnknownCache = make(Type::Kind::Unknown);
  return UnknownCache;
}

const Type *TypeContext::constantOf(Value V) {
  if (V.isInt())
    return intRange(V.asInt(), V.asInt());
  Type *T = make(Type::Kind::Value);
  T->V = V;
  T->M = W.mapOf(V);
  return T;
}

const Type *TypeContext::intRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty integer range type");
  Type *T = make(Type::Kind::IntRange);
  T->Lo = std::max(Lo, kMinSmallInt);
  T->Hi = std::min(Hi, kMaxSmallInt);
  return T;
}

const Type *TypeContext::intClass() {
  return intRange(kMinSmallInt, kMaxSmallInt);
}

const Type *TypeContext::classOf(Map *M) {
  if (M == W.smallIntMap())
    return intClass();
  Type *T = make(Type::Kind::Class);
  T->M = M;
  return T;
}

const Type *TypeContext::closureOf(const ast::BlockExpr *B, ScopeInst *Inst) {
  Type *T = make(Type::Kind::Closure);
  T->ClosureB = B;
  T->ClosureI = Inst;
  return T;
}

const Type *TypeContext::unionOf(std::vector<const Type *> Elems) {
  assert(!Elems.empty() && "empty union type");
  if (Elems.size() == 1)
    return Elems[0];
  Type *T = make(Type::Kind::Union);
  T->Elems = std::move(Elems);
  return T;
}

const Type *TypeContext::difference(const Type *Base, const Type *Sub) {
  Type *T = make(Type::Kind::Difference);
  T->Base = Base;
  T->Sub = Sub;
  return T;
}

const Type *TypeContext::mergeOf(Node *Origin,
                                 std::vector<const Type *> PerPred) {
  assert(!PerPred.empty() && "merge of nothing");
  bool AllEqual = true;
  for (const Type *T : PerPred)
    if (!T->equals(PerPred[0])) {
      AllEqual = false;
      break;
    }
  if (AllEqual)
    return PerPred[0];
  Type *T = make(Type::Kind::Merge);
  T->Elems = std::move(PerPred);
  T->Origin = Origin;
  return T;
}

const Type *TypeContext::joinAtMerge(Node *Origin,
                                     std::vector<const Type *> PerPred) {
  return mergeOf(Origin, std::move(PerPred));
}

const Type *TypeContext::joinAtLoopHead(Node *Origin, const Type *HeadT,
                                        const Type *TailT, bool Generalize) {
  if (HeadT->equals(TailT))
    return HeadT;
  if (Generalize) {
    // Same class, different values/subranges: widen to the class type so
    // the analysis converges in one extra pass (§5.1).
    auto HR = HeadT->intRange();
    auto TR = TailT->intRange();
    if (HR && TR)
      return intClass();
    Map *HM = HeadT->definiteMap(W);
    Map *TM = TailT->definiteMap(W);
    if (HM && HM == TM)
      return classOf(HM);
  }
  // Flatten an existing head merge from a previous iteration so merge types
  // don't nest unboundedly across passes. A constituent absorbs the tail
  // type only when doing so loses no class information: the unknown type
  // does NOT absorb a class type — the paper's merge of {unknown, class}
  // keeps both, so the loop body can split the class branch off (§5.2).
  std::vector<const Type *> Elems;
  if (HeadT->isMerge())
    Elems = HeadT->elems();
  else
    Elems.push_back(HeadT);
  for (const Type *E : Elems) {
    if (!E->contains(W, TailT))
      continue;
    Map *TM = TailT->definiteMap(W);
    if (!TM || E->definiteMap(W) == TM)
      return HeadT;
  }
  Elems.push_back(TailT);
  return mergeOf(Origin, std::move(Elems));
}
