//===-- compiler/cfg.h - Control flow graph nodes ---------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control flow graph the analyzer builds while it inlines (§3-§5).
/// Node kinds mirror the paper's: simple data movement, raw vs. checked
/// arithmetic (the checked forms are the robust-primitive residue the
/// optimizer tries to eliminate), compare-and-branch, run-time type tests,
/// dynamically-bound sends, merges, and loop heads. Values are virtual
/// registers ("vregs"); merges are by register convergence (every incoming
/// path writes the same vreg), so no phi nodes are needed.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_COMPILER_CFG_H
#define MINISELF_COMPILER_CFG_H

#include "bytecode/bytecode.h"
#include "compiler/type.h"
#include "runtime/primitives.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mself {

namespace ast {
struct BlockExpr;
struct Code;
} // namespace ast

/// One inline instantiation of a method or block scope. Slot I of the scope
/// lives in vreg VregBase + I.
struct ScopeInst {
  const ast::Code *Scope = nullptr;
  ScopeInst *ParentInst = nullptr; ///< Lexical parent's instance (in-unit).
  int VregBase = 0;
  int SelfVreg = 0;
  int EnvVreg = -1; ///< Assigned when the scope's environment materializes.
  int Id = 0;
};

enum class ArithKind : uint8_t { Add, Sub, Mul, Div, Mod };

enum class NodeOp : uint8_t {
  Start,
  Const,       ///< Dst <- Val
  Move,        ///< Dst <- A
  GetField,    ///< Dst <- A.fields[Idx]
  SetField,    ///< A.fields[Idx] <- B
  GetFieldK,   ///< Dst <- Val(object).fields[Idx]   (known holder object)
  SetFieldK,   ///< Val(object).fields[Idx] <- A
  ArithRR,     ///< Dst <- A op B; overflow proven impossible.
  ArithCk,     ///< Dst <- A op B; succs [ok, overflow/zero-divide].
  CompareBr,   ///< branch on A cond B; succs [true, false]. Ints proven
               ///< except for identity conditions.
  TestInt,     ///< succs [A is small int, A is not].
  TestMap,     ///< succs [A's map == MapArg, differs].
  ArrAt,       ///< Dst <- A[B]; succs [in bounds, out of bounds].
  ArrAtRaw,    ///< Dst <- A[B]; bounds proven.
  ArrAtPut,    ///< A[B] <- C; succs [ok, out of bounds].
  ArrAtPutRaw, ///< A[B] <- C
  ArrSize,     ///< Dst <- size of A (proven array).
  SendNode,    ///< Dst <- dynamically-bound send; Args[0] is the receiver.
  PrimNode,    ///< Dst <- full primitive call; succs [ok] or [ok, fail].
  VarGet,      ///< Dst <- captured variable (Inst, Idx).
  VarSet,      ///< captured variable (Inst, Idx) <- A.
  VarGetOuter, ///< Dst <- out-of-unit variable at (Hops=Idx2, EnvIdx=Idx).
  VarSetOuter, ///< out-of-unit variable <- A.
  EnterScope,  ///< Environment creation point for Inst (if materialized).
  MakeBlockNode, ///< Dst <- closure over Block in context Inst.
  MergeNode,   ///< Control-flow join; TypesAt snapshots the outgoing map.
  LoopHead,    ///< Loop entry join (§5); TypesAt is the assumed bindings.
  ReturnNode,  ///< Return A from the activation.
  NLRetNode,   ///< Non-local return of A to the home activation.
  ErrorNode,   ///< Dead end: report Msg as a runtime error.
};

/// Analysis-time variable binding table: vreg -> type.
using TypeMap = std::map<int, const Type *>;

struct Node {
  NodeOp Op = NodeOp::Start;
  int Id = 0;

  int Dst = -1, A = -1, B = -1, C = -1;
  int Idx = 0;  ///< Field index / env index.
  int Idx2 = 0; ///< Env hop count (VarGetOuter/VarSetOuter).
  ArithKind Arith = ArithKind::Add;
  Cond CondCode = Cond::Lt;
  Value Val;
  Map *MapArg = nullptr;
  const std::string *Sel = nullptr;
  PrimId Prim = PrimId::Invalid;
  std::vector<int> Args; ///< Send/Prim operand vregs (Args[0] = receiver).
  /// SendNode only: the statically-bound callee body when compile-time
  /// lookup resolved the send but inlining declined it. Lets the escape
  /// classifier reason about what the callee does with block arguments;
  /// valid only under the function's DependsOnMaps (the lookup recorded
  /// every walked map, so an override installation invalidates the code).
  const ast::Code *CalleeBody = nullptr;
  const ast::BlockExpr *Block = nullptr;
  ScopeInst *Inst = nullptr;
  std::string Msg;

  /// Fixed-arity successor slots (see numSuccs); null until connected.
  std::vector<Node *> Succs;
  std::vector<Node *> Preds;

  /// Merge/LoopHead: the variable bindings on the outgoing edge.
  TypeMap TypesAt;
  /// Set when splitting attached extra predecessors whose types are not
  /// reflected in merge types originating here; such merges cannot be
  /// split again (their per-predecessor type lists are stale).
  bool SplitUnsafe = false;

  int numSuccs() const { return static_cast<int>(Succs.size()); }
  bool isBranch() const { return Succs.size() > 1; }
};

/// Owns the nodes of one compilation. Supports truncation so iterative
/// loop analysis can discard a rejected attempt (§5.1).
class Graph {
public:
  Node *newNode(NodeOp Op, int NumSuccs);

  /// Connects \p From's successor slot \p Slot to \p To.
  void connect(Node *From, int Slot, Node *To);
  /// Adds an incoming edge to a merge/loop-head node.
  void addMergePred(Node *Merge, Node *From, int Slot);

  size_t size() const { return Nodes.size(); }
  /// Discards all nodes created at or after \p Mark (loop re-analysis).
  void truncate(size_t Mark);

  Node *start() { return StartNode; }
  void setStart(Node *N) { StartNode = N; }

  ScopeInst *newInst(const ast::Code *Scope, ScopeInst *Parent, int VregBase,
                     int SelfVreg);
  const std::vector<std::unique_ptr<ScopeInst>> &insts() const {
    return Insts;
  }

private:
  std::vector<std::unique_ptr<Node>> Nodes;
  std::vector<std::unique_ptr<ScopeInst>> Insts;
  Node *StartNode = nullptr;
  int NextId = 0;
  int NextInstId = 0;
};

} // namespace mself

#endif // MINISELF_COMPILER_CFG_H
