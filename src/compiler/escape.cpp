//===-- compiler/escape.cpp - Closure/environment escape analysis ---------===//
//
// Classification over the final (inlined, split, DCE'd) graph. The inliner
// has already done the heavy lifting: most blocks are gone entirely, and
// what the classifier sees are the survivors — blocks kept as real objects
// because a send stayed dynamic or a loop stayed closed. For each survivor
// we collect every vreg that may alias it (Move chains), then inspect all
// uses: invocation-family sends keep it NonEscaping, a resolved callee that
// only invokes its parameter makes it ArgEscaping, and anything that could
// store or return it makes it Escaping. Environment decisions follow from
// the block decisions (see analyzeEscapes below).
//
//===----------------------------------------------------------------------===//

#include "compiler/escape.h"

#include "bytecode/bytecode.h"
#include "compiler/policy.h"
#include "parser/ast.h"
#include "runtime/world.h"

#include <algorithm>

using namespace mself;
using namespace mself::ast;

namespace {

/// Walks a callee body checking every use of parameter \p Idx of \p Callee.
/// Any use other than direct invocation (value-family receiver) or loop
/// operand (whileTrue:/whileFalse: receiver or argument) — or any use at
/// all from a nested block — is unsafe: the callee could let the value
/// outlive the call.
struct ParamUseWalker {
  const Code *Callee;
  int Idx;
  const CommonSelectors &CS;
  bool Safe = true;

  bool isParam(const Expr *E) const {
    if (!E || E->Kind != ExprKind::VarGet)
      return false;
    const auto *V = static_cast<const VarGet *>(E);
    return V->Scope == Callee && V->SlotIndex == Idx;
  }

  void walkCode(const Code *C, bool Nested) {
    for (const Expr *E : C->Body) {
      if (!Safe)
        return;
      walk(E, Nested);
    }
  }

  void walk(const Expr *E, bool Nested) {
    if (!E || !Safe)
      return;
    switch (E->Kind) {
    case ExprKind::IntLit:
    case ExprKind::StrLit:
    case ExprKind::SelfRef:
      return;
    case ExprKind::VarGet:
      // A bare reference that reached this point flows somewhere we did
      // not whitelist (assignment value, send argument, return, ...).
      if (isParam(E))
        Safe = false;
      return;
    case ExprKind::VarSet:
      walk(static_cast<const VarSet *>(E)->Val, Nested);
      return;
    case ExprKind::Send: {
      const auto *S = static_cast<const Send *>(E);
      bool IsLoop = S->Selector == CS.WhileTrue || S->Selector == CS.WhileFalse;
      bool RecvSafe =
          !Nested &&
          (S->Selector ==
               CS.valueSelector(static_cast<int>(S->Args.size())) ||
           IsLoop);
      if (!(RecvSafe && isParam(S->Recv)))
        walk(S->Recv, Nested);
      for (const Expr *A : S->Args) {
        if (!Nested && IsLoop && isParam(A))
          continue; // The loop intercept runs it within our extent.
        walk(A, Nested);
      }
      return;
    }
    case ExprKind::PrimCall: {
      const auto *Pc = static_cast<const PrimCall *>(E);
      walk(Pc->Recv, Nested);
      for (const Expr *A : Pc->Args)
        walk(A, Nested);
      if (Pc->OnFail)
        walk(Pc->OnFail, Nested);
      return;
    }
    case ExprKind::BlockLit:
      // Captured uses run on the nested block's schedule, which we cannot
      // bound: every occurrence inside is a potential escape.
      walkCode(&static_cast<const BlockLit *>(E)->Block->Body, true);
      return;
    case ExprKind::Return:
      walk(static_cast<const Return *>(E)->Val, Nested);
      return;
    }
  }
};

/// Raises \p Cur to at least \p New on the lattice.
void raiseTo(BlockEscape &Cur, BlockEscape New) {
  if (static_cast<uint8_t>(New) > static_cast<uint8_t>(Cur))
    Cur = New;
}

} // namespace

bool mself::blockParamSafe(const World &W, const ast::Code *Callee,
                           int ParamIdx) {
  if (!Callee || ParamIdx < 0 || ParamIdx >= Callee->NumArgs)
    return false;
  ParamUseWalker Wk{Callee, ParamIdx, W.selectors()};
  Wk.walkCode(Callee, /*Nested=*/false);
  return Wk.Safe;
}

EscapeInfo mself::analyzeEscapes(const World &W, const Policy &P,
                                 const Graph &G,
                                 const std::vector<Node *> &Order,
                                 const std::set<const Node *> &Removed,
                                 CompileStats &Stats) {
  EscapeInfo Info;
  Info.Enabled = P.EscapeAnalysis;

  std::vector<const Node *> Blocks;
  for (const Node *N : Order)
    if (N->Op == NodeOp::MakeBlockNode && !Removed.count(N))
      Blocks.push_back(N);

  if (!Info.Enabled) {
    // Legacy behaviour: every surviving closure is heap-allocated and
    // every capturing scope materializes an environment.
    for (const Node *B : Blocks)
      Info.Blocks[B] = BlockEscape::Escaping;
    for (const auto &Inst : G.insts())
      if (Inst->Scope->HasCaptured)
        Info.Materialize.insert(Inst.get());
    return Info;
  }

  const CommonSelectors &CS = W.selectors();
  for (const Node *MB : Blocks) {
    // Everything the closure may flow into through register moves. Vreg
    // reuse makes this an over-approximation (another value's use can be
    // charged to the block), which only ever raises the classification.
    std::set<int> Aliases{MB->Dst};
    bool Grew = true;
    while (Grew) {
      Grew = false;
      for (const Node *N : Order) {
        if (Removed.count(N) || N->Op != NodeOp::Move)
          continue;
        if (Aliases.count(N->A) && Aliases.insert(N->Dst).second)
          Grew = true;
      }
    }

    BlockEscape Esc = BlockEscape::NonEscaping;
    auto in = [&](int V) { return V >= 0 && Aliases.count(V) != 0; };
    for (const Node *N : Order) {
      if (Removed.count(N) || N == MB)
        continue;
      if (Esc == BlockEscape::Escaping)
        break;
      switch (N->Op) {
      case NodeOp::Move:
        break; // Alias edge, already folded in.
      case NodeOp::CompareBr:
      case NodeOp::TestInt:
      case NodeOp::TestMap:
        break; // Inspect-only uses.
      case NodeOp::SendNode: {
        int Argc = static_cast<int>(N->Args.size()) - 1;
        bool IsLoop = N->Sel == CS.WhileTrue || N->Sel == CS.WhileFalse;
        if (in(N->Args[0]) &&
            !(N->Sel == CS.valueSelector(Argc) || IsLoop))
          // Arbitrary dispatch on the closure: the bound method sees it
          // as self and may store it.
          raiseTo(Esc, BlockEscape::Escaping);
        for (size_t I = 1; I < N->Args.size(); ++I) {
          if (!in(N->Args[I]))
            continue;
          if (IsLoop)
            continue; // Native loop intercept: run-and-discard.
          if (N->CalleeBody &&
              blockParamSafe(W, N->CalleeBody, static_cast<int>(I) - 1))
            raiseTo(Esc, BlockEscape::ArgEscaping);
          else if (N->Sel == CS.IfTrue || N->Sel == CS.IfFalse ||
                   N->Sel == CS.IfTrueFalse || N->Sel == CS.IfFalseTrue)
            // The boolean-control protocol invokes its block arguments
            // and drops them, and these sends survive inlining only on
            // uncommon paths (the receiver could not be proven boolean) —
            // the common case never consumes the block at all. Betting on
            // the arena is safe either way: a pathological receiver that
            // stores or returns the block trips the evacuation nets,
            // which copy it out before any frame release could reach it.
            raiseTo(Esc, BlockEscape::ArgEscaping);
          else
            raiseTo(Esc, BlockEscape::Escaping);
        }
        break;
      }
      case NodeOp::MakeBlockNode:
        // Another closure capturing this one as its home self.
        if (in(N->Inst->SelfVreg))
          raiseTo(Esc, BlockEscape::Escaping);
        break;
      default: {
        // Any other node that reads an alias could store or return it:
        // SetField/SetFieldK, ArrAtPut*, VarSet/VarSetOuter, Return/NLRet,
        // PrimNode, arithmetic on a wrongly-aliased vreg.
        std::vector<int> Ins;
        switch (N->Op) {
        case NodeOp::SetField:
          Ins = {N->B}; // Storing *into* a closure is impossible.
          break;
        case NodeOp::SetFieldK:
        case NodeOp::VarSet:
        case NodeOp::VarSetOuter:
        case NodeOp::ReturnNode:
        case NodeOp::NLRetNode:
          Ins = {N->A};
          break;
        case NodeOp::ArrAtPut:
        case NodeOp::ArrAtPutRaw:
          Ins = {N->C};
          break;
        case NodeOp::PrimNode:
          Ins = N->Args;
          break;
        case NodeOp::GetField:
        case NodeOp::ArrAt:
        case NodeOp::ArrAtRaw:
        case NodeOp::ArrSize:
          break; // Reads only.
        default:
          Ins = {N->A, N->B, N->C};
          break;
        }
        for (int V : Ins)
          if (in(V))
            raiseTo(Esc, BlockEscape::Escaping);
        break;
      }
      }
    }
    Info.Blocks[MB] = Esc;
    switch (Esc) {
    case BlockEscape::NonEscaping:
      ++Stats.BlocksNonEscaping;
      break;
    case BlockEscape::ArgEscaping:
      ++Stats.BlocksArgEscaping;
      break;
    case BlockEscape::Escaping:
      ++Stats.BlocksEscaping;
      break;
    }
  }

  // Environment decisions. A scope materializes iff it is a capturing
  // scope on some surviving closure's lexical chain: block-unit hop counts
  // (parser EnvLevel arithmetic) assume every capturing ancestor of the
  // closure materializes, so the chain must stay contiguous all the way to
  // the root. Capturing scopes off every chain are scalar-replaced — their
  // variables stay in registers even though other closures survive.
  // Heap-ness propagates up the same chains: one escaping closure makes
  // its whole chain heap-allocated (a heap env must never point at an
  // arena parent); chains reached only by arena closures stay arena.
  std::set<const ScopeInst *> HeapForced;
  for (const auto &[MB, Esc] : Info.Blocks)
    for (const ScopeInst *I = MB->Inst; I; I = I->ParentInst)
      if (I->Scope->HasCaptured) {
        Info.Materialize.insert(I);
        if (Esc == BlockEscape::Escaping)
          HeapForced.insert(I);
      }
  for (const ScopeInst *I : Info.Materialize)
    if (!HeapForced.count(I))
      Info.ArenaEnvs.insert(I);

  // Count every capturing scope that does not materialize — including the
  // best case, where every closure inlined away and Blocks is empty, so
  // the whole function runs env-free.
  for (const auto &Inst : G.insts())
    if (Inst->Scope->HasCaptured && !Info.Materialize.count(Inst.get()))
      ++Stats.EnvsScalarReplaced;
  Stats.EnvsArena += static_cast<int>(Info.ArenaEnvs.size());
  return Info;
}
