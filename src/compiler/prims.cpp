//===-- compiler/prims.cpp - Primitive inlining and range analysis ---------===//
//
// Robust primitives (§3.2.3): every primitive checks its argument types and
// its exceptional conditions (overflow, zero divisor, bounds) and transfers
// to the caller's IfFail: handler on failure. The optimizer opens the
// common primitives into explicit type tests + raw operations, then uses
// the type bindings to constant-fold the tests, the overflow checks, and
// sometimes the primitive itself (integer subrange analysis).
//
//===----------------------------------------------------------------------===//

#include "compiler/analyze.h"

#include "bytecode/bytecode.h"
#include "runtime/selector.h"
#include "vm/object.h"

#include <cassert>

using namespace mself;
using namespace mself::ast;

namespace {

/// Widest array size the runtime will create; used as the size-type bound.
constexpr int64_t kMaxArraySize = int64_t(1) << 30;

std::optional<std::pair<int64_t, int64_t>> hull(const Type *T) {
  if (auto R = T->intRange())
    return R;
  if (T->kind() == Type::Kind::Merge || T->kind() == Type::Kind::Union) {
    int64_t Lo = kMaxSmallInt, Hi = kMinSmallInt;
    for (const Type *E : T->elems()) {
      auto R = hull(E);
      if (!R)
        return std::nullopt;
      Lo = std::min(Lo, R->first);
      Hi = std::max(Hi, R->second);
    }
    return std::make_pair(Lo, Hi);
  }
  return std::nullopt;
}

/// Exact interval arithmetic for Add/Sub/Mul over int64 with saturation
/// outside the small-int range. \returns nullopt when bounds overflow
/// int64 computation entirely.
std::optional<std::pair<int64_t, int64_t>>
intervalArith(ArithKind K, std::pair<int64_t, int64_t> A,
              std::pair<int64_t, int64_t> B) {
  auto Safe = [](int64_t X, int64_t Y, ArithKind K, int64_t &Out) {
    switch (K) {
    case ArithKind::Add:
      return !__builtin_add_overflow(X, Y, &Out);
    case ArithKind::Sub:
      return !__builtin_sub_overflow(X, Y, &Out);
    case ArithKind::Mul:
      return !__builtin_mul_overflow(X, Y, &Out);
    default:
      return false;
    }
  };
  int64_t Candidates[4];
  std::pair<int64_t, int64_t> Pairs[4] = {{A.first, B.first},
                                          {A.first, B.second},
                                          {A.second, B.first},
                                          {A.second, B.second}};
  for (int I = 0; I < 4; ++I)
    if (!Safe(Pairs[I].first, Pairs[I].second, K, Candidates[I]))
      return std::nullopt;
  int64_t Lo = Candidates[0], Hi = Candidates[0];
  for (int I = 1; I < 4; ++I) {
    Lo = std::min(Lo, Candidates[I]);
    Hi = std::max(Hi, Candidates[I]);
  }
  return std::make_pair(Lo, Hi);
}

bool inSmallIntRange(std::pair<int64_t, int64_t> R) {
  return R.first >= kMinSmallInt && R.second <= kMaxSmallInt;
}

} // namespace

//===----------------------------------------------------------------------===//
// Type tests for primitive operands
//===----------------------------------------------------------------------===//

void Analyzer::requireInt(State &S, int Vreg, const Expr *OnFail,
                          EvalCtx &Ctx, std::vector<State> &FailStates,
                          std::vector<int> &FailResults) {
  if (S.Dead)
    return;
  const Type *T = typeOf(S, Vreg);
  if (T->definiteMap(W) == W.smallIntMap()) {
    ++Stats.ChecksEliminated; // The robust primitive's test folded away.
    return;
  }
  if (T->excludesInt(W)) {
    // The primitive is guaranteed to fail: the whole path becomes the
    // failure handler.
    State FailS = std::move(S);
    S = State();
    S.Dead = true;
    FailResults.push_back(evalFailHandler(FailS, OnFail, Ctx));
    FailStates.push_back(std::move(FailS));
    return;
  }
  Node *Test = emit(S, NodeOp::TestInt, 2);
  Test->A = Vreg;
  ++Stats.TypeTestsEmitted;
  State FailS = forkState(S, Test, 1);
  refineType(FailS, Vreg, TC.difference(T, TC.intClass()));
  FailResults.push_back(evalFailHandler(FailS, OnFail, Ctx));
  FailStates.push_back(std::move(FailS));
  // Continue on the integer branch, refining the tested variable too.
  S.Tail = Test;
  S.Slot = 0;
  auto H = hull(T);
  refineType(S, Vreg,
             H ? TC.intRange(H->first, H->second) : TC.intClass());
}

void Analyzer::requireMap(State &S, int Vreg, Map *M, const Expr *OnFail,
                          EvalCtx &Ctx, std::vector<State> &FailStates,
                          std::vector<int> &FailResults) {
  if (S.Dead)
    return;
  const Type *T = typeOf(S, Vreg);
  if (T->definiteMap(W) == M) {
    ++Stats.ChecksEliminated;
    return;
  }
  if (T->excludesMap(W, M)) {
    State FailS = std::move(S);
    S = State();
    S.Dead = true;
    FailResults.push_back(evalFailHandler(FailS, OnFail, Ctx));
    FailStates.push_back(std::move(FailS));
    return;
  }
  Node *Test = emit(S, NodeOp::TestMap, 2);
  Test->A = Vreg;
  Test->MapArg = M;
  ++Stats.TypeTestsEmitted;
  State FailS = forkState(S, Test, 1);
  refineType(FailS, Vreg, TC.difference(T, TC.classOf(M)));
  FailResults.push_back(evalFailHandler(FailS, OnFail, Ctx));
  FailStates.push_back(std::move(FailS));
  S.Tail = Test;
  S.Slot = 0;
  refineType(S, Vreg, TC.classOf(M));
}

int Analyzer::evalFailHandler(State &S, const Expr *OnFail, EvalCtx &Ctx) {
  if (S.Dead)
    return newVreg();
  if (!OnFail) {
    // No handler: the default failure block calls the standard error
    // routine (§3.2.3).
    emitError(S, "primitive failed");
    return newVreg();
  }
  int H = evalExpr(S, OnFail, Ctx);
  if (S.Dead)
    return H;
  const Type *T = typeOf(S, H);
  if (P.Inlining && T->isClosure() &&
      T->closureBlock()->Body.NumArgs == 0)
    return inlineBlockBody(S, T, H, {}, Ctx);
  return emitDynamicSend(S, H, W.selectors().Value, {});
}

//===----------------------------------------------------------------------===//
// Integer arithmetic and comparison primitives
//===----------------------------------------------------------------------===//

int Analyzer::evalIntArith(State &S, ArithKind K, int RecvVreg, int ArgVreg,
                           const Expr *OnFail, EvalCtx &Ctx) {
  std::vector<State> FailStates;
  std::vector<int> FailResults;
  requireInt(S, RecvVreg, OnFail, Ctx, FailStates, FailResults);
  requireInt(S, ArgVreg, OnFail, Ctx, FailStates, FailResults);

  int OkResult = -1;
  if (!S.Dead) {
    const Type *RT = typeOf(S, RecvVreg);
    const Type *AT = typeOf(S, ArgVreg);
    auto RC = RT->constant();
    auto AC = AT->constant();

    // Constant folding: execute the primitive at compile time (§3.2.3).
    if (RC && AC) {
      int64_t A = RC->asInt(), B = AC->asInt();
      int64_t Res = 0;
      bool Fails;
      switch (K) {
      case ArithKind::Add:
        Fails = __builtin_add_overflow(A, B, &Res) || !fitsSmallInt(Res);
        break;
      case ArithKind::Sub:
        Fails = __builtin_sub_overflow(A, B, &Res) || !fitsSmallInt(Res);
        break;
      case ArithKind::Mul:
        Fails = __builtin_mul_overflow(A, B, &Res) || !fitsSmallInt(Res);
        break;
      case ArithKind::Div:
      case ArithKind::Mod:
        Fails = B == 0 || (A == kMinSmallInt && B == -1);
        if (!Fails)
          Res = K == ArithKind::Div ? A / B : A % B;
        break;
      }
      if (Fails) {
        State FailS = std::move(S);
        S = State();
        S.Dead = true;
        FailResults.push_back(evalFailHandler(FailS, OnFail, Ctx));
        FailStates.push_back(std::move(FailS));
      } else {
        OkResult = newVreg();
        Node *C = emit(S, NodeOp::Const, 1);
        C->Dst = OkResult;
        C->Val = Value::fromInt(Res);
        setType(S, OkResult, TC.constantOf(C->Val));
        ++Stats.ChecksEliminated;
      }
    } else {
      auto RR = P.RangeAnalysis ? RT->intRange() : std::nullopt;
      auto AR = P.RangeAnalysis ? AT->intRange() : std::nullopt;
      bool IsAddSubMul = K == ArithKind::Add || K == ArithKind::Sub ||
                         K == ArithKind::Mul;
      std::optional<std::pair<int64_t, int64_t>> ResRange;
      if (RR && AR && IsAddSubMul)
        ResRange = intervalArith(K, *RR, *AR);

      OkResult = newVreg();
      if (IsAddSubMul && ResRange && inSmallIntRange(*ResRange)) {
        // Integer subrange analysis proves no overflow: a single raw
        // instruction remains (§3.2.3).
        Node *N = emit(S, NodeOp::ArithRR, 1);
        N->Arith = K;
        N->Dst = OkResult;
        N->A = RecvVreg;
        N->B = ArgVreg;
        setType(S, OkResult, TC.intRange(ResRange->first, ResRange->second));
        ++Stats.ChecksEliminated;
      } else {
        Node *N = emit(S, NodeOp::ArithCk, 2);
        N->Arith = K;
        N->Dst = OkResult;
        N->A = RecvVreg;
        N->B = ArgVreg;
        State FailS = forkState(S, N, 1);
        FailResults.push_back(evalFailHandler(FailS, OnFail, Ctx));
        FailStates.push_back(std::move(FailS));
        S.Tail = N;
        S.Slot = 0;
        const Type *ResT = TC.intClass();
        if (P.RangeAnalysis) {
          if (ResRange)
            ResT = TC.intRange(std::max(ResRange->first, kMinSmallInt),
                               std::min(ResRange->second, kMaxSmallInt));
          else if (K == ArithKind::Mod && AR && AR->first > 0)
            ResT = TC.intRange(0, AR->second - 1); // receiver sign unknown?
        }
        // Mod of a possibly-negative dividend can be negative: only narrow
        // when the dividend is provably non-negative.
        if (K == ArithKind::Mod &&
            !(RR && RR->first >= 0 && AR && AR->first > 0))
          ResT = TC.intClass();
        setType(S, OkResult, ResT);
      }
    }
  }

  if (FailStates.empty())
    return OkResult;
  std::vector<State> All = std::move(FailStates);
  std::vector<int> Results = std::move(FailResults);
  if (!S.Dead || OkResult >= 0) {
    All.push_back(std::move(S));
    Results.push_back(OkResult >= 0 ? OkResult : newVreg());
  }
  int Out = -1;
  State Joined = mergeStates(std::move(All), std::move(Results), Out);
  S = std::move(Joined);
  return Out;
}

int Analyzer::evalIntCompare(State &S, Cond C, int RecvVreg, int ArgVreg,
                             const Expr *OnFail, EvalCtx &Ctx) {
  std::vector<State> FailStates;
  std::vector<int> FailResults;
  requireInt(S, RecvVreg, OnFail, Ctx, FailStates, FailResults);
  requireInt(S, ArgVreg, OnFail, Ctx, FailStates, FailResults);

  std::vector<State> Outs;
  std::vector<int> Results;
  if (!S.Dead) {
    const Type *RT = typeOf(S, RecvVreg);
    const Type *AT = typeOf(S, ArgVreg);
    auto RR = RT->intRange();
    auto AR = AT->intRange();

    // Fold the comparison when the subranges decide it (§3.2.3): constants
    // always, disjoint/ordered ranges when range analysis is on.
    std::optional<bool> Known;
    if (RR && AR && (P.RangeAnalysis || (RR->first == RR->second &&
                                         AR->first == AR->second))) {
      switch (C) {
      case Cond::Lt:
        if (RR->second < AR->first)
          Known = true;
        else if (RR->first >= AR->second)
          Known = false;
        break;
      case Cond::Le:
        if (RR->second <= AR->first)
          Known = true;
        else if (RR->first > AR->second)
          Known = false;
        break;
      case Cond::Gt:
        if (RR->first > AR->second)
          Known = true;
        else if (RR->second <= AR->first)
          Known = false;
        break;
      case Cond::Ge:
        if (RR->first >= AR->second)
          Known = true;
        else if (RR->second < AR->first)
          Known = false;
        break;
      case Cond::Eq:
        if (RR->first == RR->second && AR->first == AR->second)
          Known = RR->first == AR->first;
        else if (RR->second < AR->first || RR->first > AR->second)
          Known = false;
        break;
      case Cond::Ne:
        if (RR->first == RR->second && AR->first == AR->second)
          Known = RR->first != AR->first;
        else if (RR->second < AR->first || RR->first > AR->second)
          Known = true;
        break;
      default:
        break;
      }
    }
    if (Known) {
      ++Stats.ChecksEliminated;
      int T = newVreg();
      Node *N = emit(S, NodeOp::Const, 1);
      N->Dst = T;
      N->Val = W.boolValue(*Known);
      setType(S, T, TC.constantOf(N->Val));
      Outs.push_back(std::move(S));
      Results.push_back(T);
    } else {
      Node *Br = emit(S, NodeOp::CompareBr, 2);
      Br->CondCode = C;
      Br->A = RecvVreg;
      Br->B = ArgVreg;

      State TrueS = forkState(S, Br, 0);
      State FalseS = forkState(S, Br, 1);
      // Refine the operand subranges on each branch (§3.2.1).
      if (P.RangeAnalysis && RR && AR) {
        auto Clamp = [&](State &St, int V, int64_t Lo, int64_t Hi) {
          if (Lo > Hi) {
            St.Dead = true;
            return;
          }
          refineType(St, V, TC.intRange(Lo, Hi));
        };
        switch (C) {
        case Cond::Lt:
          Clamp(TrueS, RecvVreg, RR->first, std::min(RR->second,
                                                     AR->second - 1));
          Clamp(TrueS, ArgVreg, std::max(AR->first, RR->first + 1),
                AR->second);
          Clamp(FalseS, RecvVreg, std::max(RR->first, AR->first),
                RR->second);
          Clamp(FalseS, ArgVreg, AR->first, std::min(AR->second,
                                                     RR->second));
          break;
        case Cond::Le:
          Clamp(TrueS, RecvVreg, RR->first, std::min(RR->second,
                                                     AR->second));
          Clamp(TrueS, ArgVreg, std::max(AR->first, RR->first), AR->second);
          Clamp(FalseS, RecvVreg, std::max(RR->first, AR->first + 1),
                RR->second);
          Clamp(FalseS, ArgVreg, AR->first, std::min(AR->second,
                                                     RR->second - 1));
          break;
        case Cond::Gt:
          Clamp(TrueS, RecvVreg, std::max(RR->first, AR->first + 1),
                RR->second);
          Clamp(TrueS, ArgVreg, AR->first, std::min(AR->second,
                                                    RR->second - 1));
          Clamp(FalseS, RecvVreg, RR->first, std::min(RR->second,
                                                      AR->second));
          Clamp(FalseS, ArgVreg, std::max(AR->first, RR->first), AR->second);
          break;
        case Cond::Ge:
          Clamp(TrueS, RecvVreg, std::max(RR->first, AR->first), RR->second);
          Clamp(TrueS, ArgVreg, AR->first, std::min(AR->second, RR->second));
          Clamp(FalseS, RecvVreg, RR->first, std::min(RR->second,
                                                      AR->second - 1));
          Clamp(FalseS, ArgVreg, std::max(AR->first, RR->first + 1),
                AR->second);
          break;
        case Cond::Eq: {
          int64_t Lo = std::max(RR->first, AR->first);
          int64_t Hi = std::min(RR->second, AR->second);
          Clamp(TrueS, RecvVreg, Lo, Hi);
          Clamp(TrueS, ArgVreg, Lo, Hi);
          break;
        }
        default:
          break;
        }
      }
      // Bind the boolean result as a constant on each branch; the merge
      // below creates exactly the merge type later splitting consumes.
      int RT1 = newVreg();
      Node *CT = emit(TrueS, NodeOp::Const, 1);
      CT->Dst = RT1;
      CT->Val = W.trueValue();
      setType(TrueS, RT1, TC.constantOf(W.trueValue()));
      int RF = newVreg();
      Node *CF = emit(FalseS, NodeOp::Const, 1);
      CF->Dst = RF;
      CF->Val = W.falseValue();
      setType(FalseS, RF, TC.constantOf(W.falseValue()));
      Outs.push_back(std::move(TrueS));
      Results.push_back(RT1);
      Outs.push_back(std::move(FalseS));
      Results.push_back(RF);
    }
  }

  for (size_t I = 0; I < FailStates.size(); ++I) {
    Outs.push_back(std::move(FailStates[I]));
    Results.push_back(FailResults[I]);
  }
  int Out = -1;
  State Joined = mergeStates(std::move(Outs), std::move(Results), Out);
  S = std::move(Joined);
  return Out;
}

//===----------------------------------------------------------------------===//
// Primitive dispatch
//===----------------------------------------------------------------------===//

int Analyzer::evalPrim(State &S, const PrimCall *E, EvalCtx &Ctx) {
  PrimId Id = primIdFor(*E->Selector);
  int Recv = evalExpr(S, E->Recv, Ctx);
  std::vector<int> Args;
  for (const Expr *A : E->Args) {
    if (S.Dead)
      return newVreg();
    Args.push_back(evalExpr(S, A, Ctx));
  }
  if (S.Dead)
    return newVreg();
  if (Id == PrimId::Invalid ||
      primInfo(Id).Argc != static_cast<int>(Args.size())) {
    emitError(S, "unknown primitive: " + *E->Selector);
    return newVreg();
  }

  // A generic (non-inlined) primitive call with an explicit failure path.
  auto genericPrim = [&](const Type *ResultT, bool CanFail) -> int {
    for (int A : Args)
      escapeIfClosure(S, A);
    escapeIfClosure(S, Recv);
    int T = newVreg();
    Node *N = emit(S, NodeOp::PrimNode, CanFail ? 2 : 1);
    N->Dst = T;
    N->Prim = Id;
    N->Args.push_back(Recv);
    for (int A : Args)
      N->Args.push_back(A);
    setType(S, T, ResultT);
    if (!CanFail)
      return T;
    State FailS = forkState(S, N, 1);
    int FailR = evalFailHandler(FailS, E->OnFail, Ctx);
    S.Tail = N;
    S.Slot = 0;
    std::vector<State> All;
    All.push_back(std::move(S));
    All.push_back(std::move(FailS));
    int Out = -1;
    State Joined = mergeStates(std::move(All), {T, FailR}, Out);
    S = std::move(Joined);
    return Out;
  };

  if (!P.Inlining)
    return genericPrim(TC.unknown(), primInfo(Id).CanFail);

  switch (Id) {
  case PrimId::IntAdd:
    return evalIntArith(S, ArithKind::Add, Recv, Args[0], E->OnFail, Ctx);
  case PrimId::IntSub:
    return evalIntArith(S, ArithKind::Sub, Recv, Args[0], E->OnFail, Ctx);
  case PrimId::IntMul:
    return evalIntArith(S, ArithKind::Mul, Recv, Args[0], E->OnFail, Ctx);
  case PrimId::IntDiv:
    return evalIntArith(S, ArithKind::Div, Recv, Args[0], E->OnFail, Ctx);
  case PrimId::IntMod:
    return evalIntArith(S, ArithKind::Mod, Recv, Args[0], E->OnFail, Ctx);
  case PrimId::IntLT:
    return evalIntCompare(S, Cond::Lt, Recv, Args[0], E->OnFail, Ctx);
  case PrimId::IntLE:
    return evalIntCompare(S, Cond::Le, Recv, Args[0], E->OnFail, Ctx);
  case PrimId::IntGT:
    return evalIntCompare(S, Cond::Gt, Recv, Args[0], E->OnFail, Ctx);
  case PrimId::IntGE:
    return evalIntCompare(S, Cond::Ge, Recv, Args[0], E->OnFail, Ctx);
  case PrimId::IntEQ:
    return evalIntCompare(S, Cond::Eq, Recv, Args[0], E->OnFail, Ctx);
  case PrimId::IntNE:
    return evalIntCompare(S, Cond::Ne, Recv, Args[0], E->OnFail, Ctx);
  case PrimId::Eq: {
    const Type *RT = typeOf(S, Recv);
    const Type *AT = typeOf(S, Args[0]);
    auto RC = RT->constant();
    auto AC = AT->constant();
    if (RC && AC) {
      int T = newVreg();
      Node *N = emit(S, NodeOp::Const, 1);
      N->Dst = T;
      N->Val = W.boolValue(RC->identicalTo(*AC));
      setType(S, T, TC.constantOf(N->Val));
      return T;
    }
    Node *Br = emit(S, NodeOp::CompareBr, 2);
    Br->CondCode = Cond::IdEq;
    Br->A = Recv;
    Br->B = Args[0];
    State TrueS = forkState(S, Br, 0);
    State FalseS = forkState(S, Br, 1);
    int RT1 = newVreg(), RF = newVreg();
    Node *CT = emit(TrueS, NodeOp::Const, 1);
    CT->Dst = RT1;
    CT->Val = W.trueValue();
    setType(TrueS, RT1, TC.constantOf(W.trueValue()));
    Node *CF = emit(FalseS, NodeOp::Const, 1);
    CF->Dst = RF;
    CF->Val = W.falseValue();
    setType(FalseS, RF, TC.constantOf(W.falseValue()));
    std::vector<State> Outs;
    Outs.push_back(std::move(TrueS));
    Outs.push_back(std::move(FalseS));
    int Out = -1;
    State Joined = mergeStates(std::move(Outs), {RT1, RF}, Out);
    S = std::move(Joined);
    return Out;
  }
  case PrimId::At:
  case PrimId::AtPut: {
    const Type *RT = typeOf(S, Recv);
    if (RT->definiteMap(W) != W.arrayMap())
      return genericPrim(TC.unknown(), true);
    ++Stats.ChecksEliminated; // receiver check folded
    std::vector<State> FailStates;
    std::vector<int> FailResults;
    requireInt(S, Args[0], E->OnFail, Ctx, FailStates, FailResults);
    int T = newVreg();
    if (!S.Dead) {
      if (Id == PrimId::At) {
        Node *N = emit(S, NodeOp::ArrAt, 2);
        N->Dst = T;
        N->A = Recv;
        N->B = Args[0];
        State FailS = forkState(S, N, 1);
        FailResults.push_back(evalFailHandler(FailS, E->OnFail, Ctx));
        FailStates.push_back(std::move(FailS));
        S.Tail = N;
        S.Slot = 0;
        setType(S, T, TC.unknown());
      } else {
        escapeIfClosure(S, Args[1]);
        Node *N = emit(S, NodeOp::ArrAtPut, 2);
        N->A = Recv;
        N->B = Args[0];
        N->C = Args[1];
        State FailS = forkState(S, N, 1);
        FailResults.push_back(evalFailHandler(FailS, E->OnFail, Ctx));
        FailStates.push_back(std::move(FailS));
        S.Tail = N;
        S.Slot = 0;
        Node *Mv = emit(S, NodeOp::Move, 1);
        Mv->Dst = T;
        Mv->A = Args[1];
        setType(S, T, typeOf(S, Args[1]));
      }
    }
    if (FailStates.empty())
      return T;
    std::vector<State> All = std::move(FailStates);
    std::vector<int> Results = std::move(FailResults);
    if (!S.Dead) {
      All.push_back(std::move(S));
      Results.push_back(T);
    }
    int Out = -1;
    State Joined = mergeStates(std::move(All), std::move(Results), Out);
    S = std::move(Joined);
    return Out;
  }
  case PrimId::Size: {
    const Type *RT = typeOf(S, Recv);
    if (RT->definiteMap(W) != W.arrayMap())
      return genericPrim(TC.intRange(0, kMaxArraySize), true);
    ++Stats.ChecksEliminated;
    int T = newVreg();
    Node *N = emit(S, NodeOp::ArrSize, 1);
    N->Dst = T;
    N->A = Recv;
    setType(S, T, TC.intRange(0, kMaxArraySize));
    return T;
  }
  case PrimId::VectorNew:
  case PrimId::VectorNewFilling: {
    auto SR = typeOf(S, Args[0])->intRange();
    bool CanFail =
        !(SR && SR->first >= 0 && SR->second <= kMaxArraySize);
    if (!CanFail)
      ++Stats.ChecksEliminated;
    return genericPrim(TC.classOf(W.arrayMap()), CanFail);
  }
  case PrimId::Clone: {
    Map *M = typeOf(S, Recv)->definiteMap(W);
    bool CanFail = true;
    const Type *ResT = TC.unknown();
    if (M) {
      ResT = TC.classOf(M);
      switch (M->kind()) {
      case ObjectKind::Plain:
      case ObjectKind::Array:
      case ObjectKind::SmallInt:
      case ObjectKind::String:
      case ObjectKind::Method:
        CanFail = false;
        ++Stats.ChecksEliminated;
        break;
      default:
        break;
      }
    }
    return genericPrim(ResT, CanFail);
  }
  case PrimId::StrCat:
    return genericPrim(TC.classOf(W.stringMap()), true);
  case PrimId::StrEq:
    return genericPrim(TC.unknown(), true);
  case PrimId::StrAt:
    // Byte values; the range lets downstream comparisons against character
    // literals fold when the other side is out of range.
    return genericPrim(TC.intRange(0, 255), true);
  case PrimId::StrFromTo:
    return genericPrim(TC.classOf(W.stringMap()), true);
  case PrimId::Print:
  case PrimId::PrintLine:
    return genericPrim(typeOf(S, Recv), false);
  case PrimId::ErrorOp: {
    int R = genericPrim(TC.unknown(), false);
    // _Error: always fails at run time; nothing follows it.
    S.Dead = true;
    return R;
  }
  case PrimId::Invalid:
    break;
  }
  emitError(S, "unknown primitive");
  return newVreg();
}
