//===-- vm/value.cpp - Tagged value representation ------------------------===//

#include "vm/value.h"

#include "vm/object.h"

#include <sstream>

using namespace mself;

std::string Value::describe() const {
  if (isEmpty())
    return "<empty>";
  if (isInt())
    return std::to_string(asInt());
  Object *O = asObject();
  switch (O->kind()) {
  case ObjectKind::String:
    return "'" + static_cast<StringObj *>(O)->str() + "'";
  case ObjectKind::Array: {
    std::ostringstream Os;
    Os << "<array size " << static_cast<ArrayObj *>(O)->size() << ">";
    return Os.str();
  }
  case ObjectKind::Method:
    return "<method " + *static_cast<MethodObj *>(O)->selector() + ">";
  case ObjectKind::Block:
    return "<block>";
  case ObjectKind::Env:
    return "<env>";
  case ObjectKind::SmallInt:
  case ObjectKind::Plain:
    break;
  }
  return "<" + O->map()->debugName() + ">";
}
