//===-- vm/map.cpp - Maps (hidden classes) and slot descriptors ----------===//

#include "vm/map.h"

#include "vm/heap.h"

#include <cassert>

using namespace mself;

int Map::addSlot(const std::string *Name, SlotKind Kind, Value Constant,
                 const std::string *SetterName) {
  assert(Name && "slot name must be interned");
  assert(ReadIndex.find(Name) == ReadIndex.end() && "duplicate slot name");

  SlotDesc Desc;
  Desc.Name = Name;
  Desc.Kind = Kind;
  Desc.Constant = Constant;
  if (Kind == SlotKind::Data) {
    Desc.FieldIndex = FieldCount++;
    FieldTags.resize(static_cast<size_t>(FieldCount));
  }

  int Index = static_cast<int>(Slots.size());
  Slots.push_back(Desc);
  ReadIndex.emplace(Name, Index);
  if (Kind == SlotKind::Parent)
    ParentIndices.push_back(Index);
  if (Kind == SlotKind::Data && SetterName)
    AssignIndex.emplace(SetterName, Index);
  return Index;
}

void Map::setSlotConstant(int SlotIndex, Value V) {
  assert(SlotIndex >= 0 && SlotIndex < static_cast<int>(Slots.size()) &&
         "slot index out of range");
  SlotDesc &Desc = Slots[SlotIndex];
  assert((Desc.Kind == SlotKind::Constant || Desc.Kind == SlotKind::Parent) &&
         "only constant-valued slots can be late-bound");
  Desc.Constant = V;
}

const SlotDesc *Map::findSlot(const std::string *Name) const {
  auto It = ReadIndex.find(Name);
  if (It == ReadIndex.end())
    return nullptr;
  return &Slots[It->second];
}

const SlotDesc *Map::findAssignSlot(const std::string *NameColon) const {
  auto It = AssignIndex.find(NameColon);
  if (It == AssignIndex.end())
    return nullptr;
  return &Slots[It->second];
}

void Map::tagConflict(int FieldIndex) {
  SlotTypeTag &T = FieldTags[static_cast<size_t>(FieldIndex)];
  T.St = SlotTypeTag::State::Poly;
  T.TypedMap = nullptr;
  if (OwnerHeap)
    OwnerHeap->notifySlotTagConflict(this, FieldIndex);
}
