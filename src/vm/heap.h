//===-- vm/heap.h - Generational garbage-collected heap ---------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap owns all Objects and all Maps. Two collector configurations:
///
///  * Generational (the default): objects are born in a contiguous
///    bump-pointer *nursery* and reclaimed by Cheney-style copying
///    scavenges — live objects are relocated through forwarding pointers,
///    survivors age and are *promoted* into the mark-sweep old space once
///    they reach the promotion age. Old objects holding pointers to young
///    objects sit on a *remembered set*, maintained by the write barrier in
///    Object::setField/ArrayObj::atPut, and serve as extra scavenge roots.
///
///  * Mark-sweep only (`configureGc(false, ...)`): every object is
///    allocated directly in the old space and reclaimed by full
///    stop-the-world mark-sweep — the pre-generational behaviour, kept as
///    the differential-testing and benchmarking baseline.
///
/// Orthogonally, `configureIncrementalMark(true, budget)` replaces the
/// stop-the-world old-space collections with an incremental tri-color
/// cycle: a bounded begin pause snapshots the roots, marking then advances
/// in budget-sliced increments at safepoints while the mutator runs with a
/// snapshot-at-the-beginning deletion barrier (Object::writeBarrier logs
/// overwritten old-space references grey), and the sweep is lazy and
/// chunked over a detached snapshot list (objects born during the cycle
/// are allocated black or young and are never swept by it). See
/// DESIGN.md §15 for the invariant and the termination handshake.
///
/// Because objects move, GcVisitor is an *updating* visitor: it takes every
/// root by reference and rewrites it to the object's new location. All
/// collections happen only at interpreter safepoints; allocation itself
/// never collects (a full nursery between safepoints falls back to direct
/// old-space allocation), so raw Object* values are stable between
/// safepoints. Maps are immortal (their constant slots are traced — and
/// updated — as roots). Roots are enumerated through registered
/// RootProviders (the world's globals, the interpreter's frame stack, and
/// the code manager's literal/PIC caches).
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_VM_HEAP_H
#define MINISELF_VM_HEAP_H

#include "vm/object.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mself {

class Heap;

/// Passed to RootProviders during collection; call visit() on every root.
/// Roots are taken by reference: a scavenge relocates young objects and
/// writes the new address back through the reference.
class GcVisitor {
public:
  enum class Mode : uint8_t {
    Mark,     ///< Full mark-sweep marking; nothing moves.
    Scavenge, ///< Copying scavenge; young objects move, refs are updated.
    ArenaFixup, ///< After an arena evacuation: rewrite references to
                ///< evacuated arena shells to their heap copies.
  };

  GcVisitor(Heap &H, Mode M) : H(H), TheMode(M) {}

  void visit(Value &V) {
    if (!V.isObject())
      return;
    Object *O = V.asObject();
    visitObject(O);
    V = Value::fromObject(O);
  }
  void visitObject(Object *&O);

private:
  Heap &H;
  Mode TheMode;
};

/// Anything holding GC roots outside the heap implements this.
class RootProvider {
public:
  virtual ~RootProvider() = default;
  virtual void traceRoots(GcVisitor &V) = 0;
};

/// Fixed-footprint pause histogram: power-of-two microsecond buckets plus
/// a running max and total. Bucket 0 holds pauses under 2 µs; bucket B
/// holds [2^B, 2^(B+1)) µs; the last bucket is open-ended (>= ~0.5 s).
/// Recording is O(log pause) with no allocation, so GcStats stays a flat
/// copyable struct no matter how long the process runs — the unbounded
/// per-pause vector this replaces was copied on every statsSnapshot().
struct PauseHistogram {
  static constexpr int kBuckets = 20;
  uint64_t Counts[kBuckets] = {};
  uint64_t Samples = 0;
  double TotalSeconds = 0;
  double MaxSeconds = 0;

  void record(double Seconds) {
    ++Samples;
    TotalSeconds += Seconds;
    if (Seconds > MaxSeconds)
      MaxSeconds = Seconds;
    auto Us = static_cast<uint64_t>(Seconds * 1e6);
    int B = 0;
    while (Us > 1 && B < kBuckets - 1) {
      Us >>= 1;
      ++B;
    }
    ++Counts[B];
  }

  /// Conservative (upper-bound) estimate of the \p P percentile
  /// (0 < P <= 1) in seconds: the upper edge of the bucket holding the
  /// rank-P sample, clamped to the observed max. 0 when empty.
  double percentileSeconds(double P) const {
    if (Samples == 0)
      return 0;
    auto Rank = static_cast<uint64_t>(P * static_cast<double>(Samples) + 0.5);
    if (Rank < 1)
      Rank = 1;
    if (Rank > Samples)
      Rank = Samples;
    uint64_t Cum = 0;
    for (int B = 0; B < kBuckets; ++B) {
      Cum += Counts[B];
      if (Cum >= Rank) {
        if (B == kBuckets - 1)
          return MaxSeconds; // Open-ended top bucket: no finite upper edge.
        double Upper = static_cast<double>(uint64_t(1) << (B + 1)) * 1e-6;
        return Upper < MaxSeconds ? Upper : MaxSeconds;
      }
    }
    return MaxSeconds;
  }

  /// Accumulates \p O into this histogram (server roll-ups).
  void merge(const PauseHistogram &O) {
    for (int B = 0; B < kBuckets; ++B)
      Counts[B] += O.Counts[B];
    Samples += O.Samples;
    TotalSeconds += O.TotalSeconds;
    if (O.MaxSeconds > MaxSeconds)
      MaxSeconds = O.MaxSeconds;
  }
};

/// Aggregate collector observability: collection counts, pause timings,
/// promotion/survival volumes, and write-barrier traffic.
struct GcStats {
  uint64_t Scavenges = 0;       ///< Minor (nursery-only) collections.
  uint64_t FullCollections = 0; ///< Full (evacuate + mark-sweep) collections.

  uint64_t NurseryAllocs = 0;  ///< Objects born on the bump-pointer path.
  uint64_t OldAllocs = 0;      ///< Objects born directly in the old space.
  uint64_t OverflowAllocs = 0; ///< Old-space births forced by a full nursery.
  uint64_t BytesAllocatedNursery = 0; ///< Shell + payload bytes, nursery.
  uint64_t BytesAllocatedOld = 0;     ///< Shell + payload bytes, old space.

  uint64_t ObjectsCopied = 0;   ///< Survivors kept young (copied to-space).
  uint64_t BytesCopied = 0;     ///< Shell bytes of the above.
  uint64_t ObjectsPromoted = 0; ///< Survivors tenured into the old space.
  uint64_t BytesPromoted = 0;   ///< Shell bytes of the above.

  uint64_t BarrierHits = 0; ///< Write-barrier slow-path remembered-set adds.

  /// Arena objects copied to the heap because a store, return, or
  /// non-local return would have let them outlive their activation. Each
  /// evacuation is the escape classifier being wrong (or invalidated)
  /// about one object; the nets keep it a performance event, not a bug.
  uint64_t ArenaEvacuations = 0;

  /// Safepoint collections skipped because a background compile held the
  /// GC gate; the collection runs at a later safepoint (allocation in the
  /// meantime overflows into the old space, so deferral is always safe).
  uint64_t GcDeferrals = 0;

  //===--- Incremental old-space marking (SATB) --------------------------===//

  /// Budget-sliced mark pauses taken at safepoints (including the
  /// begin-of-cycle root scan and the termination re-scan).
  uint64_t MarkIncrements = 0;
  /// Budget-sliced lazy-sweep pauses taken at safepoints.
  uint64_t SweepIncrements = 0;
  /// Incremental mark-sweep cycles run to completion.
  uint64_t MarkCycles = 0;
  /// Objects greyed by the SATB deletion barrier (overwritten old-space
  /// references logged while a mark cycle was active).
  uint64_t SatbMarks = 0;

  uint64_t SurvivedScavengeBytes = 0; ///< Live shell bytes over all scavenges.
  uint64_t ScannedScavengeBytes = 0;  ///< Nursery shell bytes examined.

  /// Scavenge pauses and old-space pauses (stop-the-world full
  /// collections, or every incremental mark/sweep slice), bucketed.
  PauseHistogram ScavengePauses;
  PauseHistogram FullPauses;

  /// Fraction of nursery bytes that survived scavenges (copied or
  /// promoted), aggregated over all scavenges so far.
  double survivalRate() const {
    return ScannedScavengeBytes
               ? double(SurvivedScavengeBytes) / double(ScannedScavengeBytes)
               : 0;
  }
  double totalPauseSeconds() const {
    return ScavengePauses.TotalSeconds + FullPauses.TotalSeconds;
  }
  double maxPauseSeconds() const {
    return ScavengePauses.MaxSeconds > FullPauses.MaxSeconds
               ? ScavengePauses.MaxSeconds
               : FullPauses.MaxSeconds;
  }
};

/// A chunked bump-pointer arena for activation-local (provably
/// non-escaping) environment and block objects. Owned by the interpreter;
/// every frame records a Mark at entry, and popping the frame releases
/// everything allocated above the mark wholesale — destructors run (shells
/// hold std::vector payloads) but there is no per-object reclamation, no
/// write-barrier traffic, and no remembered-set membership. Objects that
/// turn out to escape after all (a store into a heap object, a return, a
/// demotion) are *evacuated* to the heap by Heap::arenaEscape; the
/// abandoned shell keeps its forwarding pointer so tracing skips it, and
/// its (moved-from) destructor still runs at release.
///
/// Allocation is LIFO per frame but chunked, so deep recursion grows the
/// arena by whole chunks instead of requiring one contiguous reservation;
/// chunks are retained across releases and reused.
class ActivationArena {
public:
  /// Shells only (payload vectors live on the C++ heap), so one chunk
  /// holds hundreds of envs/blocks.
  static constexpr size_t kChunkBytes = 16u << 10;
  /// Ceiling on one frame's arena usage: a loop that creates a closure per
  /// iteration inside a single activation would otherwise grow the arena
  /// until frame exit. Past the budget the opcode handlers fall back to
  /// ordinary heap allocation for the rest of the activation.
  static constexpr size_t kFrameBudgetBytes = 32u << 10;

  /// A frame's watermark: bump position plus allocation-list head.
  struct Mark {
    size_t Chunk = 0;
    size_t Offset = 0;
    Object *Head = nullptr;
  };

  ActivationArena() = default;
  ActivationArena(const ActivationArena &) = delete;
  ActivationArena &operator=(const ActivationArena &) = delete;
  ~ActivationArena();

  Mark mark() const { return {CurChunk, CurOffset, Head}; }

  /// Bump-allocates \p Bytes (must not exceed kChunkBytes), growing a new
  /// chunk when the current one is full.
  void *allocate(size_t Bytes);

  /// Destroys every object allocated after \p M (newest first) and rewinds
  /// the bump pointer. O(objects released); zero when the frame allocated
  /// nothing.
  void release(const Mark &M);

  Object *head() const { return Head; }
  void setHead(Object *O) { Head = O; }

  /// Bytes a frame whose watermark is \p M has bump-allocated so far.
  size_t bytesSince(const Mark &M) const {
    return liveBytes() - (M.Chunk * kChunkBytes + M.Offset);
  }

  /// Peak bytes ever bump-allocated (telemetry).
  size_t highWaterBytes() const { return HighWater; }
  size_t liveBytes() const { return CurChunk * kChunkBytes + CurOffset; }

private:
  std::vector<std::unique_ptr<char[]>> Chunks;
  size_t CurChunk = 0;
  size_t CurOffset = 0;
  size_t HighWater = 0;
  Object *Head = nullptr; ///< Intrusive allocation list, newest first.
};

/// Owns every Object and Map in one mini-SELF universe.
class Heap {
public:
  static constexpr size_t kDefaultNurseryBytes = 256u << 10;
  static constexpr int kDefaultPromotionAge = 2;
  static constexpr size_t kDefaultGcThresholdBytes = 8u << 20;

  Heap();
  ~Heap();

  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// Selects the collector. Must be called before the first allocation
  /// (the driver configures the heap from its Policy before booting the
  /// world). \p Generational off reproduces the single-space mark-sweep
  /// collector exactly; on, \p NurseryBytes sizes each nursery semispace
  /// and \p PromotionAge is the number of scavenges an object must survive
  /// before being tenured (<= 0 promotes on the first scavenge).
  void configureGc(bool Generational,
                   size_t NurseryBytes = kDefaultNurseryBytes,
                   int PromotionAge = kDefaultPromotionAge,
                   size_t GcThresholdBytes = kDefaultGcThresholdBytes);

  bool generational() const { return Generational; }

  /// The old-space collector's state machine. Idle outside a cycle; an
  /// incremental cycle moves Idle -> Marking (SATB barrier active, the
  /// worklist drains in budget-sliced increments) -> Sweeping (the
  /// detached snapshot list is swept lazily) -> Idle. Stop-the-world
  /// collections never leave Idle.
  enum class OldGcPhase : uint8_t { Idle, Marking, Sweeping };

  /// Selects incremental (budget-sliced, snapshot-at-the-beginning)
  /// old-space marking in place of stop-the-world mark-sweep for the
  /// collections collectAtSafepoint() triggers. \p MaxPauseMicros bounds
  /// each mark or sweep slice; the begin-of-cycle pause is bounded by the
  /// root-set size, not the heap size. Like configureGc, must precede the
  /// first allocation. Direct collect() calls still run (and, mid-cycle,
  /// first finish) a full stop-the-world collection.
  void configureIncrementalMark(bool Enabled, uint32_t MaxPauseMicros = 1000);

  bool incrementalMark() const { return IncrementalMark; }
  OldGcPhase oldGcPhase() const { return Phase; }

  /// SATB slow path: greys \p O (an old-space object whose incoming
  /// reference was just overwritten) while this heap is marking. Called
  /// through Object::satbRecordOverwrite; no-op outside the mark phase.
  void satbLog(Object *O);

  /// Creates an immortal map. The heap retains ownership.
  Map *newMap(ObjectKind Kind, std::string DebugName);

  Object *allocPlain(Map *M);
  ArrayObj *allocArray(Map *M, size_t N, Value Fill);
  StringObj *allocString(Map *M, std::string S);

  /// String allocation callable from the background compile thread: always
  /// allocates directly in the old space (the nursery bump pointer belongs
  /// to the mutator alone) under the old-space allocation mutex. Old-space
  /// objects never move, so the returned pointer is stable even across
  /// collections — but the caller must keep the object rooted (the
  /// CompileQueue's RootProvider covers finished jobs' literals).
  StringObj *allocStringShared(Map *M, std::string S);
  MethodObj *allocMethod(Map *M, const ast::Code *Body,
                         const std::string *Selector);
  BlockObj *allocBlock(Map *M, const ast::BlockExpr *Body, Object *Env,
                       Value HomeSelf, uint64_t HomeFrameId);

  //===--- Activation-arena allocation (escape analysis) -----------------===//

  /// Arena twins of allocArray(envMap)/allocBlock: the object is born in
  /// \p A with the kGcArena flag, joins no GC space, fires no barriers,
  /// and dies when the owning frame releases its arena mark. Only the
  /// escape classifier (or the baseline compiler's syntactic check) may
  /// request these, and the runtime nets below keep them sound even when
  /// the classification is later invalidated.
  ArrayObj *allocEnvArena(ActivationArena &A, Map *M, size_t N, Value Fill);
  BlockObj *allocBlockArena(ActivationArena &A, Map *M,
                            const ast::BlockExpr *Body, Object *Env,
                            Value HomeSelf, uint64_t HomeFrameId);

  /// \returns true when \p O lives in an activation arena.
  static bool isArena(const Object *O) {
    return (O->GcFlags & Object::kGcArena) != 0;
  }

  /// The arena-escape net: copies the arena object held by \p V to the
  /// heap — transitively, so the copy never references an arena — rewrites
  /// \p V, and runs an ArenaFixup pass over every registered root so no
  /// stale reference to the abandoned shell survives. The shell keeps its
  /// forwarding pointer (tracing skips it) until its frame releases it.
  /// Never collects; safe at any point, not just safepoints.
  void arenaEscape(Value &V);

  /// Lower-level entry for Object*-typed edges (a block's captured env):
  /// evacuates \p O and its arena referents, returning the heap copy.
  /// Callers must follow up with root fixup (arenaEscape does both).
  Object *evacuateArenaObject(Object *O);

  /// Traces the slots of every live (non-evacuated) object on an arena's
  /// allocation list. The interpreter calls this from traceRoots so arena
  /// objects' outgoing references are scavenge/mark roots without the
  /// arena itself ever being scanned as a space; dead arenas (released
  /// frames) are gone from the list, so they cost nothing.
  void traceArenaList(Object *Head, GcVisitor &V);

  void addRootProvider(RootProvider *P) { Roots.push_back(P); }
  void removeRootProvider(RootProvider *P);

  /// \returns true when enough has been allocated that the caller (at a
  /// safepoint, with all live values rooted) should call
  /// collectAtSafepoint(): the nursery is near full (scavenge due), the
  /// old space grew past the threshold (full collection due), or an
  /// incremental cycle is in flight (the next mark/sweep slice is due).
  bool shouldCollect() const {
    return Phase != OldGcPhase::Idle || BytesSinceGc >= GcThresholdBytes ||
           (Generational && nurseryPressureBytes() >= ScavengeTriggerBytes);
  }

  /// The collection entry point for interpreter safepoints: a full
  /// collection when the old space crossed its growth threshold, otherwise
  /// a scavenge when the nursery is near full. When a GC gate is installed
  /// (setGcGate) and currently held — a background compile is in flight —
  /// the collection is *deferred* (GcStats::GcDeferrals) rather than run:
  /// the compile thread's analyzer holds heap references no RootProvider
  /// can enumerate, and deferral is safe because allocation never requires
  /// a collection (a full nursery overflows to the old space).
  void collectAtSafepoint();

  /// Installs (or clears, with nullptr) the GC gate: a mutex the background
  /// compile worker holds for the duration of each compile job.
  /// collectAtSafepoint() try-locks it and defers the collection when the
  /// worker wins.
  void setGcGate(std::mutex *M) { GcGate = M; }

  /// Runs a full collection: evacuates the entire nursery (survivors are
  /// promoted regardless of age), then mark-sweeps the old space. All live
  /// Values must be reachable from registered RootProviders or from map
  /// constant slots.
  void collect();

  /// Runs one minor collection (a copying scavenge of the nursery) without
  /// touching the old space. No-op under the mark-sweep-only configuration.
  void scavenge();

  size_t objectCount() const { return NumObjects; }
  /// Total collections of any kind (scavenges + full).
  size_t collectionCount() const {
    return static_cast<size_t>(Stats.Scavenges + Stats.FullCollections);
  }

  /// Old-space growth (bytes) between full collections.
  void setGcThresholdBytes(size_t N) { GcThresholdBytes = N; }
  size_t gcThresholdBytes() const { return GcThresholdBytes; }

  /// Nursery shell bytes currently in use plus payload bytes (vector and
  /// string storage) attributed to live-or-dead nursery objects.
  size_t nurseryUsedBytes() const {
    return static_cast<size_t>(NurseryTop - NurseryBase);
  }
  size_t nurseryCapacityBytes() const { return NurseryBytes; }

  /// \returns true when \p O currently lives in the nursery (and may move
  /// at the next scavenge).
  static bool isYoung(const Object *O) {
    return (O->GcFlags & Object::kGcYoung) != 0;
  }

  size_t rememberedSetSize() const { return RememberedSet.size(); }
  const GcStats &stats() const { return Stats; }

  /// A copy of the statistics taken under the old-space allocation mutex,
  /// so reading them is well-ordered against concurrent background-thread
  /// allocation (telemetry uses this; stats() remains for single-threaded
  /// callers).
  GcStats statsSnapshot() const {
    std::lock_guard<std::mutex> G(OldAllocMutex);
    return Stats;
  }

  /// Bulk-store barrier: after copying many references into \p O at once
  /// (clone primitives, field-vector resizes) without per-store barriers,
  /// re-scan it and add it to the remembered set if it gained an
  /// old-to-young reference.
  void writeBarrierAll(Object *O);

  /// Write-barrier slow path (called from Object::rememberSelf).
  void remember(Object *O);

  /// Installs the slot-tag-conflict hook: invoked synchronously on the
  /// storing (mutator) thread when one of this heap's maps sees its
  /// per-field type tag transition to Poly (Map::tagConflict). The driver
  /// routes this to CodeManager::onSlotTagConflict so BBV guard cells
  /// depending on the tag flip before the next guarded load executes.
  void setSlotTagConflictHook(std::function<void(Map *, int)> H) {
    SlotTagConflictHook = std::move(H);
  }

  /// Map::tagConflict's fan-out. At most one call per (map, field) ever —
  /// Poly is a terminal tag state.
  void notifySlotTagConflict(Map *M, int FieldIndex) {
    if (SlotTagConflictHook)
      SlotTagConflictHook(M, FieldIndex);
  }

private:
  friend class GcVisitor;

  /// Shell size (the C++ object itself, excluding heap-side payload) for an
  /// object of kind \p K, rounded up to the nursery allocation alignment.
  static size_t shellSizeFor(ObjectKind K);

  /// Allocates and constructs a T. Generational mode: bump-allocates in the
  /// nursery, falling back to the old space when full. Mark-sweep mode:
  /// always the old space.
  template <typename T, typename... Args> T *make(Map *M, Args &&...args);

  /// Charges \p Bytes of payload (vector/string storage held outside the
  /// shell) to the space object \p O lives in, so collection triggers track
  /// real allocation volume, not just shell counts.
  void chargePayload(Object *O, size_t Bytes);

  void linkOld(Object *O, size_t ShellBytes);

  /// Visits every reference held inside \p O (fields, elements, block
  /// captures), updating each through \p V.
  void traceObjectSlots(Object *O, GcVisitor &V);

  /// \returns true when \p O holds at least one reference to a young
  /// object.
  bool hasYoungRef(Object *O);

  /// Relocates young \p O (copy to to-space or promote), returning the new
  /// location; idempotent via the forwarding pointer.
  Object *relocateYoung(Object *O);

  /// The scavenge implementation; \p PromoteAll force-tenures every
  /// survivor (used by full collections to empty the nursery).
  void scavengeImpl(bool PromoteAll);

  void markSweepOldSpace();

  //===--- Incremental (SATB) old-space collection ----------------------===//

  /// Greys every root: map constant slots plus all registered providers
  /// (frames, arena lists, caches), then traces through any young objects
  /// reached. Used by the begin-of-cycle scan and the termination re-scan.
  void scanRootsForMark(GcVisitor &V);

  /// Traces the slots of every object on YoungTraceList until it is empty
  /// (young reached from roots or from old objects during a mark pause).
  void drainYoungTrace(GcVisitor &V);

  /// Opens an incremental cycle: promote-all scavenge (so the snapshot
  /// holds only immovable old-space objects), root scan, SATB on.
  void beginIncrementalMark();

  /// Drains the mark worklist for up to the pause budget (less
  /// \p SpentSeconds already paid at this safepoint). On exhaustion, runs
  /// the termination handshake (root re-scan); if nothing greys, detaches
  /// the snapshot list and flips to Sweeping.
  void markIncrement(double SpentSeconds);

  /// Ends the mark phase: detaches the old-space list for lazy sweeping,
  /// purges dead remembered-set entries, deactivates SATB.
  void flipToSweep();

  /// Sweeps a budget-bounded chunk of the detached snapshot list:
  /// survivors are relinked (marks cleared) onto the live list, garbage
  /// is freed. The cycle ends when the list is empty.
  void sweepIncrement(double SpentSeconds);

  /// Runs the in-flight incremental cycle to completion synchronously
  /// (unbounded drain + full sweep). Used by collect() so a direct call
  /// still reclaims everything dead right now, with clean mark state.
  void finishIncrementalCycle();

  size_t nurseryPressureBytes() const {
    return nurseryUsedBytes() + NurseryPayloadBytes;
  }

  //===--- Old space (mark-sweep) ---------------------------------------===//
  // The old space is the one allocation surface shared with the background
  // compile thread (allocStringShared): the list linkage and stats update
  // under OldAllocMutex, and the counters the mutator polls lock-free
  // (shouldCollect, objectCount) are atomics.
  Object *AllObjects = nullptr;
  /// Old-space growth since the last full GC.
  std::atomic<size_t> BytesSinceGc{0};
  size_t GcThresholdBytes = kDefaultGcThresholdBytes;
  mutable std::mutex OldAllocMutex;
  std::mutex *GcGate = nullptr;

  //===--- Incremental old-space marking state --------------------------===//
  bool IncrementalMark = false;
  uint32_t MaxPauseMicros = 1000;
  OldGcPhase Phase = OldGcPhase::Idle;
  /// The snapshot-era old-space list detached at the mark->sweep flip;
  /// objects born after the flip go to the fresh AllObjects list and are
  /// never visited by this cycle's sweep.
  Object *SweepList = nullptr;
  /// Pacing: no increment before this instant, so mark/sweep slices duty-
  /// cycle at ~50% even when safepoints are dense (keeps throughput near
  /// stop-the-world; total work is the same either way).
  std::chrono::steady_clock::time_point NextIncrementAt{};

  //===--- Nursery (bump-pointer semispaces) ----------------------------===//
  bool Generational = true;
  size_t NurseryBytes = kDefaultNurseryBytes;
  int PromotionAge = kDefaultPromotionAge;
  std::unique_ptr<char[]> NurserySpace[2];
  int ActiveSpace = 0;
  char *NurseryBase = nullptr;
  char *NurseryTop = nullptr;
  char *NurseryLimit = nullptr;
  /// Payload bytes attributed to nursery objects since the last scavenge;
  /// counts toward the scavenge trigger so payload-heavy allocation (big
  /// vectors, strings) cannot outgrow memory behind a quiet bump pointer.
  size_t NurseryPayloadBytes = 0;
  size_t ScavengeTriggerBytes = 0;
  Object *NurseryList = nullptr; ///< Intrusive list of nursery-born objects.
  std::vector<Object *> RememberedSet;
  bool PromoteAllThisCycle = false;
  char *ScavengeTo = nullptr; ///< To-space bump pointer during a scavenge.
  std::vector<Object *> ScanList; ///< Cheney scan worklist.
  std::vector<Object *> PromotedThisCycle;
  std::vector<Object *> MarkWorklist;
  /// Transient (within one mark pause) list of young objects to trace
  /// *through*: young objects are movable and never enter MarkWorklist,
  /// but their slots may hold the only path to a snapshot-live old object.
  /// Always drained before the pause returns to the mutator.
  std::vector<Object *> YoungTraceList;

  std::atomic<size_t> NumObjects{0};
  GcStats Stats;
  std::vector<std::unique_ptr<Map>> Maps;
  std::vector<RootProvider *> Roots;
  std::function<void(Map *, int)> SlotTagConflictHook;
};

} // namespace mself

#endif // MINISELF_VM_HEAP_H
