//===-- vm/heap.h - Mark-sweep garbage-collected heap -----------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap owns all Objects and all Maps. Objects are reclaimed by a
/// stop-the-world mark-sweep collector triggered at interpreter safepoints;
/// maps are immortal (their constant slots are traced as roots). Roots are
/// enumerated through registered RootProviders (the world's globals and the
/// interpreter's frame stack).
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_VM_HEAP_H
#define MINISELF_VM_HEAP_H

#include "vm/object.h"

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace mself {

/// Passed to RootProviders during collection; call visit() on every root.
class GcVisitor {
public:
  explicit GcVisitor(std::vector<Object *> &Worklist) : Worklist(Worklist) {}

  void visit(Value V) {
    if (V.isObject())
      visitObject(V.asObject());
  }
  void visitObject(Object *O);

private:
  std::vector<Object *> &Worklist;
};

/// Anything holding GC roots outside the heap implements this.
class RootProvider {
public:
  virtual ~RootProvider() = default;
  virtual void traceRoots(GcVisitor &V) = 0;
};

/// Owns every Object and Map in one mini-SELF universe.
class Heap {
public:
  Heap() = default;
  ~Heap();

  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// Creates an immortal map. The heap retains ownership.
  Map *newMap(ObjectKind Kind, std::string DebugName);

  Object *allocPlain(Map *M);
  ArrayObj *allocArray(Map *M, size_t N, Value Fill);
  StringObj *allocString(Map *M, std::string S);
  MethodObj *allocMethod(Map *M, const ast::Code *Body,
                         const std::string *Selector);
  BlockObj *allocBlock(Map *M, const ast::BlockExpr *Body, Object *Env,
                       Value HomeSelf, uint64_t HomeFrameId);

  void addRootProvider(RootProvider *P) { Roots.push_back(P); }
  void removeRootProvider(RootProvider *P);

  /// \returns true when enough has been allocated that the caller (at a
  /// safepoint, with all live values rooted) should call collect().
  bool shouldCollect() const { return BytesSinceGc >= GcThresholdBytes; }

  /// Runs a full mark-sweep collection. All live Values must be reachable
  /// from registered RootProviders or from map constant slots.
  void collect();

  size_t objectCount() const { return NumObjects; }
  size_t collectionCount() const { return NumCollections; }

  /// Sets the allocation volume between collections (for tests).
  void setGcThresholdBytes(size_t N) { GcThresholdBytes = N; }

private:
  /// Links \p O into the all-objects list and does allocation accounting.
  template <typename T> T *track(T *O, size_t Bytes) {
    O->NextAlloc = AllObjects;
    AllObjects = O;
    ++NumObjects;
    BytesSinceGc += Bytes;
    return O;
  }

  Object *AllObjects = nullptr;
  size_t NumObjects = 0;
  size_t BytesSinceGc = 0;
  size_t GcThresholdBytes = 8u << 20;
  size_t NumCollections = 0;
  std::vector<std::unique_ptr<Map>> Maps;
  std::vector<RootProvider *> Roots;
};

} // namespace mself

#endif // MINISELF_VM_HEAP_H
