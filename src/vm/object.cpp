//===-- vm/object.cpp - Heap object layouts -------------------------------===//

#include "vm/object.h"

// This file intentionally contains no logic; it anchors the Object vtable so
// it is emitted in exactly one translation unit.

namespace mself {
namespace {
/// Anchor referenced nowhere; forces vtable emission here.
struct ObjectVTableAnchor : Object {
  using Object::Object;
};
} // namespace
} // namespace mself
