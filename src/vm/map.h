//===-- vm/map.h - Maps (hidden classes) and slot descriptors ---*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps describe object layout and behaviour, playing the role of classes:
/// the paper's "class type" is exactly "the set of all values sharing the
/// same map" (paper §3.1, footnote 2). A map lists slots; objects created
/// from one object literal (and their clones) share a map and differ only in
/// the contents of their data-slot fields.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_VM_MAP_H
#define MINISELF_VM_MAP_H

#include "vm/value.h"

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace mself {

class Heap;

/// What kind of heap object a map describes. Small integers are not heap
/// objects but still have a (synthetic) map so that the compiler's class
/// types and runtime type tests treat them uniformly.
enum class ObjectKind : uint8_t {
  Plain,    ///< Slots-only object (most objects, booleans, nil, lobby).
  SmallInt, ///< Synthetic map shared by all tagged integers.
  Array,    ///< Indexable Value elements plus slots.
  String,   ///< Immutable byte string.
  Method,   ///< Holds a method body (lives in constant slots).
  Block,    ///< Closure: block body + captured environment.
  Env,      ///< Heap-allocated activation record for captured locals.
};

/// The role a slot plays in lookup and object layout.
enum class SlotKind : uint8_t {
  Constant,   ///< `name = value`; value stored in the map, shared.
  Data,       ///< `name <- value`; per-object field, implies `name:` setter.
  Parent,     ///< `name* = value`; constant parent, searched on lookup miss.
  Argument,   ///< Method/block formal; exists only in method maps.
};

/// One slot in a map.
struct SlotDesc {
  const std::string *Name = nullptr; ///< Interned read selector.
  SlotKind Kind = SlotKind::Constant;
  int FieldIndex = -1; ///< Index into Object fields (Data slots only).
  Value Constant;      ///< Shared value (Constant and Parent slots only).
};

/// Layout and behaviour descriptor shared by a family of objects.
///
/// Maps are immortal: they are owned by the Heap's map registry and never
/// collected, so Map* identity is stable and usable as a compile-time "class"
/// and as the key for customized compilation.
class Map {
public:
  Map(ObjectKind Kind, std::string DebugName)
      : Kind(Kind), DebugName(std::move(DebugName)) {}

  ObjectKind kind() const { return Kind; }
  const std::string &debugName() const { return DebugName; }

  /// Appends a slot. Data slots are assigned the next field index and, when
  /// \p SetterName (the interned "name:" selector) is provided, become
  /// writable through that assignment selector.
  /// \returns the new slot's index.
  int addSlot(const std::string *Name, SlotKind Kind, Value Constant = Value(),
              const std::string *SetterName = nullptr);

  /// Late-binds the constant of slot \p SlotIndex (used when bootstrapping
  /// mutually-referential core objects, e.g. native maps' parent slots).
  void setSlotConstant(int SlotIndex, Value V);

  /// \returns the slot read by selector \p Name, or nullptr.
  const SlotDesc *findSlot(const std::string *Name) const;

  /// \returns the *data* slot written by assignment selector \p NameColon
  /// (e.g. "x:" writes the data slot "x"), or nullptr.
  const SlotDesc *findAssignSlot(const std::string *NameColon) const;

  const std::deque<SlotDesc> &slots() const { return Slots; }

  /// Number of per-object Value fields that objects with this map carry.
  int fieldCount() const { return FieldCount; }

  /// \returns indices of parent slots in declaration order.
  const std::vector<int> &parentSlotIndices() const { return ParentIndices; }

  /// The heap that created this map (null for maps constructed directly in
  /// tests). Objects reach their heap through here — the write barrier's
  /// slow path needs it, and objects carry no other back pointer.
  Heap *ownerHeap() const { return OwnerHeap; }

private:
  friend class Heap; ///< Sets OwnerHeap; updates slot constants during GC.
  ObjectKind Kind;
  std::string DebugName;
  /// Deque, not vector: the background compiler retains `const SlotDesc *`
  /// into published maps across its per-lookup shape-lock window, and
  /// appending to a deque never relocates existing elements, so those
  /// pointers stay valid across a concurrent addSlot (which shape-mutation
  /// cancellation then handles at the semantic level).
  std::deque<SlotDesc> Slots;
  std::unordered_map<const std::string *, int> ReadIndex;
  std::unordered_map<const std::string *, int> AssignIndex;
  std::vector<int> ParentIndices;
  int FieldCount = 0;
  Heap *OwnerHeap = nullptr;
};

} // namespace mself

#endif // MINISELF_VM_MAP_H
