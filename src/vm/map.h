//===-- vm/map.h - Maps (hidden classes) and slot descriptors ---*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps describe object layout and behaviour, playing the role of classes:
/// the paper's "class type" is exactly "the set of all values sharing the
/// same map" (paper §3.1, footnote 2). A map lists slots; objects created
/// from one object literal (and their clones) share a map and differ only in
/// the contents of their data-slot fields.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_VM_MAP_H
#define MINISELF_VM_MAP_H

#include "vm/value.h"

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace mself {

class Heap;
class Map;

/// What kind of heap object a map describes. Small integers are not heap
/// objects but still have a (synthetic) map so that the compiler's class
/// types and runtime type tests treat them uniformly.
enum class ObjectKind : uint8_t {
  Plain,    ///< Slots-only object (most objects, booleans, nil, lobby).
  SmallInt, ///< Synthetic map shared by all tagged integers.
  Array,    ///< Indexable Value elements plus slots.
  String,   ///< Immutable byte string.
  Method,   ///< Holds a method body (lives in constant slots).
  Block,    ///< Closure: block body + captured environment.
  Env,      ///< Heap-allocated activation record for captured locals.
};

/// The role a slot plays in lookup and object layout.
enum class SlotKind : uint8_t {
  Constant,   ///< `name = value`; value stored in the map, shared.
  Data,       ///< `name <- value`; per-object field, implies `name:` setter.
  Parent,     ///< `name* = value`; constant parent, searched on lookup miss.
  Argument,   ///< Method/block formal; exists only in method maps.
};

/// One slot in a map.
struct SlotDesc {
  const std::string *Name = nullptr; ///< Interned read selector.
  SlotKind Kind = SlotKind::Constant;
  int FieldIndex = -1; ///< Index into Object fields (Data slots only).
  Value Constant;      ///< Shared value (Constant and Parent slots only).
};

/// Per-field monomorphic-store type tag (the "typed object shapes"
/// extension behind the BBV tier). Tracks whether every store ever
/// performed into one data field — across every object sharing the map —
/// has been of a single type. The state machine is monotone
/// (Unset → Int | Typed(map) → Poly; never narrows back), so a tag in
/// state Int or Typed is a proof about the field's entire store history,
/// which the BBV materializer turns into a one-word guard cell in place
/// of a full type test.
struct SlotTypeTag {
  enum class State : uint8_t {
    Unset, ///< No store observed yet.
    Int,   ///< Every store so far was a tagged small integer.
    Typed, ///< Every store so far was a heap object of map TypedMap.
    Poly,  ///< Conflicting stores observed; permanently generic.
  };
  State St = State::Unset;
  Map *TypedMap = nullptr; ///< Valid only in state Typed.
};

/// Layout and behaviour descriptor shared by a family of objects.
///
/// Maps are immortal: they are owned by the Heap's map registry and never
/// collected, so Map* identity is stable and usable as a compile-time "class"
/// and as the key for customized compilation.
class Map {
public:
  Map(ObjectKind Kind, std::string DebugName)
      : Kind(Kind), DebugName(std::move(DebugName)) {}

  ObjectKind kind() const { return Kind; }
  const std::string &debugName() const { return DebugName; }

  /// Appends a slot. Data slots are assigned the next field index and, when
  /// \p SetterName (the interned "name:" selector) is provided, become
  /// writable through that assignment selector.
  /// \returns the new slot's index.
  int addSlot(const std::string *Name, SlotKind Kind, Value Constant = Value(),
              const std::string *SetterName = nullptr);

  /// Late-binds the constant of slot \p SlotIndex (used when bootstrapping
  /// mutually-referential core objects, e.g. native maps' parent slots).
  void setSlotConstant(int SlotIndex, Value V);

  /// \returns the slot read by selector \p Name, or nullptr.
  const SlotDesc *findSlot(const std::string *Name) const;

  /// \returns the *data* slot written by assignment selector \p NameColon
  /// (e.g. "x:" writes the data slot "x"), or nullptr.
  const SlotDesc *findAssignSlot(const std::string *NameColon) const;

  const std::deque<SlotDesc> &slots() const { return Slots; }

  /// Number of per-object Value fields that objects with this map carry.
  int fieldCount() const { return FieldCount; }

  /// \returns indices of parent slots in declaration order.
  const std::vector<int> &parentSlotIndices() const { return ParentIndices; }

  /// The heap that created this map (null for maps constructed directly in
  /// tests). Objects reach their heap through here — the write barrier's
  /// slow path needs it, and objects carry no other back pointer.
  Heap *ownerHeap() const { return OwnerHeap; }

  /// The typed-shapes store tag for data field \p FieldIndex. Read by the
  /// BBV materializer (mutator thread only; tags are never touched by the
  /// background compiler, which compiles templates without them).
  const SlotTypeTag &fieldTag(int FieldIndex) const {
    return FieldTags[static_cast<size_t>(FieldIndex)];
  }

  /// Notes one store into data field \p FieldIndex — called by
  /// Object::setField, the single funnel every data-slot store (including
  /// allocation-time initialization) passes through. Settled states return
  /// after one or two tests; the first conflicting store transitions the
  /// tag to Poly out of line and fans out through the owner heap's
  /// slot-tag-conflict hook so dependent BBV guard cells flip before the
  /// next guarded load runs.
  void noteFieldStore(int FieldIndex, bool IsInt, Map *ValueMap) {
    SlotTypeTag &T = FieldTags[static_cast<size_t>(FieldIndex)];
    switch (T.St) {
    case SlotTypeTag::State::Poly:
      return;
    case SlotTypeTag::State::Int:
      if (IsInt)
        return;
      break;
    case SlotTypeTag::State::Typed:
      if (ValueMap == T.TypedMap)
        return;
      break;
    case SlotTypeTag::State::Unset:
      if (IsInt) {
        T.St = SlotTypeTag::State::Int;
        return;
      }
      if (ValueMap) {
        T.St = SlotTypeTag::State::Typed;
        T.TypedMap = ValueMap;
        return;
      }
      break;
    }
    tagConflict(FieldIndex);
  }

private:
  friend class Heap; ///< Sets OwnerHeap; updates slot constants during GC.

  /// Out-of-line conflict path: flips the tag to Poly and notifies the
  /// owner heap's slot-tag-conflict hook (if any). Runs at most once per
  /// (map, field) — Poly is terminal, so the hook can never fire twice
  /// for the same tag.
  void tagConflict(int FieldIndex);

  ObjectKind Kind;
  std::string DebugName;
  /// Deque, not vector: the background compiler retains `const SlotDesc *`
  /// into published maps across its per-lookup shape-lock window, and
  /// appending to a deque never relocates existing elements, so those
  /// pointers stay valid across a concurrent addSlot (which shape-mutation
  /// cancellation then handles at the semantic level).
  std::deque<SlotDesc> Slots;
  std::unordered_map<const std::string *, int> ReadIndex;
  std::unordered_map<const std::string *, int> AssignIndex;
  std::vector<int> ParentIndices;
  int FieldCount = 0;
  /// One tag per data field, grown in addSlot. Indexed by FieldIndex.
  std::vector<SlotTypeTag> FieldTags;
  Heap *OwnerHeap = nullptr;
};

} // namespace mself

#endif // MINISELF_VM_MAP_H
