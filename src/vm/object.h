//===-- vm/object.h - Heap object layouts -----------------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heap object layouts. Every heap object carries its Map (hidden class);
/// the per-kind subclasses add indexable elements (arrays, environments),
/// byte contents (strings), code pointers (methods), or a captured
/// environment (blocks). Dispatch over kinds is by explicit enum, not RTTI.
///
/// Objects also carry the generational collector's per-object header: a
/// young/old bit, a remembered bit (the object is on the heap's remembered
/// set), the mark bit for old-space mark-sweep, a survival age, and a
/// forwarding pointer used while a scavenge relocates nursery objects.
/// Every reference store into an object routes through setField()/atPut(),
/// which run the old-to-young write barrier inline.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_VM_OBJECT_H
#define MINISELF_VM_OBJECT_H

#include "vm/map.h"
#include "vm/value.h"

#include <atomic>
#include <cassert>
#include <string>
#include <vector>

namespace mself {

namespace ast {
struct Code;
struct BlockExpr;
} // namespace ast

namespace gcphase {

/// Number of heaps currently in the incremental-marking phase, process
/// wide (one per isolate at most). The write barrier's SATB duty is
/// predicated on one relaxed load of this counter, so when no heap
/// anywhere is marking — the overwhelmingly common state — a store pays a
/// single extra test. Maintained by Heap (defined in heap.cpp).
extern std::atomic<uint32_t> MarkingHeaps;

inline bool anyHeapMarking() {
  return MarkingHeaps.load(std::memory_order_relaxed) != 0;
}

} // namespace gcphase

/// Base of all heap objects. Owned by the Heap; nursery objects are
/// reclaimed by copying scavenges, old-space objects by mark-sweep.
class Object {
public:
  Object(Map *M) : TheMap(M) { assert(M && "object needs a map"); }
  Object(Object &&) = default;
  virtual ~Object() = default;

  Map *map() const { return TheMap; }
  ObjectKind kind() const { return TheMap->kind(); }

  /// Per-object storage for the map's data slots.
  std::vector<Value> &fields() { return Fields; }
  const std::vector<Value> &fields() const { return Fields; }

  Value field(int I) const {
    assert(I >= 0 && I < static_cast<int>(Fields.size()) &&
           "data field index out of range");
    return Fields[I];
  }
  void setField(int I, Value V) {
    assert(I >= 0 && I < static_cast<int>(Fields.size()) &&
           "data field index out of range");
    writeBarrier(V, Fields[static_cast<size_t>(I)]);
    Fields[I] = V;
    // Typed-shapes bookkeeping: every data-slot store (allocation-time
    // initialization included) funnels through here, which is what makes
    // an Int/Typed tag a proof about the field's whole store history.
    // Note *after* the barrier — arena escape may rewrite V to the heap
    // copy, and the copy's map is the one the tag must witness.
    TheMap->noteFieldStore(I, V.isInt(),
                           V.isObject() ? V.asObject()->map() : nullptr);
  }

protected:
  /// GC header flag bits (in GcFlags).
  enum : uint8_t {
    kGcYoung = 1u << 0,      ///< Lives in the nursery; may move.
    kGcRemembered = 1u << 1, ///< Old object already on the remembered set.
    kGcMarked = 1u << 2,     ///< Mark bit for old-space mark-sweep.
    kGcArena = 1u << 3,      ///< Lives in an activation arena; dies (or is
                             ///< evacuated to the heap) with its frame.
  };

  /// The reference-store barrier, run on every store. Three duties:
  ///
  ///  * Generational: an old object storing a pointer to a young object
  ///    must be added to the remembered set, or the next scavenge would
  ///    miss (and free or fail to relocate) the young target.
  ///  * Arena soundness: a *heap* object storing a pointer to an
  ///    *arena* object would outlive the arena's frame, so the arena
  ///    object (and everything it references in an arena) is evacuated to
  ///    the heap first and \p V is rewritten to the copy. Stores into
  ///    arena objects themselves need neither duty — arenas are traced
  ///    from their owning frame, never from the remembered set.
  ///  * Snapshot-at-the-beginning (deletion barrier): while an
  ///    incremental mark cycle is active, the value being *overwritten*
  ///    (\p Old) may be the last snapshot-era edge to a not-yet-marked
  ///    object; logging it grey preserves the tri-color invariant.
  ///    Arena-held and young-held edges are exempt: every arena slot's
  ///    snapshot referent is greyed by the begin-of-cycle root scan, and
  ///    young objects do not exist at the snapshot (the cycle opens with
  ///    a promote-all scavenge), so neither can hold a snapshot edge the
  ///    barrier needs to preserve.
  ///
  /// The common cases — young receiver, already remembered receiver,
  /// non-pointer or old heap value, no cycle active — cost a few flag
  /// tests plus one relaxed load.
  void writeBarrier(Value &V, const Value &Old) {
    if ((GcFlags & kGcArena) != 0)
      return;
    if (gcphase::anyHeapMarking() && Old.isObject())
      satbRecordOverwrite(Old.asObject());
    if (V.isObject()) {
      uint8_t TF = V.asObject()->GcFlags;
      if ((TF & kGcArena) != 0) {
        arenaEscapeBarrier(V);
        TF = V.asObject()->GcFlags;
      }
      if ((GcFlags & (kGcYoung | kGcRemembered)) == 0 &&
          (TF & kGcYoung) != 0)
        rememberSelf();
    }
  }

private:
  friend class Heap;
  friend class GcVisitor;
  friend class ActivationArena; // Walks NextAlloc on release.

  /// Out-of-line barrier slow path: registers this object with its owning
  /// heap's remembered set (reached through the map).
  void rememberSelf();

  /// Out-of-line arena-escape slow path: evacuates the arena object \p V
  /// to the heap (through the map's owning heap) and rewrites \p V plus
  /// every root to the copy.
  void arenaEscapeBarrier(Value &V);

  /// Out-of-line SATB slow path: greys the overwritten object \p Old on
  /// its owning heap's mark worklist when that heap is in the marking
  /// phase and \p Old is an unmarked old-space object.
  static void satbRecordOverwrite(Object *Old);

  Map *TheMap;
  Object *NextAlloc = nullptr; ///< Intrusive per-space allocation list.
  Object *Forwarding = nullptr; ///< New location during a scavenge.
  uint8_t GcFlags = 0;
  uint8_t Age = 0; ///< Scavenges survived (promotion counter).
  std::vector<Value> Fields;
};

/// Indexable array of Values; also used (with an Env-kind map) for
/// heap-allocated activation environments holding block-captured locals.
class ArrayObj : public Object {
public:
  ArrayObj(Map *M, size_t N, Value Fill) : Object(M), Elems(N, Fill) {}
  ArrayObj(ArrayObj &&) = default;

  int64_t size() const { return static_cast<int64_t>(Elems.size()); }
  bool inBounds(int64_t I) const {
    return I >= 0 && I < static_cast<int64_t>(Elems.size());
  }
  Value at(int64_t I) const {
    assert(inBounds(I) && "array index out of bounds");
    return Elems[static_cast<size_t>(I)];
  }
  void atPut(int64_t I, Value V) {
    assert(inBounds(I) && "array index out of bounds");
    writeBarrier(V, Elems[static_cast<size_t>(I)]);
    Elems[static_cast<size_t>(I)] = V;
  }

  std::vector<Value> &elems() { return Elems; }
  const std::vector<Value> &elems() const { return Elems; }

private:
  std::vector<Value> Elems;
};

/// Immutable byte string.
class StringObj : public Object {
public:
  StringObj(Map *M, std::string S) : Object(M), Str(std::move(S)) {}
  StringObj(StringObj &&) = default;
  const std::string &str() const { return Str; }

private:
  std::string Str;
};

/// A method: code stored in a constant slot, activated by message lookup.
class MethodObj : public Object {
public:
  MethodObj(Map *M, const ast::Code *Body, const std::string *Selector)
      : Object(M), Body(Body), Selector(Selector) {}
  MethodObj(MethodObj &&) = default;

  const ast::Code *body() const { return Body; }
  const std::string *selector() const { return Selector; }

private:
  const ast::Code *Body;
  const std::string *Selector;
};

/// A block closure: block code plus the captured lexical environment and the
/// identity of the home method activation (for non-local return).
class BlockObj : public Object {
public:
  BlockObj(Map *M, const ast::BlockExpr *Body, Object *Env, Value HomeSelf,
           uint64_t HomeFrameId)
      : Object(M), Body(Body), Env(Env), HomeSelf(HomeSelf),
        HomeFrameId(HomeFrameId) {}
  BlockObj(BlockObj &&) = default;

  const ast::BlockExpr *body() const { return Body; }
  Object *env() const { return Env; }
  /// `self` inside the block body: the home method's receiver.
  Value homeSelf() const { return HomeSelf; }
  uint64_t homeFrameId() const { return HomeFrameId; }

private:
  friend class Heap;
  const ast::BlockExpr *Body;
  Object *Env; ///< May be null if the block captures nothing.
  Value HomeSelf;
  uint64_t HomeFrameId;
};

} // namespace mself

#endif // MINISELF_VM_OBJECT_H
