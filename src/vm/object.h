//===-- vm/object.h - Heap object layouts -----------------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heap object layouts. Every heap object carries its Map (hidden class);
/// the per-kind subclasses add indexable elements (arrays, environments),
/// byte contents (strings), code pointers (methods), or a captured
/// environment (blocks). Dispatch over kinds is by explicit enum, not RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_VM_OBJECT_H
#define MINISELF_VM_OBJECT_H

#include "vm/map.h"
#include "vm/value.h"

#include <cassert>
#include <string>
#include <vector>

namespace mself {

namespace ast {
struct Code;
struct BlockExpr;
} // namespace ast

/// Base of all heap objects. Owned by the Heap; reclaimed by mark-sweep GC.
class Object {
public:
  Object(Map *M) : TheMap(M) { assert(M && "object needs a map"); }
  virtual ~Object() = default;

  Map *map() const { return TheMap; }
  ObjectKind kind() const { return TheMap->kind(); }

  /// Per-object storage for the map's data slots.
  std::vector<Value> &fields() { return Fields; }
  const std::vector<Value> &fields() const { return Fields; }

  Value field(int I) const {
    assert(I >= 0 && I < static_cast<int>(Fields.size()) &&
           "data field index out of range");
    return Fields[I];
  }
  void setField(int I, Value V) {
    assert(I >= 0 && I < static_cast<int>(Fields.size()) &&
           "data field index out of range");
    Fields[I] = V;
  }

private:
  friend class Heap;
  friend class GcVisitor;
  Map *TheMap;
  Object *NextAlloc = nullptr; ///< Intrusive all-objects list for sweeping.
  bool Marked = false;
  std::vector<Value> Fields;
};

/// Indexable array of Values; also used (with an Env-kind map) for
/// heap-allocated activation environments holding block-captured locals.
class ArrayObj : public Object {
public:
  ArrayObj(Map *M, size_t N, Value Fill) : Object(M), Elems(N, Fill) {}

  int64_t size() const { return static_cast<int64_t>(Elems.size()); }
  bool inBounds(int64_t I) const {
    return I >= 0 && I < static_cast<int64_t>(Elems.size());
  }
  Value at(int64_t I) const {
    assert(inBounds(I) && "array index out of bounds");
    return Elems[static_cast<size_t>(I)];
  }
  void atPut(int64_t I, Value V) {
    assert(inBounds(I) && "array index out of bounds");
    Elems[static_cast<size_t>(I)] = V;
  }

  std::vector<Value> &elems() { return Elems; }
  const std::vector<Value> &elems() const { return Elems; }

private:
  std::vector<Value> Elems;
};

/// Immutable byte string.
class StringObj : public Object {
public:
  StringObj(Map *M, std::string S) : Object(M), Str(std::move(S)) {}
  const std::string &str() const { return Str; }

private:
  std::string Str;
};

/// A method: code stored in a constant slot, activated by message lookup.
class MethodObj : public Object {
public:
  MethodObj(Map *M, const ast::Code *Body, const std::string *Selector)
      : Object(M), Body(Body), Selector(Selector) {}

  const ast::Code *body() const { return Body; }
  const std::string *selector() const { return Selector; }

private:
  const ast::Code *Body;
  const std::string *Selector;
};

/// A block closure: block code plus the captured lexical environment and the
/// identity of the home method activation (for non-local return).
class BlockObj : public Object {
public:
  BlockObj(Map *M, const ast::BlockExpr *Body, Object *Env, Value HomeSelf,
           uint64_t HomeFrameId)
      : Object(M), Body(Body), Env(Env), HomeSelf(HomeSelf),
        HomeFrameId(HomeFrameId) {}

  const ast::BlockExpr *body() const { return Body; }
  Object *env() const { return Env; }
  /// `self` inside the block body: the home method's receiver.
  Value homeSelf() const { return HomeSelf; }
  uint64_t homeFrameId() const { return HomeFrameId; }

private:
  friend class Heap;
  const ast::BlockExpr *Body;
  Object *Env; ///< May be null if the block captures nothing.
  Value HomeSelf;
  uint64_t HomeFrameId;
};

} // namespace mself

#endif // MINISELF_VM_OBJECT_H
