//===-- vm/value.h - Tagged value representation ----------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The universal value representation: a 64-bit word that is either a tagged
/// small integer (low bit set, 63-bit signed payload) or a pointer to a heap
/// Object (low bit clear). This mirrors the SELF VM's tagged integers, which
/// is what makes the paper's integer type tests ("_IsInt") a single branch
/// and makes integer arithmetic primitives need an explicit overflow check.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_VM_VALUE_H
#define MINISELF_VM_VALUE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace mself {

class Object;

/// Inclusive bounds of the tagged small-integer range (the paper's
/// minInt..maxInt). Arithmetic whose result leaves this range must take the
/// primitive's failure path.
inline constexpr int64_t kMinSmallInt = -(int64_t(1) << 62);
inline constexpr int64_t kMaxSmallInt = (int64_t(1) << 62) - 1;

/// \returns true if \p X is representable as a tagged small integer.
inline constexpr bool fitsSmallInt(int64_t X) {
  return X >= kMinSmallInt && X <= kMaxSmallInt;
}

/// A tagged 64-bit value: small integer or Object pointer.
///
/// The default-constructed Value is the "empty" sentinel (null pointer); it
/// is never visible to mini-SELF programs and is used for uninitialized
/// registers and absent optional values.
class Value {
public:
  constexpr Value() : Bits(0) {}

  static Value fromInt(int64_t I) {
    assert(fitsSmallInt(I) && "small integer overflow at boxing time");
    return Value((static_cast<uint64_t>(I) << 1) | 1);
  }

  static Value fromObject(Object *O) {
    assert(O != nullptr && "use Value() for the empty sentinel");
    auto Bits = reinterpret_cast<uintptr_t>(O);
    assert((Bits & 1) == 0 && "heap objects must be at least 2-aligned");
    return Value(static_cast<uint64_t>(Bits));
  }

  bool isEmpty() const { return Bits == 0; }
  bool isInt() const { return (Bits & 1) != 0; }
  bool isObject() const { return !isInt() && !isEmpty(); }

  int64_t asInt() const {
    assert(isInt() && "asInt() on a non-integer value");
    return static_cast<int64_t>(Bits) >> 1;
  }

  Object *asObject() const {
    assert(isObject() && "asObject() on a non-object value");
    return reinterpret_cast<Object *>(static_cast<uintptr_t>(Bits));
  }

  /// Identity comparison: equal ints or the same heap object.
  bool identicalTo(Value Other) const { return Bits == Other.Bits; }

  bool operator==(const Value &Other) const { return Bits == Other.Bits; }
  bool operator!=(const Value &Other) const { return Bits != Other.Bits; }

  uint64_t rawBits() const { return Bits; }

  /// Renders a short human-readable description (for tests and debugging).
  std::string describe() const;

private:
  explicit constexpr Value(uint64_t B) : Bits(B) {}

  uint64_t Bits;
};

} // namespace mself

#endif // MINISELF_VM_VALUE_H
