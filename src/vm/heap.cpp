//===-- vm/heap.cpp - Mark-sweep garbage-collected heap ------------------===//

#include "vm/heap.h"

#include <algorithm>
#include <cassert>

using namespace mself;

void GcVisitor::visitObject(Object *O) {
  if (O == nullptr || O->Marked)
    return;
  O->Marked = true;
  Worklist.push_back(O);
}

Heap::~Heap() {
  Object *O = AllObjects;
  while (O) {
    Object *Next = O->NextAlloc;
    delete O;
    O = Next;
  }
}

Map *Heap::newMap(ObjectKind Kind, std::string DebugName) {
  Maps.push_back(std::make_unique<Map>(Kind, std::move(DebugName)));
  return Maps.back().get();
}

Object *Heap::allocPlain(Map *M) {
  Object *O = track(new Object(M), sizeof(Object));
  O->fields().assign(static_cast<size_t>(M->fieldCount()), Value());
  // Data slots start out holding the initial value recorded in the map
  // (slot-definition initializers; nil by convention elsewhere).
  for (const SlotDesc &S : M->slots())
    if (S.Kind == SlotKind::Data)
      O->setField(S.FieldIndex, S.Constant);
  return O;
}

ArrayObj *Heap::allocArray(Map *M, size_t N, Value Fill) {
  ArrayObj *O = track(new ArrayObj(M, N, Fill),
                      sizeof(ArrayObj) + N * sizeof(Value));
  O->fields().assign(static_cast<size_t>(M->fieldCount()), Value());
  return O;
}

StringObj *Heap::allocString(Map *M, std::string S) {
  size_t Bytes = sizeof(StringObj) + S.size();
  return track(new StringObj(M, std::move(S)), Bytes);
}

MethodObj *Heap::allocMethod(Map *M, const ast::Code *Body,
                             const std::string *Selector) {
  return track(new MethodObj(M, Body, Selector), sizeof(MethodObj));
}

BlockObj *Heap::allocBlock(Map *M, const ast::BlockExpr *Body, Object *Env,
                           Value HomeSelf, uint64_t HomeFrameId) {
  return track(new BlockObj(M, Body, Env, HomeSelf, HomeFrameId),
               sizeof(BlockObj));
}

void Heap::removeRootProvider(RootProvider *P) {
  Roots.erase(std::remove(Roots.begin(), Roots.end(), P), Roots.end());
}

/// Pushes every Value held inside \p O onto the mark worklist.
static void traceObject(Object *O, GcVisitor &V) {
  for (Value F : O->fields())
    V.visit(F);
  switch (O->kind()) {
  case ObjectKind::Array:
  case ObjectKind::Env:
    for (Value E : static_cast<ArrayObj *>(O)->elems())
      V.visit(E);
    break;
  case ObjectKind::Block: {
    auto *B = static_cast<BlockObj *>(O);
    if (B->env())
      V.visitObject(B->env());
    V.visit(B->homeSelf());
    break;
  }
  case ObjectKind::Plain:
  case ObjectKind::SmallInt:
  case ObjectKind::String:
  case ObjectKind::Method:
    break;
  }
}

void Heap::collect() {
  ++NumCollections;
  std::vector<Object *> Worklist;
  GcVisitor V(Worklist);

  // Map constant slots (methods, shared constants, parents) are roots: maps
  // are immortal, so everything they reference stays live.
  for (const auto &M : Maps)
    for (const SlotDesc &S : M->slots())
      V.visit(S.Constant);

  for (RootProvider *P : Roots)
    P->traceRoots(V);

  while (!Worklist.empty()) {
    Object *O = Worklist.back();
    Worklist.pop_back();
    traceObject(O, V);
  }

  // Sweep: unlink and delete unmarked objects, clear marks on survivors.
  Object **Link = &AllObjects;
  while (*Link) {
    Object *O = *Link;
    if (O->Marked) {
      O->Marked = false;
      Link = &O->NextAlloc;
    } else {
      *Link = O->NextAlloc;
      delete O;
      --NumObjects;
    }
  }
  BytesSinceGc = 0;
}
