//===-- vm/heap.cpp - Generational garbage-collected heap -----------------===//

#include "vm/heap.h"

#include "support/stopwatch.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <new>

using namespace mself;

namespace {
constexpr size_t kAllocAlign = alignof(std::max_align_t);

size_t alignUp(size_t N) {
  return (N + kAllocAlign - 1) & ~(kAllocAlign - 1);
}
} // namespace

//===----------------------------------------------------------------------===//
// GcVisitor
//===----------------------------------------------------------------------===//

void GcVisitor::visitObject(Object *&O) {
  if (O == nullptr)
    return;
  if (TheMode == Mode::ArenaFixup) {
    // Post-evacuation sweep: redirect references to abandoned arena
    // shells. Everything else is left untouched — nothing moves, nothing
    // is marked.
    if ((O->GcFlags & Object::kGcArena) != 0 && O->Forwarding)
      O = O->Forwarding;
    return;
  }
  if ((O->GcFlags & Object::kGcArena) != 0) {
    // Arena objects are not in any GC space: they neither move nor get
    // marked (the sweep never sees them). Their outgoing references are
    // traced by the interpreter's arena-list walk, not from here.
    return;
  }
  if (TheMode == Mode::Scavenge) {
    // Minor collection: only young objects are in play. Old objects keep
    // their identity, and their outgoing references are covered by the
    // remembered set, not by tracing.
    if ((O->GcFlags & Object::kGcYoung) != 0)
      O = H.relocateYoung(O);
    return;
  }
  // Old-space marking (nothing moves).
  if ((O->GcFlags & Object::kGcMarked) != 0)
    return;
  O->GcFlags |= Object::kGcMarked;
  if ((O->GcFlags & Object::kGcYoung) != 0) {
    // Young objects (born after the incremental snapshot — cycles open
    // with a promote-all scavenge) are live by fiat and may move at the
    // next scavenge, so they are never pushed on the persistent worklist.
    // But one may hold the only surviving path to a snapshot-live old
    // object — a reference copied out of a root slot and then cleared
    // there, a deletion the SATB barrier cannot see — so they are traced
    // *through* transitively, within this same pause, via the transient
    // young-trace list (drained before the pause ends, so it never holds
    // a pointer across a scavenge). The mark bit bounds the walk;
    // relocateYoung rebuilds flags on copy/promote, so a young mark never
    // crosses a scavenge or a cycle boundary.
    H.YoungTraceList.push_back(O);
    return;
  }
  H.MarkWorklist.push_back(O);
}

//===----------------------------------------------------------------------===//
// Object: write-barrier slow path
//===----------------------------------------------------------------------===//

void Object::rememberSelf() {
  // Maps constructed outside any heap (unit tests building raw maps) leave
  // OwnerHeap null; such objects can never be collected generationally.
  if (Heap *H = TheMap->ownerHeap())
    H->remember(this);
}

void Object::arenaEscapeBarrier(Value &V) {
  if (Heap *H = TheMap->ownerHeap())
    H->arenaEscape(V);
}

/// Process-wide count of heaps in the marking phase; the inline barrier's
/// one-load SATB predicate (object.h).
std::atomic<uint32_t> mself::gcphase::MarkingHeaps{0};

void Object::satbRecordOverwrite(Object *Old) {
  // Young and arena objects cannot hold-or-be a snapshot edge the cycle
  // needs (see writeBarrier's doc); already-marked targets need nothing.
  if ((Old->GcFlags & (kGcYoung | kGcArena | kGcMarked)) != 0)
    return;
  if (Heap *H = Old->TheMap->ownerHeap())
    H->satbLog(Old);
}

void Heap::satbLog(Object *O) {
  // The global flag says *some* heap is marking; only grey on the heap
  // that owns the object, and only while its own cycle is in the mark
  // phase (another isolate's cycle must not perturb this heap).
  if (Phase != OldGcPhase::Marking)
    return;
  if ((O->GcFlags & (Object::kGcMarked | Object::kGcYoung | Object::kGcArena)) != 0)
    return;
  O->GcFlags |= Object::kGcMarked;
  MarkWorklist.push_back(O);
  ++Stats.SatbMarks;
}

//===----------------------------------------------------------------------===//
// Heap: setup and allocation
//===----------------------------------------------------------------------===//

Heap::Heap() { configureGc(true); }

Heap::~Heap() {
  // Nursery objects were constructed by placement new inside the arena:
  // run their destructors explicitly (payload vectors/strings live on the
  // C++ heap), then free old-space objects normally.
  Object *O = NurseryList;
  while (O) {
    Object *Next = O->NextAlloc;
    O->~Object();
    O = Next;
  }
  O = AllObjects;
  while (O) {
    Object *Next = O->NextAlloc;
    delete O;
    O = Next;
  }
  // A teardown mid-cycle: free the detached snapshot list too, and retire
  // this heap's claim on the global SATB predicate.
  O = SweepList;
  while (O) {
    Object *Next = O->NextAlloc;
    delete O;
    O = Next;
  }
  if (Phase == OldGcPhase::Marking)
    gcphase::MarkingHeaps.fetch_sub(1, std::memory_order_relaxed);
}

void Heap::configureIncrementalMark(bool Enabled, uint32_t PauseMicros) {
  assert(Phase == OldGcPhase::Idle && "no cycle may be in flight");
  IncrementalMark = Enabled;
  MaxPauseMicros = PauseMicros > 0 ? PauseMicros : 1000;
}

void Heap::configureGc(bool Gen, size_t Nursery, int Age, size_t Threshold) {
  assert(NumObjects == 0 && "configureGc must precede the first allocation");
  Generational = Gen;
  PromotionAge = Age;
  GcThresholdBytes = Threshold;
  if (!Generational) {
    NurserySpace[0].reset();
    NurserySpace[1].reset();
    NurseryBase = NurseryTop = NurseryLimit = nullptr;
    ScavengeTriggerBytes = 0;
    return;
  }
  NurseryBytes = std::max(Nursery, size_t(1) << 10);
  NurserySpace[0] = std::make_unique<char[]>(NurseryBytes);
  NurserySpace[1] = std::make_unique<char[]>(NurseryBytes);
  ActiveSpace = 0;
  NurseryBase = NurseryTop = NurserySpace[0].get();
  NurseryLimit = NurseryBase + NurseryBytes;
  // Scavenge once 7/8 of the nursery (shells plus attributed payload) is
  // in use; the remaining headroom absorbs allocation between safepoints.
  ScavengeTriggerBytes = NurseryBytes - NurseryBytes / 8;
  NurseryPayloadBytes = 0;
}

Map *Heap::newMap(ObjectKind Kind, std::string DebugName) {
  Maps.push_back(std::make_unique<Map>(Kind, std::move(DebugName)));
  Maps.back()->OwnerHeap = this;
  return Maps.back().get();
}

size_t Heap::shellSizeFor(ObjectKind K) {
  switch (K) {
  case ObjectKind::Plain:
  case ObjectKind::SmallInt:
    return alignUp(sizeof(Object));
  case ObjectKind::Array:
  case ObjectKind::Env:
    return alignUp(sizeof(ArrayObj));
  case ObjectKind::String:
    return alignUp(sizeof(StringObj));
  case ObjectKind::Method:
    return alignUp(sizeof(MethodObj));
  case ObjectKind::Block:
    return alignUp(sizeof(BlockObj));
  }
  return alignUp(sizeof(Object));
}

void Heap::linkOld(Object *O, size_t ShellBytes) {
  // Serialized against the background compile thread's allocStringShared;
  // every old-space birth goes through here. (Scavenge-time promotions
  // link by hand instead, which is safe because the GC gate excludes
  // background allocation during collections.)
  std::lock_guard<std::mutex> G(OldAllocMutex);
  // Allocate black while a mark cycle is active: the object is trivially
  // live this cycle, so this cycle's sweep keeps it (and clears the bit
  // when re-linking it as a survivor). Births after the mark->sweep flip
  // land on the fresh AllObjects list, which the sweep never visits.
  if (Phase == OldGcPhase::Marking)
    O->GcFlags |= Object::kGcMarked;
  O->NextAlloc = AllObjects;
  AllObjects = O;
  ++NumObjects;
  BytesSinceGc += ShellBytes;
  ++Stats.OldAllocs;
  Stats.BytesAllocatedOld += ShellBytes;
}

template <typename T, typename... Args>
T *Heap::make(Map *M, Args &&...args) {
  const size_t Sz = alignUp(sizeof(T));
  if (Generational) {
    if (NurseryTop + Sz <= NurseryLimit) {
      T *O = new (NurseryTop) T(M, std::forward<Args>(args)...);
      NurseryTop += Sz;
      O->GcFlags = Object::kGcYoung;
      O->NextAlloc = NurseryList;
      NurseryList = O;
      ++NumObjects;
      ++Stats.NurseryAllocs;
      Stats.BytesAllocatedNursery += Sz;
      return O;
    }
    // Nursery full between safepoints: allocation must still succeed
    // (collections only run at safepoints, when every live value is
    // rooted), so spill into the old space. Such objects may immediately
    // hold young references without a barrier having fired — the caller
    // re-scans them with writeBarrierAll() once initialized.
    ++Stats.OverflowAllocs;
  }
  T *O = new T(M, std::forward<Args>(args)...);
  linkOld(O, Sz);
  return O;
}

void Heap::chargePayload(Object *O, size_t Bytes) {
  if (Bytes == 0)
    return;
  if ((O->GcFlags & Object::kGcYoung) != 0) {
    NurseryPayloadBytes += Bytes;
    Stats.BytesAllocatedNursery += Bytes;
  } else {
    std::lock_guard<std::mutex> G(OldAllocMutex);
    BytesSinceGc += Bytes;
    Stats.BytesAllocatedOld += Bytes;
  }
}

Object *Heap::allocPlain(Map *M) {
  Object *O = make<Object>(M);
  O->fields().assign(static_cast<size_t>(M->fieldCount()), Value());
  // Data slots start out holding the initial value recorded in the map
  // (slot-definition initializers; nil by convention elsewhere).
  for (const SlotDesc &S : M->slots())
    if (S.Kind == SlotKind::Data)
      O->setField(S.FieldIndex, S.Constant);
  chargePayload(O, O->fields().size() * sizeof(Value));
  return O;
}

ArrayObj *Heap::allocArray(Map *M, size_t N, Value Fill) {
  ArrayObj *O = make<ArrayObj>(M, N, Fill);
  O->fields().assign(static_cast<size_t>(M->fieldCount()), Value());
  chargePayload(O, (N + O->fields().size()) * sizeof(Value));
  // The constructor stored Fill N times without a barrier; if the shell
  // spilled into the old space and Fill is young, remember it.
  if (Generational && (O->GcFlags & Object::kGcYoung) == 0)
    writeBarrierAll(O);
  return O;
}

StringObj *Heap::allocString(Map *M, std::string S) {
  size_t Payload = S.size();
  StringObj *O = make<StringObj>(M, std::move(S));
  chargePayload(O, Payload);
  return O;
}

StringObj *Heap::allocStringShared(Map *M, std::string S) {
  // Background-thread path: never touches the nursery bump pointer. A
  // plain-new shell linked via linkOld is exactly an overflow-style
  // old-space birth; the string is immovable from day one.
  size_t Payload = S.size();
  auto *O = new StringObj(M, std::move(S));
  linkOld(O, alignUp(sizeof(StringObj)));
  chargePayload(O, Payload);
  return O;
}

MethodObj *Heap::allocMethod(Map *M, const ast::Code *Body,
                             const std::string *Selector) {
  return make<MethodObj>(M, Body, Selector);
}

BlockObj *Heap::allocBlock(Map *M, const ast::BlockExpr *Body, Object *Env,
                           Value HomeSelf, uint64_t HomeFrameId) {
  BlockObj *O = make<BlockObj>(M, Body, Env, HomeSelf, HomeFrameId);
  // Captures are stored at construction, bypassing setField's barrier.
  if (Generational && (O->GcFlags & Object::kGcYoung) == 0)
    writeBarrierAll(O);
  return O;
}

void Heap::removeRootProvider(RootProvider *P) {
  Roots.erase(std::remove(Roots.begin(), Roots.end(), P), Roots.end());
}

//===----------------------------------------------------------------------===//
// Remembered set
//===----------------------------------------------------------------------===//

void Heap::remember(Object *O) {
  if ((O->GcFlags & (Object::kGcRemembered | Object::kGcYoung)) != 0)
    return;
  O->GcFlags |= Object::kGcRemembered;
  RememberedSet.push_back(O);
  ++Stats.BarrierHits;
}

void Heap::writeBarrierAll(Object *O) {
  if (!Generational || (O->GcFlags & (Object::kGcRemembered |
                                      Object::kGcYoung)) != 0)
    return;
  if (hasYoungRef(O))
    remember(O);
}

bool Heap::hasYoungRef(Object *O) {
  auto YoungV = [](Value V) {
    return V.isObject() && (V.asObject()->GcFlags & Object::kGcYoung) != 0;
  };
  for (Value F : O->fields())
    if (YoungV(F))
      return true;
  switch (O->kind()) {
  case ObjectKind::Array:
  case ObjectKind::Env:
    for (Value E : static_cast<ArrayObj *>(O)->elems())
      if (YoungV(E))
        return true;
    break;
  case ObjectKind::Block: {
    auto *B = static_cast<BlockObj *>(O);
    if (B->Env && (B->Env->GcFlags & Object::kGcYoung) != 0)
      return true;
    if (YoungV(B->HomeSelf))
      return true;
    break;
  }
  case ObjectKind::Plain:
  case ObjectKind::SmallInt:
  case ObjectKind::String:
  case ObjectKind::Method:
    break;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

void Heap::traceObjectSlots(Object *O, GcVisitor &V) {
  for (Value &F : O->fields())
    V.visit(F);
  switch (O->kind()) {
  case ObjectKind::Array:
  case ObjectKind::Env:
    for (Value &E : static_cast<ArrayObj *>(O)->elems())
      V.visit(E);
    break;
  case ObjectKind::Block: {
    auto *B = static_cast<BlockObj *>(O);
    V.visitObject(B->Env);
    V.visit(B->HomeSelf);
    break;
  }
  case ObjectKind::Plain:
  case ObjectKind::SmallInt:
  case ObjectKind::String:
  case ObjectKind::Method:
    break;
  }
}

//===----------------------------------------------------------------------===//
// Scavenging (minor collections)
//===----------------------------------------------------------------------===//

/// Move-constructs a copy of \p O (whose shell is about to be abandoned)
/// into \p Mem, dispatching on the object kind because the shells differ in
/// size and payload handles (vectors, strings) must be moved, not copied.
static Object *moveShell(void *Mem, Object *O) {
  switch (O->kind()) {
  case ObjectKind::Plain:
  case ObjectKind::SmallInt:
    return new (Mem) Object(std::move(*O));
  case ObjectKind::Array:
  case ObjectKind::Env:
    return new (Mem) ArrayObj(std::move(*static_cast<ArrayObj *>(O)));
  case ObjectKind::String:
    return new (Mem) StringObj(std::move(*static_cast<StringObj *>(O)));
  case ObjectKind::Method:
    return new (Mem) MethodObj(std::move(*static_cast<MethodObj *>(O)));
  case ObjectKind::Block:
    return new (Mem) BlockObj(std::move(*static_cast<BlockObj *>(O)));
  }
  return nullptr;
}

/// moveShell's promotion twin: move-constructs the copy with a plain
/// (typed) `new`, so the old-space sweep's `delete` sees exactly the
/// allocation the C++ runtime made — a raw `::operator new(shellSize)`
/// here would trip sized-deallocation checking, since the rounded shell
/// size differs from sizeof of the dynamic type.
static Object *moveShellToOldSpace(Object *O) {
  switch (O->kind()) {
  case ObjectKind::Plain:
  case ObjectKind::SmallInt:
    return new Object(std::move(*O));
  case ObjectKind::Array:
  case ObjectKind::Env:
    return new ArrayObj(std::move(*static_cast<ArrayObj *>(O)));
  case ObjectKind::String:
    return new StringObj(std::move(*static_cast<StringObj *>(O)));
  case ObjectKind::Method:
    return new MethodObj(std::move(*static_cast<MethodObj *>(O)));
  case ObjectKind::Block:
    return new BlockObj(std::move(*static_cast<BlockObj *>(O)));
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Activation arenas (escape analysis)
//===----------------------------------------------------------------------===//

ActivationArena::~ActivationArena() { release(Mark()); }

void *ActivationArena::allocate(size_t Bytes) {
  assert(Bytes <= kChunkBytes && "arena allocations are shell-sized");
  if (Chunks.empty())
    Chunks.push_back(std::make_unique<char[]>(kChunkBytes));
  if (CurOffset + Bytes > kChunkBytes) {
    ++CurChunk;
    if (CurChunk == Chunks.size())
      Chunks.push_back(std::make_unique<char[]>(kChunkBytes));
    CurOffset = 0;
  }
  void *P = Chunks[CurChunk].get() + CurOffset;
  CurOffset += Bytes;
  HighWater = std::max(HighWater, CurChunk * kChunkBytes + CurOffset);
  return P;
}

void ActivationArena::release(const Mark &M) {
  // Newest-first walk down to the mark's head: exactly the objects the
  // dying frame(s) allocated. Evacuated shells are moved-from husks whose
  // destructors still run, releasing any payload handles; the chunk
  // memory itself is retained for reuse.
  for (Object *O = Head; O != M.Head;) {
    Object *Next = O->NextAlloc;
    O->~Object();
    O = Next;
  }
  Head = M.Head;
  CurChunk = M.Chunk;
  CurOffset = M.Offset;
}

ArrayObj *Heap::allocEnvArena(ActivationArena &A, Map *M, size_t N,
                              Value Fill) {
  void *Mem = A.allocate(alignUp(sizeof(ArrayObj)));
  ArrayObj *O = new (Mem) ArrayObj(M, N, Fill);
  O->fields().assign(static_cast<size_t>(M->fieldCount()), Value());
  O->GcFlags = Object::kGcArena;
  O->NextAlloc = A.head();
  A.setHead(O);
  return O;
}

BlockObj *Heap::allocBlockArena(ActivationArena &A, Map *M,
                                const ast::BlockExpr *Body, Object *Env,
                                Value HomeSelf, uint64_t HomeFrameId) {
  void *Mem = A.allocate(alignUp(sizeof(BlockObj)));
  BlockObj *O = new (Mem) BlockObj(M, Body, Env, HomeSelf, HomeFrameId);
  O->GcFlags = Object::kGcArena;
  O->NextAlloc = A.head();
  A.setHead(O);
  return O;
}

Object *Heap::evacuateArenaObject(Object *O) {
  assert((O->GcFlags & Object::kGcArena) != 0 && "not an arena object");
  if (O->Forwarding)
    return O->Forwarding;
  const size_t Sz = shellSizeFor(O->kind());
  Object *N;
  if (Generational && NurseryTop + Sz <= NurseryLimit) {
    // An ordinary nursery birth — evacuation happens between safepoints,
    // when the bump pointer belongs to the mutator.
    N = moveShell(NurseryTop, O);
    NurseryTop += Sz;
    N->GcFlags = Object::kGcYoung;
    N->NextAlloc = NurseryList;
    NurseryList = N;
    ++NumObjects;
    ++Stats.NurseryAllocs;
    Stats.BytesAllocatedNursery += Sz;
  } else {
    if (Generational)
      ++Stats.OverflowAllocs;
    N = moveShellToOldSpace(O);
    N->GcFlags = 0;
    linkOld(N, Sz); // Allocates black while a mark cycle is active.
    // Grey, not just black: the shell's slots were filled while it was an
    // arena object (no barriers fired), so the copy must actually be
    // traced before the cycle can terminate.
    if (Phase == OldGcPhase::Marking)
      MarkWorklist.push_back(N);
  }
  N->Age = 0;
  N->Forwarding = nullptr;
  // Forward before fixing slots: env/block structures can be cyclic (a
  // block stored into its own captured environment).
  O->Forwarding = N;
  ++Stats.ArenaEvacuations;

  // The heap copy must never reference an arena, so referents escape with
  // it. Direct recursion: chains are parent-env chains, always short.
  auto FixV = [this](Value &V) {
    if (V.isObject() && (V.asObject()->GcFlags & Object::kGcArena) != 0)
      V = Value::fromObject(evacuateArenaObject(V.asObject()));
  };
  for (Value &F : N->fields())
    FixV(F);
  switch (N->kind()) {
  case ObjectKind::Array:
  case ObjectKind::Env:
    for (Value &E : static_cast<ArrayObj *>(N)->elems())
      FixV(E);
    break;
  case ObjectKind::Block: {
    auto *B = static_cast<BlockObj *>(N);
    if (B->Env && (B->Env->GcFlags & Object::kGcArena) != 0)
      B->Env = evacuateArenaObject(B->Env);
    FixV(B->HomeSelf);
    break;
  }
  case ObjectKind::Plain:
  case ObjectKind::SmallInt:
  case ObjectKind::String:
  case ObjectKind::Method:
    break;
  }

  // The slot rewrites above bypassed the barrier; an old-space copy may
  // now hold young references.
  if (Generational && (N->GcFlags & Object::kGcYoung) == 0)
    writeBarrierAll(N);
  return N;
}

void Heap::arenaEscape(Value &V) {
  assert(V.isObject() && isArena(V.asObject()) && "not an arena value");
  V = Value::fromObject(evacuateArenaObject(V.asObject()));
  // Sweep every root so no reference to an abandoned shell survives: the
  // shell is a moved-from husk from here on. Cost is proportional to the
  // live root set, and evacuations are rare by construction (the escape
  // classifier heap-allocates anything it cannot prove local).
  GcVisitor Fix(*this, GcVisitor::Mode::ArenaFixup);
  for (RootProvider *P : Roots)
    P->traceRoots(Fix);
  for (const auto &M : Maps)
    for (SlotDesc &S : M->Slots)
      Fix.visit(S.Constant);
}

void Heap::traceArenaList(Object *Head, GcVisitor &V) {
  for (Object *O = Head; O; O = O->NextAlloc)
    if (!O->Forwarding)
      traceObjectSlots(O, V);
}

Object *Heap::relocateYoung(Object *O) {
  if (O->Forwarding)
    return O->Forwarding;
  const size_t Sz = shellSizeFor(O->kind());
  Stats.SurvivedScavengeBytes += Sz;
  const bool Promote =
      PromoteAllThisCycle || PromotionAge <= 0 || O->Age + 1 >= PromotionAge;
  Object *N;
  if (Promote) {
    N = moveShellToOldSpace(O);
    N->GcFlags = 0;
    N->Age = 0;
    N->Forwarding = nullptr;
    // Link into the old space by hand: the object already exists (this is
    // a move, not a birth), so only the growth accounting advances.
    N->NextAlloc = AllObjects;
    AllObjects = N;
    BytesSinceGc += Sz;
    ++Stats.ObjectsPromoted;
    Stats.BytesPromoted += Sz;
    PromotedThisCycle.push_back(N);
    // A scavenge during an incremental mark phase tenures live young
    // objects into the snapshot list mid-cycle: grey them so their
    // referents (young at store time, old now) are traced before the
    // flip, and so the sweep keeps them.
    if (Phase == OldGcPhase::Marking) {
      N->GcFlags |= Object::kGcMarked;
      MarkWorklist.push_back(N);
    }
  } else {
    assert(ScavengeTo + Sz <= NurseryBase + NurseryBytes &&
           "to-space cannot overflow: survivors fit in one semispace");
    N = moveShell(ScavengeTo, O);
    ScavengeTo += Sz;
    N->GcFlags = Object::kGcYoung;
    N->Age = static_cast<uint8_t>(std::min<int>(O->Age + 1, 255));
    N->Forwarding = nullptr;
    N->NextAlloc = NurseryList;
    NurseryList = N;
    ++Stats.ObjectsCopied;
    Stats.BytesCopied += Sz;
  }
  O->Forwarding = N;
  ScanList.push_back(N);
  return N;
}

void Heap::scavengeImpl(bool PromoteAll) {
  assert(Generational && "scavenge requires the generational collector");
  PromoteAllThisCycle = PromoteAll;
  Stats.ScannedScavengeBytes += nurseryUsedBytes();

  // Flip: survivors are evacuated into the other semispace (or promoted);
  // the current space becomes free once its corpses are destroyed.
  Object *FromList = NurseryList;
  NurseryList = nullptr;
  const int ToSpace = 1 - ActiveSpace;
  NurseryBase = NurserySpace[ToSpace].get();
  ScavengeTo = NurseryBase;
  ScanList.clear();
  PromotedThisCycle.clear();

  GcVisitor V(*this, GcVisitor::Mode::Scavenge);

  // Roots: map constants, the remembered set (old objects holding young
  // references), and every registered provider. All are updated in place.
  for (const auto &M : Maps)
    for (SlotDesc &S : M->Slots)
      V.visit(S.Constant);
  for (Object *O : RememberedSet)
    traceObjectSlots(O, V);
  for (RootProvider *P : Roots)
    P->traceRoots(V);

  // Cheney scan: relocated objects are scanned exactly once; scanning may
  // relocate more objects, which join the list.
  while (!ScanList.empty()) {
    Object *O = ScanList.back();
    ScanList.pop_back();
    traceObjectSlots(O, V);
  }

  // Rebuild the remembered set: drop members whose young targets were all
  // promoted away, keep the rest, and admit promoted objects that still
  // point into the nursery (e.g. a tenured block whose environment stayed
  // young).
  std::vector<Object *> NewSet;
  for (Object *O : RememberedSet) {
    if (hasYoungRef(O)) {
      NewSet.push_back(O);
    } else {
      O->GcFlags &= static_cast<uint8_t>(~Object::kGcRemembered);
    }
  }
  for (Object *O : PromotedThisCycle)
    if ((O->GcFlags & Object::kGcRemembered) == 0 && hasYoungRef(O)) {
      O->GcFlags |= Object::kGcRemembered;
      NewSet.push_back(O);
    }
  RememberedSet.swap(NewSet);
  PromotedThisCycle.clear();

  // Destroy from-space shells: both the dead (never forwarded) and the
  // moved-from husks of survivors need their destructors run so payload
  // storage is released; the arena itself is reused on the next flip.
  for (Object *O = FromList; O;) {
    Object *Next = O->NextAlloc;
    if (!O->Forwarding)
      --NumObjects;
    O->~Object();
    O = Next;
  }

  ActiveSpace = ToSpace;
  NurseryTop = ScavengeTo;
  NurseryLimit = NurseryBase + NurseryBytes;
  NurseryPayloadBytes = 0;
  ScavengeTo = nullptr;
  PromoteAllThisCycle = false;
}

void Heap::scavenge() {
  if (!Generational)
    return;
  Stopwatch Timer;
  scavengeImpl(/*PromoteAll=*/false);
  ++Stats.Scavenges;
  Stats.ScavengePauses.record(Timer.elapsedSeconds());
}

//===----------------------------------------------------------------------===//
// Full collection (evacuate + mark-sweep)
//===----------------------------------------------------------------------===//

void Heap::markSweepOldSpace() {
  GcVisitor V(*this, GcVisitor::Mode::Mark);
  MarkWorklist.clear();

  // Map constant slots (methods, shared constants, parents) are roots: maps
  // are immortal, so everything they reference stays live.
  for (const auto &M : Maps)
    for (SlotDesc &S : M->Slots)
      V.visit(S.Constant);

  for (RootProvider *P : Roots)
    P->traceRoots(V);

  while (!MarkWorklist.empty()) {
    Object *O = MarkWorklist.back();
    MarkWorklist.pop_back();
    traceObjectSlots(O, V);
    drainYoungTrace(V); // No-op here: the nursery was evacuated above.
  }

  // Sweep: unlink and delete unmarked objects, clear marks on survivors.
  Object **Link = &AllObjects;
  while (*Link) {
    Object *O = *Link;
    if ((O->GcFlags & Object::kGcMarked) != 0) {
      O->GcFlags &= static_cast<uint8_t>(~Object::kGcMarked);
      Link = &O->NextAlloc;
    } else {
      *Link = O->NextAlloc;
      delete O;
      --NumObjects;
    }
  }
  BytesSinceGc = 0;
}

void Heap::collect() {
  Stopwatch Timer;
  // A direct collect() is a demand that everything dead *now* be
  // reclaimed. An in-flight incremental cycle only reclaims what was dead
  // at its snapshot, so finish it synchronously first (clean mark state),
  // then run the classic stop-the-world pass.
  finishIncrementalCycle();
  if (Generational) {
    // Empty the nursery first (force-promoting every survivor) so marking
    // only ever walks the old space and the remembered set ends empty.
    scavengeImpl(/*PromoteAll=*/true);
    assert(RememberedSet.empty() && "no young objects can remain");
  }
  markSweepOldSpace();
  ++Stats.FullCollections;
  Stats.FullPauses.record(Timer.elapsedSeconds());
}

//===----------------------------------------------------------------------===//
// Incremental (SATB) old-space collection
//===----------------------------------------------------------------------===//

void Heap::drainYoungTrace(GcVisitor &V) {
  while (!YoungTraceList.empty()) {
    Object *O = YoungTraceList.back();
    YoungTraceList.pop_back();
    traceObjectSlots(O, V);
  }
}

void Heap::scanRootsForMark(GcVisitor &V) {
  for (const auto &M : Maps)
    for (SlotDesc &S : M->Slots)
      V.visit(S.Constant);
  for (RootProvider *P : Roots)
    P->traceRoots(V);
  drainYoungTrace(V);
}

void Heap::beginIncrementalMark() {
  assert(Phase == OldGcPhase::Idle && "one cycle at a time");
  Stopwatch Timer;
  if (Generational) {
    // Promote-all scavenge: the snapshot must contain only immovable
    // old-space objects, so the worklist never holds a pointer a later
    // scavenge could invalidate. Everything born young after this instant
    // is live by fiat until the next cycle.
    scavengeImpl(/*PromoteAll=*/true);
    assert(RememberedSet.empty() && "no young objects can remain");
  }
  MarkWorklist.clear();
  GcVisitor V(*this, GcVisitor::Mode::Mark);
  scanRootsForMark(V);
  Phase = OldGcPhase::Marking;
  gcphase::MarkingHeaps.fetch_add(1, std::memory_order_relaxed);
  // Re-arm the trigger at cycle start: allocation during the cycle counts
  // toward the *next* one (the in-flight cycle polls via Phase).
  BytesSinceGc = 0;
  ++Stats.MarkIncrements;
  double Secs = Timer.elapsedSeconds();
  Stats.FullPauses.record(Secs);
  NextIncrementAt = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(Secs));
}

void Heap::markIncrement(double SpentSeconds) {
  auto Now = std::chrono::steady_clock::now();
  if (SpentSeconds == 0 && Now < NextIncrementAt)
    return; // Pacing: let the mutator run between slices.
  // A scavenge already ran at this safepoint: the slice shrinks so the
  // combined stop stays near the budget, but always makes some progress.
  const double Budget =
      std::max(static_cast<double>(MaxPauseMicros) * 1e-6 - SpentSeconds,
               static_cast<double>(MaxPauseMicros) * 0.25e-6);
  Stopwatch Timer;
  GcVisitor V(*this, GcVisitor::Mode::Mark);
  size_t Processed = 0;
  bool OutOfTime = false;
  while (!MarkWorklist.empty()) {
    Object *O = MarkWorklist.back();
    MarkWorklist.pop_back();
    traceObjectSlots(O, V);
    // An old object traced above may hold young references (stored during
    // the cycle): trace through them now, while their addresses are valid.
    drainYoungTrace(V);
    if ((++Processed & 63u) == 0 && Timer.elapsedSeconds() >= Budget) {
      OutOfTime = true;
      break;
    }
  }
  if (!OutOfTime && MarkWorklist.empty()) {
    // Termination handshake. Stacks, registers, and arena slots are not
    // covered by the store barrier, so the worklist running dry is only a
    // *candidate* termination: re-scan every root. Anything that greys
    // revives the worklist and the cycle continues at the next safepoint;
    // the marked set grows monotonically, so this converges.
    scanRootsForMark(V);
    if (MarkWorklist.empty())
      flipToSweep();
  }
  ++Stats.MarkIncrements;
  double Secs = Timer.elapsedSeconds();
  Stats.FullPauses.record(Secs);
  NextIncrementAt = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(Secs));
}

void Heap::flipToSweep() {
  assert(Phase == OldGcPhase::Marking && "flip ends the mark phase");
  // Detach the snapshot list. Everything allocated from here on is born
  // on the fresh AllObjects list, so the lazy sweep races with nothing:
  // it owns SweepList outright.
  {
    std::lock_guard<std::mutex> G(OldAllocMutex);
    SweepList = AllObjects;
    AllObjects = nullptr;
  }
  // Purge dead remembered-set entries before they dangle: an unmarked
  // remembered object is snapshot-era garbage the sweep is about to free,
  // and the next scavenge must not trace through it.
  RememberedSet.erase(
      std::remove_if(RememberedSet.begin(), RememberedSet.end(),
                     [](Object *O) {
                       return (O->GcFlags & Object::kGcMarked) == 0;
                     }),
      RememberedSet.end());
  Phase = OldGcPhase::Sweeping;
  gcphase::MarkingHeaps.fetch_sub(1, std::memory_order_relaxed);
}

void Heap::sweepIncrement(double SpentSeconds) {
  auto Now = std::chrono::steady_clock::now();
  if (SpentSeconds == 0 && Now < NextIncrementAt)
    return;
  const double Budget =
      std::max(static_cast<double>(MaxPauseMicros) * 1e-6 - SpentSeconds,
               static_cast<double>(MaxPauseMicros) * 0.25e-6);
  Stopwatch Timer;
  // The lock covers the survivor re-links into AllObjects, ordering them
  // against the background thread's linkOld (the GC gate already excludes
  // overlap in time; the lock makes the ordering visible to TSan too).
  {
    std::lock_guard<std::mutex> G(OldAllocMutex);
    size_t Processed = 0;
    while (SweepList) {
      Object *O = SweepList;
      SweepList = O->NextAlloc;
      if ((O->GcFlags & Object::kGcMarked) != 0) {
        O->GcFlags &= static_cast<uint8_t>(~Object::kGcMarked);
        O->NextAlloc = AllObjects;
        AllObjects = O;
      } else {
        delete O;
        --NumObjects;
      }
      if ((++Processed & 127u) == 0 && Timer.elapsedSeconds() >= Budget)
        break;
    }
  }
  if (!SweepList) {
    Phase = OldGcPhase::Idle;
    ++Stats.MarkCycles;
  }
  ++Stats.SweepIncrements;
  double Secs = Timer.elapsedSeconds();
  Stats.FullPauses.record(Secs);
  NextIncrementAt = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(Secs));
}

void Heap::finishIncrementalCycle() {
  if (Phase == OldGcPhase::Marking) {
    GcVisitor V(*this, GcVisitor::Mode::Mark);
    for (;;) {
      while (!MarkWorklist.empty()) {
        Object *O = MarkWorklist.back();
        MarkWorklist.pop_back();
        traceObjectSlots(O, V);
        drainYoungTrace(V);
      }
      scanRootsForMark(V);
      if (MarkWorklist.empty())
        break;
    }
    flipToSweep();
  }
  if (Phase == OldGcPhase::Sweeping) {
    std::lock_guard<std::mutex> G(OldAllocMutex);
    while (SweepList) {
      Object *O = SweepList;
      SweepList = O->NextAlloc;
      if ((O->GcFlags & Object::kGcMarked) != 0) {
        O->GcFlags &= static_cast<uint8_t>(~Object::kGcMarked);
        O->NextAlloc = AllObjects;
        AllObjects = O;
      } else {
        delete O;
        --NumObjects;
      }
    }
    Phase = OldGcPhase::Idle;
    ++Stats.MarkCycles;
  }
}

void Heap::collectAtSafepoint() {
  // The background compile worker holds the gate across each compile job:
  // the analyzer's internal state holds heap references (literal strings,
  // map constants it read) that no RootProvider can enumerate, so nothing
  // may move or be swept while a job is in flight. try_lock, never lock —
  // blocking the mutator on a long optimizing compile would reintroduce
  // exactly the stall this subsystem removes. Deferral is safe: allocation
  // never *requires* a collection (a full nursery overflows into the old
  // space), so the heap only grows a little until the next safepoint.
  // Incremental mark/sweep slices defer the same way — the gate held
  // across each slice is also what makes single-mutator-thread marking
  // sound against the worker's old-space allocation.
  if (GcGate && !GcGate->try_lock()) {
    ++Stats.GcDeferrals;
    return;
  }
  if (Phase != OldGcPhase::Idle) {
    // A cycle is in flight: service nursery pressure first (its own
    // pause), then spend what is left of this safepoint's budget on it.
    double Spent = 0;
    if (Generational && nurseryPressureBytes() >= ScavengeTriggerBytes) {
      Stopwatch T;
      scavenge();
      Spent = T.elapsedSeconds();
    }
    if (Phase == OldGcPhase::Marking)
      markIncrement(Spent);
    else
      sweepIncrement(Spent);
  } else if (BytesSinceGc >= GcThresholdBytes) {
    if (IncrementalMark)
      beginIncrementalMark();
    else
      collect();
  } else if (Generational && nurseryPressureBytes() >= ScavengeTriggerBytes) {
    scavenge();
  }
  if (GcGate)
    GcGate->unlock();
}
