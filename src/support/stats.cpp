//===-- support/stats.cpp - Order statistics over samples ----------------===//

#include "support/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace mself;

double mself::safeRatio(uint64_t Num, uint64_t Den) {
  return Den == 0 ? 0.0
                  : static_cast<double>(Num) / static_cast<double>(Den);
}

double SampleStats::min() const {
  assert(!Samples.empty() && "min() of empty sample set");
  return *std::min_element(Samples.begin(), Samples.end());
}

double SampleStats::max() const {
  assert(!Samples.empty() && "max() of empty sample set");
  return *std::max_element(Samples.begin(), Samples.end());
}

double SampleStats::percentile(double P) const {
  assert(!Samples.empty() && "percentile() of empty sample set");
  assert(P >= 0.0 && P <= 100.0 && "percentile rank out of range");
  std::vector<double> Sorted = Samples;
  std::sort(Sorted.begin(), Sorted.end());
  if (Sorted.size() == 1)
    return Sorted.front();
  double Rank = (P / 100.0) * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(std::floor(Rank));
  size_t Hi = static_cast<size_t>(std::ceil(Rank));
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}

double SampleStats::mean() const {
  assert(!Samples.empty() && "mean() of empty sample set");
  double Sum = std::accumulate(Samples.begin(), Samples.end(), 0.0);
  return Sum / static_cast<double>(Samples.size());
}
