//===-- support/stats.h - Order statistics over samples --------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small-sample order statistics (median, percentiles, min, max) used by the
/// benchmark harnesses to reproduce the paper's "median / 75%-ile / max" and
/// "median (min - max)" table cells.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_SUPPORT_STATS_H
#define MINISELF_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mself {

/// \returns Num/Den as a double, or 0 when Den == 0. The hit-rate /
/// occupancy helper shared by dispatch statistics and the bench tables.
double safeRatio(uint64_t Num, uint64_t Den);

/// Accumulates double-valued samples and answers order-statistic queries.
///
/// Percentiles use linear interpolation between closest ranks, matching the
/// conventional definition used when the paper reports medians and 75th
/// percentiles over 8-20 benchmark data points.
class SampleStats {
public:
  void add(double X) { Samples.push_back(X); }

  bool empty() const { return Samples.empty(); }
  size_t size() const { return Samples.size(); }

  /// \returns the minimum sample; asserts if no samples were added.
  double min() const;
  /// \returns the maximum sample; asserts if no samples were added.
  double max() const;
  /// \returns the median (50th percentile).
  double median() const { return percentile(50.0); }
  /// \returns the interpolated \p P th percentile, P in [0, 100].
  double percentile(double P) const;
  /// \returns the arithmetic mean.
  double mean() const;

private:
  std::vector<double> Samples;
};

} // namespace mself

#endif // MINISELF_SUPPORT_STATS_H
