//===-- support/stopwatch.cpp - Wall and CPU time measurement ------------===//

#include "support/stopwatch.h"

#include <ctime>

using namespace mself;

double mself::cpuTimeSeconds() {
  timespec Ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &Ts) != 0)
    return 0.0;
  return static_cast<double>(Ts.tv_sec) +
         static_cast<double>(Ts.tv_nsec) * 1e-9;
}
