//===-- support/interner.cpp - String interning --------------------------===//

#include "support/interner.h"

using namespace mself;

const std::string *StringInterner::intern(std::string_view Text) {
  std::lock_guard<std::mutex> L(M);
  ++Lookups;
  auto It = Table.find(std::string(Text));
  if (It != Table.end())
    return It->second.get();
  auto Owned = std::make_unique<std::string>(Text);
  const std::string *Ptr = Owned.get();
  Table.emplace(*Owned, std::move(Owned));
  return Ptr;
}
