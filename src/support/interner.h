//===-- support/interner.h - String interning -------------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple string interner. Interned strings have stable addresses for the
/// lifetime of the interner, so identity comparison substitutes for string
/// comparison (used for selector symbols and slot names).
///
/// The interner is internally synchronized: intern() from any thread returns
/// the same stable pointer for equal contents. This is what lets one
/// interner back every isolate of a SharedRuntime — interned selector
/// pointers then mean the same thing in every isolate, so compiled-code
/// artifacts (whose selector pools are interned-pointer vectors) can move
/// between isolates without translation. Single-world VMs pay one
/// uncontended mutex acquisition per intern, which is noise next to the
/// hash lookup it guards.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_SUPPORT_INTERNER_H
#define MINISELF_SUPPORT_INTERNER_H

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mself {

/// Owns a set of unique strings; intern() maps equal contents to one pointer.
/// Thread-safe: concurrent intern()/size() calls are serialized internally.
class StringInterner {
public:
  /// \returns a stable pointer to the unique copy of \p Text.
  const std::string *intern(std::string_view Text);

  size_t size() const {
    std::lock_guard<std::mutex> L(M);
    return Table.size();
  }

  /// All-time intern() probes (hits and misses). Selector and slot-name
  /// interning rides the lexer and the loader, so this is the "symbol
  /// lookup" volume the ROADMAP's perfect-hash follow-up would shrink;
  /// bench/table_workloads reports it per dynamic send. On a shared
  /// interner (SharedRuntime) the count is process-wide across isolates.
  uint64_t lookups() const {
    std::lock_guard<std::mutex> L(M);
    return Lookups;
  }

private:
  mutable std::mutex M;
  uint64_t Lookups = 0;
  std::unordered_map<std::string, std::unique_ptr<std::string>> Table;
};

} // namespace mself

#endif // MINISELF_SUPPORT_INTERNER_H
