//===-- support/interner.h - String interning -------------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple string interner. Interned strings have stable addresses for the
/// lifetime of the interner, so identity comparison substitutes for string
/// comparison (used for selector symbols and slot names).
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_SUPPORT_INTERNER_H
#define MINISELF_SUPPORT_INTERNER_H

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mself {

/// Owns a set of unique strings; intern() maps equal contents to one pointer.
class StringInterner {
public:
  /// \returns a stable pointer to the unique copy of \p Text.
  const std::string *intern(std::string_view Text);

  size_t size() const { return Table.size(); }

private:
  std::unordered_map<std::string, std::unique_ptr<std::string>> Table;
};

} // namespace mself

#endif // MINISELF_SUPPORT_INTERNER_H
