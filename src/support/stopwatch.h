//===-- support/stopwatch.h - Wall and CPU time measurement ----*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing utilities for the benchmark harnesses. The paper reports compile
/// time in "seconds of CPU time"; we expose both CPU and wall clocks.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_SUPPORT_STOPWATCH_H
#define MINISELF_SUPPORT_STOPWATCH_H

#include <chrono>
#include <cstdint>

namespace mself {

/// \returns the per-process CPU time in seconds.
double cpuTimeSeconds();

/// Measures elapsed wall-clock time from construction (or last reset()).
class Stopwatch {
public:
  Stopwatch() { reset(); }

  void reset() { Start = Clock::now(); }

  /// \returns seconds elapsed since construction or the last reset().
  double elapsedSeconds() const {
    auto Delta = Clock::now() - Start;
    return std::chrono::duration<double>(Delta).count();
  }

  /// \returns nanoseconds elapsed since construction or the last reset().
  uint64_t elapsedNanos() const {
    auto Delta = Clock::now() - Start;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Delta).count());
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace mself

#endif // MINISELF_SUPPORT_STOPWATCH_H
