//===-- bytecode/disasm.cpp - Bytecode disassembler ------------------------===//

#include "bytecode/disasm.h"

#include "vm/map.h"

#include <sstream>

using namespace mself;

std::string mself::disassemble(const CompiledFunction &Fn) {
  std::ostringstream Os;
  Os << "function " << (Fn.Name ? *Fn.Name : std::string("<anon>"));
  if (Fn.ReceiverMap)
    Os << " [customized for " << Fn.ReceiverMap->debugName() << "]";
  Os << " regs=" << Fn.NumRegs << " args=" << Fn.NumArgs
     << " bytes=" << Fn.sizeInBytes() << "\n";
  size_t I = 0;
  while (I < Fn.Code.size()) {
    Op O = static_cast<Op>(Fn.Code[I]);
    int Arity = opArity(O);
    Os << "  " << I << ": " << opName(O);
    for (int A = 1; A <= Arity; ++A)
      Os << " " << Fn.Code[I + static_cast<size_t>(A)];
    // Decorate selected operands.
    if (O == Op::Send || isQuickenedSend(O)) {
      int Sel = Fn.Code[I + 2];
      Os << "    ; " << *Fn.SelectorPool[static_cast<size_t>(Sel)];
    } else if (O == Op::LoadConst) {
      int Lit = Fn.Code[I + 2];
      Os << "    ; " << Fn.Literals[static_cast<size_t>(Lit)].describe();
    } else if (O == Op::TestMap) {
      int M = Fn.Code[I + 2];
      Os << "    ; " << Fn.MapPool[static_cast<size_t>(M)]->debugName();
    }
    Os << "\n";
    I += static_cast<size_t>(1 + Arity);
  }
  return Os.str();
}
