//===-- bytecode/peephole.h - Superinstruction fusion -----------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-codegen peephole pass over the finished flat stream of either
/// codegen, so the baseline and the optimizing compiler share one engine.
/// Three stages:
///   1. local copy + known-immediate propagation, which also rewrites
///      checked/raw arithmetic and compares whose right operand is a known
///      small-int into their Imm superinstruction forms (sound without
///      liveness: the Imm forms re-store the immediate into the feeding
///      register);
///   2. liveness-driven elimination of dead register copies and literal
///      loads (the registers the codegens spill every value through);
///   3. fusion of the surviving adjacent pairs into single-dispatch
///      superinstructions (Move2, AddCkImm, BrCmpImm, CmpValueBr, ...).
/// Every fused form still performs both component writes, so fusion itself
/// needs no liveness proof; only stage 2 relies on the analysis.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_BYTECODE_PEEPHOLE_H
#define MINISELF_BYTECODE_PEEPHOLE_H

#include "bytecode/bytecode.h"

namespace mself {

/// Rewrites \p Fn.Code in place (cleanup passes + pair fusion) and
/// repatches every branch target for the new layout. A pair is fused only
/// when the second instruction is not a branch target (the first being one
/// is fine — the fused op still executes both halves). If \p ElidedOut is
/// non-null it receives the number of dead moves/loads eliminated.
/// \returns the number of pairs fused.
int fuseSuperinstructions(CompiledFunction &Fn, int *ElidedOut = nullptr);

} // namespace mself

#endif // MINISELF_BYTECODE_PEEPHOLE_H
