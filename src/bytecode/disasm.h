//===-- bytecode/disasm.h - Bytecode disassembler ---------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders CompiledFunctions as text, for tests, the examples, and debugging
/// the compiler configurations against each other.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_BYTECODE_DISASM_H
#define MINISELF_BYTECODE_DISASM_H

#include "bytecode/bytecode.h"

#include <string>

namespace mself {

/// \returns a multi-line listing of \p Fn.
std::string disassemble(const CompiledFunction &Fn);

} // namespace mself

#endif // MINISELF_BYTECODE_DISASM_H
