//===-- bytecode/bytecode.h - Register bytecode -----------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled-code representation shared by every compiler configuration:
/// a register bytecode executed by the interpreter in interp/. The
/// instruction set deliberately distinguishes *checked* operations (the
/// paper's robust primitives: overflow-checked arithmetic, bounds-checked
/// array access, run-time type tests) from *raw* ones, so the optimizer's
/// win — eliminating checks and dynamically-bound sends — is visible both in
/// execution counts and in code size.
///
/// Encoding: a flat int32 stream; each instruction is an Op word followed by
/// its fixed operands. Jump targets are absolute code indices. "Code size"
/// reported by the benchmarks is 4 bytes/word plus literal-pool entries,
/// mirroring the paper's compiled-code-size measurements.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_BYTECODE_BYTECODE_H
#define MINISELF_BYTECODE_BYTECODE_H

#include "vm/value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mself {

class Map;
namespace ast {
struct BlockExpr;
struct Code;
} // namespace ast

/// Comparison condition codes for CmpValue / BrCmp.
enum class Cond : int32_t {
  Lt,   ///< a < b   (small ints)
  Le,   ///< a <= b  (small ints)
  Gt,   ///< a > b   (small ints)
  Ge,   ///< a >= b  (small ints)
  Eq,   ///< a == b  (small ints)
  Ne,   ///< a != b  (small ints)
  IdEq, ///< identity (any values)
  IdNe, ///< non-identity (any values)
};

/// Opcode followed by fixed int32 operands (registers unless noted).
enum class Op : int32_t {
  Halt,     ///< —               stop with an internal error.
  Move,     ///< dst, src
  LoadInt,  ///< dst, imm        small integer literal (fits in int32).
  LoadConst,///< dst, lit        literal-pool entry.
  GetField, ///< dst, obj, idx   data slot read; obj's map is proven.
  SetField, ///< obj, idx, src
  GetFieldConst, ///< dst, lit, idx   data slot of a known (parent) object.
  SetFieldConst, ///< lit, idx, src
  AddRaw,   ///< dst, a, b       proven no overflow.
  SubRaw,   ///< dst, a, b
  MulRaw,   ///< dst, a, b
  AddCk,    ///< dst, a, b, fail overflow branches to fail.
  SubCk,    ///< dst, a, b, fail
  MulCk,    ///< dst, a, b, fail
  DivCk,    ///< dst, a, b, fail zero divisor or overflow branches to fail.
  ModCk,    ///< dst, a, b, fail
  CmpValue, ///< dst, cond, a, b materializes the true/false object.
  BrCmp,    ///< cond, a, b, target   jump when the comparison holds.
  BrTrue,   ///< src, trueT, falseT   branch on a proven boolean object.
  TestInt,  ///< src, elseT      jump when src is NOT a small int.
  TestMap,  ///< src, map, elseT jump when src's map != map pool entry.
  Jump,     ///< target
  Send,     ///< dst, sel, base, argc, cache
  ///<   dynamically-bound send: receiver in base, args in base+1..base+argc;
  ///<   sel indexes the selector pool, cache the inline-cache table.
  Prim,     ///< dst, prim, base, argc, fail
  ///<   robust primitive call; on failure jumps to fail (-1: runtime error).
  ArrAt,    ///< dst, arr, idx, fail   bounds-checked (types proven).
  ArrAtRaw, ///< dst, arr, idx          bounds proven too.
  ArrAtPut, ///< arr, idx, src, fail
  ArrAtPutRaw, ///< arr, idx, src
  ArrSize,  ///< dst, arr
  MakeEnv,  ///< dst, slots, parent(-1 none)  new environment object.
  EnvGet,   ///< dst, env, hops, idx
  EnvSet,   ///< env, hops, idx, src
  MakeBlock,///< dst, block, env(-1 none), selfReg   closure creation.
  Return,   ///< src             return from this activation.
  NLRet,    ///< src             non-local return to the home activation.

  //===--- Superinstructions (peephole-fused pairs) -----------------------===//
  // Emitted only by fuseSuperinstructions() after codegen; each executes the
  // semantics of both component instructions in one dispatch. Both writes
  // happen (no liveness analysis), so fusion is always sound.

  Move2,       ///< d1, s1, d2, s2            Move + Move
  MoveJump,    ///< dst, src, target          Move + Jump
  AddCkImm,    ///< dst, a, imm, tmp, fail    LoadInt tmp,imm + AddCk dst,a,tmp
  SubCkImm,    ///< dst, a, imm, tmp, fail    LoadInt tmp,imm + SubCk dst,a,tmp
  AddRawImm,   ///< dst, a, imm, tmp          LoadInt tmp,imm + AddRaw dst,a,tmp
  SubRawImm,   ///< dst, a, imm, tmp          LoadInt tmp,imm + SubRaw dst,a,tmp
  BrCmpImm,    ///< cond, a, imm, tmp, target LoadInt tmp,imm + BrCmp cond,a,tmp
  CmpValueBr,  ///< dst, cond, a, b, trueT, falseT   CmpValue + BrTrue dst
  GetFieldMove,///< dst, obj, idx, d2         GetField + Move d2,dst

  //===--- Quickened sends (runtime-rewritten Send slots) -----------------===//
  // Same 5-operand encoding as Send, so the interpreter specializes a site by
  // rewriting just the opcode word in place once its PIC goes monomorphic.
  // Each form validates PIC entry 0 (map + entry kind) before the fast path
  // and rewrites itself back to Send on any mismatch (de-quickening).

  SendMono,  ///< dst, sel, base, argc, cache   monomorphic method call.
  SendGetF,  ///< dst, sel, base, argc, cache   monomorphic data-slot read.
  SendSetF,  ///< dst, sel, base, argc, cache   monomorphic data-slot write.
  SendConst, ///< dst, sel, base, argc, cache   monomorphic constant-slot read.

  //===--- Arena allocation (escape analysis) -----------------------------===//
  // Emitted when the escape classifier proves the env/block cannot outlive
  // its creating activation: the object lives in the frame's bump-pointer
  // arena and is reclaimed wholesale when the frame pops, with no write
  // barrier or remembered-set traffic. If the function was invalidated after
  // this code started running (a new override may let the block escape), the
  // handlers fall back to heap allocation.

  MakeEnvArena,  ///< dst, slots, parent(-1 none)   arena environment object.
  MakeBlockArena,///< dst, block, env(-1 none), selfReg   arena closure.

  //===--- Lazy basic-block versioning (third tier) ------------------------===//
  // Emitted only for functions compiled at CompileTier::Bbv. A BBV function's
  // code vector starts as a single entry stub; executing a stub materializes
  // a version of the target template block specialized to the types that
  // actually flowed in, appends it to the code vector, and patches the stub
  // into a direct Jump. BbvGuard protects a field load whose type was derived
  // from a map's per-slot tag: it reads an invalidation cell instead of
  // re-testing the value, so the fast path costs one load and no type test.

  BbvStub,  ///< stubIdx         materialize the target block version, then
            ///<                 resume at its entry (patched to Jump after).
  BbvGuard, ///< cell, slowT     jump to slowT when BbvCells[cell] != 0 (a
            ///<                 conflicting store demoted the slot's tag).
};

/// Total number of opcodes (enum values are dense from 0).
constexpr int kNumOps = static_cast<int>(Op::BbvGuard) + 1;

/// \returns true for the runtime-rewritten specializations of Op::Send.
constexpr bool isQuickenedSend(Op O) {
  return O >= Op::SendMono && O <= Op::SendConst;
}

/// \returns true for instructions emitted only by the superinstruction fuser.
constexpr bool isSuperinstruction(Op O) {
  return O >= Op::Move2 && O <= Op::GetFieldMove;
}

/// \returns the number of operand words following \p O.
int opArity(Op O);

/// \returns a mnemonic for \p O.
const char *opName(Op O);

/// Fills \p Out with the operand indices (1-based from the opcode word) that
/// hold absolute jump targets for \p O and returns how many there are (0-2).
/// Operands holding -1 at runtime (Prim's optional fail target) are listed
/// too; consumers must tolerate the sentinel. Shared by the bytecode
/// verifier, the disassembler, and the superinstruction fuser so branch
/// layouts have exactly one source of truth.
int opJumpOperands(Op O, int Out[2]);

/// One cached (receiver map → bound action) pair inside a send site's
/// polymorphic inline cache.
struct PicEntry {
  Map *CachedMap = nullptr;
  enum class Kind : uint8_t { Empty, Method, DataGet, DataSet, ConstGet }
      EntryKind = Kind::Empty;
  /// Method: compiled callee. DataGet/DataSet: field access target.
  struct CompiledFunction *Target = nullptr;
  Object *SlotHolder = nullptr; ///< Object owning the data field.
  int FieldIndex = -1;
  Value ConstValue; ///< ConstGet payload.
  uint64_t HitCount = 0; ///< Hits served by this entry.
};

/// Per-send-site polymorphic inline cache (Hölzle-Chambers-Ungar style).
///
/// A site starts Empty, becomes Monomorphic on its first fill, Polymorphic
/// when a second receiver map arrives, and Megamorphic once the configured
/// arity limit is exceeded; megamorphic sites stop probing their entries and
/// dispatch through the world's global lookup cache instead. The interpreter
/// owns all state transitions (Interpreter::installPicEntry); this struct is
/// pure data so the compiler and code cache can allocate and trace it.
struct InlineCache {
  /// Hard per-site entry capacity; Policy::PicArity is clamped to it.
  static constexpr int kCapacity = 8;

  enum class State : uint8_t { Empty, Monomorphic, Polymorphic, Megamorphic };

  State SiteState = State::Empty;
  uint8_t Size = 0; ///< Occupied entries (<= configured arity <= kCapacity).
  PicEntry Entries[kCapacity];

  uint64_t HitCount = 0;   ///< Probe hits at this site.
  uint64_t MissCount = 0;  ///< Probe misses plus megamorphic dispatches.
  uint64_t Evictions = 0;  ///< Entries replaced at the arity limit
                           ///< (monomorphic-replacement mode only).

  /// \returns the entry for \p M, or nullptr. Does not touch counters.
  PicEntry *findEntry(Map *M) {
    for (int I = 0; I < Size; ++I)
      if (Entries[I].CachedMap == M)
        return &Entries[I];
    return nullptr;
  }

  /// Drops every cached binding (world-mutation invalidation hook); the
  /// traffic counters survive so observability spans flushes.
  void flush() {
    SiteState = State::Empty;
    Size = 0;
    for (PicEntry &E : Entries)
      E = PicEntry();
  }
};

/// Statistics from one compilation, aggregated by the benchmark tables.
struct CompileStats {
  double Seconds = 0;
  // Per-phase CPU seconds (compilation event log). Parse is zero for cached
  // method/block bodies — ASTs arrive pre-parsed from the loader — and is
  // kept as a field so the event log's phase breakdown is complete.
  double ParseSeconds = 0;
  double AnalyzeSeconds = 0; ///< Graph construction + type analysis.
  double SplitSeconds = 0;   ///< Message splitting (subset of analysis time).
  double LowerSeconds = 0;   ///< Reachability, DCE, linearization, regalloc.
  double EmitSeconds = 0;    ///< Bytecode emission + fixups (baseline
                             ///< compiles account all their time here).
  int SendsInlined = 0;     ///< Message sends bound and inlined.
  int SendsDynamic = 0;     ///< Send instructions emitted.
  int PrimsInlined = 0;     ///< Primitive calls opened into raw/checked ops.
  int TypeTestsEmitted = 0; ///< TestInt/TestMap instructions emitted.
  int ChecksEliminated = 0; ///< Overflow/bounds/type checks proven away.
  int LoopVersions = 0;     ///< Loop heads in the final CFG.
  int LoopIterations = 0;   ///< Iterative type analysis passes.
  int NodesCopied = 0;      ///< Nodes duplicated by extended splitting.
  int SuperFused = 0;       ///< Instruction pairs fused into superinstructions.
  int MovesElided = 0;      ///< Dead moves/loads removed by the peephole pass.
  // Escape analysis (per compile; zero when the pass is disabled).
  int BlocksNonEscaping = 0;  ///< Closures proven frame-local (arena).
  int BlocksArgEscaping = 0;  ///< Closures passed down but never stored (arena).
  int BlocksEscaping = 0;     ///< Closures that may outlive the frame (heap).
  int EnvsArena = 0;          ///< Environments allocated in the frame arena.
  int EnvsScalarReplaced = 0; ///< Capturing scopes demoted to registers that
                              ///< the all-or-nothing rule would have
                              ///< heap-allocated.
  // Lazy basic-block versioning (per function, cumulative across lazy
  // materializations; zero for non-BBV tiers).
  int BbvBlocks = 0;          ///< Basic blocks in the versioning template.
  int BbvVersions = 0;        ///< Specialized block versions materialized.
  int BbvGenericVersions = 0; ///< Context-free fallback versions materialized.
  int BbvCapFallbacks = 0;    ///< Materializations routed to the generic
                              ///< version by the per-block version cap.
  int BbvTypeTestsElided = 0; ///< TestInt/TestMap removed because the
                              ///< incoming context already proved the type.
  int BbvTagGuards = 0;       ///< Type tests replaced by slot-tag guard
                              ///< cells (BbvGuard), per arxiv 1507.02437.
  int BbvStubsPatched = 0;    ///< Stubs rewritten into direct jumps.
};

/// Which compiler a CompileRequest runs, and which compile produced a given
/// CompiledFunction: the cheap first tier, the full configured policy, or the
/// lazy basic-block-versioning tier stacked above it. With tiering off every
/// function compiles straight at the manager's top tier.
enum class CompileTier : uint8_t { Baseline, Optimized, Bbv };

/// \returns a short lowercase label for \p T ("baseline"/"optimized"/"bbv").
const char *compileTierName(CompileTier T);

/// Opaque per-function versioning state (template code, block boundaries,
/// materialized-version index). Defined in compiler/bbv.cpp; the bytecode
/// layer only stores and destroys it, through the deleter the BBV compiler
/// installs, so no link-time dependency on the compiler library exists here.
struct BbvState;

/// One record of "this guard cell covers that (map, field) slot tag": a
/// conflicting store to the slot flips the cell, sending every BbvGuard that
/// reads it to its slow path. Kept as plain data on the function (not inside
/// BbvState) so the CodeManager can fan out invalidations without seeing the
/// compiler's internals.
struct BbvCellDep {
  Map *DepMap = nullptr;
  int FieldIndex = -1;
  int Cell = -1; ///< Index into CompiledFunction::BbvCells.
};

/// One compiled activation: a customized method, a block body, or a
/// top-level expression.
struct CompiledFunction {
  /// Backwards-compatible alias; the tier enum now names both requests and
  /// results of compilation (see CompileTier above).
  using Tier = CompileTier;

  std::vector<int32_t> Code;
  std::vector<Value> Literals;
  std::vector<Map *> MapPool;
  std::vector<const std::string *> SelectorPool;
  std::vector<const ast::BlockExpr *> BlockPool;
  mutable std::vector<InlineCache> Caches;

  int NumRegs = 0;
  int NumArgs = 0;
  /// Register that receives the block's captured environment at activation
  /// time, or -1. Only block-body units have one.
  int IncomingEnvReg = -1;
  bool IsBlockUnit = false;

  const ast::Code *Source = nullptr;
  Map *ReceiverMap = nullptr; ///< Customization key (null: uncustomized).
  const std::string *Name = nullptr;

  CompileStats Stats;

  //===--- Tiering + invalidation metadata (owned by the CodeManager) ----===//

  Tier CodeTier = Tier::Optimized;
  /// Invocations + loop back-edges observed while this was the cache entry.
  uint32_t HotCount = 0;
  /// Set when a shape mutation voided a compile-time lookup this code was
  /// specialized on. Invalidated code is unreachable from the cache (new
  /// calls recompile) but stays allocated for activations mid-flight.
  bool Invalidated = false;
  /// Baseline code only: the optimized replacement installed by promotion,
  /// so callers holding a stale pointer can forward instead of re-promoting.
  CompiledFunction *ReplacedBy = nullptr;
  /// Baseline code only: an asynchronous promotion of this function is
  /// queued or in flight, so hotness triggers must not enqueue another
  /// (per-(function, policy) dedup). Cleared when the job's result is
  /// installed or discarded at a safepoint — a discarded (cancelled) job
  /// self-heals because the still-hot function re-enqueues on its next
  /// trigger. Mutator-thread only.
  bool PromotionPending = false;
  /// Maps whose shape the optimizer's compile-time lookups walked: a new
  /// slot on any of them could change a lookup this code inlined, so a
  /// mutation of any member invalidates the function. Maps are immortal
  /// (never GC-traced through this set); invalidation clears the set.
  std::vector<Map *> DependsOnMaps;

  //===--- Lazy basic-block versioning state (Bbv tier only) -------------===//

  /// Opaque versioning state owned by this function; null for other tiers.
  BbvState *Bbv = nullptr;
  /// Destroys Bbv; installed by the BBV compiler so the bytecode layer needs
  /// no link dependency on compiler/bbv.cpp.
  void (*BbvDeleter)(BbvState *) = nullptr;
  /// Guard invalidation cells read by BbvGuard. 0 = every store to the
  /// covered slot so far conformed to its tag; nonzero = demoted, take the
  /// slow path. Mutator-thread only, like the tags themselves.
  std::vector<int32_t> BbvCells;
  /// Which (map, field) slot tag each cell covers (see BbvCellDep).
  std::vector<BbvCellDep> BbvCellDeps;

  CompiledFunction() = default;
  CompiledFunction(const CompiledFunction &) = delete;
  CompiledFunction &operator=(const CompiledFunction &) = delete;
  ~CompiledFunction() {
    if (Bbv && BbvDeleter)
      BbvDeleter(Bbv);
  }

  /// Compiled-code size in bytes: instruction words plus pool entries, the
  /// quantity reported by the paper's code-space tables. For a BBV function
  /// this counts only the lazily materialized versions (plus stubs and
  /// guard cells) — the unexecuted template is bookkeeping, not emitted
  /// code, which is exactly the lazy-vs-eager code-size comparison E19
  /// reports.
  size_t sizeInBytes() const {
    return Code.size() * sizeof(int32_t) + Literals.size() * sizeof(Value) +
           (MapPool.size() + SelectorPool.size() + BlockPool.size()) *
               sizeof(void *) +
           Caches.size() * 2 * sizeof(void *) +
           BbvCells.size() * sizeof(int32_t);
  }
};

} // namespace mself

#endif // MINISELF_BYTECODE_BYTECODE_H
