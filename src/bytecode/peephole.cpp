//===-- bytecode/peephole.cpp - Peephole cleanup + superinstruction fusion --===//

#include "bytecode/peephole.h"

#include <cassert>
#include <cstring>
#include <initializer_list>
#include <unordered_map>
#include <vector>

using namespace mself;

namespace {

/// Decoded instruction: opcode, original code index (the stable key branch
/// targets reference until final re-emission), and operands. Arity can grow
/// when immediate specialization swaps an op for its Imm form, so operands
/// are stored at the maximum width (CmpValueBr, 6).
struct Instr {
  Op O;
  int At;
  int32_t A[6];
  bool Dead = false;
  bool Target = false; ///< Some live branch resolves to this instruction.
};

/// Register-operand roles of one opcode, for liveness and copy propagation.
/// Positions are 0-based into the operand array; operands holding pool
/// indices, immediates, hop counts, or jump targets are not listed.
struct RegRoles {
  int NumW = 0, NumR = 0;
  int8_t W[2];  ///< Written register operand positions.
  int8_t Rd[3]; ///< Read register operand positions.
  bool Window = false; ///< Also reads regs [A[2], A[2]+A[3]] (recv + args).
  int8_t OptR = -1;    ///< Read when the operand is >= 0 (-1 = "none").
};

/// \returns false for opcodes whose register behaviour this pass does not
/// model; callers must then treat the instruction as an analysis barrier.
bool regRoles(Op O, RegRoles &R) {
  auto roles = [&R](std::initializer_list<int> Ws,
                    std::initializer_list<int> Rs) {
    for (int P : Ws)
      R.W[R.NumW++] = static_cast<int8_t>(P);
    for (int P : Rs)
      R.Rd[R.NumR++] = static_cast<int8_t>(P);
  };
  switch (O) {
  case Op::Halt:
  case Op::Jump:
    break;
  case Op::Move:
    roles({0}, {1});
    break;
  case Op::LoadInt:
  case Op::LoadConst:
  case Op::GetFieldConst:
    roles({0}, {});
    break;
  case Op::GetField:
  case Op::ArrSize:
  case Op::EnvGet:
    roles({0}, {1});
    break;
  case Op::SetField:
    roles({}, {0, 2});
    break;
  case Op::SetFieldConst:
    roles({}, {2});
    break;
  case Op::AddRaw:
  case Op::SubRaw:
  case Op::MulRaw:
  case Op::AddCk:
  case Op::SubCk:
  case Op::MulCk:
  case Op::DivCk:
  case Op::ModCk:
  case Op::ArrAt:
  case Op::ArrAtRaw:
    roles({0}, {1, 2});
    break;
  case Op::CmpValue:
    roles({0}, {2, 3});
    break;
  case Op::BrCmp:
    roles({}, {1, 2});
    break;
  case Op::BrTrue:
  case Op::TestInt:
  case Op::TestMap:
  case Op::Return:
  case Op::NLRet:
    roles({}, {0});
    break;
  case Op::Send:
  case Op::SendMono:
  case Op::SendGetF:
  case Op::SendSetF:
  case Op::SendConst:
  case Op::Prim:
    roles({0}, {});
    R.Window = true;
    break;
  case Op::ArrAtPut:
  case Op::ArrAtPutRaw:
    roles({}, {0, 1, 2});
    break;
  case Op::MakeEnv:
  case Op::MakeEnvArena:
    roles({0}, {});
    R.OptR = 2;
    break;
  case Op::EnvSet:
    roles({}, {0, 3});
    break;
  case Op::MakeBlock:
  case Op::MakeBlockArena:
    roles({0}, {3});
    R.OptR = 2;
    break;
  case Op::Move2:
    roles({0, 2}, {1, 3});
    break;
  case Op::MoveJump:
    roles({0}, {1});
    break;
  case Op::AddCkImm:
  case Op::SubCkImm:
  case Op::AddRawImm:
  case Op::SubRawImm:
  case Op::GetFieldMove:
    roles({0, 3}, {1});
    break;
  case Op::BrCmpImm:
    roles({3}, {1});
    break;
  case Op::CmpValueBr:
    roles({0}, {2, 3});
    break;
  default:
    return false;
  }
  return true;
}

/// \returns true when execution never falls through to the next instruction.
bool noFallthrough(Op O) {
  switch (O) {
  case Op::Halt:
  case Op::Jump:
  case Op::MoveJump:
  case Op::Return:
  case Op::NLRet:
  case Op::BrTrue:      // Carries both a true and a false target.
  case Op::CmpValueBr:
    return true;
  default:
    return false;
  }
}

class Peephole {
public:
  explicit Peephole(CompiledFunction &Fn) : Fn(Fn) {}

  int run(int *ElidedOut);

private:
  CompiledFunction &Fn;
  std::vector<Instr> Ins;
  std::unordered_map<int, size_t> IdxOfAt; ///< original index -> Ins slot.
  int Elided = 0;

  void decode();
  void markTargets();
  bool propagateLocal();
  bool eliminateDeadWrites();
  int fusePairs();
  void reemit();

  size_t liveSucc(int32_t TargetAt) const {
    size_t I = IdxOfAt.at(TargetAt);
    while (I < Ins.size() && Ins[I].Dead)
      ++I;
    return I;
  }
};

void Peephole::decode() {
  std::vector<int32_t> &Code = Fn.Code;
  for (size_t I = 0; I < Code.size();) {
    Op O = static_cast<Op>(Code[I]);
    Instr In;
    In.O = O;
    In.At = static_cast<int>(I);
    int Arity = opArity(O);
    for (int W = 0; W < Arity; ++W)
      In.A[W] = Code[I + 1 + static_cast<size_t>(W)];
    IdxOfAt[In.At] = Ins.size();
    Ins.push_back(In);
    I += static_cast<size_t>(1 + Arity);
  }
}

/// Recomputes Instr::Target: the surviving instruction each live branch will
/// land on after dead instructions are squeezed out.
void Peephole::markTargets() {
  for (Instr &In : Ins)
    In.Target = false;
  int Slots[2];
  for (const Instr &In : Ins) {
    if (In.Dead)
      continue;
    int N = opJumpOperands(In.O, Slots);
    for (int K = 0; K < N; ++K) {
      int32_t T = In.A[Slots[K] - 1];
      if (T < 0)
        continue; // Prim's optional fail target.
      size_t S = liveSucc(T);
      if (S < Ins.size())
        Ins[S].Target = true;
    }
  }
}

/// Forward pass over straight-line regions: propagates register copies and
/// known small-int immediates, rewrites reads through copies, and swaps
/// checked/raw arithmetic and compares whose right operand is a known
/// immediate for their single-dispatch Imm superinstruction (which still
/// writes the feeding register, so the rewrite needs no liveness proof —
/// it re-stores the value the register already holds). State is dropped at
/// every branch target and after every analysis barrier.
bool Peephole::propagateLocal() {
  std::unordered_map<int, int32_t> KnownImm;
  std::unordered_map<int, int> CopyOf;
  bool Changed = false;

  auto killReg = [&](int D) {
    KnownImm.erase(D);
    CopyOf.erase(D);
    for (auto It = CopyOf.begin(); It != CopyOf.end();)
      It = It->second == D ? CopyOf.erase(It) : std::next(It);
  };

  for (Instr &In : Ins) {
    if (In.Dead)
      continue;
    if (In.Target) {
      KnownImm.clear();
      CopyOf.clear();
    }

    RegRoles Roles;
    if (!regRoles(In.O, Roles)) {
      KnownImm.clear();
      CopyOf.clear();
      continue;
    }

    // Reroute reads through known copies (the copy's source dominates it in
    // this straight-line region and has not been overwritten since, by the
    // invalidation discipline below).
    for (int K = 0; K < Roles.NumR; ++K) {
      int32_t &Reg = In.A[Roles.Rd[K]];
      auto It = CopyOf.find(Reg);
      if (It != CopyOf.end() && It->second != Reg) {
        Reg = It->second;
        Changed = true;
      }
    }

    // Immediate specialization. Addition is commutative, so a known *left*
    // operand works too once the operands are swapped.
    auto knownAt = [&](int Pos) { return KnownImm.count(In.A[Pos]) != 0; };
    if ((In.O == Op::AddCk || In.O == Op::AddRaw) && knownAt(1) &&
        !knownAt(2))
      std::swap(In.A[1], In.A[2]);
    switch (In.O) {
    case Op::AddCk:
    case Op::SubCk:
      if (knownAt(2)) {
        int Tmp = In.A[2];
        In.A[4] = In.A[3]; // fail
        In.A[3] = Tmp;
        In.A[2] = KnownImm[Tmp];
        In.O = In.O == Op::AddCk ? Op::AddCkImm : Op::SubCkImm;
        Changed = true;
      }
      break;
    case Op::AddRaw:
    case Op::SubRaw:
      if (knownAt(2)) {
        int Tmp = In.A[2];
        In.A[3] = Tmp;
        In.A[2] = KnownImm[Tmp];
        In.O = In.O == Op::AddRaw ? Op::AddRawImm : Op::SubRawImm;
        Changed = true;
      }
      break;
    case Op::BrCmp:
      if (knownAt(2)) {
        int Tmp = In.A[2];
        In.A[4] = In.A[3]; // target
        In.A[3] = Tmp;
        In.A[2] = KnownImm[Tmp];
        In.O = Op::BrCmpImm;
        Changed = true;
      }
      break;
    default:
      break;
    }
    // Roles stay valid across the specializations above: every Imm form
    // writes {dst, tmp} ⊇ the original {dst} and reads {a} ⊆ {a, b}, and
    // the state updates below re-derive from the rewritten form anyway.

    // Update the copy/immediate state with this instruction's effects.
    switch (In.O) {
    case Op::LoadInt:
      killReg(In.A[0]);
      KnownImm[In.A[0]] = In.A[1];
      break;
    case Op::Move: {
      int D = In.A[0], S = In.A[1];
      if (D != S) {
        killReg(D);
        auto It = KnownImm.find(S);
        if (It != KnownImm.end())
          KnownImm[D] = It->second;
        CopyOf[D] = S;
      }
      break;
    }
    case Op::AddCkImm:
    case Op::SubCkImm:
    case Op::AddRawImm:
    case Op::SubRawImm:
      killReg(In.A[0]);
      killReg(In.A[3]);
      KnownImm[In.A[3]] = In.A[2];
      break;
    case Op::BrCmpImm:
      killReg(In.A[3]);
      KnownImm[In.A[3]] = In.A[2];
      break;
    default: {
      RegRoles R2;
      regRoles(In.O, R2);
      for (int K = 0; K < R2.NumW; ++K)
        killReg(In.A[R2.W[K]]);
      break;
    }
    }

    if (noFallthrough(In.O)) {
      KnownImm.clear();
      CopyOf.clear();
    }
  }
  return Changed;
}

/// Backward liveness over the instruction-level CFG, then removal of pure
/// register writes (Move / LoadInt / LoadConst) whose destination is dead.
/// Sound because nothing reads an activation's registers behind the
/// bytecode's back: callees get their own frames and see only the Send
/// window, blocks reach enclosing state through environment objects, tier
/// promotion swaps code at call boundaries only (never remapping a live
/// frame), and the GC merely scans registers (a stale value keeps an object
/// alive, which is conservative, never wrong).
bool Peephole::eliminateDeadWrites() {
  const size_t N = Ins.size();
  const size_t Words = static_cast<size_t>(Fn.NumRegs + 63) / 64;
  std::vector<uint64_t> LiveIn(N * Words, 0), Tmp(Words);
  auto set = [&](std::vector<uint64_t> &B, size_t Base, int R) {
    B[Base + static_cast<size_t>(R) / 64] |= uint64_t(1)
                                             << (static_cast<size_t>(R) % 64);
  };
  auto clear = [&](std::vector<uint64_t> &B, size_t Base, int R) {
    B[Base + static_cast<size_t>(R) / 64] &=
        ~(uint64_t(1) << (static_cast<size_t>(R) % 64));
  };
  auto test = [&](const std::vector<uint64_t> &B, size_t Base, int R) {
    return (B[Base + static_cast<size_t>(R) / 64] >>
            (static_cast<size_t>(R) % 64)) &
           1;
  };

  int Slots[2];
  bool Grew = true;
  while (Grew) {
    Grew = false;
    for (size_t I = N; I-- > 0;) {
      const Instr &In = Ins[I];
      // LiveOut = union of successors' LiveIn.
      std::fill(Tmp.begin(), Tmp.end(), 0);
      if (!In.Dead && noFallthrough(In.O)) {
        // Jump-target successors only.
      } else if (I + 1 < N) {
        std::memcpy(Tmp.data(), &LiveIn[(I + 1) * Words],
                    Words * sizeof(uint64_t));
      }
      if (!In.Dead) {
        int NT = opJumpOperands(In.O, Slots);
        for (int K = 0; K < NT; ++K) {
          int32_t T = In.A[Slots[K] - 1];
          if (T < 0)
            continue;
          size_t S = IdxOfAt.at(T);
          for (size_t W = 0; W < Words; ++W)
            Tmp[W] |= LiveIn[S * Words + W];
        }
      }
      // LiveIn = (LiveOut - def) | use. A dead instruction is a no-op.
      if (!In.Dead) {
        RegRoles Roles;
        if (regRoles(In.O, Roles)) {
          for (int K = 0; K < Roles.NumW; ++K)
            clear(Tmp, 0, In.A[Roles.W[K]]);
          for (int K = 0; K < Roles.NumR; ++K)
            set(Tmp, 0, In.A[Roles.Rd[K]]);
          if (Roles.OptR >= 0 && In.A[Roles.OptR] >= 0)
            set(Tmp, 0, In.A[Roles.OptR]);
          if (Roles.Window)
            for (int32_t R = In.A[2]; R <= In.A[2] + In.A[3]; ++R)
              set(Tmp, 0, static_cast<int>(R));
        } else {
          // Unmodeled op: assume it reads everything.
          std::fill(Tmp.begin(), Tmp.end(), ~uint64_t(0));
        }
      }
      if (std::memcmp(Tmp.data(), &LiveIn[I * Words],
                      Words * sizeof(uint64_t)) != 0) {
        std::memcpy(&LiveIn[I * Words], Tmp.data(),
                    Words * sizeof(uint64_t));
        Grew = true;
      }
    }
  }

  // A pure write is dead when its destination is not in LiveOut, i.e. not
  // live into any successor.
  bool Changed = false;
  for (size_t I = 0; I < N; ++I) {
    Instr &In = Ins[I];
    if (In.Dead)
      continue;
    if (In.O != Op::Move && In.O != Op::LoadInt && In.O != Op::LoadConst)
      continue;
    if (In.O == Op::Move && In.A[0] == In.A[1]) {
      In.Dead = true;
      Changed = true;
      ++Elided;
      continue;
    }
    bool LiveOut = false;
    if (I + 1 < N)
      LiveOut = test(LiveIn, (I + 1) * Words, In.A[0]);
    // Move/LoadInt/LoadConst all fall through, so the only successor is I+1.
    if (!LiveOut) {
      In.Dead = true;
      Changed = true;
      ++Elided;
    }
  }
  return Changed;
}

/// The original pair fuser, over the surviving instructions. A pair fuses
/// only when the second half is not an (effective) branch target; the first
/// being one is fine, since the fused op executes both halves.
int Peephole::fusePairs() {
  markTargets();
  int Fused = 0;
  size_t K = 0;
  auto nextLive = [this](size_t I) {
    ++I;
    while (I < Ins.size() && Ins[I].Dead)
      ++I;
    return I;
  };
  if (!Ins.empty() && Ins[0].Dead)
    K = nextLive(0);

  while (K < Ins.size()) {
    size_t L = nextLive(K);
    if (L >= Ins.size())
      break;
    Instr &A = Ins[K];
    Instr &B = Ins[L];
    bool DidFuse = false;
    if (!B.Target) {
      switch (A.O) {
      case Op::LoadInt:
        // Backstop for immediate feeds propagateLocal() could not touch
        // (e.g. a LoadInt that is itself a branch target, where the
        // known-immediate state had just been dropped).
        if ((B.O == Op::AddCk || B.O == Op::SubCk) && B.A[2] == A.A[0]) {
          Op F = B.O == Op::AddCk ? Op::AddCkImm : Op::SubCkImm;
          int32_t Ops[5] = {B.A[0], B.A[1], A.A[1], A.A[0], B.A[3]};
          A.O = F;
          std::memcpy(A.A, Ops, sizeof(Ops));
          DidFuse = true;
        } else if ((B.O == Op::AddRaw || B.O == Op::SubRaw) &&
                   B.A[2] == A.A[0]) {
          Op F = B.O == Op::AddRaw ? Op::AddRawImm : Op::SubRawImm;
          int32_t Ops[4] = {B.A[0], B.A[1], A.A[1], A.A[0]};
          A.O = F;
          std::memcpy(A.A, Ops, sizeof(Ops));
          DidFuse = true;
        } else if (B.O == Op::BrCmp && B.A[2] == A.A[0]) {
          int32_t Ops[5] = {B.A[0], B.A[1], A.A[1], A.A[0], B.A[3]};
          A.O = Op::BrCmpImm;
          std::memcpy(A.A, Ops, sizeof(Ops));
          DidFuse = true;
        }
        break;
      case Op::Move:
        if (B.O == Op::Move) {
          int32_t Ops[4] = {A.A[0], A.A[1], B.A[0], B.A[1]};
          A.O = Op::Move2;
          std::memcpy(A.A, Ops, sizeof(Ops));
          DidFuse = true;
        } else if (B.O == Op::Jump) {
          int32_t Ops[3] = {A.A[0], A.A[1], B.A[0]};
          A.O = Op::MoveJump;
          std::memcpy(A.A, Ops, sizeof(Ops));
          DidFuse = true;
        }
        break;
      case Op::CmpValue:
        if (B.O == Op::BrTrue && B.A[0] == A.A[0]) {
          int32_t Ops[6] = {A.A[0], A.A[1], A.A[2], A.A[3], B.A[1], B.A[2]};
          A.O = Op::CmpValueBr;
          std::memcpy(A.A, Ops, sizeof(Ops));
          DidFuse = true;
        }
        break;
      case Op::GetField:
        if (B.O == Op::Move && B.A[1] == A.A[0]) {
          int32_t Ops[4] = {A.A[0], A.A[1], A.A[2], B.A[0]};
          A.O = Op::GetFieldMove;
          std::memcpy(A.A, Ops, sizeof(Ops));
          DidFuse = true;
        }
        break;
      default:
        break;
      }
    }
    if (DidFuse) {
      ++Fused;
      B.Dead = true;
      // A now carries both halves; keep scanning from the next survivor
      // (the fused form is never itself a fusion head).
      K = nextLive(L);
    } else {
      K = L;
    }
  }
  return Fused;
}

/// Re-emits the surviving instructions and repatches every branch target.
/// NewAt is recorded for *every* original index — a deleted instruction maps
/// to the next survivor's position, so branches into elided code land where
/// execution would have continued anyway.
void Peephole::reemit() {
  std::vector<int32_t> Out;
  Out.reserve(Fn.Code.size());
  std::unordered_map<int, int> NewAt;
  for (const Instr &In : Ins) {
    NewAt[In.At] = static_cast<int>(Out.size());
    if (In.Dead)
      continue;
    Out.push_back(static_cast<int32_t>(In.O));
    for (int W = 0; W < opArity(In.O); ++W)
      Out.push_back(In.A[W]);
  }
  int Slots[2];
  for (size_t I = 0; I < Out.size();) {
    Op O = static_cast<Op>(Out[I]);
    int N = opJumpOperands(O, Slots);
    for (int K = 0; K < N; ++K) {
      int32_t &Tgt = Out[I + static_cast<size_t>(Slots[K])];
      if (Tgt >= 0) {
        assert(NewAt.count(Tgt) && "branch into the middle of an instruction");
        Tgt = NewAt[Tgt];
      }
    }
    I += static_cast<size_t>(1 + opArity(O));
  }
  Fn.Code = std::move(Out);
}

int Peephole::run(int *ElidedOut) {
  if (Fn.Code.empty())
    return 0;
  decode();

  // Cleanup to fixpoint: propagation exposes dead copies, and removing them
  // makes new instruction pairs adjacent for both propagation and fusion.
  for (int Round = 0; Round < 8; ++Round) {
    markTargets();
    bool C1 = propagateLocal();
    bool C2 = eliminateDeadWrites();
    if (!C1 && !C2)
      break;
  }

  int Fused = fusePairs();
  reemit();
  if (ElidedOut)
    *ElidedOut = Elided;
  return Fused;
}

} // namespace

int mself::fuseSuperinstructions(CompiledFunction &Fn, int *ElidedOut) {
  return Peephole(Fn).run(ElidedOut);
}
