//===-- bytecode/bytecode.cpp - Register bytecode --------------------------===//

#include "bytecode/bytecode.h"

#include <cassert>

using namespace mself;

int mself::opArity(Op O) {
  switch (O) {
  case Op::Halt:
    return 0;
  case Op::Jump:
  case Op::Return:
  case Op::NLRet:
  case Op::BbvStub:
    return 1;
  case Op::Move:
  case Op::LoadInt:
  case Op::LoadConst:
  case Op::TestInt:
  case Op::ArrSize:
  case Op::BbvGuard:
    return 2;
  case Op::GetField:
  case Op::SetField:
  case Op::GetFieldConst:
  case Op::SetFieldConst:
  case Op::AddRaw:
  case Op::SubRaw:
  case Op::MulRaw:
  case Op::TestMap:
  case Op::BrTrue:
  case Op::MakeEnv:
  case Op::MakeEnvArena:
  case Op::ArrAtRaw:
  case Op::ArrAtPutRaw:
    return 3;
  case Op::MoveJump:
    return 3;
  case Op::AddCk:
  case Op::SubCk:
  case Op::MulCk:
  case Op::DivCk:
  case Op::ModCk:
  case Op::CmpValue:
  case Op::BrCmp:
  case Op::ArrAt:
  case Op::ArrAtPut:
  case Op::EnvGet:
  case Op::EnvSet:
  case Op::MakeBlock:
  case Op::MakeBlockArena:
  case Op::Move2:
  case Op::AddRawImm:
  case Op::SubRawImm:
  case Op::GetFieldMove:
    return 4;
  case Op::Send:
  case Op::Prim:
  case Op::AddCkImm:
  case Op::SubCkImm:
  case Op::BrCmpImm:
  case Op::SendMono:
  case Op::SendGetF:
  case Op::SendSetF:
  case Op::SendConst:
    return 5;
  case Op::CmpValueBr:
    return 6;
  }
  assert(false && "unknown opcode");
  return 0;
}

int mself::opJumpOperands(Op O, int Out[2]) {
  switch (O) {
  case Op::Jump:
    Out[0] = 1;
    return 1;
  case Op::TestInt:
  case Op::BbvGuard:
    Out[0] = 2;
    return 1;
  case Op::TestMap:
  case Op::MoveJump:
    Out[0] = 3;
    return 1;
  case Op::AddCk:
  case Op::SubCk:
  case Op::MulCk:
  case Op::DivCk:
  case Op::ModCk:
  case Op::BrCmp:
  case Op::ArrAt:
  case Op::ArrAtPut:
    Out[0] = 4;
    return 1;
  case Op::Prim:     // fail may be the -1 "runtime error" sentinel.
  case Op::AddCkImm:
  case Op::SubCkImm:
  case Op::BrCmpImm:
    Out[0] = 5;
    return 1;
  case Op::BrTrue:
    Out[0] = 2;
    Out[1] = 3;
    return 2;
  case Op::CmpValueBr:
    Out[0] = 5;
    Out[1] = 6;
    return 2;
  default:
    return 0;
  }
}

const char *mself::opName(Op O) {
  switch (O) {
  case Op::Halt:
    return "halt";
  case Op::Move:
    return "move";
  case Op::LoadInt:
    return "load_int";
  case Op::LoadConst:
    return "load_const";
  case Op::GetField:
    return "get_field";
  case Op::SetField:
    return "set_field";
  case Op::GetFieldConst:
    return "get_field_const";
  case Op::SetFieldConst:
    return "set_field_const";
  case Op::AddRaw:
    return "add_raw";
  case Op::SubRaw:
    return "sub_raw";
  case Op::MulRaw:
    return "mul_raw";
  case Op::AddCk:
    return "add_ck";
  case Op::SubCk:
    return "sub_ck";
  case Op::MulCk:
    return "mul_ck";
  case Op::DivCk:
    return "div_ck";
  case Op::ModCk:
    return "mod_ck";
  case Op::CmpValue:
    return "cmp_value";
  case Op::BrCmp:
    return "br_cmp";
  case Op::BrTrue:
    return "br_true";
  case Op::TestInt:
    return "test_int";
  case Op::TestMap:
    return "test_map";
  case Op::Jump:
    return "jump";
  case Op::Send:
    return "send";
  case Op::Prim:
    return "prim";
  case Op::ArrAt:
    return "arr_at";
  case Op::ArrAtRaw:
    return "arr_at_raw";
  case Op::ArrAtPut:
    return "arr_at_put";
  case Op::ArrAtPutRaw:
    return "arr_at_put_raw";
  case Op::ArrSize:
    return "arr_size";
  case Op::MakeEnv:
    return "make_env";
  case Op::EnvGet:
    return "env_get";
  case Op::EnvSet:
    return "env_set";
  case Op::MakeBlock:
    return "make_block";
  case Op::Return:
    return "return";
  case Op::NLRet:
    return "nl_return";
  case Op::Move2:
    return "move2";
  case Op::MoveJump:
    return "move_jump";
  case Op::AddCkImm:
    return "add_ck_imm";
  case Op::SubCkImm:
    return "sub_ck_imm";
  case Op::AddRawImm:
    return "add_raw_imm";
  case Op::SubRawImm:
    return "sub_raw_imm";
  case Op::BrCmpImm:
    return "br_cmp_imm";
  case Op::CmpValueBr:
    return "cmp_value_br";
  case Op::GetFieldMove:
    return "get_field_move";
  case Op::SendMono:
    return "send_mono";
  case Op::SendGetF:
    return "send_getf";
  case Op::SendSetF:
    return "send_setf";
  case Op::SendConst:
    return "send_const";
  case Op::MakeEnvArena:
    return "make_env_arena";
  case Op::MakeBlockArena:
    return "make_block_arena";
  case Op::BbvStub:
    return "bbv_stub";
  case Op::BbvGuard:
    return "bbv_guard";
  }
  return "?";
}

const char *mself::compileTierName(CompileTier T) {
  switch (T) {
  case CompileTier::Baseline:
    return "baseline";
  case CompileTier::Optimized:
    return "optimized";
  case CompileTier::Bbv:
    return "bbv";
  }
  return "?";
}
