//===-- bytecode/bytecode.cpp - Register bytecode --------------------------===//

#include "bytecode/bytecode.h"

#include <cassert>

using namespace mself;

int mself::opArity(Op O) {
  switch (O) {
  case Op::Halt:
    return 0;
  case Op::Jump:
  case Op::Return:
  case Op::NLRet:
    return 1;
  case Op::Move:
  case Op::LoadInt:
  case Op::LoadConst:
  case Op::TestInt:
  case Op::ArrSize:
    return 2;
  case Op::GetField:
  case Op::SetField:
  case Op::GetFieldConst:
  case Op::SetFieldConst:
  case Op::AddRaw:
  case Op::SubRaw:
  case Op::MulRaw:
  case Op::TestMap:
  case Op::BrTrue:
  case Op::MakeEnv:
  case Op::ArrAtRaw:
  case Op::ArrAtPutRaw:
    return 3;
  case Op::AddCk:
  case Op::SubCk:
  case Op::MulCk:
  case Op::DivCk:
  case Op::ModCk:
  case Op::CmpValue:
  case Op::BrCmp:
  case Op::ArrAt:
  case Op::ArrAtPut:
  case Op::EnvGet:
  case Op::EnvSet:
  case Op::MakeBlock:
    return 4;
  case Op::Send:
  case Op::Prim:
    return 5;
  }
  assert(false && "unknown opcode");
  return 0;
}

const char *mself::opName(Op O) {
  switch (O) {
  case Op::Halt:
    return "halt";
  case Op::Move:
    return "move";
  case Op::LoadInt:
    return "load_int";
  case Op::LoadConst:
    return "load_const";
  case Op::GetField:
    return "get_field";
  case Op::SetField:
    return "set_field";
  case Op::GetFieldConst:
    return "get_field_const";
  case Op::SetFieldConst:
    return "set_field_const";
  case Op::AddRaw:
    return "add_raw";
  case Op::SubRaw:
    return "sub_raw";
  case Op::MulRaw:
    return "mul_raw";
  case Op::AddCk:
    return "add_ck";
  case Op::SubCk:
    return "sub_ck";
  case Op::MulCk:
    return "mul_ck";
  case Op::DivCk:
    return "div_ck";
  case Op::ModCk:
    return "mod_ck";
  case Op::CmpValue:
    return "cmp_value";
  case Op::BrCmp:
    return "br_cmp";
  case Op::BrTrue:
    return "br_true";
  case Op::TestInt:
    return "test_int";
  case Op::TestMap:
    return "test_map";
  case Op::Jump:
    return "jump";
  case Op::Send:
    return "send";
  case Op::Prim:
    return "prim";
  case Op::ArrAt:
    return "arr_at";
  case Op::ArrAtRaw:
    return "arr_at_raw";
  case Op::ArrAtPut:
    return "arr_at_put";
  case Op::ArrAtPutRaw:
    return "arr_at_put_raw";
  case Op::ArrSize:
    return "arr_size";
  case Op::MakeEnv:
    return "make_env";
  case Op::EnvGet:
    return "env_get";
  case Op::EnvSet:
    return "env_set";
  case Op::MakeBlock:
    return "make_block";
  case Op::Return:
    return "return";
  case Op::NLRet:
    return "nl_return";
  }
  return "?";
}
