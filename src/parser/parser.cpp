//===-- parser/parser.cpp - Recursive-descent parser for mini-SELF --------===//

#include "parser/parser.h"

#include "vm/value.h"

#include <cassert>

using namespace mself;
using namespace mself::ast;

namespace {

/// Longest-match parse failure carrier: set once, checked by callers.
struct ParseError {
  bool Failed = false;
  int Line = 0;
  std::string Msg;

  void fail(int L, std::string M) {
    if (Failed)
      return;
    Failed = true;
    Line = L;
    Msg = std::move(M);
  }
};

} // namespace

class Parser::Impl {
public:
  Impl(Program &Prog, StringInterner &Interner, std::vector<Token> Toks)
      : Prog(Prog), Interner(Interner), Toks(std::move(Toks)) {
    SelfName = Interner.intern("self");
  }

  ParseError Err;

  void parseProgram() {
    while (!Err.Failed && !at(TokKind::End)) {
      parseTopItem();
      if (Err.Failed)
        break;
      if (at(TokKind::Dot)) {
        advance();
        continue;
      }
      if (!at(TokKind::End))
        Err.fail(cur().Line, "expected '.' between top-level items");
    }
  }

private:
  Program &Prog;
  StringInterner &Interner;
  std::vector<Token> Toks;
  size_t Pos = 0;
  std::vector<Code *> ScopeStack;
  const std::string *SelfName;

  //===------------------------------------------------------------------===//
  // Token helpers
  //===------------------------------------------------------------------===//

  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t N = 1) const {
    size_t I = Pos + N;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  bool at(TokKind K) const { return cur().Kind == K; }
  bool atBinOp(const char *Text) const {
    return at(TokKind::BinOp) && *cur().Text == Text;
  }
  void advance() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }
  bool expect(TokKind K, const char *What) {
    if (at(K)) {
      advance();
      return true;
    }
    Err.fail(cur().Line, std::string("expected ") + What);
    return false;
  }

  //===------------------------------------------------------------------===//
  // Top level
  //===------------------------------------------------------------------===//

  /// True if the tokens at the cursor begin a slot definition rather than an
  /// expression statement (decided by bounded lookahead).
  bool looksLikeSlotDef() const {
    const Token &T0 = cur();
    if (T0.Kind == TokKind::Ident) {
      const Token &T1 = peek();
      if (T1.Kind == TokKind::Equals || T1.Kind == TokKind::Arrow)
        return true;
      // `parent* = ...`
      if (T1.Kind == TokKind::BinOp && *T1.Text == "*" &&
          peek(2).Kind == TokKind::Equals)
        return true;
      return false;
    }
    if (T0.Kind == TokKind::BinOp)
      return peek().Kind == TokKind::Ident && peek(2).Kind == TokKind::Equals;
    if (T0.Kind == TokKind::Keyword) {
      // keyword parts each followed by an argument name, then '='.
      size_t I = 0;
      while (peek(I).Kind == TokKind::Keyword &&
             peek(I + 1).Kind == TokKind::Ident)
        I += 2;
      return I > 0 && peek(I).Kind == TokKind::Equals;
    }
    return false;
  }

  void parseTopItem() {
    if (looksLikeSlotDef()) {
      SlotDef *S = parseSlotDef();
      if (Err.Failed)
        return;
      TopLevelItem Item;
      Item.Slot = S;
      Prog.TopLevel.push_back(Item);
      return;
    }
    // Expression statement: wrap in a synthetic zero-argument method body.
    Code *C = Prog.makeCode();
    C->SelectorName = Interner.intern("<top-level>");
    ScopeStack.push_back(C);
    Expr *E = parseStatement();
    ScopeStack.pop_back();
    if (Err.Failed)
      return;
    C->Body.push_back(E);
    finalizeScope(C, 0);
    TopLevelItem Item;
    Item.ExprBody = C;
    Prog.TopLevel.push_back(Item);
  }

  //===------------------------------------------------------------------===//
  // Slot definitions
  //===------------------------------------------------------------------===//

  /// Parses one slot definition: data (`x <- lit`), constant, parent, or
  /// method (unary/binary/keyword signatures).
  SlotDef *parseSlotDef() {
    SlotDef *S = Prog.makeSlotDef();
    S->Line = cur().Line;
    std::vector<const std::string *> ArgNames;

    if (at(TokKind::Ident)) {
      const std::string *Name = cur().Text;
      advance();
      if (at(TokKind::BinOp) && *cur().Text == "*") {
        advance();
        S->Name = Name;
        S->Kind = SlotKind::Parent;
        if (!expect(TokKind::Equals, "'=' after parent slot name"))
          return S;
        parseConstantSlotValue(S, ArgNames);
        if (!Err.Failed && S->ValueKind == SlotValueKind::Method)
          Err.fail(S->Line, "a parent slot cannot hold a method");
        return S;
      }
      S->Name = Name;
      if (at(TokKind::Arrow)) {
        advance();
        S->Kind = SlotKind::Data;
        parseLiteralSlotValue(S);
        return S;
      }
      if (at(TokKind::Dot) || at(TokKind::VBar)) {
        // Bare name: nil-initialized data slot / local, e.g. `| i |`.
        S->Kind = SlotKind::Data;
        S->ValueKind = SlotValueKind::PathExpr;
        S->PathNames.push_back(Interner.intern("nil"));
        return S;
      }
      if (!expect(TokKind::Equals, "'=' or '<-' after slot name"))
        return S;
      S->Kind = SlotKind::Constant;
      parseConstantSlotValue(S, ArgNames);
      return S;
    }

    if (at(TokKind::BinOp)) {
      S->Name = cur().Text;
      advance();
      if (!at(TokKind::Ident)) {
        Err.fail(cur().Line, "expected argument name in binary method slot");
        return S;
      }
      ArgNames.push_back(cur().Text);
      advance();
      S->Kind = SlotKind::Constant;
      if (!expect(TokKind::Equals, "'=' in binary method slot"))
        return S;
      parseConstantSlotValue(S, ArgNames);
      if (!Err.Failed && S->ValueKind != SlotValueKind::Method)
        Err.fail(S->Line, "a binary slot must hold a method");
      return S;
    }

    if (at(TokKind::Keyword)) {
      std::string Selector;
      while (at(TokKind::Keyword)) {
        Selector += *cur().Text;
        advance();
        if (!at(TokKind::Ident)) {
          Err.fail(cur().Line, "expected argument name after keyword part");
          return S;
        }
        ArgNames.push_back(cur().Text);
        advance();
      }
      S->Name = Interner.intern(Selector);
      S->Kind = SlotKind::Constant;
      if (!expect(TokKind::Equals, "'=' in keyword method slot"))
        return S;
      parseConstantSlotValue(S, ArgNames);
      if (!Err.Failed && S->ValueKind != SlotValueKind::Method)
        Err.fail(S->Line, "a keyword slot must hold a method");
      return S;
    }

    Err.fail(cur().Line, "expected a slot definition");
    return S;
  }

  /// `name <- literal`: int or string initializer for a data slot.
  void parseLiteralSlotValue(SlotDef *S) {
    if (at(TokKind::Int)) {
      S->ValueKind = SlotValueKind::IntConst;
      S->IntValue = cur().IntVal;
      advance();
      return;
    }
    if (at(TokKind::Str)) {
      S->ValueKind = SlotValueKind::StrConst;
      S->StrValue = Interner.intern(cur().StrVal);
      advance();
      return;
    }
    if (at(TokKind::Ident)) { // e.g. `x <- nil` style path constants
      S->ValueKind = SlotValueKind::PathExpr;
      parsePathNames(S);
      return;
    }
    Err.fail(cur().Line, "data slot initializer must be a literal");
  }

  /// Value after `=`: literal, code body/object literal, or constant path.
  void parseConstantSlotValue(SlotDef *S,
                              const std::vector<const std::string *> &Args) {
    if (at(TokKind::Int)) {
      if (!Args.empty()) {
        Err.fail(cur().Line, "method slot needs a code body");
        return;
      }
      S->ValueKind = SlotValueKind::IntConst;
      S->IntValue = cur().IntVal;
      advance();
      return;
    }
    if (at(TokKind::Str)) {
      if (!Args.empty()) {
        Err.fail(cur().Line, "method slot needs a code body");
        return;
      }
      S->ValueKind = SlotValueKind::StrConst;
      S->StrValue = Interner.intern(cur().StrVal);
      advance();
      return;
    }
    if (at(TokKind::LParen)) {
      parseParenSlotValue(S, Args);
      return;
    }
    if (at(TokKind::Ident)) {
      if (!Args.empty()) {
        Err.fail(cur().Line, "method slot needs a code body");
        return;
      }
      S->ValueKind = SlotValueKind::PathExpr;
      parsePathNames(S);
      return;
    }
    Err.fail(cur().Line, "expected a slot value");
  }

  void parsePathNames(SlotDef *S) {
    while (at(TokKind::Ident)) {
      S->PathNames.push_back(cur().Text);
      advance();
    }
  }

  /// `( ... )` in slot-value position: a method body or, when it contains
  /// only slot definitions and no statements (and the slot takes no
  /// arguments), a nested object literal.
  void parseParenSlotValue(SlotDef *S,
                           const std::vector<const std::string *> &Args) {
    int Line = cur().Line;
    advance(); // '('

    std::vector<SlotDef *> Entries;
    if (at(TokKind::VBar)) {
      advance();
      parseSlotEntries(Entries, /*AllowBlockArgs=*/false);
      if (Err.Failed)
        return;
      if (!expect(TokKind::VBar, "'|' closing the slot list"))
        return;
    }

    bool HasStatements = !at(TokKind::RParen);
    if (!HasStatements && Args.empty() && !Entries.empty() &&
        !onlySimpleLocals(Entries)) {
      // Slots-only with complex slots: a nested object literal.
      advance(); // ')'
      ObjectLit *O = Prog.makeObjectLit();
      O->Line = Line;
      O->Slots.reserve(Entries.size());
      for (SlotDef *E : Entries)
        O->Slots.push_back(*E);
      S->ValueKind = SlotValueKind::ObjectLit;
      S->Object = O;
      return;
    }
    if (!HasStatements && Args.empty() && Entries.empty()) {
      // `( )` and `( | | )` denote the empty object.
      advance(); // ')'
      ObjectLit *O = Prog.makeObjectLit();
      O->Line = Line;
      S->ValueKind = SlotValueKind::ObjectLit;
      S->Object = O;
      return;
    }
    if (!HasStatements && Args.empty() && onlySimpleLocals(Entries)) {
      // Ambiguous `( | x <- 0 | )`: treat as an object with data slots.
      advance(); // ')'
      ObjectLit *O = Prog.makeObjectLit();
      O->Line = Line;
      for (SlotDef *E : Entries)
        O->Slots.push_back(*E);
      S->ValueKind = SlotValueKind::ObjectLit;
      S->Object = O;
      return;
    }

    // A method body. Its slot-list entries become locals.
    Code *C = Prog.makeCode();
    C->SelectorName = S->Name;
    for (const std::string *A : Args) {
      Code::VarSlot V;
      V.Name = A;
      V.IsArgument = true;
      C->Slots.push_back(V);
      ++C->NumArgs;
    }
    if (!entriesToLocals(Entries, C))
      return;
    ScopeStack.push_back(C);
    parseStatements(TokKind::RParen, C);
    ScopeStack.pop_back();
    if (Err.Failed)
      return;
    if (!expect(TokKind::RParen, "')' closing the method body"))
      return;
    finalizeScope(C, 0);
    S->ValueKind = SlotValueKind::Method;
    S->MethodBody = C;
  }

  /// True when every entry is a plain data/constant slot with a literal or
  /// path value (usable both as object data slots and as method locals).
  static bool onlySimpleLocals(const std::vector<SlotDef *> &Entries) {
    for (const SlotDef *E : Entries) {
      if (E->Kind == SlotKind::Parent)
        return false;
      if (E->ValueKind == SlotValueKind::Method ||
          E->ValueKind == SlotValueKind::ObjectLit)
        return false;
    }
    return true;
  }

  /// Converts slot-list entries of a method body into local VarSlots.
  bool entriesToLocals(const std::vector<SlotDef *> &Entries, Code *C) {
    for (const SlotDef *E : Entries) {
      if (E->Kind == SlotKind::Parent ||
          E->ValueKind == SlotValueKind::Method ||
          E->ValueKind == SlotValueKind::ObjectLit) {
        Err.fail(E->Line, "method locals must be simple data slots");
        return false;
      }
      Code::VarSlot V;
      V.Name = E->Name;
      if (E->ValueKind == SlotValueKind::IntConst) {
        V.InitIsInt = true;
        V.InitInt = E->IntValue;
      } else if (E->ValueKind == SlotValueKind::StrConst) {
        V.InitStr = E->StrValue;
      } else if (E->ValueKind == SlotValueKind::PathExpr) {
        // Only `nil` is accepted as a path initializer for locals; other
        // references would need load-time evaluation inside methods.
        if (E->PathNames.size() != 1 || *E->PathNames[0] != "nil") {
          Err.fail(E->Line, "local initializer must be a literal or nil");
          return false;
        }
      }
      C->Slots.push_back(V);
    }
    return true;
  }

  /// Parses slot-list entries up to (not consuming) the closing '|'.
  /// Block argument declarations (`:x`) are collected as Arg entries when
  /// \p AllowBlockArgs, encoded as SlotDefs with Kind Argument.
  void parseSlotEntries(std::vector<SlotDef *> &Out, bool AllowBlockArgs) {
    while (!at(TokKind::VBar) && !at(TokKind::End) && !Err.Failed) {
      if (at(TokKind::ColonIdent)) {
        if (!AllowBlockArgs) {
          Err.fail(cur().Line, "':arg' is only allowed in block slot lists");
          return;
        }
        SlotDef *S = Prog.makeSlotDef();
        S->Line = cur().Line;
        S->Name = cur().Text;
        S->Kind = SlotKind::Argument;
        advance();
        Out.push_back(S);
      } else {
        Out.push_back(parseSlotDef());
        if (Err.Failed)
          return;
      }
      if (at(TokKind::Dot)) {
        advance();
        continue;
      }
      break;
    }
  }

  //===------------------------------------------------------------------===//
  // Statements and expressions
  //===------------------------------------------------------------------===//

  Code *scope() { return ScopeStack.back(); }

  void parseStatements(TokKind Terminator, Code *C) {
    while (!at(Terminator) && !at(TokKind::End) && !Err.Failed) {
      Expr *E = parseStatement();
      if (Err.Failed)
        return;
      C->Body.push_back(E);
      if (at(TokKind::Dot)) {
        advance();
        continue;
      }
      break;
    }
  }

  Expr *parseStatement() {
    if (at(TokKind::Caret)) {
      int Line = cur().Line;
      advance();
      Expr *V = parseExpr();
      return Prog.make<Return>(V, Line);
    }
    return parseExpr();
  }

  Expr *parseExpr() { return parseKeywordExpr(); }

  Expr *parseKeywordExpr() {
    int Line = cur().Line;
    Expr *Recv = nullptr;
    if (!at(TokKind::Keyword)) {
      Recv = parseBinaryExpr();
      if (Err.Failed)
        return Recv;
      if (!at(TokKind::Keyword))
        return Recv;
    }
    // Gather keyword parts and arguments.
    std::string Selector;
    std::vector<Expr *> Args;
    bool IsPrim = cur().Text->size() > 1 && (*cur().Text)[0] == '_';
    while (at(TokKind::Keyword)) {
      Selector += *cur().Text;
      advance();
      Args.push_back(parseBinaryExpr());
      if (Err.Failed)
        return Args.back();
    }
    if (IsPrim)
      return makePrimCall(Recv, Selector, std::move(Args), Line);

    const std::string *Sel = Interner.intern(Selector);
    // Assignment to a lexically visible local: `x: expr`.
    if (Recv == nullptr && Args.size() == 1) {
      std::string Base = Selector.substr(0, Selector.size() - 1);
      const std::string *BaseName = Interner.intern(Base);
      if (auto [DefScope, Index] = resolve(BaseName); DefScope)
        return Prog.make<VarSet>(DefScope, Index, BaseName, Args[0], Line);
    }
    return Prog.make<Send>(Recv, Sel, std::move(Args), Line);
  }

  Expr *makePrimCall(Expr *Recv, const std::string &Selector,
                     std::vector<Expr *> Args, int Line) {
    if (Recv == nullptr)
      Recv = Prog.make<SelfRef>(Line);
    Expr *OnFail = nullptr;
    std::string Sel = Selector;
    static const std::string IfFail = "IfFail:";
    if (Sel.size() > IfFail.size() &&
        Sel.compare(Sel.size() - IfFail.size(), IfFail.size(), IfFail) == 0) {
      Sel.resize(Sel.size() - IfFail.size());
      OnFail = Args.back();
      Args.pop_back();
    }
    return Prog.make<PrimCall>(Interner.intern(Sel), Recv, std::move(Args),
                               OnFail, Line);
  }

  Expr *parseBinaryExpr() {
    Expr *Lhs = parseUnaryExpr();
    while (!Err.Failed && at(TokKind::BinOp)) {
      const std::string *Op = cur().Text;
      int Line = cur().Line;
      advance();
      Expr *Rhs = parseUnaryExpr();
      std::vector<Expr *> Args{Rhs};
      Lhs = Prog.make<Send>(Lhs, Op, std::move(Args), Line);
    }
    return Lhs;
  }

  Expr *parseUnaryExpr() {
    Expr *E = parsePrimary();
    while (!Err.Failed && at(TokKind::Ident)) {
      const std::string *Name = cur().Text;
      int Line = cur().Line;
      advance();
      if (Name->size() > 1 && (*Name)[0] == '_')
        E = Prog.make<PrimCall>(Name, E, std::vector<Expr *>(), nullptr,
                                Line);
      else
        E = Prog.make<Send>(E, Name, std::vector<Expr *>(), Line);
    }
    return E;
  }

  Expr *parsePrimary() {
    int Line = cur().Line;
    switch (cur().Kind) {
    case TokKind::Int: {
      int64_t V = cur().IntVal;
      advance();
      if (!fitsSmallInt(V)) {
        Err.fail(Line, "integer literal exceeds the small-integer range");
        return Prog.make<IntLit>(0, Line);
      }
      return Prog.make<IntLit>(V, Line);
    }
    case TokKind::Str: {
      const std::string *T = Interner.intern(cur().StrVal);
      advance();
      return Prog.make<StrLit>(T, Line);
    }
    case TokKind::LParen: {
      advance();
      Expr *E = parseExpr();
      expect(TokKind::RParen, "')'");
      return E;
    }
    case TokKind::LBracket:
      return parseBlock();
    case TokKind::Ident: {
      const std::string *Name = cur().Text;
      advance();
      if (Name == SelfName)
        return Prog.make<SelfRef>(Line);
      if (Name->size() > 1 && (*Name)[0] == '_')
        return Prog.make<PrimCall>(Name, Prog.make<SelfRef>(Line),
                                   std::vector<Expr *>(), nullptr, Line);
      if (auto [DefScope, Index] = resolve(Name); DefScope)
        return Prog.make<VarGet>(DefScope, Index, Name, Line);
      // Unknown name: an implicit-self unary send (reaches the lobby).
      return Prog.make<Send>(nullptr, Name, std::vector<Expr *>(), Line);
    }
    default:
      Err.fail(Line, "expected an expression");
      advance();
      return Prog.make<IntLit>(0, Line);
    }
  }

  Expr *parseBlock() {
    int Line = cur().Line;
    advance(); // '['
    BlockExpr *B = Prog.makeBlock();
    Code *C = &B->Body;
    C->LexicalParent = scope();
    C->Depth = scope()->Depth + 1;
    C->SelectorName = Interner.intern("<block>");
    scope()->ChildScopes.push_back(C);

    if (at(TokKind::ColonIdent)) {
      // Smalltalk-style arg list: `[ :a :b | ... ]`.
      while (at(TokKind::ColonIdent)) {
        Code::VarSlot V;
        V.Name = cur().Text;
        V.IsArgument = true;
        C->Slots.push_back(V);
        ++C->NumArgs;
        advance();
      }
      if (!expect(TokKind::VBar, "'|' after block arguments"))
        return Prog.make<BlockLit>(B, Line);
    } else if (at(TokKind::VBar)) {
      advance();
      std::vector<SlotDef *> Entries;
      parseSlotEntries(Entries, /*AllowBlockArgs=*/true);
      if (Err.Failed)
        return Prog.make<BlockLit>(B, Line);
      if (!expect(TokKind::VBar, "'|' closing the block slot list"))
        return Prog.make<BlockLit>(B, Line);
      // Arguments first, then locals, preserving declaration order.
      for (const SlotDef *E : Entries) {
        if (E->Kind != SlotKind::Argument)
          continue;
        Code::VarSlot V;
        V.Name = E->Name;
        V.IsArgument = true;
        C->Slots.push_back(V);
        ++C->NumArgs;
      }
      std::vector<SlotDef *> LocalEntries;
      for (SlotDef *E : Entries)
        if (E->Kind != SlotKind::Argument)
          LocalEntries.push_back(E);
      if (!entriesToLocals(LocalEntries, C))
        return Prog.make<BlockLit>(B, Line);
    }

    ScopeStack.push_back(C);
    parseStatements(TokKind::RBracket, C);
    ScopeStack.pop_back();
    expect(TokKind::RBracket, "']' closing the block");
    return Prog.make<BlockLit>(B, Line);
  }

  //===------------------------------------------------------------------===//
  // Scope resolution and capture analysis
  //===------------------------------------------------------------------===//

  /// Finds \p Name in the lexical scope chain. Marks the slot captured when
  /// the reference crosses a block boundary.
  std::pair<Code *, int> resolve(const std::string *Name) {
    for (auto It = ScopeStack.rbegin(); It != ScopeStack.rend(); ++It) {
      Code *C = *It;
      int Index = C->findSlot(Name);
      if (Index < 0)
        continue;
      if (C != ScopeStack.back())
        C->Slots[Index].Storage = VarStorage::Env;
      return {C, Index};
    }
    return {nullptr, -1};
  }

  /// Assigns environment indices and static environment levels over a
  /// completed method-root scope tree.
  void finalizeScope(Code *C, int ParentEnvLevel) {
    C->EnvSlotCount = 0;
    for (Code::VarSlot &V : C->Slots)
      if (V.Storage == VarStorage::Env)
        V.EnvIndex = C->EnvSlotCount++;
    C->HasCaptured = C->EnvSlotCount > 0;
    C->EnvLevel = ParentEnvLevel + (C->HasCaptured ? 1 : 0);
    for (Code *Child : C->ChildScopes)
      finalizeScope(Child, C->EnvLevel);
  }
};

ParseResult Parser::parseTopLevel(const std::string &Source) {
  std::vector<Token> Toks = Lexer::tokenize(Source, Interner);
  if (!Toks.empty() && Toks.back().Kind == TokKind::Error)
    return ParseResult::failure(Toks.back().Line, Toks.back().StrVal);
  Impl I(Prog, Interner, std::move(Toks));
  I.parseProgram();
  if (I.Err.Failed)
    return ParseResult::failure(I.Err.Line, I.Err.Msg);
  return ParseResult::success();
}
