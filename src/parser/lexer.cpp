//===-- parser/lexer.cpp - Tokenizer for mini-SELF ------------------------===//

#include "parser/lexer.h"

#include <cctype>

using namespace mself;

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}
bool isOpChar(char C) {
  switch (C) {
  case '+':
  case '-':
  case '*':
  case '/':
  case '%':
  case '<':
  case '>':
  case '=':
  case '!':
  case '&':
  case '~':
  case ',':
  case '@':
    return true;
  default:
    return false;
  }
}

} // namespace

std::vector<Token> Lexer::tokenize(const std::string &Source,
                                   StringInterner &Interner) {
  std::vector<Token> Toks;
  size_t I = 0, N = Source.size();
  int Line = 1;

  auto error = [&](const std::string &Msg) {
    Token T;
    T.Kind = TokKind::Error;
    T.StrVal = Msg;
    T.Line = Line;
    Toks.push_back(T);
  };
  auto simple = [&](TokKind K) {
    Token T;
    T.Kind = K;
    T.Line = Line;
    Toks.push_back(T);
  };

  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '"') { // Comment: runs to the closing double quote.
      ++I;
      while (I < N && Source[I] != '"') {
        if (Source[I] == '\n')
          ++Line;
        ++I;
      }
      if (I == N) {
        error("unterminated comment");
        return Toks;
      }
      ++I;
      continue;
    }
    if (C == '\'') { // String literal.
      ++I;
      std::string S;
      while (I < N && Source[I] != '\'') {
        if (Source[I] == '\n')
          ++Line;
        if (Source[I] == '\\' && I + 1 < N) {
          ++I;
          char E = Source[I];
          S.push_back(E == 'n' ? '\n' : E == 't' ? '\t' : E);
        } else {
          S.push_back(Source[I]);
        }
        ++I;
      }
      if (I == N) {
        error("unterminated string literal");
        return Toks;
      }
      ++I;
      Token T;
      T.Kind = TokKind::Str;
      T.StrVal = std::move(S);
      T.Line = Line;
      Toks.push_back(T);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = 0;
      bool Overflow = false;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I]))) {
        if (__builtin_mul_overflow(V, int64_t(10), &V) ||
            __builtin_add_overflow(V, int64_t(Source[I] - '0'), &V))
          Overflow = true;
        ++I;
      }
      if (Overflow) {
        error("integer literal too large");
        return Toks;
      }
      Token T;
      T.Kind = TokKind::Int;
      T.IntVal = V;
      T.Line = Line;
      Toks.push_back(T);
      continue;
    }
    if (isIdentStart(C)) {
      size_t Start = I;
      while (I < N && isIdentChar(Source[I]))
        ++I;
      bool HasColon = I < N && Source[I] == ':';
      Token T;
      if (HasColon) {
        ++I;
        T.Kind = TokKind::Keyword;
        T.Text = Interner.intern(Source.substr(Start, I - Start));
      } else {
        T.Kind = TokKind::Ident;
        T.Text = Interner.intern(Source.substr(Start, I - Start));
      }
      T.Line = Line;
      Toks.push_back(T);
      continue;
    }
    if (C == ':' && I + 1 < N && isIdentStart(Source[I + 1])) {
      size_t Start = ++I;
      while (I < N && isIdentChar(Source[I]))
        ++I;
      Token T;
      T.Kind = TokKind::ColonIdent;
      T.Text = Interner.intern(Source.substr(Start, I - Start));
      T.Line = Line;
      Toks.push_back(T);
      continue;
    }
    if (isOpChar(C)) {
      size_t Start = I;
      while (I < N && isOpChar(Source[I]))
        ++I;
      std::string Op = Source.substr(Start, I - Start);
      if (Op == "=") {
        simple(TokKind::Equals);
      } else if (Op == "<-") {
        simple(TokKind::Arrow);
      } else {
        Token T;
        T.Kind = TokKind::BinOp;
        T.Text = Interner.intern(Op);
        T.Line = Line;
        Toks.push_back(T);
      }
      continue;
    }
    switch (C) {
    case '(':
      simple(TokKind::LParen);
      break;
    case ')':
      simple(TokKind::RParen);
      break;
    case '[':
      simple(TokKind::LBracket);
      break;
    case ']':
      simple(TokKind::RBracket);
      break;
    case '|':
      simple(TokKind::VBar);
      break;
    case '.':
      simple(TokKind::Dot);
      break;
    case '^':
      simple(TokKind::Caret);
      break;
    default:
      error(std::string("unexpected character '") + C + "'");
      return Toks;
    }
    ++I;
  }
  simple(TokKind::End);
  return Toks;
}
