//===-- parser/ast.h - Abstract syntax trees for mini-SELF ------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ASTs for mini-SELF. The parser resolves identifiers against lexical
/// scopes: a name bound by an enclosing method/block becomes a VarGet/VarSet
/// referring to its defining scope; anything else is a message send to
/// (implicit) self, as in SELF, where even "globals" are slots found through
/// the lobby parent chain.
///
/// Scope storage model: a slot of a Code scope that is referenced from a
/// lexically nested block is "captured". Captured slots live in a
/// heap-allocated environment when any closure actually escapes; the
/// optimizing compiler demotes them to registers when it inlines every block
/// of the compilation unit (see compiler/lower.cpp), which is what lets the
/// paper's loop variables live in registers.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_PARSER_AST_H
#define MINISELF_PARSER_AST_H

#include "vm/map.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mself {
namespace ast {

struct BlockExpr;
struct Code;

enum class ExprKind : uint8_t {
  IntLit,
  StrLit,
  SelfRef,
  VarGet,
  VarSet,
  Send,
  PrimCall,
  BlockLit,
  Return,
};

/// Base of all expression nodes. Owned by the Program arena.
struct Expr {
  Expr(ExprKind Kind, int Line) : Kind(Kind), Line(Line) {}
  virtual ~Expr() = default;

  const ExprKind Kind;
  const int Line;
};

struct IntLit : Expr {
  IntLit(int64_t V, int Line) : Expr(ExprKind::IntLit, Line), Val(V) {}
  int64_t Val;
};

/// String literal; the literal's StringObj is created at load time and
/// entered into the Program literal pool under PoolIndex.
struct StrLit : Expr {
  StrLit(const std::string *Text, int Line)
      : Expr(ExprKind::StrLit, Line), Text(Text) {}
  const std::string *Text;
  int PoolIndex = -1;
};

struct SelfRef : Expr {
  explicit SelfRef(int Line) : Expr(ExprKind::SelfRef, Line) {}
};

/// Reference to an argument or local of an enclosing Code scope.
struct VarGet : Expr {
  VarGet(Code *Scope, int SlotIndex, const std::string *Name, int Line)
      : Expr(ExprKind::VarGet, Line), Scope(Scope), SlotIndex(SlotIndex),
        Name(Name) {}
  Code *Scope;   ///< Defining scope.
  int SlotIndex; ///< Index into Scope's unified arg+local slot list.
  const std::string *Name;
};

struct VarSet : Expr {
  VarSet(Code *Scope, int SlotIndex, const std::string *Name, Expr *Val,
         int Line)
      : Expr(ExprKind::VarSet, Line), Scope(Scope), SlotIndex(SlotIndex),
        Name(Name), Val(Val) {}
  Code *Scope;
  int SlotIndex;
  const std::string *Name;
  Expr *Val;
};

/// A message send. Recv == nullptr means an implicit-self send.
struct Send : Expr {
  Send(Expr *Recv, const std::string *Selector, std::vector<Expr *> Args,
       int Line)
      : Expr(ExprKind::Send, Line), Recv(Recv), Selector(Selector),
        Args(std::move(Args)) {}
  Expr *Recv;
  const std::string *Selector;
  std::vector<Expr *> Args;
};

/// A robust primitive call (selector starting with '_'). If the source
/// selector ends in "IfFail:", the final argument is split off into OnFail.
struct PrimCall : Expr {
  PrimCall(const std::string *Selector, Expr *Recv, std::vector<Expr *> Args,
           Expr *OnFail, int Line)
      : Expr(ExprKind::PrimCall, Line), Selector(Selector), Recv(Recv),
        Args(std::move(Args)), OnFail(OnFail) {}
  const std::string *Selector; ///< Without the trailing "IfFail:" part.
  Expr *Recv;
  std::vector<Expr *> Args;
  Expr *OnFail;      ///< Failure handler expression or nullptr.
  int PrimIndex = -1; ///< Resolved index into the primitive table.
};

struct BlockLit : Expr {
  BlockLit(BlockExpr *Block, int Line)
      : Expr(ExprKind::BlockLit, Line), Block(Block) {}
  BlockExpr *Block;
};

/// `^ expr`: early return from the home method (non-local when it appears
/// lexically inside a block).
struct Return : Expr {
  Return(Expr *Val, int Line) : Expr(ExprKind::Return, Line), Val(Val) {}
  Expr *Val;
};

/// Storage assigned to one argument/local slot of a Code scope.
enum class VarStorage : uint8_t {
  Reg, ///< Never captured: plain register in the activation.
  Env, ///< Captured by a nested block: lives in the scope's environment.
};

/// A method or block body: formals, locals, and a statement list.
struct Code {
  struct VarSlot {
    const std::string *Name = nullptr;
    bool IsArgument = false;
    /// Literal initializer for locals (ints/strings only; nil when neither
    /// is set). Locals are always initialized to compile-time constants,
    /// which is what gives the analyzer its initial value types (§3.2.1).
    int64_t InitInt = 0;                  ///< Valid when InitIsInt.
    bool InitIsInt = false;
    const std::string *InitStr = nullptr; ///< Valid when non-null.
    VarStorage Storage = VarStorage::Reg;
    int EnvIndex = -1; ///< Slot in the scope's environment, if Storage==Env.
  };

  std::vector<VarSlot> Slots; ///< Arguments first, then locals.
  int NumArgs = 0;
  std::vector<Expr *> Body;

  Code *LexicalParent = nullptr;        ///< Null for method scopes.
  std::vector<Code *> ChildScopes;      ///< Directly nested block bodies.
  int Depth = 0;                 ///< 0 for methods, 1.. for nested blocks.
  bool HasCaptured = false;      ///< Any slot with Env storage?
  int EnvSlotCount = 0;
  /// Number of capturing scopes from the method root down to and including
  /// this scope; defines static environment-chain hop counts.
  int EnvLevel = 0;
  const std::string *SelectorName = nullptr; ///< For diagnostics.

  /// \returns the slot index of \p Name or -1.
  int findSlot(const std::string *Name) const;
};

/// A block literal's code plus its identity within the program.
struct BlockExpr {
  Code Body;
  int Id = -1;
};

/// How a slot definition provides its value.
enum class SlotValueKind : uint8_t {
  IntConst,
  StrConst,
  Method,    ///< Code body (any slot with arguments, or code in the body).
  ObjectLit, ///< Nested slots-only object literal.
  PathExpr,  ///< Reference to an existing constant (e.g. `parent* = lobby`).
};

struct ObjectLit;

/// One slot definition inside an object literal or at the top level.
struct SlotDef {
  const std::string *Name = nullptr; ///< Full selector, e.g. "at:Put:".
  SlotKind Kind = SlotKind::Constant;
  SlotValueKind ValueKind = SlotValueKind::IntConst;
  int64_t IntValue = 0;
  const std::string *StrValue = nullptr;
  Code *MethodBody = nullptr;  ///< Owns arg names in its Slots.
  ObjectLit *Object = nullptr; ///< For nested object literals.
  /// Definition-time constant path, e.g. `parent* = traits int` is
  /// {"traits", "int"}: the first name is looked up in the lobby, the rest
  /// are constant-slot reads.
  std::vector<const std::string *> PathNames;
  int Line = 0;
};

/// `( | slot. slot. ... | )` — a slots-only object literal.
struct ObjectLit {
  std::vector<SlotDef> Slots;
  int Line = 0;
};

/// One top-level item: either a slot definition applied to the lobby or an
/// expression to evaluate (wrapped in a synthetic zero-argument Code).
struct TopLevelItem {
  SlotDef *Slot = nullptr; ///< Non-null for definitions.
  Code *ExprBody = nullptr; ///< Non-null for expression statements.
};

/// Owns every AST node produced by one parse.
class Program {
public:
  template <typename T, typename... ArgTs> T *make(ArgTs &&...Args) {
    auto Owned = std::make_unique<T>(std::forward<ArgTs>(Args)...);
    T *Ptr = Owned.get();
    Exprs.push_back(std::move(Owned));
    return Ptr;
  }

  Code *makeCode();
  BlockExpr *makeBlock();
  ObjectLit *makeObjectLit();
  SlotDef *makeSlotDef();

  std::vector<TopLevelItem> TopLevel;

private:
  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<Code>> Codes;
  std::vector<std::unique_ptr<BlockExpr>> Blocks;
  std::vector<std::unique_ptr<ObjectLit>> Objects;
  std::vector<std::unique_ptr<SlotDef>> SlotDefs;
};

} // namespace ast
} // namespace mself

#endif // MINISELF_PARSER_AST_H
