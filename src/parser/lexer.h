//===-- parser/lexer.h - Tokenizer for mini-SELF ----------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for mini-SELF. Notable conventions (all SELF-inherited):
///   * `ident:` with the colon attached is one Keyword token;
///   * binary selectors are runs of operator characters (`+ <= ==` ...);
///   * `<-` is the assignable-slot arrow, `=` the constant-slot equals
///     (neither is an expression operator; equality is `==`);
///   * comments are double-quoted, strings single-quoted;
///   * identifiers beginning with `_` name primitives.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_PARSER_LEXER_H
#define MINISELF_PARSER_LEXER_H

#include "support/interner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mself {

enum class TokKind : uint8_t {
  End,
  Int,        ///< Integer literal.
  Str,        ///< 'single-quoted' string literal.
  Ident,      ///< lowercase or _primitive identifier.
  Keyword,    ///< identifier with attached colon, e.g. `at:` / `Put:`.
  BinOp,      ///< operator run, e.g. `+` `<=` `==`.
  Equals,     ///< `=` (constant slot definition).
  Arrow,      ///< `<-` (assignable slot definition).
  LParen,     ///< `(`
  RParen,     ///< `)`
  LBracket,   ///< `[`
  RBracket,   ///< `]`
  VBar,       ///< `|`
  Dot,        ///< `.`
  Caret,      ///< `^`
  ColonIdent, ///< `:name` (block argument declaration).
  Error,
};

struct Token {
  TokKind Kind = TokKind::End;
  const std::string *Text = nullptr; ///< Interned spelling (idents/ops).
  int64_t IntVal = 0;
  std::string StrVal; ///< String literal contents / error message.
  int Line = 1;
};

/// Tokenizes a whole buffer up front (mini-SELF sources are small).
class Lexer {
public:
  /// Tokenizes \p Source; reported token text is interned into \p Interner.
  /// On a lexical error the token stream ends with an Error token whose
  /// StrVal describes the problem.
  static std::vector<Token> tokenize(const std::string &Source,
                                     StringInterner &Interner);
};

} // namespace mself

#endif // MINISELF_PARSER_LEXER_H
