//===-- parser/parser.h - Recursive-descent parser for mini-SELF *- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing ast::Program contents. Identifier
/// resolution against lexical scopes happens here (locals/arguments become
/// VarGet/VarSet; everything else becomes a message send), as does capture
/// analysis: slots referenced from nested blocks are assigned environment
/// storage and scopes get their static environment levels.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_PARSER_PARSER_H
#define MINISELF_PARSER_PARSER_H

#include "parser/ast.h"
#include "parser/lexer.h"
#include "support/interner.h"

#include <string>

namespace mself {

/// Outcome of a parse; on failure, Error holds a "line N: message" string.
struct ParseResult {
  bool Ok = true;
  std::string Error;

  static ParseResult success() { return ParseResult(); }
  static ParseResult failure(int Line, const std::string &Msg) {
    ParseResult R;
    R.Ok = false;
    R.Error = "line " + std::to_string(Line) + ": " + Msg;
    return R;
  }
};

/// Parses top-level mini-SELF source into an ast::Program.
class Parser {
public:
  Parser(ast::Program &Prog, StringInterner &Interner)
      : Prog(Prog), Interner(Interner) {}

  /// Parses \p Source, appending items to the program's top level.
  ParseResult parseTopLevel(const std::string &Source);

private:
  class Impl;
  ast::Program &Prog;
  StringInterner &Interner;
};

} // namespace mself

#endif // MINISELF_PARSER_PARSER_H
