//===-- parser/ast.cpp - Abstract syntax trees for mini-SELF -------------===//

#include "parser/ast.h"

using namespace mself;
using namespace mself::ast;

int Code::findSlot(const std::string *Name) const {
  for (size_t I = 0, E = Slots.size(); I != E; ++I)
    if (Slots[I].Name == Name)
      return static_cast<int>(I);
  return -1;
}

Code *Program::makeCode() {
  Codes.push_back(std::make_unique<Code>());
  return Codes.back().get();
}

BlockExpr *Program::makeBlock() {
  Blocks.push_back(std::make_unique<BlockExpr>());
  BlockExpr *B = Blocks.back().get();
  B->Id = static_cast<int>(Blocks.size()) - 1;
  return B;
}

ObjectLit *Program::makeObjectLit() {
  Objects.push_back(std::make_unique<ObjectLit>());
  return Objects.back().get();
}

SlotDef *Program::makeSlotDef() {
  SlotDefs.push_back(std::make_unique<SlotDef>());
  return SlotDefs.back().get();
}
