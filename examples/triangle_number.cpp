//===-- examples/triangle_number.cpp - The paper's §5.3 worked example -------===//
//
// Compiles the paper's triangleNumber: example under all three compiler
// configurations and shows (a) the execution counters — under new SELF the
// common-case loop runs with no dynamically-bound sends and no run-time
// type tests, exactly the paper's gray-box CFG — and (b) the compiled code,
// where the multi-version loop (general version with tests hopping into the
// specialized version) is visible in the listing.
//
//===----------------------------------------------------------------------===//

#include "bytecode/disasm.h"
#include "driver/vm.h"

#include <cstdio>

using namespace mself;

namespace {

const char *kTriangle =
    "triangleNumber: n = ( | sum <- 0 | "
    "1 upTo: n Do: [ :i | sum: sum + i ]. sum )";

// Launder the argument through a vector so its type is unknown at compile
// time — the situation the paper's example analyzes (n starts unknown).
const char *kDriver =
    "callIt = ( | v | v: (vectorOfSize: 1). v at: 0 Put: 1000. "
    "triangleNumber: (v at: 0) )";

void runUnder(const Policy &P, bool Disassemble) {
  VirtualMachine VM(P);
  std::string Err;
  if (!VM.load(kTriangle, Err) || !VM.load(kDriver, Err)) {
    fprintf(stderr, "load failed: %s\n", Err.c_str());
    return;
  }
  int64_t Out = 0;
  if (!VM.evalInt("callIt", Out, Err)) { // Warm-up compile.
    fprintf(stderr, "run failed: %s\n", Err.c_str());
    return;
  }
  VM.interp().resetCounters();
  VM.evalInt("callIt", Out, Err);
  const ExecCounters &C = VM.interp().counters();
  printf("%-9s triangleNumber: 1000 = %-8lld  instructions=%-7llu "
         "sends=%-5llu typeTests=%-5llu envAccesses=%llu\n",
         P.Name.c_str(), static_cast<long long>(Out),
         static_cast<unsigned long long>(C.Instructions),
         static_cast<unsigned long long>(C.Sends),
         static_cast<unsigned long long>(C.TypeTests),
         static_cast<unsigned long long>(C.EnvAccesses));

  if (!Disassemble)
    return;
  VM.code().forEach([&](const CompiledFunction &Fn) {
    if (Fn.Name && *Fn.Name == "triangleNumber:") {
      printf("\n--- %s compiled by %s "
             "(loop versions: %d, analysis passes: %d, nodes copied by "
             "splitting: %d) ---\n",
             Fn.Name->c_str(), P.Name.c_str(), Fn.Stats.LoopVersions,
             Fn.Stats.LoopIterations, Fn.Stats.NodesCopied);
      printf("%s", disassemble(Fn).c_str());
    }
  });
}

} // namespace

int main() {
  printf("The paper's triangleNumber: example (section 5.3), run under the\n"
         "three compiler configurations. Under new SELF the loop compiles\n"
         "in two versions: the general one tests n's type once, then\n"
         "control stays in the specialized version — the type test is\n"
         "hoisted out of the loop (section 5.4).\n\n");
  runUnder(Policy::st80(), false);
  runUnder(Policy::oldSelf(), false);
  runUnder(Policy::newSelf(), true);
  return 0;
}
