//===-- examples/quickstart.cpp - Five-minute tour of the public API --------===//
//
// Build a virtual machine, load some mini-SELF, evaluate expressions, and
// inspect what the optimizing compiler did. This is the README's opening
// example.
//
// `quickstart --isolates N` runs the same program in N isolates of one
// SharedRuntime instead — the multi-isolate server mode, where isolates
// share interned selectors, parsed ASTs, and compiled code (isolate 2..N
// rehydrate what isolate 1 compiled) while heap and caches stay private —
// and prints the server-wide telemetry roll-up.
//
//===----------------------------------------------------------------------===//

#include "driver/isolate.h"
#include "driver/vm.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

using namespace mself;

namespace {

/// The server-mode variant: N isolates, one shared immutable code tier.
int runIsolates(int N, const char *Program) {
  SharedRuntime RT(1);
  std::vector<std::unique_ptr<Isolate>> Isolates;
  for (int I = 0; I < N; ++I) {
    Isolates.push_back(RT.createIsolate());
    std::string Err;
    if (!Isolates.back()->load(Program, Err)) {
      fprintf(stderr, "isolate %d load failed: %s\n", I, Err.c_str());
      return 1;
    }
    Interpreter::Outcome O = Isolates.back()->eval("compound: 5 Over: 20");
    if (!O.Ok) {
      fprintf(stderr, "isolate %d eval failed: %s\n", I, O.Message.c_str());
      return 1;
    }
    printf("isolate %d: 10000 at 5%% compounded over 20 years: %s\n", I,
           O.Result.describe().c_str());
  }

  // The roll-up shows the sharing: one parse and one compile per method
  // process-wide; later isolates' compile probes hit the shared tier.
  printf("\n");
  RT.serverTelemetry().print(stdout);
  Isolates.clear();
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  int NumIsolates = 0;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--isolates") == 0 && I + 1 < argc)
      NumIsolates = std::atoi(argv[I + 1]);
  // Load definitions: slots installed on the lobby (the global namespace).
  const char *Program = R"SELF(
    "A bank account prototype. Objects are created by cloning."
    account = ( | parent* = lobby. balance <- 0.
      deposit: amount = ( balance: balance + amount. self ).
      withdraw: amount = (
        amount > balance
          ifTrue: [ error: 'insufficient funds' ]
          False: [ balance: balance - amount ].
        self ).
    | ).

    "User-defined control structures: to:Do: is ordinary library code."
    compound: rate Over: years = ( | acct |
      acct: account clone.
      acct deposit: 10000.
      years timesRepeat: [ acct deposit: (acct balance * rate) / 100 ].
      acct balance ).
  )SELF";

  // Server mode: the same program across N isolates of one SharedRuntime.
  if (NumIsolates > 0)
    return runIsolates(NumIsolates, Program);

  // One VirtualMachine = one mini-SELF world + one compiler configuration.
  // Policy::newSelf() is the paper's optimizing compiler; Policy::oldSelf()
  // and Policy::st80() are the comparison systems.
  VirtualMachine VM(Policy::newSelf());
  std::string Err;
  if (!VM.load(Program, Err)) {
    fprintf(stderr, "load failed: %s\n", Err.c_str());
    return 1;
  }

  // Evaluate expressions. Everything is a message send, including `+`.
  Interpreter::Outcome O = VM.eval("compound: 5 Over: 20");
  if (!O.Ok) {
    fprintf(stderr, "eval failed: %s\n", O.Message.c_str());
    return 1;
  }
  printf("10000 at 5%% compounded over 20 years: %s\n",
         O.Result.describe().c_str());

  // The execution counters show what the compiled code actually did:
  // under the optimizing compiler the arithmetic loop runs without
  // dynamically-bound sends or run-time type tests.
  VM.interp().resetCounters();
  O = VM.eval("compound: 5 Over: 20");
  VmTelemetry T = VM.telemetry();
  printf("executed: %llu instructions, %llu dynamic sends, "
         "%llu type tests, %llu closures created\n",
         static_cast<unsigned long long>(T.Exec.Instructions),
         static_cast<unsigned long long>(T.Exec.Sends),
         static_cast<unsigned long long>(T.Exec.TypeTests),
         static_cast<unsigned long long>(T.Exec.BlocksMade));

  // Compiler statistics are available per compiled method.
  printf("\ncompiled methods (name, inlined sends, loop versions):\n");
  VM.code().forEach([](const CompiledFunction &Fn) {
    printf("  %-22s inlined=%-3d dynamic=%-3d loopVersions=%d\n",
           Fn.Name ? Fn.Name->c_str() : "<anon>", Fn.Stats.SendsInlined,
           Fn.Stats.SendsDynamic, Fn.Stats.LoopVersions);
  });

  // The one-stop stats dump: VmTelemetry is a coherent snapshot of the
  // dispatch path, tiering (including the background compile queue), the
  // collector, and the execution counters — printed as stable key=value
  // lines (telemetry().toJson() gives the same keys as JSON).
  printf("\n");
  VM.telemetry().print(stdout);
  return 0;
}
