//===-- examples/richards_sim.cpp - The richards OS simulation --------------===//
//
// Runs the richards operating-system simulation (the paper's largest
// benchmark, §6) under all three compiler configurations and shows the
// polymorphic-send bottleneck the paper discusses: `runWith:In:` is sent to
// four different task types from one call site, so it stays a
// dynamically-bound send even under the optimizing compiler, and richards
// improves less than the other benchmarks.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"
#include "suites.h"

#include <cstdio>

using namespace mself;
using namespace mself::bench;

int main() {
  const BenchmarkDef *Richards = nullptr;
  for (const BenchmarkDef &B : allBenchmarks())
    if (B.Name == "richards")
      Richards = &B;
  if (!Richards) {
    fprintf(stderr, "richards benchmark not registered\n");
    return 1;
  }

  printf("richards: 6 tasks (idle, worker, 2 handlers, 2 devices)\n"
         "scheduled until the idle task exhausts its count.\n\n");
  printf("%-9s %-16s %-14s %-12s %-10s %-10s\n", "policy", "checksum",
         "instructions", "sends", "icHits", "icMisses");

  for (const Policy &P :
       {Policy::st80(), Policy::oldSelf(), Policy::newSelf()}) {
    VirtualMachine VM(P);
    std::string Err;
    if (!VM.load(Richards->Source, Err)) {
      fprintf(stderr, "load failed: %s\n", Err.c_str());
      return 1;
    }
    int64_t Out = 0;
    if (!VM.evalInt(Richards->RunExpr, Out, Err)) { // Warm-up.
      fprintf(stderr, "run failed (%s): %s\n", P.Name.c_str(), Err.c_str());
      return 1;
    }
    VM.interp().resetCounters();
    VM.evalInt(Richards->RunExpr, Out, Err);
    const ExecCounters &C = VM.interp().counters();
    printf("%-9s %-16lld %-14llu %-12llu %-10llu %-10llu\n", P.Name.c_str(),
           static_cast<long long>(Out),
           static_cast<unsigned long long>(C.Instructions),
           static_cast<unsigned long long>(C.Sends),
           static_cast<unsigned long long>(C.IcHits),
           static_cast<unsigned long long>(C.IcMisses));
  }
  printf("\nEven under new SELF the `runWith:In:` site stays dynamic: its\n"
         "receiver comes out of the scheduler's task queue, so no compile-\n"
         "time type is available — the paper's richards bottleneck (§6.1).\n");
  return 0;
}
