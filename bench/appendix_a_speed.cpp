//===-- bench/appendix_a_speed.cpp - E4: per-benchmark speed ----------------===//
//
// Reproduces the paper's Appendix A: compiled-code speed as a percentage of
// optimized C for every individual benchmark under each compiler
// configuration.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include <cstdio>

using namespace mself;
using namespace mself::bench;

int main() {
  Policy Policies[] = {Policy::st80(), Policy::oldSelf(), Policy::newSelf()};

  printf("E4 (Appendix A): Compiled Code Speed (%% of optimized C)\n\n");
  printf("%-14s %-12s %10s %10s %10s\n", "benchmark", "group", "ST-80",
         "old SELF", "new SELF");

  JsonReport Report("appendix_a_speed");
  bool AllOk = true;
  for (const BenchmarkDef &B : allBenchmarks()) {
    if (B.Group == "stanford-oo" && B.Name == "puzzle")
      continue; // Shared row with the stanford group.
    int64_t Chk = 0;
    double Native = runNative(B, Chk);
    printf("%-14s %-12s", B.Name.c_str(), B.Group.c_str());
    for (const Policy &P : Policies) {
      SelfRunResult R = runSelf(B, P);
      if (!R.Ok) {
        printf(" %10s", "FAIL");
        fprintf(stderr, "FAIL %s [%s]: %s\n", B.Name.c_str(),
                P.Name.c_str(), R.Error.c_str());
        AllOk = false;
        continue;
      }
      Report.metric(B.Name + "/" + P.Name + "/frac_of_native",
                    Native / R.ExecSeconds);
      printf(" %10s", pct(Native / R.ExecSeconds).c_str());
    }
    printf("\n");
  }
  Report.pass(AllOk);
  Report.write();
  return AllOk ? 0 : 1;
}
