//===-- bench/micro_ops.cpp - E9: per-operation micro-benchmarks ------------===//
//
// google-benchmark harness measuring the primitive costs the paper's
// techniques attack: a dynamically-bound send vs. an inlined one, a loop
// with run-time type tests vs. one specialized by iterative analysis, and
// closure creation vs. inlined blocks, across the three compiler
// configurations.
//
//===----------------------------------------------------------------------===//

#include "driver/vm.h"

#include <benchmark/benchmark.h>

using namespace mself;

namespace {

/// Builds a VM with the given policy, loads defs, warms the code cache.
std::unique_ptr<VirtualMachine> makeVm(const Policy &P,
                                       const std::string &Defs,
                                       const std::string &Warm) {
  auto VM = std::make_unique<VirtualMachine>(P);
  std::string Err;
  if (!VM->load(Defs, Err) || !VM->load(Warm, Err)) {
    fprintf(stderr, "micro_ops setup failed: %s\n", Err.c_str());
    abort();
  }
  return VM;
}

Policy policyFor(int Index) {
  switch (Index) {
  case 0:
    return Policy::st80();
  case 1:
    return Policy::oldSelf();
  default:
    return Policy::newSelf();
  }
}

const char *policyName(int Index) {
  switch (Index) {
  case 0:
    return "st80";
  case 1:
    return "oldself";
  default:
    return "newself";
  }
}

void runLoop(benchmark::State &State, const std::string &Defs,
             const std::string &Expr) {
  Policy P = policyFor(static_cast<int>(State.range(0)));
  // Wrap the expression in a non-inlinable method (the ^-bearing block
  // blocks inlining) so each timed eval() compiles only a trivial send
  // and the numbers measure steady-state execution, not recompilation.
  std::string AllDefs =
      Defs + ". microRun = ( | r | r: (" + Expr + "). [ ^ r ] value )";
  auto VM = makeVm(P, AllDefs, "microRun");
  std::string Err;
  int64_t Out = 0;
  for (auto _ : State) {
    if (!VM->evalInt("microRun", Out, Err)) {
      State.SkipWithError(Err.c_str());
      return;
    }
    benchmark::DoNotOptimize(Out);
  }
  State.SetLabel(policyName(static_cast<int>(State.range(0))));
}

void BM_ArithLoop(benchmark::State &State) {
  runLoop(State,
          "arithLoop = ( | s | s: 0. 1 to: 2000 Do: [ :i | s: s + i ]. s )",
          "arithLoop");
}

void BM_DynamicSendLoop(benchmark::State &State) {
  runLoop(State,
          "mA = ( | parent* = lobby. v = ( 1 ) | ). "
          "mB = ( | parent* = lobby. v = ( 2 ) | ). "
          "sendLoop = ( | s. o | s: 0. o: (vectorOfSize: 2). "
          "o at: 0 Put: mA. o at: 1 Put: mB. "
          "1 to: 1000 Do: [ :i | s: s + (o at: i % 2) v ]. s )",
          "sendLoop");
}

void BM_ArrayLoop(benchmark::State &State) {
  runLoop(State,
          "arrLoop = ( | v. s | v: (vectorOfSize: 500 FillingWith: 3). "
          "s: 0. v do: [ :e | s: s + e ]. s )",
          "arrLoop");
}

void BM_ClosureCreation(benchmark::State &State) {
  runLoop(State,
          "applyIt: b = ( b value: 21 ). "
          "closLoop = ( | s | s: 0. 1 to: 200 Do: [ :i | "
          "s: s + (applyIt: [ :x | x + x ]) ]. s % 1000 )",
          "closLoop");
}

void BM_Recursion(benchmark::State &State) {
  runLoop(State,
          "mfib: n = ( n < 2 ifTrue: [ n ] False: "
          "[ (mfib: n - 1) + (mfib: n - 2) ] )",
          "mfib: 15");
}

} // namespace

BENCHMARK(BM_ArithLoop)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond)->MinTime(0.05);
BENCHMARK(BM_DynamicSendLoop)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond)->MinTime(0.05);
BENCHMARK(BM_ArrayLoop)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond)->MinTime(0.05);
BENCHMARK(BM_ClosureCreation)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond)->MinTime(0.05);
BENCHMARK(BM_Recursion)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond)->MinTime(0.05);

BENCHMARK_MAIN();
