//===-- bench/closures.cpp - Closure-heavy benchmark suites ----------------===//
//
// The mini-SELF sources of the closure suites. Three block-allocation
// shapes, chosen to pin the three outcomes of the escape classifier:
//
//  * inject — an inject:into:-style fold. The fold callee (step:Using:)
//    carries a non-local-return guard, so the inliner declines it and the
//    per-iteration fold block survives as a real closure — but the callee
//    only ever invokes its parameter, so the classifier proves the block
//    ArgEscaping and the lowering arena-allocates it, along with the
//    method environment it captures. (The NLR guard blocks surviving on
//    the uncommon paths of the type splits are boolean-control arguments,
//    which the classifier also bets into the arena, so they no longer
//    heap-force the home chain.)
//  * nestdo — nested do: loops over a small vector. Everything inlines, so
//    under the optimizing compiler no block survives at all and every
//    capturing scope is scalar-replaced: the per-iteration environment
//    allocations of the naive lowering disappear entirely.
//  * pipeline — a combinator pipeline: stage blocks stored into a vector
//    (deliberately Escaping — they must stay heap-allocated) driven
//    through a per-iteration adapter block that stays local. Mixing the
//    lattice extremes in one kernel keeps the classifier honest: arena
//    allocation of the adapter must not leak into the stored stages.
//
// Every suite is paired with a C++ twin in native_workloads.cpp computing
// the same checksum; the differential harness runs both under the whole
// policy matrix, including the noescape rows.
//
//===----------------------------------------------------------------------===//

#include "closures.h"

#include "native.h"

namespace mself::bench {

namespace {

// The fold: step:Using: declines inlining (the `^ 0` guard) but proves its
// block parameter safe (invoked directly, never captured), so the fold
// block and injectBench's environment go to the arena. inject:K: carries
// its own guard so each fold runs in its own frame — one arena mark, one
// wholesale release per fold.
const char *kClosureInject = R"SELF(
clInject = ( | parent* = lobby. elems. n <- 0.
  init: k = ( | i <- 0 |
    elems: (vectorOfSize: k). n: k.
    [ i < k ] whileTrue: [ elems at: i Put: i + 1. i: i + 1 ].
    self ).
  step: a Using: blk = (
    a < 0 ifTrue: [ ^ 0 ].
    blk value: a ).
  inject: acc K: k = ( | a <- 0. i <- 0 |
    n == 0 ifTrue: [ ^ acc ].
    a: acc.
    [ i < n ] whileTrue: [
      a: (step: (((a + (elems at: i)) * k) % 1000003)
          Using: [ :x | ((x * 2) + k) % 1000003 ]).
      i: i + 1 ].
    a ).
| ).
injectBench = ( | v. t <- 0 |
  v: (clInject clone init: 64).
  1 to: 40 Do: [ :k | t: (((v inject: t K: k) + k) % 1000003) ].
  t ).
)SELF";

// Nested do: loops: do: is small and guard-free, so the optimizer inlines
// the whole nest and scalar-replaces both capturing scopes — the baseline
// lowering's one-env-per-inner-loop-entry traffic vanishes.
const char *kClosureNest = R"SELF(
clNest = ( | parent* = lobby. elems. n <- 0.
  init: k = ( | i <- 0 |
    elems: (vectorOfSize: k). n: k.
    [ i < k ] whileTrue: [ elems at: i Put: ((i * 7) % 23) + 1. i: i + 1 ].
    self ).
  do: blk = ( | i <- 0 |
    [ i < n ] whileTrue: [ blk value: (elems at: i). i: i + 1 ] ).
| ).
nestBench = ( | v. t <- 0 |
  v: (clNest clone init: 48).
  1 to: 30 Do: [ :r |
    v do: [ :x |
      v do: [ :y | t: ((t + (x * y)) % 1000003) ] ] ].
  t ).
)SELF";

// The pipeline: four stage blocks stored into a vector (Escaping — heap),
// invoked through a dynamic value: send per stage; the per-iteration
// adapter block passed to scale:By: stays ArgEscaping (arena).
const char *kClosurePipe = R"SELF(
clPipe = ( | parent* = lobby. stages. n <- 0.
  init = ( stages: (vectorOfSize: 8). n: 0. self ).
  add: blk = ( stages at: n Put: blk. n: n + 1. self ).
  runOn: x = ( | a <- 0. i <- 0 |
    n == 0 ifTrue: [ ^ x ].
    a: x.
    [ i < n ] whileTrue: [ a: ((stages at: i) value: a). i: i + 1 ].
    a ).
| ).
scale: x By: blk = (
  x < 0 ifTrue: [ ^ 0 ].
  blk value: x ).
pipeBench = ( | p. t <- 0 |
  p: clPipe clone init.
  p add: [ :x | (x * 3) % 1000003 ].
  p add: [ :x | (x + 17) % 1000003 ].
  p add: [ :x | (x * x) % 1000003 ].
  p add: [ :x | (x + 29) % 1000003 ].
  1 to: 200 Do: [ :i |
    t: ((t + (p runOn: (scale: (t + i)
                        By: [ :q | (q + (i * 5)) % 1000003 ])))
        % 1000003) ].
  t ).
)SELF";

} // namespace

void appendClosureBenchmarks(std::vector<BenchmarkDef> &All) {
  All.push_back({"inject", kClosureGroup, kClosureInject, "injectBench",
                 native::closureInject, 10});
  All.push_back({"nestdo", kClosureGroup, kClosureNest, "nestBench",
                 native::closureNest, 10});
  All.push_back({"pipeline", kClosureGroup, kClosurePipe, "pipeBench",
                 native::closurePipe, 10});
}

} // namespace mself::bench
