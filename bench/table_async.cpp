//===-- bench/table_async.cpp - E14: Background compilation ---------------===//
//
// Measures what moving tier-up compilation off-thread buys the mutator and
// what it costs at steady state. The workload reuses E11's shapes: a
// 24-method startup program plus one hot loop. The phase that matters here
// is the *promotion storm* — every method crosses the hotness threshold in
// a tight window, which on the synchronous path stalls the mutator inside
// the optimizer once per method, and on the background path costs only an
// enqueue per method plus a safepoint install.
//
// Rows: sync (tiered, queue off), async (queue on), and async-cap0 (queue
// on but zero capacity, so every promotion takes the synchronous fallback —
// the sanity row that shows the fallback path really is the sync path).
//
// The headline claims this table must support (EXPERIMENTS.md E14):
//   - the mutator's promotion-attributable compile stall shrinks >= 5x
//     under the background queue,
//   - steady-state executed instructions stay within 2% of sync, and
//   - every checksum is identical across all rows.
// The program exits nonzero if any fails.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "driver/vm.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace mself;
using namespace mself::bench;

namespace {

constexpr int kStartupMethods = 24;
constexpr int64_t kStartupArg = 3;
constexpr int kTierThreshold = 10;
constexpr int kStormCalls = 2 * kTierThreshold; // Crosses the threshold.
constexpr int64_t kSteadyIters = 200000;

/// E11's startup program: kStartupMethods similar-but-distinct methods and
/// a driver calling each once per invocation. Repeated invocations turn it
/// into the promotion storm.
std::string startupWorld() {
  std::string S;
  for (int I = 0; I < kStartupMethods; ++I) {
    std::string Id = std::to_string(I);
    S += "m" + Id + ": x = ( | t <- " + Id + " | 1 to: 6 Do: [ :i | "
         "(x + i) % 2 == 0 ifTrue: [ t: t + (x * i) ] False: [ t: t - i ] ]. "
         "t ). ";
  }
  S += "callAll: x = ( | t <- 0 | ";
  for (int I = 0; I < kStartupMethods; ++I)
    S += "t: t + (m" + std::to_string(I) + ": x). ";
  S += "t )";
  return S;
}

int64_t startupExpected() {
  int64_t Total = 0;
  for (int64_t M = 0; M < kStartupMethods; ++M) {
    int64_t T = M;
    for (int64_t I = 1; I <= 6; ++I)
      T += (kStartupArg + I) % 2 == 0 ? kStartupArg * I : -I;
    Total += T;
  }
  return Total;
}

const char *steadyWorld() {
  return "hot: n = ( | t <- 0. i <- 0 | [ i < n ] whileTrue: "
         "[ i: i + 1. t: t + ((i * 3) % 7) + (i % 5) ]. t )";
}

int64_t steadyExpected(int64_t N) {
  int64_t T = 0;
  for (int64_t I = 1; I <= N; ++I)
    T += (I * 3) % 7 + I % 5;
  return T;
}

struct AsyncConfig {
  const char *Name;
  bool Background;
  int QueueCap;
};

struct Row {
  bool Ok = false;
  double StormWallSec = 0;  ///< Wall time of the promotion storm.
  double StormStallSec = 0; ///< Mutator compile stall during the storm.
  double SteadyWallSec = 0;
  uint64_t SteadyInstructions = 0;
  int64_t Checksum = 0; ///< Sum of every eval result, all phases.
  TierStats Stats;      ///< Snapshot after settle.
};

Row runConfig(const AsyncConfig &C) {
  Policy P = Policy::newSelf();
  P.TieredCompilation = true;
  P.TierUpThreshold = kTierThreshold;
  P.BackgroundCompile = C.Background;
  P.BackgroundQueueCap = C.QueueCap;

  Row Out;
  VirtualMachine VM(P);
  std::string Err;
  if (!VM.load(startupWorld() + ". " + steadyWorld(), Err)) {
    fprintf(stderr, "FAIL %s load: %s\n", C.Name, Err.c_str());
    return Out;
  }

  // Startup: every method baseline-compiled and run once.
  int64_t V = 0;
  const std::string Call = "callAll: " + std::to_string(kStartupArg);
  if (!VM.evalInt(Call, V, Err) || V != startupExpected()) {
    fprintf(stderr, "FAIL %s startup: %s\n", C.Name, Err.c_str());
    return Out;
  }
  Out.Checksum += V;

  // Promotion storm: every method crosses the threshold. The stall delta
  // across this phase is promotion-attributable by construction — startup
  // compiles already happened, steady-state compiles haven't.
  double StallBefore = VM.telemetry().Tier.MutatorStallSeconds;
  auto S0 = std::chrono::steady_clock::now();
  for (int I = 0; I < kStormCalls; ++I) {
    if (!VM.evalInt(Call, V, Err) || V != startupExpected()) {
      fprintf(stderr, "FAIL %s storm: %s\n", C.Name, Err.c_str());
      return Out;
    }
    Out.Checksum += V;
  }
  for (int I = 0; I < kStormCalls; ++I) {
    if (!VM.evalInt("hot: 1000", V, Err) || V != steadyExpected(1000)) {
      fprintf(stderr, "FAIL %s warmup: %s\n", C.Name, Err.c_str());
      return Out;
    }
    Out.Checksum += V;
  }
  auto S1 = std::chrono::steady_clock::now();
  Out.StormWallSec = std::chrono::duration<double>(S1 - S0).count();
  Out.StormStallSec =
      VM.telemetry().Tier.MutatorStallSeconds - StallBefore;

  // Every pending promotion installs before the measured steady run, so
  // both modes execute the same optimized code.
  VM.settleBackgroundCompiles();

  VM.interp().resetCounters();
  auto T0 = std::chrono::steady_clock::now();
  if (!VM.evalInt("hot: " + std::to_string(kSteadyIters), V, Err) ||
      V != steadyExpected(kSteadyIters)) {
    fprintf(stderr, "FAIL %s steady: %s\n", C.Name, Err.c_str());
    return Out;
  }
  auto T1 = std::chrono::steady_clock::now();
  Out.Checksum += V;
  Out.SteadyWallSec = std::chrono::duration<double>(T1 - T0).count();
  Out.SteadyInstructions = VM.interp().counters().Instructions;
  Out.Stats = VM.telemetry().Tier;
  Out.Ok = true;
  return Out;
}

} // namespace

int main() {
  const AsyncConfig Configs[] = {
      {"sync", false, 16},
      {"async", true, 256},
      {"async-cap0", true, 0},
  };
  constexpr int kNumConfigs = sizeof(Configs) / sizeof(Configs[0]);

  printf("E14: Background compilation — %d-method promotion storm + hot "
         "loop (threshold %d)\n",
         kStartupMethods, kTierThreshold);
  printf("%-12s %12s %12s %12s %12s %6s %5s %5s %5s %5s\n", "config",
         "stall ms", "storm ms", "steady ms", "Minstr", "promo", "enq",
         "inst", "canc", "fall");

  JsonReport Report("table_async");
  bool AllOk = true;
  Row Rows[kNumConfigs];
  for (int I = 0; I < kNumConfigs; ++I) {
    Rows[I] = runConfig(Configs[I]);
    if (!Rows[I].Ok) {
      AllOk = false;
      printf("%-12s %12s\n", Configs[I].Name, "-");
      continue;
    }
    const Row &R = Rows[I];
    printf("%-12s %12s %12s %12s %12s %6llu %5llu %5llu %5llu %5llu\n",
           Configs[I].Name, fixed(R.StormStallSec * 1e3, 3).c_str(),
           fixed(R.StormWallSec * 1e3, 3).c_str(),
           fixed(R.SteadyWallSec * 1e3, 3).c_str(),
           fixed(double(R.SteadyInstructions) / 1e6, 2).c_str(),
           (unsigned long long)R.Stats.Promotions,
           (unsigned long long)R.Stats.BackgroundEnqueued,
           (unsigned long long)R.Stats.BackgroundInstalled,
           (unsigned long long)R.Stats.BackgroundCancelled,
           (unsigned long long)R.Stats.BackgroundSyncFallbacks);
    std::string Key = Configs[I].Name;
    Report.metric(Key + "/storm_stall_ms", R.StormStallSec * 1e3);
    Report.metric(Key + "/storm_ms", R.StormWallSec * 1e3);
    Report.metric(Key + "/steady_ms", R.SteadyWallSec * 1e3);
    Report.metric(Key + "/steady_minstr", double(R.SteadyInstructions) / 1e6);
    Report.metric(Key + "/promotions", double(R.Stats.Promotions));
    Report.metric(Key + "/bg_installed",
                  double(R.Stats.BackgroundInstalled));
    Report.metric(Key + "/bg_sync_fallbacks",
                  double(R.Stats.BackgroundSyncFallbacks));
  }

  const Row &Sync = Rows[0], &Async = Rows[1], &Cap0 = Rows[2];

  // Gate 1: promotion-attributable mutator stall shrinks >= 5x. A zero
  // async stall (no fallbacks at all) passes by definition.
  double StallRatio =
      Async.StormStallSec > 0 ? Sync.StormStallSec / Async.StormStallSec
                              : 1e9;
  bool StallOk = AllOk && Sync.StormStallSec > 0 && StallRatio >= 5.0;

  // Gate 2: steady-state work within 2%, measured in executed
  // instructions (machine-load independent).
  double InstrDelta = AllOk && Sync.SteadyInstructions
                          ? (double(Async.SteadyInstructions) -
                             double(Sync.SteadyInstructions))
                          : 0;
  double InstrRel = AllOk && Sync.SteadyInstructions
                        ? (InstrDelta < 0 ? -InstrDelta : InstrDelta) /
                              double(Sync.SteadyInstructions)
                        : 1.0;
  bool SteadyOk = AllOk && InstrRel <= 0.02;

  // Gate 3: identical answers everywhere, including the fallback row.
  bool ChecksumOk = AllOk && Sync.Checksum == Async.Checksum &&
                    Sync.Checksum == Cap0.Checksum;

  printf("\npromotion stall, sync vs async: %sx (>= 5x required): %s\n",
         fixed(StallRatio > 1e8 ? 0 : StallRatio, 1).c_str(),
         StallOk ? "ok" : "FAIL");
  printf("steady-state instructions, async vs sync: %s apart (<= 2%% "
         "required): %s\n",
         pct(InstrRel).c_str(), SteadyOk ? "ok" : "FAIL");
  printf("checksums identical across sync/async/cap0: %s\n",
         ChecksumOk ? "ok" : "FAIL");

  Report.metric("stall_ratio_sync_vs_async", StallRatio > 1e8 ? 1e8 : StallRatio);
  Report.metric("steady_instr_rel_delta", InstrRel);
  Report.metric("checksums_identical", ChecksumOk ? 1 : 0);
  Report.pass(AllOk && StallOk && SteadyOk && ChecksumOk);
  Report.write();
  return (AllOk && StallOk && SteadyOk && ChecksumOk) ? 0 : 1;
}
