//===-- bench/harness.cpp - Benchmark execution harness ---------------------===//

#include "harness.h"

#include "driver/vm.h"

#include <algorithm>
#include "support/stopwatch.h"

#include <cstdio>

using namespace mself;
using namespace mself::bench;

SelfRunResult mself::bench::runSelf(const BenchmarkDef &B, const Policy &P) {
  SelfRunResult R;
  VirtualMachine VM(P);

  std::string Src = B.Source;
  // The trailing `[ ^ r ] value` makes the wrapper non-inlinable (methods
  // with ^-bearing blocks never inline), so the trivial top-level
  // expression compiled per timed eval() does not re-inline the whole
  // benchmark into itself.
  Src += "\nbenchHarnessRun: n = ( | r | n timesRepeat: [ r: (" + B.RunExpr +
         ") ]. [ ^ r ] value )\n";
  std::string Err;
  if (!VM.load(Src, Err)) {
    R.Error = "load: " + Err;
    return R;
  }

  // Warm-up: triggers on-the-fly compilation and validates the result.
  int64_t Out = 0;
  if (!VM.evalInt("benchHarnessRun: 1", Out, Err)) {
    R.Error = "run: " + Err;
    return R;
  }
  int64_t Expected = B.Native();
  if (Out != Expected) {
    R.Error = "checksum mismatch: mini-SELF " + std::to_string(Out) +
              " vs native " + std::to_string(Expected);
    return R;
  }
  R.Checksum = Out;

  // Machine-independent work: bytecode instructions for one run.
  VM.interp().resetCounters();
  if (!VM.evalInt("benchHarnessRun: 1", Out, Err)) {
    R.Error = "count run: " + Err;
    return R;
  }
  R.Instructions = VM.interp().counters().Instructions;

  // Timed samples (best of three, to shed scheduler noise). Residual lazy
  // compilation inside a sample (rare) is subtracted out via the
  // compiler's own CPU accounting.
  double Best = 1e18;
  for (int Sample = 0; Sample < 3; ++Sample) {
    double CompileBefore = VM.code().totalCompileSeconds();
    Stopwatch Timer;
    if (!VM.evalInt("benchHarnessRun: " + std::to_string(B.TimedRuns), Out,
                    Err)) {
      R.Error = "timed run: " + Err;
      return R;
    }
    double Wall = Timer.elapsedSeconds();
    double CompileDuring = VM.code().totalCompileSeconds() - CompileBefore;
    Best = std::min(Best, std::max(1e-9, (Wall - CompileDuring) /
                                             B.TimedRuns));
  }
  R.ExecSeconds = Best;
  R.CompileSeconds = VM.code().totalCompileSeconds();
  R.CodeBytes = VM.code().totalCodeBytes();
  R.Ok = Out == Expected;
  if (!R.Ok)
    R.Error = "checksum drift across repeated runs";
  return R;
}

double mself::bench::runNative(const BenchmarkDef &B, int64_t &ChecksumOut) {
  ChecksumOut = B.Native();
  // Repeat until the sample is long enough to time reliably.
  int Reps = 1;
  for (;;) {
    Stopwatch Timer;
    int64_t Sink = 0;
    for (int I = 0; I < Reps; ++I)
      Sink += B.Native();
    double T = Timer.elapsedSeconds();
    // Keep the optimizer from discarding the loop.
    if (Sink == 42)
      fprintf(stderr, "impossible\n");
    if (T >= 0.02 || Reps >= (1 << 20))
      return T / Reps;
    Reps *= 4;
  }
}

namespace {

/// JSON string escaping for the report keys/values (quotes, backslashes,
/// and control characters; keys here are ASCII by construction).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

bool JsonReport::write() const {
  std::string Path = "BENCH_" + Table + ".json";
  FILE *F = fopen(Path.c_str(), "w");
  if (!F) {
    fprintf(stderr, "JsonReport: cannot write %s\n", Path.c_str());
    return false;
  }
  fprintf(F, "{\n  \"table\": \"%s\",\n  \"pass\": %s,\n",
          jsonEscape(Table).c_str(), Pass ? "true" : "false");
  fprintf(F, "  \"metrics\": {");
  for (size_t I = 0; I < Metrics.size(); ++I)
    fprintf(F, "%s\n    \"%s\": %.6g", I ? "," : "",
            jsonEscape(Metrics[I].first).c_str(), Metrics[I].second);
  fprintf(F, "\n  },\n  \"notes\": {");
  for (size_t I = 0; I < Notes.size(); ++I)
    fprintf(F, "%s\n    \"%s\": \"%s\"", I ? "," : "",
            jsonEscape(Notes[I].first).c_str(),
            jsonEscape(Notes[I].second).c_str());
  fprintf(F, "\n  },\n  \"skipped_gates\": [");
  for (size_t I = 0; I < SkippedGates.size(); ++I)
    fprintf(F, "%s\n    { \"gate\": \"%s\", \"reason\": \"%s\" }",
            I ? "," : "", jsonEscape(SkippedGates[I].first).c_str(),
            jsonEscape(SkippedGates[I].second).c_str());
  fprintf(F, "\n  ]\n}\n");
  fclose(F);
  return true;
}

std::string mself::bench::pct(double Fraction) {
  char Buf[32];
  double P = Fraction * 100;
  if (P >= 9.5)
    snprintf(Buf, sizeof(Buf), "%.0f%%", P);
  else if (P >= 0.95)
    snprintf(Buf, sizeof(Buf), "%.1f%%", P);
  else
    snprintf(Buf, sizeof(Buf), "%.2f%%", P);
  return Buf;
}

std::string mself::bench::fixed(double V, int Prec) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "%.*f", Prec, V);
  return Buf;
}
