//===-- bench/workload_inputs.h - Shared workload input texts ---*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The input documents the workload suites parse. Each document is defined
/// exactly once here and spliced both into the mini-SELF benchmark source
/// (as a string literal) and into the native C++ twin, so the two
/// implementations can never drift apart on their input. Because the texts
/// are embedded in mini-SELF single-quoted literals verbatim, they must not
/// contain single quotes or backslashes, and stay on one line.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_BENCH_WORKLOAD_INPUTS_H
#define MINISELF_BENCH_WORKLOAD_INPUTS_H

namespace mself::bench {

/// JSON document for the json suite: objects, arrays, strings, numbers,
/// true/false/null, empty containers, nesting. ASCII, space-separated.
inline constexpr const char kJsonDoc[] =
    "{\"users\": [{\"id\": 1, \"name\": \"ada\", \"tags\": [\"admin\", "
    "\"dev\"], \"active\": true}, {\"id\": 2, \"name\": \"grace\", \"tags\": "
    "[\"dev\", \"ops\"], \"active\": false}, {\"id\": 3, \"name\": \"alan\", "
    "\"tags\": [], \"active\": true}], \"counts\": [10, 20, 30, 40, 50, 60], "
    "\"meta\": {\"version\": 42, \"nothing\": null, \"deep\": {\"a\": [1, 2, "
    "{\"b\": 3}], \"empty\": {}}}}";

/// S-expression for the sexpr suite: nested arithmetic over the operator
/// symbols + * - min max (monus semantics for -: clamped at zero).
inline constexpr const char kSexprDoc[] =
    "(+ (* 2 3 4) (max 7 (min 42 19) 9) (- 100 (+ 29 29)) "
    "(* (+ 1 2 3) (max 4 5) 2) (min (* 9 9) (+ 40 41)) (- 3 10))";

/// Token stream for the lexer suite: keywords, identifiers, numbers,
/// operators, and the two-character := assignment.
inline constexpr const char kLexerDoc[] =
    "while xx < 10 do xx := xx + 1 ; if yy > 42 then zz := zz * 7 else "
    "ww := ww / 2 end ; total := total + ( alpha * beta42 ) ; "
    "count9 := count9 - 1 end";

/// Statement list for the peg suite's let/out-grammar (spaces allowed,
/// numbers may carry a sign and a one-letter suffix, statements are
/// separated by `;` with no space after it):
///   program := ws stmt+ eof    stmt := letStmt | outStmt
///   letStmt := "let " "mut "? ident "=" expr ";"
///   outStmt := "out " expr ";"
///   expr    := arith (("<"|">") arith)?
///   arith   := term (("+"|"-") term)*
///   term    := primary (("*"|"/") primary)*
///   primary := number | ident | "(" expr ")"
inline constexpr const char kPegDoc[] =
    "let a = 1 + 2*3 ;let mut b9 = ( a + 4 ) * 7u ;out b9 / 3 - 2 ;"
    "let c = -5 + b9 < 40 ;out c * ( b9 - c ) + a / 2 ;let mut dd = 9 ;"
    "out dd > 1 ;";

} // namespace mself::bench

#endif // MINISELF_BENCH_WORKLOAD_INPUTS_H
