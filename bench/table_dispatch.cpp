//===-- bench/table_dispatch.cpp - E10: Dispatch micro-suite ----------------===//
//
// Measures the send fast path in isolation: three degrees of receiver
// polymorphism at a single hot send site (monomorphic, polymorphic with 4
// receiver maps, megamorphic with 16) under four dispatch configurations —
// no caches at all (full lookup per send), single-entry monomorphic caches
// (the pre-PIC system), PICs without the global lookup cache, and the full
// stack (PICs + global cache). Reported per cell: send throughput and the
// fraction of sends served without a full parent-walk lookup.
//
// The headline claims this table must support (EXPERIMENTS.md E10):
//   - the PIC + global-cache stack serves >= 90% of sends from a cache on
//     the polymorphic workload, and
//   - send throughput with caches beats the no-cache baseline.
// The program exits nonzero if either fails.
//
// All runs use the ST-80 compiler policy so sends stay dynamically bound
// and the dispatch path dominates.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "driver/vm.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace mself;
using namespace mself::bench;

namespace {

/// Definitions for \p Kinds receiver shapes (one map each) and a driver
/// cycling them through one `tag` send site.
std::string shapeWorld(int Kinds) {
  std::string S;
  for (int I = 0; I < Kinds; ++I) {
    std::string Id = std::to_string(I);
    S += "s" + Id + " = ( | parent* = lobby. tag = ( " + std::to_string(I + 1) +
         " ) | ). ";
  }
  S += "mkShapes = ( | v | v: (vectorOfSize: " + std::to_string(Kinds) + "). ";
  for (int I = 0; I < Kinds; ++I)
    S += "v at: " + std::to_string(I) + " Put: s" + std::to_string(I) + ". ";
  S += "v ). "
       "drive: n Kinds: k = ( | v. t <- 0 | v: mkShapes. "
       "1 to: n Do: [ :i | t: t + (v at: i % k) tag ]. t )";
  return S;
}

int64_t expectedSum(int64_t N, int64_t K) {
  int64_t T = 0;
  for (int64_t I = 1; I <= N; ++I)
    T += (I % K) + 1;
  return T;
}

struct Workload {
  const char *Name;
  int Kinds;
};

struct DispatchConfig {
  const char *Name;
  bool InlineCaches;
  bool Polymorphic;
  bool GlobalCache;
};

struct Cell {
  bool Ok = false;
  double SendsPerSec = 0;
  double PicHitRate = 0;
  double CombinedHitRate = 0;
};

constexpr int64_t kIterations = 200000;

Cell runCell(const Workload &W, const DispatchConfig &C) {
  Policy P = Policy::st80();
  P.InlineCaches = C.InlineCaches;
  P.PolymorphicInlineCaches = C.Polymorphic;
  P.PicArity = 8;
  P.UseGlobalLookupCache = C.GlobalCache;

  Cell Out;
  VirtualMachine VM(P);
  std::string Err;
  if (!VM.load(shapeWorld(W.Kinds), Err)) {
    fprintf(stderr, "FAIL %s/%s load: %s\n", W.Name, C.Name, Err.c_str());
    return Out;
  }
  std::string Expr = "drive: " + std::to_string(kIterations) +
                     " Kinds: " + std::to_string(W.Kinds);
  // Warm-up: triggers lazy compilation and fills the caches.
  int64_t V = 0;
  if (!VM.evalInt("drive: 100 Kinds: " + std::to_string(W.Kinds), V, Err)) {
    fprintf(stderr, "FAIL %s/%s warmup: %s\n", W.Name, C.Name, Err.c_str());
    return Out;
  }

  VM.interp().resetCounters();
  auto T0 = std::chrono::steady_clock::now();
  if (!VM.evalInt(Expr, V, Err)) {
    fprintf(stderr, "FAIL %s/%s: %s\n", W.Name, C.Name, Err.c_str());
    return Out;
  }
  auto T1 = std::chrono::steady_clock::now();
  if (V != expectedSum(kIterations, W.Kinds)) {
    fprintf(stderr, "FAIL %s/%s: checksum %lld != %lld\n", W.Name, C.Name,
            (long long)V, (long long)expectedSum(kIterations, W.Kinds));
    return Out;
  }

  DispatchStats S = VM.telemetry().Dispatch;
  double Secs = std::chrono::duration<double>(T1 - T0).count();
  Out.Ok = true;
  Out.SendsPerSec = Secs > 0 ? double(S.Sends) / Secs : 0;
  Out.PicHitRate = S.picHitRate();
  Out.CombinedHitRate = S.combinedHitRate();
  return Out;
}

} // namespace

int main() {
  const Workload Workloads[] = {
      {"monomorphic", 1}, {"polymorphic-4", 4}, {"megamorphic-16", 16}};
  const DispatchConfig Configs[] = {
      {"no caches", false, false, false},
      {"mono IC", true, false, false},
      {"PIC-8", true, true, false},
      {"PIC-8 + GLC", true, true, true},
  };

  printf("E10: Dispatch micro-suite — one hot send site, ST-80 policy\n");
  printf("     cell: Msends/s  (PIC hit rate / PIC+GLC combined hit rate)\n\n");
  printf("%-13s", "");
  for (const Workload &W : Workloads)
    printf(" %-24s", W.Name);
  printf("\n");

  JsonReport Report("dispatch");
  bool AllOk = true;
  Cell Table[4][3];
  for (int CI = 0; CI < 4; ++CI) {
    printf("%-13s", Configs[CI].Name);
    for (int WI = 0; WI < 3; ++WI) {
      Cell &X = Table[CI][WI];
      X = runCell(Workloads[WI], Configs[CI]);
      if (!X.Ok) {
        AllOk = false;
        printf(" %-24s", "-");
        continue;
      }
      std::string S = fixed(X.SendsPerSec / 1e6, 2) + " (" +
                      pct(X.PicHitRate) + "/" + pct(X.CombinedHitRate) + ")";
      printf(" %-24s", S.c_str());
      std::string Key =
          std::string(Workloads[WI].Name) + "/" + Configs[CI].Name;
      Report.metric(Key + "/msends_per_sec", X.SendsPerSec / 1e6);
      Report.metric(Key + "/combined_hit_rate", X.CombinedHitRate);
    }
    printf("\n");
  }

  // Headline checks for EXPERIMENTS.md E10.
  const Cell &PolyFull = Table[3][1];
  const Cell &PolyNone = Table[0][1];
  bool HitRateOk = PolyFull.Ok && PolyFull.CombinedHitRate >= 0.90;
  bool SpeedupOk = PolyFull.Ok && PolyNone.Ok &&
                   PolyFull.SendsPerSec > PolyNone.SendsPerSec;
  printf("\npolymorphic-4 combined hit rate with PIC-8 + GLC: %s (>= 90%% "
         "required): %s\n",
         pct(PolyFull.CombinedHitRate).c_str(), HitRateOk ? "ok" : "FAIL");
  printf("polymorphic-4 send throughput vs no caches: %sx: %s\n",
         fixed(PolyNone.SendsPerSec > 0
                   ? PolyFull.SendsPerSec / PolyNone.SendsPerSec
                   : 0,
               2)
             .c_str(),
         SpeedupOk ? "ok" : "FAIL");

  Report.metric("poly4_combined_hit_rate_full", PolyFull.CombinedHitRate);
  Report.metric("poly4_speedup_vs_nocache",
                PolyNone.SendsPerSec > 0
                    ? PolyFull.SendsPerSec / PolyNone.SendsPerSec
                    : 0);
  Report.pass(AllOk && HitRateOk && SpeedupOk);
  Report.write();
  return (AllOk && HitRateOk && SpeedupOk) ? 0 : 1;
}
