//===-- bench/suites.h - The benchmark registry -----------------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's benchmark suites (§6): the Stanford integer benchmarks,
/// their object-oriented rewrites, the "small" micro-benchmarks, and the
/// richards operating-system simulation — each as mini-SELF source plus a
/// native C++ implementation of the same algorithm (the "optimized C"
/// baseline). Each entry's mini-SELF result is validated against the native
/// result, so the two implementations keep each other honest.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_BENCH_SUITES_H
#define MINISELF_BENCH_SUITES_H

#include <cstdint>
#include <string>
#include <vector>

namespace mself::bench {

struct BenchmarkDef {
  std::string Name;           ///< e.g. "perm" / "perm-oo"
  std::string Group;          ///< "stanford", "stanford-oo", "small",
                              ///< "richards"
  std::string Source;         ///< mini-SELF definitions.
  std::string RunExpr;        ///< Expression producing the checksum.
  int64_t (*Native)();        ///< Same algorithm in C++ ("optimized C").
  int TimedRuns;              ///< Inner repetitions for one timed sample.
};

/// All benchmarks in table order.
const std::vector<BenchmarkDef> &allBenchmarks();

/// \returns benchmarks of one group.
std::vector<const BenchmarkDef *> benchmarksInGroup(const std::string &G);

} // namespace mself::bench

#endif // MINISELF_BENCH_SUITES_H
