//===-- bench/closures.h - Closure-heavy benchmark suites -------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registration hook for the closure-heavy suites: block-bound iteration
/// kernels built so that block and environment allocation dominates the
/// profile — an inject:into:-style fold whose fold block survives inlining
/// (the callee declines via a non-local-return guard), nested do: loops
/// whose capturing scopes the optimizer can scalar-replace entirely, and a
/// combinator pipeline mixing deliberately-escaping stage blocks (stored
/// into a vector) with per-iteration adapter blocks that stay local. These
/// are the dedicated workloads for the escape-analysis gate (E17): with
/// arena allocation on, their per-iteration GC-visible allocation should
/// collapse. Each suite has a native C++ twin (bench/native_workloads.cpp)
/// whose checksum the mini-SELF program must reproduce under every policy
/// configuration.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_BENCH_CLOSURES_H
#define MINISELF_BENCH_CLOSURES_H

#include "suites.h"

namespace mself::bench {

/// Appends the closure suites to \p All. Group: "closures"
/// (inject, nestdo, pipeline).
void appendClosureBenchmarks(std::vector<BenchmarkDef> &All);

/// Group name of the closure suites.
inline const char *const kClosureGroup = "closures";

} // namespace mself::bench

#endif // MINISELF_BENCH_CLOSURES_H
