//===-- bench/table_tiering.cpp - E11: Two-tier adaptive execution ---------===//
//
// Measures what the baseline tier buys at startup and what it costs at
// steady state. Startup phase: load a program of two dozen methods and call
// each once — the cost that matters is CPU seconds spent in the compiler.
// Steady-state phase: one hot loop method, warmed until the tiered configs
// have promoted it, then a long timed run measured both in wall time and in
// executed bytecode instructions (the machine-independent work measure the
// gates use, so the result does not depend on machine load).
//
// The headline claims this table must support (EXPERIMENTS.md E11):
//   - tiered execution (threshold 50) spends <= half the startup compile
//     seconds of full-opt-first-call, and
//   - its steady-state instruction count is within 5% of full-opt.
// The program exits nonzero if either fails.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "driver/vm.h"

#include <chrono>
#include <cstdio>
#include <limits>
#include <string>

using namespace mself;
using namespace mself::bench;

namespace {

constexpr int kStartupMethods = 24;
constexpr int64_t kStartupArg = 3;
constexpr int64_t kSteadyIters = 200000;

/// kStartupMethods similar-but-distinct methods plus a driver calling each
/// exactly once: a pure compile-load, the paper's "interactive use" shape.
std::string startupWorld() {
  std::string S;
  for (int I = 0; I < kStartupMethods; ++I) {
    std::string Id = std::to_string(I);
    S += "m" + Id + ": x = ( | t <- " + Id + " | 1 to: 6 Do: [ :i | "
         "(x + i) % 2 == 0 ifTrue: [ t: t + (x * i) ] False: [ t: t - i ] ]. "
         "t ). ";
  }
  S += "callAll: x = ( | t <- 0 | ";
  for (int I = 0; I < kStartupMethods; ++I)
    S += "t: t + (m" + std::to_string(I) + ": x). ";
  S += "t )";
  return S;
}

int64_t startupExpected() {
  int64_t Total = 0;
  for (int64_t M = 0; M < kStartupMethods; ++M) {
    int64_t T = M;
    for (int64_t I = 1; I <= 6; ++I)
      T += (kStartupArg + I) % 2 == 0 ? kStartupArg * I : -I;
    Total += T;
  }
  return Total;
}

const char *steadyWorld() {
  return "hot: n = ( | t <- 0. i <- 0 | [ i < n ] whileTrue: "
         "[ i: i + 1. t: t + ((i * 3) % 7) + (i % 5) ]. t )";
}

int64_t steadyExpected(int64_t N) {
  int64_t T = 0;
  for (int64_t I = 1; I <= N; ++I)
    T += (I * 3) % 7 + I % 5;
  return T;
}

struct TierConfig {
  const char *Name;
  bool Tiered;
  int Threshold;
};

struct Row {
  bool Ok = false;
  double StartupCompileSec = 0; ///< CPU s in the compiler during startup.
  double StartupWallSec = 0;
  double SteadyWallSec = 0;
  uint64_t SteadyInstructions = 0;
  TierStats Stats; ///< Snapshot after both phases.
};

const char *kindName(CompileEvent::Kind K) {
  switch (K) {
  case CompileEvent::Kind::Compile:
    return "compile";
  case CompileEvent::Kind::Promote:
    return "promote";
  case CompileEvent::Kind::Swap:
    return "swap";
  case CompileEvent::Kind::Invalidate:
    return "invalidate";
  }
  return "?";
}

Row runConfig(const TierConfig &C, bool PrintEvents) {
  Policy P = Policy::newSelf();
  P.TieredCompilation = C.Tiered;
  P.TierUpThreshold = C.Threshold;

  Row Out;
  VirtualMachine VM(P);
  std::string Err;
  if (!VM.load(startupWorld() + ". " + steadyWorld(), Err)) {
    fprintf(stderr, "FAIL %s load: %s\n", C.Name, Err.c_str());
    return Out;
  }

  // Startup: every method compiled and run once.
  int64_t V = 0;
  auto S0 = std::chrono::steady_clock::now();
  if (!VM.evalInt("callAll: " + std::to_string(kStartupArg), V, Err)) {
    fprintf(stderr, "FAIL %s startup: %s\n", C.Name, Err.c_str());
    return Out;
  }
  auto S1 = std::chrono::steady_clock::now();
  if (V != startupExpected()) {
    fprintf(stderr, "FAIL %s startup checksum %lld != %lld\n", C.Name,
            (long long)V, (long long)startupExpected());
    return Out;
  }
  Out.StartupWallSec = std::chrono::duration<double>(S1 - S0).count();
  Out.StartupCompileSec = VM.code().totalCompileSeconds();

  // Steady state: warm until the tiered configs have promoted the hot
  // method (the 1000-iteration warm-up crosses every finite threshold at
  // the loop back-edge), then one long measured run.
  for (int I = 0; I < 3; ++I) {
    if (!VM.evalInt("hot: 1000", V, Err) || V != steadyExpected(1000)) {
      fprintf(stderr, "FAIL %s warmup: %s\n", C.Name, Err.c_str());
      return Out;
    }
  }
  VM.interp().resetCounters();
  auto T0 = std::chrono::steady_clock::now();
  if (!VM.evalInt("hot: " + std::to_string(kSteadyIters), V, Err)) {
    fprintf(stderr, "FAIL %s steady: %s\n", C.Name, Err.c_str());
    return Out;
  }
  auto T1 = std::chrono::steady_clock::now();
  if (V != steadyExpected(kSteadyIters)) {
    fprintf(stderr, "FAIL %s steady checksum %lld != %lld\n", C.Name,
            (long long)V, (long long)steadyExpected(kSteadyIters));
    return Out;
  }
  Out.SteadyWallSec = std::chrono::duration<double>(T1 - T0).count();
  Out.SteadyInstructions = VM.interp().counters().Instructions;
  Out.Stats = VM.telemetry().Tier;
  Out.Ok = true;

  if (PrintEvents) {
    VmTelemetry Telem = VM.telemetry();
    const std::vector<CompileEvent> &Events = Telem.Events;
    size_t From = Events.size() > 6 ? Events.size() - 6 : 0;
    printf("\nlast compilation events (%s, %llu total):\n", C.Name,
           (unsigned long long)Telem.EventsRecorded);
    for (size_t I = From; I < Events.size(); ++I) {
      const CompileEvent &E = Events[I];
      printf("  #%-4llu %-10s %-9s %-12s hot=%-4u %.3f ms\n",
             (unsigned long long)E.Seq, kindName(E.EventKind),
             E.Tier == CompiledFunction::Tier::Baseline ? "baseline"
                                                        : "optimized",
             E.Name ? E.Name->c_str() : "<top-level>", E.HotCount,
             E.Seconds * 1e3);
    }
  }
  return Out;
}

} // namespace

int main() {
  const TierConfig Configs[] = {
      {"full-opt", false, 0},
      {"tier-1", true, 1},
      {"tier-50", true, 50},
      {"tier-1000", true, 1000},
      {"baseline-only", true, std::numeric_limits<int>::max()},
  };
  constexpr int kNumConfigs = sizeof(Configs) / sizeof(Configs[0]);

  printf("E11: Two-tier adaptive execution — %d-method startup + hot loop\n",
         kStartupMethods);
  printf("%-14s %12s %12s %12s %12s %6s %6s\n", "config", "compile ms",
         "startup ms", "steady ms", "Minstr", "promo", "inval");

  JsonReport Report("tiering");
  bool AllOk = true;
  Row Rows[kNumConfigs];
  for (int I = 0; I < kNumConfigs; ++I) {
    Rows[I] = runConfig(Configs[I], /*PrintEvents=*/false);
    if (!Rows[I].Ok) {
      AllOk = false;
      printf("%-14s %12s\n", Configs[I].Name, "-");
      continue;
    }
    const Row &R = Rows[I];
    printf("%-14s %12s %12s %12s %12s %6llu %6llu\n", Configs[I].Name,
           fixed(R.StartupCompileSec * 1e3, 3).c_str(),
           fixed(R.StartupWallSec * 1e3, 3).c_str(),
           fixed(R.SteadyWallSec * 1e3, 3).c_str(),
           fixed(double(R.SteadyInstructions) / 1e6, 2).c_str(),
           (unsigned long long)R.Stats.Promotions,
           (unsigned long long)R.Stats.Invalidations);
    std::string Key = Configs[I].Name;
    Report.metric(Key + "/startup_compile_ms", R.StartupCompileSec * 1e3);
    Report.metric(Key + "/steady_ms", R.SteadyWallSec * 1e3);
    Report.metric(Key + "/steady_minstr",
                  double(R.SteadyInstructions) / 1e6);
    Report.metric(Key + "/promotions", double(R.Stats.Promotions));
  }

  // Event-log sample from the representative tiered config.
  Row Sample = runConfig(Configs[2], /*PrintEvents=*/true);
  (void)Sample;

  const Row &Full = Rows[0], &T50 = Rows[2];
  bool StartupOk = AllOk && Full.StartupCompileSec >= 2.0 * T50.StartupCompileSec;
  double InstrDelta =
      AllOk && Full.SteadyInstructions
          ? double(T50.SteadyInstructions) - double(Full.SteadyInstructions)
          : 0;
  double InstrRel = AllOk && Full.SteadyInstructions
                        ? (InstrDelta < 0 ? -InstrDelta : InstrDelta) /
                              double(Full.SteadyInstructions)
                        : 1.0;
  bool SteadyOk = AllOk && InstrRel <= 0.05;

  printf("\nstartup compile seconds, full-opt vs tier-50: %sx (>= 2x "
         "required): %s\n",
         fixed(T50.StartupCompileSec > 0
                   ? Full.StartupCompileSec / T50.StartupCompileSec
                   : 0,
               2)
             .c_str(),
         StartupOk ? "ok" : "FAIL");
  printf("steady-state instructions, tier-50 vs full-opt: %s apart (<= 5%% "
         "required): %s\n",
         pct(InstrRel).c_str(), SteadyOk ? "ok" : "FAIL");

  Report.metric("startup_compile_ratio_full_vs_tier50",
                T50.StartupCompileSec > 0
                    ? Full.StartupCompileSec / T50.StartupCompileSec
                    : 0);
  Report.metric("steady_instr_rel_delta", InstrRel);
  Report.pass(AllOk && StartupOk && SteadyOk);
  Report.write();
  return (AllOk && StartupOk && SteadyOk) ? 0 : 1;
}
