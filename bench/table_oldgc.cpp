//===-- bench/table_oldgc.cpp - E18: Incremental old-space marking --------===//
//
// The pause-budget experiment: the same NEW-SELF generational policy run
// with the two old-space collection strategies —
//   stop-the-world   the PR-up-to-8 behaviour: when old-space growth
//                    crosses the threshold, one full mark-sweep pause
//                    re-marks the entire retained graph
//   incremental      tri-color SATB marking sliced into budget-bounded
//                    increments at safepoints (Policy::GcMaxPauseMicros),
//                    with chunked lazy sweeping
// Each VM first builds the E13 retained binary tree of ~65k nodes
// (rgrow: 15) — the long-lived graph whose re-mark cost is exactly what
// the stop-the-world pause is made of — then runs store-churn kernels
// that keep tenuring fresh objects into retained structures, growing the
// old space so both configurations must collect it repeatedly while the
// mutator runs.
//
// Gates (EXPERIMENTS.md E18; the program exits nonzero when one fails):
//   - identical checksums between the two configurations on every kernel,
//   - the incremental rows complete >= 1 full mark cycle (the comparison
//     is meaningless if marking never ran),
//   - worst single pause under incremental marking <= 2 ms on the
//     retained-tree workload,
//   - incremental throughput >= 0.9x stop-the-world (geomean across
//     kernels): bounded pauses must not cost more than 10% of the bar.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "driver/vm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

using namespace mself;
using namespace mself::bench;

namespace {

constexpr int64_t kIterations = 120000;

/// The E13 retained graph: a ~65k-node binary tree built once per VM
/// before timing. Under incremental marking every cycle must re-mark it
/// — in slices — while stop-the-world re-marks it in one pause.
const char *kPrelude =
    "rnode = ( | parent* = lobby. l. r. v <- 0 | ). "
    "rgrow: d = ( | o | o: rnode clone. o v: d. "
    "d > 0 ifTrue: [ o l: (rgrow: d - 1). o r: (rgrow: d - 1) ] "
    "False: [ ]. o ). "
    "retained <- nil. "
    "buildRetained = ( retained: (rgrow: 15). 0 )";

/// A store-churn kernel: lobby definitions plus a native model for the
/// checksum. Each keeps replacing references held by tenured structures
/// with fresh young objects, so the old space grows (promotions) and the
/// deletion barrier fires while marking is active.
struct Kernel {
  const char *Name;
  const char *Defs;
  const char *Selector;
  int64_t (*Native)(int64_t N);
};

const Kernel kKernels[] = {
    // A 256-slot tenured ring of survivors: each iteration's clone stays
    // live for 256 more, so promoted objects keep dying in old space —
    // the churn an old-space collector exists to reclaim.
    {"ringchurn",
     "wproto = ( | parent* = lobby. v <- 0 | ). "
     "ring: n = ( | r. o. t <- 0 | r: (vectorOfSize: 256). "
     "1 to: n Do: [ :i | o: wproto clone. o v: i. "
     "r at: i % 256 Put: o. t: t + (r at: i % 256) v ]. t )",
     "ring:", [](int64_t N) { return N * (N + 1) / 2; }},
    // Rewrites interior edges of the retained tree's fringe: allocates a
    // fresh subtree and stores it over an old one — old-to-old pointer
    // deletions, the exact edge class the SATB barrier must log.
    {"treeswap",
     "sgrow: d = ( | o | o: rnode clone. o v: d. "
     "d > 0 ifTrue: [ o l: (sgrow: d - 1). o r: (sgrow: d - 1) ] "
     "False: [ ]. o ). "
     "swap: n = ( | t <- 0 | 1 to: n Do: [ :i | "
     "retained l l: (sgrow: 3). t: t + retained l l v ]. t )",
     "swap:", [](int64_t N) { return 3 * N; }},
    // Boxed-value overwrite: a tenured vector of one-slot boxes, each
    // iteration replacing one box wholesale — store-heavy churn into
    // tenured objects with no retained growth at all.
    {"boxchurn",
     "box: n = ( | v. t <- 0 | v: (vectorOfSize: 64). "
     "0 upTo: 64 Do: [ :i | v at: i Put: (vectorOfSize: 1) ]. "
     "1 to: n Do: [ :i | v at: i % 64 Put: (vectorOfSize: 1). "
     "(v at: i % 64) at: 0 Put: i. t: t + ((v at: i % 64) at: 0) ]. t )",
     "box:", [](int64_t N) { return N * (N + 1) / 2; }},
};
constexpr int kNumKernels = int(sizeof(kKernels) / sizeof(kKernels[0]));

struct ModeConfig {
  const char *Name;
  bool Incremental;
};
const ModeConfig kModes[] = {
    {"stop-the-world", false},
    {"incremental", true},
};
constexpr int kNumModes = int(sizeof(kModes) / sizeof(kModes[0]));

struct Cell {
  bool Ok = false;
  double ItersPerSec = 0;
  int64_t Checksum = 0;
  GcStats Gc;
};

Cell runCell(const Kernel &K, const ModeConfig &M) {
  Cell Out;
  std::string Expr =
      std::string(K.Selector) + " " + std::to_string(kIterations);
  // Best of three samples, each in a fresh VM so collector statistics
  // describe exactly one timed run (plus its warm-up).
  double BestSecs = 1e18;
  for (int Sample = 0; Sample < 3; ++Sample) {
    Policy P = Policy::newSelf();
    P.GenerationalGc = true;
    P.GcThresholdKiB = 2048;
    P.GcIncrementalMark = M.Incremental;
    P.GcMaxPauseMicros = 500; // Half the 2 ms gate: slack for slow CI.
    VirtualMachine VM(P);
    std::string Err;
    int64_t V = 0;
    if (!VM.load(std::string(kPrelude) + ". " + K.Defs, Err)) {
      fprintf(stderr, "FAIL %s/%s load: %s\n", K.Name, M.Name, Err.c_str());
      return Out;
    }
    if (!VM.evalInt("buildRetained", V, Err) || V != 0) {
      fprintf(stderr, "FAIL %s/%s setup: %s\n", K.Name, M.Name, Err.c_str());
      return Out;
    }
    if (!VM.evalInt(std::string(K.Selector) + " 100", V, Err) ||
        V != K.Native(100)) {
      fprintf(stderr, "FAIL %s/%s warmup: %s (got %lld)\n", K.Name, M.Name,
              Err.c_str(), (long long)V);
      return Out;
    }
    auto T0 = std::chrono::steady_clock::now();
    if (!VM.evalInt(Expr, V, Err)) {
      fprintf(stderr, "FAIL %s/%s: %s\n", K.Name, M.Name, Err.c_str());
      return Out;
    }
    auto T1 = std::chrono::steady_clock::now();
    if (V != K.Native(kIterations)) {
      fprintf(stderr, "FAIL %s/%s: checksum %lld != %lld\n", K.Name, M.Name,
              (long long)V, (long long)K.Native(kIterations));
      return Out;
    }
    double Secs = std::chrono::duration<double>(T1 - T0).count();
    if (Secs < BestSecs) {
      BestSecs = Secs;
      Out.Gc = VM.telemetry().Gc;
      Out.Checksum = V;
    }
  }
  Out.Ok = true;
  Out.ItersPerSec = BestSecs > 0 ? double(kIterations) / BestSecs : 0;
  return Out;
}

} // namespace

int main() {
  printf("E18: Old-space marking under a pause budget — retained ~65k-node "
         "tree + store churn, NEW-SELF policy\n");
  printf("     cell: Miters/s  [max pause ms, mark cycles/full "
         "collections]\n\n");
  printf("%-15s", "");
  for (const Kernel &K : kKernels)
    printf(" %-26s", K.Name);
  printf("\n");

  JsonReport Report("table_oldgc");
  bool AllOk = true;
  Cell Table[kNumModes][kNumKernels];
  for (int MI = 0; MI < kNumModes; ++MI) {
    printf("%-15s", kModes[MI].Name);
    for (int KI = 0; KI < kNumKernels; ++KI) {
      Cell &X = Table[MI][KI];
      X = runCell(kKernels[KI], kModes[MI]);
      if (!X.Ok) {
        AllOk = false;
        printf(" %-26s", "-");
        continue;
      }
      uint64_t Cycles =
          kModes[MI].Incremental ? X.Gc.MarkCycles : X.Gc.FullCollections;
      std::string CellStr =
          fixed(X.ItersPerSec / 1e6, 2) + " [" +
          fixed(X.Gc.maxPauseSeconds() * 1e3, 2) + "ms, " +
          std::to_string((unsigned long long)Cycles) + "cy]";
      printf(" %-26s", CellStr.c_str());

      std::string Base =
          std::string(kKernels[KI].Name) + "/" + kModes[MI].Name;
      Report.metric(Base + "/miters_per_sec", X.ItersPerSec / 1e6);
      Report.metric(Base + "/scavenges", double(X.Gc.Scavenges));
      Report.metric(Base + "/full_collections",
                    double(X.Gc.FullCollections));
      Report.metric(Base + "/mark_cycles", double(X.Gc.MarkCycles));
      Report.metric(Base + "/mark_increments",
                    double(X.Gc.MarkIncrements));
      Report.metric(Base + "/sweep_increments",
                    double(X.Gc.SweepIncrements));
      Report.metric(Base + "/satb_marks", double(X.Gc.SatbMarks));
      PauseHistogram Pauses = X.Gc.ScavengePauses;
      Pauses.merge(X.Gc.FullPauses);
      Report.metric(Base + "/p50_pause_ms",
                    Pauses.percentileSeconds(0.50) * 1e3);
      Report.metric(Base + "/p95_pause_ms",
                    Pauses.percentileSeconds(0.95) * 1e3);
      Report.metric(Base + "/p99_pause_ms",
                    Pauses.percentileSeconds(0.99) * 1e3);
      Report.metric(Base + "/max_pause_ms", X.Gc.maxPauseSeconds() * 1e3);
      Report.metric(Base + "/total_pause_ms",
                    X.Gc.totalPauseSeconds() * 1e3);
    }
    printf("\n");
  }

  // Gate 1: identical checksums between the modes on every kernel.
  bool ChecksumOk = AllOk;
  for (int KI = 0; KI < kNumKernels; ++KI)
    if (Table[0][KI].Ok && Table[1][KI].Ok &&
        Table[0][KI].Checksum != Table[1][KI].Checksum)
      ChecksumOk = false;

  // Gate 2: incremental marking actually ran — every incremental cell
  // completed at least one full mark-sweep cycle.
  bool CyclesOk = AllOk;
  for (int KI = 0; KI < kNumKernels; ++KI)
    if (Table[1][KI].Ok && Table[1][KI].Gc.MarkCycles < 1)
      CyclesOk = false;

  // Gate 3: worst single pause under incremental marking <= 2 ms.
  double WorstIncMs = 0;
  for (int KI = 0; KI < kNumKernels; ++KI)
    if (Table[1][KI].Ok)
      WorstIncMs =
          std::max(WorstIncMs, Table[1][KI].Gc.maxPauseSeconds() * 1e3);
  bool PauseOk = AllOk && WorstIncMs <= 2.0;

  // Gate 4: throughput — incremental within 10% of stop-the-world
  // (geomean across kernels).
  double LogSum = 0;
  int LogN = 0;
  for (int KI = 0; KI < kNumKernels; ++KI) {
    const Cell &Inc = Table[1][KI];
    const Cell &Stw = Table[0][KI];
    if (Inc.Ok && Stw.Ok && Stw.ItersPerSec > 0) {
      LogSum += std::log(Inc.ItersPerSec / Stw.ItersPerSec);
      ++LogN;
    }
  }
  double Geomean = LogN ? std::exp(LogSum / LogN) : 0;
  bool ThroughputOk = AllOk && Geomean >= 0.9;

  printf("\nchecksums identical across modes: %s\n",
         ChecksumOk ? "ok" : "FAIL");
  printf("incremental mark cycles >= 1 on every kernel: %s\n",
         CyclesOk ? "ok" : "FAIL");
  printf("worst incremental pause %sms (<= 2.00ms required): %s\n",
         fixed(WorstIncMs, 3).c_str(), PauseOk ? "ok" : "FAIL");
  printf("geomean throughput, incremental vs stop-the-world: %sx "
         "(>= 0.90x required): %s\n",
         fixed(Geomean, 2).c_str(), ThroughputOk ? "ok" : "FAIL");

  Report.metric("checksums_identical", ChecksumOk ? 1 : 0);
  Report.metric("worst_incremental_pause_ms", WorstIncMs);
  Report.metric("geomean_throughput_incremental_vs_stw", Geomean);

  bool Pass = AllOk && ChecksumOk && CyclesOk && PauseOk && ThroughputOk;
  Report.pass(Pass);
  Report.write();
  return Pass ? 0 : 1;
}
