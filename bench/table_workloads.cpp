//===-- bench/table_workloads.cpp - E16: Workload scenario pack -----------===//
//
// Runs the workload suites (deltablue, json, sexpr, lexer, peg) under the
// three compiler configurations of the paper's speed table and reports,
// per suite:
//
//   - execution time as a fraction of the native C++ twin (the same
//     "percentage of optimized C" metric as E1),
//   - the megamorphic send share (sends dispatched at a megamorphic site /
//     all sends) — the regime the PEG workload is built to exercise,
//   - allocation volume during the measured run (the parser workloads are
//     allocation-bound: one node per grammar production),
//   - string-interner probes (total and per send) — the symbol-lookup
//     volume a perfect-hash selector table would remove.
//
// Checksums are validated against the native twins on every run; the
// numbers land in BENCH_table_workloads.json.
//
//===----------------------------------------------------------------------===//

#include "harness.h"
#include "workloads.h"

#include "driver/vm.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace mself;
using namespace mself::bench;

namespace {

struct SuiteTelemetry {
  bool Ok = false;
  std::string Error;
  double MegaShare = 0;        ///< SendsMega / Sends, measured run only.
  uint64_t AllocBytes = 0;     ///< Nursery + old bytes, measured run only.
  uint64_t InternerLookups = 0; ///< All probes: load + warm-up + run.
  double InternerPerSend = 0;  ///< InternerLookups / sends since load.
};

/// Loads \p B into a fresh VM under \p P, validates the checksum, and
/// measures one run with the counters reset after load — so the dispatch
/// numbers cover the workload itself, not corelib bootstrap.
SuiteTelemetry measure(const BenchmarkDef &B, const Policy &P) {
  SuiteTelemetry T;
  VirtualMachine VM(P);
  std::string Err;
  if (!VM.load(B.Source, Err)) {
    T.Error = "load: " + Err;
    return T;
  }
  uint64_t LoadLookups = VM.telemetry().Dispatch.InternerLookups;
  VmTelemetry Before = VM.telemetry();
  VM.interp().resetCounters();
  int64_t Got = 0;
  if (!VM.evalInt(B.RunExpr, Got, Err)) {
    T.Error = "run: " + Err;
    return T;
  }
  if (Got != B.Native()) {
    T.Error = "checksum mismatch: got " + std::to_string(Got) + ", want " +
              std::to_string(B.Native());
    return T;
  }
  VmTelemetry After = VM.telemetry();
  const DispatchStats &D = After.Dispatch;
  T.MegaShare = D.Sends ? double(D.SendsMega) / double(D.Sends) : 0;
  T.AllocBytes =
      (After.Gc.BytesAllocatedNursery + After.Gc.BytesAllocatedOld) -
      (Before.Gc.BytesAllocatedNursery + Before.Gc.BytesAllocatedOld);
  T.InternerLookups = D.InternerLookups;
  uint64_t RunLookups = D.InternerLookups - LoadLookups;
  T.InternerPerSend = D.Sends ? double(RunLookups) / double(D.Sends) : 0;
  T.Ok = true;
  return T;
}

} // namespace

int main() {
  Policy Policies[] = {Policy::st80(), Policy::oldSelf(), Policy::newSelf()};
  const char *Labels[] = {"ST-80", "old SELF", "new SELF"};

  std::vector<const BenchmarkDef *> Suites;
  for (const char *G : kWorkloadGroups)
    for (const BenchmarkDef *B : benchmarksInGroup(G))
      Suites.push_back(B);

  printf("E16: Workload scenario pack (as a percentage of optimized C)\n\n");
  printf("%-10s", "");
  for (const BenchmarkDef *B : Suites)
    printf(" %-10s", B->Name.c_str());
  printf("\n");

  JsonReport Report("table_workloads");
  bool AllOk = true;
  double BestMegaShare = 0;

  for (int PI = 0; PI < 3; ++PI) {
    printf("%-10s", Labels[PI]);
    for (const BenchmarkDef *B : Suites) {
      int64_t Chk = 0;
      double Native = runNative(*B, Chk);
      SelfRunResult R = runSelf(*B, Policies[PI]);
      if (!R.Ok) {
        fprintf(stderr, "FAIL %s [%s]: %s\n", B->Name.c_str(), Labels[PI],
                R.Error.c_str());
        AllOk = false;
        printf(" %-10s", "-");
        continue;
      }
      std::string Key =
          std::string(Policies[PI].Name) + "/" + B->Name;
      double Frac = Native / R.ExecSeconds;
      Report.metric(Key + "/frac_of_native", Frac);
      Report.metric(Key + "/exec_seconds", R.ExecSeconds);
      Report.metric(Key + "/instructions", (double)R.Instructions);
      printf(" %-10s", pct(Frac).c_str());
    }
    printf("\n");
  }

  printf("\nPer-suite telemetry (one measured run, counters reset after "
         "load):\n\n");
  printf("%-22s %-10s %12s %12s %10s %12s\n", "", "suite", "mega-share",
         "alloc-KB", "interner", "intern/send");
  for (int PI = 0; PI < 3; ++PI) {
    for (const BenchmarkDef *B : Suites) {
      SuiteTelemetry T = measure(*B, Policies[PI]);
      if (!T.Ok) {
        fprintf(stderr, "FAIL telemetry %s [%s]: %s\n", B->Name.c_str(),
                Labels[PI], T.Error.c_str());
        AllOk = false;
        continue;
      }
      std::string Key =
          std::string(Policies[PI].Name) + "/" + B->Name;
      Report.metric(Key + "/mega_share", T.MegaShare);
      Report.metric(Key + "/alloc_bytes", (double)T.AllocBytes);
      Report.metric(Key + "/interner_lookups", (double)T.InternerLookups);
      Report.metric(Key + "/interner_per_send", T.InternerPerSend);
      if (T.MegaShare > BestMegaShare)
        BestMegaShare = T.MegaShare;
      printf("%-22s %-10s %11.1f%% %12.1f %10llu %12.4f\n", Labels[PI],
             B->Name.c_str(), T.MegaShare * 100, T.AllocBytes / 1024.0,
             (unsigned long long)T.InternerLookups, T.InternerPerSend);
    }
    printf("\n");
  }

  // The pack's headline claim: at least one suite spends >=30% of its
  // sends at megamorphic sites — the regime inline caches cannot serve.
  bool MegaOk = BestMegaShare >= 0.30;
  Report.metric("summary/best_mega_share", BestMegaShare);
  Report.note("summary/mega_gate",
              MegaOk ? "pass (>=30% megamorphic sends in some suite)"
                     : "FAIL (<30% megamorphic sends everywhere)");
  if (!MegaOk) {
    fprintf(stderr,
            "FAIL: no suite reaches a 30%% megamorphic send share "
            "(best %.1f%%)\n",
            BestMegaShare * 100);
    AllOk = false;
  }

  printf("All checksums validated against the native implementations: %s\n",
         AllOk ? "yes" : "NO (see errors above)");
  printf("Best megamorphic send share: %.1f%%\n", BestMegaShare * 100);
  Report.pass(AllOk);
  Report.write();
  return AllOk ? 0 : 1;
}
