//===-- bench/suites.cpp - The benchmark registry ---------------------------===//
//
// The mini-SELF sources of the paper's benchmark suites (§6). The
// "stanford" benchmarks are written procedurally (methods on one benchmark
// object, data manipulated through vectors); the "stanford-oo" rewrites
// redirect the messages to the data structures themselves (wrapper objects
// with at:/swap:/push-style protocols), exactly the restructuring the paper
// describes: "redirect the target of messages from the benchmark object to
// the data structures manipulated by the benchmark". puzzle is not
// rewritten (§6, "in the interest of fairness" it still counts in the -oo
// group in the tables).
//
//===----------------------------------------------------------------------===//

#include "suites.h"

#include "closures.h"
#include "native.h"
#include "richards_source.h"
#include "workloads.h"

namespace mself::bench {

namespace {

const char *kRandomLib = R"SELF(
randomGen = ( | parent* = lobby. seed <- 74755.
  reset = ( seed: 74755. self ).
  next = ( seed: ((seed * 1309) + 13849) % 65536. seed ).
| ).
)SELF";

//===----------------------------------------------------------------------===//
// stanford (procedural style)
//===----------------------------------------------------------------------===//

const char *kPerm = R"SELF(
permBench = ( | parent* = lobby. permArray. permCount <- 0.
  swap: x With: y = ( | t |
    t: (permArray at: x).
    permArray at: x Put: (permArray at: y).
    permArray at: y Put: t.
    self ).
  permute: n = (
    permCount: permCount + 1.
    n != 1 ifTrue: [
      permute: n - 1.
      n - 1 downTo: 1 Do: [ :k |
        swap: n With: k.
        permute: n - 1.
        swap: n With: k ] ].
    self ).
  run = (
    permCount: 0.
    permArray: (vectorOfSize: 11).
    0 to: 10 Do: [ :i | permArray at: i Put: i ].
    1 to: 4 Do: [ :i | permute: 6 ].
    permCount ).
| ).
)SELF";

const char *kPermOO = R"SELF(
permOOVector = ( | parent* = lobby. elems.
  initSize: n = ( elems: (vectorOfSize: n). self ).
  at: i = ( elems at: i ).
  at: i Put: v = ( elems at: i Put: v. self ).
  swap: x With: y = ( | t |
    t: (elems at: x).
    elems at: x Put: (elems at: y).
    elems at: y Put: t.
    self ).
| ).
permOOBench = ( | parent* = lobby. data. permCount <- 0.
  permute: n = (
    permCount: permCount + 1.
    n != 1 ifTrue: [
      permute: n - 1.
      n - 1 downTo: 1 Do: [ :k |
        data swap: n With: k.
        permute: n - 1.
        data swap: n With: k ] ].
    self ).
  run = (
    permCount: 0.
    data: (permOOVector clone initSize: 11).
    0 to: 10 Do: [ :i | data at: i Put: i ].
    1 to: 4 Do: [ :i | permute: 6 ].
    permCount ).
| ).
)SELF";

const char *kTowers = R"SELF(
towersBench = ( | parent* = lobby. stacks. heights. moveCount <- 0.
  push: d On: s = ( | h |
    h: (heights at: s).
    (stacks at: s) at: h Put: d.
    heights at: s Put: h + 1.
    self ).
  popFrom: s = ( | h |
    h: (heights at: s) - 1.
    heights at: s Put: h.
    (stacks at: s) at: h ).
  move: n From: f To: t = (
    n == 1
      ifTrue: [ push: (popFrom: f) On: t. moveCount: moveCount + 1 ]
      False: [
        move: n - 1 From: f To: (3 - f) - t.
        push: (popFrom: f) On: t. moveCount: moveCount + 1.
        move: n - 1 From: (3 - f) - t To: t ].
    self ).
  run = (
    moveCount: 0.
    stacks: (vectorOfSize: 3).
    heights: (vectorOfSize: 3 FillingWith: 0).
    0 to: 2 Do: [ :i | stacks at: i Put: (vectorOfSize: 13) ].
    12 downTo: 1 Do: [ :d | push: d On: 0 ].
    move: 12 From: 0 To: 2.
    moveCount + (heights at: 2) ).
| ).
)SELF";

const char *kTowersOO = R"SELF(
towersOOPeg = ( | parent* = lobby. cells. height <- 0.
  initDepth: n = ( cells: (vectorOfSize: n). height: 0. self ).
  push: d = ( cells at: height Put: d. height: height + 1. self ).
  pop = ( height: height - 1. cells at: height ).
| ).
towersOOBench = ( | parent* = lobby. pegs. moveCount <- 0.
  pegAt: i = ( pegs at: i ).
  move: n From: f To: t = (
    n == 1
      ifTrue: [ (pegAt: t) push: (pegAt: f) pop. moveCount: moveCount + 1 ]
      False: [
        move: n - 1 From: f To: (3 - f) - t.
        (pegAt: t) push: (pegAt: f) pop. moveCount: moveCount + 1.
        move: n - 1 From: (3 - f) - t To: t ].
    self ).
  run = (
    moveCount: 0.
    pegs: (vectorOfSize: 3).
    0 to: 2 Do: [ :i | pegs at: i Put: (towersOOPeg clone initDepth: 13) ].
    12 downTo: 1 Do: [ :d | (pegAt: 0) push: d ].
    move: 12 From: 0 To: 2.
    moveCount + (pegAt: 2) height ).
| ).
)SELF";

const char *kQueens = R"SELF(
queensBench = ( | parent* = lobby. rowsUsed. diag1. diag2. solutions <- 0.
  tryCol: c = (
    c == 8
      ifTrue: [ solutions: solutions + 1 ]
      False: [ 0 to: 7 Do: [ :r |
        (((rowsUsed at: r) == 0) and: [ ((diag1 at: r + c) == 0) and:
            [ (diag2 at: (r - c) + 7) == 0 ] ])
          ifTrue: [
            rowsUsed at: r Put: 1.
            diag1 at: r + c Put: 1.
            diag2 at: (r - c) + 7 Put: 1.
            tryCol: c + 1.
            rowsUsed at: r Put: 0.
            diag1 at: r + c Put: 0.
            diag2 at: (r - c) + 7 Put: 0 ] ] ].
    self ).
  run = (
    solutions: 0.
    rowsUsed: (vectorOfSize: 8 FillingWith: 0).
    diag1: (vectorOfSize: 16 FillingWith: 0).
    diag2: (vectorOfSize: 16 FillingWith: 0).
    tryCol: 0.
    solutions ).
| ).
)SELF";

const char *kQueensOO = R"SELF(
queensOOBoard = ( | parent* = lobby. rowsUsed. diag1. diag2.
  init = (
    rowsUsed: (vectorOfSize: 8 FillingWith: 0).
    diag1: (vectorOfSize: 16 FillingWith: 0).
    diag2: (vectorOfSize: 16 FillingWith: 0).
    self ).
  safeRow: r Col: c = (
    ((rowsUsed at: r) == 0) and: [ ((diag1 at: r + c) == 0) and:
      [ (diag2 at: (r - c) + 7) == 0 ] ] ).
  placeRow: r Col: c = (
    rowsUsed at: r Put: 1.
    diag1 at: r + c Put: 1.
    diag2 at: (r - c) + 7 Put: 1.
    self ).
  removeRow: r Col: c = (
    rowsUsed at: r Put: 0.
    diag1 at: r + c Put: 0.
    diag2 at: (r - c) + 7 Put: 0.
    self ).
| ).
queensOOBench = ( | parent* = lobby. board. solutions <- 0.
  tryCol: c = (
    c == 8
      ifTrue: [ solutions: solutions + 1 ]
      False: [ 0 to: 7 Do: [ :r |
        (board safeRow: r Col: c) ifTrue: [
          board placeRow: r Col: c.
          tryCol: c + 1.
          board removeRow: r Col: c ] ] ].
    self ).
  run = (
    solutions: 0.
    board: queensOOBoard clone init.
    tryCol: 0.
    solutions ).
| ).
)SELF";

const char *kIntmm = R"SELF(
intmmBench = ( | parent* = lobby. n = 20. ma. mb. mr.
  initMat: m Seed: s = ( | v |
    v: s.
    0 upTo: n * n Do: [ :i | m at: i Put: (v % 7) - 3. v: v + 11 ].
    self ).
  run = ( | sum |
    ma: (vectorOfSize: n * n).
    mb: (vectorOfSize: n * n).
    mr: (vectorOfSize: n * n).
    initMat: ma Seed: 1.
    initMat: mb Seed: 5.
    0 upTo: n Do: [ :i |
      0 upTo: n Do: [ | :j. acc <- 0 |
        0 upTo: n Do: [ :k |
          acc: acc + ((ma at: (i * n) + k) * (mb at: (k * n) + j)) ].
        mr at: (i * n) + j Put: acc ] ].
    sum: 0.
    0 upTo: n * n Do: [ :i | sum: sum + (mr at: i) ].
    sum ).
| ).
)SELF";

const char *kIntmmOO = R"SELF(
intmmOOMatrix = ( | parent* = lobby. n <- 0. elems.
  initSize: sz = ( n: sz. elems: (vectorOfSize: sz * sz). self ).
  row: i Col: j = ( elems at: (i * n) + j ).
  row: i Col: j Put: v = ( elems at: (i * n) + j Put: v. self ).
  fillFromSeed: s = ( | v |
    v: s.
    0 upTo: n * n Do: [ :i | elems at: i Put: (v % 7) - 3. v: v + 11 ].
    self ).
  sum = ( | t |
    t: 0.
    0 upTo: n * n Do: [ :i | t: t + (elems at: i) ].
    t ).
| ).
intmmOOBench = ( | parent* = lobby. n = 20.
  run = ( | ma. mb. mr |
    ma: ((intmmOOMatrix clone initSize: n) fillFromSeed: 1).
    mb: ((intmmOOMatrix clone initSize: n) fillFromSeed: 5).
    mr: (intmmOOMatrix clone initSize: n).
    0 upTo: n Do: [ :i |
      0 upTo: n Do: [ | :j. acc <- 0 |
        0 upTo: n Do: [ :k |
          acc: acc + ((ma row: i Col: k) * (mb row: k Col: j)) ].
        mr row: i Col: j Put: acc ] ].
    mr sum ).
| ).
)SELF";

const char *kPuzzle = R"SELF(
puzzleBench = ( | parent* = lobby. d = 5. box. trials <- 0.
  cellI: i J: j K: k = ( ((i * d) + j) * d + k ).
  fitsI: i J: j K: k Size: s = ( | ok |
    ((i + s > d) or: [ (j + s > d) or: [ k + s > d ] ])
      ifTrue: [ false ]
      False: [
        ok: true.
        0 upTo: s Do: [ :a |
          0 upTo: s Do: [ :b |
            0 upTo: s Do: [ :c |
              (box at: (cellI: i + a J: j + b K: k + c)) ifTrue: [
                ok: false ] ] ] ].
        ok ] ).
  placeI: i J: j K: k Size: s Value: v = (
    0 upTo: s Do: [ :a |
      0 upTo: s Do: [ :b |
        0 upTo: s Do: [ :c |
          box at: (cellI: i + a J: j + b K: k + c) Put: v ] ] ].
    self ).
  search: pieces Size: s = ( | placed |
    pieces == 0
      ifTrue: [ 1 ]
      False: [
        placed: 0.
        0 upTo: d Do: [ :i |
          0 upTo: d Do: [ :j |
            0 upTo: d Do: [ :k |
              trials: trials + 1.
              (fitsI: i J: j K: k Size: s) ifTrue: [
                placeI: i J: j K: k Size: s Value: true.
                placed: placed + (search: pieces - 1 Size: s).
                placeI: i J: j K: k Size: s Value: false ] ] ] ].
        placed ] ).
  run = ( | ways |
    trials: 0.
    box: (vectorOfSize: d * d * d FillingWith: false).
    0 upTo: d Do: [ :i |
      0 upTo: d Do: [ :j |
        0 upTo: d Do: [ :k |
          ((i + j + k) % 3) == 0 ifTrue: [
            box at: (cellI: i J: j K: k) Put: true ] ] ] ].
    ways: (search: 2 Size: 2).
    (ways * 1000) + (trials % 1000) ).
| ).
)SELF";

const char *kQuick = R"SELF(
quickBench = ( | parent* = lobby. arr.
  sortFrom: l To: r = ( | i. j. pivot. t |
    i: l. j: r.
    pivot: (arr at: (l + r) / 2).
    [ i <= j ] whileTrue: [
      [ (arr at: i) < pivot ] whileTrue: [ i: i + 1 ].
      [ pivot < (arr at: j) ] whileTrue: [ j: j - 1 ].
      i <= j ifTrue: [
        t: (arr at: i).
        arr at: i Put: (arr at: j).
        arr at: j Put: t.
        i: i + 1. j: j - 1 ] ].
    l < j ifTrue: [ sortFrom: l To: j ].
    i < r ifTrue: [ sortFrom: i To: r ].
    self ).
  run = (
    randomGen reset.
    arr: (vectorOfSize: 1000).
    0 upTo: 1000 Do: [ :i | arr at: i Put: randomGen next ].
    sortFrom: 0 To: 999.
    ((arr at: 0) + (arr at: 999)) + (arr at: 500) ).
| ).
)SELF";

const char *kQuickOO = R"SELF(
quickOOColl = ( | parent* = lobby. elems.
  initSize: n = ( elems: (vectorOfSize: n). self ).
  at: i = ( elems at: i ).
  at: i Put: v = ( elems at: i Put: v. self ).
  swap: x With: y = ( | t |
    t: (elems at: x).
    elems at: x Put: (elems at: y).
    elems at: y Put: t.
    self ).
  sortFrom: l To: r = ( | i. j. pivot |
    i: l. j: r.
    pivot: (self at: (l + r) / 2).
    [ i <= j ] whileTrue: [
      [ (self at: i) < pivot ] whileTrue: [ i: i + 1 ].
      [ pivot < (self at: j) ] whileTrue: [ j: j - 1 ].
      i <= j ifTrue: [
        self swap: i With: j.
        i: i + 1. j: j - 1 ] ].
    l < j ifTrue: [ self sortFrom: l To: j ].
    i < r ifTrue: [ self sortFrom: i To: r ].
    self ).
| ).
quickOOBench = ( | parent* = lobby.
  run = ( | coll |
    randomGen reset.
    coll: (quickOOColl clone initSize: 1000).
    0 upTo: 1000 Do: [ :i | coll at: i Put: randomGen next ].
    coll sortFrom: 0 To: 999.
    ((coll at: 0) + (coll at: 999)) + (coll at: 500) ).
| ).
)SELF";

const char *kBubble = R"SELF(
bubbleBench = ( | parent* = lobby. arr.
  run = ( | t |
    randomGen reset.
    arr: (vectorOfSize: 250).
    0 upTo: 250 Do: [ :i | arr at: i Put: randomGen next ].
    249 downTo: 1 Do: [ :top |
      0 upTo: top Do: [ :i |
        (arr at: i) > (arr at: i + 1) ifTrue: [
          t: (arr at: i).
          arr at: i Put: (arr at: i + 1).
          arr at: i + 1 Put: t ] ] ].
    ((arr at: 0) + (arr at: 249)) + (arr at: 125) ).
| ).
)SELF";

const char *kBubbleOO = R"SELF(
bubbleOOColl = ( | parent* = lobby. elems.
  initSize: n = ( elems: (vectorOfSize: n). self ).
  at: i = ( elems at: i ).
  at: i Put: v = ( elems at: i Put: v. self ).
  swap: x With: y = ( | t |
    t: (elems at: x).
    elems at: x Put: (elems at: y).
    elems at: y Put: t.
    self ).
  bubbleUpTo: top = (
    0 upTo: top Do: [ :i |
      (self at: i) > (self at: i + 1) ifTrue: [ self swap: i With: i + 1 ] ].
    self ).
| ).
bubbleOOBench = ( | parent* = lobby.
  run = ( | coll |
    randomGen reset.
    coll: (bubbleOOColl clone initSize: 250).
    0 upTo: 250 Do: [ :i | coll at: i Put: randomGen next ].
    249 downTo: 1 Do: [ :top | coll bubbleUpTo: top ].
    ((coll at: 0) + (coll at: 249)) + (coll at: 125) ).
| ).
)SELF";

const char *kTree = R"SELF(
treeNode = ( | parent* = lobby. left. right. val <- 0 | ).
treeBench = ( | parent* = lobby.
  newNode: v = ( | nd |
    nd: treeNode clone.
    nd val: v.
    nd ).
  insert: n Into: t = (
    (n val) < (t val)
      ifTrue: [ (t left) isNil
          ifTrue: [ t left: n ]
          False: [ insert: n Into: t left ] ]
      False: [ (t right) isNil
          ifTrue: [ t right: n ]
          False: [ insert: n Into: t right ] ].
    self ).
  countIn: t = ( | c |
    c: 1.
    (t left) notNil ifTrue: [ c: c + (countIn: t left) ].
    (t right) notNil ifTrue: [ c: c + (countIn: t right) ].
    c ).
  run = ( | root |
    randomGen reset.
    root: (newNode: 10000).
    1 to: 1500 Do: [ :i | insert: (newNode: randomGen next) Into: root ].
    countIn: root ).
| ).
)SELF";

const char *kTreeOO = R"SELF(
treeOONode = ( | parent* = lobby. left. right. val <- 0.
  insert: n = (
    (n val) < val
      ifTrue: [ left isNil ifTrue: [ left: n ] False: [ left insert: n ] ]
      False: [ right isNil ifTrue: [ right: n ] False: [ right insert: n ] ].
    self ).
  count = ( | c |
    c: 1.
    left notNil ifTrue: [ c: c + left count ].
    right notNil ifTrue: [ c: c + right count ].
    c ).
| ).
treeOOBench = ( | parent* = lobby.
  newNode: v = ( | nd |
    nd: treeOONode clone.
    nd val: v.
    nd ).
  run = ( | root |
    randomGen reset.
    root: (newNode: 10000).
    1 to: 1500 Do: [ :i | root insert: (newNode: randomGen next) ].
    root count ).
| ).
)SELF";

//===----------------------------------------------------------------------===//
// small
//===----------------------------------------------------------------------===//

const char *kSieve = R"SELF(
sieveBench = ( | parent* = lobby. size = 8190.
  run = ( | flags. count. prime. k |
    flags: (vectorOfSize: size + 1 FillingWith: true).
    count: 0.
    0 to: size Do: [ :i |
      (flags at: i) ifTrue: [
        prime: (i + i) + 3.
        k: i + prime.
        [ k <= size ] whileTrue: [ flags at: k Put: false. k: k + prime ].
        count: count + 1 ] ].
    count ).
| ).
)SELF";

const char *kSumTo = R"SELF(
sumToBench = ( | parent* = lobby.
  run = ( | s |
    s: 0.
    1 to: 10000 Do: [ :i | s: s + i ].
    s ).
| ).
)SELF";

const char *kSumFromTo = R"SELF(
sumFromToBench = ( | parent* = lobby.
  sumFrom: a To: b = ( | s |
    s: 0.
    a to: b Do: [ :i | s: s + i ].
    s ).
  run = ( sumFrom: 250 To: 10250 ).
| ).
)SELF";

const char *kSumToConst = R"SELF(
sumToConstBench = ( | parent* = lobby.
  run = ( | s |
    s: 0.
    1 to: 10000 Do: [ :i | s: s + 7 ].
    s ).
| ).
)SELF";

const char *kAtAllPut = R"SELF(
atAllPutBench = ( | parent* = lobby.
  run = ( | v |
    v: (vectorOfSize: 2000).
    1 to: 20 Do: [ :k | v atAllPut: k ].
    (v at: 0) + (v at: 1999) ).
| ).
)SELF";

std::vector<BenchmarkDef> makeAll() {
  auto withRandom = [](const char *Src) {
    return std::string(kRandomLib) + Src;
  };
  std::vector<BenchmarkDef> All;
  // stanford
  All.push_back({"perm", "stanford", kPerm, "permBench run", native::perm, 6});
  All.push_back({"towers", "stanford", kTowers, "towersBench run",
                 native::towers, 8});
  All.push_back({"queens", "stanford", kQueens, "queensBench run",
                 native::queens, 6});
  All.push_back({"intmm", "stanford", kIntmm, "intmmBench run",
                 native::intmm, 8});
  All.push_back({"puzzle", "stanford", kPuzzle, "puzzleBench run",
                 native::puzzle, 6});
  All.push_back({"quick", "stanford", withRandom(kQuick), "quickBench run",
                 native::quick, 8});
  All.push_back({"bubble", "stanford", withRandom(kBubble),
                 "bubbleBench run", native::bubble, 6});
  All.push_back({"tree", "stanford", withRandom(kTree), "treeBench run",
                 native::tree, 8});
  // stanford-oo (puzzle is not rewritten; see §6)
  All.push_back({"perm-oo", "stanford-oo", kPermOO, "permOOBench run",
                 native::perm, 6});
  All.push_back({"towers-oo", "stanford-oo", kTowersOO, "towersOOBench run",
                 native::towers, 8});
  All.push_back({"queens-oo", "stanford-oo", kQueensOO, "queensOOBench run",
                 native::queens, 6});
  All.push_back({"intmm-oo", "stanford-oo", kIntmmOO, "intmmOOBench run",
                 native::intmm, 8});
  All.push_back({"puzzle", "stanford-oo", kPuzzle, "puzzleBench run",
                 native::puzzle, 6});
  All.push_back({"quick-oo", "stanford-oo", withRandom(kQuickOO),
                 "quickOOBench run", native::quick, 8});
  All.push_back({"bubble-oo", "stanford-oo", withRandom(kBubbleOO),
                 "bubbleOOBench run", native::bubble, 6});
  All.push_back({"tree-oo", "stanford-oo", withRandom(kTreeOO),
                 "treeOOBench run", native::tree, 8});
  // small
  All.push_back({"sieve", "small", kSieve, "sieveBench run", native::sieve,
                 8});
  All.push_back({"sumTo", "small", kSumTo, "sumToBench run", native::sumTo,
                 20});
  All.push_back({"sumFromTo", "small", kSumFromTo, "sumFromToBench run",
                 native::sumFromTo, 20});
  All.push_back({"sumToConst", "small", kSumToConst, "sumToConstBench run",
                 native::sumToConst, 20});
  All.push_back({"atAllPut", "small", kAtAllPut, "atAllPutBench run",
                 native::atAllPut, 3});
  // richards
  All.push_back({"richards", "richards", richardsSource(), "richardsBench run",
                 native::richards, 4});
  // The workload scenario pack: deltablue, json, sexpr, lexer, peg.
  appendWorkloadBenchmarks(All);
  // The closure suites: inject, nestdo, pipeline.
  appendClosureBenchmarks(All);
  return All;
}

} // namespace

const std::vector<BenchmarkDef> &allBenchmarks() {
  static const std::vector<BenchmarkDef> All = makeAll();
  return All;
}

std::vector<const BenchmarkDef *> benchmarksInGroup(const std::string &G) {
  std::vector<const BenchmarkDef *> Out;
  for (const BenchmarkDef &B : allBenchmarks())
    if (B.Group == G)
      Out.push_back(&B);
  return Out;
}

} // namespace mself::bench
