//===-- bench/table_code_size.cpp - E3: Code Size ---------------------------===//
//
// Reproduces the paper's §6.3 "compiled code size (in kilobytes), median /
// 75%-ile / max" table. The paper's shape: the new compiler's code is
// *smaller* than the old compiler's for most benchmarks (fewer residual
// sends, type tests, and failure blocks), while both are several times the
// size of optimized C. The optimized-C column is not meaningfully
// measurable here (native code is folded into this binary), shown as '-'.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "support/stats.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace mself;
using namespace mself::bench;

namespace {

std::vector<const BenchmarkDef *> groupFor(const std::string &Col) {
  std::vector<const BenchmarkDef *> Out;
  for (const BenchmarkDef &B : allBenchmarks()) {
    bool IsPuzzle = B.Name == "puzzle";
    if (Col == "puzzle" && IsPuzzle && B.Group == "stanford")
      Out.push_back(&B);
    else if (Col == "stanford+oo" && !IsPuzzle &&
             (B.Group == "stanford" || B.Group == "stanford-oo"))
      Out.push_back(&B);
    else if (Col == B.Group && !IsPuzzle &&
             (Col == "small" || Col == "richards"))
      Out.push_back(&B);
  }
  return Out;
}

} // namespace

int main() {
  const char *Cols[] = {"small", "stanford+oo", "puzzle", "richards"};
  Policy Policies[] = {Policy::st80(), Policy::oldSelf(), Policy::newSelf()};
  const char *Labels[] = {"ST-80", "old SELF", "new SELF"};

  printf("E3: Compiled Code Size (in kilobytes)\n");
  printf("    median / 75%%-ile / max, per paper section 6.3\n\n");
  printf("%-10s", "");
  for (const char *C : Cols)
    printf(" %-24s", C);
  printf("\n");

  JsonReport Report("code_size");
  bool AllOk = true;
  for (int PI = 0; PI < 3; ++PI) {
    printf("%-10s", Labels[PI]);
    for (const char *C : Cols) {
      SampleStats S;
      for (const BenchmarkDef *B : groupFor(C)) {
        SelfRunResult R = runSelf(*B, Policies[PI]);
        if (!R.Ok) {
          fprintf(stderr, "FAIL %s [%s]: %s\n", B->Name.c_str(), Labels[PI],
                  R.Error.c_str());
          AllOk = false;
          continue;
        }
        S.add(static_cast<double>(R.CodeBytes) / 1024.0);
      }
      if (!S.empty()) {
        std::string Key = std::string(Policies[PI].Name) + "/" + C;
        Report.metric(Key + "/median_kib", S.median());
        Report.metric(Key + "/p75_kib", S.percentile(75));
        Report.metric(Key + "/max_kib", S.max());
      }
      std::string Cell = S.empty() ? std::string("-")
                                   : fixed(S.median(), 1) + " / " +
                                         fixed(S.percentile(75), 1) + " / " +
                                         fixed(S.max(), 1);
      printf(" %-24s", Cell.c_str());
    }
    printf("\n");
  }
  Report.pass(AllOk);
  Report.write();
  return AllOk ? 0 : 1;
}
