//===-- bench/native_workloads.cpp - C++ twins of the workload pack -------===//
//
// Native implementations of the workload suites, each an exact
// transliteration of the mini-SELF program in workloads.cpp: same input
// (workload_inputs.h), same algorithm, same iteration orders, same modular
// arithmetic (all operands kept non-negative so `%` and `/` agree between
// the two languages). The differential harness holds the checksums equal
// under every policy configuration.
//
//===----------------------------------------------------------------------===//

#include "native.h"

#include "workload_inputs.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace mself::bench::native {

namespace {

constexpr int64_t M = 1000003;

//===----------------------------------------------------------------------===//
// deltablue
//===----------------------------------------------------------------------===//

namespace db {

// Strengths are ints 0 (required) .. 6 (weakest); smaller is stronger.
// Binary direction: 0 none, 1 forward (V1 -> V2), 2 backward.

struct Constraint;

struct Variable {
  int64_t Value = 0;
  std::vector<Constraint *> Constraints;
  Constraint *DeterminedBy = nullptr;
  int64_t Mark = 0;
  int64_t WalkStrength = 6;
  bool Stay = true;

  explicit Variable(int64_t V) : Value(V) {}
  void addConstraint(Constraint *C) { Constraints.push_back(C); }
  void removeConstraint(Constraint *C) {
    // Order-preserving compaction, like wlList remove:.
    size_t J = 0;
    for (Constraint *X : Constraints)
      if (X != C)
        Constraints[J++] = X;
    Constraints.resize(J);
    if (DeterminedBy == C)
      DeterminedBy = nullptr;
  }
};

struct Planner;

struct Constraint {
  int64_t Strength = 0;

  virtual ~Constraint() = default;
  virtual bool isInput() const { return false; }
  virtual bool isSatisfied() const = 0;
  virtual void addToGraph() = 0;
  virtual void removeFromGraph() = 0;
  virtual void chooseMethod(int64_t Mark) = 0;
  virtual void markInputs(int64_t Mark) = 0;
  virtual bool inputsKnown(int64_t Mark) const = 0;
  virtual Variable *output() const = 0;
  virtual void markUnsatisfied() = 0;
  virtual void recalculate() = 0;
  virtual void execute() = 0;

  void addToPlanner(Planner &P);
  void destroyIn(Planner &P);
  Constraint *satisfy(int64_t Mark, Planner &P);
};

struct Planner {
  int64_t CurrentMark = 0;

  int64_t newMark() { return ++CurrentMark; }

  void incrementalAdd(Constraint *C) {
    int64_t Mark = newMark();
    Constraint *Overridden = C->satisfy(Mark, *this);
    while (Overridden)
      Overridden = Overridden->satisfy(Mark, *this);
  }

  void incrementalRemove(Constraint *C) {
    Variable *Out = C->output();
    C->markUnsatisfied();
    C->removeFromGraph();
    std::vector<Constraint *> Unsatisfied = removePropagateFrom(Out);
    for (int64_t S = 0; S <= 6; ++S)
      for (Constraint *U : Unsatisfied)
        if (U->Strength == S)
          incrementalAdd(U);
  }

  bool addPropagate(Constraint *C, int64_t Mark) {
    std::vector<Constraint *> Todo{C};
    while (!Todo.empty()) {
      Constraint *D = Todo.back();
      Todo.pop_back();
      if (D->output()->Mark == Mark)
        return false;
      D->recalculate();
      addConstraintsConsuming(D->output(), Todo);
    }
    return true;
  }

  std::vector<Constraint *> removePropagateFrom(Variable *Out) {
    std::vector<Constraint *> Unsatisfied;
    Out->DeterminedBy = nullptr;
    Out->WalkStrength = 6;
    Out->Stay = true;
    std::vector<Variable *> Todo{Out};
    while (!Todo.empty()) {
      Variable *V = Todo.back();
      Todo.pop_back();
      for (Constraint *C : V->Constraints)
        if (!C->isSatisfied())
          Unsatisfied.push_back(C);
      Constraint *Determining = V->DeterminedBy;
      for (Constraint *C : V->Constraints)
        if (C != Determining && C->isSatisfied()) {
          C->recalculate();
          Todo.push_back(C->output());
        }
    }
    return Unsatisfied;
  }

  void addConstraintsConsuming(Variable *V, std::vector<Constraint *> &Coll) {
    Constraint *Determining = V->DeterminedBy;
    for (Constraint *C : V->Constraints)
      if (C != Determining && C->isSatisfied())
        Coll.push_back(C);
  }

  std::vector<Constraint *> makePlan(std::vector<Constraint *> Sources) {
    int64_t Mark = newMark();
    std::vector<Constraint *> Plan;
    std::vector<Constraint *> &Todo = Sources;
    while (!Todo.empty()) {
      Constraint *C = Todo.back();
      Todo.pop_back();
      if (C->output()->Mark != Mark && C->inputsKnown(Mark)) {
        Plan.push_back(C);
        C->output()->Mark = Mark;
        addConstraintsConsuming(C->output(), Todo);
      }
    }
    return Plan;
  }

  std::vector<Constraint *>
  extractPlanFrom(const std::vector<Constraint *> &Cs) {
    std::vector<Constraint *> Sources;
    for (Constraint *C : Cs)
      if (C->isInput() && C->isSatisfied())
        Sources.push_back(C);
    return makePlan(std::move(Sources));
  }
};

void Constraint::addToPlanner(Planner &P) {
  addToGraph();
  P.incrementalAdd(this);
}

void Constraint::destroyIn(Planner &P) {
  if (isSatisfied())
    P.incrementalRemove(this);
  else
    removeFromGraph();
}

Constraint *Constraint::satisfy(int64_t Mark, Planner &P) {
  chooseMethod(Mark);
  if (isSatisfied()) {
    markInputs(Mark);
    Variable *Out = output();
    Constraint *Overridden = Out->DeterminedBy;
    if (Overridden)
      Overridden->markUnsatisfied();
    Out->DeterminedBy = this;
    if (!P.addPropagate(this, Mark))
      throw std::runtime_error("deltablue: cycle");
    Out->Mark = Mark;
    return Overridden;
  }
  if (Strength == 0)
    throw std::runtime_error("deltablue: required unsatisfiable");
  return nullptr;
}

struct UnaryConstraint : Constraint {
  Variable *MyOutput = nullptr;
  bool SatisfiedFlag = false;

  void init(Variable *V, int64_t S, Planner &P) {
    MyOutput = V;
    Strength = S;
    addToPlanner(P);
  }
  void addToGraph() override {
    MyOutput->addConstraint(this);
    SatisfiedFlag = false;
  }
  void removeFromGraph() override {
    if (MyOutput)
      MyOutput->removeConstraint(this);
    SatisfiedFlag = false;
  }
  void chooseMethod(int64_t Mark) override {
    SatisfiedFlag =
        MyOutput->Mark != Mark && Strength < MyOutput->WalkStrength;
  }
  bool isSatisfied() const override { return SatisfiedFlag; }
  void markInputs(int64_t) override {}
  bool inputsKnown(int64_t) const override { return true; }
  Variable *output() const override { return MyOutput; }
  void markUnsatisfied() override { SatisfiedFlag = false; }
  void recalculate() override {
    MyOutput->WalkStrength = Strength;
    MyOutput->Stay = !isInput();
    if (MyOutput->Stay)
      execute();
  }
  void execute() override {}
};

struct StayConstraint : UnaryConstraint {};

struct EditConstraint : UnaryConstraint {
  bool isInput() const override { return true; }
};

struct BinaryConstraint : Constraint {
  Variable *V1 = nullptr, *V2 = nullptr;
  int64_t Direction = 0;

  void addToGraph() override {
    V1->addConstraint(this);
    V2->addConstraint(this);
    Direction = 0;
  }
  void removeFromGraph() override {
    if (V1)
      V1->removeConstraint(this);
    if (V2)
      V2->removeConstraint(this);
    Direction = 0;
  }
  bool isSatisfied() const override { return Direction != 0; }
  void markUnsatisfied() override { Direction = 0; }
  Variable *input() const { return Direction == 1 ? V1 : V2; }
  Variable *output() const override { return Direction == 1 ? V2 : V1; }
  void markInputs(int64_t Mark) override { input()->Mark = Mark; }
  bool inputsKnown(int64_t Mark) const override {
    Variable *I = input();
    return I->Mark == Mark || I->Stay || I->DeterminedBy == nullptr;
  }
  void chooseMethod(int64_t Mark) override {
    if (V1->Mark == Mark)
      Direction =
          (V2->Mark != Mark && Strength < V2->WalkStrength) ? 1 : 0;
    else if (V2->Mark == Mark)
      Direction =
          (V1->Mark != Mark && Strength < V1->WalkStrength) ? 2 : 0;
    else if (V1->WalkStrength > V2->WalkStrength)
      Direction = Strength < V1->WalkStrength ? 2 : 0;
    else
      Direction = Strength < V2->WalkStrength ? 1 : 0;
  }
  void recalculate() override {
    Variable *I = input(), *O = output();
    O->WalkStrength = std::max(Strength, I->WalkStrength);
    O->Stay = I->Stay;
    if (O->Stay)
      execute();
  }
};

struct EqualityConstraint : BinaryConstraint {
  void init(Variable *X, Variable *Y, int64_t S, Planner &P) {
    V1 = X;
    V2 = Y;
    Strength = S;
    addToPlanner(P);
  }
  void execute() override { output()->Value = input()->Value; }
};

struct ScaleConstraint : BinaryConstraint {
  Variable *ScaleVar = nullptr, *OffsetVar = nullptr;

  void init(Variable *Src, Variable *Sc, Variable *Off, Variable *Dst,
            int64_t S, Planner &P) {
    V1 = Src;
    V2 = Dst;
    ScaleVar = Sc;
    OffsetVar = Off;
    Strength = S;
    addToPlanner(P);
  }
  void addToGraph() override {
    V1->addConstraint(this);
    V2->addConstraint(this);
    ScaleVar->addConstraint(this);
    OffsetVar->addConstraint(this);
    Direction = 0;
  }
  void removeFromGraph() override {
    if (V1)
      V1->removeConstraint(this);
    if (V2)
      V2->removeConstraint(this);
    if (ScaleVar)
      ScaleVar->removeConstraint(this);
    if (OffsetVar)
      OffsetVar->removeConstraint(this);
    Direction = 0;
  }
  void markInputs(int64_t Mark) override {
    input()->Mark = Mark;
    ScaleVar->Mark = Mark;
    OffsetVar->Mark = Mark;
  }
  void recalculate() override {
    Variable *I = input(), *O = output();
    O->WalkStrength = std::max(Strength, I->WalkStrength);
    O->Stay = I->Stay && ScaleVar->Stay && OffsetVar->Stay;
    if (O->Stay)
      execute();
  }
  void execute() override {
    if (Direction == 1)
      V2->Value = V1->Value * ScaleVar->Value + OffsetVar->Value;
    else
      V1->Value = (V2->Value - OffsetVar->Value) / ScaleVar->Value;
  }
};

struct Bench {
  Planner P;
  std::vector<std::unique_ptr<Variable>> Vars;
  std::vector<std::unique_ptr<Constraint>> Arena;

  Variable *var(int64_t V) {
    Vars.push_back(std::make_unique<Variable>(V));
    return Vars.back().get();
  }
  template <typename T> T *make() {
    auto Owner = std::make_unique<T>();
    T *Raw = Owner.get();
    Arena.push_back(std::move(Owner));
    return Raw;
  }

  void change(Variable *V, int64_t NewValue) {
    auto *Edit = make<EditConstraint>();
    Edit->init(V, 2, P);
    std::vector<Constraint *> Plan = P.extractPlanFrom({Edit});
    for (int I = 0; I < 10; ++I) {
      V->Value = NewValue;
      for (Constraint *C : Plan)
        C->execute();
    }
    Edit->destroyIn(P);
  }

  int64_t chainTest(int64_t N) {
    P = Planner();
    std::vector<Variable *> V;
    for (int64_t I = 0; I <= N; ++I)
      V.push_back(var(0));
    for (int64_t I = 0; I < N; ++I)
      make<EqualityConstraint>()->init(V[I], V[I + 1], 0, P);
    make<StayConstraint>()->init(V[N], 3, P);
    auto *Edit = make<EditConstraint>();
    Edit->init(V[0], 2, P);
    std::vector<Constraint *> Plan = P.extractPlanFrom({Edit});
    int64_t Chk = 0;
    for (int64_t I = 1; I <= 20; ++I) {
      V[0]->Value = I;
      for (Constraint *C : Plan)
        C->execute();
      if (V[N]->Value != I)
        throw std::runtime_error("deltablue: chain broken");
      Chk = (Chk * 31 + V[N]->Value) % M;
    }
    Edit->destroyIn(P);
    return Chk;
  }

  int64_t projectionTest(int64_t N) {
    P = Planner();
    std::vector<Variable *> Dests;
    Variable *Scale = var(10);
    Variable *Offset = var(1000);
    Variable *Src = nullptr, *Dst = nullptr;
    for (int64_t I = 0; I < N; ++I) {
      Src = var(I);
      Dst = var(I);
      Dests.push_back(Dst);
      make<StayConstraint>()->init(Src, 4, P);
      make<ScaleConstraint>()->init(Src, Scale, Offset, Dst, 0, P);
    }
    change(Src, 17);
    int64_t Chk = Dst->Value;
    change(Dst, 1050);
    Chk = (Chk * 31 + Src->Value) % M;
    change(Scale, 5);
    for (Variable *D : Dests)
      Chk = (Chk * 31 + D->Value) % M;
    change(Offset, 2000);
    for (Variable *D : Dests)
      Chk = (Chk * 31 + D->Value) % M;
    return Chk;
  }

  int64_t run() { return (chainTest(8) + projectionTest(8)) % M; }
};

} // namespace db

//===----------------------------------------------------------------------===//
// json
//===----------------------------------------------------------------------===//

// Computes the tree hash bottom-up during the parse — equivalent to the
// mini-SELF build-tree-then-hash since both fold in document order.
struct JsonParser {
  const char *Text;
  int64_t Pos = 0, N;

  explicit JsonParser(const char *T) : Text(T), N((int64_t)strlen(T)) {}

  int64_t peek() const { return Pos < N ? (unsigned char)Text[Pos] : 0; }
  void skipWs() {
    while (Pos < N && Text[Pos] == ' ')
      ++Pos;
  }
  int64_t parseStringHash() {
    skipWs();
    ++Pos; // opening quote
    int64_t H = 0;
    while (Text[Pos] != '"') {
      H = (H * 31 + (unsigned char)Text[Pos]) % M;
      ++Pos;
    }
    ++Pos; // closing quote
    return H;
  }
  int64_t parseNumberHash() {
    int64_t V = 0;
    while (Pos < N && Text[Pos] >= '0' && Text[Pos] <= '9') {
      V = V * 10 + (Text[Pos] - '0');
      ++Pos;
    }
    return (2 * V + 1) % M;
  }
  int64_t parseArrayHash() {
    ++Pos; // '['
    skipWs();
    int64_t H = 17;
    if (peek() == ']') {
      ++Pos;
      return H;
    }
    bool Done = false;
    while (!Done) {
      H = (H * 33 + parseValueHash()) % M;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        skipWs();
      } else {
        ++Pos; // ']'
        Done = true;
      }
    }
    return H;
  }
  int64_t parseObjectHash() {
    ++Pos; // '{'
    skipWs();
    int64_t H = 19;
    if (peek() == '}') {
      ++Pos;
      return H;
    }
    bool Done = false;
    while (!Done) {
      int64_t K = parseStringHash();
      skipWs();
      ++Pos; // ':'
      int64_t V = parseValueHash();
      H = (H * 37 + K + V) % M;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        skipWs();
      } else {
        ++Pos; // '}'
        Done = true;
      }
    }
    return H;
  }
  int64_t parseValueHash() {
    skipWs();
    int64_t C = peek();
    if (C == '{')
      return parseObjectHash();
    if (C == '[')
      return parseArrayHash();
    if (C == '"')
      return parseStringHash();
    if (C >= '0' && C <= '9')
      return parseNumberHash();
    if (C == 't') {
      Pos += 4;
      return 13;
    }
    if (C == 'f') {
      Pos += 5;
      return 11;
    }
    if (C == 'n') {
      Pos += 4;
      return 7;
    }
    throw std::runtime_error("json: unexpected character");
  }
};

//===----------------------------------------------------------------------===//
// sexpr
//===----------------------------------------------------------------------===//

namespace se {

struct Node {
  // Kind 0: number, 1: symbol, 2: list.
  int Kind;
  int64_t V = 0;
  std::string Name;
  std::vector<std::unique_ptr<Node>> Items;

  int64_t eval() const {
    if (Kind == 0)
      return V;
    if (Kind == 1)
      throw std::runtime_error("sexpr: bare symbol has no value");
    const std::string &Op = Items[0]->Name;
    int64_t Acc;
    if (Op == "+") {
      Acc = 0;
      for (size_t I = 1; I < Items.size(); ++I)
        Acc = (Acc + Items[I]->eval()) % M;
      return Acc;
    }
    if (Op == "*") {
      Acc = 1;
      for (size_t I = 1; I < Items.size(); ++I)
        Acc = (Acc * Items[I]->eval()) % M;
      return Acc;
    }
    if (Op == "-") {
      int64_t A = Items[1]->eval(), B = Items[2]->eval();
      return A > B ? A - B : 0; // monus
    }
    if (Op == "min") {
      Acc = Items[1]->eval();
      for (size_t I = 2; I < Items.size(); ++I)
        Acc = std::min(Acc, Items[I]->eval());
      return Acc;
    }
    if (Op == "max") {
      Acc = Items[1]->eval();
      for (size_t I = 2; I < Items.size(); ++I)
        Acc = std::max(Acc, Items[I]->eval());
      return Acc;
    }
    throw std::runtime_error("sexpr: unknown operator");
  }

  int64_t shash() const {
    if (Kind == 0)
      return (2 * V + 1) % M;
    if (Kind == 1) {
      int64_t H = 5;
      for (char C : Name)
        H = (H * 31 + (unsigned char)C) % M;
      return H;
    }
    int64_t H = 23;
    for (const auto &X : Items)
      H = (H * 29 + X->shash()) % M;
    return H;
  }
};

struct Parser {
  const char *Text;
  int64_t Pos = 0, N;

  explicit Parser(const char *T) : Text(T), N((int64_t)strlen(T)) {}

  int64_t peek() const { return Pos < N ? (unsigned char)Text[Pos] : 0; }
  void skipWs() {
    while (Pos < N && Text[Pos] == ' ')
      ++Pos;
  }
  std::unique_ptr<Node> parseNumber() {
    auto Nd = std::make_unique<Node>();
    Nd->Kind = 0;
    while (Pos < N && Text[Pos] >= '0' && Text[Pos] <= '9') {
      Nd->V = Nd->V * 10 + (Text[Pos] - '0');
      ++Pos;
    }
    return Nd;
  }
  std::unique_ptr<Node> parseSymbol() {
    int64_t Start = Pos;
    while (Pos < N && Text[Pos] != ' ' && Text[Pos] != '(' &&
           Text[Pos] != ')')
      ++Pos;
    auto Nd = std::make_unique<Node>();
    Nd->Kind = 1;
    Nd->Name.assign(Text + Start, Text + Pos);
    return Nd;
  }
  std::unique_ptr<Node> parseList() {
    ++Pos; // '('
    auto Nd = std::make_unique<Node>();
    Nd->Kind = 2;
    skipWs();
    while (peek() != ')') {
      Nd->Items.push_back(parseItem());
      skipWs();
    }
    ++Pos; // ')'
    return Nd;
  }
  std::unique_ptr<Node> parseItem() {
    skipWs();
    int64_t C = peek();
    if (C == '(')
      return parseList();
    if (C >= '0' && C <= '9')
      return parseNumber();
    return parseSymbol();
  }
};

} // namespace se

//===----------------------------------------------------------------------===//
// lexer
//===----------------------------------------------------------------------===//

int64_t lexStrHash(const std::string &S) {
  int64_t H = 0;
  for (char C : S)
    H = (H * 31 + (unsigned char)C) % M;
  return H;
}

int64_t lexScan(const char *Doc) {
  static const char *const Kws[6] = {"if", "then", "else",
                                     "while", "do", "end"};
  int64_t Pos = 0, N = (int64_t)strlen(Doc), Chk = 0;
  while (Pos < N) {
    int64_t C = (unsigned char)Doc[Pos];
    if (C == ' ') {
      ++Pos;
      continue;
    }
    int64_t Kind, Val;
    if (C >= 'a' && C <= 'z') {
      int64_t Start = Pos;
      while (Pos < N && ((Doc[Pos] >= 'a' && Doc[Pos] <= 'z') ||
                         (Doc[Pos] >= '0' && Doc[Pos] <= '9')))
        ++Pos;
      std::string Lexeme(Doc + Start, Doc + Pos);
      Kind = 10;
      Val = 0;
      for (int64_t Kw = 0; Kw < 6; ++Kw)
        if (Lexeme == Kws[Kw]) {
          Kind = 1 + Kw;
          Val = Kw;
          break;
        }
      if (Kind == 10)
        Val = lexStrHash(Lexeme);
    } else if (C >= '0' && C <= '9') {
      Kind = 11;
      Val = 0;
      while (Pos < N && Doc[Pos] >= '0' && Doc[Pos] <= '9') {
        Val = Val * 10 + (Doc[Pos] - '0');
        ++Pos;
      }
    } else if (C == ':' && Pos + 1 < N && Doc[Pos + 1] == '=') {
      Kind = 12;
      Val = 0;
      Pos += 2;
    } else {
      Kind = 13;
      Val = C;
      ++Pos;
    }
    Chk = (Chk * 31 + (Kind * 7 + Val)) % M;
  }
  return Chk;
}

//===----------------------------------------------------------------------===//
// peg
//===----------------------------------------------------------------------===//

namespace peg {

// match() returns the new position, or -1 for failure (mini-SELF nil).
// Composite kinds tick Attempts; leaf kinds (Char, Range, Any, Lit) do not,
// mirroring where the mini-SELF rules send `pegStats tick`.
struct Ctx {
  int64_t Attempts = 0;
};

struct Rule {
  virtual ~Rule() = default;
  virtual int64_t match(const char *T, int64_t P, int64_t N,
                        Ctx &S) const = 0;
};

struct CharRule : Rule {
  int64_t Ch;
  explicit CharRule(int64_t C) : Ch(C) {}
  int64_t match(const char *T, int64_t P, int64_t N, Ctx &) const override {
    return (P < N && (unsigned char)T[P] == Ch) ? P + 1 : -1;
  }
};

struct RangeRule : Rule {
  int64_t Lo, Hi;
  RangeRule(int64_t L, int64_t H) : Lo(L), Hi(H) {}
  int64_t match(const char *T, int64_t P, int64_t N, Ctx &) const override {
    return (P < N && (unsigned char)T[P] >= Lo && (unsigned char)T[P] <= Hi)
               ? P + 1
               : -1;
  }
};

struct AnyRule : Rule {
  int64_t match(const char *, int64_t P, int64_t N, Ctx &) const override {
    return P < N ? P + 1 : -1;
  }
};

struct LitRule : Rule {
  std::string Lit;
  explicit LitRule(std::string L) : Lit(std::move(L)) {}
  int64_t match(const char *T, int64_t P, int64_t N, Ctx &) const override {
    int64_t Mn = (int64_t)Lit.size();
    if (P + Mn > N)
      return -1;
    for (int64_t I = 0; I < Mn; ++I)
      if (T[P + I] != Lit[I])
        return -1;
    return P + Mn;
  }
};

struct Seq2Rule : Rule {
  const Rule *A, *B;
  Seq2Rule(const Rule *X, const Rule *Y) : A(X), B(Y) {}
  int64_t match(const char *T, int64_t P, int64_t N, Ctx &S) const override {
    ++S.Attempts;
    int64_t Mm = A->match(T, P, N, S);
    if (Mm < 0)
      return -1;
    return B->match(T, Mm, N, S);
  }
};

struct Seq3Rule : Rule {
  const Rule *A, *B, *C;
  Seq3Rule(const Rule *X, const Rule *Y, const Rule *Z) : A(X), B(Y), C(Z) {}
  int64_t match(const char *T, int64_t P, int64_t N, Ctx &S) const override {
    ++S.Attempts;
    int64_t Mm = A->match(T, P, N, S);
    if (Mm < 0)
      return -1;
    Mm = B->match(T, Mm, N, S);
    if (Mm < 0)
      return -1;
    return C->match(T, Mm, N, S);
  }
};

struct Choice2Rule : Rule {
  const Rule *A, *B;
  Choice2Rule(const Rule *X, const Rule *Y) : A(X), B(Y) {}
  int64_t match(const char *T, int64_t P, int64_t N, Ctx &S) const override {
    ++S.Attempts;
    int64_t Mm = A->match(T, P, N, S);
    if (Mm >= 0)
      return Mm;
    return B->match(T, P, N, S);
  }
};

struct Choice3Rule : Rule {
  const Rule *A, *B, *C;
  Choice3Rule(const Rule *X, const Rule *Y, const Rule *Z)
      : A(X), B(Y), C(Z) {}
  int64_t match(const char *T, int64_t P, int64_t N, Ctx &S) const override {
    ++S.Attempts;
    int64_t Mm = A->match(T, P, N, S);
    if (Mm >= 0)
      return Mm;
    Mm = B->match(T, P, N, S);
    if (Mm >= 0)
      return Mm;
    return C->match(T, P, N, S);
  }
};

struct StarRule : Rule {
  const Rule *Sub;
  explicit StarRule(const Rule *X) : Sub(X) {}
  int64_t match(const char *T, int64_t P, int64_t N, Ctx &S) const override {
    ++S.Attempts;
    int64_t Cur = P;
    for (;;) {
      int64_t Mm = Sub->match(T, Cur, N, S);
      if (Mm < 0)
        return Cur;
      Cur = Mm;
    }
  }
};

struct PlusRule : Rule {
  const Rule *Sub;
  explicit PlusRule(const Rule *X) : Sub(X) {}
  int64_t match(const char *T, int64_t P, int64_t N, Ctx &S) const override {
    ++S.Attempts;
    int64_t Mm = Sub->match(T, P, N, S);
    if (Mm < 0)
      return -1;
    int64_t Cur = Mm;
    for (;;) {
      Mm = Sub->match(T, Cur, N, S);
      if (Mm < 0)
        return Cur;
      Cur = Mm;
    }
  }
};

struct OptRule : Rule {
  const Rule *Sub;
  explicit OptRule(const Rule *X) : Sub(X) {}
  int64_t match(const char *T, int64_t P, int64_t N, Ctx &S) const override {
    ++S.Attempts;
    int64_t Mm = Sub->match(T, P, N, S);
    return Mm < 0 ? P : Mm;
  }
};

struct NotRule : Rule {
  const Rule *Sub;
  explicit NotRule(const Rule *X) : Sub(X) {}
  int64_t match(const char *T, int64_t P, int64_t N, Ctx &S) const override {
    ++S.Attempts;
    int64_t Mm = Sub->match(T, P, N, S);
    return Mm < 0 ? P : -1;
  }
};

struct RefRule : Rule {
  const std::vector<const Rule *> *Rules;
  int64_t Idx;
  RefRule(const std::vector<const Rule *> *R, int64_t I)
      : Rules(R), Idx(I) {}
  int64_t match(const char *T, int64_t P, int64_t N, Ctx &S) const override {
    ++S.Attempts;
    return (*Rules)[Idx]->match(T, P, N, S);
  }
};

struct Bench {
  std::vector<std::unique_ptr<Rule>> Arena;
  std::vector<const Rule *> Rules;

  template <typename T, typename... Args> const Rule *make(Args &&...As) {
    Arena.push_back(std::make_unique<T>(std::forward<Args>(As)...));
    return Arena.back().get();
  }

  // The same object graph the mini-SELF builder constructs: the grammar is
  // arranged so every combinator's child-dispatch site sees >=5 distinct
  // rule kinds (megamorphic under the default PIC arity).
  const Rule *build() {
    Rules.assign(1, nullptr);
    const Rule *Ws = make<StarRule>(make<CharRule>(' '));
    const Rule *Alpha = make<RangeRule>('a', 'z');
    const Rule *Digit = make<RangeRule>('0', '9');
    const Rule *Alnum = make<Choice2Rule>(Alpha, Digit);
    const Rule *Ident =
        make<Seq3Rule>(Alpha, make<StarRule>(Alnum), make<OptRule>(Ws));
    const Rule *NumTail = make<Seq2Rule>(make<OptRule>(Alpha), Ws);
    const Rule *Number =
        make<Seq3Rule>(make<OptRule>(make<CharRule>('-')),
                       make<PlusRule>(Digit), NumTail);
    const Rule *Lp = make<Seq2Rule>(make<CharRule>('('), Ws);
    const Rule *Rp = make<Seq2Rule>(make<CharRule>(')'), Ws);
    const Rule *Parens = make<Seq3Rule>(Lp, make<RefRule>(&Rules, 0), Rp);
    const Rule *Primary =
        make<Choice2Rule>(Number, make<Choice2Rule>(Ident, Parens));
    const Rule *Mulop = make<Seq2Rule>(
        make<Choice2Rule>(make<CharRule>('*'), make<CharRule>('/')), Ws);
    const Rule *MulPair = make<Seq2Rule>(Mulop, Primary);
    const Rule *Term = make<Seq2Rule>(Primary, make<StarRule>(MulPair));
    const Rule *Addop = make<Seq2Rule>(
        make<Choice2Rule>(make<LitRule>("+"), make<LitRule>("-")), Ws);
    const Rule *AddPair = make<Seq3Rule>(Addop, Term, Ws);
    const Rule *Arith = make<Seq2Rule>(Term, make<StarRule>(AddPair));
    const Rule *Relop =
        make<Choice2Rule>(make<Seq2Rule>(make<CharRule>('<'), Ws),
                          make<Seq2Rule>(make<CharRule>('>'), Ws));
    const Rule *Cmp = make<OptRule>(make<Seq2Rule>(Relop, Arith));
    Rules[0] = make<Seq2Rule>(Arith, Cmp);
    const Rule *LetHead =
        make<Seq2Rule>(make<PlusRule>(make<LitRule>("let ")), Ws);
    const Rule *IdentPart =
        make<Seq2Rule>(make<OptRule>(make<LitRule>("mut ")), Ident);
    const Rule *EqWs =
        make<Seq2Rule>(make<PlusRule>(make<CharRule>('=')), Ws);
    const Rule *Assign =
        make<Seq3Rule>(EqWs, make<RefRule>(&Rules, 0),
                       make<PlusRule>(make<CharRule>(';')));
    const Rule *LetStmt = make<Seq3Rule>(LetHead, IdentPart, Assign);
    const Rule *OutHead =
        make<Seq2Rule>(make<PlusRule>(make<LitRule>("out ")), Ws);
    const Rule *OutTail =
        make<Seq2Rule>(make<PlusRule>(make<RefRule>(&Rules, 0)),
                       make<PlusRule>(make<CharRule>(';')));
    const Rule *OutStmt = make<Seq2Rule>(OutHead, OutTail);
    const Rule *BadStmt = make<Seq2Rule>(make<LitRule>("@@"), Ws);
    const Rule *Stmt = make<Choice3Rule>(LetStmt, OutStmt, BadStmt);
    const Rule *Eof = make<Seq3Rule>(make<NotRule>(make<AnyRule>()),
                                     make<OptRule>(make<AnyRule>()),
                                     make<StarRule>(make<AnyRule>()));
    return make<Seq3Rule>(Ws, make<PlusRule>(Stmt), Eof);
  }

  int64_t run(const char *Input) {
    Ctx S;
    const Rule *Program = build();
    int64_t N = (int64_t)strlen(Input);
    int64_t Chk = 0;
    for (int K = 0; K < 3; ++K) {
      int64_t Mm = Program->match(Input, 0, N, S);
      if (Mm < 0)
        throw std::runtime_error("peg: no match");
      Chk = (Chk * 31 + Mm) % M;
    }
    return (Chk * 31 + S.Attempts % 100000) % M;
  }
};

} // namespace peg

} // namespace

int64_t deltablue() {
  db::Bench B;
  return B.run();
}

int64_t json() {
  int64_t Total = 0;
  for (int K = 1; K <= 4; ++K) {
    JsonParser P(kJsonDoc);
    Total = (Total * 7 + P.parseValueHash()) % M;
  }
  return Total;
}

int64_t sexpr() {
  int64_t Total = 0;
  for (int K = 1; K <= 4; ++K) {
    se::Parser P(kSexprDoc);
    std::unique_ptr<se::Node> Root = P.parseItem();
    Total = (Total * 7 + Root->eval() + Root->shash()) % M;
  }
  return Total;
}

int64_t lexer() {
  int64_t Total = 0;
  for (int K = 1; K <= 3; ++K)
    Total = (Total * 7 + lexScan(kLexerDoc)) % M;
  return Total;
}

int64_t peg() {
  peg::Bench B;
  return B.run(kPegDoc);
}

//===----------------------------------------------------------------------===//
// The closure suites (bench/closures.cpp)
//===----------------------------------------------------------------------===//

int64_t closureInject() {
  int64_t Elems[64];
  for (int I = 0; I < 64; ++I)
    Elems[I] = I + 1;
  int64_t T = 0;
  for (int64_t K = 1; K <= 40; ++K) {
    int64_t A = T;
    for (int I = 0; I < 64; ++I) {
      int64_t S = ((A + Elems[I]) * K) % M;
      A = S < 0 ? 0 : ((S * 2) + K) % M;
    }
    T = (A + K) % M;
  }
  return T;
}

int64_t closureNest() {
  int64_t Elems[48];
  for (int64_t I = 0; I < 48; ++I)
    Elems[I] = ((I * 7) % 23) + 1;
  int64_t T = 0;
  for (int R = 1; R <= 30; ++R)
    for (int I = 0; I < 48; ++I)
      for (int J = 0; J < 48; ++J)
        T = (T + Elems[I] * Elems[J]) % M;
  return T;
}

int64_t closurePipe() {
  int64_t T = 0;
  for (int64_t I = 1; I <= 200; ++I) {
    int64_t X = T + I;
    int64_t B = X < 0 ? 0 : (X + I * 5) % M;
    int64_t A = B;
    A = (A * 3) % M;
    A = (A + 17) % M;
    A = (A * A) % M;
    A = (A + 29) % M;
    T = (T + A) % M;
  }
  return T;
}

} // namespace mself::bench::native
