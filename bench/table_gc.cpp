//===-- bench/table_gc.cpp - E13: Generation scavenging vs mark-sweep -------===//
//
// Measures the memory system on allocation-heavy kernels: five workloads
// whose inner loops allocate on every iteration (fresh clones, vectors,
// closures, linked pairs, and a surviving object window), each run under
// the NEW-SELF compiler policy with the two collector configurations —
//   mark-sweep      the single-space collector: every object old from
//                   birth, reclaimed by full stop-the-world mark-sweep
//   generational    bump-pointer nursery + copying scavenges + age-based
//                   promotion (the default)
// Before timing, each VM builds a retained binary tree of ~65k nodes that
// stays reachable for the whole run — the long-lived data every real
// program carries. That is where the generational bet pays off: full
// mark-sweep collections re-mark the retained graph on every cycle, while
// scavenges only touch the (mostly dead) nursery. Both configurations run
// the heap's default nursery sizing and the same 2 MiB old-space growth
// threshold, so the comparison is the two collectors under one policy,
// not a tuned-vs-detuned strawman.
//
// The headline claim this table must support (EXPERIMENTS.md E13): the
// generational collector reaches a geometric-mean allocation-throughput
// speedup of >= 1.3x over mark-sweep across the kernels. The program exits
// nonzero if that (or any checksum) fails. Alongside the printed table the
// run writes BENCH_table_gc.json with per-kernel throughput, pause
// distribution (p50 / p95 / p99 / max from the bounded pause histograms,
// the same columns table_oldgc and table_server report), survival rate,
// promotion volume, and write-barrier traffic.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "driver/vm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace mself;
using namespace mself::bench;

namespace {

constexpr int64_t kIterations = 200000;

/// Shared by every kernel: a retained ~65k-node binary tree (rgrow: 15)
/// built once per VM before timing, standing in for a program's long-lived
/// heap. buildRetained answers 0 so the harness can checksum it.
const char *kPrelude =
    "rnode = ( | parent* = lobby. l. r. v <- 0 | ). "
    "rgrow: d = ( | o | o: rnode clone. o v: d. "
    "d > 0 ifTrue: [ o l: (rgrow: d - 1). o r: (rgrow: d - 1) ] "
    "False: [ ]. o ). "
    "retained <- nil. "
    "buildRetained = ( retained: (rgrow: 15). 0 )";

/// An allocation-heavy kernel: lobby definitions plus a native model for
/// the checksum. Each driver takes the iteration count as its argument.
struct Kernel {
  const char *Name;
  const char *Defs;
  const char *Selector;
  int64_t (*Native)(int64_t N);
};

const Kernel kKernels[] = {
    // A fresh clone per iteration, dead by the next: the pure
    // allocate-and-drop case generation scavenging is built for.
    {"clonechurn",
     "cproto = ( | parent* = lobby. v <- 0 | ). "
     "cl: n = ( | o. t <- 0 | 1 to: n Do: [ :i | "
     "o: cproto clone. o v: i. t: t + o v ]. t )",
     "cl:", [](int64_t N) { return N * (N + 1) / 2; }},
    // A small vector per iteration (shell + element payload).
    {"vecchurn",
     "vc: n = ( | t <- 0 | 1 to: n Do: [ :i | "
     "t: t + (vectorOfSize: 4) size ]. t )",
     "vc:", [](int64_t N) { return 4 * N; }},
    // Four fieldless clones per iteration: the shell-only case — no field
    // vector, so the entire allocation is the collector's own path (bump
    // pointer vs general-purpose allocate + sweep).
    {"shellchurn",
     "fproto = ( | parent* = lobby. k = ( 3 ) | ). "
     "sc: n = ( | t <- 0 | 1 to: n Do: [ :i | "
     "t: t + fproto clone k + fproto clone k + fproto clone k + "
     "fproto clone k ]. t )",
     "sc:", [](int64_t N) { return 12 * N; }},
    // Two linked objects per iteration: dead small graphs, not just
    // isolated shells.
    {"pairchurn",
     "pproto = ( | parent* = lobby. a <- 0. b | ). "
     "pc: n = ( | p. q. t <- 0 | 1 to: n Do: [ :i | "
     "p: pproto clone. q: pproto clone. p a: i. q b: p. "
     "t: t + (q b) a ]. t )",
     "pc:", [](int64_t N) { return N * (N + 1) / 2; }},
    // A 64-slot ring of survivors: each iteration's clone stays live for
    // 64 more, so scavenges copy and promote, and storing young clones
    // into the (tenured) ring vector exercises the write barrier.
    {"livewindow",
     "wproto = ( | parent* = lobby. v <- 0 | ). "
     "win: n = ( | ring. o. t <- 0 | ring: (vectorOfSize: 64). "
     "1 to: n Do: [ :i | o: wproto clone. o v: i. "
     "ring at: i % 64 Put: o. t: t + (ring at: i % 64) v ]. t )",
     "win:", [](int64_t N) { return N * (N + 1) / 2; }},
};
constexpr int kNumKernels = int(sizeof(kKernels) / sizeof(kKernels[0]));

struct CollectorConfig {
  const char *Name;
  bool Generational;
};
const CollectorConfig kConfigs[] = {
    {"mark-sweep", false},
    {"generational", true},
};
constexpr int kNumConfigs = int(sizeof(kConfigs) / sizeof(kConfigs[0]));

struct Cell {
  bool Ok = false;
  double ItersPerSec = 0;
  GcStats Gc; ///< Collector statistics over the best timed run's VM.
};

/// Scavenge and full pauses folded into one distribution — the mutator
/// doesn't care which collector kind stalled it.
PauseHistogram allPauses(const GcStats &S) {
  PauseHistogram H = S.ScavengePauses;
  H.merge(S.FullPauses);
  return H;
}

Cell runCell(const Kernel &K, const CollectorConfig &C) {
  Cell Out;
  std::string Expr =
      std::string(K.Selector) + " " + std::to_string(kIterations);
  // Best of three samples, each in a fresh VM so collector statistics
  // describe exactly one timed run (plus its warm-up).
  double BestSecs = 1e18;
  for (int Sample = 0; Sample < 3; ++Sample) {
    Policy P = Policy::newSelf();
    P.GenerationalGc = C.Generational;
    P.GcThresholdKiB = 2048;
    VirtualMachine VM(P);
    std::string Err;
    int64_t V = 0;
    if (!VM.load(std::string(kPrelude) + ". " + K.Defs, Err)) {
      fprintf(stderr, "FAIL %s/%s load: %s\n", K.Name, C.Name, Err.c_str());
      return Out;
    }
    // Untimed setup: build the retained graph, then warm up the kernel
    // (compiles everything lazily and validates the checksum).
    if (!VM.evalInt("buildRetained", V, Err) || V != 0) {
      fprintf(stderr, "FAIL %s/%s setup: %s\n", K.Name, C.Name, Err.c_str());
      return Out;
    }
    if (!VM.evalInt(std::string(K.Selector) + " 100", V, Err) ||
        V != K.Native(100)) {
      fprintf(stderr, "FAIL %s/%s warmup: %s (got %lld)\n", K.Name, C.Name,
              Err.c_str(), (long long)V);
      return Out;
    }
    auto T0 = std::chrono::steady_clock::now();
    if (!VM.evalInt(Expr, V, Err)) {
      fprintf(stderr, "FAIL %s/%s: %s\n", K.Name, C.Name, Err.c_str());
      return Out;
    }
    auto T1 = std::chrono::steady_clock::now();
    if (V != K.Native(kIterations)) {
      fprintf(stderr, "FAIL %s/%s: checksum %lld != %lld\n", K.Name, C.Name,
              (long long)V, (long long)K.Native(kIterations));
      return Out;
    }
    double Secs = std::chrono::duration<double>(T1 - T0).count();
    if (Secs < BestSecs) {
      BestSecs = Secs;
      Out.Gc = VM.telemetry().Gc;
    }
  }
  Out.Ok = true;
  Out.ItersPerSec = BestSecs > 0 ? double(kIterations) / BestSecs : 0;
  return Out;
}

} // namespace

int main() {
  printf("E13: Memory system — allocation-heavy kernels, NEW-SELF policy\n");
  printf("     cell: Miters/s  [collections, total GC pause]\n\n");
  printf("%-13s", "");
  for (const Kernel &K : kKernels)
    printf(" %-24s", K.Name);
  printf("\n");

  JsonReport Report("table_gc");
  bool AllOk = true;
  Cell Table[kNumConfigs][kNumKernels];
  for (int CI = 0; CI < kNumConfigs; ++CI) {
    printf("%-13s", kConfigs[CI].Name);
    for (int KI = 0; KI < kNumKernels; ++KI) {
      Cell &X = Table[CI][KI];
      X = runCell(kKernels[KI], kConfigs[CI]);
      if (!X.Ok) {
        AllOk = false;
        printf(" %-24s", "-");
        continue;
      }
      uint64_t Collections = X.Gc.Scavenges + X.Gc.FullCollections;
      std::string CellStr = fixed(X.ItersPerSec / 1e6, 2) + " [" +
                            std::to_string((unsigned long long)Collections) +
                            "gc " +
                            fixed(X.Gc.totalPauseSeconds() * 1e3, 1) + "ms]";
      printf(" %-24s", CellStr.c_str());

      std::string Base =
          std::string(kKernels[KI].Name) + "/" + kConfigs[CI].Name;
      Report.metric(Base + "/miters_per_sec", X.ItersPerSec / 1e6);
      Report.metric(Base + "/scavenges", double(X.Gc.Scavenges));
      Report.metric(Base + "/full_collections",
                    double(X.Gc.FullCollections));
      Report.metric(Base + "/total_pause_ms",
                    X.Gc.totalPauseSeconds() * 1e3);
      PauseHistogram Pauses = allPauses(X.Gc);
      Report.metric(Base + "/p50_pause_ms",
                    Pauses.percentileSeconds(0.50) * 1e3);
      Report.metric(Base + "/p95_pause_ms",
                    Pauses.percentileSeconds(0.95) * 1e3);
      Report.metric(Base + "/p99_pause_ms",
                    Pauses.percentileSeconds(0.99) * 1e3);
      Report.metric(Base + "/max_pause_ms", X.Gc.maxPauseSeconds() * 1e3);
      Report.metric(Base + "/survival_rate", X.Gc.survivalRate());
      Report.metric(Base + "/promoted_kib",
                    double(X.Gc.BytesPromoted) / 1024.0);
      Report.metric(Base + "/barrier_hits", double(X.Gc.BarrierHits));
      Report.metric(Base + "/overflow_allocs", double(X.Gc.OverflowAllocs));
    }
    printf("\n");
  }

  // Pause behaviour of the generational row: many short scavenges instead
  // of fewer long full collections.
  printf("\ngenerational pauses (p50 / p95 / max ms per kernel):");
  for (int KI = 0; KI < kNumKernels; ++KI) {
    const Cell &G = Table[1][KI];
    if (!G.Ok)
      continue;
    PauseHistogram Pauses = allPauses(G.Gc);
    printf("  %s %s/%s/%s", kKernels[KI].Name,
           fixed(Pauses.percentileSeconds(0.50) * 1e3, 3).c_str(),
           fixed(Pauses.percentileSeconds(0.95) * 1e3, 3).c_str(),
           fixed(G.Gc.maxPauseSeconds() * 1e3, 3).c_str());
  }
  printf("\n");

  // Headline: geomean allocation-throughput speedup, generational over
  // mark-sweep, across the kernels.
  double LogSum = 0;
  int LogN = 0;
  for (int KI = 0; KI < kNumKernels; ++KI) {
    const Cell &Gen = Table[1][KI];
    const Cell &Ms = Table[0][KI];
    if (Gen.Ok && Ms.Ok && Ms.ItersPerSec > 0) {
      LogSum += std::log(Gen.ItersPerSec / Ms.ItersPerSec);
      ++LogN;
    }
  }
  double Geomean = LogN ? std::exp(LogSum / LogN) : 0;
  bool GeomeanOk = Geomean >= 1.3;
  printf("geomean speedup, generational vs mark-sweep: %sx "
         "(>= 1.30x required): %s\n",
         fixed(Geomean, 2).c_str(), GeomeanOk ? "ok" : "FAIL");
  Report.metric("geomean_speedup_generational_vs_marksweep", Geomean);

  bool Pass = AllOk && GeomeanOk;
  Report.pass(Pass);
  Report.write();
  return Pass ? 0 : 1;
}
