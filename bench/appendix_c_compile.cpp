//===-- bench/appendix_c_compile.cpp - E6: per-benchmark compile time -------===//
//
// Reproduces the paper's Appendix C: compile time per benchmark. The
// paper's shape: the new SELF compiler is far slower than the old one
// (iterative loop analysis recompiles; splitting re-analyzes copies), with
// puzzle the worst case.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include <cstdio>

using namespace mself;
using namespace mself::bench;

int main() {
  Policy Policies[] = {Policy::st80(), Policy::oldSelf(), Policy::newSelf()};

  printf("E6 (Appendix C): Compile Time (milliseconds of CPU time)\n\n");
  printf("%-14s %-12s %10s %10s %10s\n", "benchmark", "group", "ST-80",
         "old SELF", "new SELF");

  JsonReport Report("appendix_c_compile");
  bool AllOk = true;
  for (const BenchmarkDef &B : allBenchmarks()) {
    if (B.Group == "stanford-oo" && B.Name == "puzzle")
      continue;
    printf("%-14s %-12s", B.Name.c_str(), B.Group.c_str());
    for (const Policy &P : Policies) {
      SelfRunResult R = runSelf(B, P);
      if (!R.Ok) {
        printf(" %10s", "FAIL");
        fprintf(stderr, "FAIL %s [%s]: %s\n", B.Name.c_str(),
                P.Name.c_str(), R.Error.c_str());
        AllOk = false;
        continue;
      }
      Report.metric(B.Name + "/" + P.Name + "/compile_ms",
                    R.CompileSeconds * 1000);
      printf(" %10s", fixed(R.CompileSeconds * 1000, 2).c_str());
    }
    printf("\n");
  }
  Report.pass(AllOk);
  Report.write();
  return AllOk ? 0 : 1;
}
