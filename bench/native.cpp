//===-- bench/native.cpp - Native ("optimized C") baselines ----------------===//

#include "native.h"

#include <memory>
#include <vector>

namespace mself::bench::native {

namespace {

/// Defeats closed-form folding of trivial loops: a 1990 C compiler would
/// not have summed an arithmetic series at compile time, and the paper's
/// baseline is "optimized C", not "symbolically evaluated C".
int64_t opaque(int64_t V) {
  asm volatile("" : "+r"(V));
  return V;
}

/// The shared linear congruential generator (same constants as the
/// mini-SELF sources).
struct Lcg {
  int64_t Seed = 74755;
  int64_t next() {
    Seed = (Seed * 1309 + 13849) % 65536;
    return Seed;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// stanford
//===----------------------------------------------------------------------===//

namespace {
struct PermState {
  int64_t A[11];
  int64_t Count = 0;
  void swap(int64_t X, int64_t Y) { std::swap(A[X], A[Y]); }
  void permute(int64_t N) {
    ++Count;
    if (N != 1) {
      permute(N - 1);
      for (int64_t K = N - 1; K >= 1; --K) {
        swap(N, K);
        permute(N - 1);
        swap(N, K);
      }
    }
  }
};
} // namespace

int64_t perm() {
  PermState P;
  for (int I = 0; I < 11; ++I)
    P.A[I] = I;
  for (int I = 1; I <= 4; ++I)
    P.permute(6);
  return P.Count;
}

namespace {
struct TowersState {
  std::vector<int64_t> Stacks[3];
  int64_t Moves = 0;
  void push(int64_t D, int P) { Stacks[P].push_back(D); }
  int64_t pop(int P) {
    int64_t D = Stacks[P].back();
    Stacks[P].pop_back();
    return D;
  }
  void move(int64_t N, int F, int T) {
    if (N == 1) {
      push(pop(F), T);
      ++Moves;
      return;
    }
    move(N - 1, F, 3 - F - T);
    push(pop(F), T);
    ++Moves;
    move(N - 1, 3 - F - T, T);
  }
};
} // namespace

int64_t towers() {
  TowersState S;
  for (int64_t D = 12; D >= 1; --D)
    S.push(D, 0);
  S.move(12, 0, 2);
  return S.Moves + static_cast<int64_t>(S.Stacks[2].size());
}

namespace {
struct QueensState {
  int64_t Rows[8] = {0}, D1[16] = {0}, D2[16] = {0};
  int64_t Solutions = 0;
  void tryCol(int64_t C) {
    if (C == 8) {
      ++Solutions;
      return;
    }
    for (int64_t R = 0; R < 8; ++R) {
      if (Rows[R] == 0 && D1[R + C] == 0 && D2[R - C + 7] == 0) {
        Rows[R] = D1[R + C] = D2[R - C + 7] = 1;
        tryCol(C + 1);
        Rows[R] = D1[R + C] = D2[R - C + 7] = 0;
      }
    }
  }
};
} // namespace

int64_t queens() {
  QueensState Q;
  Q.tryCol(0);
  return Q.Solutions;
}

int64_t intmm() {
  constexpr int64_t N = 20;
  std::vector<int64_t> Ma(N * N), Mb(N * N), Mr(N * N);
  auto init = [&](std::vector<int64_t> &M, int64_t Seed) {
    int64_t V = Seed;
    for (int64_t I = 0; I < N * N; ++I) {
      M[static_cast<size_t>(I)] = (V % 7) - 3;
      V += 11;
    }
  };
  init(Ma, 1);
  init(Mb, 5);
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J < N; ++J) {
      int64_t Acc = 0;
      for (int64_t K = 0; K < N; ++K)
        Acc += Ma[static_cast<size_t>(I * N + K)] *
               Mb[static_cast<size_t>(K * N + J)];
      Mr[static_cast<size_t>(I * N + J)] = Acc;
    }
  int64_t Sum = 0;
  for (int64_t I = 0; I < N * N; ++I)
    Sum += Mr[static_cast<size_t>(I)];
  return Sum;
}

namespace {
/// A 3-D packing search in the spirit of Baskett's puzzle benchmark: fit
/// 2x2x2 pieces into a 5x5x5 box previously seeded with a fixed pattern,
/// counting placement trials. (The original's 13 piece classes are
/// reproduced structurally, not bit-for-bit; both implementations share
/// this definition, which is what the comparison needs.)
struct PuzzleState {
  static constexpr int64_t D = 5;
  bool Box[D * D * D] = {false};
  int64_t Trials = 0;

  static int64_t at(int64_t I, int64_t J, int64_t K) {
    return (I * D + J) * D + K;
  }
  bool fits(int64_t I, int64_t J, int64_t K, int64_t S) {
    if (I + S > D || J + S > D || K + S > D)
      return false;
    for (int64_t A = 0; A < S; ++A)
      for (int64_t B = 0; B < S; ++B)
        for (int64_t C = 0; C < S; ++C)
          if (Box[at(I + A, J + B, K + C)])
            return false;
    return true;
  }
  void place(int64_t I, int64_t J, int64_t K, int64_t S, bool V) {
    for (int64_t A = 0; A < S; ++A)
      for (int64_t B = 0; B < S; ++B)
        for (int64_t C = 0; C < S; ++C)
          Box[at(I + A, J + B, K + C)] = V;
  }
  int64_t search(int64_t Pieces, int64_t S) {
    if (Pieces == 0)
      return 1;
    int64_t Placed = 0;
    for (int64_t I = 0; I < D; ++I)
      for (int64_t J = 0; J < D; ++J)
        for (int64_t K = 0; K < D; ++K) {
          ++Trials;
          if (fits(I, J, K, S)) {
            place(I, J, K, S, true);
            Placed += search(Pieces - 1, S);
            place(I, J, K, S, false);
          }
        }
    return Placed;
  }
};
} // namespace

int64_t puzzle() {
  PuzzleState P;
  // Seed pattern: block every cell whose coordinate sum is divisible by 3.
  for (int64_t I = 0; I < PuzzleState::D; ++I)
    for (int64_t J = 0; J < PuzzleState::D; ++J)
      for (int64_t K = 0; K < PuzzleState::D; ++K)
        if ((I + J + K) % 3 == 0)
          P.Box[PuzzleState::at(I, J, K)] = true;
  int64_t Ways = P.search(2, 2);
  return Ways * 1000 + P.Trials % 1000;
}

namespace {
struct QuickState {
  std::vector<int64_t> A;
  void sort(int64_t L, int64_t R) {
    int64_t I = L, J = R;
    int64_t Pivot = A[static_cast<size_t>((L + R) / 2)];
    while (I <= J) {
      while (A[static_cast<size_t>(I)] < Pivot)
        ++I;
      while (Pivot < A[static_cast<size_t>(J)])
        --J;
      if (I <= J) {
        std::swap(A[static_cast<size_t>(I)], A[static_cast<size_t>(J)]);
        ++I;
        --J;
      }
    }
    if (L < J)
      sort(L, J);
    if (I < R)
      sort(I, R);
  }
};
} // namespace

int64_t quick() {
  QuickState Q;
  Lcg R;
  Q.A.resize(1000);
  for (auto &X : Q.A)
    X = R.next();
  Q.sort(0, 999);
  return Q.A[0] + Q.A[999] + Q.A[500];
}

int64_t bubble() {
  constexpr int64_t N = 250;
  Lcg R;
  std::vector<int64_t> A(N);
  for (auto &X : A)
    X = R.next();
  for (int64_t Top = N - 1; Top >= 1; --Top)
    for (int64_t I = 0; I < Top; ++I)
      if (A[static_cast<size_t>(I)] > A[static_cast<size_t>(I + 1)])
        std::swap(A[static_cast<size_t>(I)], A[static_cast<size_t>(I + 1)]);
  return A[0] + A[static_cast<size_t>(N - 1)] + A[static_cast<size_t>(N / 2)];
}

namespace {
struct TreeNode {
  std::unique_ptr<TreeNode> Left, Right;
  int64_t Val = 0;
};
void insert(TreeNode *N, std::unique_ptr<TreeNode> T) {
  // Matches the mini-SELF version's insertion order exactly.
  if (T->Val < N->Val) {
    if (!N->Left)
      N->Left = std::move(T);
    else
      insert(N->Left.get(), std::move(T));
  } else {
    if (!N->Right)
      N->Right = std::move(T);
    else
      insert(N->Right.get(), std::move(T));
  }
}
int64_t count(const TreeNode *N) {
  int64_t C = 1;
  if (N->Left)
    C += count(N->Left.get());
  if (N->Right)
    C += count(N->Right.get());
  return C;
}
} // namespace

int64_t tree() {
  Lcg R;
  auto Root = std::make_unique<TreeNode>();
  Root->Val = 10000;
  for (int I = 0; I < 1500; ++I) {
    auto N = std::make_unique<TreeNode>();
    N->Val = R.next();
    insert(Root.get(), std::move(N));
  }
  return count(Root.get());
}

//===----------------------------------------------------------------------===//
// small
//===----------------------------------------------------------------------===//

int64_t sieve() {
  constexpr int64_t Size = 8190;
  std::vector<bool> Flags(Size + 1, true);
  int64_t Count = 0;
  for (int64_t I = 0; I <= Size; ++I) {
    if (Flags[static_cast<size_t>(I)]) {
      int64_t Prime = I + I + 3;
      for (int64_t K = I + Prime; K <= Size; K += Prime)
        Flags[static_cast<size_t>(K)] = false;
      ++Count;
    }
  }
  return Count;
}

int64_t sumTo() {
  int64_t S = 0;
  int64_t N = opaque(10000);
  for (int64_t I = 1; I <= N; ++I)
    S += I;
  return opaque(S);
}

int64_t sumFromTo() {
  int64_t S = 0;
  int64_t N = opaque(10250);
  for (int64_t I = opaque(250); I <= N; ++I)
    S += I;
  return opaque(S);
}

int64_t sumToConst() {
  int64_t S = 0;
  int64_t N = opaque(10000);
  for (int64_t I = 1; I <= N; ++I)
    S += opaque(7); // Forces a real loop, as a 1990 compiler would emit.
  return opaque(S);
}

int64_t atAllPut() {
  std::vector<int64_t> V(static_cast<size_t>(opaque(2000)));
  for (int64_t K = 1; K <= 20; ++K)
    for (auto &X : V)
      X = K;
  return opaque(V[0] + V[1999]);
}

//===----------------------------------------------------------------------===//
// richards
//===----------------------------------------------------------------------===//

namespace richards_impl {

constexpr int IdIdle = 0, IdWorker = 1, IdHandlerA = 2, IdHandlerB = 3,
              IdDevA = 4, IdDevB = 5;
constexpr int KindDev = 0, KindWork = 1;
constexpr int DataSize = 4;

struct Packet {
  Packet *Link = nullptr;
  int Id = 0;
  int Kind = 0;
  int64_t A1 = 0;
  int64_t A2[DataSize] = {0};
};

Packet *appendTo(Packet *P, Packet *Queue) {
  P->Link = nullptr;
  if (!Queue)
    return P;
  Packet *Cur = Queue;
  while (Cur->Link)
    Cur = Cur->Link;
  Cur->Link = P;
  return Queue;
}

struct Scheduler;

struct Task {
  virtual ~Task() = default;
  virtual struct Tcb *run(Scheduler &S, Packet *P) = 0;
};

struct Tcb {
  Tcb *Link = nullptr;
  int Id = 0;
  int Pri = 0;
  Packet *Queue = nullptr;
  bool PacketPending = false, TaskWaiting = false, TaskHolding = false;
  Task *TaskObj = nullptr;

  bool heldOrSuspended() const {
    return TaskHolding || (!PacketPending && TaskWaiting);
  }
  void markAsRunnable() {
    PacketPending = true;
    TaskWaiting = false;
  }
  Tcb *checkPriorityAdd(Tcb *Me, Packet *P) {
    if (!Queue) {
      Queue = P;
      PacketPending = true;
      if (Pri > Me->Pri)
        return this;
    } else {
      Queue = appendTo(P, Queue);
    }
    return Me;
  }
};

struct Scheduler {
  int64_t QueueCount = 0, HoldCount = 0;
  Tcb *Blocks[6] = {nullptr};
  Tcb *List = nullptr;
  Tcb *CurrentTcb = nullptr;
  int CurrentId = 0;
  // Owns every allocation of the run (packets circulate between task
  // queues with no terminal owner), so the twin is leak-clean and the
  // tables can run under the LeakSanitizer trees.
  std::vector<std::unique_ptr<Tcb>> OwnedTcbs;
  std::vector<std::unique_ptr<Task>> OwnedTasks;
  std::vector<std::unique_ptr<Packet>> OwnedPackets;

  Packet *makePacket() {
    OwnedPackets.push_back(std::make_unique<Packet>());
    return OwnedPackets.back().get();
  }

  void addTask(int Id, int Pri, Packet *Queue, Task *T, bool Waiting) {
    OwnedTasks.emplace_back(T);
    OwnedTcbs.push_back(std::make_unique<Tcb>());
    Tcb *B = OwnedTcbs.back().get();
    B->Id = Id;
    B->Pri = Pri;
    B->Queue = Queue;
    B->TaskObj = T;
    B->Link = List;
    // A task created with packets waiting starts waiting-with-packet; the
    // idle task starts running (Waiting == false).
    if (Queue)
      B->PacketPending = true;
    B->TaskWaiting = Waiting;
    List = B;
    Blocks[Id] = B;
  }

  void schedule() {
    CurrentTcb = List;
    while (CurrentTcb) {
      if (CurrentTcb->heldOrSuspended()) {
        CurrentTcb = CurrentTcb->Link;
      } else {
        CurrentId = CurrentTcb->Id;
        // Run the task: extract a pending packet if one is queued.
        Packet *P = nullptr;
        Tcb *T = CurrentTcb;
        if (T->PacketPending && !T->TaskHolding && T->Queue) {
          P = T->Queue;
          T->Queue = P->Link;
          T->PacketPending = T->Queue != nullptr;
          T->TaskWaiting = false;
        } else {
          P = nullptr;
        }
        CurrentTcb = T->TaskObj->run(*this, P);
      }
    }
  }

  Tcb *findTcb(int Id) { return Blocks[Id]; }
  Tcb *holdSelf() {
    ++HoldCount;
    CurrentTcb->TaskHolding = true;
    return CurrentTcb->Link;
  }
  Tcb *release(int Id) {
    Tcb *T = findTcb(Id);
    T->TaskHolding = false;
    if (T->Pri > CurrentTcb->Pri)
      return T;
    return CurrentTcb;
  }
  Tcb *waitSelf() {
    CurrentTcb->TaskWaiting = true;
    return CurrentTcb;
  }
  Tcb *queuePacket(Packet *P) {
    Tcb *T = findTcb(P->Id);
    ++QueueCount;
    P->Link = nullptr;
    P->Id = CurrentId;
    return T->checkPriorityAdd(CurrentTcb, P);
  }
};

struct IdleTask : Task {
  int64_t V1 = 1, Count = 0;
  Tcb *run(Scheduler &S, Packet *) override {
    --Count;
    if (Count == 0)
      return S.holdSelf();
    if (V1 % 2 == 0) {
      V1 = V1 / 2;
      return S.release(IdDevA);
    }
    V1 = V1 / 2 + 53256;
    return S.release(IdDevB);
  }
};

struct WorkerTask : Task {
  int Dest = IdHandlerA;
  int64_t Count = 0;
  Tcb *run(Scheduler &S, Packet *P) override {
    if (!P)
      return S.waitSelf();
    Dest = Dest == IdHandlerA ? IdHandlerB : IdHandlerA;
    P->Id = Dest;
    P->A1 = 0;
    for (int I = 0; I < DataSize; ++I) {
      ++Count;
      if (Count > 26)
        Count = 1;
      P->A2[I] = Count;
    }
    return S.queuePacket(P);
  }
};

struct HandlerTask : Task {
  Packet *WorkIn = nullptr, *DeviceIn = nullptr;
  Tcb *run(Scheduler &S, Packet *P) override {
    if (P) {
      if (P->Kind == KindWork)
        WorkIn = appendTo(P, WorkIn);
      else
        DeviceIn = appendTo(P, DeviceIn);
    }
    if (WorkIn) {
      Packet *W = WorkIn;
      int64_t Count = W->A1;
      if (Count >= DataSize) {
        WorkIn = W->Link;
        return S.queuePacket(W);
      }
      if (DeviceIn) {
        Packet *D = DeviceIn;
        DeviceIn = D->Link;
        D->A1 = W->A2[Count];
        W->A1 = Count + 1;
        return S.queuePacket(D);
      }
    }
    return S.waitSelf();
  }
};

struct DeviceTask : Task {
  Packet *Pending = nullptr;
  Tcb *run(Scheduler &S, Packet *P) override {
    if (!P) {
      if (!Pending)
        return S.waitSelf();
      Packet *V = Pending;
      Pending = nullptr;
      return S.queuePacket(V);
    }
    Pending = P;
    return S.holdSelf();
  }
};

} // namespace richards_impl

int64_t richards() {
  using namespace richards_impl;
  Scheduler S;

  auto *Idle = new IdleTask;
  Idle->Count = 1000;
  S.addTask(IdIdle, 0, nullptr, Idle, /*Waiting=*/false);

  Packet *WorkQ = appendTo(S.makePacket(), nullptr);
  WorkQ->Id = IdWorker;
  WorkQ->Kind = KindWork;
  Packet *W2 = S.makePacket();
  W2->Id = IdWorker;
  W2->Kind = KindWork;
  WorkQ = appendTo(W2, WorkQ);
  S.addTask(IdWorker, 1000, WorkQ, new WorkerTask, true);

  auto mkDevQueue = [&](int Id) {
    Packet *Q = nullptr;
    for (int I = 0; I < 3; ++I) {
      Packet *P = S.makePacket();
      P->Id = Id;
      P->Kind = KindDev;
      Q = appendTo(P, Q);
    }
    return Q;
  };
  S.addTask(IdHandlerA, 2000, mkDevQueue(IdDevA), new HandlerTask, true);
  S.addTask(IdHandlerB, 3000, mkDevQueue(IdDevB), new HandlerTask, true);
  S.addTask(IdDevA, 4000, nullptr, new DeviceTask, true);
  S.addTask(IdDevB, 5000, nullptr, new DeviceTask, true);

  S.schedule();
  return S.QueueCount * 100000 + S.HoldCount;
}

} // namespace mself::bench::native
