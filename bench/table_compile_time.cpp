//===-- bench/table_compile_time.cpp - E2: Compile Time ---------------------===//
//
// Reproduces the paper's §6.2 "Compile Time (in seconds of CPU time),
// median / 75%-ile / max" table. The paper's shape: the new SELF compiler
// is one to two orders of magnitude slower than the old one (its iterative
// analysis recompiles loops and splitting re-analyzes copies); puzzle is
// the outlier. The "optimized C" compile-time column is not reproducible
// here (the native baselines are compiled into this binary ahead of time),
// so it is shown as '-'.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "support/stats.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace mself;
using namespace mself::bench;

namespace {

std::vector<const BenchmarkDef *> groupFor(const std::string &Col) {
  std::vector<const BenchmarkDef *> Out;
  for (const BenchmarkDef &B : allBenchmarks()) {
    bool IsPuzzle = B.Name == "puzzle";
    if (Col == "puzzle" && IsPuzzle && B.Group == "stanford")
      Out.push_back(&B);
    else if (Col == "stanford+oo" && !IsPuzzle &&
             (B.Group == "stanford" || B.Group == "stanford-oo"))
      Out.push_back(&B);
    else if (Col == B.Group && !IsPuzzle &&
             (Col == "small" || Col == "richards"))
      Out.push_back(&B);
  }
  return Out;
}

} // namespace

int main() {
  const char *Cols[] = {"small", "stanford+oo", "puzzle", "richards"};
  Policy Policies[] = {Policy::st80(), Policy::oldSelf(), Policy::newSelf()};
  const char *Labels[] = {"ST-80", "old SELF", "new SELF"};

  printf("E2: Compile Time (in seconds of CPU time)\n");
  printf("    median / 75%%-ile / max, per paper section 6.2\n\n");
  printf("%-10s", "");
  for (const char *C : Cols)
    printf(" %-26s", C);
  printf("\n%-10s", "optimized C");
  for (int I = 0; I < 4; ++I)
    printf(" %-26s", "- (compiled ahead of time)");
  printf("\n");

  JsonReport Report("compile_time");
  bool AllOk = true;
  for (int PI = 0; PI < 3; ++PI) {
    printf("%-10s", Labels[PI]);
    for (const char *C : Cols) {
      SampleStats S;
      for (const BenchmarkDef *B : groupFor(C)) {
        SelfRunResult R = runSelf(*B, Policies[PI]);
        if (!R.Ok) {
          fprintf(stderr, "FAIL %s [%s]: %s\n", B->Name.c_str(), Labels[PI],
                  R.Error.c_str());
          AllOk = false;
          continue;
        }
        S.add(R.CompileSeconds);
      }
      if (!S.empty()) {
        std::string Key = std::string(Policies[PI].Name) + "/" + C;
        Report.metric(Key + "/median_ms", S.median() * 1000);
        Report.metric(Key + "/p75_ms", S.percentile(75) * 1000);
        Report.metric(Key + "/max_ms", S.max() * 1000);
      }
      std::string Cell = S.empty() ? std::string("-")
                                   : fixed(S.median() * 1000, 2) + " / " +
                                         fixed(S.percentile(75) * 1000, 2) +
                                         " / " + fixed(S.max() * 1000, 2) +
                                         " ms";
      printf(" %-26s", Cell.c_str());
    }
    printf("\n");
  }
  Report.pass(AllOk);
  Report.write();
  return AllOk ? 0 : 1;
}
