//===-- bench/table_interp.cpp - E12: Execution-engine micro-suite ----------===//
//
// Measures the interpreter's raw dispatch machinery on send-free inner
// loops, where the per-instruction dispatch overhead is the whole story:
// five integer/array kernels that (under the NEW-SELF policy) compile to
// straight-line bytecode with no dynamically-bound sends, run under four
// engine configurations —
//   plain switch    portable switch loop, no fusion, no quickening
//   +fusion         switch loop over superinstruction-fused code
//   +threading      computed-goto dispatch, unfused code
//   full engine     computed goto + fusion + quickening (the default)
// A separate send-bound row isolates opcode quickening under the ST-80
// policy (every send dynamically bound), switch loop, fusion off.
//
// The headline claim this table must support (EXPERIMENTS.md E12): in the
// computed-goto build, the full engine reaches a geometric-mean speedup of
// >= 1.5x over the plain switch baseline on the send-free kernels. The
// program exits nonzero if that (or any checksum) fails. In a switch-only
// build (MINISELF_COMPUTED_GOTO=OFF or an unsupported compiler) the gate
// is waived and only correctness is enforced.
//
// Alongside the printed table the run writes BENCH_interp.json.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "bytecode/bytecode.h"
#include "driver/vm.h"
#include "interp/interp.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

using namespace mself;
using namespace mself::bench;

namespace {

constexpr int64_t kIterations = 300000;

/// A send-free kernel: lobby method definitions plus a native model for the
/// checksum. Each driver takes the iteration count as its sole argument.
struct Kernel {
  const char *Name;
  const char *Defs;     ///< Lobby slot definitions.
  const char *Selector; ///< One-argument driver selector, e.g. "tri:".
  int64_t (*Native)(int64_t N);
};

const Kernel kKernels[] = {
    {"countdown",
     "count: n = ( | i. t <- 0 | i: n. [ i > 0 ] whileTrue: "
     "[ i: i - 1. t: t + 2 ]. t )",
     "count:", [](int64_t N) { return 2 * N; }},
    {"triangle",
     "tri: n = ( | s <- 0 | 1 to: n Do: [ :i | s: s + i ]. s )", "tri:",
     [](int64_t N) { return N * (N + 1) / 2; }},
    {"polyhash",
     "poly: n = ( | a <- 1. i <- 0 | [ i < n ] whileTrue: "
     "[ i: i + 1. a: ((a * 3) + i) % 1048573 ]. a )",
     "poly:",
     [](int64_t N) {
       int64_t A = 1;
       for (int64_t I = 1; I <= N; ++I)
         A = (A * 3 + I) % 1048573;
       return A;
     }},
    {"vecsum",
     "vecsum: n = ( | v. t <- 0 | v: (vectorOfSize: 32). "
     "0 to: 31 Do: [ :j | v at: j Put: j + j ]. "
     "1 to: n Do: [ :i | t: t + (v at: i % 32) ]. t )",
     "vecsum:",
     [](int64_t N) {
       int64_t T = 0;
       for (int64_t I = 1; I <= N; ++I)
         T += 2 * (I % 32);
       return T;
     }},
    {"fibmod",
     "fib: n = ( | a <- 0. b <- 1. i <- 0. t | [ i < n ] whileTrue: "
     "[ i: i + 1. t: (a + b) % 1000003. a: b. b: t ]. a )",
     "fib:",
     [](int64_t N) {
       int64_t A = 0, B = 1;
       for (int64_t I = 0; I < N; ++I) {
         int64_t T = (A + B) % 1000003;
         A = B;
         B = T;
       }
       return A;
     }},
};
constexpr int kNumKernels = int(sizeof(kKernels) / sizeof(kKernels[0]));

struct EngineConfig {
  const char *Name;
  bool Threaded;
  bool Fusion;
  bool Quickening;
};

const EngineConfig kConfigs[] = {
    {"plain switch", false, false, false},
    {"+fusion", false, true, false},
    {"+threading", true, false, false},
    {"full engine", true, true, true},
};
constexpr int kNumConfigs = int(sizeof(kConfigs) / sizeof(kConfigs[0]));

struct Cell {
  bool Ok = false;
  double ItersPerSec = 0;
  double FusedFrac = 0; ///< Superinstructions / all executed instructions.
};

Cell runCell(const Kernel &K, const EngineConfig &C) {
  Policy P = Policy::newSelf();
  P.ThreadedDispatch = C.Threaded;
  P.Superinstructions = C.Fusion;
  P.OpcodeQuickening = C.Quickening;

  Cell Out;
  VirtualMachine VM(P);
  std::string Err;
  int64_t V = 0;
  if (!VM.load(K.Defs, Err)) {
    fprintf(stderr, "FAIL %s/%s load: %s\n", K.Name, C.Name, Err.c_str());
    return Out;
  }
  std::string Expr =
      std::string(K.Selector) + " " + std::to_string(kIterations);
  // Warm-up: compiles everything lazily and validates the checksum.
  if (!VM.evalInt(std::string(K.Selector) + " 100", V, Err) ||
      V != K.Native(100)) {
    fprintf(stderr, "FAIL %s/%s warmup: %s (got %lld)\n", K.Name, C.Name,
            Err.c_str(), (long long)V);
    return Out;
  }

  // Best of three timed samples; each sample re-validates the checksum.
  double BestSecs = 1e18;
  for (int Sample = 0; Sample < 3; ++Sample) {
    VM.interp().resetCounters();
    auto T0 = std::chrono::steady_clock::now();
    if (!VM.evalInt(Expr, V, Err)) {
      fprintf(stderr, "FAIL %s/%s: %s\n", K.Name, C.Name, Err.c_str());
      return Out;
    }
    auto T1 = std::chrono::steady_clock::now();
    if (V != K.Native(kIterations)) {
      fprintf(stderr, "FAIL %s/%s: checksum %lld != %lld\n", K.Name, C.Name,
              (long long)V, (long long)K.Native(kIterations));
      return Out;
    }
    BestSecs = std::min(BestSecs,
                        std::chrono::duration<double>(T1 - T0).count());
  }

  const ExecCounters &Ctr = VM.interp().counters();
  uint64_t Fused = 0;
  for (int O = 0; O < kNumOps; ++O)
    if (isSuperinstruction(static_cast<Op>(O)))
      Fused += Ctr.PerOp[O];
  Out.Ok = true;
  Out.ItersPerSec = BestSecs > 0 ? double(kIterations) / BestSecs : 0;
  Out.FusedFrac =
      Ctr.Instructions ? double(Fused) / double(Ctr.Instructions) : 0;
  return Out;
}

/// The send-bound quickening row: monomorphic method + data-slot sends under
/// ST-80 (nothing statically bound), switch loop, fusion off, so the only
/// difference between the two runs is the quickened opcodes.
double runSendBound(bool Quickening, bool &Ok) {
  Policy P = Policy::st80();
  P.ThreadedDispatch = false;
  P.Superinstructions = false;
  P.OpcodeQuickening = Quickening;

  Ok = false;
  VirtualMachine VM(P);
  std::string Err;
  int64_t V = 0;
  if (!VM.load("h = ( | parent* = lobby. f <- 7. get = ( f ) | ). cur <- 0. "
               "sdrive: n = ( | t <- 0 | 1 to: n Do: "
               "[ :i | t: t + cur get + cur f ]. t )",
               Err) ||
      !VM.evalInt("cur: h. sdrive: 100", V, Err) || V != 1400) {
    fprintf(stderr, "FAIL send-bound warmup: %s (got %lld)\n", Err.c_str(),
            (long long)V);
    return 0;
  }
  std::string Expr = "sdrive: " + std::to_string(kIterations);
  double BestSecs = 1e18;
  for (int Sample = 0; Sample < 3; ++Sample) {
    auto T0 = std::chrono::steady_clock::now();
    if (!VM.evalInt(Expr, V, Err) || V != 14 * kIterations) {
      fprintf(stderr, "FAIL send-bound: %s (got %lld)\n", Err.c_str(),
              (long long)V);
      return 0;
    }
    auto T1 = std::chrono::steady_clock::now();
    BestSecs = std::min(BestSecs,
                        std::chrono::duration<double>(T1 - T0).count());
  }
  if (Quickening && VM.telemetry().Dispatch.QuickSends == 0) {
    fprintf(stderr, "FAIL send-bound: quickening on but no quick sends\n");
    return 0;
  }
  Ok = true;
  return double(kIterations) / BestSecs;
}

} // namespace

int main() {
  printf("E12: Execution-engine micro-suite — send-free kernels, NEW-SELF "
         "policy\n");
  printf("     cell: Miters/s   (computed-goto dispatch %s in this build)\n\n",
         threadedDispatchSupported() ? "available" : "UNAVAILABLE");
  printf("%-13s", "");
  for (const Kernel &K : kKernels)
    printf(" %-10s", K.Name);
  printf("\n");

  JsonReport Report("interp");
  Report.note("threaded_dispatch_supported",
              threadedDispatchSupported() ? "yes" : "no");

  bool AllOk = true;
  Cell Table[kNumConfigs][kNumKernels];
  for (int CI = 0; CI < kNumConfigs; ++CI) {
    printf("%-13s", kConfigs[CI].Name);
    for (int KI = 0; KI < kNumKernels; ++KI) {
      Cell &X = Table[CI][KI];
      X = runCell(kKernels[KI], kConfigs[CI]);
      if (!X.Ok) {
        AllOk = false;
        printf(" %-10s", "-");
        continue;
      }
      printf(" %-10s", fixed(X.ItersPerSec / 1e6, 2).c_str());
      Report.metric(std::string(kKernels[KI].Name) + "/" + kConfigs[CI].Name +
                        "/miters_per_sec",
                    X.ItersPerSec / 1e6);
    }
    printf("\n");
  }

  // How much of the executed stream the fuser replaced (full engine).
  double FusedFrac = 0;
  for (int KI = 0; KI < kNumKernels; ++KI)
    FusedFrac += Table[kNumConfigs - 1][KI].FusedFrac;
  FusedFrac /= kNumKernels;
  printf("\nsuperinstruction share of executed stream (full engine): %s\n",
         pct(FusedFrac).c_str());
  Report.metric("fused_instruction_fraction_full", FusedFrac);

  // Headline: geomean of full-engine vs plain-switch across the kernels.
  double LogSum = 0;
  int LogN = 0;
  for (int KI = 0; KI < kNumKernels; ++KI) {
    const Cell &Full = Table[kNumConfigs - 1][KI];
    const Cell &Plain = Table[0][KI];
    if (Full.Ok && Plain.Ok && Plain.ItersPerSec > 0) {
      LogSum += std::log(Full.ItersPerSec / Plain.ItersPerSec);
      ++LogN;
    }
  }
  double Geomean = LogN ? std::exp(LogSum / LogN) : 0;
  bool GateOn = threadedDispatchSupported();
  bool GeomeanOk = !GateOn || Geomean >= 1.5;
  printf("geomean speedup, full engine vs plain switch: %sx (>= 1.50x "
         "required%s): %s\n",
         fixed(Geomean, 2).c_str(),
         GateOn ? "" : " — waived, switch-only build",
         GeomeanOk ? "ok" : "FAIL");
  Report.metric("geomean_speedup_full_vs_plain", Geomean);

  // Quickening in isolation, on a send-bound loop.
  bool QOffOk = false, QOnOk = false;
  double QOff = runSendBound(false, QOffOk);
  double QOn = runSendBound(true, QOnOk);
  AllOk = AllOk && QOffOk && QOnOk;
  double QSpeedup = (QOffOk && QOnOk && QOff > 0) ? QOn / QOff : 0;
  printf("send-bound loop, quickening off -> on (ST-80, switch loop): "
         "%s -> %s Miters/s (%sx)\n",
         fixed(QOff / 1e6, 2).c_str(), fixed(QOn / 1e6, 2).c_str(),
         fixed(QSpeedup, 2).c_str());
  Report.metric("sendbound_quickening_speedup", QSpeedup);

  bool Pass = AllOk && GeomeanOk;
  Report.pass(Pass);
  Report.write();
  return Pass ? 0 : 1;
}
