//===-- bench/table_bbv.cpp - E19: Lazy basic-block versioning ------------===//
//
// Compares the lazy basic-block-versioning tier against the eager
// extended-splitting optimizer (the "new SELF" configuration) on the
// polymorphic suites — the object-oriented Stanford rewrites, richards,
// and the workload pack — and reports, per suite:
//
//   - dynamic type tests executed in one steady-state run (TestInt/TestMap
//     handler executions; BBV guard-cell reads deliberately do not count —
//     a one-word load is the cheap replacement, not a type test),
//   - compiled code size (BBV functions count only materialized versions
//     and guard cells, never the unexecuted template, so this is the
//     lazy-vs-eager code-volume comparison),
//   - versions materialized, generic-fallback versions, cap fallbacks,
//     and slot-tag guard traffic.
//
// Acceptance gates: every checksum matches the native twin under both
// tiers, the BBV tier executes at least 50% fewer dynamic type tests than
// the eager optimizer across the *polymorphic* suites (richards plus the
// workload pack — the programs whose tests guard genuinely varying
// receiver and value types), and the BBV tier's resident code is smaller
// than the eager tier's across every suite. The stanford-oo rewrites are
// reported as supplementary rows but excluded from the reduction gate:
// their remaining tests are array-element loads and callee-argument
// checks, which cost the same in both tiers (elements are untyped in
// either, and argument types would need interprocedural context
// versioning), so no block-versioning scheme can halve them. Numbers land
// in BENCH_table_bbv.json; gates a run cannot evaluate are recorded in
// its `skipped_gates` array rather than silently passed.
//
//===----------------------------------------------------------------------===//

#include "harness.h"
#include "workloads.h"

#include "driver/vm.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace mself;
using namespace mself::bench;

namespace {

struct TierRun {
  bool Ok = false;
  std::string Error;
  uint64_t TypeTests = 0;   ///< TestInt/TestMap in one steady-state run.
  uint64_t GuardReads = 0;  ///< BBV guard-cell reads (fast + slow).
  size_t CodeBytes = 0;     ///< Resident compiled code after the run.
  uint64_t Versions = 0;    ///< Specialized versions materialized.
  uint64_t Generic = 0;     ///< Generic (empty-context) versions.
  uint64_t CapFallbacks = 0;
  uint64_t Elided = 0;      ///< Type tests proven away at compile time.
  uint64_t TagGuards = 0;   ///< Field loads downgraded to guard cells.
};

/// Loads \p B under \p P, runs once to warm up (materializes BBV versions
/// and triggers lazy compilation), validates the checksum, then measures a
/// second run with counters reset — so the type-test numbers are steady
/// state, not stub-patching transients.
TierRun measure(const BenchmarkDef &B, const Policy &P) {
  TierRun T;
  VirtualMachine VM(P);
  std::string Err;
  if (!VM.load(B.Source, Err)) {
    T.Error = "load: " + Err;
    return T;
  }
  int64_t Got = 0;
  if (!VM.evalInt(B.RunExpr, Got, Err)) {
    T.Error = "warm-up: " + Err;
    return T;
  }
  if (Got != B.Native()) {
    T.Error = "checksum mismatch: got " + std::to_string(Got) + ", want " +
              std::to_string(B.Native());
    return T;
  }
  VM.interp().resetCounters();
  if (!VM.evalInt(B.RunExpr, Got, Err)) {
    T.Error = "measured run: " + Err;
    return T;
  }
  if (Got != B.Native()) {
    T.Error = "checksum drift on the measured run";
    return T;
  }
  const ExecCounters &C = VM.interp().counters();
  T.TypeTests = C.TypeTests;
  T.GuardReads = C.BbvGuardFast + C.BbvGuardSlow;
  T.CodeBytes = VM.code().totalCodeBytes();
  VmTelemetry Tel = VM.telemetry();
  T.Versions = Tel.Bbv.Versions;
  T.Generic = Tel.Bbv.GenericVersions;
  T.CapFallbacks = Tel.Bbv.CapFallbacks;
  T.Elided = Tel.Bbv.TypeTestsElided;
  T.TagGuards = Tel.Bbv.TagGuards;
  T.Ok = true;
  return T;
}

} // namespace

int main() {
  Policy Eager = Policy::newSelf();
  Policy Bbv = Policy::newSelf();
  Bbv.BbvTier = true;
  Bbv.Name = "bbv";

  // The polymorphic gate set: richards and the workload pack, where type
  // tests guard genuinely varying types. The stanford-oo rewrites ride
  // along as supplementary rows (their residual tests — array elements,
  // callee arguments — are tier-independent, see the header).
  const char *GateGroups[] = {"richards", "deltablue", "parser", "peg"};
  const char *ExtraGroups[] = {"stanford-oo"};
  std::vector<const BenchmarkDef *> Suites;
  std::vector<bool> InGate;
  for (const char *G : GateGroups)
    for (const BenchmarkDef *B : benchmarksInGroup(G)) {
      Suites.push_back(B);
      InGate.push_back(true);
    }
  for (const char *G : ExtraGroups)
    for (const BenchmarkDef *B : benchmarksInGroup(G)) {
      Suites.push_back(B);
      InGate.push_back(false);
    }

  printf("E19: Lazy basic-block versioning vs the eager optimizer\n\n");
  printf("%-12s %12s %12s %9s %8s %8s %10s %10s\n", "suite", "tests:eager",
         "tests:bbv", "reduction", "guards", "versions", "code:eager",
         "code:bbv");

  JsonReport Report("table_bbv");
  bool AllOk = true;
  uint64_t TotalEager = 0, TotalBbv = 0;
  size_t CodeEager = 0, CodeBbv = 0;
  uint64_t TotalVersions = 0, TotalGeneric = 0, TotalCap = 0;

  for (size_t SI = 0; SI < Suites.size(); ++SI) {
    const BenchmarkDef *B = Suites[SI];
    TierRun E = measure(*B, Eager);
    TierRun V = measure(*B, Bbv);
    if (!E.Ok || !V.Ok) {
      fprintf(stderr, "FAIL %s: %s\n", B->Name.c_str(),
              (!E.Ok ? "eager: " + E.Error : "bbv: " + V.Error).c_str());
      AllOk = false;
      continue;
    }
    if (InGate[SI]) {
      TotalEager += E.TypeTests;
      TotalBbv += V.TypeTests;
    }
    CodeEager += E.CodeBytes;
    CodeBbv += V.CodeBytes;
    TotalVersions += V.Versions;
    TotalGeneric += V.Generic;
    TotalCap += V.CapFallbacks;
    double Red = E.TypeTests
                     ? 1.0 - double(V.TypeTests) / double(E.TypeTests)
                     : 0.0;
    std::string Key = B->Name;
    Report.metric(Key + "/type_tests_eager", (double)E.TypeTests);
    Report.metric(Key + "/type_tests_bbv", (double)V.TypeTests);
    Report.metric(Key + "/type_test_reduction", Red);
    Report.metric(Key + "/guard_reads", (double)V.GuardReads);
    Report.metric(Key + "/code_bytes_eager", (double)E.CodeBytes);
    Report.metric(Key + "/code_bytes_bbv", (double)V.CodeBytes);
    Report.metric(Key + "/versions", (double)V.Versions);
    Report.metric(Key + "/generic_versions", (double)V.Generic);
    Report.metric(Key + "/cap_fallbacks", (double)V.CapFallbacks);
    Report.metric(Key + "/tests_elided_static", (double)V.Elided);
    Report.metric(Key + "/tag_guards_static", (double)V.TagGuards);
    printf("%-12s %12llu %12llu %8.1f%% %8llu %8llu %10zu %10zu\n",
           (B->Name + (InGate[SI] ? "" : " +")).c_str(),
           (unsigned long long)E.TypeTests, (unsigned long long)V.TypeTests,
           Red * 100, (unsigned long long)V.GuardReads,
           (unsigned long long)V.Versions, E.CodeBytes, V.CodeBytes);
  }

  printf("\n(+ = supplementary row, outside the type-test reduction gate)\n");

  // Gate 1: ≥50% dynamic type-test reduction across the polymorphic gate
  // set. If the eager tier executed no type tests at all there is nothing
  // to reduce — record the gate as skipped instead of vacuously passed.
  double TotalRed =
      TotalEager ? 1.0 - double(TotalBbv) / double(TotalEager) : 0.0;
  Report.metric("summary/polymorphic_type_tests_eager", (double)TotalEager);
  Report.metric("summary/polymorphic_type_tests_bbv", (double)TotalBbv);
  Report.metric("summary/polymorphic_type_test_reduction", TotalRed);
  if (TotalEager == 0) {
    Report.skipGate("type_test_reduction_50",
                    "eager tier executed no dynamic type tests");
    printf("type-test gate: skipped (eager tier executed none)\n");
  } else if (TotalRed < 0.50) {
    fprintf(stderr,
            "FAIL: dynamic type-test reduction %.1f%% on the polymorphic "
            "suites is below the 50%% gate (%llu -> %llu)\n",
            TotalRed * 100, (unsigned long long)TotalEager,
            (unsigned long long)TotalBbv);
    AllOk = false;
  } else {
    printf("type-test gate: pass (%.1f%% reduction on the polymorphic "
           "suites, %llu -> %llu)\n",
           TotalRed * 100, (unsigned long long)TotalEager,
           (unsigned long long)TotalBbv);
  }

  // Gate 2: lazily materialized versions stay below the eager splitter's
  // code volume — the point of compiling blocks only when executed.
  Report.metric("summary/code_bytes_eager", (double)CodeEager);
  Report.metric("summary/code_bytes_bbv", (double)CodeBbv);
  if (TotalVersions + TotalGeneric == 0) {
    Report.skipGate("code_size_below_eager",
                    "no basic-block versions materialized");
    printf("code-size gate: skipped (no versions materialized)\n");
  } else if (CodeBbv >= CodeEager) {
    fprintf(stderr,
            "FAIL: BBV resident code (%zu bytes) is not below the eager "
            "tier's (%zu bytes)\n",
            CodeBbv, CodeEager);
    AllOk = false;
  } else {
    printf("code-size gate: pass (bbv %zu < eager %zu bytes)\n", CodeBbv,
           CodeEager);
  }

  Report.metric("summary/versions", (double)TotalVersions);
  Report.metric("summary/generic_versions", (double)TotalGeneric);
  Report.metric("summary/cap_fallbacks", (double)TotalCap);

  printf("versions materialized: %llu specialized, %llu generic, "
         "%llu cap fallbacks\n",
         (unsigned long long)TotalVersions, (unsigned long long)TotalGeneric,
         (unsigned long long)TotalCap);
  printf("All checksums validated against the native implementations: %s\n",
         AllOk ? "yes" : "NO (see errors above)");
  Report.pass(AllOk);
  Report.write();
  return AllOk ? 0 : 1;
}
