//===-- bench/richards_source.h - The richards program ----------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single shared definition of the richards operating-system simulation
/// in mini-SELF (the paper's largest benchmark, §6). Every consumer — the
/// benchmark registry, examples, tests — takes the program from here, so
/// the famous polymorphic `runWith:In:` site is the *same* site everywhere
/// and measurements across tools stay comparable.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_BENCH_RICHARDS_SOURCE_H
#define MINISELF_BENCH_RICHARDS_SOURCE_H

namespace mself::bench {

/// \returns the mini-SELF source of the richards simulation. The program's
/// checksum expression is `richardsBench run`.
const char *richardsSource();

} // namespace mself::bench

#endif // MINISELF_BENCH_RICHARDS_SOURCE_H
