//===-- bench/workloads.cpp - The workload scenario pack --------------------===//
//
// The mini-SELF sources of the workload suites. Three shapes the Stanford
// programs do not cover:
//
//  * deltablue — the classic incremental constraint solver: four constraint
//    kinds behind one protocol (satisfy, chooseMethod:, recalculate,
//    execute, ...), so nearly every planner send is polymorphic. The
//    checksum runs the chain and projection tests and folds the solved
//    variable values.
//  * json / sexpr — recursive-descent parsers over strings: character
//    probing via the _StrAt: primitive, substring allocation, and one
//    heap node per grammar production, then a polymorphic hash/eval walk
//    over the tree.
//  * lexer / peg — a hand-written scanner and a combinator PEG matcher
//    whose grammar is a web of a dozen distinct rule-object kinds, all
//    answering match:At:Len:. The combinator call sites see most of those
//    kinds, so dispatch there is megamorphic — the regime where inline
//    caches stop helping and the global lookup cache carries the load.
//
// Every suite is paired with a C++ twin in native_workloads.cpp computing
// the same checksum from the same input (workload_inputs.h); the
// differential harness runs both under the whole policy matrix.
//
//===----------------------------------------------------------------------===//

#include "workloads.h"

#include "native.h"
#include "workload_inputs.h"

namespace mself::bench {

namespace {

/// A growable ordered collection, used by the solver and the parsers.
/// Everything here is ordinary user code the optimizer must inline through.
const char *kWlList = R"SELF(
wlList = ( | parent* = lobby. elems. n <- 0.
  init = ( elems: (vectorOfSize: 8). n: 0. self ).
  size = ( n ).
  isEmpty = ( n == 0 ).
  at: i = ( elems at: i ).
  add: x = ( | bigger |
    n == elems size ifTrue: [
      bigger: (vectorOfSize: 2 * elems size).
      0 upTo: n Do: [ :i | bigger at: i Put: (elems at: i) ].
      elems: bigger ].
    elems at: n Put: x.
    n: n + 1.
    self ).
  removeLast = ( n: n - 1. elems at: n ).
  remove: x = ( | j |
    j: 0.
    0 upTo: n Do: [ :i |
      (elems at: i) == x
        ifFalse: [ elems at: j Put: (elems at: i). j: j + 1 ] ].
    n: j.
    self ).
  do: blk = ( 0 upTo: n Do: [ :i | blk value: (elems at: i) ]. self ).
| ).
)SELF";

//===----------------------------------------------------------------------===//
// deltablue
//===----------------------------------------------------------------------===//

// Strengths are ints: 0 required .. 6 weakest (larger = weaker), so
// "stronger" is < and "weakest of" is max:. Binary constraint direction:
// 0 none, 1 forward (v1 -> v2), 2 backward.
const char *kDeltaBlue = R"SELF(
dbVariable = ( | parent* = lobby.
  value <- 0. constraints. determinedBy. mark <- 0. walkStrength <- 6.
  stay <- true.
  initValue: v = ( constraints: wlList clone init. value: v. self ).
  addConstraint: c = ( constraints add: c. self ).
  removeConstraint: c = (
    constraints remove: c.
    determinedBy == c ifTrue: [ determinedBy: nil ].
    self ).
| ).

dbConstraintTraits = ( | parent* = lobby.
  isInput = ( false ).
  addToPlanner: planner = ( addToGraph. planner incrementalAdd: self. self ).
  destroyIn: planner = (
    isSatisfied
      ifTrue: [ planner incrementalRemove: self ]
      False: [ removeFromGraph ].
    self ).
  satisfy: mark Planner: planner = ( | out. overridden |
    chooseMethod: mark.
    isSatisfied
      ifTrue: [
        markInputs: mark.
        out: output.
        overridden: out determinedBy.
        overridden notNil ifTrue: [ overridden markUnsatisfied ].
        out determinedBy: self.
        (planner addPropagate: self Mark: mark)
          ifFalse: [ error: 'deltablue: cycle' ].
        out mark: mark.
        overridden ]
      False: [
        strength == 0 ifTrue: [ error: 'deltablue: required unsatisfiable' ].
        nil ] ).
| ).

dbUnaryTraits = ( | parent* = dbConstraintTraits.
  initVar: v Strength: s Planner: planner = (
    myOutput: v.
    strength: s.
    addToPlanner: planner.
    self ).
  addToGraph = ( myOutput addConstraint: self. satisfiedFlag: false. self ).
  removeFromGraph = (
    myOutput notNil ifTrue: [ myOutput removeConstraint: self ].
    satisfiedFlag: false.
    self ).
  chooseMethod: mark = (
    satisfiedFlag: ((myOutput mark != mark)
      and: [ strength < myOutput walkStrength ]).
    self ).
  isSatisfied = ( satisfiedFlag ).
  markInputs: mark = ( self ).
  inputsKnown: mark = ( true ).
  output = ( myOutput ).
  markUnsatisfied = ( satisfiedFlag: false. self ).
  recalculate = (
    myOutput walkStrength: strength.
    myOutput stay: isInput not.
    myOutput stay ifTrue: [ execute ].
    self ).
| ).

dbStay = ( | parent* = dbUnaryTraits. myOutput. strength <- 4. satisfiedFlag.
  execute = ( self ).
| ).

dbEdit = ( | parent* = dbUnaryTraits. myOutput. strength <- 2. satisfiedFlag.
  isInput = ( true ).
  execute = ( self ).
| ).

dbBinaryTraits = ( | parent* = dbConstraintTraits.
  addToGraph = (
    v1 addConstraint: self.
    v2 addConstraint: self.
    direction: 0.
    self ).
  removeFromGraph = (
    v1 notNil ifTrue: [ v1 removeConstraint: self ].
    v2 notNil ifTrue: [ v2 removeConstraint: self ].
    direction: 0.
    self ).
  isSatisfied = ( direction != 0 ).
  markUnsatisfied = ( direction: 0. self ).
  input = ( direction == 1 ifTrue: [ v1 ] False: [ v2 ] ).
  output = ( direction == 1 ifTrue: [ v2 ] False: [ v1 ] ).
  markInputs: mark = ( input mark: mark. self ).
  inputsKnown: mark = ( | i |
    i: input.
    (i mark == mark) or: [ (i stay) or: [ i determinedBy isNil ] ] ).
  chooseMethod: mark = (
    v1 mark == mark
      ifTrue: [
        direction: (((v2 mark != mark) and: [ strength < v2 walkStrength ])
          ifTrue: [ 1 ] False: [ 0 ]) ]
      False: [
        v2 mark == mark
          ifTrue: [
            direction: (((v1 mark != mark)
                and: [ strength < v1 walkStrength ])
              ifTrue: [ 2 ] False: [ 0 ]) ]
          False: [
            v1 walkStrength > v2 walkStrength
              ifTrue: [
                direction: ((strength < v1 walkStrength)
                  ifTrue: [ 2 ] False: [ 0 ]) ]
              False: [
                direction: ((strength < v2 walkStrength)
                  ifTrue: [ 1 ] False: [ 0 ]) ] ] ].
    self ).
  recalculate = ( | i. o |
    i: input.
    o: output.
    o walkStrength: (strength max: i walkStrength).
    o stay: i stay.
    o stay ifTrue: [ execute ].
    self ).
| ).

dbEq = ( | parent* = dbBinaryTraits. v1. v2. strength <- 0. direction <- 0.
  initV1: x V2: y Strength: s Planner: planner = (
    v1: x. v2: y. strength: s.
    addToPlanner: planner.
    self ).
  execute = ( output value: input value. self ).
| ).

dbScale = ( | parent* = dbBinaryTraits.
  v1. v2. scaleVar. offsetVar. strength <- 0. direction <- 0.
  initSrc: x Scale: sc Offset: off Dst: y Strength: s Planner: planner = (
    v1: x. v2: y. scaleVar: sc. offsetVar: off. strength: s.
    addToPlanner: planner.
    self ).
  addToGraph = (
    v1 addConstraint: self.
    v2 addConstraint: self.
    scaleVar addConstraint: self.
    offsetVar addConstraint: self.
    direction: 0.
    self ).
  removeFromGraph = (
    v1 notNil ifTrue: [ v1 removeConstraint: self ].
    v2 notNil ifTrue: [ v2 removeConstraint: self ].
    scaleVar notNil ifTrue: [ scaleVar removeConstraint: self ].
    offsetVar notNil ifTrue: [ offsetVar removeConstraint: self ].
    direction: 0.
    self ).
  markInputs: mark = (
    input mark: mark.
    scaleVar mark: mark.
    offsetVar mark: mark.
    self ).
  recalculate = ( | i. o |
    i: input.
    o: output.
    o walkStrength: (strength max: i walkStrength).
    o stay: ((i stay) and: [ (scaleVar stay) and: [ offsetVar stay ] ]).
    o stay ifTrue: [ execute ].
    self ).
  execute = (
    direction == 1
      ifTrue: [ v2 value: (v1 value * scaleVar value) + offsetVar value ]
      False: [ v1 value: (v2 value - offsetVar value) / scaleVar value ].
    self ).
| ).

dbPlanner = ( | parent* = lobby. currentMark <- 0.
  init = ( currentMark: 0. self ).
  newMark = ( currentMark: currentMark + 1. currentMark ).
  incrementalAdd: c = ( | mark. overridden |
    mark: newMark.
    overridden: (c satisfy: mark Planner: self).
    [ overridden notNil ] whileTrue: [
      overridden: (overridden satisfy: mark Planner: self) ].
    self ).
  incrementalRemove: c = ( | out. unsatisfied |
    out: c output.
    c markUnsatisfied.
    c removeFromGraph.
    unsatisfied: (removePropagateFrom: out).
    0 to: 6 Do: [ :s |
      unsatisfied do: [ :u | u strength == s ifTrue: [ incrementalAdd: u ] ] ].
    self ).
  addPropagate: c Mark: mark = ( | todo. d |
    todo: wlList clone init.
    todo add: c.
    [ todo isEmpty ] whileFalse: [
      d: todo removeLast.
      d output mark == mark ifTrue: [ ^ false ].
      d recalculate.
      addConstraintsConsuming: d output To: todo ].
    true ).
  removePropagateFrom: out = ( | unsatisfied. todo. v. determining |
    unsatisfied: wlList clone init.
    out determinedBy: nil.
    out walkStrength: 6.
    out stay: true.
    todo: wlList clone init.
    todo add: out.
    [ todo isEmpty ] whileFalse: [
      v: todo removeLast.
      v constraints do: [ :c |
        c isSatisfied ifFalse: [ unsatisfied add: c ] ].
      determining: v determinedBy.
      v constraints do: [ :c |
        ((c != determining) and: [ c isSatisfied ]) ifTrue: [
          c recalculate.
          todo add: c output ] ] ].
    unsatisfied ).
  addConstraintsConsuming: v To: coll = ( | determining |
    determining: v determinedBy.
    v constraints do: [ :c |
      ((c != determining) and: [ c isSatisfied ]) ifTrue: [ coll add: c ] ].
    self ).
  makePlan: sources = ( | mark. plan. todo. c |
    mark: newMark.
    plan: wlList clone init.
    todo: sources.
    [ todo isEmpty ] whileFalse: [
      c: todo removeLast.
      ((c output mark != mark) and: [ c inputsKnown: mark ]) ifTrue: [
        plan add: c.
        c output mark: mark.
        addConstraintsConsuming: c output To: todo ] ].
    plan ).
  extractPlanFrom: constraintsL = ( | sources |
    sources: wlList clone init.
    constraintsL do: [ :c |
      ((c isInput) and: [ c isSatisfied ]) ifTrue: [ sources add: c ] ].
    makePlan: sources ).
| ).

deltablueBench = ( | parent* = lobby. planner.
  change: v To: newValue = ( | edit. editList. plan |
    edit: (dbEdit clone initVar: v Strength: 2 Planner: planner).
    editList: wlList clone init.
    editList add: edit.
    plan: (planner extractPlanFrom: editList).
    10 timesRepeat: [
      v value: newValue.
      plan do: [ :c | c execute ] ].
    edit destroyIn: planner.
    self ).
  chainTest: n = ( | vars. editC. plan. sources. chk |
    planner: dbPlanner clone init.
    vars: (vectorOfSize: n + 1).
    0 to: n Do: [ :i | vars at: i Put: (dbVariable clone initValue: 0) ].
    0 upTo: n Do: [ :i |
      dbEq clone initV1: (vars at: i) V2: (vars at: i + 1)
        Strength: 0 Planner: planner ].
    dbStay clone initVar: (vars at: n) Strength: 3 Planner: planner.
    editC: (dbEdit clone initVar: (vars at: 0) Strength: 2 Planner: planner).
    sources: wlList clone init.
    sources add: editC.
    plan: (planner extractPlanFrom: sources).
    chk: 0.
    1 to: 20 Do: [ :i |
      (vars at: 0) value: i.
      plan do: [ :c | c execute ].
      (vars at: n) value != i ifTrue: [ error: 'deltablue: chain broken' ].
      chk: ((chk * 31) + (vars at: n) value) % 1000003 ].
    editC destroyIn: planner.
    chk ).
  projectionTest: n = ( | scale. offset. src. dst. dests. chk |
    planner: dbPlanner clone init.
    dests: wlList clone init.
    scale: (dbVariable clone initValue: 10).
    offset: (dbVariable clone initValue: 1000).
    0 upTo: n Do: [ :i |
      src: (dbVariable clone initValue: i).
      dst: (dbVariable clone initValue: i).
      dests add: dst.
      dbStay clone initVar: src Strength: 4 Planner: planner.
      dbScale clone initSrc: src Scale: scale Offset: offset Dst: dst
        Strength: 0 Planner: planner ].
    change: src To: 17.
    chk: dst value.
    change: dst To: 1050.
    chk: ((chk * 31) + src value) % 1000003.
    change: scale To: 5.
    dests do: [ :d | chk: ((chk * 31) + d value) % 1000003 ].
    change: offset To: 2000.
    dests do: [ :d | chk: ((chk * 31) + d value) % 1000003 ].
    chk ).
  run = ( ((chainTest: 8) + (projectionTest: 8)) % 1000003 ).
| ).
)SELF";

//===----------------------------------------------------------------------===//
// json
//===----------------------------------------------------------------------===//

// One heap node per JSON value; `hash` is a polymorphic fold over the tree.
const char *kJsonPart1 = R"SELF(
jsNum = ( | parent* = lobby. v <- 0.
  hash = ( ((2 * v) + 1) % 1000003 ).
| ).
jsStr = ( | parent* = lobby. s.
  hash = ( | h |
    h: 0.
    0 upTo: s size Do: [ :i | h: ((h * 31) + (s at: i)) % 1000003 ].
    h ).
| ).
jsTrueNode = ( | parent* = lobby. hash = ( 13 ). | ).
jsFalseNode = ( | parent* = lobby. hash = ( 11 ). | ).
jsNullNode = ( | parent* = lobby. hash = ( 7 ). | ).
jsArr = ( | parent* = lobby. items.
  hash = ( | h |
    h: 17.
    items do: [ :x | h: ((h * 33) + x hash) % 1000003 ].
    h ).
| ).
jsPair = ( | parent* = lobby. k. v. | ).
jsObj = ( | parent* = lobby. pairs.
  hash = ( | h |
    h: 19.
    pairs do: [ :p | h: (((h * 37) + p k hash) + p v hash) % 1000003 ].
    h ).
| ).

jsonParserProto = ( | parent* = lobby. text. pos <- 0.
  initText: t = ( text: t. pos: 0. self ).
  peek = ( pos < text size ifTrue: [ text at: pos ] False: [ 0 ] ).
  advance = ( pos: pos + 1. self ).
  skipWs = (
    [ (pos < text size) and: [ (text at: pos) == 32 ] ]
      whileTrue: [ pos: pos + 1 ].
    self ).
  parseStringNode = ( | start. node |
    skipWs.
    advance.
    start: pos.
    [ (text at: pos) != 34 ] whileTrue: [ pos: pos + 1 ].
    node: jsStr clone.
    node s: (text copyFrom: start To: pos).
    advance.
    node ).
  parseNumber = ( | v. node |
    v: 0.
    [ (pos < text size) and: [ ((text at: pos) >= 48)
        and: [ (text at: pos) <= 57 ] ] ] whileTrue: [
      v: ((v * 10) + ((text at: pos) - 48)).
      pos: pos + 1 ].
    node: jsNum clone.
    node v: v.
    node ).
  parseArray = ( | node. itemsL. done |
    advance.
    skipWs.
    node: jsArr clone.
    itemsL: wlList clone init.
    node items: itemsL.
    peek == 93
      ifTrue: [ advance ]
      False: [
        done: false.
        [ done ] whileFalse: [
          itemsL add: parseValue.
          skipWs.
          peek == 44
            ifTrue: [ advance. skipWs ]
            False: [ advance. done: true ] ] ].
    node ).
  parseObject = ( | node. pairsL. pr. done |
    advance.
    skipWs.
    node: jsObj clone.
    pairsL: wlList clone init.
    node pairs: pairsL.
    peek == 125
      ifTrue: [ advance ]
      False: [
        done: false.
        [ done ] whileFalse: [
          pr: jsPair clone.
          pr k: parseStringNode.
          skipWs.
          advance.
          pr v: parseValue.
          pairsL add: pr.
          skipWs.
          peek == 44
            ifTrue: [ advance. skipWs ]
            False: [ advance. done: true ] ] ].
    node ).
  parseValue = ( | c |
    skipWs.
    c: peek.
    c == 123 ifTrue: [ ^ parseObject ].
    c == 91 ifTrue: [ ^ parseArray ].
    c == 34 ifTrue: [ ^ parseStringNode ].
    ((c >= 48) and: [ c <= 57 ]) ifTrue: [ ^ parseNumber ].
    c == 116 ifTrue: [ pos: pos + 4. ^ jsTrueNode ].
    c == 102 ifTrue: [ pos: pos + 5. ^ jsFalseNode ].
    c == 110 ifTrue: [ pos: pos + 4. ^ jsNullNode ].
    error: 'json: unexpected character' ).
| ).

jsonBench = ( | parent* = lobby.
  doc = ')SELF";

const char *kJsonPart2 = R"SELF('.
  run = ( | total. p |
    total: 0.
    1 to: 4 Do: [ :k |
      p: (jsonParserProto clone initText: doc).
      total: ((total * 7) + p parseValue hash) % 1000003 ].
    total ).
| ).
)SELF";

//===----------------------------------------------------------------------===//
// sexpr
//===----------------------------------------------------------------------===//

const char *kSexprPart1 = R"SELF(
seNum = ( | parent* = lobby. v <- 0.
  eval = ( v ).
  shash = ( ((2 * v) + 1) % 1000003 ).
| ).
seSym = ( | parent* = lobby. name.
  eval = ( error: 'sexpr: bare symbol has no value' ).
  shash = ( | h |
    h: 5.
    0 upTo: name size Do: [ :i | h: ((h * 31) + (name at: i)) % 1000003 ].
    h ).
| ).
seList = ( | parent* = lobby. items.
  eval = ( | op. acc |
    op: (items at: 0) name.
    (op sameAs: '+') ifTrue: [
      acc: 0.
      1 upTo: items size Do: [ :i | acc: (acc + (items at: i) eval) % 1000003 ].
      ^ acc ].
    (op sameAs: '*') ifTrue: [
      acc: 1.
      1 upTo: items size Do: [ :i | acc: (acc * (items at: i) eval) % 1000003 ].
      ^ acc ].
    (op sameAs: '-') ifTrue: [ | a. b |
      a: (items at: 1) eval.
      b: (items at: 2) eval.
      ^ a > b ifTrue: [ a - b ] False: [ 0 ] ].
    (op sameAs: 'min') ifTrue: [
      acc: (items at: 1) eval.
      2 upTo: items size Do: [ :i | acc: (acc min: (items at: i) eval) ].
      ^ acc ].
    (op sameAs: 'max') ifTrue: [
      acc: (items at: 1) eval.
      2 upTo: items size Do: [ :i | acc: (acc max: (items at: i) eval) ].
      ^ acc ].
    error: 'sexpr: unknown operator' ).
  shash = ( | h |
    h: 23.
    items do: [ :x | h: ((h * 29) + x shash) % 1000003 ].
    h ).
| ).

sexprParserProto = ( | parent* = lobby. text. pos <- 0.
  initText: t = ( text: t. pos: 0. self ).
  peek = ( pos < text size ifTrue: [ text at: pos ] False: [ 0 ] ).
  skipWs = (
    [ (pos < text size) and: [ (text at: pos) == 32 ] ]
      whileTrue: [ pos: pos + 1 ].
    self ).
  parseNumber = ( | v. node |
    v: 0.
    [ (pos < text size) and: [ ((text at: pos) >= 48)
        and: [ (text at: pos) <= 57 ] ] ] whileTrue: [
      v: ((v * 10) + ((text at: pos) - 48)).
      pos: pos + 1 ].
    node: seNum clone.
    node v: v.
    node ).
  parseSymbol = ( | start. node |
    start: pos.
    [ (pos < text size) and: [ ((text at: pos) != 32)
        and: [ ((text at: pos) != 40) and: [ (text at: pos) != 41 ] ] ] ]
      whileTrue: [ pos: pos + 1 ].
    node: seSym clone.
    node name: (text copyFrom: start To: pos).
    node ).
  parseList = ( | node. itemsL |
    pos: pos + 1.
    node: seList clone.
    itemsL: wlList clone init.
    node items: itemsL.
    skipWs.
    [ peek != 41 ] whileTrue: [ itemsL add: parseItem. skipWs ].
    pos: pos + 1.
    node ).
  parseItem = ( | c |
    skipWs.
    c: peek.
    c == 40 ifTrue: [ ^ parseList ].
    ((c >= 48) and: [ c <= 57 ]) ifTrue: [ ^ parseNumber ].
    parseSymbol ).
| ).

sexprBench = ( | parent* = lobby.
  doc = ')SELF";

const char *kSexprPart2 = R"SELF('.
  run = ( | total. p. root |
    total: 0.
    1 to: 4 Do: [ :k |
      p: (sexprParserProto clone initText: doc).
      root: p parseItem.
      total: (((total * 7) + root eval) + root shash) % 1000003 ].
    total ).
| ).
)SELF";

//===----------------------------------------------------------------------===//
// lexer
//===----------------------------------------------------------------------===//

// Token kinds: 1..6 keywords (if then else while do end), 10 identifier,
// 11 number, 12 ":=", 13 single-char operator.
const char *kLexerPart1 = R"SELF(
lexBench = ( | parent* = lobby. kws.
  doc = ')SELF";

const char *kLexerPart2 = R"SELF('.
  initKws = (
    kws: (vectorOfSize: 6).
    kws at: 0 Put: 'if'.
    kws at: 1 Put: 'then'.
    kws at: 2 Put: 'else'.
    kws at: 3 Put: 'while'.
    kws at: 4 Put: 'do'.
    kws at: 5 Put: 'end'.
    self ).
  strHash: s = ( | h |
    h: 0.
    0 upTo: s size Do: [ :i | h: ((h * 31) + (s at: i)) % 1000003 ].
    h ).
  scan = ( | pos. n. c. chk. start. lexeme. kind. val. kw |
    pos: 0.
    n: doc size.
    chk: 0.
    [ pos < n ] whileTrue: [
      c: (doc at: pos).
      c == 32
        ifTrue: [ pos: pos + 1 ]
        False: [
          ((c >= 97) and: [ c <= 122 ])
            ifTrue: [
              start: pos.
              [ (pos < n) and: [ (((doc at: pos) >= 97)
                  and: [ (doc at: pos) <= 122 ])
                  or: [ ((doc at: pos) >= 48)
                    and: [ (doc at: pos) <= 57 ] ] ] ]
                whileTrue: [ pos: pos + 1 ].
              lexeme: (doc copyFrom: start To: pos).
              kind: 10.
              val: 0.
              kw: 0.
              [ kw < 6 ] whileTrue: [
                (lexeme sameAs: (kws at: kw))
                  ifTrue: [ kind: 1 + kw. val: kw. kw: 6 ]
                  False: [ kw: kw + 1 ] ].
              kind == 10 ifTrue: [ val: (strHash: lexeme) ] ]
            False: [
              ((c >= 48) and: [ c <= 57 ])
                ifTrue: [
                  kind: 11.
                  val: 0.
                  [ (pos < n) and: [ ((doc at: pos) >= 48)
                      and: [ (doc at: pos) <= 57 ] ] ] whileTrue: [
                    val: ((val * 10) + ((doc at: pos) - 48)).
                    pos: pos + 1 ] ]
                False: [
                  ((c == 58) and: [ ((pos + 1) < n)
                      and: [ (doc at: pos + 1) == 61 ] ])
                    ifTrue: [ kind: 12. val: 0. pos: pos + 2 ]
                    False: [ kind: 13. val: c. pos: pos + 1 ] ] ].
          chk: ((chk * 31) + ((kind * 7) + val)) % 1000003 ] ].
    chk ).
  run = ( | total |
    initKws.
    total: 0.
    1 to: 3 Do: [ :k | total: ((total * 7) + scan) % 1000003 ].
    total ).
| ).
)SELF";

//===----------------------------------------------------------------------===//
// peg
//===----------------------------------------------------------------------===//

// Thirteen rule-object kinds behind one match:At:Len: protocol. The
// combinator bodies (seq/choice/star/...) dispatch match:At:Len: on child
// rules, and the grammar is arranged so that every such site sees at least
// five distinct rule kinds — past the default PIC arity, so the hot child
// dispatches run in the megamorphic regime the suite exists to exercise
// (the table_workloads gate asserts a >=30% megamorphic send share).
// Leaf rules count no statistics so megamorphic dispatch dominates their
// cost; composite rules tick pegStats, which feeds the checksum with the
// visit count.
const char *kPegPart1 = R"SELF(
pegStats = ( | parent* = lobby. attempts <- 0.
  tick = ( attempts: attempts + 1. self ).
  resetCounts = ( attempts: 0. self ).
| ).

pegChar = ( | parent* = lobby. ch <- 0.
  match: t At: p Len: n = (
    ((p < n) and: [ (t at: p) == ch ]) ifTrue: [ p + 1 ] False: [ nil ] ).
| ).
pegRange = ( | parent* = lobby. lo <- 0. hi <- 0.
  match: t At: p Len: n = (
    ((p < n) and: [ ((t at: p) >= lo) and: [ (t at: p) <= hi ] ])
      ifTrue: [ p + 1 ] False: [ nil ] ).
| ).
pegAny = ( | parent* = lobby.
  match: t At: p Len: n = ( p < n ifTrue: [ p + 1 ] False: [ nil ] ).
| ).
pegLit = ( | parent* = lobby. lit.
  match: t At: p Len: n = ( | m |
    m: lit size.
    (p + m) <= n
      ifTrue: [
        0 upTo: m Do: [ :i |
          (t at: p + i) != (lit at: i) ifTrue: [ ^ nil ] ].
        p + m ]
      False: [ nil ] ).
| ).
pegSeq2 = ( | parent* = lobby. a. b.
  match: t At: p Len: n = ( | m |
    pegStats tick.
    m: (a match: t At: p Len: n).
    m isNil ifTrue: [ ^ nil ].
    b match: t At: m Len: n ).
| ).
pegSeq3 = ( | parent* = lobby. a. b. c.
  match: t At: p Len: n = ( | m |
    pegStats tick.
    m: (a match: t At: p Len: n).
    m isNil ifTrue: [ ^ nil ].
    m: (b match: t At: m Len: n).
    m isNil ifTrue: [ ^ nil ].
    c match: t At: m Len: n ).
| ).
pegChoice2 = ( | parent* = lobby. a. b.
  match: t At: p Len: n = ( | m |
    pegStats tick.
    m: (a match: t At: p Len: n).
    m notNil ifTrue: [ ^ m ].
    b match: t At: p Len: n ).
| ).
pegChoice3 = ( | parent* = lobby. a. b. c.
  match: t At: p Len: n = ( | m |
    pegStats tick.
    m: (a match: t At: p Len: n).
    m notNil ifTrue: [ ^ m ].
    m: (b match: t At: p Len: n).
    m notNil ifTrue: [ ^ m ].
    c match: t At: p Len: n ).
| ).
pegStar = ( | parent* = lobby. sub.
  match: t At: p Len: n = ( | cur. m |
    pegStats tick.
    cur: p.
    [ m: (sub match: t At: cur Len: n). m notNil ]
      whileTrue: [ cur: m ].
    cur ).
| ).
pegPlus = ( | parent* = lobby. sub.
  match: t At: p Len: n = ( | cur. m |
    pegStats tick.
    m: (sub match: t At: p Len: n).
    m isNil ifTrue: [ ^ nil ].
    cur: m.
    [ m: (sub match: t At: cur Len: n). m notNil ]
      whileTrue: [ cur: m ].
    cur ).
| ).
pegOpt = ( | parent* = lobby. sub.
  match: t At: p Len: n = ( | m |
    pegStats tick.
    m: (sub match: t At: p Len: n).
    m isNil ifTrue: [ p ] False: [ m ] ).
| ).
pegNot = ( | parent* = lobby. sub.
  match: t At: p Len: n = ( | m |
    pegStats tick.
    m: (sub match: t At: p Len: n).
    m isNil ifTrue: [ p ] False: [ nil ] ).
| ).
pegRef = ( | parent* = lobby. rules. idx <- 0.
  match: t At: p Len: n = (
    pegStats tick.
    (rules at: idx) match: t At: p Len: n ).
| ).

pegBench = ( | parent* = lobby. rules. ws. identR. primaryR.
  input = ')SELF";

const char *kPegPart2 = R"SELF('.
  chr: x = ( | r | r: pegChar clone. r ch: x. r ).
  rng: x To: y = ( | r | r: pegRange clone. r lo: x. r hi: y. r ).
  seq: x Then: y = ( | r | r: pegSeq2 clone. r a: x. r b: y. r ).
  seq: x Then: y Then: z = ( | r |
    r: pegSeq3 clone. r a: x. r b: y. r c: z. r ).
  alt: x Or: y = ( | r | r: pegChoice2 clone. r a: x. r b: y. r ).
  alt: x Or: y Or: z = ( | r |
    r: pegChoice3 clone. r a: x. r b: y. r c: z. r ).
  star: x = ( | r | r: pegStar clone. r sub: x. r ).
  plus: x = ( | r | r: pegPlus clone. r sub: x. r ).
  opt: x = ( | r | r: pegOpt clone. r sub: x. r ).
  neg: x = ( | r | r: pegNot clone. r sub: x. r ).
  lits: s = ( | r | r: pegLit clone. r lit: s. r ).
  ref: i = ( | r | r: pegRef clone. r rules: rules. r idx: i. r ).
  buildPrimary = ( | alphaR. digitR. alnum. numTail. numberR. lp. rp. parens |
    ws: (star: (chr: 32)).
    alphaR: (rng: 97 To: 122).
    digitR: (rng: 48 To: 57).
    alnum: (alt: alphaR Or: digitR).
    identR: (seq: alphaR Then: (star: alnum) Then: (opt: ws)).
    numTail: (seq: (opt: alphaR) Then: ws).
    numberR: (seq: (opt: (chr: 45)) Then: (plus: digitR) Then: numTail).
    lp: (seq: (chr: 40) Then: ws).
    rp: (seq: (chr: 41) Then: ws).
    parens: (seq: lp Then: (ref: 0) Then: rp).
    primaryR: (alt: numberR Or: (alt: identR Or: parens)).
    self ).
  buildExpr = ( | mulop. mulPair. termR. addop. addPair. arithR. relop. cmp |
    mulop: (seq: (alt: (chr: 42) Or: (chr: 47)) Then: ws).
    mulPair: (seq: mulop Then: primaryR).
    termR: (seq: primaryR Then: (star: mulPair)).
    addop: (seq: (alt: (lits: '+') Or: (lits: '-')) Then: ws).
    addPair: (seq: addop Then: termR Then: ws).
    arithR: (seq: termR Then: (star: addPair)).
    relop: (alt: (seq: (chr: 60) Then: ws) Or: (seq: (chr: 62) Then: ws)).
    cmp: (opt: (seq: relop Then: arithR)).
    rules at: 0 Put: (seq: arithR Then: cmp).
    self ).
  buildStmts = ( | letHead. identPart. eqWs. assign. letStmt. outHead.
      outTail. outStmt. badStmt. stmt. eof |
    letHead: (seq: (plus: (lits: 'let ')) Then: ws).
    identPart: (seq: (opt: (lits: 'mut ')) Then: identR).
    eqWs: (seq: (plus: (chr: 61)) Then: ws).
    assign: (seq: eqWs Then: (ref: 0) Then: (plus: (chr: 59))).
    letStmt: (seq: letHead Then: identPart Then: assign).
    outHead: (seq: (plus: (lits: 'out ')) Then: ws).
    outTail: (seq: (plus: (ref: 0)) Then: (plus: (chr: 59))).
    outStmt: (seq: outHead Then: outTail).
    badStmt: (seq: (lits: '@@') Then: ws).
    stmt: (alt: letStmt Or: outStmt Or: badStmt).
    eof: (seq: (neg: pegAny clone) Then: (opt: pegAny clone)
      Then: (star: pegAny clone)).
    seq: ws Then: (plus: stmt) Then: eof ).
  build = ( rules: (vectorOfSize: 1). buildPrimary. buildExpr. buildStmts ).
  run = ( | program. m. chk |
    pegStats resetCounts.
    program: build.
    chk: 0.
    1 to: 3 Do: [ :k |
      m: (program match: input At: 0 Len: input size).
      m isNil ifTrue: [ error: 'peg: no match' ].
      chk: ((chk * 31) + m) % 1000003 ].
    ((chk * 31) + (pegStats attempts % 100000)) % 1000003 ).
| ).
)SELF";

} // namespace

void appendWorkloadBenchmarks(std::vector<BenchmarkDef> &All) {
  auto withList = [](std::string Src) { return std::string(kWlList) + Src; };
  All.push_back({"deltablue", "deltablue", withList(kDeltaBlue),
                 "deltablueBench run", native::deltablue, 4});
  All.push_back({"json", "parser",
                 withList(std::string(kJsonPart1) + kJsonDoc + kJsonPart2),
                 "jsonBench run", native::json, 6});
  All.push_back({"sexpr", "parser",
                 withList(std::string(kSexprPart1) + kSexprDoc + kSexprPart2),
                 "sexprBench run", native::sexpr, 6});
  All.push_back({"lexer", "peg",
                 std::string(kLexerPart1) + kLexerDoc + kLexerPart2,
                 "lexBench run", native::lexer, 6});
  All.push_back({"peg", "peg", std::string(kPegPart1) + kPegDoc + kPegPart2,
                 "pegBench run", native::peg, 4});
}

} // namespace mself::bench
