//===-- bench/harness.h - Benchmark execution harness -----------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs one benchmark under one compiler policy and reports the three
/// quantities the paper's tables need: execution time (steady state, after
/// the lazy compiler has warmed up), compile time (CPU seconds spent in the
/// compiler), and compiled code size. The mini-SELF checksum is validated
/// against the native implementation on every run.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_BENCH_HARNESS_H
#define MINISELF_BENCH_HARNESS_H

#include "suites.h"

#include "compiler/policy.h"

#include <string>
#include <utility>
#include <vector>

namespace mself::bench {

struct SelfRunResult {
  bool Ok = false;
  std::string Error;
  double ExecSeconds = 0;    ///< Wall seconds per single benchmark run.
  double CompileSeconds = 0; ///< CPU seconds spent compiling.
  size_t CodeBytes = 0;      ///< Compiled code cache size.
  uint64_t Instructions = 0; ///< Bytecode instructions per run (the
                             ///< machine-independent work measure).
  int64_t Checksum = 0;
};

/// Loads + runs \p B under \p P: one warm-up run (triggers lazy
/// compilation, validates the checksum), then a timed sample of
/// B.TimedRuns runs.
SelfRunResult runSelf(const BenchmarkDef &B, const Policy &P);

/// Times the native implementation. \returns wall seconds per run.
double runNative(const BenchmarkDef &B, int64_t &ChecksumOut);

/// Fixed-width helpers for paper-style tables.
std::string pct(double Fraction);         ///< "42%" from 0.42.
std::string fixed(double V, int Prec);    ///< "%.*f".

/// Machine-readable companion to the printed tables: collects flat
/// key → value metrics in insertion order and writes them as
/// `BENCH_<table>.json` in the working directory, so CI and the
/// experiment log can diff numbers without scraping stdout. Keys are
/// free-form "<row>/<column>/<metric>" paths.
class JsonReport {
public:
  explicit JsonReport(std::string Table) : Table(std::move(Table)) {}

  void metric(const std::string &Key, double Value) {
    Metrics.emplace_back(Key, Value);
  }
  void note(const std::string &Key, const std::string &Value) {
    Notes.emplace_back(Key, Value);
  }
  /// Records an acceptance gate this run could not evaluate (insufficient
  /// hardware, configuration absent, ...). Emitted as the top-level
  /// `skipped_gates` array — one `{gate, reason}` object per skip — so CI
  /// distinguishes "gate passed" from "gate did not run" structurally
  /// instead of scraping free-form notes. A skipped gate never fails the
  /// run; the caller just omits it from the pass() conjunction.
  void skipGate(const std::string &Gate, const std::string &Reason) {
    SkippedGates.emplace_back(Gate, Reason);
  }
  void pass(bool Ok) { Pass = Ok; }

  /// Writes BENCH_<table>.json; \returns false (with a stderr message) on
  /// I/O failure. Never throws — benchmarks must still print their table.
  bool write() const;

private:
  std::string Table;
  std::vector<std::pair<std::string, double>> Metrics;
  std::vector<std::pair<std::string, std::string>> Notes;
  std::vector<std::pair<std::string, std::string>> SkippedGates;
  bool Pass = true;
};

} // namespace mself::bench

#endif // MINISELF_BENCH_HARNESS_H
