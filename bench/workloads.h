//===-- bench/workloads.h - The workload scenario pack ----------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registration hook for the workload scenario pack: DeltaBlue (a deeply
/// polymorphic constraint solver), a JSON parser and an s-expression
/// evaluator (string- and allocation-heavy), and a hand-written lexer plus
/// a combinator PEG matcher (megamorphic dispatch over a dozen rule-object
/// kinds). These stress the compiler on shapes the paper's Stanford suite
/// does not: deep dynamic dispatch over many receiver maps, string
/// primitives, and allocation-dominated inner loops. Each suite has a
/// native C++ twin (bench/native_workloads.cpp) whose checksum the
/// mini-SELF program must reproduce under every policy configuration.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_BENCH_WORKLOADS_H
#define MINISELF_BENCH_WORKLOADS_H

#include "suites.h"

namespace mself::bench {

/// Appends the workload suites to \p All. Groups: "deltablue" (deltablue),
/// "parser" (json, sexpr), "peg" (lexer, peg).
void appendWorkloadBenchmarks(std::vector<BenchmarkDef> &All);

/// Group names of the workload pack, in table order.
inline const char *const kWorkloadGroups[] = {"deltablue", "parser", "peg"};

} // namespace mself::bench

#endif // MINISELF_BENCH_WORKLOADS_H
