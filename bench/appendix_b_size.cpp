//===-- bench/appendix_b_size.cpp - E5: per-benchmark code size -------------===//
//
// Reproduces the paper's Appendix B: compiled code size in kilobytes per
// benchmark for the old and new SELF compilers (plus the ST-80 baseline).
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include <cstdio>

using namespace mself;
using namespace mself::bench;

int main() {
  Policy Policies[] = {Policy::st80(), Policy::oldSelf(), Policy::newSelf()};

  printf("E5 (Appendix B): Compiled Code Size (in kilobytes)\n\n");
  printf("%-14s %-12s %10s %10s %10s\n", "benchmark", "group", "ST-80",
         "old SELF", "new SELF");

  JsonReport Report("appendix_b_size");
  bool AllOk = true;
  for (const BenchmarkDef &B : allBenchmarks()) {
    if (B.Group == "stanford-oo" && B.Name == "puzzle")
      continue;
    printf("%-14s %-12s", B.Name.c_str(), B.Group.c_str());
    for (const Policy &P : Policies) {
      SelfRunResult R = runSelf(B, P);
      if (!R.Ok) {
        printf(" %10s", "FAIL");
        fprintf(stderr, "FAIL %s [%s]: %s\n", B.Name.c_str(),
                P.Name.c_str(), R.Error.c_str());
        AllOk = false;
        continue;
      }
      Report.metric(B.Name + "/" + P.Name + "/code_kib",
                    static_cast<double>(R.CodeBytes) / 1024.0);
      printf(" %10s", fixed(static_cast<double>(R.CodeBytes) / 1024.0, 1)
                          .c_str());
    }
    printf("\n");
  }
  Report.pass(AllOk);
  Report.write();
  return AllOk ? 0 : 1;
}
