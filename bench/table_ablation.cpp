//===-- bench/table_ablation.cpp - E8: design-choice ablations --------------===//
//
// The paper motivates each of the new compiler's mechanisms; this table
// disables them one at a time (DESIGN.md section 5) and reports the
// slowdown relative to the full new SELF configuration, plus the effect on
// compile time and code size, over a representative subset of benchmarks.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "support/stats.h"

#include <cstdio>
#include <string>
#include <cmath>
#include <vector>

using namespace mself;
using namespace mself::bench;

namespace {

/// Native twin of the unknown-bound triangle loop below.
int64_t nativeTriangleUnknown() {
  int64_t Total = 0;
  for (int64_t R = 0; R < 50; ++R) {
    int64_t Sum = 0;
    for (int64_t I = 1; I < 1000; ++I)
      Sum += I;
    Total += Sum;
  }
  return Total;
}

/// The paper's §5.3 situation: the loop bound arrives with unknown type
/// (laundered through a vector), so the fast loop version only exists if
/// iterative analysis + splitting hoist the type test out.
const mself::bench::BenchmarkDef kTriangleUnknown = {
    "triangleUnknown",
    "ablation",
    "triangleNumber: n = ( | sum <- 0 | "
    "1 upTo: n Do: [ :i | sum: sum + i ]. sum ). "
    "triBench = ( | parent* = lobby. "
    "run = ( | v. t <- 0 | v: (vectorOfSize: 1). v at: 0 Put: 1000. "
    "50 timesRepeat: [ t: t + (triangleNumber: (v at: 0)) ]. t ) | ).",
    "triBench run",
    nativeTriangleUnknown,
    3,
};

} // namespace

int main() {
  std::vector<std::pair<std::string, Policy>> Variants;
  Variants.push_back({"new SELF (full)", Policy::newSelf()});
  {
    Policy P = Policy::newSelf();
    P.Name = "no-extended-splitting";
    P.ExtendedSplitting = false;
    Variants.push_back({"- extended splitting", P});
  }
  {
    Policy P = Policy::newSelf();
    P.Name = "no-range-analysis";
    P.RangeAnalysis = false;
    Variants.push_back({"- range analysis", P});
  }
  {
    Policy P = Policy::newSelf();
    P.Name = "no-iterative-loops";
    P.IterativeLoops = false;
    Variants.push_back({"- iterative loops", P});
  }
  {
    Policy P = Policy::newSelf();
    P.Name = "no-loop-head-generalization";
    P.LoopHeadGeneralization = false;
    Variants.push_back({"- loop-head generalization", P});
  }
  {
    Policy P = Policy::newSelf();
    P.Name = "no-type-prediction";
    P.TypePrediction = false;
    Variants.push_back({"- type prediction", P});
  }

  // Representative subset: loop kernels + an OO benchmark + richards +
  // the unknown-bound triangle loop (splitting's home turf).
  const char *Names[] = {"sumTo",  "sieve",   "atAllPut", "bubble",
                         "quick",  "tree-oo", "intmm-oo", "richards"};

  printf("E8: Ablations of the new SELF compiler's design choices\n");
  printf("    geometric-mean slowdown vs full new SELF over: ");
  for (const char *N : Names)
    printf("%s ", N);
  printf("triangleUnknown");
  printf("\n\n%-28s %12s %14s %14s %12s\n", "configuration", "exec time",
         "instructions", "compile time", "code size");

  // Baseline measurements.
  std::vector<const BenchmarkDef *> Subset;
  for (const char *N : Names)
    for (const BenchmarkDef &B : allBenchmarks())
      if (B.Name == N) {
        Subset.push_back(&B);
        break;
      }
  Subset.push_back(&kTriangleUnknown);

  std::vector<SelfRunResult> Base;
  for (const BenchmarkDef *B : Subset)
    Base.push_back(runSelf(*B, Variants[0].second));

  JsonReport Report("ablation");
  bool AllOk = true;
  for (const auto &[Label, P] : Variants) {
    double ExecRatio = 1, InstrRatio = 1, CompRatio = 1, SizeRatio = 1;
    int N = 0;
    for (size_t I = 0; I < Subset.size(); ++I) {
      SelfRunResult R = runSelf(*Subset[I], P);
      if (!R.Ok || !Base[I].Ok) {
        fprintf(stderr, "FAIL %s [%s]: %s\n", Subset[I]->Name.c_str(),
                Label.c_str(), R.Error.c_str());
        AllOk = false;
        continue;
      }
      ExecRatio *= R.ExecSeconds / Base[I].ExecSeconds;
      InstrRatio *= static_cast<double>(R.Instructions) /
                    static_cast<double>(Base[I].Instructions);
      CompRatio *= R.CompileSeconds / Base[I].CompileSeconds;
      SizeRatio *= static_cast<double>(R.CodeBytes) /
                   static_cast<double>(Base[I].CodeBytes);
      ++N;
    }
    if (N == 0)
      continue;
    auto Geo = [N](double Prod) {
      return std::pow(Prod, 1.0 / N);
    };
    Report.metric(P.Name + "/exec_ratio", Geo(ExecRatio));
    Report.metric(P.Name + "/instr_ratio", Geo(InstrRatio));
    Report.metric(P.Name + "/compile_ratio", Geo(CompRatio));
    Report.metric(P.Name + "/size_ratio", Geo(SizeRatio));
    printf("%-28s %11.2fx %13.2fx %13.2fx %11.2fx\n", Label.c_str(),
           Geo(ExecRatio), Geo(InstrRatio), Geo(CompRatio), Geo(SizeRatio));
  }
  // The splitting machinery's effect concentrates where types arrive
  // unknown; break the unknown-bound triangle loop out on its own (this is
  // the paper's §5.3 situation).
  printf("\ntriangleUnknown alone (instruction ratio vs full new SELF):\n");
  SelfRunResult TriBase = runSelf(kTriangleUnknown, Variants[0].second);
  for (const auto &[Label, P] : Variants) {
    SelfRunResult R = runSelf(kTriangleUnknown, P);
    if (!R.Ok || !TriBase.Ok) {
      AllOk = false;
      continue;
    }
    Report.metric(P.Name + "/triangle_instr_ratio",
                  static_cast<double>(R.Instructions) /
                      static_cast<double>(TriBase.Instructions));
    printf("%-28s %11.2fx  (%llu instructions/run)\n", Label.c_str(),
           static_cast<double>(R.Instructions) /
               static_cast<double>(TriBase.Instructions),
           static_cast<unsigned long long>(R.Instructions));
  }
  printf("\nShape check (paper sections 4-5): disabling extended splitting "
         "or\niterative loops must slow execution; disabling loop-head\n"
         "generalization must raise compile time.\n");
  Report.pass(AllOk);
  Report.write();
  return AllOk ? 0 : 1;
}
