//===-- bench/table_speed.cpp - E1: Speed of Compiled Code ------------------===//
//
// Reproduces the paper's §6.1 table "Speed of Compiled Code (as a
// percentage of optimized C), median (min - max)" for the four benchmark
// groups and the three compiler configurations. The expected *shape*
// (paper, Sun-4/260):
//
//                small        stanford     stanford-oo   richards
//   ST-80        10% (5-10)   9% (5-53)    9% (5-80)     9%
//   old SELF-90  11% (7-12)   14% (9-41)   19% (9-69)    17%
//   new SELF     24% (21-53)  25% (19-47)  42% (19-91)   21%
//
// Absolute percentages here are lower (our back-end is a bytecode
// interpreter, not a SPARC code generator); the ordering and relative
// factors are what this table checks.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "support/stats.h"

#include <cstdio>
#include <map>

using namespace mself;
using namespace mself::bench;

int main() {
  const char *Groups[] = {"small", "stanford", "stanford-oo", "richards"};
  Policy Policies[] = {Policy::st80(), Policy::oldSelf(), Policy::newSelf()};
  const char *Labels[] = {"ST-80", "old SELF", "new SELF"};

  printf("E1: Speed of Compiled Code (as a percentage of optimized C)\n");
  printf("    median (min - max), per paper section 6.1\n\n");
  printf("%-10s", "");
  for (const char *G : Groups)
    printf(" %-22s", G);
  printf("\n");

  JsonReport Report("speed");
  bool AllOk = true;
  for (int PI = 0; PI < 3; ++PI) {
    printf("%-10s", Labels[PI]);
    for (const char *G : Groups) {
      SampleStats S;
      for (const BenchmarkDef *B : benchmarksInGroup(G)) {
        int64_t Chk = 0;
        double Native = runNative(*B, Chk);
        SelfRunResult R = runSelf(*B, Policies[PI]);
        if (!R.Ok) {
          fprintf(stderr, "FAIL %s/%s [%s]: %s\n", G, B->Name.c_str(),
                  Labels[PI], R.Error.c_str());
          AllOk = false;
          continue;
        }
        S.add(Native / R.ExecSeconds);
      }
      if (S.empty()) {
        printf(" %-22s", "-");
        continue;
      }
      std::string Key = std::string(Policies[PI].Name) + "/" + G;
      Report.metric(Key + "/median_frac", S.median());
      Report.metric(Key + "/min_frac", S.min());
      Report.metric(Key + "/max_frac", S.max());
      std::string Cell = pct(S.median());
      if (S.size() > 1)
        Cell += " (" + pct(S.min()) + "-" + pct(S.max()) + ")";
      printf(" %-22s", Cell.c_str());
    }
    printf("\n");
  }
  printf("\nAll checksums validated against the native implementations: %s\n",
         AllOk ? "yes" : "NO (see errors above)");
  Report.pass(AllOk);
  Report.write();
  return AllOk ? 0 : 1;
}
