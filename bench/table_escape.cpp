//===-- bench/table_escape.cpp - E17: Escape analysis & arena ablation -----===//
//
// Measures what escape analysis removes from the collector's plate: every
// suite runs twice under the NEW-SELF policy — once as shipped (escape
// analysis on, non-escaping blocks and environments bump-allocated in the
// activation arena) and once with Policy::EscapeAnalysis off (every block
// and environment heap-allocated) — and the table reports GC-visible
// allocation count and bytes per iteration for both, the ratio, and where
// the removed allocations went (arena blocks/envs/bytes, demotions).
//
// Three suite families:
//   - the E13 churn kernels: object-allocation-bound, few blocks — escape
//     analysis should neither help nor hurt them (a no-regression check),
//   - the E16 parser/PEG workloads: block-using programs where the arena
//     trims a measurable slice of allocation volume,
//   - the closure suites (inject, nestdo, pipeline): block-bound kernels
//     where blocks and environments ARE the allocation profile.
//
// Gates (exit code + BENCH_table_escape.json):
//   - every checksum identical between the two configurations,
//   - >= 2x reduction in GC-visible allocations per iteration on the
//     block-bound kernels (inject, nestdo),
//   - a measurable alloc-bytes drop on the json/sexpr/peg rows.
//
//===----------------------------------------------------------------------===//

#include "closures.h"
#include "harness.h"
#include "workloads.h"

#include "driver/vm.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace mself;
using namespace mself::bench;

namespace {

/// One measured program: lobby definitions, a run expression, the expected
/// checksum, and how many "iterations" the run expression performs (the
/// per-iteration divisor; 1 for the parser workloads, whose natural unit
/// is the whole parse).
struct Row {
  std::string Name;
  std::string Family; ///< "churn", "workload", or "closures".
  std::string Defs;
  std::string RunExpr;
  int64_t Expected;
  int64_t Iters;
};

/// The E13 churn kernels, one-shot editions: allocation-bound loops with
/// few or no blocks, carried here as the no-regression control group.
constexpr int64_t kChurnIters = 20000;

std::vector<Row> churnRows() {
  const int64_t N = kChurnIters;
  return {
      {"clonechurn", "churn",
       "cproto = ( | parent* = lobby. v <- 0 | ). "
       "cl: n = ( | o. t <- 0 | 1 to: n Do: [ :i | "
       "o: cproto clone. o v: i. t: t + o v ]. t )",
       "cl: " + std::to_string(N), N * (N + 1) / 2, N},
      {"vecchurn", "churn",
       "vc: n = ( | t <- 0 | 1 to: n Do: [ :i | "
       "t: t + (vectorOfSize: 4) size ]. t )",
       "vc: " + std::to_string(N), 4 * N, N},
      {"pairchurn", "churn",
       "pproto = ( | parent* = lobby. a <- 0. b | ). "
       "pc: n = ( | p. q. t <- 0 | 1 to: n Do: [ :i | "
       "p: pproto clone. q: pproto clone. p a: i. q b: p. "
       "t: t + (q b) a ]. t )",
       "pc: " + std::to_string(N), N * (N + 1) / 2, N},
  };
}

/// Iteration counts for the registry-backed suites: the closure kernels'
/// inner loop trip counts, 1 for the parse-the-whole-input workloads.
int64_t itersFor(const BenchmarkDef &B) {
  if (B.Name == "inject")
    return 40 * 64; // 40 folds over 64 elements.
  if (B.Name == "nestdo")
    return 30 * 48 * 48; // 30 rounds of a 48x48 nest.
  if (B.Name == "pipeline")
    return 200; // 200 trips through the 4-stage pipeline.
  return 1;
}

std::vector<Row> registryRows() {
  std::vector<Row> Out;
  for (const char *G : kWorkloadGroups)
    for (const BenchmarkDef *B : benchmarksInGroup(G))
      Out.push_back({B->Name, "workload", B->Source, B->RunExpr, B->Native(),
                     itersFor(*B)});
  for (const BenchmarkDef *B : benchmarksInGroup(kClosureGroup))
    Out.push_back({B->Name, "closures", B->Source, B->RunExpr, B->Native(),
                   itersFor(*B)});
  return Out;
}

struct Cell {
  bool Ok = false;
  std::string Error;
  uint64_t GcAllocs = 0;    ///< Objects born on the heap, measured run.
  uint64_t GcBytes = 0;     ///< Shell + payload bytes of the above.
  uint64_t ArenaAllocs = 0; ///< Blocks + envs the arena absorbed instead.
  uint64_t ArenaBytes = 0;
  uint64_t Demoted = 0; ///< Arena sites that fell back to the heap.
};

/// Loads and runs \p R under \p P in a fresh VM, validating the checksum;
/// allocation counters cover the measured run only (deltas around eval).
Cell measure(const Row &R, const Policy &P) {
  Cell C;
  VirtualMachine VM(P);
  std::string Err;
  if (!VM.load(R.Defs, Err)) {
    C.Error = "load: " + Err;
    return C;
  }
  VmTelemetry Before = VM.telemetry();
  int64_t Got = 0;
  if (!VM.evalInt(R.RunExpr, Got, Err)) {
    C.Error = "run: " + Err;
    return C;
  }
  if (Got != R.Expected) {
    C.Error = "checksum mismatch: got " + std::to_string(Got) + ", want " +
              std::to_string(R.Expected);
    return C;
  }
  VmTelemetry After = VM.telemetry();
  C.GcAllocs = (After.Gc.NurseryAllocs + After.Gc.OldAllocs +
                After.Gc.OverflowAllocs) -
               (Before.Gc.NurseryAllocs + Before.Gc.OldAllocs +
                Before.Gc.OverflowAllocs);
  C.GcBytes = (After.Gc.BytesAllocatedNursery + After.Gc.BytesAllocatedOld) -
              (Before.Gc.BytesAllocatedNursery + Before.Gc.BytesAllocatedOld);
  C.ArenaAllocs = (After.Escape.ArenaBlockAllocs + After.Escape.ArenaEnvAllocs) -
                  (Before.Escape.ArenaBlockAllocs + Before.Escape.ArenaEnvAllocs);
  C.ArenaBytes = After.Escape.ArenaBytes - Before.Escape.ArenaBytes;
  C.Demoted =
      After.Escape.ArenaDemotedAllocs - Before.Escape.ArenaDemotedAllocs;
  C.Ok = true;
  return C;
}

} // namespace

int main() {
  Policy Escape = Policy::newSelf();
  Policy NoEscape = Policy::newSelf();
  NoEscape.EscapeAnalysis = false;

  std::vector<Row> Rows = churnRows();
  for (Row &R : registryRows())
    Rows.push_back(R);

  printf("E17: Escape analysis — GC-visible allocations per iteration, "
         "NEW-SELF policy\n\n");
  printf("%-12s %-10s %12s %12s %8s %10s %10s %9s\n", "suite", "family",
         "alloc/it", "noesc/it", "ratio", "bytes/it", "noesc-b/it",
         "arena/it");

  JsonReport Report("table_escape");
  bool AllOk = true;
  double MinClosureRatio = 1e30;
  bool ParserBytesDrop = true;

  for (const Row &R : Rows) {
    Cell On = measure(R, Escape);
    Cell Off = measure(R, NoEscape);
    if (!On.Ok || !Off.Ok) {
      fprintf(stderr, "FAIL %s: %s\n", R.Name.c_str(),
              (!On.Ok ? On.Error : Off.Error).c_str());
      AllOk = false;
      continue;
    }
    double It = double(R.Iters);
    double Ratio = On.GcAllocs ? double(Off.GcAllocs) / double(On.GcAllocs)
                               : double(Off.GcAllocs);
    printf("%-12s %-10s %12.2f %12.2f %7.2fx %10.1f %10.1f %9.2f\n",
           R.Name.c_str(), R.Family.c_str(), On.GcAllocs / It,
           Off.GcAllocs / It, Ratio, On.GcBytes / It, Off.GcBytes / It,
           On.ArenaAllocs / It);

    std::string Key = "newself/" + R.Name;
    Report.metric(Key + "/gc_allocs_per_iter", On.GcAllocs / It);
    Report.metric(Key + "/gc_bytes_per_iter", On.GcBytes / It);
    Report.metric(Key + "/noescape_gc_allocs_per_iter", Off.GcAllocs / It);
    Report.metric(Key + "/noescape_gc_bytes_per_iter", Off.GcBytes / It);
    Report.metric(Key + "/alloc_ratio", Ratio);
    Report.metric(Key + "/arena_allocs_per_iter", On.ArenaAllocs / It);
    Report.metric(Key + "/arena_bytes_per_iter", On.ArenaBytes / It);
    Report.metric(Key + "/arena_demoted", double(On.Demoted));

    // The block-bound kernels carry the headline gate — every closure
    // suite whose heap lowering allocates at least one object per
    // iteration must shed >= 2x. nestdo is exempt by measurement, not by
    // name: the inliner deletes its blocks outright, so both
    // configurations are already allocation-free and there is nothing
    // left for the arena to reduce.
    if (R.Family == "closures" && double(Off.GcAllocs) / It >= 1.0)
      MinClosureRatio = std::min(MinClosureRatio, Ratio);
    // The parser/PEG rows must show a real bytes drop.
    if (R.Name == "json" || R.Name == "sexpr" || R.Name == "peg")
      ParserBytesDrop = ParserBytesDrop && On.GcBytes < Off.GcBytes;
  }

  bool RatioOk = MinClosureRatio >= 2.0;
  Report.metric("summary/min_block_bound_ratio", MinClosureRatio);
  Report.note("summary/block_bound_gate",
              RatioOk ? "pass (>=2x fewer GC-visible allocations)"
                      : "FAIL (<2x on a block-bound kernel)");
  Report.note("summary/parser_bytes_gate",
              ParserBytesDrop ? "pass (alloc bytes drop on json/sexpr/peg)"
                              : "FAIL (no alloc-bytes drop on a parser row)");
  if (!RatioOk) {
    fprintf(stderr,
            "FAIL: block-bound kernels must shed >=2x of their GC-visible "
            "allocations (got %.2fx)\n",
            MinClosureRatio);
    AllOk = false;
  }
  if (!ParserBytesDrop) {
    fprintf(stderr,
            "FAIL: json/sexpr/peg must allocate fewer heap bytes with "
            "escape analysis on\n");
    AllOk = false;
  }

  printf("\nBlock-bound kernels shed %.2fx of their GC-visible allocations "
         "(gate: >= 2x)\n",
         MinClosureRatio);
  printf("All checksums identical with and without escape analysis: %s\n",
         AllOk ? "yes" : "NO (see errors above)");
  Report.pass(AllOk);
  Report.write();
  return AllOk ? 0 : 1;
}
