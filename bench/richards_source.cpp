//===-- bench/richards_source.cpp - The richards program --------------------===//
//
// The richards operating-system simulation: a scheduler round-robins an
// idle task, a worker, two handlers, and two device tasks, exchanging
// packets. `runWith:In:` is the famous polymorphic call site (sec. 6.1):
// the receiver comes out of the scheduler's task queue, so no compile-time
// type is available and the send stays dynamically bound even under the
// optimizing compiler.
//
//===----------------------------------------------------------------------===//

#include "richards_source.h"

namespace mself::bench {

namespace {

const char *kRichardsSource = R"SELF(
"The richards operating-system simulation: a scheduler round-robins an
 idle task, a worker, two handlers, and two device tasks, exchanging
 packets. `runWith:In:` is the famous polymorphic call site (§6.1)."

rPacket = ( | parent* = lobby. link. id <- 0. kind <- 0. a1 <- 0. a2 | ).

rAppend: p To: q = ( | cur |
  p link: nil.
  q isNil ifTrue: [ ^ p ].
  cur: q.
  [ (cur link) notNil ] whileTrue: [ cur: cur link ].
  cur link: p.
  q ).

rTcb = ( | parent* = lobby.
  link. id <- 0. pri <- 0. queue. task.
  packetPending <- 0. taskWaiting <- 0. taskHolding <- 0.
  heldOrSuspended = (
    (taskHolding == 1) or: [ (packetPending == 0) and: [ taskWaiting == 1 ] ] ).
  check: p PriorityAddFor: me = (
    queue isNil
      ifTrue: [
        queue: p.
        packetPending: 1.
        pri > (me pri) ifTrue: [ ^ self ] ]
      False: [ queue: (rAppend: p To: queue) ].
    me ).
| ).

rScheduler = ( | parent* = lobby.
  queueCount <- 0. holdCount <- 0. blocks. list. currentTcb. currentId <- 0.
  addTask: tid Pri: p Queue: q Task: t Waiting: w = ( | b |
    b: rTcb clone.
    b id: tid. b pri: p. b queue: q. b task: t.
    b link: list.
    q notNil ifTrue: [ b packetPending: 1 ].
    b taskWaiting: w.
    list: b.
    blocks at: tid Put: b.
    self ).
  findTcb: tid = ( blocks at: tid ).
  holdSelf = (
    holdCount: holdCount + 1.
    currentTcb taskHolding: 1.
    currentTcb link ).
  release: tid = ( | t |
    t: (findTcb: tid).
    t taskHolding: 0.
    (t pri) > (currentTcb pri) ifTrue: [ t ] False: [ currentTcb ] ).
  waitSelf = ( currentTcb taskWaiting: 1. currentTcb ).
  queuePacket: p = ( | t |
    t: (findTcb: p id).
    queueCount: queueCount + 1.
    p link: nil.
    p id: currentId.
    t check: p PriorityAddFor: currentTcb ).
  schedule = ( | t. p |
    currentTcb: list.
    [ currentTcb notNil ] whileTrue: [
      currentTcb heldOrSuspended
        ifTrue: [ currentTcb: currentTcb link ]
        False: [
          currentId: currentTcb id.
          t: currentTcb.
          (((t packetPending) == 1) and: [ ((t taskHolding) == 0) and:
              [ (t queue) notNil ] ])
            ifTrue: [
              p: t queue.
              t queue: p link.
              (t queue) isNil
                ifTrue: [ t packetPending: 0 ]
                False: [ t packetPending: 1 ].
              t taskWaiting: 0 ]
            False: [ p: nil ].
          currentTcb: ((t task) runWith: p In: self) ] ].
    self ).
| ).

rIdleTask = ( | parent* = lobby. v1 <- 1. count <- 0.
  runWith: p In: sched = (
    count: count - 1.
    count == 0
      ifTrue: [ sched holdSelf ]
      False: [ (v1 % 2) == 0
          ifTrue: [ v1: v1 / 2. sched release: 4 ]
          False: [ v1: (v1 / 2) + 53256. sched release: 5 ] ] ).
| ).

rWorkerTask = ( | parent* = lobby. dest <- 2. count <- 0.
  runWith: p In: sched = (
    p isNil
      ifTrue: [ sched waitSelf ]
      False: [
        dest == 2 ifTrue: [ dest: 3 ] False: [ dest: 2 ].
        p id: dest.
        p a1: 0.
        0 upTo: 4 Do: [ :i |
          count: count + 1.
          count > 26 ifTrue: [ count: 1 ].
          (p a2) at: i Put: count ].
        sched queuePacket: p ] ).
| ).

rHandlerTask = ( | parent* = lobby. workIn. deviceIn.
  runWith: p In: sched = ( | w. d. cnt |
    p notNil ifTrue: [
      (p kind) == 1
        ifTrue: [ workIn: (rAppend: p To: workIn) ]
        False: [ deviceIn: (rAppend: p To: deviceIn) ] ].
    workIn isNil
      ifTrue: [ sched waitSelf ]
      False: [
        w: workIn.
        cnt: w a1.
        cnt >= 4
          ifTrue: [ workIn: w link. sched queuePacket: w ]
          False: [
            deviceIn isNil
              ifTrue: [ sched waitSelf ]
              False: [
                d: deviceIn.
                deviceIn: d link.
                d a1: ((w a2) at: cnt).
                w a1: cnt + 1.
                sched queuePacket: d ] ] ] ).
| ).

rDeviceTask = ( | parent* = lobby. pending.
  runWith: p In: sched = ( | v |
    p isNil
      ifTrue: [ pending isNil
          ifTrue: [ sched waitSelf ]
          False: [ v: pending. pending: nil. sched queuePacket: v ] ]
      False: [ pending: p. sched holdSelf ] ).
| ).

richardsBench = ( | parent* = lobby.
  newPacket: tid Kind: k = ( | p |
    p: rPacket clone.
    p id: tid. p kind: k. p a1: 0.
    p a2: (vectorOfSize: 4 FillingWith: 0).
    p ).
  run = ( | s. q. idle |
    s: rScheduler clone.
    s blocks: (vectorOfSize: 6).
    idle: rIdleTask clone.
    idle v1: 1. idle count: 1000.
    s addTask: 0 Pri: 0 Queue: nil Task: idle Waiting: 0.
    q: (rAppend: (newPacket: 1 Kind: 1) To: nil).
    q: (rAppend: (newPacket: 1 Kind: 1) To: q).
    s addTask: 1 Pri: 1000 Queue: q Task: rWorkerTask clone Waiting: 1.
    q: (rAppend: (newPacket: 4 Kind: 0) To: nil).
    q: (rAppend: (newPacket: 4 Kind: 0) To: q).
    q: (rAppend: (newPacket: 4 Kind: 0) To: q).
    s addTask: 2 Pri: 2000 Queue: q Task: rHandlerTask clone Waiting: 1.
    q: (rAppend: (newPacket: 5 Kind: 0) To: nil).
    q: (rAppend: (newPacket: 5 Kind: 0) To: q).
    q: (rAppend: (newPacket: 5 Kind: 0) To: q).
    s addTask: 3 Pri: 3000 Queue: q Task: rHandlerTask clone Waiting: 1.
    s addTask: 4 Pri: 4000 Queue: nil Task: rDeviceTask clone Waiting: 1.
    s addTask: 5 Pri: 5000 Queue: nil Task: rDeviceTask clone Waiting: 1.
    s schedule.
    ((s queueCount) * 100000) + (s holdCount) ).
| ).
)SELF";

} // namespace

const char *richardsSource() { return kRichardsSource; }

} // namespace mself::bench
