//===-- bench/native.h - Native ("optimized C") baselines -------*- C++ -*-===//
//
// Part of miniself, a reproduction of Chambers & Ungar, PLDI '90.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The same algorithms as the mini-SELF benchmark sources, hand-written in
/// plain C++ and compiled by the host compiler: the paper's "optimized C"
/// column. Each returns the checksum its mini-SELF twin must reproduce.
///
//===----------------------------------------------------------------------===//

#ifndef MINISELF_BENCH_NATIVE_H
#define MINISELF_BENCH_NATIVE_H

#include <cstdint>

namespace mself::bench::native {

int64_t perm();
int64_t towers();
int64_t queens();
int64_t intmm();
int64_t puzzle();
int64_t quick();
int64_t bubble();
int64_t tree();
int64_t sieve();
int64_t sumTo();
int64_t sumFromTo();
int64_t sumToConst();
int64_t atAllPut();
int64_t richards();

// The workload scenario pack (native_workloads.cpp).
int64_t deltablue();
int64_t json();
int64_t sexpr();
int64_t lexer();
int64_t peg();

// The closure suites (bench/closures.cpp).
int64_t closureInject();
int64_t closureNest();
int64_t closurePipe();

} // namespace mself::bench::native

#endif // MINISELF_BENCH_NATIVE_H
