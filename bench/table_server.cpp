//===-- bench/table_server.cpp - E15: Multi-isolate server mode -----------===//
//
// The traffic-storm experiment: N worker threads, each owning one
// persistent isolate of a SharedRuntime, drain a queue of thousands of
// short sessions — each session evaluates one script from a small mixed
// workload (loops, recursion, closures, polymorphic sends, vectors) and
// validates its answer. What the shared immutable tier buys is measured
// directly: worker 2..N rehydrate the selectors, ASTs, and compiled code
// worker 1 produced, so a storm's cold-start cost is paid once
// process-wide rather than once per isolate.
//
// Reported per thread count: throughput (sessions/sec), p99 session
// latency, and the cross-isolate code-cache hit rate (fraction of keyed
// compile probes served by an existing artifact).
//
// Gates (EXPERIMENTS.md E15; the program exits nonzero when one fails):
//   - identical order-independent checksum at every thread count,
//   - cross-isolate code-cache hit rate >= 0.5 at the widest run,
//   - throughput at 4 threads >= 3x the 1-thread run — hardware-
//     conditional: skipped (with a JSON note) on machines with fewer than
//     4 hardware threads, where the scaling claim is unmeasurable.
//
//===----------------------------------------------------------------------===//

#include "harness.h"

#include "driver/isolate.h"
#include "driver/vm.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace mself;
using namespace mself::bench;

namespace {

constexpr int kSessions = 4000; ///< Sessions drained per thread-count run.

/// One session script: definitions (loaded once per isolate as the
/// prelude) and the expression a session evaluates.
struct Script {
  const char *Defs;
  const char *Expr;
  int64_t Expected;
};

const Script kScripts[] = {
    {"sumUpTo: n = ( | s <- 0. i <- 1 | "
     "[ i <= n ] whileTrue: [ s: s + i. i: i + 1 ]. s )",
     "sumUpTo: 60", 1830},
    {"fib: n = ( n < 2 ifTrue: [ n ] False: "
     "[ (fib: n - 1) + (fib: n - 2) ] )",
     "fib: 11", 89},
    {"squaresTo: n = ( | s <- 0 | 1 to: n Do: [ :i | s: s + (i * i) ]. s )",
     "squaresTo: 12", 650},
    {"mkAdder: n = ( [ :x | x + n ] )", "(mkAdder: 30) value: 12", 42},
    {"applyTwice: b To: x = ( b value: (b value: x) )",
     "applyTwice: [ :v | v * 3 ] To: 2", 18},
    {"shapeA = ( | parent* = lobby. area = ( 10 ) | ). "
     "shapeB = ( | parent* = lobby. area = ( 20 ) | ). "
     "sumAreas = ( | t <- 0. s | 1 to: 10 Do: [ :i | "
     "s: (i even ifTrue: [ shapeA ] False: [ shapeB ]). "
     "t: t + s area ]. t )",
     "sumAreas", 150},
    {"fill: n = ( | v. s <- 0 | v: (vectorOfSize: n). "
     "0 upTo: n Do: [ :i | v at: i Put: i * 2 ]. "
     "v do: [ :e | s: s + e ]. s )",
     "fill: 12", 132},
    {"grid = ( | t <- 0 | 1 to: 6 Do: [ :i | 1 to: 6 Do: [ :j | "
     "t: t + (i * j) ] ]. t )",
     "grid", 441},
    {"isEven: n = ( n == 0 ifTrue: [ 1 ] False: [ isOdd: n - 1 ] ). "
     "isOdd: n = ( n == 0 ifTrue: [ 0 ] False: [ isEven: n - 1 ] )",
     "isEven: 14", 1},
    {"firstSquareOver: lim = ( 1 to: 100 Do: [ :i | "
     "i * i > lim ifTrue: [ ^ i ] ]. 0 )",
     "firstSquareOver: 300", 18},
    {"mix: n = ( | t <- 0 | 1 to: n Do: [ :i | "
     "t: t + ((i * 3) % 7) + (i % 5) ]. t )",
     "mix: 40", 202},
    {"tr = ( | c <- 0 | 9 timesRepeat: [ c: c + 3 ]. c )", "tr", 27},
};
constexpr size_t kNumScripts = sizeof(kScripts) / sizeof(kScripts[0]);

std::string prelude() {
  std::string S;
  for (size_t I = 0; I < kNumScripts; ++I) {
    if (I)
      S += ". ";
    S += kScripts[I].Defs;
  }
  return S;
}

struct RunResult {
  bool Ok = false;
  double WallSec = 0;
  double Throughput = 0;  ///< Sessions per second.
  double P99LatencyUs = 0;
  double HitRate = 0;     ///< Cross-isolate code-cache hit rate.
  int64_t Checksum = 0;   ///< Order-independent sum over all sessions.
  uint64_t SharedHits = 0, SharedPublishes = 0;
  PauseHistogram GcPauses;   ///< Scavenge + full pauses over all isolates.
  double GcMaxPauseSec = 0;  ///< Worst single pause across the fleet.
};

/// Drains kSessions sessions with \p Threads workers, each owning one
/// persistent pre-warmed isolate. Sessions are claimed from one atomic
/// counter, so scheduling is load-balanced and the checksum is summed
/// order-independently.
RunResult runStorm(int Threads) {
  RunResult Out;
  SharedRuntime RT(1);
  std::vector<std::unique_ptr<Isolate>> Isolates;
  const std::string Prelude = prelude();
  for (int I = 0; I < Threads; ++I) {
    Isolates.push_back(RT.createIsolate());
    std::string Err;
    if (!Isolates.back()->vm().load(Prelude, Err)) {
      fprintf(stderr, "FAIL prelude (isolate %d): %s\n", I, Err.c_str());
      return Out;
    }
  }

  std::atomic<int> Next{0};
  std::atomic<int64_t> Checksum{0};
  std::atomic<bool> Failed{false};
  std::vector<std::vector<double>> Latencies(Threads);

  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Workers;
  for (int W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      VirtualMachine &VM = Isolates[W]->vm();
      std::string Err;
      Latencies[W].reserve(kSessions / Threads + 1);
      for (int S = Next.fetch_add(1); S < kSessions;
           S = Next.fetch_add(1)) {
        const Script &Sc = kScripts[S % kNumScripts];
        int64_t V = 0;
        auto L0 = std::chrono::steady_clock::now();
        bool Ok = VM.evalInt(Sc.Expr, V, Err);
        auto L1 = std::chrono::steady_clock::now();
        if (!Ok || V != Sc.Expected) {
          fprintf(stderr, "FAIL session %d (%s): %s\n", S, Sc.Expr,
                  Err.c_str());
          Failed = true;
          return;
        }
        Checksum.fetch_add(V, std::memory_order_relaxed);
        Latencies[W].push_back(
            std::chrono::duration<double, std::micro>(L1 - L0).count());
      }
    });
  for (std::thread &T : Workers)
    T.join();
  auto T1 = std::chrono::steady_clock::now();
  if (Failed)
    return Out;

  Out.WallSec = std::chrono::duration<double>(T1 - T0).count();
  Out.Throughput = Out.WallSec > 0 ? kSessions / Out.WallSec : 0;
  std::vector<double> All;
  All.reserve(kSessions);
  for (std::vector<double> &L : Latencies)
    All.insert(All.end(), L.begin(), L.end());
  std::sort(All.begin(), All.end());
  Out.P99LatencyUs = All.empty() ? 0 : All[All.size() * 99 / 100];
  Out.Checksum = Checksum.load();

  SharedTierStats S = RT.tier().statsSnapshot();
  Out.HitRate = S.hitRate();
  ServerTelemetry ST = RT.serverTelemetry();
  ServerTelemetry::Aggregate Agg = ST.aggregate();
  Out.SharedHits = Agg.SharedHits;
  Out.SharedPublishes = Agg.SharedPublishes;
  // GC pause roll-up across the fleet: the same p50/p95/p99/max columns
  // table_gc and table_oldgc report, merged over every isolate.
  Out.GcPauses = Agg.ScavengePauses;
  Out.GcPauses.merge(Agg.FullPauses);
  Out.GcMaxPauseSec =
      std::max(Agg.ScavengePauses.MaxSeconds, Agg.FullPauses.MaxSeconds);
  Out.Ok = true;
  Isolates.clear();
  return Out;
}

} // namespace

int main() {
  const unsigned Hw = std::thread::hardware_concurrency();
  std::vector<int> Counts = {1, 2, 4};
  if (Hw >= 8)
    Counts.push_back(8);

  printf("E15: Multi-isolate server storm — %d sessions x %zu scripts "
         "(%u hardware threads)\n",
         kSessions, kNumScripts, Hw);
  printf("%-8s %12s %12s %10s %8s %8s %12s %14s\n", "threads",
         "sessions/s", "p99 us", "hit rate", "hits", "pubs", "gc p99 us",
         "checksum");

  JsonReport Report("table_server");
  Report.note("hardware_threads", std::to_string(Hw));

  bool AllOk = true;
  std::vector<RunResult> Rows;
  for (int N : Counts) {
    RunResult R = runStorm(N);
    Rows.push_back(R);
    if (!R.Ok) {
      AllOk = false;
      printf("%-8d %12s\n", N, "-");
      continue;
    }
    printf("%-8d %12s %12s %10s %8llu %8llu %12s %14lld\n", N,
           fixed(R.Throughput, 0).c_str(), fixed(R.P99LatencyUs, 1).c_str(),
           fixed(R.HitRate, 3).c_str(), (unsigned long long)R.SharedHits,
           (unsigned long long)R.SharedPublishes,
           fixed(R.GcPauses.percentileSeconds(0.99) * 1e6, 1).c_str(),
           (long long)R.Checksum);
    std::string Key = "threads" + std::to_string(N);
    Report.metric(Key + "/throughput_per_sec", R.Throughput);
    Report.metric(Key + "/p99_latency_us", R.P99LatencyUs);
    Report.metric(Key + "/cross_isolate_hit_rate", R.HitRate);
    Report.metric(Key + "/shared_hits", double(R.SharedHits));
    Report.metric(Key + "/shared_publishes", double(R.SharedPublishes));
    Report.metric(Key + "/gc_pause_p50_ms",
                  R.GcPauses.percentileSeconds(0.50) * 1e3);
    Report.metric(Key + "/gc_pause_p95_ms",
                  R.GcPauses.percentileSeconds(0.95) * 1e3);
    Report.metric(Key + "/gc_pause_p99_ms",
                  R.GcPauses.percentileSeconds(0.99) * 1e3);
    Report.metric(Key + "/gc_pause_max_ms", R.GcMaxPauseSec * 1e3);
    Report.metric(Key + "/checksum", double(R.Checksum));
  }

  // Gate 1: identical order-independent checksum at every thread count.
  bool ChecksumOk = AllOk;
  for (const RunResult &R : Rows)
    ChecksumOk = ChecksumOk && R.Checksum == Rows[0].Checksum;

  // Gate 2: the widest run's cross-isolate hit rate. With >1 persistent
  // isolates sharing one tier, most keyed compile probes after the first
  // isolate's warm-up must be served from cache.
  double WideHitRate = Rows.empty() ? 0 : Rows.back().HitRate;
  bool MultiIsolate = Counts.back() > 1;
  bool HitRateOk = AllOk && (!MultiIsolate || WideHitRate >= 0.5);

  // Gate 3: throughput scaling — hardware-conditional. On a machine with
  // fewer than 4 hardware threads the 4-worker run time-slices one core
  // and the scaling claim is unmeasurable; record the skip in the JSON.
  double Scaling = 0;
  bool ScalingOk = true;
  bool ScalingSkipped = Hw < 4;
  if (!ScalingSkipped && AllOk) {
    const RunResult *One = nullptr, *Four = nullptr;
    for (size_t I = 0; I < Counts.size(); ++I) {
      if (Counts[I] == 1)
        One = &Rows[I];
      if (Counts[I] == 4)
        Four = &Rows[I];
    }
    Scaling = One && Four && One->Throughput > 0
                  ? Four->Throughput / One->Throughput
                  : 0;
    ScalingOk = Scaling >= 3.0;
  }

  printf("\nchecksums identical across thread counts: %s\n",
         ChecksumOk ? "ok" : "FAIL");
  printf("cross-isolate code-cache hit rate %s (>= 0.5 required): %s\n",
         fixed(WideHitRate, 3).c_str(), HitRateOk ? "ok" : "FAIL");
  if (ScalingSkipped)
    printf("throughput scaling at 4 threads: skipped (%u hardware threads "
           "< 4)\n",
           Hw);
  else
    printf("throughput scaling at 4 threads: %sx (>= 3x required): %s\n",
           fixed(Scaling, 2).c_str(), ScalingOk ? "ok" : "FAIL");

  Report.metric("checksums_identical", ChecksumOk ? 1 : 0);
  Report.metric("wide_hit_rate", WideHitRate);
  if (ScalingSkipped)
    Report.skipGate("scaling_4t_vs_1t", "fewer than 4 hardware threads (" +
                                            std::to_string(Hw) + ")");
  else
    Report.metric("scaling_4t_vs_1t", Scaling);

  bool Pass = AllOk && ChecksumOk && HitRateOk && ScalingOk;
  Report.pass(Pass);
  Report.write();
  return Pass ? 0 : 1;
}
