//===-- tests/bench/workload_differential_test.cpp - Workload oracles ------===//
//
// Wires the workload scenario pack (deltablue, json, sexpr, lexer, peg)
// into the differential matrix as correctness oracles: each suite's
// mini-SELF program must compute the checksum of its native C++ twin under
// every compiler-policy × dispatch-cache × tier × engine × collector ×
// background-compilation configuration, and across the isolates axis
// (1/2/8 isolates of one SharedRuntime). The suites are the heaviest
// programs in the matrix — a polymorphic constraint solver, two
// allocation-heavy parsers, and a megamorphic PEG matcher — so this is
// where optimizer bugs that survive the smaller cross-policy programs
// get caught.
//
//===----------------------------------------------------------------------===//

#include "harness/differential.h"

#include "workloads.h"

#include <gtest/gtest.h>

using namespace mself;
using namespace mself::bench;

namespace {

std::vector<const BenchmarkDef *> workloadSuites() {
  std::vector<const BenchmarkDef *> Out;
  for (const char *G : kWorkloadGroups)
    for (const BenchmarkDef *B : benchmarksInGroup(G))
      Out.push_back(B);
  return Out;
}

class WorkloadDifferential
    : public ::testing::TestWithParam<const BenchmarkDef *> {};

} // namespace

TEST(WorkloadPack, RegistryHasAllFiveSuites) {
  std::vector<const BenchmarkDef *> Suites = workloadSuites();
  ASSERT_EQ(Suites.size(), 5u);
  const char *Expected[] = {"deltablue", "json", "sexpr", "lexer", "peg"};
  for (size_t I = 0; I < 5; ++I) {
    EXPECT_EQ(Suites[I]->Name, Expected[I]);
    ASSERT_NE(Suites[I]->Native, nullptr) << Suites[I]->Name;
    // The native twin must be deterministic — it is the oracle.
    EXPECT_EQ(Suites[I]->Native(), Suites[I]->Native()) << Suites[I]->Name;
  }
}

// The whole matrix must reproduce the native twin's checksum exactly.
TEST_P(WorkloadDifferential, MatchesNativeTwinEverywhere) {
  const BenchmarkDef *B = GetParam();
  EXPECT_TRUE(difftest::expectAll(B->Source, B->RunExpr, B->Native()));
}

INSTANTIATE_TEST_SUITE_P(
    Suites, WorkloadDifferential, ::testing::ValuesIn(workloadSuites()),
    [](const ::testing::TestParamInfo<const BenchmarkDef *> &Info) {
      return Info.param->Name;
    });
