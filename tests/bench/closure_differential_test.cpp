//===-- tests/bench/closure_differential_test.cpp - Closure oracles --------===//
//
// Wires the closure-heavy suites (inject, nestdo, pipeline) into the
// differential matrix as correctness oracles for escape analysis: each
// suite's mini-SELF program must compute the checksum of its native C++
// twin under every compiler-policy × dispatch-cache × tier × engine ×
// collector × background-compilation configuration — which now includes
// the noescape rows, so every checksum is produced both with blocks and
// environments arena-allocated and with escape analysis off entirely —
// and across the isolates axis. The suites pin the three corners of the
// escape lattice (ArgEscaping fold blocks, fully scalar-replaced nests,
// Escaping stored stages), so a classifier or arena-lifetime bug shows up
// as a checksum mismatch here before anywhere else.
//
//===----------------------------------------------------------------------===//

#include "harness/differential.h"

#include "closures.h"
#include "driver/vm.h"

#include <gtest/gtest.h>

using namespace mself;
using namespace mself::bench;

namespace {

std::vector<const BenchmarkDef *> closureSuites() {
  return benchmarksInGroup(kClosureGroup);
}

class EscapeClosureDifferential
    : public ::testing::TestWithParam<const BenchmarkDef *> {};

// Runs one suite to completion under \p P and returns the telemetry.
VmTelemetry runSuite(const BenchmarkDef &B, const Policy &P) {
  VirtualMachine VM(P);
  std::string Err;
  EXPECT_TRUE(VM.load(B.Source, Err)) << Err;
  int64_t Got = 0;
  EXPECT_TRUE(VM.evalInt(B.RunExpr, Got, Err)) << Err;
  EXPECT_EQ(Got, B.Native()) << B.Name;
  return VM.telemetry();
}

} // namespace

TEST(EscapeClosurePack, RegistryHasAllThreeSuites) {
  std::vector<const BenchmarkDef *> Suites = closureSuites();
  ASSERT_EQ(Suites.size(), 3u);
  const char *Expected[] = {"inject", "nestdo", "pipeline"};
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_EQ(Suites[I]->Name, Expected[I]);
    ASSERT_NE(Suites[I]->Native, nullptr) << Suites[I]->Name;
    // The native twin must be deterministic — it is the oracle.
    EXPECT_EQ(Suites[I]->Native(), Suites[I]->Native()) << Suites[I]->Name;
  }
}

// The lattice corners land where the suites were designed to put them.
TEST(EscapeClosurePack, SuitesExerciseTheArena) {
  std::vector<const BenchmarkDef *> Suites = closureSuites();
  ASSERT_EQ(Suites.size(), 3u);

  // inject: the per-element fold block is proven ArgEscaping, so the
  // optimizing compiler arena-allocates it — thousands of arena blocks,
  // every one reclaimed by a frame-exit release.
  VmTelemetry Inject = runSuite(*Suites[0], Policy::newSelf());
  EXPECT_GT(Inject.Escape.ArenaBlockAllocs, 1000u);
  EXPECT_GT(Inject.Escape.ArenaReleases, 0u);

  // nestdo: everything inlines, every capturing scope is scalar-replaced —
  // no runtime blocks at all, arena or heap.
  VmTelemetry Nest = runSuite(*Suites[1], Policy::newSelf());
  EXPECT_GT(Nest.Escape.EnvsScalarReplaced, 0u);
  EXPECT_EQ(Nest.Exec.BlocksMade, 0u);

  // pipeline: the stored stages must stay on the heap (Escaping) while the
  // per-iteration adapter goes to the arena — both classes nonzero.
  VmTelemetry Pipe = runSuite(*Suites[2], Policy::newSelf());
  EXPECT_GT(Pipe.Escape.BlocksEscaping, 0u);
  EXPECT_GT(Pipe.Escape.ArenaBlockAllocs, 0u);

  // With the analysis off the same programs touch the arena never.
  Policy NoEscape = Policy::newSelf();
  NoEscape.EscapeAnalysis = false;
  for (const BenchmarkDef *B : Suites) {
    VmTelemetry T = runSuite(*B, NoEscape);
    EXPECT_EQ(T.Escape.ArenaBlockAllocs, 0u) << B->Name;
    EXPECT_EQ(T.Escape.ArenaEnvAllocs, 0u) << B->Name;
  }
}

// The whole matrix must reproduce the native twin's checksum exactly.
TEST_P(EscapeClosureDifferential, MatchesNativeTwinEverywhere) {
  const BenchmarkDef *B = GetParam();
  EXPECT_TRUE(difftest::expectAll(B->Source, B->RunExpr, B->Native()));
}

INSTANTIATE_TEST_SUITE_P(
    Suites, EscapeClosureDifferential, ::testing::ValuesIn(closureSuites()),
    [](const ::testing::TestParamInfo<const BenchmarkDef *> &Info) {
      return Info.param->Name;
    });
